package tlacache

import "testing"

func fast(opts ...Option) []Option {
	return append([]Option{WithBudget(20_000, 40_000)}, opts...)
}

func TestNewMachineDefaults(t *testing.T) {
	m, err := NewMachine(2)
	if err != nil {
		t.Fatal(err)
	}
	if m.cfg.Hierarchy.Cores != 2 || m.cfg.Hierarchy.LLCSize != 2<<20 {
		t.Fatalf("default machine config wrong: %+v", m.cfg.Hierarchy)
	}
	if !m.cfg.Hierarchy.EnablePrefetch {
		t.Fatal("prefetcher not enabled by default")
	}
}

func TestOptionErrors(t *testing.T) {
	cases := []Option{
		WithPolicy("nope"),
		WithLLCSize(0),
		WithBudget(0, 0),
		WithQBSQueryLimit(-1),
	}
	for i, opt := range cases {
		if _, err := NewMachine(2, opt); err == nil {
			t.Errorf("option %d accepted invalid value", i)
		}
	}
	if _, err := NewMachine(0); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestPoliciesAllConstructible(t *testing.T) {
	for _, p := range Policies() {
		if _, err := NewMachine(2, WithPolicy(p)); err != nil {
			t.Errorf("policy %s: %v", p, err)
		}
	}
}

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 15 {
		t.Fatalf("got %d benchmarks", len(bs))
	}
	found := map[string]bool{}
	for _, b := range bs {
		found[b] = true
	}
	for _, want := range []string{"mcf", "lib", "sje", "dea"} {
		if !found[want] {
			t.Errorf("missing benchmark %s", want)
		}
	}
}

func TestRunMix(t *testing.T) {
	m, err := NewMachine(2, fast()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunMix("sje", "lib")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 2 || res.Throughput <= 0 {
		t.Fatalf("result malformed: %+v", res)
	}
	if res.Apps[0].Benchmark != "sje" || res.Apps[1].Benchmark != "lib" {
		t.Fatalf("apps misordered: %+v", res.Apps)
	}
	if _, err := m.RunMix("sje"); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := m.RunMix("sje", "nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunBenchmark(t *testing.T) {
	m, err := NewMachine(2, fast(WithPrefetch(false))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunBenchmark("dea")
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "dea" || res.IPC <= 0 {
		t.Fatalf("isolation result malformed: %+v", res)
	}
	if _, err := m.RunBenchmark("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestQBSReducesVictims(t *testing.T) {
	budget := []Option{WithBudget(300_000, 1_200_000)}
	base, err := NewMachine(2, budget...)
	if err != nil {
		t.Fatal(err)
	}
	qbs, err := NewMachine(2, append(budget, WithPolicy(PolicyQBS))...)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := base.RunMix("sje", "lib")
	if err != nil {
		t.Fatal(err)
	}
	qbsRes, err := qbs.RunMix("sje", "lib")
	if err != nil {
		t.Fatal(err)
	}
	if baseRes.InclusionVictims == 0 {
		t.Fatal("baseline shows no inclusion victims")
	}
	if qbsRes.InclusionVictims >= baseRes.InclusionVictims {
		t.Fatalf("QBS victims %d not below baseline %d",
			qbsRes.InclusionVictims, baseRes.InclusionVictims)
	}
	if qbsRes.QBSQueries == 0 {
		t.Fatal("no QBS queries recorded")
	}
	if qbsRes.Throughput <= baseRes.Throughput {
		t.Fatalf("QBS throughput %.3f not above baseline %.3f",
			qbsRes.Throughput, baseRes.Throughput)
	}
}

func TestBankedLLCOption(t *testing.T) {
	if _, err := NewMachine(2, WithBankedLLC(-1)); err == nil {
		t.Error("negative bank count accepted")
	}
	flat, err := NewMachine(2, fast()...)
	if err != nil {
		t.Fatal(err)
	}
	banked, err := NewMachine(2, fast(WithBankedLLC(2))...)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := flat.RunMix("mcf", "lib")
	if err != nil {
		t.Fatal(err)
	}
	br, err := banked.RunMix("mcf", "lib")
	if err != nil {
		t.Fatal(err)
	}
	// Bank contention can only slow things down.
	if br.Throughput > fr.Throughput {
		t.Fatalf("banked throughput %.3f above unbanked %.3f", br.Throughput, fr.Throughput)
	}
}

func TestSeedChangesStream(t *testing.T) {
	a, err := NewMachine(2, fast(WithSeed(1))...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMachine(2, fast(WithSeed(2))...)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.RunMix("mcf", "ast")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.RunMix("mcf", "ast")
	if err != nil {
		t.Fatal(err)
	}
	if ra.Throughput == rb.Throughput && ra.LLCMisses == rb.LLCMisses {
		t.Error("different seeds produced identical results")
	}
}

// Command calibrate runs each SPEC CPU2006 surrogate in isolation on
// the paper's baseline machine (2MB LLC, no prefetching) and prints the
// Table I analogue: L1 (I+D combined), L2, and LLC misses per
// kilo-instruction, next to the paper's numbers. Use it when tuning
// workload profiles.
//
// Usage:
//
//	calibrate [-n instructions] [-w warmup] [-bench name]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"tlacache/internal/hierarchy"
	"tlacache/internal/sim"
	"tlacache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")
	n := flag.Uint64("n", 2_000_000, "measured instructions per benchmark")
	w := flag.Uint64("w", 4_000_000, "warmup instructions per benchmark")
	bench := flag.String("bench", "", "single benchmark tag (default: all)")
	mode := flag.String("inclusion", "inclusive", "inclusive | non-inclusive | exclusive")
	flag.Parse()

	cfg := sim.DefaultConfig(1)
	cfg.Instructions = *n
	cfg.Warmup = *w
	cfg.Hierarchy.EnablePrefetch = false // Table I: no prefetcher
	switch *mode {
	case "inclusive":
		cfg.Hierarchy.Inclusion = hierarchy.Inclusive
	case "non-inclusive":
		cfg.Hierarchy.Inclusion = hierarchy.NonInclusive
	case "exclusive":
		cfg.Hierarchy.Inclusion = hierarchy.Exclusive
	default:
		log.Fatalf("unknown inclusion mode %q", *mode)
	}

	bs := workload.All()
	if *bench != "" {
		b, err := workload.ByName(*bench)
		if err != nil {
			log.Fatal(err)
		}
		bs = []workload.Benchmark{b}
	}

	tw := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\tcat\tL1 MPKI\t(paper)\tL2 MPKI\t(paper)\tLLC MPKI\t(paper)\tIPC")
	for _, b := range bs {
		res, err := sim.RunIsolation(cfg, b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			b.Name, b.Category, res.L1MPKI, b.Paper.L1, res.L2MPKI, b.Paper.L2,
			res.LLCMPKI, b.Paper.LLC, res.IPC)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}

// Command calibrate runs each SPEC CPU2006 surrogate in isolation on
// the paper's baseline machine (2MB LLC, no prefetching) and prints the
// Table I analogue: L1 (I+D combined), L2, and LLC misses per
// kilo-instruction, next to the paper's numbers. Use it when tuning
// workload profiles.
//
// Usage:
//
//	calibrate [-n instructions] [-w warmup] [-workers 8] [-bench name]
//
// The isolation runs are independent, so they fan out over -workers
// parallel workers (default: one per CPU); rows print in the canonical
// benchmark order regardless of completion order.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"

	"tlacache/internal/hierarchy"
	"tlacache/internal/runner"
	"tlacache/internal/sim"
	"tlacache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")
	n := flag.Uint64("n", 2_000_000, "measured instructions per benchmark")
	w := flag.Uint64("w", 4_000_000, "warmup instructions per benchmark")
	bench := flag.String("bench", "", "single benchmark tag (default: all)")
	mode := flag.String("inclusion", "inclusive", "inclusive | non-inclusive | exclusive")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = one per CPU)")
	flag.Parse()

	cfg := sim.DefaultConfig(1)
	cfg.Instructions = *n
	cfg.Warmup = *w
	cfg.Hierarchy.EnablePrefetch = false // Table I: no prefetcher
	switch *mode {
	case "inclusive":
		cfg.Hierarchy.Inclusion = hierarchy.Inclusive
	case "non-inclusive":
		cfg.Hierarchy.Inclusion = hierarchy.NonInclusive
	case "exclusive":
		cfg.Hierarchy.Inclusion = hierarchy.Exclusive
	default:
		log.Fatalf("unknown inclusion mode %q", *mode)
	}

	bs := workload.All()
	if *bench != "" {
		b, err := workload.ByName(*bench)
		if err != nil {
			log.Fatal(err)
		}
		bs = []workload.Benchmark{b}
	}

	jobs := make([]runner.Job[sim.AppResult], len(bs))
	for i, b := range bs {
		b := b
		jobs[i] = runner.Job[sim.AppResult]{
			Name: "calibrate/" + b.Name,
			Work: cfg.Warmup + cfg.Instructions,
			Run: func(context.Context) (sim.AppResult, error) {
				return sim.RunIsolation(cfg, b)
			},
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	results, err := runner.Run(ctx, runner.Config{Workers: *workers}, jobs)
	if err != nil {
		log.Fatal(err)
	}
	if err := runner.FirstError(results); err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\tcat\tL1 MPKI\t(paper)\tL2 MPKI\t(paper)\tLLC MPKI\t(paper)\tIPC")
	for i, b := range bs {
		res := results[i].Value
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			b.Name, b.Category, res.L1MPKI, b.Paper.L1, res.L2MPKI, b.Paper.L2,
			res.LLCMPKI, b.Paper.LLC, res.IPC)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}

// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run figure7 [-pairs] [-n 800000] [-w 1500000] [-workers 8] [-v]
//	experiments -run all -out results/
//
// Each experiment prints plain-text tables; -out additionally writes
// one CSV per table plus a <name>-manifest.json run manifest (per-job
// wall time and simulated-instruction throughput) into the given
// directory. Simulations fan out over -workers parallel workers
// (default: one per CPU) with results identical to serial execution;
// Ctrl-C cancels cleanly. With -run all, a failing experiment is
// reported and the rest still run; the exit code is non-zero if any
// failed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"tlacache/internal/cli"
	"tlacache/internal/experiments"
	"tlacache/internal/runner"
	"tlacache/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "experiment name or 'all'")
	pairs := flag.Bool("pairs", false, "use all 105 workload pairs instead of the 12 Table II mixes")
	n := flag.Uint64("n", 0, "measured instructions per core (0 = default)")
	w := flag.Uint64("w", 0, "warmup instructions per core (0 = default)")
	seed := flag.Uint64("seed", 1, "workload seed")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = one per CPU)")
	verbose := flag.Bool("v", false, "print per-run progress")
	out := flag.String("out", "", "directory for CSV + run-manifest output (optional)")
	jsonOut := flag.Bool("json", false, "emit tables as JSON instead of text")
	interval := flag.Uint64("interval", 0,
		"sample per-core time series every N instructions; CSVs land under <out>/intervals/ (0 = off)")
	decisionTraces := flag.Bool("decision-traces", false,
		"record a binary TLAD1 LLC decision trace per simulation cell under <out>/decisions/ (requires -out; analyze with cmd/tlatrace)")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof and expvar on this address during the run, e.g. localhost:6060")
	showVersion := flag.Bool("version", false, "print build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(cli.Version())
		return
	}
	if *debugAddr != "" {
		addr, _, err := telemetry.ServeDebug(*debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("debug server: http://%s/debug/pprof/ and http://%s/debug/vars", addr, addr)
	}

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-12s %s\n", e.Name, e.Desc)
		}
		if *run == "" && !*list {
			os.Exit(2)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := experiments.DefaultOptions()
	opts.AllPairs = *pairs
	opts.Seed = *seed
	opts.Workers = *workers
	opts.Context = ctx
	if *n != 0 {
		opts.Instructions = *n
	}
	if *w != 0 {
		opts.Warmup = *w
	}
	if *verbose {
		opts.Progress = runner.NewReporter(os.Stderr)
	}
	opts.SampleEvery = *interval

	var names []string
	if *run == "all" {
		for _, e := range experiments.Registry() {
			names = append(names, e.Name)
		}
	} else {
		names = strings.Split(*run, ",")
	}
	// Resolve every runner up front so a typo fails before hours of
	// simulation, not between experiments.
	runners := make([]experiments.Runner, len(names))
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
		r, err := experiments.ByName(names[i])
		if err != nil {
			log.Fatal(err)
		}
		runners[i] = r
	}

	var failed []string
	for i, name := range names {
		if ctx.Err() != nil {
			log.Printf("interrupted; skipping remaining experiments")
			failed = append(failed, names[i:]...)
			break
		}
		if err := runOne(name, runners[i], opts, *out, *jsonOut, *decisionTraces); err != nil {
			log.Printf("%s: %v", name, err)
			failed = append(failed, name)
		}
	}
	if len(failed) > 0 {
		log.Fatalf("%d of %d experiments failed: %s",
			len(failed), len(names), strings.Join(failed, ", "))
	}
}

// runOne regenerates a single experiment: tables to stdout, CSVs and
// the run manifest under outDir when set.
func runOne(name string, run experiments.Runner, opts experiments.Options, outDir string, jsonOut, decisionTraces bool) error {
	col := runner.NewCollector()
	opts.Stats = col
	if opts.SampleEvery > 0 && outDir != "" {
		opts.SampleDir = filepath.Join(outDir, "intervals", name)
	}
	if decisionTraces && outDir != "" {
		opts.DecisionTraceDir = filepath.Join(outDir, "decisions", name)
	}
	start := time.Now()
	tables, err := run(opts)
	wall := time.Since(start)
	if outDir != "" {
		// The manifest is written even for a failed experiment: the
		// per-job errors in it are the post-mortem.
		m := col.Manifest(name, runner.Workers(opts.Workers), wall)
		m.Seed = opts.Seed
		m.Options = manifestOptions(opts)
		if merr := runner.WriteManifest(outDir, m); merr != nil {
			return merr
		}
	}
	if err != nil {
		return err
	}
	for i := range tables {
		if jsonOut {
			if err := tables[i].WriteJSON(os.Stdout); err != nil {
				return err
			}
		} else if err := tables[i].Render(os.Stdout); err != nil {
			return err
		}
		if outDir != "" {
			if err := writeCSV(outDir, &tables[i]); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, wall.Round(time.Millisecond))
	return nil
}

// manifestOptions is the JSON echo of the experiment options in the
// run manifest (only the fields that shape the simulated population).
func manifestOptions(o experiments.Options) map[string]interface{} {
	return map[string]interface{}{
		"instructions": o.Instructions,
		"warmup":       o.Warmup,
		"all_pairs":    o.AllPairs,
		"seed":         o.Seed,
	}
}

func writeCSV(dir string, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

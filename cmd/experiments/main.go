// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run figure7 [-pairs] [-n 800000] [-w 1500000] [-v]
//	experiments -run all -out results/
//
// Each experiment prints plain-text tables; -out additionally writes
// one CSV per table into the given directory.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tlacache/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "experiment name or 'all'")
	pairs := flag.Bool("pairs", false, "use all 105 workload pairs instead of the 12 Table II mixes")
	n := flag.Uint64("n", 0, "measured instructions per core (0 = default)")
	w := flag.Uint64("w", 0, "warmup instructions per core (0 = default)")
	seed := flag.Uint64("seed", 1, "workload seed")
	verbose := flag.Bool("v", false, "print per-run progress")
	out := flag.String("out", "", "directory for CSV output (optional)")
	jsonOut := flag.Bool("json", false, "emit tables as JSON instead of text")
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-12s %s\n", e.Name, e.Desc)
		}
		if *run == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := experiments.DefaultOptions()
	opts.AllPairs = *pairs
	opts.Seed = *seed
	if *n != 0 {
		opts.Instructions = *n
	}
	if *w != 0 {
		opts.Warmup = *w
	}
	if *verbose {
		opts.Progress = os.Stderr
	}

	var names []string
	if *run == "all" {
		for _, e := range experiments.Registry() {
			names = append(names, e.Name)
		}
	} else {
		names = strings.Split(*run, ",")
	}

	for _, name := range names {
		runner, err := experiments.ByName(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		tables, err := runner(opts)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		for i := range tables {
			if *jsonOut {
				if err := tables[i].WriteJSON(os.Stdout); err != nil {
					log.Fatal(err)
				}
			} else if err := tables[i].Render(os.Stdout); err != nil {
				log.Fatal(err)
			}
			if *out != "" {
				if err := writeCSV(*out, &tables[i]); err != nil {
					log.Fatal(err)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func writeCSV(dir string, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// Command tlacached is the simulation-as-a-service daemon: it accepts
// simulation jobs over HTTP, memoizes their result manifests in a
// two-tier content-addressed cache, coalesces identical concurrent
// requests onto one run, and sheds load with 429 + Retry-After when
// the admission gates reject.
//
// Run the daemon:
//
//	tlacached -addr 127.0.0.1:8321 -cache-dir /var/cache/tlacache
//	tlacached -queue 32 -rate 4 -burst 8 -workers 4
//
// Or drive one with the built-in client:
//
//	tlacached submit -server http://127.0.0.1:8321 -mix MIX_00 -policy qbs -wait
//	tlacached get    -server http://127.0.0.1:8321 v1:<key>
//	tlacached stats  -server http://127.0.0.1:8321
//
// On SIGINT/SIGTERM the daemon stops admitting work (503), drains
// in-flight simulations up to -drain, then exits; results computed
// during the drain are persisted to the cache directory first.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tlacache/internal/cli"
	"tlacache/internal/service/api"
	"tlacache/internal/service/cache"
	"tlacache/internal/service/queue"
	"tlacache/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tlacached: ")
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "submit", "get", "stats":
			os.Exit(runClient(args[0], args[1:], os.Stdout, os.Stderr))
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(runDaemon(ctx, args, os.Stdout, os.Stderr))
}

// runDaemon runs the HTTP daemon until ctx is cancelled, then drains.
// It is main minus process concerns, so tests can run it with a
// cancelable context and an ephemeral port.
func runDaemon(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tlacached", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8321", "listen address (use :0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	cacheDir := fs.String("cache-dir", "", "on-disk result cache directory (empty: memory-only)")
	memEntries := fs.Int("mem-entries", 0, "in-memory cache entries (0 = default, negative = disabled)")
	workers := fs.Int("workers", 2, "concurrently executing simulations")
	queueLimit := fs.Int("queue", 32, "max queued+running jobs before 429 (0 = unbounded)")
	rate := fs.Float64("rate", 0, "admitted jobs per second (0 = unlimited)")
	burst := fs.Float64("burst", 8, "admission burst capacity in jobs")
	drain := fs.Duration("drain", 30*time.Second, "shutdown deadline for in-flight simulations")
	debugAddr := fs.String("debug-addr", "", "serve /debug/tlacache introspection on this address")
	logFormat := fs.String("log-format", "text", "request log format: text or json")
	logLevel := fs.String("log-level", "info", "request log level: debug, info, warn, error, or off")
	showVersion := fs.Bool("version", false, "print build version and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, cli.Version())
		return 0
	}
	logger, err := buildLogger(stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(stderr, "tlacached:", err)
		return 2
	}

	store, err := cache.New(cache.Config{Dir: *cacheDir, MemEntries: *memEntries})
	if err != nil {
		fmt.Fprintln(stderr, "tlacached:", err)
		return 1
	}
	var bucket *queue.TokenBucket
	if *rate > 0 {
		bucket = queue.NewTokenBucket(*rate, *burst, nil)
	}
	server, err := api.New(api.Config{
		Cache:     store,
		Admission: queue.NewAdmission(*queueLimit, bucket),
		Workers:   *workers,
		Version:   cli.Version(),
		Logger:    logger,
	})
	if err != nil {
		fmt.Fprintln(stderr, "tlacached:", err)
		return 1
	}
	api.PublishExpvars(server)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "tlacached:", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintln(stderr, "tlacached:", err)
			ln.Close()
			return 1
		}
	}
	fmt.Fprintf(stdout, "tlacached: listening on %s (cache-dir %q, workers %d, queue %d; metrics on /metrics)\n",
		bound, *cacheDir, *workers, *queueLimit)

	if *debugAddr != "" {
		dbgAddr, dbgSrv, err := telemetry.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(stderr, "tlacached:", err)
			ln.Close()
			return 1
		}
		defer dbgSrv.Close()
		fmt.Fprintf(stdout, "tlacached: debug introspection on http://%s/debug/tlacache\n", dbgAddr)
	}

	httpSrv := &http.Server{Handler: server.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(stderr, "tlacached:", err)
		return 1
	}

	// Shutdown: refuse new work first, then let in-flight simulations
	// finish (their results are worth seconds of compute), then close
	// the listener and any waiting request handlers.
	fmt.Fprintf(stdout, "tlacached: draining (deadline %s)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := server.Drain(dctx); err != nil {
		fmt.Fprintln(stderr, "tlacached:", err)
		code = 1
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "tlacached:", err)
		code = 1
	}
	fmt.Fprintln(stdout, "tlacached: bye")
	return code
}

// buildLogger maps the -log-format/-log-level flags to a slog.Logger
// writing to w; level "off" returns nil, disabling request logging.
func buildLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	if strings.EqualFold(level, "off") {
		return nil, nil
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level: %w", err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format: unknown format %q (text or json)", format)
	}
}

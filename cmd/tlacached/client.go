package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"tlacache/internal/service"
	"tlacache/internal/service/api"
)

// runClient implements the submit/get/stats subcommands — a thin HTTP
// client so a shell can drive the daemon without hand-writing JSON.
func runClient(cmd string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tlacached "+cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "http://127.0.0.1:8321", "daemon base URL")
	timeout := fs.Duration("timeout", 10*time.Minute, "request timeout")

	var spec service.JobSpec
	var wait *bool
	var apps *string
	var warmup *int64
	if cmd == "submit" {
		fs.StringVar(&spec.Mix, "mix", "", "Table II mix name (MIX_00 … MIX_11)")
		apps = fs.String("apps", "", "comma-separated benchmark tags, one per core")
		fs.StringVar(&spec.Policy, "policy", "", "LLC policy (default baseline)")
		fs.Uint64Var(&spec.Seed, "seed", 0, "workload seed (0 = default)")
		fs.Uint64Var(&spec.Instructions, "n", 0, "measured instructions per core (0 = default)")
		warmup = fs.Int64("w", -1, "warmup instructions per core (-1 = default)")
		fs.StringVar(&spec.LLC, "llc", "", "LLC size override, e.g. 1MB")
		fs.BoolVar(&spec.NoPrefetch, "no-prefetch", false, "disable the stream prefetcher")
		fs.Uint64Var(&spec.Interval, "interval", 0, "interval telemetry period in instructions")
		wait = fs.Bool("wait", false, "block until the manifest is ready")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	client := &http.Client{Timeout: *timeout}
	base := strings.TrimRight(*server, "/")

	switch cmd {
	case "submit":
		if *apps != "" {
			spec.Apps = strings.Split(*apps, ",")
		}
		if *warmup >= 0 {
			w := uint64(*warmup)
			spec.Warmup = &w
		}
		body, err := json.Marshal(spec)
		if err != nil {
			fmt.Fprintln(stderr, "tlacached:", err)
			return 1
		}
		url := base + "/v1/jobs"
		if *wait {
			url += "?wait=1"
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintln(stderr, "tlacached:", err)
			return 1
		}
		return printResponse(resp, stdout, stderr)

	case "get":
		if fs.NArg() != 1 {
			fmt.Fprintln(stderr, "tlacached: usage: tlacached get [-server URL] <key>")
			return 2
		}
		resp, err := client.Get(base + "/v1/jobs/" + fs.Arg(0) + "/result")
		if err != nil {
			fmt.Fprintln(stderr, "tlacached:", err)
			return 1
		}
		return printResponse(resp, stdout, stderr)

	case "stats":
		resp, err := client.Get(base + "/v1/stats")
		if err != nil {
			fmt.Fprintln(stderr, "tlacached:", err)
			return 1
		}
		return printResponse(resp, stdout, stderr)
	}
	fmt.Fprintln(stderr, "tlacached: unknown command", cmd)
	return 2
}

// printResponse relays the daemon's answer: body to stdout on success
// (2xx), body plus status and Retry-After guidance to stderr
// otherwise.
func printResponse(resp *http.Response, stdout, stderr io.Writer) int {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintln(stderr, "tlacached:", err)
		return 1
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if v := resp.Header.Get(api.ResultHeader); v != "" {
			fmt.Fprintf(stderr, "tlacached: result: %s\n", v)
		}
		stdout.Write(data) //nolint:errcheck
		return 0
	}
	fmt.Fprintf(stderr, "tlacached: %s: %s", resp.Status, data)
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		fmt.Fprintf(stderr, "tlacached: retry after %ss\n", ra)
	}
	return 1
}

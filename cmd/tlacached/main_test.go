package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tlacache/internal/service"
)

// startDaemon runs runDaemon on an ephemeral port and returns its base
// URL; cleanup cancels the daemon and waits for a clean exit.
func startDaemon(t *testing.T, extra ...string) string {
	t.Helper()
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int, 1)
	var out, errOut bytes.Buffer
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-cache-dir", filepath.Join(dir, "cache"),
		"-drain", "30s",
	}, extra...)
	go func() { done <- runDaemon(ctx, args, &out, &errOut) }()
	t.Cleanup(func() {
		cancel()
		select {
		case code := <-done:
			if code != 0 {
				t.Errorf("daemon exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
			}
		case <-time.After(60 * time.Second):
			t.Error("daemon did not shut down")
		}
	})

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			return "http://" + strings.TrimSpace(string(data))
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("daemon never wrote %s\nstderr: %s", addrFile, errOut.String())
	return ""
}

// The full loop: daemon up, submit via the client (miss), resubmit
// (hit, identical bytes), fetch by key, read stats.
func TestDaemonEndToEnd(t *testing.T) {
	base := startDaemon(t)
	submitArgs := []string{"-server", base, "-wait",
		"-apps", "sje,lib", "-n", "30000", "-w", "0"}

	var out1, err1 bytes.Buffer
	if code := runClient("submit", submitArgs, &out1, &err1); code != 0 {
		t.Fatalf("submit: exit %d, stderr %s", code, err1.String())
	}
	if !strings.Contains(err1.String(), "result: miss") {
		t.Errorf("first submit verdict: %s", err1.String())
	}

	var out2, err2 bytes.Buffer
	if code := runClient("submit", submitArgs, &out2, &err2); code != 0 {
		t.Fatalf("resubmit: exit %d, stderr %s", code, err2.String())
	}
	if !strings.Contains(err2.String(), "result: hit") {
		t.Errorf("second submit verdict: %s", err2.String())
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Error("cache hit not byte-identical to original manifest")
	}

	m, err := service.DecodeManifest(out1.Bytes())
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	var out3, err3 bytes.Buffer
	if code := runClient("get", []string{"-server", base, m.Key}, &out3, &err3); code != 0 {
		t.Fatalf("get: exit %d, stderr %s", code, err3.String())
	}
	if !bytes.Equal(out3.Bytes(), out1.Bytes()) {
		t.Error("get returned different bytes than submit")
	}

	var out4, err4 bytes.Buffer
	if code := runClient("stats", []string{"-server", base}, &out4, &err4); code != 0 {
		t.Fatalf("stats: exit %d, stderr %s", code, err4.String())
	}
	for _, want := range []string{`"puts": 1`, `"admitted": 1`} {
		if !strings.Contains(out4.String(), want) {
			t.Errorf("stats missing %s:\n%s", want, out4.String())
		}
	}
}

func TestClientErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := runClient("get", []string{"-server", "http://127.0.0.1:1"}, &out, &errOut); code != 2 {
		t.Errorf("get without key: exit %d, want 2", code)
	}
	if code := runClient("bogus", nil, &out, &errOut); code != 2 {
		t.Errorf("unknown command: exit %d, want 2", code)
	}
	base := startDaemon(t)
	if code := runClient("submit", []string{"-server", base, "-apps", "nope"}, &out, &errOut); code != 1 {
		t.Errorf("invalid submit: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "400") {
		t.Errorf("stderr: %s", errOut.String())
	}
}

func TestDaemonVersionFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := runDaemon(context.Background(), []string{"-version"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.TrimSpace(out.String()) == "" {
		t.Error("no version printed")
	}
}

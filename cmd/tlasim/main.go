// Command tlasim runs one workload mix on one machine configuration and
// prints a detailed report: per-application IPC and MPKI, hierarchy
// traffic, and inclusion-victim counts. It is the interactive
// counterpart to cmd/experiments.
//
// Usage:
//
//	tlasim -mix sje,lib -policy qbs
//	tlasim -mix MIX_10 -policy baseline -llc 1MB
//	tlasim -mix dea,mcf,sje,lib -policy non-inclusive
//	tlasim -trace a.tlat,b.tlat -policy qbs      # replay recorded traces
//	tlasim -profile mine.json,mine.json          # custom JSON workloads
//
// -mix takes either a Table II mix name (MIX_00 … MIX_11) or a
// comma-separated benchmark list (one per core). -trace replays binary
// traces captured with cmd/tracegen; -profile loads trace.Profile JSON
// definitions. The three sources are mutually exclusive.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"tlacache/internal/cli"
	"tlacache/internal/sim"
	"tlacache/internal/trace"
	"tlacache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tlasim: ")
	mixArg := flag.String("mix", "", "Table II mix name or comma-separated benchmark tags")
	traceArg := flag.String("trace", "", "comma-separated TLAT1 trace files, one per core")
	profileArg := flag.String("profile", "", "comma-separated profile JSON files, one per core")
	policy := flag.String("policy", "baseline", strings.Join(cli.PolicyNames(), " | "))
	jsonOut := flag.Bool("json", false, "emit the result as JSON")
	llc := flag.String("llc", "", "LLC size override, e.g. 1MB, 4MB (default 1MB per core)")
	n := flag.Uint64("n", 1_000_000, "measured instructions per core")
	w := flag.Uint64("w", 1_500_000, "warmup instructions per core")
	seed := flag.Uint64("seed", 1, "workload seed")
	noPrefetch := flag.Bool("no-prefetch", false, "disable the stream prefetcher")
	listBench := flag.Bool("list", false, "list benchmarks and mixes, then exit")
	flag.Parse()

	if *listBench {
		fmt.Println("benchmarks:")
		for _, b := range workload.All() {
			fmt.Printf("  %-4s %-16s %s\n", b.Name, b.FullName, b.Category)
		}
		fmt.Println("mixes:")
		for _, m := range workload.TableIIMixes() {
			fmt.Printf("  %-7s %-9s %s\n", m.Name, strings.Join(m.Apps, ","), m.Categories())
		}
		return
	}

	sources := 0
	for _, s := range []string{*mixArg, *traceArg, *profileArg} {
		if s != "" {
			sources++
		}
	}
	if sources > 1 {
		log.Fatal("-mix, -trace, and -profile are mutually exclusive")
	}
	if sources == 0 {
		*mixArg = "sje,lib"
	}

	// Determine the core count from the chosen workload source.
	var mix workload.Mix
	var streams []trace.Generator
	var err error
	switch {
	case *traceArg != "":
		if streams, err = loadTraces(strings.Split(*traceArg, ",")); err != nil {
			log.Fatal(err)
		}
	case *profileArg != "":
		if streams, err = loadProfiles(strings.Split(*profileArg, ","), *seed); err != nil {
			log.Fatal(err)
		}
	default:
		if mix, err = cli.ResolveMix(*mixArg); err != nil {
			log.Fatal(err)
		}
	}

	cores := len(mix.Apps)
	if streams != nil {
		cores = len(streams)
	}
	cfg := sim.DefaultConfig(cores)
	cfg.Instructions = *n
	cfg.Warmup = *w
	cfg.Seed = *seed
	cfg.Hierarchy.EnablePrefetch = !*noPrefetch
	if err := cli.ApplyPolicy(&cfg.Hierarchy, *policy); err != nil {
		log.Fatal(err)
	}
	if *llc != "" {
		size, err := cli.ParseSize(*llc)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Hierarchy.LLCSize = size
	}

	var res sim.MixResult
	if streams != nil {
		res, err = sim.RunGenerators(cfg, streams)
	} else {
		res, err = sim.RunMix(cfg, mix)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}
	report(cfg, res)
}

// loadTraces opens TLAT1 files as looping replay generators.
func loadTraces(paths []string) ([]trace.Generator, error) {
	out := make([]trace.Generator, len(paths))
	for i, path := range paths {
		path = strings.TrimSpace(path)
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		r, err := trace.NewReader(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		recs, err := r.ReadAll()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if out[i], err = trace.NewReplay(path, recs); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	return out, nil
}

// loadProfiles builds synthetic generators from JSON profile files.
func loadProfiles(paths []string, seed uint64) ([]trace.Generator, error) {
	out := make([]trace.Generator, len(paths))
	for i, path := range paths {
		path = strings.TrimSpace(path)
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		p, err := trace.LoadProfile(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if out[i], err = trace.NewSynthetic(p, seed+uint64(i)*0x9e37); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	return out, nil
}

func report(cfg sim.Config, res sim.MixResult) {
	h := cfg.Hierarchy
	fmt.Printf("machine: %d cores, LLC %dKB %d-way %s (%s), policy %s, prefetch %v\n",
		h.Cores, h.LLCSize>>10, h.LLCAssoc, h.LLCPolicy, h.Inclusion, h.TLA, h.EnablePrefetch)
	fmt.Printf("mix %s: %s (%s)\n\n", res.Mix.Name, strings.Join(res.Mix.Apps, ","), res.Mix.Categories())

	tw := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "core\tbench\tIPC\tL1 MPKI\tL2 MPKI\tLLC MPKI\tincl.victims")
	for i, a := range res.Apps {
		fmt.Fprintf(tw, "%d\t%s\t%.3f\t%.2f\t%.2f\t%.2f\t%d\n",
			i, a.Benchmark, a.IPC, a.L1MPKI, a.L2MPKI, a.LLCMPKI, a.InclusionVictims)
	}
	tw.Flush()

	t := res.Traffic
	fmt.Printf("\nthroughput           %.3f\n", res.Throughput)
	fmt.Printf("demand LLC misses    %d\n", res.LLCMisses)
	fmt.Printf("inclusion victims    %d\n", res.InclusionVictims)
	fmt.Printf("back-invalidates     %d\n", t.BackInvalidates)
	fmt.Printf("memory reads/writes  %d / %d\n", t.MemoryReads, t.WritebacksToMem)
	if t.TLHSent > 0 {
		fmt.Printf("TLH hints sent       %d\n", t.TLHSent)
	}
	if t.ECISent > 0 {
		fmt.Printf("ECI sent/invalidated %d / %d\n", t.ECISent, t.ECIInvalidated)
	}
	if t.QBSQueries > 0 {
		fmt.Printf("QBS queries/saves    %d / %d\n", t.QBSQueries, t.QBSSaves)
	}
	if t.PrefetchIssued > 0 {
		fmt.Printf("prefetches issued    %d (fills %d)\n", t.PrefetchIssued, t.PrefetchFills)
	}
	if t.VictimCacheHits > 0 {
		fmt.Printf("victim cache hits    %d\n", t.VictimCacheHits)
	}
}

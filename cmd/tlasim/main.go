// Command tlasim runs one workload mix on one machine configuration and
// prints a detailed report: per-application IPC and MPKI, hierarchy
// traffic, and inclusion-victim counts. It is the interactive
// counterpart to cmd/experiments.
//
// Usage:
//
//	tlasim -mix sje,lib -policy qbs
//	tlasim -mix MIX_10 -policy baseline -llc 1MB
//	tlasim -mix dea,mcf,sje,lib -policy non-inclusive
//	tlasim -mix sje,lib -policy baseline,eci,qbs,non-inclusive
//	tlasim -trace a.tlat,b.tlat -policy qbs      # replay recorded traces
//	tlasim -profile mine.json,mine.json          # custom JSON workloads
//
// -mix takes either a Table II mix name (MIX_00 … MIX_11) or a
// comma-separated benchmark list (one per core). -trace replays binary
// traces captured with cmd/tracegen; -profile loads trace.Profile JSON
// definitions. The three sources are mutually exclusive.
//
// -policy accepts a comma-separated list; multiple policies run the
// same workload under each (fanned out over -workers parallel workers)
// and append a comparison summary.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"text/tabwriter"

	"tlacache/internal/cli"
	"tlacache/internal/hierarchy"
	"tlacache/internal/runner"
	"tlacache/internal/sim"
	"tlacache/internal/telemetry"
	"tlacache/internal/trace"
	"tlacache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tlasim: ")
	mixArg := flag.String("mix", "", "Table II mix name or comma-separated benchmark tags")
	traceArg := flag.String("trace", "", "comma-separated TLAT1 trace files, one per core")
	profileArg := flag.String("profile", "", "comma-separated profile JSON files, one per core")
	policy := flag.String("policy", "baseline",
		"policy, or comma-separated policies to compare ("+strings.Join(cli.PolicyNames(), " | ")+")")
	jsonOut := flag.Bool("json", false, "emit the result as JSON")
	llc := flag.String("llc", "", "LLC size override, e.g. 1MB, 4MB (default 1MB per core)")
	n := flag.Uint64("n", 1_000_000, "measured instructions per core")
	w := flag.Uint64("w", 1_500_000, "warmup instructions per core")
	seed := flag.Uint64("seed", 1, "workload seed")
	workers := flag.Int("workers", 0, "parallel workers when comparing policies (0 = one per CPU)")
	shards := flag.Int("shards", 0,
		"run the functional sharded-LLC mode with N parallel set shards (0 = timed simulation; requires -policy non-inclusive, no timing output)")
	noPrefetch := flag.Bool("no-prefetch", false, "disable the stream prefetcher")
	listBench := flag.Bool("list", false, "list benchmarks and mixes, then exit")
	audit := flag.Uint64("audit", 0,
		"run a full hierarchy audit (invariants, cache consistency, counter conservation) every N measured instructions (0 = off)")
	interval := flag.Uint64("interval", 0,
		"sample per-core IPC/MPKI/inclusion-victim time series every N instructions (0 = off)")
	telemetryOut := flag.String("telemetry-out", "tlasim-intervals",
		"path prefix for -interval output; writes <prefix>.csv and <prefix>.jsonl (suffix -<policy> when comparing)")
	decisionTrace := flag.String("decision-trace", "",
		"record every LLC eviction decision to this file (.jsonl extension = JSON lines, else binary TLAD1; analyze with cmd/tlatrace); -<policy> inserted before the extension when comparing")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof and expvar on this address during the run, e.g. localhost:6060")
	showVersion := flag.Bool("version", false, "print build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(cli.Version())
		return
	}
	if *debugAddr != "" {
		addr, _, err := telemetry.ServeDebug(*debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("debug server: http://%s/debug/pprof/ and http://%s/debug/vars", addr, addr)
	}

	if *listBench {
		fmt.Println("benchmarks:")
		for _, b := range workload.All() {
			fmt.Printf("  %-4s %-16s %s\n", b.Name, b.FullName, b.Category)
		}
		fmt.Println("mixes:")
		for _, m := range workload.TableIIMixes() {
			fmt.Printf("  %-7s %-9s %s\n", m.Name, strings.Join(m.Apps, ","), m.Categories())
		}
		return
	}

	sources := 0
	for _, s := range []string{*mixArg, *traceArg, *profileArg} {
		if s != "" {
			sources++
		}
	}
	if sources > 1 {
		log.Fatal("-mix, -trace, and -profile are mutually exclusive")
	}
	if *shards > 0 && (*traceArg != "" || *profileArg != "") {
		log.Fatal("-shards runs registered benchmark mixes only (use -mix)")
	}
	if sources == 0 {
		*mixArg = "sje,lib"
	}

	// Determine the core count from the chosen workload source. Stream
	// sources are loaded as factories: each policy job gets its own
	// generator instances, so parallel comparison runs never share
	// mutable stream state.
	var mix workload.Mix
	var makeStreams func() ([]trace.Generator, error)
	var cores int
	var err error
	switch {
	case *traceArg != "":
		if makeStreams, cores, err = traceFactory(strings.Split(*traceArg, ",")); err != nil {
			log.Fatal(err)
		}
	case *profileArg != "":
		if makeStreams, cores, err = profileFactory(strings.Split(*profileArg, ","), *seed); err != nil {
			log.Fatal(err)
		}
	default:
		if mix, err = cli.ResolveMix(*mixArg); err != nil {
			log.Fatal(err)
		}
		cores = len(mix.Apps)
	}

	policies := strings.Split(*policy, ",")
	for i := range policies {
		policies[i] = strings.TrimSpace(policies[i])
	}

	baseCfg := sim.DefaultConfig(cores)
	baseCfg.Instructions = *n
	baseCfg.Warmup = *w
	baseCfg.Seed = *seed
	baseCfg.AuditEvery = *audit
	baseCfg.Hierarchy.EnablePrefetch = !*noPrefetch
	if *llc != "" {
		size, err := cli.ParseSize(*llc)
		if err != nil {
			log.Fatal(err)
		}
		baseCfg.Hierarchy.LLCSize = size
	}

	// One job per policy; a single policy degenerates to one job. When
	// -interval is set, every job gets its own sampler and recorder so
	// parallel comparison runs never share telemetry state.
	type outcome struct {
		Policy    string             `json:"policy"`
		Config    sim.Config         `json:"-"`
		Result    sim.MixResult      `json:"result"`
		Sampler   *telemetry.Sampler `json:"-"`
		Telemetry *telemetry.Summary `json:"telemetry,omitempty"`
	}
	jobs := make([]runner.Job[outcome], len(policies))
	for i, p := range policies {
		p := p
		cfg := baseCfg
		if err := cli.ApplyPolicy(&cfg.Hierarchy, p); err != nil {
			log.Fatal(err)
		}
		jobs[i] = runner.Job[outcome]{
			Name: "policy/" + p,
			Work: uint64(cores) * (cfg.Warmup + cfg.Instructions),
			Run: func(context.Context) (out outcome, err error) {
				out = outcome{Policy: p, Config: cfg}
				if *interval > 0 {
					out.Sampler = telemetry.NewSampler(*interval)
					cfg.Sampler = out.Sampler
				}
				if *decisionTrace != "" {
					path := decisionTracePath(*decisionTrace, p, len(policies) > 1)
					f, ferr := os.Create(path)
					if ferr != nil {
						return out, ferr
					}
					meta := hierarchy.DecisionMetaFor(cfg.Hierarchy)
					var sink interface {
						telemetry.DecisionTracer
						Count() uint64
						Flush() error
					}
					if strings.HasSuffix(path, ".jsonl") {
						sink, ferr = telemetry.NewDecisionJSONLWriter(f, meta)
					} else {
						sink, ferr = telemetry.NewDecisionWriter(f, meta)
					}
					if ferr != nil {
						f.Close()
						return out, ferr
					}
					cfg.DecisionTracer = sink
					defer func() {
						if ferr := sink.Flush(); ferr != nil && err == nil {
							err = ferr
						}
						if cerr := f.Close(); cerr != nil && err == nil {
							err = cerr
						}
						if err == nil {
							log.Printf("decision trace: wrote %s (%d decisions)", path, sink.Count())
						}
					}()
				}
				// The audit mode needs a recorder attached so its
				// probe/traffic cross-checks have counts to compare.
				if *interval > 0 || *audit > 0 {
					rec := telemetry.NewRecorder()
					cfg.Probe = rec
					defer func() {
						s := rec.Summary()
						out.Telemetry = &s
					}()
				}
				switch {
				case *shards > 0:
					out.Result, err = sim.RunMixSharded(cfg, mix, *shards)
				case makeStreams != nil:
					var streams []trace.Generator
					if streams, err = makeStreams(); err != nil {
						return out, err
					}
					out.Result, err = sim.RunGenerators(cfg, streams)
				default:
					out.Result, err = sim.RunMix(cfg, mix)
				}
				if err != nil {
					return out, fmt.Errorf("policy %s: %w", p, err)
				}
				return out, nil
			},
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var rep *runner.Reporter
	if len(policies) > 1 {
		rep = runner.NewReporter(os.Stderr)
	}
	results, err := runner.Run(ctx, runner.Config{Workers: *workers, Reporter: rep}, jobs)
	if err != nil {
		log.Fatal(err)
	}
	if err := runner.FirstError(results); err != nil {
		log.Fatal(err)
	}

	if *interval > 0 {
		for _, r := range results {
			prefix := *telemetryOut
			if len(results) > 1 {
				prefix += "-" + r.Value.Policy
			}
			if err := r.Value.Sampler.WritePair(prefix); err != nil {
				log.Fatal(err)
			}
			log.Printf("telemetry: wrote %s.csv and %s.jsonl (%d samples)",
				prefix, prefix, len(r.Value.Sampler.Samples()))
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if len(results) == 1 {
			if err := enc.Encode(results[0].Value.Result); err != nil {
				log.Fatal(err)
			}
			return
		}
		outs := make([]outcome, len(results))
		for i, r := range results {
			outs[i] = r.Value
		}
		if err := enc.Encode(outs); err != nil {
			log.Fatal(err)
		}
		return
	}

	for i, r := range results {
		if i > 0 {
			fmt.Println()
		}
		report(r.Value.Config, r.Value.Result)
		if r.Value.Telemetry != nil {
			telemetryReport(*r.Value.Telemetry)
		}
	}
	if len(results) > 1 {
		fmt.Println()
		summary := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
		fmt.Fprintln(summary, "policy\tthroughput\tvs first\tLLC misses\tincl.victims")
		base := results[0].Value.Result.Throughput
		for _, r := range results {
			res := r.Value.Result
			rel := 0.0
			if base > 0 {
				rel = res.Throughput / base
			}
			fmt.Fprintf(summary, "%s\t%.3f\t%+.1f%%\t%d\t%d\n",
				r.Value.Policy, res.Throughput, 100*(rel-1), res.LLCMisses, res.InclusionVictims)
		}
		summary.Flush()
	}
}

// decisionTracePath derives one policy's decision-trace path: when
// comparing, the policy name is inserted before the extension so
// parallel jobs never write to the same file.
func decisionTracePath(base, policy string, comparing bool) string {
	if !comparing {
		return base
	}
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "-" + policy + ext
}

// traceFactory loads TLAT1 files once and returns a factory minting
// fresh looping replay generators over the shared immutable records.
func traceFactory(paths []string) (func() ([]trace.Generator, error), int, error) {
	records := make([][]trace.Instr, len(paths))
	names := make([]string, len(paths))
	for i, path := range paths {
		path = strings.TrimSpace(path)
		names[i] = path
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, err
		}
		r, err := trace.NewReader(f)
		if err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("%s: %w", path, err)
		}
		recs, err := r.ReadAll()
		f.Close()
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", path, err)
		}
		records[i] = recs
	}
	return func() ([]trace.Generator, error) {
		out := make([]trace.Generator, len(records))
		for i := range records {
			var err error
			if out[i], err = trace.NewReplay(names[i], records[i]); err != nil {
				return nil, fmt.Errorf("%s: %w", names[i], err)
			}
		}
		return out, nil
	}, len(paths), nil
}

// profileFactory loads profile JSON files once and returns a factory
// minting fresh synthetic generators with the same seeds.
func profileFactory(paths []string, seed uint64) (func() ([]trace.Generator, error), int, error) {
	profiles := make([]trace.Profile, len(paths))
	names := make([]string, len(paths))
	for i, path := range paths {
		path = strings.TrimSpace(path)
		names[i] = path
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, err
		}
		p, err := trace.LoadProfile(f)
		f.Close()
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", path, err)
		}
		profiles[i] = p
	}
	return func() ([]trace.Generator, error) {
		out := make([]trace.Generator, len(profiles))
		for i := range profiles {
			var err error
			if out[i], err = trace.NewSynthetic(profiles[i], seed+uint64(i)*0x9e37); err != nil {
				return nil, fmt.Errorf("%s: %w", names[i], err)
			}
		}
		return out, nil
	}, len(paths), nil
}

// telemetryReport prints the probe summary collected alongside a run:
// event counts plus the QBS query-depth and ECI rescue-distance
// histograms when the policy produced them.
func telemetryReport(s telemetry.Summary) {
	if len(s.Events) == 0 && s.QBSQueryDepth == nil && s.ECIRescueDistance == nil {
		return
	}
	fmt.Println("\nprobe events:")
	names := make([]string, 0, len(s.Events))
	for name := range s.Events {
		names = append(names, name)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	for _, name := range names {
		fmt.Fprintf(tw, "  %s\t%d\n", name, s.Events[name])
	}
	tw.Flush()
	if h := s.QBSQueryDepth; h != nil {
		fmt.Printf("QBS query depth      mean %.2f, p50 %.0f, p99 %.0f, max %d\n",
			h.Mean, h.P50, h.P99, h.Max)
	}
	if h := s.ECIRescueDistance; h != nil {
		fmt.Printf("ECI rescue distance  mean %.1f, p50 %.0f, p99 %.0f, max %d\n",
			h.Mean, h.P50, h.P99, h.Max)
	}
}

func report(cfg sim.Config, res sim.MixResult) {
	h := cfg.Hierarchy
	fmt.Printf("machine: %d cores, LLC %dKB %d-way %s (%s), policy %s, prefetch %v\n",
		h.Cores, h.LLCSize>>10, h.LLCAssoc, h.LLCPolicy, h.Inclusion, h.TLA, h.EnablePrefetch)
	fmt.Printf("mix %s: %s (%s)\n\n", res.Mix.Name, strings.Join(res.Mix.Apps, ","), res.Mix.Categories())

	tw := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "core\tbench\tIPC\tL1 MPKI\tL2 MPKI\tLLC MPKI\tincl.victims")
	for i, a := range res.Apps {
		fmt.Fprintf(tw, "%d\t%s\t%.3f\t%.2f\t%.2f\t%.2f\t%d\n",
			i, a.Benchmark, a.IPC, a.L1MPKI, a.L2MPKI, a.LLCMPKI, a.InclusionVictims)
	}
	tw.Flush()

	t := res.Traffic
	fmt.Printf("\nthroughput           %.3f\n", res.Throughput)
	fmt.Printf("demand LLC misses    %d\n", res.LLCMisses)
	fmt.Printf("inclusion victims    %d\n", res.InclusionVictims)
	fmt.Printf("back-invalidates     %d\n", t.BackInvalidates)
	fmt.Printf("memory reads/writes  %d / %d\n", t.MemoryReads, t.WritebacksToMem)
	if t.TLHSent > 0 {
		fmt.Printf("TLH hints sent       %d\n", t.TLHSent)
	}
	if t.ECISent > 0 {
		fmt.Printf("ECI sent/invalidated %d / %d\n", t.ECISent, t.ECIInvalidated)
	}
	if t.QBSQueries > 0 {
		fmt.Printf("QBS queries/saves    %d / %d\n", t.QBSQueries, t.QBSSaves)
	}
	if t.PrefetchIssued > 0 {
		fmt.Printf("prefetches issued    %d (fills %d)\n", t.PrefetchIssued, t.PrefetchFills)
	}
	if t.VictimCacheHits > 0 {
		fmt.Printf("victim cache hits    %d\n", t.VictimCacheHits)
	}
}

// Command tracegen captures synthetic workload streams into the binary
// TLAT1 trace format and inspects existing trace files, so workloads
// can be archived, diffed, or replayed outside the synthetic
// generators.
//
// Usage:
//
//	tracegen -bench mcf -n 1000000 -o mcf.tlat
//	tracegen -inspect mcf.tlat
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"tlacache/internal/trace"
	"tlacache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	bench := flag.String("bench", "", "benchmark tag to capture")
	n := flag.Uint64("n", 1_000_000, "instructions to capture")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("o", "", "output trace file")
	inspect := flag.String("inspect", "", "trace file to summarise")
	flag.Parse()

	switch {
	case *inspect != "":
		if err := inspectTrace(*inspect); err != nil {
			log.Fatal(err)
		}
	case *bench != "" && *out != "":
		if err := capture(*bench, *out, *n, *seed); err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: tracegen -bench <tag> -o <file> [-n N] | tracegen -inspect <file>")
		os.Exit(2)
	}
}

func capture(bench, out string, n, seed uint64) error {
	b, err := workload.ByName(bench)
	if err != nil {
		return err
	}
	g, err := b.NewGenerator(seed)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	var in trace.Instr
	for i := uint64(0); i < n; i++ {
		g.Next(&in)
		if err := w.Write(in); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d instructions of %s to %s (%d bytes, %.2f B/instr)\n",
		w.Count(), bench, out, st.Size(), float64(st.Size())/float64(w.Count()))
	return nil
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var in trace.Instr
	var count, loads, stores uint64
	minPC, maxPC := ^uint64(0), uint64(0)
	dataLines := map[uint64]struct{}{}
	for {
		err := r.Read(&in)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		count++
		if in.PC < minPC {
			minPC = in.PC
		}
		if in.PC > maxPC {
			maxPC = in.PC
		}
		switch in.Op {
		case trace.OpLoad:
			loads++
		case trace.OpStore:
			stores++
		}
		if in.Op != trace.OpNone {
			dataLines[in.Addr>>6] = struct{}{}
		}
	}
	if count == 0 {
		return fmt.Errorf("trace %s is empty", path)
	}
	fmt.Printf("%s: %d instructions\n", path, count)
	fmt.Printf("  loads  %d (%.1f%%)\n", loads, 100*float64(loads)/float64(count))
	fmt.Printf("  stores %d (%.1f%%)\n", stores, 100*float64(stores)/float64(count))
	fmt.Printf("  code   [%#x, %#x] (%d bytes)\n", minPC, maxPC, maxPC-minPC+4)
	fmt.Printf("  data   %d distinct 64B lines (%.1f KB footprint)\n",
		len(dataLines), float64(len(dataLines))*64/1024)
	return nil
}

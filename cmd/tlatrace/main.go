// Command tlatrace analyzes LLC eviction decision traces captured with
// tlasim -decision-trace or experiments -decision-traces, and runs
// trace-grounded counterfactuals.
//
// Usage:
//
//	tlatrace analyze trace.tlad [more traces...]
//	tlatrace analyze -json trace.jsonl
//	tlatrace counterfactual -mix sje,lib -base baseline -alt qbs
//	tlatrace counterfactual -mix MIX_10 -base baseline -alt qbs -llc 512KB -json
//
// analyze replays one or more decision traces (binary TLAD1 or JSONL,
// sniffed automatically) and prints a per-policy decision-quality
// report: cold-fill/eviction/dirty rates, inclusion-victim attribution,
// the rank histogram of chosen ways, and the per-eviction QBS
// counterfactual (how often a query-based victim choice would have
// differed, and what it would have saved).
//
// counterfactual runs the full engine on a seeded config: the base
// policy simulates once with a decision tracer attached, the
// alternative policy simulates once as ground truth, and the report
// contrasts the trace-level prediction with the measured policy delta.
// Both runs are deterministic: the same invocation always renders
// byte-identical output, regardless of GOMAXPROCS.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"tlacache/internal/cli"
	"tlacache/internal/decision"
	"tlacache/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tlatrace: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "analyze":
		analyze(os.Args[2:])
	case "counterfactual":
		counterfactual(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		log.Printf("unknown subcommand %q", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tlatrace analyze [-json] <trace>...
  tlatrace counterfactual [-json] -mix <mix> -base <policy> -alt <policy> [flags]

run "tlatrace <subcommand> -h" for flags.`)
	os.Exit(2)
}

func analyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit reports as JSON")
	fs.Parse(args)
	paths := fs.Args()
	if len(paths) == 0 {
		log.Fatal("analyze: no trace files given")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for i, path := range paths {
		rep, err := decision.AnalyzeFile(path)
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut {
			if err := enc.Encode(rep); err != nil {
				log.Fatal(err)
			}
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		if len(paths) > 1 {
			fmt.Printf("== %s ==\n", path)
		}
		if err := rep.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

func counterfactual(args []string) {
	fs := flag.NewFlagSet("counterfactual", flag.ExitOnError)
	mixArg := fs.String("mix", "sje,lib", "Table II mix name or comma-separated benchmark tags")
	basePolicy := fs.String("base", "baseline",
		"policy the decision trace is captured under ("+strings.Join(cli.PolicyNames(), " | ")+")")
	altPolicy := fs.String("alt", "qbs", "counterfactual policy simulated directly as ground truth")
	llc := fs.String("llc", "", "LLC size override, e.g. 512KB, 1MB")
	n := fs.Uint64("n", 400_000, "measured instructions per core")
	w := fs.Uint64("w", 400_000, "warmup instructions per core")
	seed := fs.Uint64("seed", 1, "workload seed")
	noPrefetch := fs.Bool("no-prefetch", false, "disable the stream prefetcher")
	jsonOut := fs.Bool("json", false, "emit the result as JSON")
	fs.Parse(args)

	mix, err := cli.ResolveMix(*mixArg)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.DefaultConfig(len(mix.Apps))
	cfg.Instructions = *n
	cfg.Warmup = *w
	cfg.Seed = *seed
	cfg.Hierarchy.EnablePrefetch = !*noPrefetch
	if *llc != "" {
		size, err := cli.ParseSize(*llc)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Hierarchy.LLCSize = size
	}

	res, err := decision.RunCounterfactual(decision.CounterfactualConfig{
		Sim: cfg, Mix: mix, BasePolicy: *basePolicy, AltPolicy: *altPolicy,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := res.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tlacache/internal/analysis"
)

// writeBadModule lays out a throwaway module whose single internal
// package carries one known violation per analyzer that applies to it.
func writeBadModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module badmod\n\ngo 1.22\n",
		// Line numbers matter: the test below pins panic(err) to line 6.
		"internal/widget/widget.go": `package widget

// Explode re-throws a bare error, which panicmsg forbids.
func Explode(err error) {
	if err != nil {
		panic(err)
	}
	panic("no prefix here")
}
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestRunFlagsFindings drives the real CLI entry point against a bad
// module: exit status 1, and the JSON findings carry the expected
// analyzer, file, and line.
func TestRunFlagsFindings(t *testing.T) {
	dir := writeBadModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("decoding findings: %v\n%s", err, stdout.String())
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(diags), diags)
	}
	want := filepath.Join("internal", "widget", "widget.go")
	bare := diags[0]
	if bare.Analyzer != "panicmsg" || bare.File != want || bare.Line != 6 {
		t.Errorf("finding 0 = %s, want panicmsg at %s:6", bare, want)
	}
	if !strings.Contains(bare.Message, "bare panic(err)") {
		t.Errorf("finding 0 message %q does not mention bare panic(err)", bare.Message)
	}
	missing := diags[1]
	if missing.Analyzer != "panicmsg" || missing.File != want || missing.Line != 8 {
		t.Errorf("finding 1 = %s, want panicmsg at %s:8", missing, want)
	}
}

// TestRunCleanModule checks exit 0 and an empty JSON array for a module
// with nothing to report.
func TestRunCleanModule(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module okmod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := "package okmod\n\n// V is fine.\nvar V = 1\n"
	if err := os.WriteFile(filepath.Join(dir, "ok.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Fatalf("stdout = %q, want empty JSON array", got)
	}
}

// TestRunOutFile checks the -out sidecar used by CI to publish findings.
func TestRunOutFile(t *testing.T) {
	dir := writeBadModule(t)
	outPath := filepath.Join(t.TempDir(), "findings.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-out", outPath, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("reading -out file: %v", err)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		t.Fatalf("decoding -out file: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("-out holds %d findings, want 2", len(diags))
	}
	// The text rendering on stdout must agree with the sidecar.
	if !strings.Contains(stdout.String(), "widget.go:6:") {
		t.Errorf("stdout %q lacks the widget.go:6 diagnostic", stdout.String())
	}
}

// TestRunUnknownCheck pins the usage-error exit code.
func TestRunUnknownCheck(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks", "nosuch", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tlacache/internal/analysis"
)

// writeBadModule lays out a throwaway module whose single internal
// package carries one known violation per analyzer that applies to it.
func writeBadModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module badmod\n\ngo 1.22\n",
		// Line numbers matter: the test below pins panic(err) to line 6.
		"internal/widget/widget.go": `package widget

// Explode re-throws a bare error, which panicmsg forbids.
func Explode(err error) {
	if err != nil {
		panic(err)
	}
	panic("no prefix here")
}
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestRunFlagsFindings drives the real CLI entry point against a bad
// module: exit status 1, and the JSON findings carry the expected
// analyzer, file, and line.
func TestRunFlagsFindings(t *testing.T) {
	dir := writeBadModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("decoding findings: %v\n%s", err, stdout.String())
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(diags), diags)
	}
	want := filepath.Join("internal", "widget", "widget.go")
	bare := diags[0]
	if bare.Analyzer != "panicmsg" || bare.File != want || bare.Line != 6 {
		t.Errorf("finding 0 = %s, want panicmsg at %s:6", bare, want)
	}
	if !strings.Contains(bare.Message, "bare panic(err)") {
		t.Errorf("finding 0 message %q does not mention bare panic(err)", bare.Message)
	}
	missing := diags[1]
	if missing.Analyzer != "panicmsg" || missing.File != want || missing.Line != 8 {
		t.Errorf("finding 1 = %s, want panicmsg at %s:8", missing, want)
	}
}

// TestRunCleanModule checks exit 0 and an empty JSON array for a module
// with nothing to report.
func TestRunCleanModule(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module okmod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := "package okmod\n\n// V is fine.\nvar V = 1\n"
	if err := os.WriteFile(filepath.Join(dir, "ok.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Fatalf("stdout = %q, want empty JSON array", got)
	}
}

// TestRunOutFile checks the -out sidecar used by CI to publish findings.
func TestRunOutFile(t *testing.T) {
	dir := writeBadModule(t)
	outPath := filepath.Join(t.TempDir(), "findings.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-out", outPath, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("reading -out file: %v", err)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		t.Fatalf("decoding -out file: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("-out holds %d findings, want 2", len(diags))
	}
	// The text rendering on stdout must agree with the sidecar.
	if !strings.Contains(stdout.String(), "widget.go:6:") {
		t.Errorf("stdout %q lacks the widget.go:6 diagnostic", stdout.String())
	}
}

// TestRunUnknownCheck pins the usage-error exit code.
func TestRunUnknownCheck(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks", "nosuch", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
}

// TestRunList checks that -list names every registered check with its
// default-enabled status and analysis scope.
func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output lacks check %q:\n%s", a.Name, out)
		}
		if a.Doc == "" {
			t.Errorf("check %q registers with an empty Doc", a.Name)
		}
		if a.Help == "" {
			t.Errorf("check %q registers with no Help text (required for SARIF rule metadata)", a.Name)
		}
	}
	if !strings.Contains(out, "[default, module]") {
		t.Errorf("-list does not mark any interprocedural check:\n%s", out)
	}
	if !strings.Contains(out, "[default, package]") {
		t.Errorf("-list does not mark any per-package check:\n%s", out)
	}
	if lines := strings.Count(strings.TrimSpace(out), "\n") + 1; lines != len(analysis.Analyzers()) {
		t.Errorf("-list printed %d lines, want %d", lines, len(analysis.Analyzers()))
	}
}

// TestRunBaselineRoundTrip exercises the full baseline lifecycle
// against a module with known findings: -update-baseline records them
// and exits 0; a run with -baseline suppresses exactly those findings;
// and once the code is fixed, -fail-stale turns the now-unused entries
// into a ratchet failure.
func TestRunBaselineRoundTrip(t *testing.T) {
	dir := writeBadModule(t)
	basePath := filepath.Join(t.TempDir(), "baseline.json")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-baseline", basePath, "-update-baseline", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-update-baseline run = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	b, err := analysis.LoadBaseline(basePath)
	if err != nil {
		t.Fatalf("reading written baseline: %v", err)
	}
	if len(b.Entries) != 2 {
		t.Fatalf("baseline holds %d entries, want 2: %+v", len(b.Entries), b.Entries)
	}

	// With the baseline applied the same module is clean.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-baseline", basePath, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run = %d, want 0 (stderr: %s)", code, stderr.String())
	}

	// Fix the module: the baseline entries go stale, and -fail-stale
	// turns that into the ratchet failure CI uses.
	fixed := "package widget\n\n// Calm is beyond reproach.\nfunc Calm() int { return 1 }\n"
	widget := filepath.Join(dir, "internal", "widget", "widget.go")
	if err := os.WriteFile(widget, []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-baseline", basePath, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("stale baseline without -fail-stale run = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "stale baseline entry") {
		t.Errorf("stderr %q does not report stale entries", stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-baseline", basePath, "-fail-stale", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("-fail-stale run = %d, want 1 (stderr: %s)", code, stderr.String())
	}
}

// TestRunSARIF checks the -sarif rendering: a valid SARIF 2.1.0 log on
// stdout with one result per finding and the rule table naming every
// registered check.
func TestRunSARIF(t *testing.T) {
	dir := writeBadModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-sarif", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("decoding SARIF: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("SARIF version %q with %d runs, want 2.1.0 with 1", log.Version, len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "tlavet" {
		t.Errorf("driver name %q, want tlavet", r.Tool.Driver.Name)
	}
	if len(r.Tool.Driver.Rules) != len(analysis.Analyzers()) {
		t.Errorf("rule table has %d rules, want %d", len(r.Tool.Driver.Rules), len(analysis.Analyzers()))
	}
	if len(r.Results) != 2 {
		t.Fatalf("SARIF holds %d results, want 2", len(r.Results))
	}
	first := r.Results[0]
	if first.RuleID != "panicmsg" {
		t.Errorf("result 0 ruleId %q, want panicmsg", first.RuleID)
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/widget/widget.go" || loc.Region.StartLine != 6 {
		t.Errorf("result 0 at %s:%d, want internal/widget/widget.go:6",
			loc.ArtifactLocation.URI, loc.Region.StartLine)
	}
	// -json and -sarif together is a usage error.
	if code := run([]string{"-C", dir, "-json", "-sarif", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("-json -sarif run = %d, want 2", code)
	}
}

// TestRunFailStaleAllows drives the stale-suppression detector: an
// allow directive that suppresses a real finding is fine, and once the
// finding is gone the directive itself becomes the finding.
func TestRunFailStaleAllows(t *testing.T) {
	dir := writeBadModule(t)
	widget := filepath.Join(dir, "internal", "widget", "widget.go")
	suppressed := `package widget

// Explode re-throws a bare error, with both findings suppressed.
func Explode(err error) {
	if err != nil {
		//tlavet:allow panicmsg wrapping adds nothing here
		panic(err)
	}
	//tlavet:allow panicmsg prefix is implied by the only caller
	panic("no prefix here")
}
`
	if err := os.WriteFile(widget, []byte(suppressed), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-fail-stale-allows", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("suppressed run = %d, want 0 (stdout: %s stderr: %s)", code, stdout.String(), stderr.String())
	}

	// Fix the panics: the directives now suppress nothing and must be
	// reported as stale.
	fixed := `package widget

// Explode is now beyond reproach.
func Explode(err error) {
	if err != nil {
		//tlavet:allow panicmsg wrapping adds nothing here
		panic("widget: " + err.Error())
	}
}
`
	if err := os.WriteFile(widget, []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-fail-stale-allows", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("stale run = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "stale //tlavet:allow panicmsg") {
		t.Errorf("stdout %q does not report the stale directive", stdout.String())
	}
	// Without the flag the stale directive is tolerated.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("run without -fail-stale-allows = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	// A filtered run cannot prove a directive unused: usage error.
	if code := run([]string{"-C", dir, "-fail-stale-allows", "./internal/widget"}, &stdout, &stderr); code != 2 {
		t.Fatalf("filtered -fail-stale-allows run = %d, want 2", code)
	}
}

// TestRunBaselineFlagValidation pins the usage errors of the baseline
// flag family.
func TestRunBaselineFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-update-baseline", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("-update-baseline without -baseline run = %d, want 2", code)
	}
	if code := run([]string{"-fail-stale", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("-fail-stale without -baseline run = %d, want 2", code)
	}
	dir := writeBadModule(t)
	if code := run([]string{"-C", dir, "-baseline", filepath.Join(dir, "nosuch.json"), "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing baseline file run = %d, want 2", code)
	}
}

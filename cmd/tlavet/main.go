// Command tlavet is the TLA simulator's domain-aware static analyzer.
// It loads the module with the standard library's go/parser and
// go/types (no external dependencies) and runs checks for properties
// the type system cannot express but the paper's results depend on:
//
//	nondeterminism     no time.Now / math/rand / state-mutating map
//	                   iteration in simulation packages
//	probeguard         telemetry probe calls dominated by nil checks
//	panicmsg           package-prefixed panics, no bare panic(err)
//	counterdiscipline  Traffic/Recorder counters only ever incremented
//	floatcmp           no ==/!= on floats in metrics/experiments
//
// Usage:
//
//	tlavet ./...                 # analyze the whole module
//	tlavet ./internal/...        # restrict to a subtree
//	tlavet -checks panicmsg ./...
//	tlavet -json ./...           # findings as a JSON array on stdout
//	tlavet -out findings.json ./...  # text to stdout, JSON to a file
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage
// or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"tlacache/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tlavet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	outFile := fs.String("out", "", "also write findings as JSON to this file")
	checks := fs.String("checks", "all", "comma-separated checks to run")
	list := fs.Bool("list", false, "list available checks and exit")
	dir := fs.String("C", ".", "directory to locate the module from")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := analysis.Select(*checks)
	if err != nil {
		fmt.Fprintln(stderr, "tlavet:", err)
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "tlavet:", err)
		return 2
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "tlavet:", err)
		return 2
	}

	filter, err := patternFilter(mod.Path, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "tlavet:", err)
		return 2
	}
	diags := analysis.RunModule(mod, analyzers, filter)

	if *outFile != "" {
		if err := writeJSON(*outFile, diags); err != nil {
			fmt.Fprintln(stderr, "tlavet:", err)
			return 2
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "tlavet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "tlavet: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// patternFilter turns `./...`-style package patterns into an import
// path predicate. No patterns (or any `./...`) selects everything.
func patternFilter(modPath string, patterns []string) (func(string) bool, error) {
	if len(patterns) == 0 {
		return nil, nil
	}
	var prefixes []string
	for _, p := range patterns {
		switch {
		case p == "./..." || p == "..." || p == "all":
			return nil, nil
		case strings.HasPrefix(p, "./"):
			p = strings.TrimPrefix(p, "./")
			fallthrough
		default:
			p = strings.TrimSuffix(p, "...")
			p = strings.TrimSuffix(p, "/")
			if p == "" {
				return nil, nil
			}
			prefixes = append(prefixes, modPath+"/"+p)
		}
	}
	return func(pkgPath string) bool {
		for _, pre := range prefixes {
			if pkgPath == pre || strings.HasPrefix(pkgPath, pre+"/") || strings.HasPrefix(pkgPath, pre) {
				return true
			}
		}
		return false
	}, nil
}

// writeJSON writes diags as an indented JSON array to path.
func writeJSON(path string, diags []analysis.Diagnostic) error {
	if diags == nil {
		diags = []analysis.Diagnostic{}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(diags); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Command tlavet is the TLA simulator's domain-aware static analyzer.
// It loads the module with the standard library's go/parser and
// go/types (no external dependencies) and runs checks for properties
// the type system cannot express but the paper's results depend on:
//
//	nondeterminism     no wall clocks (Now/Since/Until), math/rand (under
//	                   any alias), state-mutating map iteration, or
//	                   sync.Map iteration in simulation packages
//	probeguard         telemetry probe calls dominated by nil checks
//	panicmsg           package-prefixed panics, no bare panic(err)
//	counterdiscipline  Traffic/Recorder counters only ever incremented
//	floatcmp           no ==/!= on floats in metrics/experiments
//	hotpath            no heap allocation reachable from //tlavet:hotpath
//	                   roots (interprocedural, call chains in findings)
//	lockdiscipline     runner/telemetry/service/sim/decision mutex
//	                   discipline
//	detflow            no nondeterministic value or ordering flows into a
//	                   //tlavet:detsink function (interprocedural taint,
//	                   source→sink chains in findings)
//	keycover           every field of a //tlavet:keycover'd config struct
//	                   is encoded or carries //tlavet:keyexempt <reason>
//	exhaustive         switches over //tlavet:exhaustive enum types name
//	                   every constant (a default arm does not satisfy)
//	resetcover         every field reachable from a //tlavet:resetcover'd
//	                   reset method's receiver is restored or carries
//	                   //tlavet:resetexempt <reason>
//	gatecover          every field of the types a //tlavet:gatecover'd
//	                   mode gate names is examined by the gate or carries
//	                   //tlavet:gateexempt <reason>
//	llcwrite           capture-phase-reachable code mutates
//	                   //tlavet:llcstate fields only inside the
//	                   //tlavet:llcaccessor set (rogue writes would make
//	                   the captured LLCOpSink stream incomplete)
//
// Usage:
//
//	tlavet ./...                 # analyze the whole module
//	tlavet ./internal/...        # restrict to a subtree
//	tlavet -checks hotpath ./...
//	tlavet -json ./...           # findings as a JSON array on stdout
//	tlavet -sarif ./...          # findings as SARIF 2.1.0 on stdout
//	tlavet -out findings.json ./...  # text to stdout, JSON to a file
//	tlavet -fail-stale-allows ./...  # unused //tlavet:allow directives fail
//	tlavet -baseline tlavet.baseline.json ./...   # suppress accepted findings
//	tlavet -baseline b.json -update-baseline ./...  # regenerate the baseline
//	tlavet -baseline b.json -fail-stale ./...       # ratchet: stale entries fail
//
// Individual findings are suppressed in source with a justified
// directive on or above the offending line:
//
//	//tlavet:allow <check> <reason>
//
// With -fail-stale-allows (the CI default), a directive that no longer
// suppresses anything is itself reported, so the set of suppressions
// can only shrink.
//
// Exit status: 0 when clean, 1 when findings were reported (or, with
// -fail-stale, when the baseline has stale entries), 2 on usage or load
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tlacache/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tlavet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log on stdout")
	outFile := fs.String("out", "", "also write findings as JSON to this file")
	failStaleAllows := fs.Bool("fail-stale-allows", false, "report //tlavet:allow directives that suppress nothing as findings")
	checks := fs.String("checks", "all", "comma-separated checks to run")
	list := fs.Bool("list", false, "list available checks and exit")
	dir := fs.String("C", ".", "directory to locate the module from")
	baseline := fs.String("baseline", "", "suppress findings recorded in this baseline file")
	updateBaseline := fs.Bool("update-baseline", false, "rewrite the -baseline file from current findings and exit clean")
	failStale := fs.Bool("fail-stale", false, "exit 1 when the -baseline file has entries no finding matches (ratchet)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := analysis.Select(*checks)
	if err != nil {
		fmt.Fprintln(stderr, "tlavet:", err)
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			scope := "package"
			if a.Interprocedural() {
				scope = "module"
			}
			enabled := "default"
			if !a.Default {
				enabled = "opt-in"
			}
			fmt.Fprintf(stdout, "%-18s [%s, %s] %s\n", a.Name, enabled, scope, a.Doc)
		}
		return 0
	}
	if (*updateBaseline || *failStale) && *baseline == "" {
		fmt.Fprintln(stderr, "tlavet: -update-baseline and -fail-stale require -baseline")
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "tlavet: -json and -sarif are mutually exclusive")
		return 2
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "tlavet:", err)
		return 2
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "tlavet:", err)
		return 2
	}

	filter, err := patternFilter(mod.Path, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "tlavet:", err)
		return 2
	}
	if *failStaleAllows && filter != nil {
		fmt.Fprintln(stderr, "tlavet: -fail-stale-allows requires an unfiltered run (./...): a restricted run cannot prove a directive unused")
		return 2
	}
	res := analysis.RunModuleFull(mod, analyzers, filter)
	diags := res.Diagnostics
	if *failStaleAllows {
		diags = mergeSorted(diags, res.StaleAllows)
	}

	staleFailure := false
	if *baseline != "" {
		if *updateBaseline {
			if err := analysis.NewBaseline(diags).WriteFile(*baseline); err != nil {
				fmt.Fprintln(stderr, "tlavet:", err)
				return 2
			}
			fmt.Fprintf(stderr, "tlavet: baseline %s updated (%d finding(s) recorded)\n", *baseline, len(diags))
			return 0
		}
		b, err := analysis.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "tlavet:", err)
			return 2
		}
		fresh, stale := b.Filter(diags)
		diags = fresh
		for _, e := range stale {
			fmt.Fprintf(stderr, "tlavet: stale baseline entry: %s: %s: %s (x%d no longer found)\n",
				e.File, e.Analyzer, e.Message, e.Count)
		}
		if len(stale) > 0 && *failStale {
			fmt.Fprintf(stderr, "tlavet: %d stale baseline entr(y/ies); regenerate with -update-baseline to ratchet down\n", len(stale))
			staleFailure = true
		}
	}

	if *outFile != "" {
		if err := writeJSON(*outFile, diags); err != nil {
			fmt.Fprintln(stderr, "tlavet:", err)
			return 2
		}
	}
	switch {
	case *sarifOut:
		out, err := analysis.SARIF(diags)
		if err != nil {
			fmt.Fprintln(stderr, "tlavet:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(out))
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "tlavet:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "tlavet: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 || staleFailure {
		return 1
	}
	return 0
}

// mergeSorted combines findings and stale-allow reports into one
// position-sorted stream.
func mergeSorted(a, b []analysis.Diagnostic) []analysis.Diagnostic {
	out := append(append([]analysis.Diagnostic{}, a...), b...)
	sort.Slice(out, func(i, j int) bool {
		x, y := out[i], out[j]
		if x.File != y.File {
			return x.File < y.File
		}
		if x.Line != y.Line {
			return x.Line < y.Line
		}
		if x.Col != y.Col {
			return x.Col < y.Col
		}
		return x.Analyzer < y.Analyzer
	})
	return out
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// patternFilter turns `./...`-style package patterns into an import
// path predicate. No patterns (or any `./...`) selects everything.
func patternFilter(modPath string, patterns []string) (func(string) bool, error) {
	if len(patterns) == 0 {
		return nil, nil
	}
	var prefixes []string
	for _, p := range patterns {
		switch {
		case p == "./..." || p == "..." || p == "all":
			return nil, nil
		case strings.HasPrefix(p, "./"):
			p = strings.TrimPrefix(p, "./")
			fallthrough
		default:
			p = strings.TrimSuffix(p, "...")
			p = strings.TrimSuffix(p, "/")
			if p == "" {
				return nil, nil
			}
			prefixes = append(prefixes, modPath+"/"+p)
		}
	}
	return func(pkgPath string) bool {
		for _, pre := range prefixes {
			if pkgPath == pre || strings.HasPrefix(pkgPath, pre+"/") || strings.HasPrefix(pkgPath, pre) {
				return true
			}
		}
		return false
	}, nil
}

// writeJSON writes diags as an indented JSON array to path.
func writeJSON(path string, diags []analysis.Diagnostic) error {
	if diags == nil {
		diags = []analysis.Diagnostic{}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(diags); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Quickstart: build the paper's baseline 2-core machine, run one
// CCF+LLCT workload mix under the inclusive baseline and under Query
// Based Selection, and compare.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tlacache"
)

func main() {
	log.SetFlags(0)

	// sjeng's working set fits the core caches; libquantum streams
	// through everything. On an inclusive LLC, lib's stream evicts
	// sje's hot lines (inclusion victims).
	const ccf, llct = "sje", "lib"

	for _, policy := range []tlacache.Policy{
		tlacache.PolicyBaseline,
		tlacache.PolicyQBS,
		tlacache.PolicyNonInclusive,
	} {
		m, err := tlacache.NewMachine(2,
			tlacache.WithPolicy(policy),
			tlacache.WithBudget(500_000, 1_200_000))
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.RunMix(ccf, llct)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s throughput %.3f   inclusion victims %6d   LLC misses %6d\n",
			policy, res.Throughput, res.InclusionVictims, res.LLCMisses)
	}

	fmt.Println("\nQBS should recover (nearly) the non-inclusive throughput while")
	fmt.Println("keeping the inclusive LLC's snoop-filter property.")
}

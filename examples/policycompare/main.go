// Policycompare runs one workload mix under every LLC management
// policy and prints a shoot-out table: throughput, LLC misses,
// inclusion victims, and the message traffic each policy costs. It is
// the narrative of the paper's Figure 9 on a single mix.
//
// Run with: go run ./examples/policycompare [bench1 bench2]
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"tlacache"
)

func main() {
	log.SetFlags(0)
	apps := []string{"pov", "mcf"} // the paper's MIX_09: CCF + LLCT
	if len(os.Args) == 3 {
		apps = os.Args[1:3]
	}

	type row struct {
		policy tlacache.Policy
		res    *tlacache.MixResult
	}
	var rows []row
	var baseline *tlacache.MixResult
	for _, p := range tlacache.Policies() {
		m, err := tlacache.NewMachine(2,
			tlacache.WithPolicy(p),
			tlacache.WithBudget(500_000, 1_200_000))
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.RunMix(apps[0], apps[1])
		if err != nil {
			log.Fatal(err)
		}
		if p == tlacache.PolicyBaseline {
			baseline = res
		}
		rows = append(rows, row{p, res})
	}

	fmt.Printf("mix: %s + %s\n\n", apps[0], apps[1])
	tw := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tthroughput\tvs baseline\tLLC misses\tincl.victims\textra messages")
	for _, r := range rows {
		extra := "-"
		switch {
		case r.res.TLHSent > 0:
			extra = fmt.Sprintf("%d hints", r.res.TLHSent)
		case r.res.ECISent > 0:
			extra = fmt.Sprintf("%d ECIs", r.res.ECISent)
		case r.res.QBSQueries > 0:
			extra = fmt.Sprintf("%d queries", r.res.QBSQueries)
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%+.1f%%\t%d\t%d\t%s\n",
			r.policy, r.res.Throughput,
			100*(r.res.Throughput/baseline.Throughput-1),
			r.res.LLCMisses, r.res.InclusionVictims, extra)
	}
	tw.Flush()

	fmt.Println("\nReading the table like the paper does:")
	fmt.Println("  - TLH wins but needs a hint per core-cache hit (huge bandwidth);")
	fmt.Println("  - ECI is cheap but time-window limited;")
	fmt.Println("  - QBS matches non-inclusion with only a few queries per LLC miss.")
}

// Ratiosweep reproduces the story of the paper's Figures 2 and 10 in
// miniature: as the LLC shrinks relative to the core caches (1:16 down
// to 1:2), the inclusive baseline falls further behind non-inclusion —
// and QBS keeps up with non-inclusion at every ratio.
//
// Run with: go run ./examples/ratiosweep
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"tlacache"
)

func main() {
	log.SetFlags(0)
	const ccf, llct = "h26", "gob" // the paper's MIX_05

	tw := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "L2:LLC ratio\tLLC\tQBS vs inclusive\tnon-inclusive vs inclusive")
	for _, sz := range []struct {
		bytes int64
		ratio string
	}{
		{1 << 20, "1:2"}, {2 << 20, "1:4"}, {4 << 20, "1:8"}, {8 << 20, "1:16"},
	} {
		run := func(p tlacache.Policy) float64 {
			m, err := tlacache.NewMachine(2,
				tlacache.WithPolicy(p),
				tlacache.WithLLCSize(sz.bytes),
				tlacache.WithBudget(400_000, 1_000_000))
			if err != nil {
				log.Fatal(err)
			}
			res, err := m.RunMix(ccf, llct)
			if err != nil {
				log.Fatal(err)
			}
			return res.Throughput
		}
		base := run(tlacache.PolicyBaseline)
		qbs := run(tlacache.PolicyQBS)
		noninc := run(tlacache.PolicyNonInclusive)
		fmt.Fprintf(tw, "%s\t%dMB\t%+.1f%%\t%+.1f%%\n",
			sz.ratio, sz.bytes>>20, 100*(qbs/base-1), 100*(noninc/base-1))
	}
	tw.Flush()
	fmt.Println("\nSmaller ratios (left column) mean a smaller LLC relative to the")
	fmt.Println("core caches: inclusion victims get worse, and so does the win from QBS.")
}

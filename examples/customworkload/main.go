// Customworkload shows how to study your own application's behaviour
// under the TLA policies: define a synthetic profile (or load one from
// JSON — the same format cmd/tlasim -profile accepts), pair it with a
// cache-hostile neighbour, and compare inclusive-baseline vs QBS.
//
// The profile below models a latency-sensitive service: a hot 16KB
// core loop, a 128KB session table with uniform reuse, and a light
// logging stream.
//
// Run with: go run ./examples/customworkload
package main

import (
	"fmt"
	"log"
	"os"

	"tlacache/internal/hierarchy"
	"tlacache/internal/sim"
	"tlacache/internal/trace"
	"tlacache/internal/workload"
)

func main() {
	log.SetFlags(0)

	service := trace.Profile{
		Name:          "service",
		CodeBytes:     24 << 10,
		BranchEvery:   8,
		MemPerMille:   380,
		StorePerMille: 300,
		Components: []trace.Component{
			{Weight: 90, Pattern: trace.Random, WS: 16 << 10},           // hot state
			{Weight: 9, Pattern: trace.Random, WS: 128 << 10},           // session table
			{Weight: 1, Pattern: trace.Stream, WS: 1 << 30, Stride: 64}, // log writer
		},
	}
	// The same definition serialises to JSON for cmd/tlasim -profile.
	if err := trace.SaveProfile(os.Stdout, service); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	neighbour, err := workload.ByName("lib") // a streaming cache destroyer
	if err != nil {
		log.Fatal(err)
	}

	for _, tla := range []hierarchy.TLAPolicy{hierarchy.TLANone, hierarchy.TLAQBS} {
		cfg := sim.DefaultConfig(2)
		cfg.Instructions = 400_000
		cfg.Warmup = 1_200_000
		cfg.Hierarchy.EnablePrefetch = true
		cfg.Hierarchy.TLA = tla

		svc, err := trace.NewSynthetic(service, 1)
		if err != nil {
			log.Fatal(err)
		}
		noisy, err := neighbour.NewGenerator(2)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.RunGenerators(cfg, []trace.Generator{svc, noisy})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("policy %-4v: service IPC %.3f (L1 MPKI %.2f, inclusion victims %d), neighbour IPC %.3f\n",
			tla, res.Apps[0].IPC, res.Apps[0].L1MPKI, res.Apps[0].InclusionVictims, res.Apps[1].IPC)
	}
	fmt.Println("\nQBS protects the service's hot lines from the neighbour's stream")
	fmt.Println("without giving up the inclusive LLC's snoop filtering.")
}

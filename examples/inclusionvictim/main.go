// Inclusionvictim walks through the paper's Figure 3 on a toy machine:
// a 2-entry fully-associative L1 over a 4-entry fully-associative LLC,
// fed the reference pattern  a, b, a, c, a, d, a, e, a.
//
// Under the inclusive baseline the reference to 'e' evicts the hot line
// 'a' from the LLC and — by inclusion — from the L1: an inclusion
// victim. TLH, ECI, and QBS each prevent the damage in their own way.
//
// Run with: go run ./examples/inclusionvictim
package main

import (
	"fmt"
	"log"

	"tlacache/internal/cache"
	"tlacache/internal/hierarchy"
	"tlacache/internal/replacement"
)

var names = map[uint64]string{}

func toy(tla hierarchy.TLAPolicy) *hierarchy.Hierarchy {
	cfg := hierarchy.DefaultConfig(1)
	cfg.L1ISize, cfg.L1IAssoc = 128, 2
	cfg.L1DSize, cfg.L1DAssoc = 128, 2
	cfg.L2Size, cfg.L2Assoc = 128, 2
	cfg.LLCSize, cfg.LLCAssoc = 256, 4
	cfg.LLCPolicy = replacement.LRU // the figure shows LRU chains
	cfg.TLA = tla
	if tla == hierarchy.TLATLH {
		cfg.TLHSources = hierarchy.L1Caches
	}
	h, err := hierarchy.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return h
}

func contents(h *hierarchy.Hierarchy) (l1, llc string) {
	h.L1D(0).ForEachValid(func(line cache.Line) { l1 += names[line.Addr] })
	h.LLC().ForEachValid(func(line cache.Line) { llc += names[line.Addr] })
	return l1, llc
}

func main() {
	log.SetFlags(0)
	lines := []uint64{0x000, 0x040, 0x080, 0x0c0, 0x100}
	for i, l := range lines {
		names[l] = string(rune('a' + i))
	}
	a, b, c, d, e := lines[0], lines[1], lines[2], lines[3], lines[4]
	pattern := []uint64{a, b, a, c, a, d, a, e, a}

	policies := []struct {
		name string
		tla  hierarchy.TLAPolicy
	}{
		{"baseline (Figure 3a)", hierarchy.TLANone},
		{"TLH      (Figure 3b)", hierarchy.TLATLH},
		{"ECI      (Figure 3c)", hierarchy.TLAECI},
		{"QBS      (Figure 3d)", hierarchy.TLAQBS},
	}
	for _, p := range policies {
		h := toy(p.tla)
		fmt.Printf("--- %s ---\n", p.name)
		for _, addr := range pattern {
			res := h.Access(0, hierarchy.Load, addr)
			l1, llc := contents(h)
			fmt.Printf("ref %s: served by %-7s  L1={%s}  LLC={%s}\n",
				names[addr], level(res.Level), l1, llc)
		}
		fmt.Printf("inclusion victims: %d\n\n", h.TotalInclusionVictims())
	}
	fmt.Println("Only the baseline loses hot line 'a' to an inclusion victim;")
	fmt.Println("its final reference to 'a' goes all the way to memory.")
}

func level(l hierarchy.Level) string {
	switch l {
	case hierarchy.LevelL1:
		return "L1"
	case hierarchy.LevelL2:
		return "L2"
	case hierarchy.LevelLLC:
		return "LLC"
	case hierarchy.LevelVictimCache:
		return "victim"
	case hierarchy.LevelMemory:
		return "memory"
	}
	return "memory"
}

module tlacache

go 1.22

package tlacache

// One benchmark per paper artifact. Each BenchmarkTableN/BenchmarkFigureN
// regenerates that table or figure at a reduced instruction budget per
// iteration, so `go test -bench=.` both exercises every experiment
// end-to-end and reports the simulator's cost per artifact. Full-scale
// regeneration (paper-comparable numbers over all 105 workloads) is
// `go run ./cmd/experiments -run all -pairs`.

import (
	"fmt"
	"runtime"
	"testing"

	"tlacache/internal/experiments"
	"tlacache/internal/hierarchy"
	"tlacache/internal/sim"
	"tlacache/internal/telemetry"
	"tlacache/internal/workload"
)

// benchOptions are deliberately small: benchmarks measure harness cost,
// not paper fidelity.
func benchOptions() experiments.Options {
	return experiments.Options{Instructions: 30_000, Warmup: 50_000, Seed: 1}
}

func runArtifact(b *testing.B, name string) {
	b.Helper()
	runner, err := experiments.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOptions()
	// One untimed warmup regeneration populates the simulation pools
	// (machines, generators), so the benchmark reports the steady-state
	// cost per artifact that a sweep's 2nd..Nth cells actually pay.
	if _, err := runner(opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := runner(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables produced")
		}
	}
}

// BenchmarkTable1 regenerates the isolation MPKI characterisation.
func BenchmarkTable1(b *testing.B) { runArtifact(b, "table1") }

// BenchmarkTable2 regenerates the workload-mix table.
func BenchmarkTable2(b *testing.B) { runArtifact(b, "table2") }

// BenchmarkFigure2 regenerates the inclusion-mode comparison across
// cache ratios.
func BenchmarkFigure2(b *testing.B) { runArtifact(b, "figure2") }

// BenchmarkFigure5 regenerates the Temporal Locality Hints study.
func BenchmarkFigure5(b *testing.B) { runArtifact(b, "figure5") }

// BenchmarkFigure6 regenerates the Early Core Invalidation study.
func BenchmarkFigure6(b *testing.B) { runArtifact(b, "figure6") }

// BenchmarkFigure7 regenerates the Query Based Selection study
// (variants, query limits, s-curve).
func BenchmarkFigure7(b *testing.B) { runArtifact(b, "figure7") }

// BenchmarkFigure8 regenerates the LLC miss-reduction comparison.
func BenchmarkFigure8(b *testing.B) { runArtifact(b, "figure8") }

// BenchmarkFigure9 regenerates the policy summary on inclusive and
// non-inclusive baselines.
func BenchmarkFigure9(b *testing.B) { runArtifact(b, "figure9") }

// BenchmarkFigure10 regenerates the cache-ratio scalability sweep.
func BenchmarkFigure10(b *testing.B) { runArtifact(b, "figure10") }

// BenchmarkFigure11 regenerates the core-count scalability study.
func BenchmarkFigure11(b *testing.B) { runArtifact(b, "figure11") }

// BenchmarkTLHFraction regenerates the hint-fraction sensitivity study
// of section V-A.
func BenchmarkTLHFraction(b *testing.B) { runArtifact(b, "tlhfraction") }

// BenchmarkVictimCache regenerates the section VI victim-cache
// comparison.
func BenchmarkVictimCache(b *testing.B) { runArtifact(b, "victimcache") }

// BenchmarkModifiedQBS regenerates the footnote 6 modified-QBS study.
func BenchmarkModifiedQBS(b *testing.B) { runArtifact(b, "modifiedqbs") }

// BenchmarkL2Inclusive regenerates the footnote 3 inclusive-L2 study.
func BenchmarkL2Inclusive(b *testing.B) { runArtifact(b, "l2inclusive") }

// BenchmarkLLCReplacement regenerates the footnote 4 replacement-policy
// independence study.
func BenchmarkLLCReplacement(b *testing.B) { runArtifact(b, "llcreplacement") }

// BenchmarkSingleCore regenerates the section VI single-core study.
func BenchmarkSingleCore(b *testing.B) { runArtifact(b, "singlecore") }

// BenchmarkSnoopFilter regenerates the coherence-cost comparison.
func BenchmarkSnoopFilter(b *testing.B) { runArtifact(b, "snoopfilter") }

// BenchmarkDirectory regenerates the presence-directory ablation.
func BenchmarkDirectory(b *testing.B) { runArtifact(b, "directory") }

// BenchmarkRunnerParallel measures one figure regeneration (figure8:
// 12 mixes x 7 specs = 84 independent simulations) at one worker
// versus one worker per CPU — the speedup of the internal/runner
// job-execution engine on real experiment sweeps.
func BenchmarkRunnerParallel(b *testing.B) {
	run, err := experiments.ByName("figure8")
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := benchOptions()
			opts.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tables, err := run(opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(tables) == 0 {
					b.Fatal("no tables produced")
				}
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (instructions per second) on the baseline machine, the number that
// bounds every experiment above.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := sim.DefaultConfig(2)
	cfg.Instructions = 100_000
	cfg.Warmup = 0
	mix := workload.Mix{Name: "BENCH", Apps: []string{"sje", "lib"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunMix(cfg, mix); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(2 * cfg.Instructions)) // "bytes" = instructions, for MB/s ~ MI/s
}

// BenchmarkTelemetryOverhead measures what instrumentation costs on a
// QBS run (the policy with the most probe sites): "off" is the
// nil-probe fast path every uninstrumented run takes, "recorder" adds
// the event probe, and "recorder+sampler" adds the interval sampler on
// top. "off" is the configuration the <2% regression budget guards.
func BenchmarkTelemetryOverhead(b *testing.B) {
	base := sim.DefaultConfig(2)
	base.Instructions = 100_000
	base.Warmup = 0
	base.Hierarchy.TLA = hierarchy.TLAQBS
	mix := workload.Mix{Name: "BENCH", Apps: []string{"sje", "lib"}}
	for _, mode := range []string{"off", "recorder", "recorder+sampler"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := base
				switch mode {
				case "recorder":
					cfg.Probe = telemetry.NewRecorder()
				case "recorder+sampler":
					cfg.Probe = telemetry.NewRecorder()
					cfg.Sampler = telemetry.NewSampler(10_000)
				}
				if _, err := sim.RunMix(cfg, mix); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQBSOverhead isolates the per-miss cost of QBS victim
// selection against the unmanaged baseline.
func BenchmarkQBSOverhead(b *testing.B) {
	for _, name := range []string{"baseline", "qbs"} {
		name := name
		b.Run(name, func(b *testing.B) {
			cfg := sim.DefaultConfig(2)
			cfg.Instructions = 100_000
			cfg.Warmup = 0
			if name == "qbs" {
				m, err := NewMachine(2, WithPolicy(PolicyQBS), WithBudget(100_000, 0))
				if err != nil {
					b.Fatal(err)
				}
				cfg = m.cfg
			}
			mix := workload.Mix{Name: "BENCH", Apps: []string{"mcf", "lib"}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunMix(cfg, mix); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

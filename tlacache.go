// Package tlacache is a trace-driven CMP cache-hierarchy simulator that
// reproduces "Achieving Non-Inclusive Cache Performance with Inclusive
// Caches: Temporal Locality Aware (TLA) Cache Management Policies"
// (Jaleel, Borch, Bhandaru, Steely, Emer — MICRO 2010).
//
// The package is a facade over the full simulator: it builds the
// paper's baseline machine (per-core L1I/L1D/L2, shared LLC, stream
// prefetcher, out-of-order core model), selects an LLC management
// policy — the inclusive baseline, the paper's three Temporal Locality
// Aware policies (TLH, ECI, QBS), or the non-inclusive/exclusive
// hierarchies they are compared against — and runs multi-programmed
// mixes of the 15 synthetic SPEC CPU2006 surrogate workloads.
//
// Quickstart:
//
//	m, err := tlacache.NewMachine(2, tlacache.WithPolicy(tlacache.PolicyQBS))
//	if err != nil { ... }
//	res, err := m.RunMix("sje", "lib")
//	fmt.Printf("throughput %.3f, inclusion victims %d\n",
//	    res.Throughput, res.InclusionVictims)
//
// The full experiment harness behind the paper's figures lives in
// cmd/experiments; lower-level control (custom geometries, custom
// workload profiles, invariant checks) is available to code inside this
// module via the internal packages.
package tlacache

import (
	"fmt"

	"tlacache/internal/cli"
	"tlacache/internal/sim"
	"tlacache/internal/workload"
)

// Policy selects how the shared last-level cache is managed.
type Policy string

// The available LLC management policies.
const (
	// PolicyBaseline is the unmanaged inclusive LLC (NRU replacement).
	PolicyBaseline Policy = "baseline"
	// PolicyTLH sends temporal locality hints from both L1 caches on
	// every hit (the paper's TLH-L1 limit study).
	PolicyTLH Policy = "tlh"
	// PolicyTLHL2 sends hints from the L2 instead (TLH-L2).
	PolicyTLHL2 Policy = "tlh-l2"
	// PolicyECI performs Early Core Invalidation.
	PolicyECI Policy = "eci"
	// PolicyQBS performs Query Based Selection probing every core
	// cache (the paper's QBS-L1-L2, its best policy).
	PolicyQBS Policy = "qbs"
	// PolicyQBSL1 restricts QBS queries to the L1 caches (QBS-L1).
	PolicyQBSL1 Policy = "qbs-l1"
	// PolicyQBSModified is the paper's footnote 6 QBS variant: saved
	// lines stay protected in the LLC but are invalidated from the core
	// caches (it performs like plain QBS, proving the benefit is
	// avoided memory latency).
	PolicyQBSModified Policy = "qbs-modified"
	// PolicyNonInclusive drops inclusion (no back-invalidates).
	PolicyNonInclusive Policy = "non-inclusive"
	// PolicyExclusive runs an exclusive hierarchy.
	PolicyExclusive Policy = "exclusive"
)

// Policies lists every valid Policy value.
func Policies() []Policy {
	out := make([]Policy, 0, len(cli.PolicyNames()))
	for _, n := range cli.PolicyNames() {
		out = append(out, Policy(n))
	}
	return out
}

// Option customises a Machine.
type Option func(*sim.Config) error

// WithPolicy selects the LLC management policy (default PolicyBaseline).
func WithPolicy(p Policy) Option {
	return func(c *sim.Config) error {
		if err := cli.ApplyPolicy(&c.Hierarchy, string(p)); err != nil {
			return fmt.Errorf("tlacache: %w", err)
		}
		return nil
	}
}

// WithLLCSize overrides the shared LLC capacity in bytes (default 1MB
// per core, the paper's 1:4 ratio).
func WithLLCSize(bytes int64) Option {
	return func(c *sim.Config) error {
		if bytes <= 0 {
			return fmt.Errorf("tlacache: LLC size %d must be positive", bytes)
		}
		c.Hierarchy.LLCSize = bytes
		return nil
	}
}

// WithBudget sets the measured and warmup instruction counts per core.
func WithBudget(instructions, warmup uint64) Option {
	return func(c *sim.Config) error {
		if instructions == 0 {
			return fmt.Errorf("tlacache: zero instruction budget")
		}
		c.Instructions, c.Warmup = instructions, warmup
		return nil
	}
}

// WithPrefetch enables or disables the stream prefetcher (default on,
// as in the paper's performance studies).
func WithPrefetch(on bool) Option {
	return func(c *sim.Config) error {
		c.Hierarchy.EnablePrefetch = on
		return nil
	}
}

// WithQBSQueryLimit bounds QBS queries per LLC miss (0 = the LLC
// associativity).
func WithQBSQueryLimit(n int) Option {
	return func(c *sim.Config) error {
		if n < 0 {
			return fmt.Errorf("tlacache: negative query limit %d", n)
		}
		c.Hierarchy.QBSMaxQueries = n
		return nil
	}
}

// WithBankedLLC enables the banked-LLC contention model with the given
// bank count (the paper assumes one bank per core). Zero disables
// banking (the default, matching the paper's fixed-average-latency
// interconnect model).
func WithBankedLLC(banks int) Option {
	return func(c *sim.Config) error {
		if banks < 0 {
			return fmt.Errorf("tlacache: negative bank count %d", banks)
		}
		c.Hierarchy.LLCBanks = banks
		return nil
	}
}

// WithSeed re-seeds the synthetic workload streams.
func WithSeed(seed uint64) Option {
	return func(c *sim.Config) error {
		c.Seed = seed
		return nil
	}
}

// Machine is a configured simulated CMP ready to run workload mixes.
type Machine struct {
	cfg sim.Config
}

// NewMachine builds the paper's baseline machine with the given number
// of cores (L1I/L1D 32KB 4-way, L2 256KB 8-way, shared 16-way LLC of
// 1MB per core, NRU LLC replacement, stream prefetcher) and applies the
// options.
func NewMachine(cores int, opts ...Option) (*Machine, error) {
	cfg := sim.DefaultConfig(cores)
	cfg.Hierarchy.EnablePrefetch = true
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Machine{cfg: cfg}, nil
}

// AppResult summarises one application's measurement window.
type AppResult struct {
	Benchmark        string
	IPC              float64
	L1MPKI           float64 // L1I+L1D combined, Table I convention
	L2MPKI           float64
	LLCMPKI          float64
	InclusionVictims uint64
}

// MixResult summarises a mix run.
type MixResult struct {
	Apps             []AppResult
	Throughput       float64 // sum of per-app IPCs
	LLCMisses        uint64  // windowed demand LLC misses
	InclusionVictims uint64  // windowed inclusion victims
	// Message traffic introduced by the policies, for bandwidth
	// comparisons (hints, early invalidations, queries).
	TLHSent    uint64
	ECISent    uint64
	QBSQueries uint64
}

// Benchmarks returns the tags of the available synthetic SPEC CPU2006
// surrogates ("ast", "bzi", … "xal").
func Benchmarks() []string {
	var out []string
	for _, b := range workload.All() {
		out = append(out, b.Name)
	}
	return out
}

// RunMix runs one benchmark per core and returns the mix summary. Tags
// must name benchmarks from Benchmarks(); the count must equal the
// machine's core count.
func (m *Machine) RunMix(apps ...string) (*MixResult, error) {
	res, err := sim.RunMix(m.cfg, workload.Mix{Name: "mix", Apps: apps})
	if err != nil {
		return nil, err
	}
	out := &MixResult{
		Throughput:       res.Throughput,
		LLCMisses:        res.LLCMisses,
		InclusionVictims: res.InclusionVictims,
		TLHSent:          res.Traffic.TLHSent,
		ECISent:          res.Traffic.ECISent,
		QBSQueries:       res.Traffic.QBSQueries,
	}
	for _, a := range res.Apps {
		out.Apps = append(out.Apps, AppResult{
			Benchmark:        a.Benchmark,
			IPC:              a.IPC,
			L1MPKI:           a.L1MPKI,
			L2MPKI:           a.L2MPKI,
			LLCMPKI:          a.LLCMPKI,
			InclusionVictims: a.InclusionVictims,
		})
	}
	return out, nil
}

// RunBenchmark runs a single benchmark in isolation on a one-core
// version of the machine (the Table I methodology).
func (m *Machine) RunBenchmark(app string) (*AppResult, error) {
	b, err := workload.ByName(app)
	if err != nil {
		return nil, err
	}
	res, err := sim.RunIsolation(m.cfg, b)
	if err != nil {
		return nil, err
	}
	return &AppResult{
		Benchmark:        res.Benchmark,
		IPC:              res.IPC,
		L1MPKI:           res.L1MPKI,
		L2MPKI:           res.L2MPKI,
		LLCMPKI:          res.LLCMPKI,
		InclusionVictims: res.InclusionVictims,
	}, nil
}

package tlacache

// Steady-state allocation proofs for the simulator hot path. The
// per-instruction loop — trace generation, ifetch, data access, core
// timing — must not allocate once caches are warm: at hundreds of
// millions of simulated instructions per experiment, even one small
// allocation per access dominates runtime with GC work. These tests pin
// that property per machine mode so a regression names the mode that
// broke it.

import (
	"testing"

	"tlacache/internal/cpu"
	"tlacache/internal/hierarchy"
	"tlacache/internal/sim"
	"tlacache/internal/trace"
	"tlacache/internal/workload"
)

// stepper replicates the simulator's per-instruction work (generator
// Next, ifetch, optional data access, core timing) outside the run
// loop, so tests can count allocations per instruction directly.
type stepper struct {
	h      *hierarchy.Hierarchy
	gens   []*trace.Synthetic
	cores  []*cpu.Core
	in     trace.Instr
	hitLat uint64
}

func newStepper(tb testing.TB, mutate func(*hierarchy.Config)) *stepper {
	tb.Helper()
	base := sim.DefaultConfig(2)
	hcfg := base.Hierarchy
	if mutate != nil {
		mutate(&hcfg)
	}
	h, err := hierarchy.New(hcfg)
	if err != nil {
		tb.Fatal(err)
	}
	s := &stepper{h: h, hitLat: hcfg.Latency.L1}
	for i, app := range []string{"sje", "lib"} {
		b, err := workload.ByName(app)
		if err != nil {
			tb.Fatal(err)
		}
		g, err := b.NewGenerator(uint64(i + 1))
		if err != nil {
			tb.Fatal(err)
		}
		core, err := cpu.New(base.CPU)
		if err != nil {
			tb.Fatal(err)
		}
		s.gens = append(s.gens, g)
		s.cores = append(s.cores, core)
	}
	return s
}

// step simulates n instructions round-robin across the cores.
func (s *stepper) step(n int) {
	for i := 0; i < n; i++ {
		c := i % len(s.gens)
		s.gens[c].Next(&s.in)
		now := s.cores[c].Cycle()
		fetch := s.h.AccessAt(c, hierarchy.IFetch, s.in.PC, now)
		var memLat uint64
		if s.in.Op != trace.OpNone {
			kind := hierarchy.Load
			if s.in.Op == trace.OpStore {
				kind = hierarchy.Store
			}
			memLat = s.h.AccessAt(c, kind, s.in.Addr, now).Latency
		}
		s.cores[c].Instr(fetch.Latency, memLat, s.hitLat)
	}
}

// TestAccessSteadyStateZeroAllocs warms every machine mode the paper's
// experiments use and then requires exactly zero allocations per
// simulated instruction.
func TestAccessSteadyStateZeroAllocs(t *testing.T) {
	modes := []struct {
		name   string
		mutate func(*hierarchy.Config)
	}{
		{"baseline-inclusive", nil},
		{"tlh", func(c *hierarchy.Config) { c.TLA = hierarchy.TLATLH }},
		{"eci", func(c *hierarchy.Config) { c.TLA = hierarchy.TLAECI }},
		{"qbs", func(c *hierarchy.Config) { c.TLA = hierarchy.TLAQBS }},
		{"non-inclusive", func(c *hierarchy.Config) { c.Inclusion = hierarchy.NonInclusive }},
		{"exclusive", func(c *hierarchy.Config) { c.Inclusion = hierarchy.Exclusive }},
		{"prefetch", func(c *hierarchy.Config) { c.EnablePrefetch = true }},
		{"victim-cache", func(c *hierarchy.Config) { c.VictimCacheEntries = 32 }},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			s := newStepper(t, m.mutate)
			s.step(200_000) // fill caches, detectors, and internal buffers
			if avg := testing.AllocsPerRun(10, func() { s.step(2_000) }); avg != 0 {
				t.Errorf("steady state allocates %.2f times per 2k instructions", avg)
			}
		})
	}
}

// BenchmarkAccessSteadyState reports the warm per-instruction cost of
// the full simulation step (generator + ifetch + data access + core
// timing). With -benchmem its allocs/op column is the tentpole's
// zero-allocation claim in CI-checkable form.
func BenchmarkAccessSteadyState(b *testing.B) {
	s := newStepper(b, nil)
	s.step(200_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step(1)
	}
}

// BenchmarkDecisionTraceOff pins the decision tracer's disabled cost:
// with no tracer attached, the QBS eviction path — the mode with the
// most decision-snapshot work to skip — must run allocation-free and
// at baseline speed. The nil-tracer guard is a single predictable
// branch; with -benchmem the allocs/op column is the CI gate.
func BenchmarkDecisionTraceOff(b *testing.B) {
	s := newStepper(b, func(c *hierarchy.Config) { c.TLA = hierarchy.TLAQBS })
	s.step(200_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step(1)
	}
}

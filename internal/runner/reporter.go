package runner

import (
	"fmt"
	"io"
	"sync"
)

// Reporter is a goroutine-safe progress sink. Every write is one
// complete line under a single mutex, so parallel jobs never interleave
// output mid-line. The zero count state accumulates across multiple Run
// calls, giving one monotonically increasing completed/total counter
// per experiment.
//
// A nil *Reporter is valid and silently discards everything, so callers
// never need to guard progress calls.
type Reporter struct {
	mu          sync.Mutex
	w           io.Writer
	done, total int
}

// NewReporter wraps w in a synchronized reporter. A nil writer yields a
// nil reporter (which is safe to use).
func NewReporter(w io.Writer) *Reporter {
	if w == nil {
		return nil
	}
	return &Reporter{w: w}
}

// Printf writes one formatted progress message atomically.
func (r *Reporter) Printf(format string, args ...interface{}) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintf(r.w, format, args...)
}

// Counts returns the completed and total job counts seen so far.
func (r *Reporter) Counts() (done, total int) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done, r.total
}

// addTotal registers n more expected jobs.
func (r *Reporter) addTotal(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total += n
}

// jobDone prints one job-completion line with a running count, e.g.
//
//	[ 3/42] MIX_00/QBS 0.812s 5.54 MI/s throughput=1.023 ...
func (r *Reporter) jobDone(s JobStat, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done++
	status := ""
	if s.Error != "" {
		status = " FAILED: " + firstLine(s.Error)
	} else if detail != "" {
		status = " " + detail
	}
	fmt.Fprintf(r.w, "  [%*d/%d] %-24s %7.3fs %6.2f MI/s%s\n",
		digits(r.total), r.done, r.total, s.Name, s.WallSeconds, s.IPS/1e6, status)
}

func digits(n int) int {
	d := 1
	for n >= 10 {
		n /= 10
		d++
	}
	return d
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tlacache/internal/telemetry"
)

// squareJobs builds n deterministic jobs returning i*i.
func squareJobs(n int) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Name: fmt.Sprintf("job-%02d", i),
			Work: 1000,
			Run:  func(context.Context) (int, error) { return i * i, nil },
		}
	}
	return jobs
}

func values(results []Result[int]) []int {
	out := make([]int, len(results))
	for i, r := range results {
		out[i] = r.Value
	}
	return out
}

func TestRunMergesInSubmissionOrder(t *testing.T) {
	jobs := squareJobs(50)
	serial, err := Run(context.Background(), Config{Workers: 1}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), Config{Workers: 8}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(values(serial), values(parallel)) {
		t.Fatalf("parallel results diverge from serial:\n%v\n%v", values(serial), values(parallel))
	}
	for i, r := range parallel {
		if r.Value != i*i {
			t.Errorf("job %d value = %d, want %d", i, r.Value, i*i)
		}
		if r.Stat.Index != i || r.Stat.Name != jobs[i].Name {
			t.Errorf("job %d stat = %+v", i, r.Stat)
		}
	}
}

func TestRunEmptyAndDefaults(t *testing.T) {
	res, err := Run[int](context.Background(), Config{}, nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty run: %v, %v", res, err)
	}
	// nil context and zero workers resolve to defaults.
	res2, err := Run(nil, Config{}, squareJobs(3)) //nolint:staticcheck // nil ctx is part of the contract
	if err != nil || len(res2) != 3 {
		t.Fatalf("defaulted run: %v, %v", res2, err)
	}
	if Workers(0) != runtime.NumCPU() || Workers(-1) != runtime.NumCPU() || Workers(5) != 5 {
		t.Error("Workers resolution wrong")
	}
}

func TestRunPanicRecovery(t *testing.T) {
	jobs := squareJobs(8)
	jobs[3].Name = "boom"
	jobs[3].Run = func(context.Context) (int, error) { panic("kaboom") }
	results, err := Run(context.Background(), Config{Workers: 4}, jobs)
	if err != nil {
		t.Fatalf("a panicking job must not fail the pool: %v", err)
	}
	if results[3].Err == nil {
		t.Fatal("panicking job reported no error")
	}
	msg := results[3].Err.Error()
	if !strings.Contains(msg, "boom") || !strings.Contains(msg, "kaboom") {
		t.Errorf("panic error does not name the job: %q", msg)
	}
	if results[3].Stat.Error == "" {
		t.Error("panic not recorded in job stat")
	}
	for i, r := range results {
		if i == 3 {
			continue
		}
		if r.Err != nil || r.Value != i*i {
			t.Errorf("sibling job %d damaged by the panic: %+v", i, r)
		}
	}
	if err := FirstError(results); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("FirstError = %v", err)
	}
	if err := FirstError(results[:3]); err != nil {
		t.Errorf("FirstError on clean prefix = %v", err)
	}
}

func TestRunJobErrorsDoNotStopPool(t *testing.T) {
	sentinel := errors.New("sim exploded")
	jobs := squareJobs(6)
	jobs[0].Run = func(context.Context) (int, error) { return 0, sentinel }
	results, err := Run(context.Background(), Config{Workers: 2}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, sentinel) {
		t.Errorf("job error = %v", results[0].Err)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Err != nil {
			t.Errorf("job %d failed: %v", i, results[i].Err)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const n = 64
	var started sync.Once
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Name: fmt.Sprintf("slow-%02d", i),
			Run: func(context.Context) (int, error) {
				// The first dispatched job cancels the run, then lingers
				// long enough for the dispatcher to observe the
				// cancellation; the bulk of the queue must never start.
				started.Do(func() {
					cancel()
					time.Sleep(20 * time.Millisecond)
				})
				return i, nil
			},
		}
	}
	resCh := make(chan error, 1)
	go func() {
		_, err := Run(ctx, Config{Workers: 2}, jobs)
		resCh <- err
	}()
	select {
	case err := <-resCh:
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not return promptly")
	}

	// The pool's goroutines must all have exited.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutine leak: %d before, %d after cancellation", before, g)
	}

	// Undispatched jobs carry the context error.
	results, err := Run(ctx, Config{Workers: 2}, squareJobs(4))
	if err == nil {
		t.Fatal("run on a dead context succeeded")
	}
	for _, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("undispatched job error = %v", r.Err)
		}
	}
}

func TestReporterSynchronizedLines(t *testing.T) {
	var buf bytes.Buffer
	rep := NewReporter(&safeWriter{w: &buf})
	jobs := squareJobs(32)
	for i := range jobs {
		jobs[i].Detail = func(v int) string { return fmt.Sprintf("square=%d", v) }
	}
	if _, err := Run(context.Background(), Config{Workers: 8, Reporter: rep}, jobs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 32 {
		t.Fatalf("%d progress lines, want 32:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		// Every line must be whole: count prefix, a job name, and the
		// detail suffix, never a torn mix of two lines.
		if !strings.Contains(line, "/32]") || !strings.Contains(line, "job-") ||
			!strings.Contains(line, "square=") {
			t.Errorf("torn or malformed progress line: %q", line)
		}
	}
	if done, total := rep.Counts(); done != 32 || total != 32 {
		t.Errorf("counts = %d/%d, want 32/32", done, total)
	}
}

// safeWriter serialises writes so the test can inspect interleaving at
// the line level without itself racing on bytes.Buffer.
type safeWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *safeWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestNilReporterAndCollectorAreSafe(t *testing.T) {
	var rep *Reporter
	rep.Printf("into the void %d\n", 1)
	if d, tot := rep.Counts(); d != 0 || tot != 0 {
		t.Error("nil reporter has counts")
	}
	if NewReporter(nil) != nil {
		t.Error("NewReporter(nil) must return nil")
	}
	var col *Collector
	col.add(JobStat{Name: "x"})
	col.AddTelemetry("x", telemetry.Summary{})
	if col.Jobs() != nil || col.Telemetry() != nil {
		t.Error("nil collector has jobs or telemetry")
	}
	if _, err := Run(context.Background(), Config{Workers: 2}, squareJobs(4)); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorAndManifest(t *testing.T) {
	col := NewCollector()
	jobs := squareJobs(10)
	jobs[7].Run = func(context.Context) (int, error) { return 0, errors.New("broken") }
	if _, err := Run(context.Background(), Config{Workers: 4, Collector: col}, jobs); err != nil {
		t.Fatal(err)
	}
	stats := col.Jobs()
	if len(stats) != 10 {
		t.Fatalf("collected %d stats, want 10", len(stats))
	}
	for i, s := range stats {
		if s.Index != i {
			t.Fatalf("stats not sorted by index: %+v", stats)
		}
		if s.Instructions != 1000 {
			t.Errorf("job %d instructions = %d", i, s.Instructions)
		}
		if s.WallSeconds < 0 {
			t.Errorf("job %d wall = %v", i, s.WallSeconds)
		}
	}

	m := col.Manifest("demo", 4, 2*time.Second)
	m.Seed = 7
	m.Options = map[string]uint64{"instructions": 1000}
	if m.JobCount != 10 || m.FailedJobs != 1 {
		t.Errorf("manifest counts: %d jobs, %d failed", m.JobCount, m.FailedJobs)
	}
	if m.TotalInstructions != 10_000 {
		t.Errorf("total instructions = %d", m.TotalInstructions)
	}
	if m.AggregateIPS != 5000 {
		t.Errorf("aggregate IPS = %v", m.AggregateIPS)
	}

	dir := t.TempDir()
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "demo-manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Experiment != "demo" || back.Seed != 7 || back.Workers != 4 ||
		len(back.Jobs) != 10 || back.Jobs[7].Error == "" {
		t.Errorf("manifest round-trip mangled: %+v", back)
	}
	if back.Env.GoVersion == "" || back.Env.OS == "" || back.Env.Arch == "" {
		t.Errorf("manifest environment not self-describing: %+v", back.Env)
	}
}

// TestZeroWallTimeThroughputIsZero pins the division guard: a job (or
// whole run) that finishes within clock resolution reports 0
// instructions/sec, never ±Inf or NaN. Non-finite values were the real
// failure mode — encoding/json refuses to marshal them, so a single
// instant job would make the entire manifest unwritable.
func TestZeroWallTimeThroughputIsZero(t *testing.T) {
	for _, tc := range []struct {
		work uint64
		secs float64
		want float64
	}{
		{1000, 0, 0},  // work done in zero time: would be +Inf
		{0, 0, 0},     // no work, no time: would be NaN
		{1000, -1, 0}, // clock went backwards: would be negative
		{1000, 0.5, 2000},
	} {
		got := ipsOf(tc.work, tc.secs)
		if got != tc.want || math.IsInf(got, 0) || math.IsNaN(got) {
			t.Errorf("ipsOf(%d, %v) = %v, want %v", tc.work, tc.secs, got, tc.want)
		}
	}

	// A zero-duration manifest must carry IPS 0 and still encode.
	col := NewCollector()
	col.add(JobStat{Index: 0, Name: "instant", Instructions: 1 << 20})
	m := col.Manifest("instant", 1, 0)
	if m.AggregateIPS != 0 {
		t.Errorf("zero-wall manifest AggregateIPS = %v, want 0", m.AggregateIPS)
	}
	if _, err := json.Marshal(m); err != nil {
		t.Fatalf("zero-wall manifest does not marshal: %v", err)
	}
	if err := WriteManifest(t.TempDir(), m); err != nil {
		t.Fatalf("zero-wall manifest does not write: %v", err)
	}
}

func TestCollectEnv(t *testing.T) {
	e := CollectEnv()
	if e.GoVersion != runtime.Version() || e.OS != runtime.GOOS || e.Arch != runtime.GOARCH {
		t.Errorf("env identity wrong: %+v", e)
	}
	if e.GOMAXPROCS <= 0 || e.NumCPU <= 0 {
		t.Errorf("env CPU info wrong: %+v", e)
	}
}

func TestCollectorTelemetrySummaries(t *testing.T) {
	col := NewCollector()
	rec := telemetry.NewRecorder()
	rec.InclusionVictim(0, 0x40)
	rec.InclusionVictim(1, 0x80)
	col.AddTelemetry("MIX_01/QBS", rec.Summary())
	col.AddTelemetry("MIX_00/QBS", telemetry.NewRecorder().Summary())

	sums := col.Telemetry()
	if len(sums) != 2 || sums[0].Name != "MIX_00/QBS" || sums[1].Name != "MIX_01/QBS" {
		t.Fatalf("summaries = %+v", sums)
	}
	if sums[1].Events["inclusion_victim"] != 2 {
		t.Errorf("summary events = %v", sums[1].Events)
	}

	m := col.Manifest("demo", 1, time.Second)
	if len(m.Telemetry) != 2 {
		t.Fatalf("manifest telemetry = %+v", m.Telemetry)
	}
	// And it survives the JSON round trip.
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Telemetry[1].Events["inclusion_victim"] != 2 {
		t.Errorf("telemetry round-trip mangled: %+v", back.Telemetry)
	}
}

// TestRunUpdatesLiveCounters checks the expvar introspection counters
// climb as jobs complete.
func TestRunUpdatesLiveCounters(t *testing.T) {
	beforeJobs := telemetry.JobsCompleted()
	beforeInstr := telemetry.InstructionsSimulated()
	if _, err := Run(context.Background(), Config{Workers: 2}, squareJobs(5)); err != nil {
		t.Fatal(err)
	}
	if got := telemetry.JobsCompleted() - beforeJobs; got != 5 {
		t.Errorf("jobs counter advanced by %d, want 5", got)
	}
	if got := telemetry.InstructionsSimulated() - beforeInstr; got != 5000 {
		t.Errorf("instructions counter advanced by %d, want 5000", got)
	}
}

package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"tlacache/internal/telemetry"
)

// JobStat is one job's observability record in the run manifest.
type JobStat struct {
	// Index is the job's submission position within its Run batch.
	Index int `json:"index"`
	// Name identifies the job, e.g. "MIX_04/QBS".
	Name string `json:"name"`
	// WallSeconds is the job's wall-clock execution time.
	WallSeconds float64 `json:"wall_seconds"`
	// Instructions is the job's simulated-instruction budget (warmup
	// plus measurement, across all cores).
	Instructions uint64 `json:"instructions"`
	// IPS is simulated instructions per wall-clock second.
	IPS float64 `json:"instructions_per_second"`
	// Error records the job's failure, empty on success.
	Error string `json:"error,omitempty"`
}

// EnvInfo records the machine and toolchain a run executed on, making
// manifests self-describing for cross-machine performance comparisons.
type EnvInfo struct {
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// VCSRevision, VCSTime, and VCSModified come from the binary's
	// embedded build info; they are empty for builds without VCS
	// stamping (e.g. `go test` binaries).
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// CollectEnv captures the current process's environment info.
func CollectEnv() EnvInfo {
	e := EnvInfo{
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				e.VCSRevision = s.Value
			case "vcs.time":
				e.VCSTime = s.Value
			case "vcs.modified":
				e.VCSModified = s.Value == "true"
			}
		}
	}
	return e
}

// Collector accumulates JobStats across every Run call of one
// experiment. It is goroutine-safe; a nil *Collector discards
// everything.
type Collector struct {
	mu        sync.Mutex
	jobs      []JobStat
	summaries []telemetry.Summary
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// add records one completed job's stats.
func (c *Collector) add(s JobStat) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.jobs = append(c.jobs, s)
}

// AddTelemetry records one job's probe summary under the job's name,
// for inclusion in the run manifest. Goroutine-safe; nil-safe.
func (c *Collector) AddTelemetry(name string, s telemetry.Summary) {
	if c == nil {
		return
	}
	s.Name = name
	c.mu.Lock()
	defer c.mu.Unlock()
	c.summaries = append(c.summaries, s)
}

// Telemetry returns a copy of the recorded probe summaries, sorted by
// name so the manifest is stable across completion orderings.
func (c *Collector) Telemetry() []telemetry.Summary {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]telemetry.Summary, len(c.summaries))
	copy(out, c.summaries)
	sort.SliceStable(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Jobs returns a copy of the recorded stats, sorted by batch index then
// name so the manifest is stable across completion orderings.
func (c *Collector) Jobs() []JobStat {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]JobStat, len(c.jobs))
	copy(out, c.jobs)
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Index != out[b].Index {
			return out[a].Index < out[b].Index
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// Manifest is the JSON run record written alongside an experiment's
// CSVs: what ran, with which options, how it was parallelised, and how
// fast each job and the whole run went.
type Manifest struct {
	Experiment string `json:"experiment"`
	// Options echoes the experiment options the run used (instruction
	// budgets, workload population, seed).
	Options interface{} `json:"options,omitempty"`
	Seed    uint64      `json:"seed"`
	// Workers is the resolved worker-pool width the run executed with.
	Workers int `json:"workers"`
	// JobCount and FailedJobs summarise Jobs.
	JobCount   int `json:"job_count"`
	FailedJobs int `json:"failed_jobs"`
	// TotalWallSeconds is the experiment's end-to-end wall time (not
	// the sum of job times — under parallel execution it is smaller).
	TotalWallSeconds float64 `json:"total_wall_seconds"`
	// TotalInstructions sums every job's simulated-instruction budget.
	TotalInstructions uint64 `json:"total_instructions"`
	// AggregateIPS is TotalInstructions over TotalWallSeconds: the
	// sweep-level simulated-instruction throughput, the number the
	// worker count exists to raise.
	AggregateIPS float64   `json:"aggregate_instructions_per_second"`
	Jobs         []JobStat `json:"jobs"`
	// Env records the machine and toolchain the run executed on.
	Env EnvInfo `json:"environment"`
	// Telemetry holds per-job probe summaries (event counts, QBS
	// query-depth and ECI rescue-distance histograms) when the run was
	// instrumented; absent otherwise.
	Telemetry []telemetry.Summary `json:"telemetry,omitempty"`
}

// Manifest builds the run manifest for one experiment from the
// collected job stats. Callers fill Seed and Options afterwards.
func (c *Collector) Manifest(experiment string, workers int, wall time.Duration) Manifest {
	m := Manifest{
		Experiment:       experiment,
		Workers:          workers,
		TotalWallSeconds: wall.Seconds(),
		Jobs:             c.Jobs(),
		Env:              CollectEnv(),
		Telemetry:        c.Telemetry(),
	}
	m.JobCount = len(m.Jobs)
	for _, j := range m.Jobs {
		m.TotalInstructions += j.Instructions
		if j.Error != "" {
			m.FailedJobs++
		}
	}
	m.AggregateIPS = ipsOf(m.TotalInstructions, wall.Seconds())
	return m
}

// WriteManifest writes m as indented JSON to
// dir/<experiment>-manifest.json, creating dir if needed.
func WriteManifest(dir string, m Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, m.Experiment+"-manifest.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		return fmt.Errorf("runner: writing manifest %s: %w", path, err)
	}
	return f.Close()
}

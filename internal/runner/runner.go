// Package runner is the parallel job-execution engine behind every
// experiment sweep: it fans fully independent simulation jobs out over
// a bounded worker pool while keeping results byte-identical to serial
// execution. Jobs carry stable submission indices and results are
// merged back in submission order, so tables, CSVs, and geomeans do
// not depend on the worker count or on scheduling.
//
// The engine provides the operational guarantees a long sweep needs:
// context cancellation (Ctrl-C stops dispatching and returns promptly),
// panic recovery (a crashing simulation becomes a per-job error naming
// the offending job instead of killing the whole regeneration), a
// goroutine-safe progress Reporter, and per-job observability — wall
// time and simulated-instruction throughput — aggregated by a Collector
// into a JSON run manifest written alongside each experiment's CSVs.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"tlacache/internal/telemetry"
)

// Job is one independent unit of work: typically a single simulation
// (one mix under one policy variant).
type Job[T any] struct {
	// Name identifies the job in progress lines, errors, and the run
	// manifest, e.g. "MIX_04/QBS".
	Name string
	// Work is the job's simulated-instruction budget (warmup plus
	// measurement, across all cores). It only feeds the
	// instructions-per-second observability numbers; zero is fine.
	Work uint64
	// Run does the work. It must be safe to call concurrently with
	// other jobs' Run functions — jobs are independent by contract.
	Run func(ctx context.Context) (T, error)
	// Detail, when non-nil, renders a short result summary appended to
	// the job's progress line (only called on success).
	Detail func(T) string
}

// Result pairs a job's value with its error and observability stats.
// Results are returned in submission order regardless of completion
// order.
type Result[T any] struct {
	Value T
	Err   error
	Stat  JobStat
}

// Config parameterises one Run call.
type Config struct {
	// Workers bounds the concurrently executing jobs. Zero or negative
	// selects runtime.NumCPU().
	Workers int
	// Reporter, when non-nil, receives one synchronized line per
	// completed job with completed/total counts.
	Reporter *Reporter
	// Collector, when non-nil, accumulates per-job stats for the run
	// manifest.
	Collector *Collector
}

// Workers resolves a requested worker count: zero or negative means
// one worker per CPU.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// Run executes jobs over a bounded worker pool and returns their
// results in submission order.
//
// Per-job failures (including recovered panics) do not stop the pool:
// they are recorded in the corresponding Result and the remaining jobs
// still run; the returned error stays nil. Use FirstError to collapse
// them. The returned error is non-nil only when ctx is cancelled —
// then dispatching stops, in-flight jobs drain, and every undispatched
// job's Result carries the context error.
func Run[T any](ctx context.Context, cfg Config, jobs []Job[T]) ([]Result[T], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(jobs) == 0 {
		return nil, ctx.Err()
	}
	workers := Workers(cfg.Workers)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	cfg.Reporter.addTotal(len(jobs))

	results := make([]Result[T], len(jobs))
	dispatched := make([]bool, len(jobs))
	queue := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				results[i] = runJob(ctx, cfg, i, jobs[i])
			}
		}()
	}

dispatch:
	for i := range jobs {
		select {
		case queue <- i:
			dispatched[i] = true
		case <-ctx.Done():
			break dispatch
		}
	}
	close(queue)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		done := 0
		for i := range jobs {
			if dispatched[i] {
				done++
				continue
			}
			results[i].Err = err
			results[i].Stat = JobStat{Index: i, Name: jobs[i].Name, Error: err.Error()}
		}
		return results, fmt.Errorf("runner: cancelled after %d/%d jobs: %w", done, len(jobs), err)
	}
	return results, nil
}

// runJob executes one job with panic recovery and stat accounting.
func runJob[T any](ctx context.Context, cfg Config, i int, j Job[T]) (res Result[T]) {
	res.Stat = JobStat{Index: i, Name: j.Name, Instructions: j.Work}
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("runner: job %q panicked: %v\n%s", j.Name, r, debug.Stack())
		}
		wall := time.Since(start)
		res.Stat.WallSeconds = wall.Seconds()
		res.Stat.IPS = ipsOf(j.Work, wall.Seconds())
		detail := ""
		if res.Err != nil {
			res.Stat.Error = res.Err.Error()
		} else if j.Detail != nil && cfg.Reporter != nil {
			// Detail only decorates the Reporter's progress line; don't
			// render it (fmt.Sprintf allocations per job) on headless runs.
			detail = j.Detail(res.Value)
		}
		cfg.Collector.add(res.Stat)
		cfg.Reporter.jobDone(res.Stat, detail)
		// Live introspection: /debug/vars shows jobs completed and
		// instructions simulated climbing while a sweep runs.
		telemetry.JobDone(j.Work)
	}()
	res.Value, res.Err = j.Run(ctx)
	return
}

// ipsOf returns work/secs, or 0 when secs is not positive. A job that
// completes within clock resolution must report zero throughput rather
// than ±Inf or NaN — non-finite values would also make the manifest
// unencodable (encoding/json rejects them).
func ipsOf(work uint64, secs float64) float64 {
	if secs <= 0 {
		return 0
	}
	return float64(work) / secs
}

// FirstError returns the first per-job error in submission order, nil
// if every job succeeded.
func FirstError[T any](results []Result[T]) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}

package sim

import (
	"math"
	"testing"

	"tlacache/internal/hierarchy"
	"tlacache/internal/telemetry"
	"tlacache/internal/workload"
)

// quickConfig shrinks the budget so integration tests stay fast while
// still exercising warmup and steady state.
func quickConfig(cores int, instructions uint64) Config {
	cfg := DefaultConfig(cores)
	cfg.Instructions = instructions
	cfg.Warmup = 2 * instructions
	return cfg
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig(2)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Instructions = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero budget accepted")
	}
	bad = cfg
	bad.Hierarchy.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad hierarchy accepted")
	}
	bad = cfg
	bad.CPU.Width = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad cpu accepted")
	}
}

func TestRunMixRejectsWrongArity(t *testing.T) {
	cfg := quickConfig(2, 1000)
	if _, err := RunMix(cfg, workload.Mix{Name: "ONE", Apps: []string{"dea"}}); err == nil {
		t.Error("1-app mix accepted on 2 cores")
	}
	if _, err := RunMix(cfg, workload.Mix{Name: "BAD", Apps: []string{"dea", "nope"}}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunMixBasics(t *testing.T) {
	cfg := quickConfig(2, 50_000)
	res, err := RunMix(cfg, workload.Mix{Name: "T", Apps: []string{"dea", "mcf"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 2 {
		t.Fatalf("apps = %d", len(res.Apps))
	}
	for i, a := range res.Apps {
		if a.Instructions != cfg.Instructions {
			t.Errorf("app %d instructions = %d", i, a.Instructions)
		}
		if a.Cycles == 0 || a.IPC <= 0 || a.IPC > 4 {
			t.Errorf("app %d: cycles=%d ipc=%v", i, a.Cycles, a.IPC)
		}
		if a.L1I.Accesses != cfg.Instructions {
			t.Errorf("app %d L1I accesses = %d, want %d (one fetch per instruction)",
				i, a.L1I.Accesses, cfg.Instructions)
		}
	}
	if res.Throughput != res.Apps[0].IPC+res.Apps[1].IPC {
		t.Error("throughput is not the IPC sum")
	}
	// The CCF app (dea) must run much faster than the thrashing mcf.
	if res.Apps[0].IPC < 2*res.Apps[1].IPC {
		t.Errorf("dea IPC %.2f not >> mcf IPC %.2f", res.Apps[0].IPC, res.Apps[1].IPC)
	}
}

func TestRunMixDeterministic(t *testing.T) {
	cfg := quickConfig(2, 30_000)
	mix := workload.Mix{Name: "D", Apps: []string{"sje", "lib"}}
	a, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if a.Traffic != b.Traffic || a.Throughput != b.Throughput {
		t.Fatal("identical runs diverged")
	}
	for i := range a.Apps {
		if a.Apps[i] != b.Apps[i] {
			t.Fatalf("app %d diverged", i)
		}
	}
}

func TestSameBenchmarkTwiceUsesDistinctSeeds(t *testing.T) {
	cfg := quickConfig(2, 30_000)
	res, err := RunMix(cfg, workload.Mix{Name: "HOMO", Apps: []string{"mcf", "mcf"}})
	if err != nil {
		t.Fatal(err)
	}
	// Address spaces are disjoint, so the two instances compete but
	// never share lines; both must make progress.
	if res.Apps[0].IPC <= 0 || res.Apps[1].IPC <= 0 {
		t.Fatal("homogeneous mix stalled")
	}
}

func TestRunIsolation(t *testing.T) {
	cfg := quickConfig(2, 50_000)
	b, err := workload.ByName("dea")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunIsolation(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	// A CCF app in isolation: low L2 MPKI (a little compulsory-miss
	// residue remains at this short window), high IPC.
	if res.L2MPKI > 3 {
		t.Errorf("dea isolated L2 MPKI = %.2f, want < 3", res.L2MPKI)
	}
	if res.IPC < 2 {
		t.Errorf("dea isolated IPC = %.2f, want > 2", res.IPC)
	}
}

// TestInclusionVictimsAppearAndQBSRemovesThem is the paper's core
// claim at integration scale: a CCF+LLCT mix on the inclusive baseline
// produces inclusion victims; QBS eliminates nearly all of them and
// recovers throughput comparable to non-inclusion.
func TestInclusionVictimsAppearAndQBSRemovesThem(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	mix := workload.Mix{Name: "CCF+LLCT", Apps: []string{"sje", "lib"}}
	const budget = 400_000

	base := quickConfig(2, budget)
	base.Warmup = 1_200_000 // let lib's stream fill the 2MB LLC
	baseRes, err := RunMix(base, mix)
	if err != nil {
		t.Fatal(err)
	}
	if baseRes.InclusionVictims == 0 {
		t.Fatal("inclusive baseline produced no inclusion victims on a CCF+LLCT mix")
	}

	qbs := base
	qbs.Hierarchy.TLA = hierarchy.TLAQBS
	qbsRes, err := RunMix(qbs, mix)
	if err != nil {
		t.Fatal(err)
	}
	if qbsRes.InclusionVictims*5 > baseRes.InclusionVictims {
		t.Errorf("QBS left %d/%d inclusion victims", qbsRes.InclusionVictims, baseRes.InclusionVictims)
	}

	noninc := base
	noninc.Hierarchy.Inclusion = hierarchy.NonInclusive
	nonincRes, err := RunMix(noninc, mix)
	if err != nil {
		t.Fatal(err)
	}

	if qbsRes.Throughput < baseRes.Throughput {
		t.Errorf("QBS throughput %.3f below baseline %.3f", qbsRes.Throughput, baseRes.Throughput)
	}
	if nonincRes.Throughput < baseRes.Throughput {
		t.Errorf("non-inclusive throughput %.3f below baseline %.3f", nonincRes.Throughput, baseRes.Throughput)
	}
	// QBS ~ non-inclusive (within a generous band at this budget).
	if math.Abs(qbsRes.Throughput-nonincRes.Throughput)/nonincRes.Throughput > 0.10 {
		t.Errorf("QBS %.3f vs non-inclusive %.3f differ by >10%%", qbsRes.Throughput, nonincRes.Throughput)
	}
	// Miss reduction: QBS must cut the mix's LLC misses vs baseline.
	if qbsRes.LLCMisses >= baseRes.LLCMisses {
		t.Errorf("QBS LLC misses %d not below baseline %d", qbsRes.LLCMisses, baseRes.LLCMisses)
	}
}

// TestSamplerVictimColumnSumsToAggregate is the telemetry contract the
// interval CSVs rely on: the per-interval inclusion-victim deltas sum
// exactly to the run's windowed aggregate, for any sampling interval —
// dividing the budget evenly, leaving a partial final interval, or
// larger than the whole budget.
func TestSamplerVictimColumnSumsToAggregate(t *testing.T) {
	mix := workload.Mix{Name: "CCF+LLCT", Apps: []string{"sje", "lib"}}
	for _, every := range []uint64{10_000, 17_000, 300_000} {
		cfg := quickConfig(2, 100_000)
		cfg.Warmup = 400_000
		cfg.Sampler = telemetry.NewSampler(every)
		res, err := RunMix(cfg, mix)
		if err != nil {
			t.Fatal(err)
		}
		samples := cfg.Sampler.Samples()
		if len(samples) == 0 {
			t.Fatalf("every=%d: no samples", every)
		}
		if got := cfg.Sampler.TotalInclusionVictims(); got != res.InclusionVictims {
			t.Errorf("every=%d: sample victims sum to %d, aggregate is %d",
				every, got, res.InclusionVictims)
		}
		// Every core's last sample lands exactly on the budget.
		last := map[int]uint64{}
		for _, s := range samples {
			last[s.Core] = s.Instructions
		}
		for core, instr := range last {
			if instr != cfg.Instructions {
				t.Errorf("every=%d: core %d final sample at %d, want %d",
					every, core, instr, cfg.Instructions)
			}
		}
		// Occupancy is a fraction of LLC lines.
		for _, s := range samples {
			if s.LLCOccupancy < 0 || s.LLCOccupancy > 1 {
				t.Fatalf("every=%d: occupancy %v out of [0,1]", every, s.LLCOccupancy)
			}
		}
	}
}

// TestProbeObservesMeasurementWindow attaches a recorder and checks it
// agrees with the run's Traffic counters (both cover the measurement
// window including post-budget execution) and stays silent during
// warmup-only activity.
func TestProbeObservesMeasurementWindow(t *testing.T) {
	cfg := quickConfig(2, 60_000)
	cfg.Warmup = 400_000
	cfg.Hierarchy.TLA = hierarchy.TLAQBS
	rec := telemetry.NewRecorder()
	cfg.Probe = rec
	res, err := RunMix(cfg, workload.Mix{Name: "Q", Apps: []string{"sje", "lib"}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rec.Count(telemetry.EvQBSQuery), res.Traffic.QBSQueries; got != want {
		t.Errorf("QBS query events = %d, traffic counter = %d", got, want)
	}
	if got, want := rec.Count(telemetry.EvQBSSave), res.Traffic.QBSSaves; got != want {
		t.Errorf("QBS save events = %d, traffic counter = %d", got, want)
	}
	if got, want := rec.Count(telemetry.EvBackInvalidate), res.Traffic.BackInvalidates; got != want {
		t.Errorf("back-invalidate events = %d, traffic counter = %d", got, want)
	}
}

// TestTelemetryDoesNotPerturbResults is determinism across
// instrumentation: attaching a probe and sampler must not change a
// single statistic of the simulated machine.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	cfg := quickConfig(2, 50_000)
	mix := workload.Mix{Name: "D", Apps: []string{"sje", "lib"}}
	plain, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Probe = telemetry.NewRecorder()
	cfg.Sampler = telemetry.NewSampler(5_000)
	instrumented, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Traffic != instrumented.Traffic || plain.Throughput != instrumented.Throughput {
		t.Fatal("telemetry changed simulation results")
	}
	for i := range plain.Apps {
		if plain.Apps[i] != instrumented.Apps[i] {
			t.Fatalf("app %d diverged under telemetry", i)
		}
	}
}

// TestHomogeneousCCFMixSeesNoBenefit mirrors the paper's observation
// that CCF+CCF mixes have no inclusion-victim problem.
func TestHomogeneousCCFMixSeesNoBenefit(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	mix := workload.Mix{Name: "CCF+CCF", Apps: []string{"dea", "per"}}
	cfg := quickConfig(2, 200_000)
	res, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	perKI := float64(res.InclusionVictims) / float64(2*cfg.Instructions/1000)
	if perKI > 0.5 {
		t.Errorf("CCF+CCF mix suffered %.2f inclusion victims per KI", perKI)
	}
}

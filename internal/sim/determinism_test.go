package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"tlacache/internal/hierarchy"
	"tlacache/internal/runner"
	"tlacache/internal/workload"
)

// runBatch executes the same three-policy batch under the given
// GOMAXPROCS and returns the marshaled results plus the run manifest.
func runBatch(t *testing.T, procs int) ([]byte, runner.Manifest) {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)

	variants := []struct {
		name string
		tla  hierarchy.TLAPolicy
	}{
		{"baseline", hierarchy.TLANone},
		{"tlh", hierarchy.TLATLH},
		{"qbs", hierarchy.TLAQBS},
	}
	jobs := make([]runner.Job[MixResult], 0, len(variants))
	for _, v := range variants {
		cfg := quickConfig(2, 30_000)
		cfg.Hierarchy.TLA = v.tla
		jobs = append(jobs, runner.Job[MixResult]{
			Name: v.name,
			Work: 2 * (cfg.Instructions + cfg.Warmup),
			Run: func(ctx context.Context) (MixResult, error) {
				return RunMix(cfg, workload.Mix{Name: "DET", Apps: []string{"sje", "lib"}})
			},
		})
	}

	coll := runner.NewCollector()
	start := time.Now()
	results, err := runner.Run(context.Background(), runner.Config{Workers: 4, Collector: coll}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]MixResult, len(results))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s: %v", jobs[i].Name, r.Err)
		}
		vals[i] = r.Value
	}
	data, err := json.MarshalIndent(vals, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return data, coll.Manifest("determinism", 4, time.Since(start))
}

// normalizeManifest zeroes the fields that legitimately vary between
// runs — host environment and wall-clock timing — leaving everything
// that must be reproducible.
func normalizeManifest(m *runner.Manifest) {
	m.Env = runner.EnvInfo{}
	m.TotalWallSeconds = 0
	m.AggregateIPS = 0
	for i := range m.Jobs {
		m.Jobs[i].WallSeconds = 0
		m.Jobs[i].IPS = 0
	}
}

// TestDeterminismAcrossGOMAXPROCS is the regression gate for the
// runner's core promise: simulation results are byte-identical no
// matter how the scheduler interleaves the worker pool. Everything in
// the manifest except environment and timing must match too.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the same batch twice")
	}
	serial, serialMan := runBatch(t, 1)
	parallel, parallelMan := runBatch(t, 8)

	if !bytes.Equal(serial, parallel) {
		t.Errorf("results differ between GOMAXPROCS=1 and GOMAXPROCS=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}

	normalizeManifest(&serialMan)
	normalizeManifest(&parallelMan)
	sm, err := json.Marshal(serialMan)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := json.Marshal(parallelMan)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sm, pm) {
		t.Errorf("manifests differ beyond env/timing:\n--- serial ---\n%s\n--- parallel ---\n%s", sm, pm)
	}
}

package sim

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"tlacache/internal/hierarchy"
	"tlacache/internal/replacement"
	"tlacache/internal/telemetry"
	"tlacache/internal/workload"
)

// shardedConfig is a machine the sharded mode accepts: non-inclusive
// LLC, no TLA policy, per-set replacement.
func shardedConfig(cores int, instructions uint64) Config {
	cfg := quickConfig(cores, instructions)
	cfg.Hierarchy.Inclusion = hierarchy.NonInclusive
	cfg.Hierarchy.TLA = hierarchy.TLANone
	return cfg
}

// TestShardedDeterminism pins the sharded mode's core guarantee: the
// result is byte-identical for every shard count and every GOMAXPROCS,
// because the canonical replay order is fixed before partitioning and
// shards own disjoint sets. shards=1 is the serial reference, so this
// is also the sharded-vs-serial anchor.
func TestShardedDeterminism(t *testing.T) {
	mix := workload.Mix{Name: "SHARD", Apps: []string{"mcf", "sje"}}
	cfg := shardedConfig(2, 20_000)
	cfg.Hierarchy.EnablePrefetch = true // exercise the prefetch replay path

	var want []byte
	for _, procs := range []int{1, 8} {
		old := runtime.GOMAXPROCS(procs)
		for _, shards := range []int{1, 2, 3, 8} {
			res, err := RunMixSharded(cfg, mix, shards)
			if err != nil {
				runtime.GOMAXPROCS(old)
				t.Fatalf("procs=%d shards=%d: %v", procs, shards, err)
			}
			data, err := json.MarshalIndent(res, "", " ")
			if err != nil {
				runtime.GOMAXPROCS(old)
				t.Fatal(err)
			}
			if want == nil {
				want = data
				continue
			}
			if !bytes.Equal(want, data) {
				runtime.GOMAXPROCS(old)
				t.Fatalf("procs=%d shards=%d diverged from the procs=1 shards=1 reference:\n%s\nvs\n%s",
					procs, shards, data, want)
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestShardedSingleCoreMatchesTimed anchors the replay semantics to
// the timed simulator: with one core the timed interleave degenerates
// to instruction order — exactly the sharded mode's canonical order —
// and timing cannot change functional behaviour (clocks only feed the
// bank model, which the sharded mode rejects). Every cache counter
// must therefore match the timed run exactly; only Cycles, IPC, and
// Throughput — which the sharded mode does not model — may differ.
func TestShardedSingleCoreMatchesTimed(t *testing.T) {
	for _, prefetch := range []bool{false, true} {
		mix := workload.Mix{Name: "ANCHOR", Apps: []string{"mcf"}}
		cfg := shardedConfig(1, 20_000)
		cfg.Hierarchy.EnablePrefetch = prefetch

		timed, err := RunMix(cfg, mix)
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := RunMixSharded(cfg, mix, 4)
		if err != nil {
			t.Fatal(err)
		}

		// Erase the timing-only fields; everything else must be equal.
		timed.Throughput = 0
		for i := range timed.Apps {
			timed.Apps[i].Cycles = 0
			timed.Apps[i].IPC = 0
		}
		a, err := json.MarshalIndent(timed, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(sharded, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("prefetch=%v: sharded result diverges from the timed single-core run:\ntimed:\n%s\nsharded:\n%s",
				prefetch, a, b)
		}
	}
}

// TestShardedRepeatability runs the same sharded simulation twice
// through the machine pools and expects byte-identical results.
func TestShardedRepeatability(t *testing.T) {
	mix := workload.Mix{Name: "SHARD", Apps: []string{"sje", "lib"}}
	cfg := shardedConfig(2, 15_000)
	var want []byte
	for round := 0; round < 2; round++ {
		res, err := RunMixSharded(cfg, mix, 2)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(res, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if round == 0 {
			want = data
		} else if !bytes.Equal(want, data) {
			t.Fatalf("round %d diverged:\n%s\nvs\n%s", round, data, want)
		}
	}
}

// TestShardedRejections pins the validation fence: every configuration
// whose cores are not provably LLC-independent — or whose LLC policy
// keeps cross-set state — must be refused, not silently missimulated.
func TestShardedRejections(t *testing.T) {
	mix := workload.Mix{Name: "SHARD", Apps: []string{"sje", "lib"}}
	cases := []struct {
		name   string
		mutate func(*Config)
		shards int
	}{
		{"zero shards", func(*Config) {}, 0},
		{"inclusive", func(c *Config) { c.Hierarchy.Inclusion = hierarchy.Inclusive }, 2},
		{"exclusive", func(c *Config) { c.Hierarchy.Inclusion = hierarchy.Exclusive }, 2},
		{"tla qbs", func(c *Config) { c.Hierarchy.TLA = hierarchy.TLAQBS }, 2},
		{"tla tlh", func(c *Config) { c.Hierarchy.TLA = hierarchy.TLATLH }, 2},
		{"victim cache", func(c *Config) { c.Hierarchy.VictimCacheEntries = 32 }, 2},
		{"banked llc", func(c *Config) { c.Hierarchy.LLCBanks = 4 }, 2},
		{"dip llc", func(c *Config) { c.Hierarchy.LLCPolicy = replacement.DIP }, 2},
		{"drrip llc", func(c *Config) { c.Hierarchy.LLCPolicy = replacement.DRRIP }, 2},
		{"random llc", func(c *Config) { c.Hierarchy.LLCPolicy = replacement.Random }, 2},
		{"probe", func(c *Config) { c.Probe = telemetry.NewRecorder() }, 2},
		{"sampler", func(c *Config) { c.Sampler = telemetry.NewSampler(1000) }, 2},
		{"audit", func(c *Config) { c.AuditEvery = 1000 }, 2},
		{"invariants", func(c *Config) { c.InvariantEvery = 1000 }, 2},
	}
	for _, tc := range cases {
		cfg := shardedConfig(2, 5_000)
		tc.mutate(&cfg)
		if _, err := RunMixSharded(cfg, mix, tc.shards); err == nil {
			t.Errorf("%s: sharded run accepted a configuration it cannot simulate faithfully", tc.name)
		}
	}
	// The fence must not reject what the mode is for.
	for _, kind := range []replacement.Kind{replacement.LRU, replacement.NRU, replacement.SRRIP, replacement.LIP} {
		cfg := shardedConfig(2, 5_000)
		cfg.Hierarchy.LLCPolicy = kind
		if _, err := RunMixSharded(cfg, mix, 2); err != nil {
			t.Errorf("%s LLC: %v", kind, err)
		}
	}
}

package sim

import (
	"runtime"
	"sync"

	"tlacache/internal/cpu"
	"tlacache/internal/hierarchy"
	"tlacache/internal/trace"
)

// Machine and generator pooling: building a hierarchy allocates the
// full modelled state (every cache's tag, flag, presence, and
// replacement arrays), which dwarfs the work of short runs and of every
// warmup-reset. Sweeps run thousands of cells over a handful of
// distinct machine shapes, so RunGenerators checks these free lists
// before building. Reuse is sound because hierarchy.Reset and
// cpu.Core.Reset restore the exact freshly-constructed state — pinned
// byte-for-byte by TestResetEquivalence (sim) and
// TestResetStateEquivalence (replacement).

// machineKey identifies a machine shape. Both configs are flat value
// structs, so the composite is a valid map key and two equal keys
// describe identical machines.
type machineKey struct {
	h hierarchy.Config
	c cpu.Config
}

// machine bundles one run's reusable state: the hierarchy, the cores,
// the per-core address-space wrappers, and the interleave scratch.
type machine struct {
	key       machineKey
	h         *hierarchy.Hierarchy
	cores     []*cpu.Core
	gens      []*offsetGen
	committed []uint64
	finished  []bool
	ipcs      []float64
	apps      []AppResult
	// in is the run loop's instruction scratch. A machine field rather
	// than a local: its address flows into the generator's interface
	// call, so as a local it would escape and cost one heap allocation
	// per run — on a pooled machine it is allocated once.
	in trace.Instr
}

// maxFree bounds each free list so a sweep over many distinct machine
// shapes cannot pin more idle model state than its worker pool could
// ever use at once.
var maxFree = runtime.NumCPU()

var machinePool = struct {
	sync.Mutex
	free map[machineKey][]*machine
}{free: map[machineKey][]*machine{}}

// acquireMachine returns a reset pooled machine for the configuration,
// building one only when the free list is empty.
func acquireMachine(hc hierarchy.Config, cc cpu.Config) (*machine, error) {
	key := machineKey{h: hc, c: cc}
	machinePool.Lock()
	if s := machinePool.free[key]; len(s) > 0 {
		m := s[len(s)-1]
		s[len(s)-1] = nil
		machinePool.free[key] = s[:len(s)-1]
		machinePool.Unlock()
		m.h.Reset()
		for _, c := range m.cores {
			c.Reset()
		}
		return m, nil
	}
	machinePool.Unlock()

	h, err := hierarchy.New(hc)
	if err != nil {
		return nil, err
	}
	n := hc.Cores
	m := &machine{
		key:       key,
		h:         h,
		cores:     make([]*cpu.Core, n),
		gens:      make([]*offsetGen, n),
		committed: make([]uint64, n),
		finished:  make([]bool, n),
		ipcs:      make([]float64, n),
		apps:      make([]AppResult, n),
	}
	for i := 0; i < n; i++ {
		if m.cores[i], err = cpu.New(cc); err != nil {
			return nil, err
		}
		m.gens[i] = &offsetGen{offset: uint64(i) * coreSpacing}
	}
	return m, nil
}

// releaseMachine returns a machine to its free list. Only runs that
// completed successfully release: a machine abandoned mid-run by an
// invariant or audit failure holds the state that produced the failure,
// and is deliberately left to the garbage collector so it cannot feed a
// later run. Caller-owned references (generators, observers) are
// dropped first so the pool never prolongs their lifetime.
func releaseMachine(m *machine) {
	for _, g := range m.gens {
		g.inner = nil
	}
	m.h.SetProbe(nil)
	m.h.SetDecisionTracer(nil)
	m.h.SetLLCOpSink(nil)
	machinePool.Lock()
	if s := machinePool.free[m.key]; len(s) < maxFree {
		machinePool.free[m.key] = append(s, m)
	}
	machinePool.Unlock()
}

var synthPool = struct {
	sync.Mutex
	free []*trace.Synthetic
}{}

// acquireSynthetic returns a generator initialised for (prof, seed),
// bit-identical to trace.NewSynthetic(prof, seed): pooled instances are
// unconditionally re-derived through Reinit, so no state of a previous
// profile — including customised copies of registered profiles — can
// leak into a run.
func acquireSynthetic(prof trace.Profile, seed uint64) (*trace.Synthetic, error) {
	synthPool.Lock()
	var g *trace.Synthetic
	if n := len(synthPool.free); n > 0 {
		g = synthPool.free[n-1]
		synthPool.free[n-1] = nil
		synthPool.free = synthPool.free[:n-1]
	}
	synthPool.Unlock()
	if g == nil {
		return trace.NewSynthetic(prof, seed)
	}
	if err := g.Reinit(prof, seed); err != nil {
		releaseSynthetic(g)
		return nil, err
	}
	return g, nil
}

// releaseSynthetic returns a generator to the free list. Unlike
// machines, generators may be released after failed runs too: Reinit
// re-derives every field on the next acquire, so a generator carries no
// state that could survive into a later run.
func releaseSynthetic(g *trace.Synthetic) {
	synthPool.Lock()
	if len(synthPool.free) < maxFree {
		synthPool.free = append(synthPool.free, g)
	}
	synthPool.Unlock()
}

package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"tlacache/internal/cpu"
	"tlacache/internal/hierarchy"
	"tlacache/internal/replacement"
	"tlacache/internal/telemetry"
	"tlacache/internal/trace"
	"tlacache/internal/workload"
)

// machineModes are the eight hierarchy shapes the alloc regression
// gates exercise: the inclusive baseline, the three TLA policies, the
// two non-inclusive dispositions, and the two optional structures
// (prefetcher, victim cache). Together they reach every Reset path a
// pooled hierarchy has.
func machineModes() []struct {
	name string
	mut  func(*hierarchy.Config)
} {
	return []struct {
		name string
		mut  func(*hierarchy.Config)
	}{
		{"baseline-inclusive", func(*hierarchy.Config) {}},
		{"tlh", func(c *hierarchy.Config) { c.TLA = hierarchy.TLATLH }},
		{"eci", func(c *hierarchy.Config) { c.TLA = hierarchy.TLAECI }},
		{"qbs", func(c *hierarchy.Config) { c.TLA = hierarchy.TLAQBS }},
		{"non-inclusive", func(c *hierarchy.Config) { c.Inclusion = hierarchy.NonInclusive }},
		{"exclusive", func(c *hierarchy.Config) { c.Inclusion = hierarchy.Exclusive }},
		{"prefetch", func(c *hierarchy.Config) { c.EnablePrefetch = true }},
		{"victim-cache", func(c *hierarchy.Config) { c.VictimCacheEntries = 32 }},
	}
}

// freshMachine builds a machine outside the pool, so reset-equivalence
// comparisons cannot be perturbed by machines other tests pooled.
func freshMachine(t *testing.T, cfg Config) *machine {
	t.Helper()
	h, err := hierarchy.New(cfg.Hierarchy)
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.Hierarchy.Cores
	m := &machine{
		h:         h,
		cores:     make([]*cpu.Core, n),
		gens:      make([]*offsetGen, n),
		committed: make([]uint64, n),
		finished:  make([]bool, n),
		ipcs:      make([]float64, n),
		apps:      make([]AppResult, n),
	}
	for i := 0; i < n; i++ {
		if m.cores[i], err = cpu.New(cfg.CPU); err != nil {
			t.Fatal(err)
		}
		m.gens[i] = &offsetGen{offset: uint64(i) * coreSpacing}
	}
	return m
}

// runOn drives one run of cfg on m with freshly initialised generators
// and returns the marshaled windowed results plus traffic.
func runOn(t *testing.T, cfg Config, m *machine) []byte {
	t.Helper()
	streams := make([]trace.Generator, cfg.Hierarchy.Cores)
	bs := []string{"sje", "lib", "mcf", "xal"}
	for i := range streams {
		b, err := workload.ByName(bs[i%len(bs)])
		if err != nil {
			t.Fatal(err)
		}
		g, err := trace.NewSynthetic(b.Profile, cfg.Seed+uint64(i)*0x9e37)
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = g
	}
	if err := runMachine(cfg, m, streams); err != nil {
		t.Fatal(err)
	}
	out := struct {
		Apps    []AppResult
		Traffic hierarchy.Traffic
	}{m.apps, m.h.Traffic}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestResetEquivalence is the reuse-correctness gate behind the machine
// pool: for all eight machine modes crossed with all nine LLC
// replacement policies, a machine that already ran a full simulation
// and was reset the way acquireMachine resets it must reproduce the
// fresh machine's results byte for byte. Any state that survives
// hierarchy.Reset or cpu.Core.Reset — cache contents, replacement rank
// or set-dueling state, prefetcher tables, memoization, telemetry
// sequence numbers — shows up here as a diff.
func TestResetEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 144 short simulations")
	}
	kinds := []replacement.Kind{
		replacement.LRU, replacement.NRU, replacement.SRRIP, replacement.Random,
		replacement.LIP, replacement.BIP, replacement.DIP, replacement.BRRIP, replacement.DRRIP,
	}
	for _, mode := range machineModes() {
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("%s/%s", mode.name, kind), func(t *testing.T) {
				cfg := quickConfig(2, 8_000)
				mode.mut(&cfg.Hierarchy)
				cfg.Hierarchy.LLCPolicy = kind

				m := freshMachine(t, cfg)
				fresh := runOn(t, cfg, m)

				// Exactly acquireMachine's reuse path.
				m.h.Reset()
				for _, c := range m.cores {
					c.Reset()
				}
				rerun := runOn(t, cfg, m)

				if !bytes.Equal(fresh, rerun) {
					t.Errorf("reset machine diverged from fresh run:\n--- fresh ---\n%s\n--- rerun ---\n%s",
						fresh, rerun)
				}
			})
		}
	}
}

// TestPooledRunRepeatability pins the public path the experiment sweeps
// use: repeated RunMix calls with one configuration — the second and
// third of which run on pooled machines and reinitialised pooled
// generators — must return byte-identical results.
func TestPooledRunRepeatability(t *testing.T) {
	cfg := quickConfig(2, 20_000)
	cfg.Hierarchy.TLA = hierarchy.TLAQBS
	mix := workload.Mix{Name: "POOL", Apps: []string{"sje", "mcf"}}

	var first []byte
	for i := 0; i < 3; i++ {
		res, err := RunMix(cfg, mix)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(res, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = data
		} else if !bytes.Equal(first, data) {
			t.Errorf("pooled run %d diverged from the first run:\n--- first ---\n%s\n--- run %d ---\n%s",
				i+1, first, i+1, data)
		}
	}
}

// epochManifest runs one batch covering every boundary the burst-sizing
// logic caps against — sampler intervals, invariant checks, audits, the
// budget crossing, and a finished fast core running past its budget —
// and returns everything observable: results, sampler series, and the
// sampler's victim total.
func epochManifest(t *testing.T, epoch uint64) []byte {
	t.Helper()
	cfg := quickConfig(2, 30_000)
	cfg.Epoch = epoch
	cfg.Hierarchy.TLA = hierarchy.TLAQBS
	// Deliberately awkward divisors so boundaries land mid-epoch.
	cfg.InvariantEvery = 7_001
	cfg.AuditEvery = 9_973
	sampler := telemetry.NewSampler(5_003)
	cfg.Sampler = sampler

	res, err := RunMix(cfg, workload.Mix{Name: "EPOCH", Apps: []string{"sje", "lib"}})
	if err != nil {
		t.Fatal(err)
	}
	out := struct {
		Res     MixResult
		Samples []telemetry.Sample
		Victims uint64
	}{res, sampler.Samples(), sampler.TotalInclusionVictims()}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestEpochInvariance enforces the epoch-batching correctness argument:
// the interleave burst length is a pure execution-efficiency knob, so
// per-instruction bookkeeping (Epoch=1), the default burst, and a burst
// longer than the whole run must all produce byte-identical results and
// sampler time series.
func TestEpochInvariance(t *testing.T) {
	ref := epochManifest(t, 1)
	for _, epoch := range []uint64{0, 64, 1024, 1 << 40} {
		got := epochManifest(t, epoch)
		if !bytes.Equal(ref, got) {
			t.Errorf("Epoch=%d diverges from Epoch=1:\n--- epoch 1 ---\n%s\n--- epoch %d ---\n%s",
				epoch, ref, epoch, got)
		}
	}
}

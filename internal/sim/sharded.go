package sim

import (
	"fmt"
	"sort"
	"sync"

	"tlacache/internal/cache"
	"tlacache/internal/hierarchy"
	"tlacache/internal/metrics"
	"tlacache/internal/replacement"
	"tlacache/internal/trace"
	"tlacache/internal/workload"
)

// Sharded-by-set parallel LLC simulation.
//
// The timed interleave is inherently serial: which core touches the
// shared LLC next depends on every core's clock. This file trades the
// timing model away to buy set-level parallelism, in two phases:
//
//  1. Capture. Each core runs alone — functionally, no clocks — on a
//     single-core hierarchy, recording every LLC-bound operation
//     (demand access, dirty-L2 writeback, prefetch fill) through
//     hierarchy.LLCOpSink. This is sound only in the mode this file
//     accepts (non-inclusive LLC, no TLA policy, no victim cache):
//     there the LLC never reaches into the private caches
//     (no back-invalidation, no ECI, no QBS probes) and every private
//     side effect of an LLC access — allocL2 + fillL1 — is identical
//     on the hit and miss paths, so a core's private caches, and hence
//     its LLC-bound operation stream, are a pure function of its own
//     instruction stream. Cores are therefore independent and phase 1
//     fans out one goroutine per core.
//
//  2. Replay. The captured streams are merged into one canonical order
//     — by (instruction index, core, emission order), the order a
//     round-robin interleave would produce — and partitioned by LLC
//     set index across shard workers. Cache sets are independent state
//     machines as long as the replacement policy keeps no cross-set
//     state, so each worker replays its sets' subsequence on a private
//     full-geometry LLC image and the merged counters are exact sums
//     over disjoint sets: results are byte-identical for every shard
//     count and every GOMAXPROCS (TestShardedDeterminism).
//
// The mode reports functional counters only: Cycles, IPC, and
// Throughput are zero, and — unlike the timed mode, where fast cores
// keep competing for the LLC until the slowest finishes — every core
// contributes exactly Warmup+Instructions instructions. Warmup
// operations are replayed to warm each shard, then the counters reset.

// shardableLLCPolicy reports whether kind keeps all replacement state
// per-set. DIP/DRRIP set-duel through a global PSEL counter, BIP/BRRIP
// throttle through a global fill counter, and Random draws from one
// shared generator — replaying interleaved sets in per-shard order
// would diverge from the serial order for any of them.
func shardableLLCPolicy(kind replacement.Kind) bool {
	switch kind {
	case replacement.LRU, replacement.NRU, replacement.SRRIP, replacement.LIP:
		return true
	case replacement.Random, replacement.BIP, replacement.DIP,
		replacement.BRRIP, replacement.DRRIP:
		return false
	}
	return false
}

// validateSharded reports the first reason cfg cannot run sharded.
// The gatecover prover obliges it to examine (or the field to exempt)
// every knob of the simulation and hierarchy configurations: a knob
// the gate has never heard of cannot silently redefine what a faithful
// sharded run means.
//
//tlavet:gatecover Config hierarchy.Config
func validateSharded(cfg Config, shards int) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if shards < 1 {
		return fmt.Errorf("sim: sharded run needs at least 1 shard, got %d", shards)
	}
	h := &cfg.Hierarchy
	switch {
	case h.Inclusion != hierarchy.NonInclusive:
		return fmt.Errorf("sim: sharded mode requires the non-inclusive LLC (inclusion back-invalidates couple private caches to LLC state)")
	case h.TLA != hierarchy.TLANone:
		return fmt.Errorf("sim: sharded mode requires TLA=none (hints, early invalidates, and queries couple private caches to LLC state)")
	case h.VictimCacheEntries > 0:
		return fmt.Errorf("sim: sharded mode does not support the victim cache (fully associative: not partitionable by set)")
	case h.LLCBanks > 0:
		return fmt.Errorf("sim: sharded mode has no timing model for LLC banks")
	case !shardableLLCPolicy(h.LLCPolicy):
		return fmt.Errorf("sim: sharded mode requires a per-set LLC policy (LRU, NRU, SRRIP, LIP), not %s", h.LLCPolicy)
	}
	if cfg.Probe != nil || cfg.DecisionTracer != nil || cfg.Sampler != nil {
		return fmt.Errorf("sim: sharded mode does not support observers (probe, decision tracer, sampler)")
	}
	if cfg.InvariantEvery > 0 || cfg.AuditEvery > 0 {
		return fmt.Errorf("sim: sharded mode does not support invariant or audit checking")
	}
	return nil
}

// llcOp is one captured LLC-bound operation.
type llcOp struct {
	instr uint64 // 0-based instruction index within the emitting core
	la    uint64 // line address
	kind  hierarchy.LLCOpKind
	core  uint8
}

// opRecorder captures one core's LLC-bound operations. The run loop
// bumps instr; LLCOp stamps it onto every emission, so merge order
// within a core is (instruction, emission order) — exactly append
// order.
type opRecorder struct {
	core  uint8
	instr uint64
	ops   []llcOp
}

func (r *opRecorder) LLCOp(kind hierarchy.LLCOpKind, la uint64) {
	//tlavet:allow hotpath amortised batch capture; sharded capture opts out of the zero-alloc contract
	r.ops = append(r.ops, llcOp{instr: r.instr, la: la, kind: kind, core: r.core})
}

// capture is one core's phase-1 result.
type capture struct {
	rec     opRecorder
	name    string
	l1i     hierarchy.LevelStats
	l1d     hierarchy.LevelStats
	l2      hierarchy.LevelStats
	l2Inval uint64
	// Private-side traffic: the fields the LLC replay cannot produce.
	prefetchIssued    uint64
	l2BackInvalidates uint64
	l2QBSQueries      uint64
	l2QBSSaves        uint64
}

// captureCore runs stream alone on a single-core image of cfg's machine
// and records its LLC-bound operations; out's counters cover the
// measurement window only, while out.rec covers warmup too (replay
// needs the warmup operations to warm the LLC image).
//
// It is the llcwrite prover's capture root: everything reachable from
// here may only mutate LLC-owned state through the annotated accessor
// set, which is what makes the captured operation stream complete.
//
//tlavet:llccapture
func captureCore(cfg Config, core int, stream trace.Generator, out *capture) error {
	h1 := cfg.Hierarchy
	h1.Cores = 1
	m, err := acquireMachine(h1, cfg.CPU)
	if err != nil {
		return err
	}
	h := m.h
	out.rec.core = uint8(core)
	h.SetLLCOpSink(&out.rec)
	// The pooled single-core machine's own offset generator is fixed at
	// offset 0; wrap the stream so core's addresses land in the same
	// per-core address space the timed mix run would use.
	g := &offsetGen{inner: stream, offset: uint64(core) * coreSpacing}
	in := &m.in

	run := func(n uint64) {
		for k := uint64(0); k < n; k++ {
			g.Next(in)
			if !h.IFetchMemoHit(0, in.PC) {
				h.AccessAt(0, hierarchy.IFetch, in.PC, 0)
			}
			if in.Op != trace.OpNone {
				kind := hierarchy.Load
				if in.Op == trace.OpStore {
					kind = hierarchy.Store
				}
				h.AccessAt(0, kind, in.Addr, 0)
			}
			out.rec.instr++
		}
	}
	run(cfg.Warmup)
	h.Cores[0] = hierarchy.CoreStats{}
	h.Traffic = hierarchy.Traffic{}
	run(cfg.Instructions)

	cs := &h.Cores[0]
	out.name = stream.Name()
	out.l1i, out.l1d, out.l2 = cs.L1I, cs.L1D, cs.L2
	out.l2Inval = cs.L2InclusionVictims
	out.prefetchIssued = h.Traffic.PrefetchIssued
	out.l2BackInvalidates = h.Traffic.L2BackInvalidates
	out.l2QBSQueries = h.Traffic.L2QBSQueries
	out.l2QBSSaves = h.Traffic.L2QBSSaves
	h.SetLLCOpSink(nil)
	releaseMachine(m)
	return nil
}

// mergeOps interleaves the per-core captures into the canonical
// (instruction index, core, emission order) sequence and returns it
// with the index of the first measured-window operation.
func mergeOps(caps []capture, warmup uint64) (ops []llcOp, measured int) {
	total := 0
	for i := range caps {
		total += len(caps[i].rec.ops)
	}
	ops = make([]llcOp, 0, total)
	idx := make([]int, len(caps))
	for len(ops) < total {
		best := -1
		var bestInstr uint64
		for c := range caps {
			if idx[c] >= len(caps[c].rec.ops) {
				continue
			}
			if in := caps[c].rec.ops[idx[c]].instr; best < 0 || in < bestInstr {
				best, bestInstr = c, in
			}
		}
		// Take the whole run of best's operations for this instruction:
		// no other core can emit at (bestInstr, lower core) anymore.
		co := caps[best].rec.ops
		for idx[best] < len(co) && co[idx[best]].instr == bestInstr {
			ops = append(ops, co[idx[best]])
			idx[best]++
		}
	}
	measured = sort.Search(len(ops), func(i int) bool { return ops[i].instr >= warmup })
	return ops, measured
}

// shardCounters is one replay worker's tally. Sets are disjoint across
// workers, so merging is pure summation.
type shardCounters struct {
	perCore []hierarchy.LevelStats // demand LLC stats by emitting core
	traffic hierarchy.Traffic
}

// replayShard replays the canonical operation sequence restricted to
// the sets with index ≡ shard (mod shards) on a private full-geometry
// LLC image, mirroring the hierarchy's non-inclusive LLC transitions:
// demand hit → promote + presence; demand miss → snoop broadcast,
// memory read, fill with writeback of a dirty victim; writeback →
// dirty the LLC copy or write to memory; prefetch → like demand but
// into the prefetch counters. The first measured operations (warm)
// update the LLC image without tallying, exactly like the warmup
// counter reset of the timed mode.
func replayShard(llc *cache.Cache, cores, shard, shards int, ops []llcOp, measured int, out *shardCounters) {
	out.perCore = make([]hierarchy.LevelStats, cores)
	snoops := uint64(0)
	if cores > 1 {
		snoops = uint64(cores - 1)
	}
	fill := func(la uint64, core uint8, warm bool) {
		set := llc.SetIndex(la)
		way := llc.VictimWay(set)
		victim, evicted := llc.FillWay(set, way, la, 1<<uint(core))
		if evicted && victim.Dirty && !warm {
			out.traffic.WritebacksToMem++
		}
	}
	for i, op := range ops {
		if shards > 1 && llc.SetIndex(op.la)%shards != shard {
			continue
		}
		warm := i < measured
		switch op.kind {
		case hierarchy.LLCOpDemand:
			if !warm {
				out.perCore[op.core].Accesses++
			}
			if set, way, ok := llc.Lookup(op.la); ok {
				llc.PromoteWay(set, way)
				llc.AddPresenceAt(set, way, int(op.core))
			} else {
				if !warm {
					out.perCore[op.core].Misses++
					out.traffic.CoherenceSnoops += snoops
					out.traffic.MemoryReads++
				}
				fill(op.la, op.core, warm)
			}
		case hierarchy.LLCOpWriteback:
			if !llc.SetDirty(op.la) && !warm {
				out.traffic.WritebacksToMem++
			}
		case hierarchy.LLCOpPrefetch:
			if !warm {
				out.traffic.PrefetchFills++
			}
			if set, way, ok := llc.Lookup(op.la); ok {
				llc.PromoteWay(set, way)
				llc.AddPresenceAt(set, way, int(op.core))
			} else {
				if !warm {
					out.traffic.MemoryReads++
				}
				fill(op.la, op.core, warm)
			}
		}
	}
}

// RunMixSharded simulates mix functionally with the LLC partitioned by
// set index across shards parallel replay workers. It accepts only
// configurations whose cores are provably LLC-independent (see the
// file comment): non-inclusive LLC, no TLA policy, no victim cache, no
// banks, and a per-set LLC replacement policy. Results are
// byte-identical for every shard count; shards=1 is the serial
// reference. Cycles, IPC, and Throughput are zero — this mode measures
// cache behaviour, not timing.
func RunMixSharded(cfg Config, mix workload.Mix, shards int) (MixResult, error) {
	if err := validateSharded(cfg, shards); err != nil {
		return MixResult{}, err
	}
	bs, err := mix.Benchmarks()
	if err != nil {
		return MixResult{}, err
	}
	n := cfg.Hierarchy.Cores
	if len(bs) != n {
		return MixResult{}, fmt.Errorf("sim: mix %s has %d apps for %d cores",
			mix.Name, len(bs), n)
	}

	// Phase 1: capture every core's LLC-bound operation stream, one
	// goroutine per core.
	caps := make([]capture, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		g, err := acquireSynthetic(bs[i].Profile, cfg.Seed+uint64(i)*0x9e37)
		if err != nil {
			return MixResult{}, err
		}
		wg.Add(1)
		//tlavet:allow detflow validateSharded rejects every observer, so no decision writer is reachable from a capture goroutine
		go func(i int, g *trace.Synthetic) {
			defer wg.Done()
			errs[i] = captureCore(cfg, i, g, &caps[i])
			releaseSynthetic(g)
		}(i, g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return MixResult{}, err
		}
	}
	ops, measured := mergeOps(caps, cfg.Warmup)

	// Phase 2: replay disjoint set partitions in parallel.
	tallies := make([]shardCounters, shards)
	shardErrs := make([]error, shards)
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			llc, err := cache.New(cache.Config{
				Name:     "LLC",
				Size:     cfg.Hierarchy.LLCSize,
				Assoc:    cfg.Hierarchy.LLCAssoc,
				LineSize: cfg.Hierarchy.LineSize,
				Policy:   cfg.Hierarchy.LLCPolicy,
			})
			if err != nil {
				shardErrs[s] = err
				return
			}
			replayShard(llc, n, s, shards, ops, measured, &tallies[s])
		}(s)
	}
	wg.Wait()
	for _, err := range shardErrs {
		if err != nil {
			return MixResult{}, err
		}
	}

	// Merge: disjoint-set sums plus the private-side capture counters.
	res := MixResult{Mix: mix, Apps: make([]AppResult, n)}
	for i := 0; i < n; i++ {
		c := &caps[i]
		app := AppResult{
			Benchmark:          c.name,
			Instructions:       cfg.Instructions,
			L1I:                c.l1i,
			L1D:                c.l1d,
			L2:                 c.l2,
			L2InclusionVictims: c.l2Inval,
		}
		for s := range tallies {
			app.LLC.Accesses += tallies[s].perCore[i].Accesses
			app.LLC.Misses += tallies[s].perCore[i].Misses
		}
		app.L1MPKI = metrics.MPKI(c.l1i.Misses+c.l1d.Misses, cfg.Instructions)
		app.L2MPKI = metrics.MPKI(c.l2.Misses, cfg.Instructions)
		app.LLCMPKI = metrics.MPKI(app.LLC.Misses, cfg.Instructions)
		res.Apps[i] = app
		res.LLCMisses += app.LLC.Misses
		res.Traffic.PrefetchIssued += c.prefetchIssued
		res.Traffic.L2BackInvalidates += c.l2BackInvalidates
		res.Traffic.L2QBSQueries += c.l2QBSQueries
		res.Traffic.L2QBSSaves += c.l2QBSSaves
	}
	for s := range tallies {
		t := &tallies[s].traffic
		res.Traffic.CoherenceSnoops += t.CoherenceSnoops
		res.Traffic.MemoryReads += t.MemoryReads
		res.Traffic.WritebacksToMem += t.WritebacksToMem
		res.Traffic.PrefetchFills += t.PrefetchFills
	}
	return res, nil
}

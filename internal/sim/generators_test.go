package sim

import (
	"testing"

	"tlacache/internal/trace"
	"tlacache/internal/workload"
)

func replayOf(t *testing.T, bench string, n int, seed uint64) *trace.Replay {
	t.Helper()
	b, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.NewGenerator(seed)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]trace.Instr, n)
	for i := range recs {
		g.Next(&recs[i])
	}
	r, err := trace.NewReplay(bench+"-replay", recs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunGeneratorsBasics(t *testing.T) {
	cfg := quickConfig(2, 30_000)
	streams := []trace.Generator{
		replayOf(t, "sje", 50_000, 1),
		replayOf(t, "mcf", 50_000, 2),
	}
	res, err := RunGenerators(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 2 {
		t.Fatalf("apps = %d", len(res.Apps))
	}
	if res.Apps[0].Benchmark != "sje-replay" || res.Apps[1].Benchmark != "mcf-replay" {
		t.Fatalf("names = %v", res.Mix.Apps)
	}
	for i, a := range res.Apps {
		if a.IPC <= 0 || a.IPC > 4 {
			t.Errorf("app %d IPC = %v", i, a.IPC)
		}
	}
}

func TestRunGeneratorsMatchesRunMixForSyntheticStreams(t *testing.T) {
	// Feeding RunGenerators the exact generators RunMix would build
	// must give identical results.
	cfg := quickConfig(2, 25_000)
	mix := workload.Mix{Name: "X", Apps: []string{"dea", "lib"}}
	want, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	var streams []trace.Generator
	for i, app := range mix.Apps {
		b, err := workload.ByName(app)
		if err != nil {
			t.Fatal(err)
		}
		g, err := b.NewGenerator(cfg.Seed + uint64(i)*0x9e37)
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, g)
	}
	got, err := RunGenerators(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	if got.Throughput != want.Throughput || got.Traffic != want.Traffic {
		t.Fatalf("RunGenerators diverged from RunMix: %.4f vs %.4f", got.Throughput, want.Throughput)
	}
}

func TestRunGeneratorsErrors(t *testing.T) {
	cfg := quickConfig(2, 10_000)
	if _, err := RunGenerators(cfg, []trace.Generator{replayOf(t, "sje", 1000, 1)}); err == nil {
		t.Error("wrong stream count accepted")
	}
	if _, err := RunGenerators(cfg, []trace.Generator{nil, nil}); err == nil {
		t.Error("nil streams accepted")
	}
	bad := cfg
	bad.Instructions = 0
	if _, err := RunGenerators(bad, nil); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestOffsetGenForwarding(t *testing.T) {
	inner := replayOf(t, "sje", 100, 1)
	g := &offsetGen{inner: inner, offset: 1 << 40}
	if g.Name() != inner.Name() {
		t.Fatalf("Name not forwarded: %q", g.Name())
	}
	var a, b trace.Instr
	g.Next(&a)
	g.Reset()
	g.Next(&b)
	if a != b {
		t.Fatal("Reset not forwarded")
	}
	if a.PC < 1<<40 {
		t.Fatalf("PC %#x not offset", a.PC)
	}
	if a.Op != trace.OpNone && a.Addr < 1<<40 {
		t.Fatalf("Addr %#x not offset", a.Addr)
	}
}

func TestRunIsolationPropagatesErrors(t *testing.T) {
	cfg := quickConfig(2, 10_000)
	cfg.CPU.Width = 0 // invalid
	b, err := workload.ByName("dea")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunIsolation(cfg, b); err == nil {
		t.Error("invalid CPU config accepted")
	}
	// A benchmark with a broken profile must also surface.
	bad := b
	bad.Profile.CodeBytes = 0
	if _, err := RunIsolation(quickConfig(2, 10_000), bad); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestInvariantEveryRuns(t *testing.T) {
	cfg := quickConfig(2, 20_000)
	cfg.InvariantEvery = 1_000
	mix := workload.Mix{Name: "inv", Apps: []string{"sje", "lib"}}
	if _, err := RunMix(cfg, mix); err != nil {
		t.Fatalf("invariants violated during a healthy run: %v", err)
	}
}

// Package sim drives multi-programmed workloads through a cache
// hierarchy and the core timing model, reproducing the paper's
// methodology: every core runs its benchmark's instruction stream;
// statistics for a core freeze once it commits its instruction budget;
// faster cores keep executing — and keep competing for the shared LLC —
// until every core has reached its budget.
package sim

import (
	"fmt"

	"tlacache/internal/cpu"
	"tlacache/internal/hierarchy"
	"tlacache/internal/metrics"
	"tlacache/internal/telemetry"
	"tlacache/internal/trace"
	"tlacache/internal/workload"
)

// coreSpacing separates per-core address spaces: the benchmarks in a
// mix are independent processes (as in the paper), so neither code nor
// data is shared between cores.
const coreSpacing = uint64(1) << 46

// Config parameterises a simulation run.
type Config struct {
	Hierarchy hierarchy.Config
	//tlavet:gateexempt core timing model is identical in sharded and interleaved runs; orthogonal to LLC partitioning
	CPU cpu.Config
	// Instructions is the per-core measurement budget (the paper uses
	// 250M per PinPoint; experiments here default to a few million —
	// the working sets are identical, only the measurement window
	// shrinks).
	//
	//tlavet:gateexempt any budget shards faithfully; the capture phase runs the same per-core budget
	Instructions uint64
	// Warmup instructions run per core before statistics are cleared
	// and measurement begins. Cache and prefetcher state carries over;
	// only counters reset. A warmup of at least ~1M instructions lets
	// the 2MB LLC fill and reach replacement steady state, which the
	// paper's 250M-instruction runs get implicitly.
	//
	//tlavet:gateexempt warmup length only moves the measurement boundary; sharded replay preserves it exactly
	Warmup uint64
	// Seed diversifies the synthetic streams; a mix is reproducible
	// given (Config, Mix).
	//
	//tlavet:keyexempt hashed via service.Key's explicit seed argument, which overrides this field
	//tlavet:gateexempt any seed shards faithfully; streams are regenerated identically in the capture phase
	Seed uint64
	// InvariantEvery, when positive, verifies the hierarchy's
	// structural invariants (inclusion, exclusion, directory coverage)
	// every InvariantEvery committed instructions and aborts the run on
	// a violation. Meant for debugging and the test suite; it is too
	// expensive for production sweeps.
	//
	//tlavet:keyexempt debug-only invariant checking; aborts on violation, never changes results
	InvariantEvery uint64
	// AuditEvery, when positive, runs a full hierarchy audit
	// (hierarchy.Auditor: structural invariants, per-cache consistency,
	// counter monotonicity and conservation, probe cross-checks) every
	// AuditEvery committed instructions of the measurement window and
	// aborts the run on a violation, reporting the seed that reproduces
	// it. Stronger and costlier than InvariantEvery; exposed as
	// `tlasim -audit N`.
	//
	//tlavet:keyexempt debug-only audit mode; aborts on violation, never changes results
	AuditEvery uint64
	// Probe, when non-nil, receives typed telemetry events (inclusion
	// victims, back-invalidations, ECI, QBS, TLH) from the hierarchy.
	// It is attached after the warmup counter reset, so it observes the
	// measurement window — including, like Traffic, the post-budget
	// execution of fast cores. A probe must not be shared between
	// concurrent runs.
	//
	//tlavet:keyexempt pure observer; never changes simulation results
	Probe telemetry.Probe
	// DecisionTracer, when non-nil, receives one record per LLC victim
	// choice (candidate ways with per-policy ranks, the chosen way, the
	// QBS-suggested alternative, and the eviction's inclusion-victim
	// count). Attached after the warmup counter reset like Probe, so
	// traces cover exactly the measurement window. Like the other
	// observer fields it never changes simulation results — the service
	// cache key excludes it — and must not be shared between concurrent
	// runs.
	//
	//tlavet:keyexempt pure observer; never changes simulation results
	DecisionTracer telemetry.DecisionTracer
	// Sampler, when non-nil, captures a per-core interval time series:
	// every Sampler.Every() instructions a core commits inside its
	// measurement window, the core's interval IPC, LLC MPKI,
	// inclusion-victim delta, and the LLC occupancy are snapshotted. A
	// final partial interval is flushed when the core reaches its
	// budget, so the inclusion-victim column sums exactly to the run's
	// aggregate InclusionVictims. A sampler must not be shared between
	// concurrent runs.
	//
	//tlavet:keyexempt pure observer; never changes simulation results
	Sampler *telemetry.Sampler
	// Epoch, when positive, overrides the interleave burst length: the
	// scheduled core executes up to Epoch instructions before the loop
	// returns to its per-burst bookkeeping (statistics boundaries,
	// min-cycle bookkeeping). Zero selects defaultEpoch. Every value
	// produces bit-identical results — bursts break the moment the
	// running core's clock passes the runner-up and are capped at every
	// statistics boundary (see the correctness argument at run's burst
	// sizing, and DESIGN.md §14); TestEpochInvariance pins Epoch=1
	// against the default byte-for-byte.
	//
	//tlavet:keyexempt result-invariant batching knob; every epoch yields byte-identical manifests (TestEpochInvariance)
	//tlavet:gateexempt result-invariant batching knob; burst sizing never changes what a faithful run produces
	Epoch uint64
}

// defaultEpoch is the interleave burst length when Config.Epoch is
// zero: long enough to amortise the per-burst boundary arithmetic to
// noise, short enough that burst sizing stays irrelevant next to the
// cycle-driven burst breaks that dominate multi-core interleaving.
const defaultEpoch = 64

// DefaultConfig is the paper's baseline machine for the given core
// count with a 2M-instruction budget.
func DefaultConfig(cores int) Config {
	return Config{
		Hierarchy:    hierarchy.DefaultConfig(cores),
		CPU:          cpu.Default(),
		Instructions: 2_000_000,
		Warmup:       1_000_000,
		Seed:         1,
	}
}

// Validate reports the first configuration problem.
func (c *Config) Validate() error {
	if err := c.Hierarchy.Validate(); err != nil {
		return err
	}
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	if c.Instructions == 0 {
		return fmt.Errorf("sim: zero instruction budget")
	}
	return nil
}

// AppResult is one application's measurement window.
type AppResult struct {
	Benchmark    string
	Instructions uint64
	Cycles       uint64
	IPC          float64

	L1I, L1D, L2, LLC hierarchy.LevelStats

	// MPKI values follow Table I's convention: L1 combines the
	// instruction and data caches.
	L1MPKI  float64
	L2MPKI  float64
	LLCMPKI float64

	InclusionVictims uint64
	// L2InclusionVictims counts L1 lines lost to an inclusive L2's
	// evictions (zero unless hierarchy.Config.L2Inclusive is set).
	L2InclusionVictims uint64
}

// MixResult is a full mix run.
type MixResult struct {
	Mix  workload.Mix
	Apps []AppResult
	// Traffic is the hierarchy-global message accounting over the whole
	// run (including post-budget execution of fast cores, exactly like
	// the messages a real machine would keep exchanging).
	Traffic hierarchy.Traffic
	// Throughput is the sum of per-app IPCs, the paper's headline
	// metric.
	Throughput float64
	// LLCMisses sums the apps' windowed demand LLC misses, the metric
	// of Figure 8.
	LLCMisses uint64
	// InclusionVictims sums the apps' windowed inclusion victims.
	InclusionVictims uint64
}

// offsetGen shifts a generator's code and data addresses into a
// per-core address space.
type offsetGen struct {
	inner  trace.Generator
	offset uint64
}

func (g *offsetGen) Name() string { return g.inner.Name() }
func (g *offsetGen) Reset()       { g.inner.Reset() }
func (g *offsetGen) Next(in *trace.Instr) {
	g.inner.Next(in)
	in.PC += g.offset
	if in.Op != trace.OpNone {
		in.Addr += g.offset
	}
}

// RunMix simulates mix on cfg's machine. The mix must supply exactly
// one benchmark per configured core.
func RunMix(cfg Config, mix workload.Mix) (MixResult, error) {
	bs, err := mix.Benchmarks()
	if err != nil {
		return MixResult{}, err
	}
	if len(bs) != cfg.Hierarchy.Cores {
		return MixResult{}, fmt.Errorf("sim: mix %s has %d apps for %d cores",
			mix.Name, len(bs), cfg.Hierarchy.Cores)
	}
	gens := make([]trace.Generator, len(bs))
	synths := make([]*trace.Synthetic, len(bs))
	for i := range bs {
		g, err := acquireSynthetic(bs[i].Profile, cfg.Seed+uint64(i)*0x9e37)
		if err != nil {
			for _, s := range synths[:i] {
				releaseSynthetic(s)
			}
			return MixResult{}, err
		}
		synths[i], gens[i] = g, g
	}
	res, err := RunGenerators(cfg, gens)
	for _, s := range synths {
		releaseSynthetic(s)
	}
	if err != nil {
		return MixResult{}, err
	}
	res.Mix = mix
	return res, nil
}

// RunGenerators simulates one instruction stream per core — any
// trace.Generator, e.g. recorded trace replays — on cfg's machine.
// Each stream is shifted into a private per-core address space first,
// matching the paper's multi-programmed (no sharing) methodology.
func RunGenerators(cfg Config, streams []trace.Generator) (MixResult, error) {
	m, err := checkedMachine(cfg, streams)
	if err != nil {
		return MixResult{}, err
	}
	if err := runMachine(cfg, m, streams); err != nil {
		return MixResult{}, err
	}
	n := cfg.Hierarchy.Cores
	res := MixResult{
		Mix:     workload.Mix{Name: "custom", Apps: make([]string, n)},
		Apps:    make([]AppResult, n),
		Traffic: m.h.Traffic,
	}
	for i := range res.Apps {
		res.Apps[i] = m.apps[i]
		res.Mix.Apps[i] = m.apps[i].Benchmark
		res.LLCMisses += m.apps[i].LLC.Misses
		res.InclusionVictims += m.apps[i].InclusionVictims
		m.ipcs[i] = m.apps[i].IPC
	}
	res.Throughput = metrics.Throughput(m.ipcs)
	releaseMachine(m)
	return res, nil
}

// checkedMachine validates a run's inputs and acquires its machine.
func checkedMachine(cfg Config, streams []trace.Generator) (*machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(streams) != cfg.Hierarchy.Cores {
		return nil, fmt.Errorf("sim: %d streams for %d cores",
			len(streams), cfg.Hierarchy.Cores)
	}
	for i := range streams {
		if streams[i] == nil {
			return nil, fmt.Errorf("sim: stream %d is nil", i)
		}
	}
	return acquireMachine(cfg.Hierarchy, cfg.CPU)
}

// runMachine executes one full run — warmup, counter reset, measured
// window — on an acquired machine, leaving each core's frozen window in
// m.apps and the global message accounting in m.h.Traffic. The caller
// owns the machine: it releases it after copying the results out on
// success, and abandons it to the garbage collector on error.
func runMachine(cfg Config, m *machine, streams []trace.Generator) error {
	h := m.h
	n := cfg.Hierarchy.Cores
	// Concrete *offsetGen slice: the per-instruction Next call in the
	// run loop dispatches directly instead of through trace.Generator.
	gens := m.gens
	cores := m.cores
	for i := 0; i < n; i++ {
		gens[i].inner = streams[i]
	}

	committed := m.committed
	finished := m.finished
	for i := 0; i < n; i++ {
		committed[i], finished[i] = 0, false
	}
	hitLat := cfg.Hierarchy.Latency.L1
	epoch := cfg.Epoch
	if epoch == 0 {
		epoch = defaultEpoch
	}

	// Telemetry attaches after the warmup reset (see below), so during
	// warmup both stay disabled. llcLines scales occupancy samples.
	var sampler *telemetry.Sampler
	llcLines := cfg.Hierarchy.LLCSize / cfg.Hierarchy.LineSize
	sample := func(c int) {
		cs := &h.Cores[c]
		occ := float64(h.LLC().CountValid()) / float64(llcLines)
		sampler.Observe(c, committed[c], cores[c].Cycle(), cs.LLC.Misses, cs.InclusionVictims, occ)
	}

	// run interleaves the cores — always advancing the one whose clock
	// is furthest behind — until each has committed `budget`
	// instructions since the last counter reset. Cores that reach the
	// budget keep executing (and keep competing for the LLC) until the
	// slowest one arrives; onBudget fires once per core at the
	// crossing.
	in := &m.in
	var total uint64
	var auditor *hierarchy.Auditor // armed after warmup, when AuditEvery > 0
	run := func(budget uint64, onBudget func(core int)) error {
		remaining := n
		// Memoized min-cycle selection: between full rescans only core
		// c's clock moves, so c stays the pick while it beats the
		// runner-up (second lowest cycle; on ties the lowest index
		// wins, matching what a full scan would select). The rescan
		// runs only when c falls behind, not once per instruction.
		const maxCycle = ^uint64(0)
		c := 0
		runnerVal, runnerIdx := maxCycle, n
		rescan := true
		for remaining > 0 {
			if cy := cores[c].Cycle(); cy > runnerVal || (cy == runnerVal && c > runnerIdx) {
				rescan = true
			}
			if rescan {
				rescan = false
				c = 0
				for i := 1; i < n; i++ {
					if cores[i].Cycle() < cores[c].Cycle() {
						c = i
					}
				}
				runnerVal, runnerIdx = maxCycle, n
				for i := 0; i < n; i++ {
					if i != c && cores[i].Cycle() < runnerVal {
						runnerVal, runnerIdx = cores[i].Cycle(), i
					}
				}
			}
			// Epoch-batched execution: core c bursts up to `epoch`
			// instructions with only the cycle comparison inside the
			// tight loop; the sampler/invariant/audit/budget modulo
			// checks move to the burst boundary. Exactness argument:
			// each boundary check fires on an exact instruction count,
			// so the burst is capped at the distance to every upcoming
			// boundary — a boundary can then only land exactly on a
			// burst end, where the post-burst checks below observe it
			// under the same conditions, in the same order
			// (sample → invariant → audit → budget), the per-instruction
			// loop checked them. A burst that breaks early on the cycle
			// condition stops short of every boundary, so the post-burst
			// modulo checks correctly stay silent; the instruction-level
			// schedule itself is unchanged because the break condition
			// is the exact per-instruction rescan condition. Every cap
			// is a distance to a boundary strictly ahead, so b >= 1 and
			// the loop always progresses.
			b := epoch
			if !finished[c] {
				if d := budget - committed[c]; d < b {
					b = d
				}
				if sampler != nil {
					if d := sampler.Every() - committed[c]%sampler.Every(); d < b {
						b = d
					}
				}
			}
			if cfg.InvariantEvery > 0 {
				if d := cfg.InvariantEvery - total%cfg.InvariantEvery; d < b {
					b = d
				}
			}
			if auditor != nil {
				if d := cfg.AuditEvery - total%cfg.AuditEvery; d < b {
					b = d
				}
			}
			g, core := gens[c], cores[c]
			for j := uint64(0); j < b; j++ {
				g.Next(in)
				now := core.Cycle()
				fetchLat := hitLat
				if !h.IFetchMemoHit(c, in.PC) {
					fetchLat = h.AccessAt(c, hierarchy.IFetch, in.PC, now).Latency
				}
				var memLat uint64
				if in.Op != trace.OpNone {
					kind := hierarchy.Load
					if in.Op == trace.OpStore {
						kind = hierarchy.Store
					}
					memLat = h.AccessAt(c, kind, in.Addr, now).Latency
				}
				core.Instr(fetchLat, memLat, hitLat)
				committed[c]++
				total++
				if cy := core.Cycle(); cy > runnerVal || (cy == runnerVal && c > runnerIdx) {
					break
				}
			}
			if sampler != nil && !finished[c] && committed[c]%sampler.Every() == 0 {
				sample(c)
			}
			if cfg.InvariantEvery > 0 && total%cfg.InvariantEvery == 0 {
				if err := h.CheckInvariants(); err != nil {
					return fmt.Errorf("sim: after %d instructions: %w", total, err)
				}
			}
			if auditor != nil && total%cfg.AuditEvery == 0 {
				if err := auditor.Audit(); err != nil {
					return fmt.Errorf("sim: after %d instructions (reproduce with -seed %d): %w",
						total, cfg.Seed, err)
				}
			}
			if !finished[c] && committed[c] == budget {
				finished[c] = true
				remaining--
				if onBudget != nil {
					onBudget(c)
				}
			}
		}
		return nil
	}

	if cfg.Warmup > 0 {
		if err := run(cfg.Warmup, nil); err != nil {
			return err
		}
		// Counters reset; cache, prefetcher, and victim-cache state
		// carries into the measurement window.
		for i := range h.Cores {
			h.Cores[i] = hierarchy.CoreStats{}
		}
		h.Traffic = hierarchy.Traffic{}
		for i := range cores {
			cores[i].Reset()
			committed[i] = 0
			finished[i] = false
		}
	}
	h.SetProbe(cfg.Probe)
	h.SetDecisionTracer(cfg.DecisionTracer)
	sampler = cfg.Sampler
	if cfg.AuditEvery > 0 {
		// The auditor baselines here — right where the counters'
		// measurement window starts — so its conservation deltas and
		// probe cross-checks cover exactly the measured traffic.
		auditor = hierarchy.NewAuditor(h)
	}
	return run(cfg.Instructions, func(c int) {
		if sampler != nil {
			// Flush the final (possibly partial) interval exactly at the
			// budget crossing; Observe ignores it when the budget landed
			// on an interval boundary.
			sample(c)
		}
		m.apps[c] = snapshot(gens[c].Name(), cores[c], &h.Cores[c], cfg.Instructions)
	})
}

// snapshot freezes a core's windowed statistics the moment it commits
// its budget. Finish drains outstanding misses so the cycle count is
// honest about in-flight work; the core remains usable afterwards.
func snapshot(name string, core *cpu.Core, cs *hierarchy.CoreStats, instructions uint64) AppResult {
	cycles := core.Finish()
	a := AppResult{
		Benchmark:    name,
		Instructions: instructions,
		Cycles:       cycles,
		L1I:          cs.L1I,
		L1D:          cs.L1D,
		L2:           cs.L2,
		LLC:          cs.LLC,

		L1MPKI:  metrics.MPKI(cs.L1I.Misses+cs.L1D.Misses, instructions),
		L2MPKI:  metrics.MPKI(cs.L2.Misses, instructions),
		LLCMPKI: metrics.MPKI(cs.LLC.Misses, instructions),

		InclusionVictims:   cs.InclusionVictims,
		L2InclusionVictims: cs.L2InclusionVictims,
	}
	if cycles > 0 {
		a.IPC = float64(instructions) / float64(cycles)
	}
	return a
}

// RunIsolation runs one benchmark alone on a single-core machine that
// keeps the shared-cache geometry of cfg (the paper's Table I setup:
// isolation, full LLC, no prefetching unless configured). The passed
// Benchmark's profile is used as-is, so callers may run customised
// variants without registering them.
func RunIsolation(cfg Config, b workload.Benchmark) (AppResult, error) {
	iso := cfg
	iso.Hierarchy.Cores = 1
	g, err := acquireSynthetic(b.Profile, cfg.Seed)
	if err != nil {
		return AppResult{}, err
	}
	// Bypass RunGenerators' public-result assembly: the isolation sweeps
	// behind Table 1 run thousands of these, and the single AppResult is
	// copied out of the machine's scratch before release, so the hot
	// path allocates nothing once the pools are warm.
	streams := [1]trace.Generator{g}
	m, err := checkedMachine(iso, streams[:])
	if err != nil {
		releaseSynthetic(g)
		return AppResult{}, err
	}
	if err := runMachine(iso, m, streams[:]); err != nil {
		releaseSynthetic(g)
		return AppResult{}, err
	}
	app := m.apps[0]
	releaseMachine(m)
	releaseSynthetic(g)
	return app, nil
}

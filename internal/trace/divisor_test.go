package trace

import "testing"

// TestDivisorMatchesHardwareMod verifies the magic-multiply reduction is
// bit-identical to % across divisor shapes (small, power-of-two,
// near-power-of-two, large) and argument edge cases including the top
// of the 64-bit range.
func TestDivisorMatchesHardwareMod(t *testing.T) {
	divisors := []uint64{
		1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 16, 17, 31, 32, 33, 63, 64, 65,
		100, 127, 128, 129, 999, 1000, 1001, 1024, 4096, 1 << 20,
		1<<20 - 1, 1<<20 + 1, 1 << 33, 1<<33 - 1, 1<<33 + 5,
		1<<63 - 1, 1 << 63, 1<<63 + 3, ^uint64(0), ^uint64(0) - 1,
	}
	edges := []uint64{0, 1, 2, 3, 1<<32 - 1, 1 << 32, 1<<32 + 1, 1<<63 - 1, 1 << 63, ^uint64(0), ^uint64(0) - 1}
	r := rng{state: 0xdeadbeef}
	for _, d := range divisors {
		dv := newDivisor(d)
		for _, x := range edges {
			if got, want := dv.mod(x), x%d; got != want {
				t.Fatalf("divisor %d: mod(%d) = %d, want %d", d, x, got, want)
			}
		}
		for _, delta := range []uint64{0, 1, 2} {
			for _, x := range []uint64{d - 1, d, d + 1, 2*d - 1, 2 * d, 3 * d} {
				x += delta
				if got, want := dv.mod(x), x%d; got != want {
					t.Fatalf("divisor %d: mod(%d) = %d, want %d", d, x, got, want)
				}
			}
		}
		for i := 0; i < 200000; i++ {
			x := r.next()
			if got, want := dv.mod(x), x%d; got != want {
				t.Fatalf("divisor %d: mod(%d) = %d, want %d", d, x, got, want)
			}
		}
	}
}

func TestDivisorZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("newDivisor(0) did not panic")
		}
	}()
	newDivisor(0)
}

package trace

import (
	"bytes"
	"testing"
)

// FuzzTraceParse feeds arbitrary bytes to the TLAT1 reader. Whatever
// prefix of records the reader accepts must survive a write/read
// round trip unchanged: the writer must accept every record the
// reader can produce, and re-decoding must reproduce it exactly.
func FuzzTraceParse(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	for _, in := range []Instr{
		{PC: 0x400000, Op: OpNone},
		{PC: 0x400004, Op: OpLoad, Addr: 0x8000},
		{PC: 0x3ff000, Op: OpStore, Addr: ^uint64(0)},
	} {
		if err := w.Write(in); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("TLAT1\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // bad magic: rejecting is the correct outcome
		}
		recs, _ := r.ReadAll() // records before any decode error are valid

		var out bytes.Buffer
		w, err := NewWriter(&out)
		if err != nil {
			t.Fatal(err)
		}
		for i, in := range recs {
			if err := w.Write(in); err != nil {
				t.Fatalf("writer rejected record %d (%+v) the reader produced: %v", i, in, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}

		r2, err := NewReader(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		recs2, err := r2.ReadAll()
		if err != nil {
			t.Fatalf("re-decoding own output: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(recs2))
		}
		for i := range recs {
			if recs[i] != recs2[i] {
				t.Fatalf("record %d changed in round trip: %+v -> %+v", i, recs[i], recs2[i])
			}
		}
	})
}

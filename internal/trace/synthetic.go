package trace

import "fmt"

// Pattern selects the shape of a data-access component.
type Pattern uint8

const (
	// Stream walks its region with a fixed stride, wrapping at the
	// working-set boundary. A large working set with a small stride
	// models the no-reuse streaming of libquantum/wrf; a small one with
	// line-sized strides models array sweeps with heavy reuse.
	Stream Pattern = iota
	// Random touches a uniformly random 8-byte word in its region each
	// time, modelling hash tables and the pointer-heavy behaviour of
	// mcf/astar/xalancbmk at cache-line granularity.
	Random
)

// Component is one weighted data-access pattern within a synthetic
// workload. Each component owns a private address region so components
// never alias one another.
type Component struct {
	Weight  int     // relative selection weight, must be positive
	Pattern Pattern // Stream or Random
	WS      int64   // working-set size in bytes, must be positive
	Stride  int64   // Stream only: bytes between consecutive accesses
}

// Profile parameterises a synthetic workload: an instruction-fetch
// stream over a code footprint plus a weighted mixture of data
// components. Profiles for the 15 SPEC CPU2006 surrogates live in
// internal/workload; this package only provides the machinery.
type Profile struct {
	Name string
	// CodeBytes is the instruction footprint. The PC advances 4 bytes
	// per instruction and jumps to a random spot in the footprint on
	// average every BranchEvery instructions, so a footprint below the
	// L1I capacity yields a core-cache-fitting instruction stream.
	CodeBytes   int64
	BranchEvery int
	// MemPerMille is the number of instructions per thousand that carry
	// a data access; StorePerMille is the number of those accesses per
	// thousand that are stores. Fixed-point to keep profiles exactly
	// reproducible.
	MemPerMille   int
	StorePerMille int
	Components    []Component
}

// Validate reports the first problem with the profile, or nil.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("profile has no name")
	}
	if p.CodeBytes < instrBytes {
		return fmt.Errorf("profile %s: CodeBytes = %d, need at least one %d-byte instruction", p.Name, p.CodeBytes, instrBytes)
	}
	if p.BranchEvery <= 0 {
		return fmt.Errorf("profile %s: BranchEvery = %d", p.Name, p.BranchEvery)
	}
	if p.MemPerMille < 0 || p.MemPerMille > 1000 {
		return fmt.Errorf("profile %s: MemPerMille = %d", p.Name, p.MemPerMille)
	}
	if p.StorePerMille < 0 || p.StorePerMille > 1000 {
		return fmt.Errorf("profile %s: StorePerMille = %d", p.Name, p.StorePerMille)
	}
	if p.MemPerMille > 0 && len(p.Components) == 0 {
		return fmt.Errorf("profile %s: memory accesses but no components", p.Name)
	}
	for i, c := range p.Components {
		if c.Weight <= 0 {
			return fmt.Errorf("profile %s component %d: weight %d", p.Name, i, c.Weight)
		}
		if c.WS <= 0 {
			return fmt.Errorf("profile %s component %d: WS %d", p.Name, i, c.WS)
		}
		if c.Pattern == Random && c.WS < wordAlign {
			return fmt.Errorf("profile %s component %d: random WS %d below word size %d", p.Name, i, c.WS, wordAlign)
		}
		if c.Pattern == Stream && c.Stride <= 0 {
			return fmt.Errorf("profile %s component %d: stream stride %d", p.Name, i, c.Stride)
		}
		if c.WS > componentSpan-int64(skewRange) {
			return fmt.Errorf("profile %s component %d: WS %d exceeds region span", p.Name, i, c.WS)
		}
	}
	return nil
}

const (
	codeBase      = uint64(0x0040_0000)      // where the code footprint starts
	dataBase      = uint64(0x1000_0000_0000) // first data component region
	componentSpan = int64(1) << 36           // address space per component
	instrBytes    = 4                        // PC advance per instruction
	wordAlign     = 8                        // data access alignment
	// skewRange bounds the per-region placement skew (below). Region
	// bases are offset by a seed-derived, line-aligned amount so that
	// different regions — and different generator instances of the same
	// profile — do not all start at cache-set zero. Real processes get
	// this decorrelation for free from physical page allocation;
	// without it, multi-core mixes alias every hot working set onto the
	// same cache sets.
	skewRange = uint64(1) << 21 // 2MB: wider than any simulated cache's set span
)

// skew derives a deterministic line-aligned placement offset for region
// i of a generator seeded with seed.
func skew(seed uint64, i int) uint64 {
	r := rng{state: seed ^ uint64(i)*0xa0761d6478bd642f}
	return r.next() % skewRange &^ 63
}

// Synthetic generates the stream described by a Profile. It implements
// Generator and is deterministic for a given (profile, seed) pair.
type Synthetic struct {
	prof        Profile
	seed        uint64
	rng         rng
	pc          uint64
	codeStart   uint64
	totalWeight uint64
	cursors     []int64  // per-component stream cursor
	bases       []uint64 // per-component skewed region base

	// Precomputed magic divisors for every bounded draw in Next, so the
	// per-instruction path performs no hardware divides. Reductions are
	// bit-identical to %, leaving generated streams unchanged.
	branchDiv divisor   // BranchEvery
	codeDiv   divisor   // CodeBytes / instrBytes
	weightDiv divisor   // totalWeight
	wordDivs  []divisor // per-component WS / wordAlign (Random pattern)
}

// NewSynthetic builds a generator for prof seeded with seed. Invalid
// profiles return an error rather than producing garbage streams.
func NewSynthetic(prof Profile, seed uint64) (*Synthetic, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	g := &Synthetic{prof: prof, seed: seed}
	for _, c := range prof.Components {
		g.totalWeight += uint64(c.Weight)
	}
	g.cursors = make([]int64, len(prof.Components))
	g.codeStart = codeBase + skew(seed, len(prof.Components))
	g.bases = make([]uint64, len(prof.Components))
	g.wordDivs = make([]divisor, len(prof.Components))
	for i := range g.bases {
		g.bases[i] = dataBase + uint64(i)*uint64(componentSpan) + skew(seed, i)
		if prof.Components[i].Pattern == Random {
			g.wordDivs[i] = newDivisor(uint64(prof.Components[i].WS) / wordAlign)
		}
	}
	g.branchDiv = newDivisor(uint64(prof.BranchEvery))
	g.codeDiv = newDivisor(uint64(prof.CodeBytes) / instrBytes)
	if g.totalWeight > 0 {
		g.weightDiv = newDivisor(g.totalWeight)
	}
	g.Reset()
	return g, nil
}

// CodeStart returns the (skewed) base of the instruction footprint.
func (g *Synthetic) CodeStart() uint64 { return g.codeStart }

// ComponentBase returns the (skewed) base of data component i.
func (g *Synthetic) ComponentBase(i int) uint64 { return g.bases[i] }

// MustSynthetic is NewSynthetic for profiles known to be valid.
func MustSynthetic(prof Profile, seed uint64) *Synthetic {
	g, err := NewSynthetic(prof, seed)
	if err != nil {
		panic(fmt.Sprintf("trace: MustSynthetic: %v", err))
	}
	return g
}

// Name returns the profile name.
func (g *Synthetic) Name() string { return g.prof.Name }

// Reset rewinds the stream.
func (g *Synthetic) Reset() {
	g.rng = rng{state: g.seed}
	g.pc = g.codeStart
	for i := range g.cursors {
		g.cursors[i] = 0
	}
}

// Next generates the next instruction. Every bounded draw goes through
// a precomputed divisor (bit-identical to the % it replaces), keeping
// the per-instruction path free of hardware divides.
//
//tlavet:hotpath
func (g *Synthetic) Next(in *Instr) {
	in.PC = g.pc
	// Advance the PC: mostly sequential, occasionally a taken branch to
	// a random instruction within the code footprint.
	if g.rng.belowDiv(&g.branchDiv) == 0 {
		g.pc = g.codeStart + g.rng.belowDiv(&g.codeDiv)*instrBytes
	} else {
		g.pc += instrBytes
		if g.pc >= g.codeStart+uint64(g.prof.CodeBytes) {
			g.pc = g.codeStart
		}
	}

	if !g.rng.perMille(uint64(g.prof.MemPerMille)) {
		in.Op, in.Addr = OpNone, 0
		return
	}
	if g.rng.perMille(uint64(g.prof.StorePerMille)) {
		in.Op = OpStore
	} else {
		in.Op = OpLoad
	}
	in.Addr = g.dataAddr(g.pickComponent())
}

// pickComponent selects a component index by weight.
func (g *Synthetic) pickComponent() int {
	if len(g.prof.Components) == 1 {
		return 0
	}
	n := g.rng.belowDiv(&g.weightDiv)
	for i, c := range g.prof.Components {
		if n < uint64(c.Weight) {
			return i
		}
		n -= uint64(c.Weight)
	}
	return len(g.prof.Components) - 1
}

// dataAddr produces the next address for component i.
func (g *Synthetic) dataAddr(i int) uint64 {
	c := &g.prof.Components[i]
	base := g.bases[i]
	switch c.Pattern {
	case Stream:
		off := g.cursors[i]
		g.cursors[i] += c.Stride
		if g.cursors[i] >= c.WS {
			g.cursors[i] = 0
		}
		return base + uint64(off)
	default: // Random
		return base + g.rng.belowDiv(&g.wordDivs[i])*wordAlign
	}
}

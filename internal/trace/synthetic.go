package trace

import "fmt"

// Pattern selects the shape of a data-access component.
type Pattern uint8

const (
	// Stream walks its region with a fixed stride, wrapping at the
	// working-set boundary. A large working set with a small stride
	// models the no-reuse streaming of libquantum/wrf; a small one with
	// line-sized strides models array sweeps with heavy reuse.
	Stream Pattern = iota
	// Random touches a uniformly random 8-byte word in its region each
	// time, modelling hash tables and the pointer-heavy behaviour of
	// mcf/astar/xalancbmk at cache-line granularity.
	Random
)

// Component is one weighted data-access pattern within a synthetic
// workload. Each component owns a private address region so components
// never alias one another.
type Component struct {
	Weight  int     // relative selection weight, must be positive
	Pattern Pattern // Stream or Random
	WS      int64   // working-set size in bytes, must be positive
	Stride  int64   // Stream only: bytes between consecutive accesses
}

// Profile parameterises a synthetic workload: an instruction-fetch
// stream over a code footprint plus a weighted mixture of data
// components. Profiles for the 15 SPEC CPU2006 surrogates live in
// internal/workload; this package only provides the machinery.
type Profile struct {
	Name string
	// CodeBytes is the instruction footprint. The PC advances 4 bytes
	// per instruction and jumps to a random spot in the footprint on
	// average every BranchEvery instructions, so a footprint below the
	// L1I capacity yields a core-cache-fitting instruction stream.
	CodeBytes   int64
	BranchEvery int
	// MemPerMille is the number of instructions per thousand that carry
	// a data access; StorePerMille is the number of those accesses per
	// thousand that are stores. Fixed-point to keep profiles exactly
	// reproducible.
	MemPerMille   int
	StorePerMille int
	Components    []Component
}

// Validate reports the first problem with the profile, or nil.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("profile has no name")
	}
	if p.CodeBytes < instrBytes {
		return fmt.Errorf("profile %s: CodeBytes = %d, need at least one %d-byte instruction", p.Name, p.CodeBytes, instrBytes)
	}
	if p.BranchEvery <= 0 {
		return fmt.Errorf("profile %s: BranchEvery = %d", p.Name, p.BranchEvery)
	}
	if p.MemPerMille < 0 || p.MemPerMille > 1000 {
		return fmt.Errorf("profile %s: MemPerMille = %d", p.Name, p.MemPerMille)
	}
	if p.StorePerMille < 0 || p.StorePerMille > 1000 {
		return fmt.Errorf("profile %s: StorePerMille = %d", p.Name, p.StorePerMille)
	}
	if p.MemPerMille > 0 && len(p.Components) == 0 {
		return fmt.Errorf("profile %s: memory accesses but no components", p.Name)
	}
	for i, c := range p.Components {
		if c.Weight <= 0 {
			return fmt.Errorf("profile %s component %d: weight %d", p.Name, i, c.Weight)
		}
		if c.WS <= 0 {
			return fmt.Errorf("profile %s component %d: WS %d", p.Name, i, c.WS)
		}
		if c.Pattern == Random && c.WS < wordAlign {
			return fmt.Errorf("profile %s component %d: random WS %d below word size %d", p.Name, i, c.WS, wordAlign)
		}
		if c.Pattern == Stream && c.Stride <= 0 {
			return fmt.Errorf("profile %s component %d: stream stride %d", p.Name, i, c.Stride)
		}
		if c.WS > componentSpan-int64(skewRange) {
			return fmt.Errorf("profile %s component %d: WS %d exceeds region span", p.Name, i, c.WS)
		}
	}
	return nil
}

const (
	codeBase      = uint64(0x0040_0000)      // where the code footprint starts
	dataBase      = uint64(0x1000_0000_0000) // first data component region
	componentSpan = int64(1) << 36           // address space per component
	instrBytes    = 4                        // PC advance per instruction
	wordAlign     = 8                        // data access alignment
	// skewRange bounds the per-region placement skew (below). Region
	// bases are offset by a seed-derived, line-aligned amount so that
	// different regions — and different generator instances of the same
	// profile — do not all start at cache-set zero. Real processes get
	// this decorrelation for free from physical page allocation;
	// without it, multi-core mixes alias every hot working set onto the
	// same cache sets.
	skewRange = uint64(1) << 21 // 2MB: wider than any simulated cache's set span
)

// skew derives a deterministic line-aligned placement offset for region
// i of a generator seeded with seed.
func skew(seed uint64, i int) uint64 {
	r := rng{state: seed ^ uint64(i)*0xa0761d6478bd642f}
	return r.next() % skewRange &^ 63
}

// Synthetic generates the stream described by a Profile. It implements
// Generator and is deterministic for a given (profile, seed) pair.
type Synthetic struct {
	prof        Profile
	seed        uint64
	rng         rng
	pc          uint64
	codeStart   uint64
	totalWeight uint64
	cursors     []int64  // per-component stream cursor
	bases       []uint64 // per-component skewed region base
	// comp maps a weight draw in [0, totalWeight) directly to its
	// component index — the same mapping the cumulative-weight scan in
	// pickComponent computes, precomputed so the per-access path is one
	// table load. Nil when the table would be degenerate (single
	// component) or too large (see maxCompTable).
	comp []uint16

	// Precomputed magic divisors for every bounded draw in Next, so the
	// per-instruction path performs no hardware divides. Reductions are
	// bit-identical to %, leaving generated streams unchanged.
	branchDiv divisor   // BranchEvery
	codeDiv   divisor   // CodeBytes / instrBytes
	weightDiv divisor   // totalWeight
	wordDivs  []divisor // per-component WS / wordAlign (Random pattern)
}

// NewSynthetic builds a generator for prof seeded with seed. Invalid
// profiles return an error rather than producing garbage streams.
func NewSynthetic(prof Profile, seed uint64) (*Synthetic, error) {
	g := &Synthetic{}
	if err := g.Reinit(prof, seed); err != nil {
		return nil, err
	}
	return g, nil
}

// Reinit reconfigures the generator in place for (prof, seed), reusing
// its slice capacity, and rewinds it. A reinitialised generator is
// bit-identical to NewSynthetic(prof, seed) — every field, including
// the seed-derived region skews and magic divisors, is recomputed from
// the arguments, so generator pooling (internal/sim) can hand any
// pooled instance to any run without staleness risk. The resetcover
// prover enforces the "every field" claim statically.
//
//tlavet:resetcover
func (g *Synthetic) Reinit(prof Profile, seed uint64) error {
	if err := prof.Validate(); err != nil {
		return err
	}
	g.prof = prof
	g.seed = seed
	g.totalWeight = 0
	for _, c := range prof.Components {
		g.totalWeight += uint64(c.Weight)
	}
	n := len(prof.Components)
	if cap(g.cursors) < n {
		g.cursors = make([]int64, n)
	} else {
		g.cursors = g.cursors[:n]
	}
	if cap(g.bases) < n {
		g.bases = make([]uint64, n)
	} else {
		g.bases = g.bases[:n]
	}
	if cap(g.wordDivs) < n {
		g.wordDivs = make([]divisor, n)
	} else {
		g.wordDivs = g.wordDivs[:n]
	}
	g.codeStart = codeBase + skew(seed, n)
	for i := range g.bases {
		g.bases[i] = dataBase + uint64(i)*uint64(componentSpan) + skew(seed, i)
		if prof.Components[i].Pattern == Random {
			g.wordDivs[i] = newDivisor(uint64(prof.Components[i].WS) / wordAlign)
		} else {
			// A fresh generator's Stream components hold the zero divisor;
			// clear any residue from a previous profile.
			g.wordDivs[i] = divisor{}
		}
	}
	g.branchDiv = newDivisor(uint64(prof.BranchEvery))
	g.codeDiv = newDivisor(uint64(prof.CodeBytes) / instrBytes)
	g.weightDiv = divisor{}
	if g.totalWeight > 0 {
		g.weightDiv = newDivisor(g.totalWeight)
	}
	if n > 1 && g.totalWeight <= maxCompTable {
		if cap(g.comp) < int(g.totalWeight) {
			g.comp = make([]uint16, g.totalWeight)
		} else {
			g.comp = g.comp[:g.totalWeight]
		}
		k := 0
		for i, c := range prof.Components {
			for j := 0; j < c.Weight; j++ {
				g.comp[k] = uint16(i)
				k++
			}
		}
	} else {
		g.comp = nil
	}
	g.Reset()
	return nil
}

// maxCompTable bounds the draw-to-component table: profile weights are
// per-ten-thousandths (total 10000), so the bound is never hit by the
// registered suite; a hand-built profile with enormous weights just
// falls back to the scan.
const maxCompTable = 1 << 16

// CodeStart returns the (skewed) base of the instruction footprint.
func (g *Synthetic) CodeStart() uint64 { return g.codeStart }

// ComponentBase returns the (skewed) base of data component i.
func (g *Synthetic) ComponentBase(i int) uint64 { return g.bases[i] }

// MustSynthetic is NewSynthetic for profiles known to be valid.
func MustSynthetic(prof Profile, seed uint64) *Synthetic {
	g, err := NewSynthetic(prof, seed)
	if err != nil {
		panic(fmt.Sprintf("trace: MustSynthetic: %v", err))
	}
	return g
}

// Name returns the profile name.
func (g *Synthetic) Name() string { return g.prof.Name }

// Reset rewinds the stream.
func (g *Synthetic) Reset() {
	g.rng = rng{state: g.seed}
	g.pc = g.codeStart
	for i := range g.cursors {
		g.cursors[i] = 0
	}
}

// Next generates the next instruction. Every bounded draw goes through
// a precomputed divisor (bit-identical to the % it replaces), keeping
// the per-instruction path free of hardware divides.
//
//tlavet:hotpath
func (g *Synthetic) Next(in *Instr) {
	// Work on register-local copies of the generator's hot state. The
	// xorshift chain is a serial dependence; when it lives in g.rng every
	// draw round-trips through memory (the compiler cannot keep it in a
	// register across the call because g aliases the receiver of the
	// inlined rng methods). Draw order and values are untouched — only
	// where the state lives between draws changes.
	r := g.rng
	pc := g.pc
	in.PC = pc
	// Advance the PC: mostly sequential, occasionally a taken branch to
	// a random instruction within the code footprint.
	if r.belowDiv(&g.branchDiv) == 0 {
		pc = g.codeStart + r.belowDiv(&g.codeDiv)*instrBytes
	} else {
		pc += instrBytes
		if pc >= g.codeStart+uint64(g.prof.CodeBytes) {
			pc = g.codeStart
		}
	}
	g.pc = pc

	if !r.perMille(uint64(g.prof.MemPerMille)) {
		in.Op, in.Addr = OpNone, 0
		g.rng = r
		return
	}
	if r.perMille(uint64(g.prof.StorePerMille)) {
		in.Op = OpStore
	} else {
		in.Op = OpLoad
	}
	in.Addr = g.dataAddr(&r, g.pickComponent(&r))
	g.rng = r
}

// pickComponent selects a component index by weight, drawing from r.
func (g *Synthetic) pickComponent(r *rng) int {
	if len(g.prof.Components) == 1 {
		return 0
	}
	n := r.belowDiv(&g.weightDiv)
	if g.comp != nil {
		return int(g.comp[n])
	}
	for i, c := range g.prof.Components {
		if n < uint64(c.Weight) {
			return i
		}
		n -= uint64(c.Weight)
	}
	return len(g.prof.Components) - 1
}

// dataAddr produces the next address for component i, drawing from r.
func (g *Synthetic) dataAddr(r *rng, i int) uint64 {
	c := &g.prof.Components[i]
	base := g.bases[i]
	switch c.Pattern {
	case Stream:
		off := g.cursors[i]
		g.cursors[i] += c.Stride
		if g.cursors[i] >= c.WS {
			g.cursors[i] = 0
		}
		return base + uint64(off)
	default: // Random
		return base + r.belowDiv(&g.wordDivs[i])*wordAlign
	}
}

package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The binary trace format is a small, stream-friendly container for
// instruction traces so that streams can be captured once (cmd/tracegen)
// and replayed byte-identically. Layout:
//
//	magic   "TLAT1\n"
//	records repeated until EOF:
//	    op      1 byte  (OpNone | OpLoad | OpStore)
//	    pcΔ     signed varint, delta from the previous record's PC
//	    addr    unsigned varint, present only when op != OpNone
//
// PC deltas are almost always +4, so traces stay near 2 bytes per
// instruction without a compression layer.

var fileMagic = []byte("TLAT1\n")

// Writer encodes an instruction stream into the binary trace format.
type Writer struct {
	w      *bufio.Writer
	lastPC uint64
	count  uint64
	buf    [2 * binary.MaxVarintLen64]byte
}

// NewWriter writes the file header and returns a Writer. Call Flush
// when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one instruction record.
func (tw *Writer) Write(in Instr) error {
	if in.Op > OpStore {
		return fmt.Errorf("trace: invalid op %d", in.Op)
	}
	b := tw.buf[:0]
	b = append(b, byte(in.Op))
	b = binary.AppendVarint(b, int64(in.PC)-int64(tw.lastPC))
	if in.Op != OpNone {
		b = binary.AppendUvarint(b, in.Addr)
	}
	if _, err := tw.w.Write(b); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	tw.lastPC = in.PC
	tw.count++
	return nil
}

// Count returns the number of records written.
func (tw *Writer) Count() uint64 { return tw.count }

// Flush flushes buffered records to the underlying writer.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader decodes a binary trace stream record by record.
type Reader struct {
	r      *bufio.Reader
	lastPC uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr) != string(fileMagic) {
		return nil, errors.New("trace: bad magic (not a TLAT1 trace)")
	}
	return &Reader{r: br}, nil
}

// Read decodes the next record into in. It returns io.EOF at a clean
// end of stream and a wrapped error on corruption.
func (tr *Reader) Read(in *Instr) error {
	op, err := tr.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("trace: reading op: %w", err)
	}
	if Op(op) > OpStore {
		return fmt.Errorf("trace: invalid op byte %d", op)
	}
	delta, err := binary.ReadVarint(tr.r)
	if err != nil {
		return fmt.Errorf("trace: reading pc delta: %w", err)
	}
	tr.lastPC = uint64(int64(tr.lastPC) + delta)
	in.PC = tr.lastPC
	in.Op = Op(op)
	in.Addr = 0
	if in.Op != OpNone {
		if in.Addr, err = binary.ReadUvarint(tr.r); err != nil {
			return fmt.Errorf("trace: reading addr: %w", err)
		}
	}
	return nil
}

// ReadAll decodes every remaining record.
func (tr *Reader) ReadAll() ([]Instr, error) {
	var out []Instr
	var in Instr
	for {
		err := tr.Read(&in)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, in)
	}
}

// Replay is a Generator that loops over a fixed record slice forever,
// so recorded traces can drive the same infinite-stream simulator
// interface as synthetic workloads (matching the paper's methodology,
// where short PinPoints are effectively re-run until every core
// finishes its budget).
type Replay struct {
	name    string
	records []Instr
	pos     int
}

// NewReplay wraps records as a looping Generator. It returns an error
// for an empty trace, which cannot drive an infinite stream.
func NewReplay(name string, records []Instr) (*Replay, error) {
	if len(records) == 0 {
		return nil, errors.New("trace: empty trace cannot be replayed")
	}
	return &Replay{name: name, records: records}, nil
}

// Name returns the name given at construction.
func (g *Replay) Name() string { return g.name }

// Reset rewinds to the first record.
func (g *Replay) Reset() { g.pos = 0 }

// Next yields the next record, wrapping at the end.
func (g *Replay) Next(in *Instr) {
	*in = g.records[g.pos]
	g.pos++
	if g.pos == len(g.records) {
		g.pos = 0
	}
}

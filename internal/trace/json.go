package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Profiles serialise to JSON so users can define custom workloads
// without recompiling (tlasim -profile). Patterns render as the strings
// "stream" and "random".

// MarshalJSON renders the pattern name.
func (p Pattern) MarshalJSON() ([]byte, error) {
	switch p {
	case Stream:
		return []byte(`"stream"`), nil
	case Random:
		return []byte(`"random"`), nil
	default:
		return nil, fmt.Errorf("trace: unknown pattern %d", uint8(p))
	}
}

// UnmarshalJSON accepts "stream" or "random".
func (p *Pattern) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("trace: pattern must be a string: %w", err)
	}
	switch s {
	case "stream":
		*p = Stream
	case "random":
		*p = Random
	default:
		return fmt.Errorf("trace: unknown pattern %q (want stream or random)", s)
	}
	return nil
}

// LoadProfile decodes and validates a JSON profile.
func LoadProfile(r io.Reader) (Profile, error) {
	var p Profile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Profile{}, fmt.Errorf("trace: decoding profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// SaveProfile encodes a profile as indented JSON.
func SaveProfile(w io.Writer, p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

package trace

import "math/bits"

// divisor precomputes a multiply-shift reduction for x mod d, replacing
// the hardware 64-bit divide that a variable `x % d` compiles to. The
// synthetic generator draws two to four bounded random numbers per
// instruction, so those divides dominate trace-generation cost; the
// divisors (branch period, code footprint, component weights and
// working-set sizes) are all fixed per generator, which makes the
// precomputation pay for itself immediately.
//
// The reduction is exact — bit-identical to %, verified against it in
// tests — so generated streams are unchanged.
type divisor struct {
	d    uint64
	m    uint64 // low 64 bits of the 65-bit magic multiplier
	sh   uint   // post shift (ceil(log2 d) - 1)
	mask uint64 // d-1 when d is a power of two
	pow2 bool
}

// newDivisor prepares the reduction for d > 0.
func newDivisor(d uint64) divisor {
	if d == 0 {
		panic("trace: divisor 0")
	}
	if d&(d-1) == 0 {
		return divisor{d: d, mask: d - 1, pow2: true}
	}
	// Granlund–Montgomery round-up magic: with l = ceil(log2 d) and
	// p = 64 + l, the multiplier M = floor(2^p / d) + 1 satisfies
	// floor(x*M / 2^p) == floor(x/d) for every 64-bit x (the magic is
	// 65 bits; m holds its low 64 and the implicit top bit is folded
	// into the overflow-free shift sequence in mod).
	l := uint(bits.Len64(d - 1)) // ceil(log2 d); d is not a power of two
	// floor(2^(64+l)/d) = 2^64 + floor((2^l - d)*2^64 / d); the Div64
	// precondition holds because d > 2^(l-1) implies 2^l - d < d.
	q, _ := bits.Div64((uint64(1)<<l)-d, 0, d)
	return divisor{d: d, m: q + 1, sh: l - 1}
}

// belowDiv returns a pseudo-random integer in [0, dv.d), drawing one
// rng value exactly like below(dv.d) and reducing it without a divide.
func (r *rng) belowDiv(dv *divisor) uint64 { return dv.mod(r.next()) }

// perMille returns true with probability num/1000. It mirrors
// chance(num, 1000) — including drawing no random number when num is
// zero — but the constant modulus lets the compiler strength-reduce the
// divide.
func (r *rng) perMille(num uint64) bool {
	if num == 0 {
		return false
	}
	return r.next()%1000 < num
}

// mod returns x % dv.d.
func (dv *divisor) mod(x uint64) uint64 {
	if dv.pow2 {
		return x & dv.mask
	}
	t, _ := bits.Mul64(x, dv.m)
	// (x + t) >> l without 64-bit overflow: see Hacker's Delight 10-9.
	q := (t + (x-t)>>1) >> dv.sh
	return x - q*dv.d
}

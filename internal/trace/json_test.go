package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	p := testProfile()
	var buf bytes.Buffer
	if err := SaveProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || got.MemPerMille != p.MemPerMille ||
		len(got.Components) != len(p.Components) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, p)
	}
	for i := range p.Components {
		if got.Components[i] != p.Components[i] {
			t.Fatalf("component %d mismatch: %+v vs %+v", i, got.Components[i], p.Components[i])
		}
	}
	// Same seed, same stream after a round trip.
	a := MustSynthetic(p, 5)
	b := MustSynthetic(got, 5)
	var ia, ib Instr
	for i := 0; i < 1000; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia != ib {
			t.Fatal("round-tripped profile generates a different stream")
		}
	}
}

func TestPatternJSON(t *testing.T) {
	if b, err := Stream.MarshalJSON(); err != nil || string(b) != `"stream"` {
		t.Errorf("Stream marshal = %s, %v", b, err)
	}
	if b, err := Random.MarshalJSON(); err != nil || string(b) != `"random"` {
		t.Errorf("Random marshal = %s, %v", b, err)
	}
	if _, err := Pattern(9).MarshalJSON(); err == nil {
		t.Error("unknown pattern marshalled")
	}
	var p Pattern
	if err := p.UnmarshalJSON([]byte(`"stream"`)); err != nil || p != Stream {
		t.Errorf("unmarshal stream = %v, %v", p, err)
	}
	if err := p.UnmarshalJSON([]byte(`"bogus"`)); err == nil {
		t.Error("unknown pattern accepted")
	}
	if err := p.UnmarshalJSON([]byte(`42`)); err == nil {
		t.Error("numeric pattern accepted")
	}
}

func TestLoadProfileRejectsBadInput(t *testing.T) {
	cases := []string{
		`{`,              // truncated
		`{"Unknown": 1}`, // unknown field
		`{"Name": ""}`,   // fails validation
		`{"Name": "x", "CodeBytes": 4096, "BranchEvery": 8, "MemPerMille": 2000}`, // out of range
	}
	for _, in := range cases {
		if _, err := LoadProfile(strings.NewReader(in)); err == nil {
			t.Errorf("LoadProfile accepted %q", in)
		}
	}
}

func TestSaveProfileValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveProfile(&buf, Profile{}); err == nil {
		t.Error("SaveProfile accepted an invalid profile")
	}
}

package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func testProfile() Profile {
	return Profile{
		Name:          "test",
		CodeBytes:     16 << 10,
		BranchEvery:   8,
		MemPerMille:   400,
		StorePerMille: 250,
		Components: []Component{
			{Weight: 3, Pattern: Random, WS: 64 << 10},
			{Weight: 1, Pattern: Stream, WS: 8 << 20, Stride: 8},
		},
	}
}

func TestOpString(t *testing.T) {
	if OpNone.String() != "none" || OpLoad.String() != "load" || OpStore.String() != "store" {
		t.Fatal("Op.String wrong")
	}
	if Op(9).String() != "Op(9)" {
		t.Fatal("unknown Op.String wrong")
	}
}

func TestSyntheticDeterministicAndResettable(t *testing.T) {
	a := MustSynthetic(testProfile(), 42)
	b := MustSynthetic(testProfile(), 42)
	var ia, ib Instr
	first := make([]Instr, 0, 1000)
	for i := 0; i < 1000; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia != ib {
			t.Fatalf("instr %d: generators with equal seeds diverged: %+v vs %+v", i, ia, ib)
		}
		first = append(first, ia)
	}
	a.Reset()
	for i := 0; i < 1000; i++ {
		a.Next(&ia)
		if ia != first[i] {
			t.Fatalf("instr %d after Reset: %+v, want %+v", i, ia, first[i])
		}
	}
}

func TestSyntheticSeedsDiffer(t *testing.T) {
	a := MustSynthetic(testProfile(), 1)
	b := MustSynthetic(testProfile(), 2)
	var ia, ib Instr
	same := 0
	for i := 0; i < 1000; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia == ib {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced %d/1000 identical instructions", same)
	}
}

func TestSyntheticAddressesStayInRegions(t *testing.T) {
	p := testProfile()
	g := MustSynthetic(p, 7)
	var in Instr
	for i := 0; i < 20000; i++ {
		g.Next(&in)
		if in.PC < g.CodeStart() || in.PC >= g.CodeStart()+uint64(p.CodeBytes) {
			t.Fatalf("PC %#x outside code footprint", in.PC)
		}
		if in.Op == OpNone {
			continue
		}
		inSome := false
		for ci, c := range p.Components {
			base := g.ComponentBase(ci)
			if in.Addr >= base && in.Addr < base+uint64(c.WS) {
				inSome = true
			}
		}
		if !inSome {
			t.Fatalf("data address %#x outside every component region", in.Addr)
		}
	}
}

func TestSyntheticMemRatioApproximate(t *testing.T) {
	p := testProfile()
	g := MustSynthetic(p, 3)
	var in Instr
	const n = 200000
	mem, stores := 0, 0
	for i := 0; i < n; i++ {
		g.Next(&in)
		if in.Op != OpNone {
			mem++
			if in.Op == OpStore {
				stores++
			}
		}
	}
	gotMem := float64(mem) / n
	if gotMem < 0.37 || gotMem > 0.43 {
		t.Errorf("memory ratio = %.3f, want ~0.40", gotMem)
	}
	gotStore := float64(stores) / float64(mem)
	if gotStore < 0.22 || gotStore > 0.28 {
		t.Errorf("store fraction = %.3f, want ~0.25", gotStore)
	}
}

func TestSyntheticStreamComponentStrides(t *testing.T) {
	p := Profile{
		Name: "stream", CodeBytes: 4096, BranchEvery: 1 << 30,
		MemPerMille: 1000, StorePerMille: 0,
		Components: []Component{{Weight: 1, Pattern: Stream, WS: 1 << 20, Stride: 64}},
	}
	g := MustSynthetic(p, 1)
	var in Instr
	g.Next(&in)
	prev := in.Addr
	for i := 0; i < 1000; i++ {
		g.Next(&in)
		if in.Addr != prev+64 {
			t.Fatalf("stream stride broken: %#x -> %#x", prev, in.Addr)
		}
		prev = in.Addr
	}
}

func TestSyntheticStreamWraps(t *testing.T) {
	p := Profile{
		Name: "wrap", CodeBytes: 4096, BranchEvery: 1 << 30,
		MemPerMille: 1000, StorePerMille: 0,
		Components: []Component{{Weight: 1, Pattern: Stream, WS: 256, Stride: 64}},
	}
	g := MustSynthetic(p, 1)
	var in Instr
	seen := map[uint64]int{}
	for i := 0; i < 16; i++ {
		g.Next(&in)
		seen[in.Addr]++
	}
	if len(seen) != 4 {
		t.Fatalf("wrap produced %d distinct addresses, want 4", len(seen))
	}
	for a, n := range seen {
		if n != 4 {
			t.Fatalf("address %#x seen %d times, want 4", a, n)
		}
	}
}

func TestSyntheticName(t *testing.T) {
	g := MustSynthetic(testProfile(), 1)
	if g.Name() != "test" {
		t.Fatalf("Name = %q", g.Name())
	}
}

func TestMustSyntheticPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSynthetic did not panic on invalid profile")
		}
	}()
	MustSynthetic(Profile{}, 0)
}

// failWriter fails after n bytes, exercising writer error paths.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errFail
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

var errFail = &failError{}

type failError struct{}

func (*failError) Error() string { return "synthetic write failure" }

func TestWriterErrorPaths(t *testing.T) {
	w, err := NewWriter(&failWriter{n: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the bufio buffer until the underlying failure surfaces.
	var werr error
	for i := 0; i < 100_000 && werr == nil; i++ {
		werr = w.Write(Instr{PC: uint64(i) * 1_000_000, Op: OpLoad, Addr: ^uint64(0) - uint64(i)})
		if werr == nil {
			werr = w.Flush()
		}
	}
	if werr == nil {
		t.Error("writes to a failing writer never errored")
	}
}

func TestProfileValidate(t *testing.T) {
	base := testProfile()
	mutations := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.CodeBytes = 0 },
		func(p *Profile) { p.BranchEvery = 0 },
		func(p *Profile) { p.MemPerMille = 1001 },
		func(p *Profile) { p.StorePerMille = -1 },
		func(p *Profile) { p.Components = nil },
		func(p *Profile) { p.Components[0].Weight = 0 },
		func(p *Profile) { p.Components[0].WS = 0 },
		func(p *Profile) { p.Components[1].Stride = 0 },
		func(p *Profile) { p.Components[0].WS = componentSpan + 1 },
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	for i, mut := range mutations {
		p := testProfile()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: invalid profile accepted", i)
		}
	}
	if _, err := NewSynthetic(Profile{}, 0); err == nil {
		t.Error("NewSynthetic accepted empty profile")
	}
}

func TestFileRoundTrip(t *testing.T) {
	g := MustSynthetic(testProfile(), 11)
	var in Instr
	want := make([]Instr, 5000)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		g.Next(&in)
		want[i] = in
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 5000 {
		t.Fatalf("Count = %d", w.Count())
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	f := func(pcs []uint64, ops []uint8) bool {
		n := len(pcs)
		if len(ops) < n {
			n = len(ops)
		}
		recs := make([]Instr, n)
		for i := 0; i < n; i++ {
			recs[i] = Instr{PC: pcs[i], Op: Op(ops[i] % 3)}
			if recs[i].Op != OpNone {
				recs[i].Addr = pcs[i] ^ 0xdeadbeef
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReaderRejectsBadInput(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE!!"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Valid header, invalid op byte.
	var buf bytes.Buffer
	buf.Write(fileMagic)
	buf.WriteByte(200)
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var in Instr
	if err := r.Read(&in); err == nil || err == io.EOF {
		t.Errorf("invalid op byte: err = %v, want corruption error", err)
	}
	// Truncated record: op present, varint missing.
	buf.Reset()
	buf.Write(fileMagic)
	buf.WriteByte(byte(OpLoad))
	r, err = NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Read(&in); err == nil {
		t.Error("truncated record accepted")
	}
	if err := (&Writer{}).Write(Instr{Op: 9}); err == nil {
		t.Error("Writer accepted invalid op")
	}
}

func TestReplayLoops(t *testing.T) {
	recs := []Instr{
		{PC: 0x100, Op: OpNone},
		{PC: 0x104, Op: OpLoad, Addr: 0x8000},
		{PC: 0x108, Op: OpStore, Addr: 0x8008},
	}
	g, err := NewReplay("loop", recs)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "loop" {
		t.Fatalf("Name = %q", g.Name())
	}
	var in Instr
	for i := 0; i < 10; i++ {
		g.Next(&in)
		if in != recs[i%3] {
			t.Fatalf("iteration %d: %+v, want %+v", i, in, recs[i%3])
		}
	}
	g.Reset()
	g.Next(&in)
	if in != recs[0] {
		t.Fatal("Reset did not rewind")
	}
	if _, err := NewReplay("empty", nil); err == nil {
		t.Error("NewReplay accepted empty trace")
	}
}

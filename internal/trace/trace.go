// Package trace defines the instruction/access stream that drives the
// simulator and the machinery to produce such streams: deterministic
// synthetic workload generators (the stand-ins for the paper's SPEC
// CPU2006 PinPoint traces, which are proprietary) and a compact binary
// trace-file format for capturing and replaying streams.
package trace

import "fmt"

// Op classifies the optional data access an instruction performs.
type Op uint8

const (
	// OpNone marks an instruction with no data-memory access.
	OpNone Op = iota
	// OpLoad marks a data read.
	OpLoad
	// OpStore marks a data write.
	OpStore
)

// String returns "none", "load" or "store".
func (o Op) String() string {
	switch o {
	case OpNone:
		return "none"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Instr is one committed instruction: its fetch address and, when Op is
// not OpNone, one data access. This mirrors what a Pin-based functional
// front end (the paper uses CMP$im on Pin) feeds a trace-driven cache
// simulator.
type Instr struct {
	PC   uint64
	Op   Op
	Addr uint64
}

// Generator produces an infinite, deterministic instruction stream.
// Implementations must yield an identical stream after Reset, which the
// simulator relies on for isolation-vs-mix comparisons and the test
// suite relies on for reproducibility.
type Generator interface {
	// Name identifies the workload (e.g. "mcf").
	Name() string
	// Next writes the next instruction into in.
	Next(in *Instr)
	// Reset rewinds the stream to its beginning.
	Reset()
}

// rng is a splitmix64 pseudo-random number generator: tiny, fast, and
// with well-understood distribution, so workloads are reproducible
// across platforms with no dependence on math/rand internals.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// below returns a pseudo-random integer in [0, n). n must be positive.
func (r *rng) below(n uint64) uint64 { return r.next() % n }

// chance returns true with probability num/den.
func (r *rng) chance(num, den uint64) bool {
	if num == 0 {
		return false
	}
	return r.below(den) < num
}

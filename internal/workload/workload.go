// Package workload defines the benchmark suite of the study: synthetic
// surrogates for the paper's 15 representative SPEC CPU2006
// applications (Table I), the 12 showcase workload mixes (Table II),
// the full set of 105 two-application combinations, and the random
// 4-core/8-core mixes of the scaling study (Figure 11).
//
// The SPEC traces themselves are proprietary; each surrogate is a
// deterministic trace.Profile whose component mixture was derived from
// the paper's per-level MPKI (see DESIGN.md §2). What matters for the
// TLA study is preserved: which cache level each application's working
// set fits in (its CCF/LLCF/LLCT category) and roughly how hard it
// drives each level.
package workload

import (
	"fmt"
	"sort"

	"tlacache/internal/trace"
)

// Category classifies an application by where its working set fits,
// following the paper's taxonomy.
type Category uint8

const (
	// CCF (core cache fitting): the working set fits in the L1/L2.
	CCF Category = iota
	// LLCF (LLC fitting): the working set fits in the LLC but not the L2.
	LLCF
	// LLCT (LLC thrashing): the working set exceeds the LLC.
	LLCT
)

// String returns the paper's abbreviation.
func (c Category) String() string {
	switch c {
	case CCF:
		return "CCF"
	case LLCF:
		return "LLCF"
	case LLCT:
		return "LLCT"
	default:
		return fmt.Sprintf("Category(%d)", uint8(c))
	}
}

// PaperMPKI holds Table I's misses per kilo-instruction for the real
// SPEC application, used for calibration reports (cmd/calibrate) and
// EXPERIMENTS.md paper-vs-measured records.
type PaperMPKI struct {
	L1  float64 // combined L1I+L1D, 64KB total
	L2  float64 // 256KB
	LLC float64 // 2MB
}

// Benchmark is one synthetic SPEC CPU2006 surrogate.
type Benchmark struct {
	Name     string // three-letter tag used in mixes ("mcf")
	FullName string // SPEC name ("429.mcf")
	Category Category
	Paper    PaperMPKI
	Profile  trace.Profile
}

// NewGenerator builds the benchmark's deterministic instruction stream.
// Different seeds yield statistically identical but distinct streams
// (used when the same benchmark appears twice in a mix).
func (b Benchmark) NewGenerator(seed uint64) (*trace.Synthetic, error) {
	return trace.NewSynthetic(b.Profile, seed)
}

// Working-set regions shared by the profile definitions. The mixture
// algebra behind the weights is documented in DESIGN.md: given Table
// I's per-level MPKI targets, accesses are split between a hot region
// (L1-fitting), an L2-fitting region, an LLC-fitting region, and a
// memory-streaming (or memory-random) region.
const (
	hotWS  = 24 << 10  // always L1-resident once warm (real SPEC L1 footprints are this dense)
	l2WS   = 192 << 10 // misses the L1, fits the 256KB L2
	llcWS  = 512 << 10 // misses the 256KB L2, comfortably fits the 2MB LLC
	memWS  = 512 << 20 // streaming region, no reuse inside any budget
	mcfWS  = 64 << 20  // random region far beyond the LLC
	line   = 64
	ccfTxt = 24 << 10 // CCF apps keep a hot instruction footprint
	stdTxt = 12 << 10
)

func hot(weight int) trace.Component {
	return trace.Component{Weight: weight, Pattern: trace.Random, WS: hotWS}
}
func l2fit(weight int) trace.Component {
	return trace.Component{Weight: weight, Pattern: trace.Random, WS: l2WS}
}
func llcfit(weight int) trace.Component {
	return trace.Component{Weight: weight, Pattern: trace.Random, WS: llcWS}
}
func memStream(weight int, stride int64) trace.Component {
	return trace.Component{Weight: weight, Pattern: trace.Stream, WS: memWS, Stride: stride}
}
func memRand(weight int) trace.Component {
	return trace.Component{Weight: weight, Pattern: trace.Random, WS: mcfWS}
}

func profile(name string, code int64, mem, store int, comps ...trace.Component) trace.Profile {
	return trace.Profile{
		Name:          name,
		CodeBytes:     code,
		BranchEvery:   8,
		MemPerMille:   mem,
		StorePerMille: store,
		Components:    comps,
	}
}

// benchmarks lists the 15 surrogates in Table I's order. Component
// weights are per-ten-thousandths of memory accesses, from the
// decomposition of the paper's MPKI targets.
var benchmarks = []Benchmark{
	{"ast", "473.astar", LLCF, PaperMPKI{29.29, 17.02, 3.16},
		profile("ast", stdTxt, 400, 300, hot(9210), l2fit(290), llcfit(420), memStream(80, line))},
	{"bzi", "401.bzip2", LLCF, PaperMPKI{19.48, 17.44, 7.25},
		profile("bzi", stdTxt, 380, 300, hot(9480), l2fit(10), llcfit(320), memStream(190, line))},
	{"cal", "454.calculix", LLCF, PaperMPKI{21.19, 14.06, 1.42},
		profile("cal", stdTxt, 400, 250, hot(9440), l2fit(140), llcfit(380), memStream(40, line))},
	{"dea", "447.dealII", CCF, PaperMPKI{0.95, 0.22, 0.08},
		profile("dea", ccfTxt, 350, 300, hot(9969), l2fit(24), llcfit(5), memStream(2, line))},
	{"gob", "445.gobmk", LLCT, PaperMPKI{10.56, 7.91, 7.70},
		profile("gob", stdTxt, 350, 300, hot(9686), l2fit(87), llcfit(7), memStream(220, line))},
	{"h26", "464.h264ref", CCF, PaperMPKI{11.26, 1.57, 0.16},
		profile("h26", ccfTxt, 380, 300, hot(9661), l2fit(292), llcfit(44), memStream(3, line))},
	{"hmm", "456.hmmer", LLCF, PaperMPKI{4.67, 2.76, 1.21},
		profile("hmm", stdTxt, 350, 300, hot(9857), l2fit(55), llcfit(53), memStream(35, line))},
	{"lib", "462.libquantum", LLCT, PaperMPKI{38.83, 38.83, 38.83},
		profile("lib", stdTxt, 350, 250, hot(5563), memStream(4437, 16))},
	{"mcf", "429.mcf", LLCT, PaperMPKI{21.51, 20.43, 20.30},
		profile("mcf", stdTxt, 350, 250, hot(9383), l2fit(20), memRand(597))},
	{"per", "400.perlbench", CCF, PaperMPKI{0.42, 0.20, 0.11},
		profile("per", ccfTxt, 350, 300, hot(9987), l2fit(7), llcfit(3), memStream(3, line))},
	{"pov", "453.povray", CCF, PaperMPKI{15.08, 0.18, 0.03},
		profile("pov", ccfTxt, 380, 300, hot(9534), l2fit(460), llcfit(5), memStream(1, line))},
	{"sje", "458.sjeng", CCF, PaperMPKI{0.99, 0.37, 0.32},
		profile("sje", ccfTxt, 350, 300, hot(9968), l2fit(21), llcfit(2), memStream(9, line))},
	{"sph", "482.sphinx3", LLCT, PaperMPKI{19.03, 16.20, 14.00},
		profile("sph", stdTxt, 360, 250, hot(9455), l2fit(80), llcfit(76), memStream(389, line))},
	{"wrf", "481.wrf", LLCT, PaperMPKI{16.50, 15.18, 14.67},
		profile("wrf", stdTxt, 360, 250, hot(9534), l2fit(41), llcfit(18), memStream(407, line))},
	{"xal", "483.xalancbmk", LLCF, PaperMPKI{27.80, 3.38, 2.30},
		profile("xal", stdTxt, 400, 300, hot(9197), l2fit(713), llcfit(32), memStream(58, line))},
}

// All returns the 15 surrogate benchmarks, alphabetically by tag.
func All() []Benchmark {
	out := append([]Benchmark(nil), benchmarks...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the benchmark with the given three-letter tag.
func ByName(name string) (Benchmark, error) {
	for _, b := range benchmarks {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// ByCategory returns the benchmarks of one category.
func ByCategory(c Category) []Benchmark {
	var out []Benchmark
	for _, b := range All() {
		if b.Category == c {
			out = append(out, b)
		}
	}
	return out
}

package workload

import (
	"testing"

	"tlacache/internal/trace"
)

func TestSuiteShape(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("suite has %d benchmarks, want 15", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatalf("All() not sorted: %s >= %s", all[i-1].Name, all[i].Name)
		}
	}
	for _, cat := range []Category{CCF, LLCF, LLCT} {
		if got := len(ByCategory(cat)); got != 5 {
			t.Errorf("category %s has %d benchmarks, want 5", cat, got)
		}
	}
}

func TestCategoriesMatchPaper(t *testing.T) {
	want := map[string]Category{
		"dea": CCF, "h26": CCF, "per": CCF, "pov": CCF, "sje": CCF,
		"ast": LLCF, "bzi": LLCF, "cal": LLCF, "hmm": LLCF, "xal": LLCF,
		"gob": LLCT, "lib": LLCT, "mcf": LLCT, "sph": LLCT, "wrf": LLCT,
	}
	for name, cat := range want {
		b, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if b.Category != cat {
			t.Errorf("%s category = %v, want %v", name, b.Category, cat)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestProfilesValidateAndGenerate(t *testing.T) {
	for _, b := range All() {
		if err := b.Profile.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		g, err := b.NewGenerator(1)
		if err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		var in trace.Instr
		mem := 0
		for i := 0; i < 10000; i++ {
			g.Next(&in)
			if in.Op != trace.OpNone {
				mem++
			}
		}
		if mem == 0 {
			t.Errorf("%s: produced no memory accesses", b.Name)
		}
	}
}

func TestPaperMPKIRecorded(t *testing.T) {
	// Every surrogate carries Table I's numbers and they are internally
	// consistent: MPKI must not increase down the hierarchy.
	for _, b := range All() {
		if b.Paper.L1 <= 0 || b.Paper.L2 <= 0 || b.Paper.LLC <= 0 {
			t.Errorf("%s: missing paper MPKI", b.Name)
		}
		if b.Paper.L2 > b.Paper.L1+1e-9 || b.Paper.LLC > b.Paper.L2+1e-9 {
			t.Errorf("%s: paper MPKI not monotone: %+v", b.Name, b.Paper)
		}
	}
}

func TestCategoryString(t *testing.T) {
	if CCF.String() != "CCF" || LLCF.String() != "LLCF" || LLCT.String() != "LLCT" {
		t.Fatal("category strings wrong")
	}
	if Category(9).String() != "Category(9)" {
		t.Fatal("unknown category string wrong")
	}
}

func TestTableIIMixes(t *testing.T) {
	mixes := TableIIMixes()
	if len(mixes) != 12 {
		t.Fatalf("%d Table II mixes, want 12", len(mixes))
	}
	wantCats := map[string]string{
		"MIX_00": "LLCF+LLCT", "MIX_01": "CCF+CCF", "MIX_02": "LLCF+LLCT",
		"MIX_03": "CCF+CCF", "MIX_04": "LLCT+LLCT", "MIX_05": "CCF+LLCT",
		"MIX_06": "LLCF+LLCF", "MIX_07": "CCF+LLCT", "MIX_08": "LLCF+CCF",
		"MIX_09": "CCF+LLCT", "MIX_10": "LLCT+CCF", "MIX_11": "LLCF+CCF",
	}
	for _, m := range mixes {
		if len(m.Apps) != 2 {
			t.Errorf("%s has %d apps", m.Name, len(m.Apps))
		}
		if _, err := m.Benchmarks(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if got := m.Categories(); got != wantCats[m.Name] {
			t.Errorf("%s categories = %s, want %s", m.Name, got, wantCats[m.Name])
		}
	}
}

func TestAllPairsCount(t *testing.T) {
	pairs := AllPairs()
	if len(pairs) != 105 { // C(15,2), the paper's population
		t.Fatalf("AllPairs = %d, want 105", len(pairs))
	}
	seen := map[string]bool{}
	for _, m := range pairs {
		if seen[m.Name] {
			t.Fatalf("duplicate pair %s", m.Name)
		}
		seen[m.Name] = true
		if m.Apps[0] == m.Apps[1] {
			t.Fatalf("pair %s repeats a benchmark", m.Name)
		}
		if _, err := m.Benchmarks(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomMixes(t *testing.T) {
	a, err := RandomMixes(100, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomMixes(100, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 100 {
		t.Fatalf("got %d mixes", len(a))
	}
	for i := range a {
		if len(a[i].Apps) != 4 {
			t.Fatalf("mix %d has %d apps", i, len(a[i].Apps))
		}
		for j := range a[i].Apps {
			if a[i].Apps[j] != b[i].Apps[j] {
				t.Fatal("RandomMixes not deterministic")
			}
		}
		// Within a 4-core mix no benchmark repeats (15 >= 4).
		seen := map[string]bool{}
		for _, app := range a[i].Apps {
			if seen[app] {
				t.Fatalf("mix %d repeats %s", i, app)
			}
			seen[app] = true
		}
		if _, err := a[i].Benchmarks(); err != nil {
			t.Fatal(err)
		}
	}
	// More cores than benchmarks must still work (repetition allowed).
	big, err := RandomMixes(3, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(big[0].Apps) != 20 {
		t.Fatal("oversized mix truncated")
	}
	if _, err := RandomMixes(0, 4, 1); err == nil {
		t.Error("RandomMixes(0, ...) accepted")
	}
	if _, err := RandomMixes(1, 0, 1); err == nil {
		t.Error("RandomMixes(_, 0) accepted")
	}
}

func TestMixBenchmarksError(t *testing.T) {
	m := Mix{Name: "BAD", Apps: []string{"dea", "nope"}}
	if _, err := m.Benchmarks(); err == nil {
		t.Error("unknown app accepted")
	}
	if got := m.Categories(); got != "CCF+?" {
		t.Errorf("Categories = %q", got)
	}
}

package workload

import "fmt"

// Mix is a multi-programmed workload: one benchmark per core.
type Mix struct {
	Name string
	Apps []string // benchmark tags, one per core
}

// Benchmarks resolves the mix's tags.
func (m Mix) Benchmarks() ([]Benchmark, error) {
	out := make([]Benchmark, len(m.Apps))
	for i, tag := range m.Apps {
		b, err := ByName(tag)
		if err != nil {
			return nil, fmt.Errorf("mix %s: %w", m.Name, err)
		}
		out[i] = b
	}
	return out, nil
}

// Categories renders the mix's category signature, e.g. "CCF+LLCT"
// ("+" rather than "," so the string stays a single CSV cell).
func (m Mix) Categories() string {
	out := ""
	for i, tag := range m.Apps {
		if i > 0 {
			out += "+"
		}
		if b, err := ByName(tag); err == nil {
			out += b.Category.String()
		} else {
			out += "?"
		}
	}
	return out
}

// TableIIMixes returns the paper's 12 showcase two-core mixes.
func TableIIMixes() []Mix {
	return []Mix{
		{Name: "MIX_00", Apps: []string{"bzi", "wrf"}}, // LLCF, LLCT
		{Name: "MIX_01", Apps: []string{"dea", "pov"}}, // CCF, CCF
		{Name: "MIX_02", Apps: []string{"cal", "gob"}}, // LLCF, LLCT
		{Name: "MIX_03", Apps: []string{"h26", "per"}}, // CCF, CCF
		{Name: "MIX_04", Apps: []string{"gob", "mcf"}}, // LLCT, LLCT
		{Name: "MIX_05", Apps: []string{"h26", "gob"}}, // CCF, LLCT
		{Name: "MIX_06", Apps: []string{"hmm", "xal"}}, // LLCF, LLCF
		{Name: "MIX_07", Apps: []string{"dea", "wrf"}}, // CCF, LLCT
		{Name: "MIX_08", Apps: []string{"bzi", "sje"}}, // LLCF, CCF
		{Name: "MIX_09", Apps: []string{"pov", "mcf"}}, // CCF, LLCT
		{Name: "MIX_10", Apps: []string{"lib", "sje"}}, // LLCT, CCF
		{Name: "MIX_11", Apps: []string{"ast", "pov"}}, // LLCF, CCF
	}
}

// AllPairs returns all C(15,2) = 105 two-benchmark combinations, the
// full workload population of the paper's s-curves. Names are
// PAIR_<a>_<b> with tags in alphabetical order.
func AllPairs() []Mix {
	bs := All()
	var out []Mix
	for i := 0; i < len(bs); i++ {
		for j := i + 1; j < len(bs); j++ {
			out = append(out, Mix{
				Name: fmt.Sprintf("PAIR_%s_%s", bs[i].Name, bs[j].Name),
				Apps: []string{bs[i].Name, bs[j].Name},
			})
		}
	}
	return out
}

// RandomMixes returns n mixes of `cores` benchmarks drawn (with
// repetition across mixes, without repetition within a mix when
// possible) from the suite, deterministically from seed. The paper
// creates 100 random 4-core and 8-core mixes for Figure 11.
func RandomMixes(n, cores int, seed uint64) ([]Mix, error) {
	if n <= 0 || cores <= 0 {
		return nil, fmt.Errorf("workload: RandomMixes(%d, %d) needs positive arguments", n, cores)
	}
	bs := All()
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
		z = (z ^ z>>27) * 0x94d049bb133111eb
		return z ^ z>>31
	}
	out := make([]Mix, n)
	for i := range out {
		apps := make([]string, cores)
		perm := make([]int, len(bs))
		for k := range perm {
			perm[k] = k
		}
		// Fisher–Yates; when cores > len(bs) the tail repeats benchmarks.
		for k := 0; k < cores; k++ {
			if k < len(bs) {
				j := k + int(next()%uint64(len(bs)-k))
				perm[k], perm[j] = perm[j], perm[k]
				apps[k] = bs[perm[k]].Name
			} else {
				apps[k] = bs[next()%uint64(len(bs))].Name
			}
		}
		out[i] = Mix{Name: fmt.Sprintf("RAND%dC_%03d", cores, i), Apps: apps}
	}
	return out, nil
}

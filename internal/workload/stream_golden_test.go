package workload

import (
	"hash/fnv"
	"testing"

	"tlacache/internal/trace"
)

// TestStreamGolden pins an FNV-1a hash of the first million
// instructions of representative profiles. The synthetic streams are
// the study's workloads: any change to the generator's draw sequence —
// however innocent-looking — silently re-runs every experiment on
// different programs and detaches the calibrated MPKIs from Table I.
// Generator refactors (divisor strength reduction, state localisation,
// component-table lookups) must keep these hashes bit-for-bit; an
// intentional stream change is a recalibration event and needs DESIGN
// §2 redone, not just a repin.
func TestStreamGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("hashes 5M generated instructions")
	}
	cases := []struct {
		bench string
		seed  uint64
		want  uint64
	}{
		{"sje", 42, 0x753949aa4e03d86a},
		{"lib", 42, 0xcdb44e365e022c5f},
		{"mcf", 42, 0x6c6c00ea2366be7d},
		{"xal", 42, 0xebb31f4d90c74a68},
		{"gob", 42, 0x7fecbbb08e05cead},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.bench, func(t *testing.T) {
			b, err := ByName(tc.bench)
			if err != nil {
				t.Fatal(err)
			}
			g := trace.MustSynthetic(b.Profile, tc.seed)
			h := fnv.New64a()
			var in trace.Instr
			var buf [17]byte
			for i := 0; i < 1_000_000; i++ {
				g.Next(&in)
				buf[0] = byte(in.Op)
				for k := 0; k < 8; k++ {
					buf[1+k] = byte(in.PC >> (8 * k))
					buf[9+k] = byte(in.Addr >> (8 * k))
				}
				h.Write(buf[:])
			}
			if got := h.Sum64(); got != tc.want {
				t.Errorf("stream hash drifted: got %#x, want %#x — the generator no longer produces the calibrated workload", got, tc.want)
			}
		})
	}
}

package experiments

import (
	"fmt"

	"tlacache/internal/hierarchy"
)

// Directory ablates the LLC's per-line presence bits (the Core i7-style
// back-invalidate filter of the paper's footnote 1): with broadcast
// invalidation every LLC eviction probes every core. Throughput barely
// moves — the messages always find the same lines — but the message
// count shows what the directory buys.
func Directory(o Options) ([]Table, error) {
	broadcast := func(name string, tla hierarchy.TLAPolicy) Spec {
		return Spec{Name: name, Apply: func(c *hierarchy.Config) {
			c.TLA = tla
			c.BroadcastInvalidate = true
		}}
	}
	specs := []Spec{
		baseline(),
		broadcast("Inclusive+broadcast", hierarchy.TLANone),
		qbs("QBS", hierarchy.AllCaches, 0),
		broadcast("QBS+broadcast", hierarchy.TLAQBS),
	}
	o.progressf("directory: %d mixes x %d specs\n", len(o.mixes()), len(specs))
	m, err := runMatrix(o, 2, o.mixes(), specs, nil)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "directory",
		Title:   "presence-directory ablation: filtered vs broadcast invalidation (2 cores)",
		Columns: []string{"configuration", "throughput", "back-invalidates/KI", "QBS queries/KI"},
		Notes: []string{"broadcast sends every invalidate/query to every core;",
			"the directory filter cuts the messages without changing behaviour"},
	}
	instrK := 2 * float64(o.Instructions) / 1000
	n := float64(len(m.mixes))
	for j := 0; j < len(specs); j++ {
		var backInv, queries float64
		for i := range m.mixes {
			backInv += float64(m.results[i][j].Traffic.BackInvalidates)
			queries += float64(m.results[i][j].Traffic.QBSQueries)
		}
		t.Rows = append(t.Rows, []string{
			m.specs[j].Name, pct(geoColumn(m, j)),
			fmt.Sprintf("%.2f", backInv/n/instrK),
			fmt.Sprintf("%.2f", queries/n/instrK),
		})
	}
	return []Table{t}, nil
}

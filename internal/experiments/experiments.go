// Package experiments regenerates every table and figure of the
// paper's evaluation on the simulated machine: the policy variants are
// expressed as configuration deltas over the baseline inclusive
// hierarchy, each experiment runs its workload population under every
// variant, and results are rendered as plain-text tables (and CSV).
//
// The experiment registry (Registry) maps the paper's artifact names —
// table1, table2, figure2 … figure11 — plus the in-text side studies
// (hint fractions, the victim cache, fairness metrics, the footnote
// variants, replacement independence, single-core, snoop traffic, and
// the directory ablation) to runner functions.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"

	"tlacache/internal/hierarchy"
	"tlacache/internal/runner"
	"tlacache/internal/sim"
	"tlacache/internal/telemetry"
	"tlacache/internal/workload"
)

// Options control an experiment run's scale and execution.
type Options struct {
	// Instructions and Warmup are per-core budgets (see sim.Config).
	Instructions uint64
	Warmup       uint64
	// AllPairs runs the full 105-workload population (the paper's
	// s-curves and "All" geomeans) instead of the 12 Table II mixes.
	AllPairs bool
	// Seed diversifies the synthetic streams.
	Seed uint64
	// Progress, when non-nil, receives one synchronized line per
	// completed run (runner.NewReporter wraps any io.Writer).
	Progress *runner.Reporter
	// Workers bounds the parallel simulation workers per sweep; zero
	// selects one per CPU. Results are identical at any width: jobs
	// are independent and merged in submission order.
	Workers int
	// Context, when non-nil, cancels an in-flight experiment (e.g. on
	// Ctrl-C); nil means context.Background().
	Context context.Context
	// Stats, when non-nil, accumulates per-job wall time and simulated
	// instruction throughput for the run manifest.
	Stats *runner.Collector
	// SampleEvery, when non-zero, instruments every simulation cell with
	// a telemetry recorder and an interval sampler snapshotting per-core
	// IPC, MPKI, and inclusion victims every SampleEvery committed
	// instructions. Probe summaries land in the Stats manifest.
	SampleEvery uint64
	// SampleDir, when set alongside SampleEvery, receives one
	// <mix>-<spec>-intervals.{csv,jsonl} time-series pair per cell.
	SampleDir string
	// DecisionTraceDir, when set, attaches an LLC decision tracer to
	// every simulation cell and writes one binary TLAD1 trace per cell,
	// <mix>-<spec>-decisions.tlad, for offline analysis with cmd/tlatrace.
	DecisionTraceDir string
}

// DefaultOptions balance fidelity and runtime: the warmup is long
// enough for even the slowest LLC-thrashing application (gobmk-like,
// ~14 LLC fills per kilo-instruction) to fill the 2MB LLC and reach
// replacement steady state — inclusion victims only exist once the LLC
// evicts — and 400K measured instructions keep a full-figure
// regeneration to minutes.
func DefaultOptions() Options {
	return Options{Instructions: 400_000, Warmup: 2_500_000, Seed: 1}
}

// Validate reports the first problem with the options.
func (o *Options) Validate() error {
	if o.Instructions == 0 {
		return fmt.Errorf("experiments: zero instruction budget")
	}
	return nil
}

func (o *Options) mixes() []workload.Mix {
	if o.AllPairs {
		return workload.AllPairs()
	}
	return workload.TableIIMixes()
}

func (o *Options) progressf(format string, args ...interface{}) {
	o.Progress.Printf(format, args...)
}

// ctx resolves the run context.
func (o *Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// engine builds the runner configuration shared by every sweep of this
// experiment: the worker bound, the synchronized progress reporter, and
// the manifest collector.
func (o *Options) engine() runner.Config {
	return runner.Config{Workers: o.Workers, Reporter: o.Progress, Collector: o.Stats}
}

// runJobs fans independent simulation jobs out over the worker pool and
// returns their values in submission order, collapsing the first
// per-job failure into an error.
func runJobs[T any](o Options, jobs []runner.Job[T]) ([]T, error) {
	results, err := runner.Run(o.ctx(), o.engine(), jobs)
	if err != nil {
		return nil, err
	}
	if err := runner.FirstError(results); err != nil {
		return nil, err
	}
	out := make([]T, len(results))
	for i := range results {
		out[i] = results[i].Value
	}
	return out, nil
}

// simConfig builds the baseline simulation config for the options.
func (o *Options) simConfig(cores int) sim.Config {
	cfg := sim.DefaultConfig(cores)
	cfg.Instructions = o.Instructions
	cfg.Warmup = o.Warmup
	cfg.Seed = o.Seed
	cfg.Hierarchy.EnablePrefetch = true // the paper's baseline prefetches
	return cfg
}

// Spec is one hierarchy variant under test: a name and a configuration
// delta applied to the baseline.
type Spec struct {
	Name  string
	Apply func(*hierarchy.Config)
}

func baseline() Spec {
	return Spec{Name: "Inclusive", Apply: func(*hierarchy.Config) {}}
}

func nonInclusive() Spec {
	return Spec{Name: "Non-Inclusive", Apply: func(c *hierarchy.Config) {
		c.Inclusion = hierarchy.NonInclusive
	}}
}

func exclusive() Spec {
	return Spec{Name: "Exclusive", Apply: func(c *hierarchy.Config) {
		c.Inclusion = hierarchy.Exclusive
	}}
}

func tlh(name string, sources hierarchy.CacheSet) Spec {
	return Spec{Name: name, Apply: func(c *hierarchy.Config) {
		c.TLA = hierarchy.TLATLH
		c.TLHSources = sources
		c.TLHPerMille = 1000
	}}
}

func eci() Spec {
	return Spec{Name: "ECI", Apply: func(c *hierarchy.Config) {
		c.TLA = hierarchy.TLAECI
	}}
}

func qbs(name string, probe hierarchy.CacheSet, maxQueries int) Spec {
	return Spec{Name: name, Apply: func(c *hierarchy.Config) {
		c.TLA = hierarchy.TLAQBS
		c.QBSProbe = probe
		c.QBSMaxQueries = maxQueries
	}}
}

// sanitizeName maps a job name to a filesystem-safe file fragment:
// anything outside [A-Za-z0-9._-] becomes '-'.
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '-'
		}
	}, s)
}

// runCell simulates one (mix, spec) cell.
func runCell(cfg sim.Config, spec Spec, mix workload.Mix) (sim.MixResult, error) {
	c := cfg
	spec.Apply(&c.Hierarchy)
	return sim.RunMix(c, mix)
}

// matrix holds the results of mixes x specs runs; specs[0] is always
// the normalisation baseline.
type matrix struct {
	mixes   []workload.Mix
	specs   []Spec
	results [][]sim.MixResult // [mix][spec]
}

// runMatrix runs every (mix, spec) combination on cores-wide machines,
// fanning the fully independent cells out over the worker pool. Cells
// are submitted row-major and merged back in submission order, so the
// matrix — and everything rendered from it — is identical at any
// worker count.
func runMatrix(o Options, cores int, mixes []workload.Mix, specs []Spec, mutate func(*sim.Config)) (*matrix, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if o.DecisionTraceDir != "" {
		if err := os.MkdirAll(o.DecisionTraceDir, 0o755); err != nil {
			return nil, err
		}
	}
	m := &matrix{mixes: mixes, specs: specs, results: make([][]sim.MixResult, len(mixes))}
	cfg := o.simConfig(cores)
	if mutate != nil {
		mutate(&cfg)
	}
	work := uint64(cores) * (cfg.Warmup + cfg.Instructions)
	jobs := make([]runner.Job[sim.MixResult], 0, len(mixes)*len(specs))
	for _, mix := range mixes {
		for _, spec := range specs {
			mix, spec := mix, spec
			jobs = append(jobs, runner.Job[sim.MixResult]{
				Name: mix.Name + "/" + spec.Name,
				Work: work,
				Run: func(context.Context) (res sim.MixResult, err error) {
					c := cfg
					var rec *telemetry.Recorder
					if o.SampleEvery > 0 {
						// Each cell owns its sampler and recorder, so
						// parallel cells never share telemetry state.
						c.Sampler = telemetry.NewSampler(o.SampleEvery)
						rec = telemetry.NewRecorder()
						c.Probe = rec
					}
					if o.DecisionTraceDir != "" {
						// Each cell owns its decision-trace writer; the
						// meta header reflects the spec-mutated geometry.
						hc := c.Hierarchy
						spec.Apply(&hc)
						path := filepath.Join(o.DecisionTraceDir,
							sanitizeName(mix.Name+"-"+spec.Name)+"-decisions.tlad")
						f, ferr := os.Create(path)
						if ferr != nil {
							return res, ferr
						}
						dw, ferr := telemetry.NewDecisionWriter(f, hierarchy.DecisionMetaFor(hc))
						if ferr != nil {
							f.Close()
							return res, ferr
						}
						c.DecisionTracer = dw
						defer func() {
							if ferr := dw.Flush(); ferr != nil && err == nil {
								err = ferr
							}
							if cerr := f.Close(); cerr != nil && err == nil {
								err = cerr
							}
						}()
					}
					res, err = runCell(c, spec, mix)
					if err != nil {
						return res, fmt.Errorf("%s under %s: %w", mix.Name, spec.Name, err)
					}
					if rec != nil {
						o.Stats.AddTelemetry(mix.Name+"/"+spec.Name, rec.Summary())
						if o.SampleDir != "" {
							prefix := filepath.Join(o.SampleDir,
								sanitizeName(mix.Name+"-"+spec.Name)+"-intervals")
							if werr := c.Sampler.WritePair(prefix); werr != nil {
								return res, werr
							}
						}
					}
					return res, nil
				},
				Detail: func(r sim.MixResult) string {
					return fmt.Sprintf("throughput=%.3f llcMisses=%d victims=%d",
						r.Throughput, r.LLCMisses, r.InclusionVictims)
				},
			})
		}
	}
	cells, err := runJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	for i := range mixes {
		m.results[i] = cells[i*len(specs) : (i+1)*len(specs)]
	}
	return m, nil
}

// normThroughput returns results[i][j].Throughput normalised to spec 0.
func (m *matrix) normThroughput(i, j int) float64 {
	base := m.results[i][0].Throughput
	if base <= 0 {
		return 0
	}
	return m.results[i][j].Throughput / base
}

// missReduction returns the percentage reduction in windowed LLC misses
// of spec j versus spec 0 for mix i.
func (m *matrix) missReduction(i, j int) float64 {
	base := m.results[i][0].LLCMisses
	if base == 0 {
		return 0
	}
	return 100 * (1 - float64(m.results[i][j].LLCMisses)/float64(base))
}

// Table is a rendered experiment artifact.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV writes the table as CSV (RFC-4180-enough for these values:
// no cell contains commas or quotes).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the table as a single indented JSON object, for
// programmatic consumers of regenerated results.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Runner regenerates one paper artifact.
type Runner func(Options) ([]Table, error)

// Registry maps artifact names to runners, in the paper's order.
func Registry() []struct {
	Name string
	Desc string
	Run  Runner
} {
	return []struct {
		Name string
		Desc string
		Run  Runner
	}{
		{"table1", "MPKI of the 15 SPEC surrogates in isolation (no prefetch)", Table1},
		{"table2", "the 12 showcase workload mixes and their categories", Table2},
		{"figure2", "non-inclusive & exclusive vs inclusive across cache ratios", Figure2},
		{"figure5", "Temporal Locality Hints performance (variants + s-curve)", Figure5},
		{"figure6", "Early Core Invalidation performance (+ s-curve)", Figure6},
		{"figure7", "Query Based Selection performance (variants, query limits, s-curve)", Figure7},
		{"figure8", "LLC miss reduction of all policies (+ QBS s-curve)", Figure8},
		{"figure9", "summary on inclusive and non-inclusive baselines", Figure9},
		{"figure10", "scalability across core:LLC ratios", Figure10},
		{"figure11", "scalability across core counts (QBS vs non-inclusive)", Figure11},
		{"tlhfraction", "TLH hint-fraction sensitivity (sec V-A)", TLHFraction},
		{"victimcache", "32-entry LLC victim cache vs ECI/QBS (sec VI)", VictimCache},
		{"fairness", "weighted speedup and hmean fairness of QBS (footnote 5)", Fairness},
		{"modifiedqbs", "modified QBS that invalidates saved lines (footnote 6)", ModifiedQBS},
		{"l2inclusive", "inclusive L2 cost and TLA-at-L2 remedy (footnote 3)", L2Inclusive},
		{"llcreplacement", "inclusion problem under LRU/NRU/SRRIP/DIP LLCs (footnote 4)", LLCReplacement},
		{"singlecore", "QBS on isolated single-threaded workloads (sec VI, Zahran)", SingleCore},
		{"snoopfilter", "coherence snoop cost of giving up inclusion (sec I-II)", SnoopFilter},
		{"directory", "presence-directory ablation: filtered vs broadcast invalidation", Directory},
	}
}

// ByName finds a registered runner.
func ByName(name string) (Runner, error) {
	for _, e := range Registry() {
		if e.Name == name {
			return e.Run, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", name)
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%+.1f%%", 100*(v-1)) }

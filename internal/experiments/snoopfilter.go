package experiments

import (
	"fmt"

	"tlacache/internal/hierarchy"
)

// SnoopFilter quantifies the paper's motivating trade-off: inclusive
// LLC misses need no coherence snoops (the LLC is a superset of the
// core caches), while non-inclusive and exclusive hierarchies broadcast
// to every other core on each LLC miss. QBS keeps the inclusive LLC's
// zero-snoop property while matching non-inclusive performance — the
// whole point of the paper in one table.
func SnoopFilter(o Options) ([]Table, error) {
	specs := []Spec{
		baseline(),
		qbs("QBS", hierarchy.AllCaches, 0),
		nonInclusive(),
		exclusive(),
	}
	o.progressf("snoopfilter: %d mixes x %d specs\n", len(o.mixes()), len(specs))
	m, err := runMatrix(o, 2, o.mixes(), specs, nil)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:    "snoopfilter",
		Title: "the coherence cost of giving up inclusion (2 cores)",
		Columns: []string{"policy", "throughput", "coherence snoops/KI",
			"back-invalidates/KI", "extra messages/KI"},
		Notes: []string{"snoops: cross-core probes an LLC miss must broadcast without inclusion",
			"extra messages: TLA traffic (hints + ECIs + QBS queries)",
			"QBS matches non-inclusive throughput at zero snoop cost - the paper's thesis"},
	}
	// Total committed instructions per mix (both cores' windows).
	instrK := 2 * float64(o.Instructions) / 1000
	for j := 0; j < len(specs); j++ {
		var snoops, backInv, extra float64
		for i := range m.mixes {
			tr := m.results[i][j].Traffic
			snoops += float64(tr.CoherenceSnoops)
			backInv += float64(tr.BackInvalidates)
			extra += float64(tr.TLHSent + tr.ECISent + tr.QBSQueries)
		}
		n := float64(len(m.mixes))
		t.Rows = append(t.Rows, []string{
			m.specs[j].Name,
			pct(geoColumn(m, j)),
			fmt.Sprintf("%.2f", snoops/n/instrK),
			fmt.Sprintf("%.2f", backInv/n/instrK),
			fmt.Sprintf("%.2f", extra/n/instrK),
		})
	}
	return []Table{t}, nil
}

package experiments

import "strconv"

// cellArena batches the formatting of a table's string cells into one
// backing buffer, then hands out substrings of a single string. A
// 15-benchmark isolation table has over a hundred numeric cells; one
// fmt.Sprintf per cell dominates the allocation profile of a warm
// artifact regeneration, while the arena renders the same table in a
// handful of allocations. Formatting is strconv.AppendFloat(v, 'f',
// prec, 64), byte-identical to the fmt.Sprintf("%.Nf") it replaces.
type cellArena struct {
	buf  []byte
	ends []int
}

// reserve pre-sizes the arena for cells cells totalling about bytes
// bytes, so staging does not regrow the buffers append by append.
func (a *cellArena) reserve(cells, bytes int) {
	if cap(a.buf) < bytes {
		a.buf = make([]byte, 0, bytes)
	}
	if cap(a.ends) < cells {
		a.ends = make([]int, 0, cells)
	}
}

// float stages one fixed-precision float cell.
func (a *cellArena) float(v float64, prec int) {
	a.buf = strconv.AppendFloat(a.buf, v, 'f', prec, 64)
	a.ends = append(a.ends, len(a.buf))
}

// path stages one "dir/name" cell.
func (a *cellArena) path(dir, name string) {
	a.buf = append(a.buf, dir...)
	a.buf = append(a.buf, '/')
	a.buf = append(a.buf, name...)
	a.ends = append(a.ends, len(a.buf))
}

// strings converts everything staged since the last call into cell
// strings sharing one backing string, and resets the arena for reuse.
func (a *cellArena) strings() []string {
	s := string(a.buf)
	out := make([]string, len(a.ends))
	start := 0
	for i, e := range a.ends {
		out[i] = s[start:e]
		start = e
	}
	a.buf, a.ends = a.buf[:0], a.ends[:0]
	return out
}

package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tlacache/internal/hierarchy"
	"tlacache/internal/runner"
	"tlacache/internal/workload"
)

// fastOptions keep experiment tests quick: tiny budgets, two mixes.
func fastOptions() Options {
	return Options{Instructions: 20_000, Warmup: 40_000, Seed: 1}
}

func twoMixes() []workload.Mix { return workload.TableIIMixes()[:2] }

func TestOptionsValidate(t *testing.T) {
	o := DefaultOptions()
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Options{}
	if err := bad.Validate(); err == nil {
		t.Error("zero-instruction options accepted")
	}
}

func TestRegistryAndByName(t *testing.T) {
	reg := Registry()
	if len(reg) != 19 {
		t.Fatalf("registry has %d entries, want 19", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.Name == "" || e.Desc == "" || e.Run == nil {
			t.Errorf("incomplete registry entry %+v", e)
		}
		if seen[e.Name] {
			t.Errorf("duplicate registry entry %s", e.Name)
		}
		seen[e.Name] = true
		if _, err := ByName(e.Name); err != nil {
			t.Errorf("ByName(%s): %v", e.Name, err)
		}
	}
	for _, want := range []string{"table1", "table2", "figure2", "figure5", "figure6",
		"figure7", "figure8", "figure9", "figure10", "figure11"} {
		if !seen[want] {
			t.Errorf("registry missing %s", want)
		}
	}
	if _, err := ByName("figure99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestSpecsApplyCleanly(t *testing.T) {
	cases := []struct {
		spec  Spec
		check func(hierarchy.Config) bool
	}{
		{baseline(), func(c hierarchy.Config) bool {
			return c.Inclusion == hierarchy.Inclusive && c.TLA == hierarchy.TLANone
		}},
		{nonInclusive(), func(c hierarchy.Config) bool { return c.Inclusion == hierarchy.NonInclusive }},
		{exclusive(), func(c hierarchy.Config) bool { return c.Inclusion == hierarchy.Exclusive }},
		{tlh("TLH-L1", hierarchy.L1Caches), func(c hierarchy.Config) bool {
			return c.TLA == hierarchy.TLATLH && c.TLHSources == hierarchy.L1Caches && c.TLHPerMille == 1000
		}},
		{eci(), func(c hierarchy.Config) bool { return c.TLA == hierarchy.TLAECI }},
		{qbs("QBS", hierarchy.AllCaches, 2), func(c hierarchy.Config) bool {
			return c.TLA == hierarchy.TLAQBS && c.QBSMaxQueries == 2
		}},
	}
	for _, tc := range cases {
		cfg := hierarchy.DefaultConfig(2)
		tc.spec.Apply(&cfg)
		if !tc.check(cfg) {
			t.Errorf("spec %s did not configure as expected", tc.spec.Name)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("spec %s produced invalid config: %v", tc.spec.Name, err)
		}
	}
}

func TestRunMatrixShapeAndNormalisation(t *testing.T) {
	o := fastOptions()
	specs := []Spec{baseline(), nonInclusive()}
	m, err := runMatrix(o, 2, twoMixes(), specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.results) != 2 || len(m.results[0]) != 2 {
		t.Fatalf("matrix shape wrong")
	}
	for i := range m.mixes {
		if got := m.normThroughput(i, 0); got != 1.0 {
			t.Errorf("baseline normalised throughput = %v", got)
		}
		if v := m.normThroughput(i, 1); v <= 0 {
			t.Errorf("non-inclusive normalised throughput = %v", v)
		}
		if r := m.missReduction(i, 0); r != 0 {
			t.Errorf("baseline miss reduction = %v", r)
		}
	}
}

func TestRunMatrixProgressAndErrors(t *testing.T) {
	o := fastOptions()
	var buf bytes.Buffer
	o.Progress = runner.NewReporter(&buf)
	if _, err := runMatrix(o, 2, twoMixes(), []Spec{baseline()}, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MIX_00") {
		t.Error("no progress output")
	}
	if !strings.Contains(buf.String(), "/2]") {
		t.Errorf("progress lines lack completed/total counts:\n%s", buf.String())
	}
	// A mix with the wrong arity must surface as an error.
	bad := []workload.Mix{{Name: "BAD", Apps: []string{"dea"}}}
	if _, err := runMatrix(o, 2, bad, []Spec{baseline()}, nil); err == nil {
		t.Error("bad mix accepted")
	}
	zero := Options{}
	if _, err := runMatrix(zero, 2, twoMixes(), []Spec{baseline()}, nil); err == nil {
		t.Error("invalid options accepted")
	}
}

// TestRunMatrixSampling checks the observability wiring end to end:
// SampleEvery instruments every cell, interval CSV/JSONL pairs land
// under SampleDir, and probe summaries reach the stats collector.
func TestRunMatrixSampling(t *testing.T) {
	o := fastOptions()
	o.Stats = runner.NewCollector()
	o.SampleEvery = 5_000
	o.SampleDir = t.TempDir()
	mixes := twoMixes()
	specs := []Spec{baseline(), qbs("QBS", hierarchy.AllCaches, 0)}
	if _, err := runMatrix(o, 2, mixes, specs, nil); err != nil {
		t.Fatal(err)
	}
	for _, mix := range mixes {
		for _, spec := range specs {
			base := sanitizeName(mix.Name+"-"+spec.Name) + "-intervals"
			for _, ext := range []string{".csv", ".jsonl"} {
				fi, err := os.Stat(filepath.Join(o.SampleDir, base+ext))
				if err != nil {
					t.Fatalf("missing interval file: %v", err)
				}
				if fi.Size() == 0 {
					t.Errorf("%s%s is empty", base, ext)
				}
			}
		}
	}
	sums := o.Stats.Telemetry()
	if len(sums) != len(mixes)*len(specs) {
		t.Fatalf("collector holds %d summaries, want %d", len(sums), len(mixes)*len(specs))
	}
	for _, s := range sums {
		if !strings.Contains(s.Name, "/") {
			t.Errorf("summary name %q not mix/spec", s.Name)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	if got := sanitizeName("MIX_00/QBS (L1 only)"); got != "MIX_00-QBS--L1-only-" {
		t.Errorf("sanitizeName = %q", got)
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := Table{
		ID:      "t",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"x", "1"}, {"y", "2"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== t: demo ==", "a  b", "x  1", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "a,b\nx,1\ny,2\n" {
		t.Errorf("CSV = %q", buf.String())
	}
}

func TestTable2Static(t *testing.T) {
	tables, err := Table2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 12 {
		t.Fatalf("table2 shape wrong: %+v", tables)
	}
}

// TestFiguresSmoke runs every registered experiment at a tiny budget
// and verifies well-formed output. Numbers at this scale are
// meaningless; structure is what's checked.
func TestFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test runs every experiment")
	}
	o := Options{Instructions: 6_000, Warmup: 8_000, Seed: 1}
	for _, e := range Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			tables, err := e.Run(o)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range tables {
				if tab.ID == "" || len(tab.Columns) == 0 || len(tab.Rows) == 0 {
					t.Errorf("malformed table %+v", tab.ID)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Errorf("%s: row width %d != %d columns", tab.ID, len(row), len(tab.Columns))
					}
				}
				var buf bytes.Buffer
				if err := tab.Render(&buf); err != nil {
					t.Errorf("%s render: %v", tab.ID, err)
				}
			}
		})
	}
}

func TestScurvePointsSortedAndComplete(t *testing.T) {
	o := fastOptions()
	specs := []Spec{baseline(), eci(), nonInclusive()}
	m, err := runMatrix(o, 2, workload.TableIIMixes()[:4], specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := scurvePoints("x", "demo", m, m.normThroughput)
	if len(pts.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(pts.Rows))
	}
	if len(pts.Columns) != 3 { // workload + 2 non-baseline specs
		t.Fatalf("columns = %v", pts.Columns)
	}
	// Sorted ascending by the last column.
	var prev float64 = -1
	for _, row := range pts.Rows {
		var v float64
		if _, err := fmt.Sscanf(row[len(row)-1], "%f", &v); err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("points not sorted: %v", pts.Rows)
		}
		prev = v
	}
}

func TestSnoopFilterExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	tables, err := SnoopFilter(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 4 {
		t.Fatalf("snoopfilter shape wrong: %+v", tables)
	}
	// Row 0 is the inclusive baseline: zero snoops. Rows for
	// non-inclusive and exclusive must be nonzero.
	if tables[0].Rows[0][2] != "0.00" {
		t.Errorf("inclusive snoops = %s, want 0.00", tables[0].Rows[0][2])
	}
	if tables[0].Rows[1][2] != "0.00" {
		t.Errorf("QBS snoops = %s, want 0.00", tables[0].Rows[1][2])
	}
	if tables[0].Rows[2][2] == "0.00" {
		t.Error("non-inclusive reported zero snoops")
	}
}

func TestDirectoryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	tables, err := Directory(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 4 {
		t.Fatalf("directory shape wrong: %+v", tables)
	}
}

func TestPctFormatting(t *testing.T) {
	if got := pct(1.052); got != "+5.2%" {
		t.Errorf("pct = %q", got)
	}
	if got := pct(0.98); got != "-2.0%" {
		t.Errorf("pct = %q", got)
	}
	if got := f3(1.23456); got != "1.235" {
		t.Errorf("f3 = %q", got)
	}
}

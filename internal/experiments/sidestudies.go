package experiments

// Runners for the paper's in-text side studies beyond the numbered
// figures: footnote 3 (inclusive L2 + TLA at the L2), footnote 4 (the
// inclusion problem is replacement-policy independent), footnote 6
// (modified QBS), and the section VI replication of Zahran's
// single-core result.

import (
	"context"
	"fmt"

	"tlacache/internal/hierarchy"
	"tlacache/internal/metrics"
	"tlacache/internal/replacement"
	"tlacache/internal/runner"
	"tlacache/internal/sim"
	"tlacache/internal/workload"
)

// ModifiedQBS compares plain QBS against the footnote 6 variant that
// invalidates saved lines from the core caches.
func ModifiedQBS(o Options) ([]Table, error) {
	modified := Spec{Name: "QBS-modified", Apply: func(c *hierarchy.Config) {
		c.TLA = hierarchy.TLAQBS
		c.QBSProbe = hierarchy.AllCaches
		c.QBSEvictSaved = true
	}}
	specs := []Spec{baseline(), qbs("QBS", hierarchy.AllCaches, 0), modified, nonInclusive()}
	o.progressf("modifiedqbs: %d mixes x %d specs\n", len(o.mixes()), len(specs))
	m, err := runMatrix(o, 2, o.mixes(), specs, nil)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "modifiedqbs",
		Title:   "modified QBS (saved lines invalidated from core caches) vs plain QBS",
		Columns: []string{"policy", "throughput", "LLC miss reduction"},
		Notes: []string{"paper footnote 6: the two QBS variants perform alike, proving the benefit",
			"is avoided memory latency, not core-cache hit latency"},
	}
	for j := 1; j < len(specs); j++ {
		var miss []float64
		for i := range m.mixes {
			miss = append(miss, m.missReduction(i, j))
		}
		t.Rows = append(t.Rows, []string{
			m.specs[j].Name, pct(geoColumn(m, j)), fmt.Sprintf("%.1f%%", metrics.Mean(miss)),
		})
	}
	return []Table{t}, nil
}

// L2Inclusive evaluates footnote 3: an inclusive L2 suffers L2-level
// inclusion victims, and applying QBS at the L2 recovers the loss.
func L2Inclusive(o Options) ([]Table, error) {
	l2inc := Spec{Name: "L2-inclusive", Apply: func(c *hierarchy.Config) {
		c.L2Inclusive = true
	}}
	l2qbs := Spec{Name: "L2-inclusive+QBS", Apply: func(c *hierarchy.Config) {
		c.L2Inclusive = true
		c.L2QBS = true
	}}
	specs := []Spec{baseline(), l2inc, l2qbs}
	o.progressf("l2inclusive: %d mixes x %d specs\n", len(o.mixes()), len(specs))
	m, err := runMatrix(o, 2, o.mixes(), specs, nil)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "l2inclusive",
		Title:   "inclusive private L2s (footnote 3): cost, and the TLA-at-L2 remedy",
		Columns: []string{"configuration", "throughput", "L2 inclusion victims"},
		Notes: []string{"baseline is the paper's non-inclusive L2 (Core i7 style)",
			"paper: 'If the L2 were inclusive, TLA policies can be applied at the L2 cache'"},
	}
	for j := 1; j < len(specs); j++ {
		// L2 inclusion victims are summed from the windowed core stats.
		var l2v uint64
		for i := range m.mixes {
			l2v += l2VictimsOf(m.results[i][j])
		}
		t.Rows = append(t.Rows, []string{
			m.specs[j].Name, pct(geoColumn(m, j)), fmt.Sprintf("%d", l2v),
		})
	}
	return []Table{t}, nil
}

// l2VictimsOf sums windowed L2 inclusion victims over a mix result.
func l2VictimsOf(r sim.MixResult) uint64 {
	var n uint64
	for _, a := range r.Apps {
		n += a.L2InclusionVictims
	}
	return n
}

// LLCReplacement verifies footnote 4: the inclusion problem — and the
// QBS remedy — persist under LRU, NRU, SRRIP, and DIP LLC replacement.
func LLCReplacement(o Options) ([]Table, error) {
	t := Table{
		ID:      "llcreplacement",
		Title:   "inclusion victims are replacement-policy independent (footnote 4)",
		Columns: []string{"LLC policy", "QBS", "Non-Inclusive"},
		Notes: []string{"values are geomean throughput relative to the inclusive baseline",
			"with the SAME LLC replacement policy; the gap persists under every policy"},
	}
	for _, pol := range []replacement.Kind{replacement.NRU, replacement.LRU,
		replacement.SRRIP, replacement.DIP, replacement.DRRIP} {
		pol := pol
		specs := []Spec{baseline(), qbs("QBS", hierarchy.AllCaches, 0), nonInclusive()}
		o.progressf("llcreplacement: %s\n", pol)
		m, err := runMatrix(o, 2, o.mixes(), specs, func(c *sim.Config) {
			c.Hierarchy.LLCPolicy = pol
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{pol.String(), pct(geoColumn(m, 1)), pct(geoColumn(m, 2))})
	}
	return []Table{t}, nil
}

// SingleCore replicates the section VI observation (after Zahran):
// for single-threaded workloads run alone, temporal-locality-aware
// management yields little — the victims that matter come from
// cross-core contention.
func SingleCore(o Options) ([]Table, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	t := Table{
		ID:      "singlecore",
		Title:   "QBS on single-threaded workloads in isolation (sec VI, after Zahran)",
		Columns: []string{"bench", "category", "baseline IPC", "QBS IPC", "speedup"},
		Notes:   []string{"paper: global-replacement-style policies gain little single-core;", "the CMP mixes are where inclusion victims bite"},
	}
	// Each job runs one benchmark twice — baseline then QBS — so the
	// per-benchmark speedup stays a single unit of work.
	type pair struct{ base, qbs sim.AppResult }
	bs := workload.All()
	jobs := make([]runner.Job[pair], len(bs))
	for i, b := range bs {
		b := b
		jobs[i] = runner.Job[pair]{
			Name: "singlecore/" + b.Name,
			Work: 2 * (o.Warmup + o.Instructions),
			Run: func(context.Context) (pair, error) {
				var p pair
				var err error
				if p.base, err = sim.RunIsolation(o.simConfig(1), b); err != nil {
					return p, fmt.Errorf("%s baseline: %w", b.Name, err)
				}
				qcfg := o.simConfig(1)
				qcfg.Hierarchy.TLA = hierarchy.TLAQBS
				if p.qbs, err = sim.RunIsolation(qcfg, b); err != nil {
					return p, fmt.Errorf("%s under QBS: %w", b.Name, err)
				}
				return p, nil
			},
			Detail: func(p pair) string {
				return fmt.Sprintf("IPC %.3f -> %.3f", p.base.IPC, p.qbs.IPC)
			},
		}
	}
	results, err := runJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	var speedups []float64
	for i, b := range bs {
		p := results[i]
		sp := 0.0
		if p.base.IPC > 0 {
			sp = p.qbs.IPC / p.base.IPC
		}
		speedups = append(speedups, sp)
		t.Rows = append(t.Rows, []string{
			b.Name, b.Category.String(),
			fmt.Sprintf("%.3f", p.base.IPC), fmt.Sprintf("%.3f", p.qbs.IPC), pct(sp),
		})
	}
	if g, err := metrics.Geomean(speedups); err == nil {
		t.Rows = append(t.Rows, []string{"GEOMEAN", "", "", "", pct(g)})
	}
	return []Table{t}, nil
}

package experiments

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"tlacache/internal/runner"
)

// renderAll renders tables to one byte stream, text and CSV.
func renderAll(t *testing.T, tables []Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := range tables {
		if err := tables[i].Render(&buf); err != nil {
			t.Fatal(err)
		}
		if err := tables[i].WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestParallelDeterminism is the engine's core contract: regenerating a
// figure with 8 workers produces byte-identical tables and CSVs to the
// serial run. Figure 6 exercises the full matrix path (12 mixes x 3
// specs = 36 jobs).
func TestParallelDeterminism(t *testing.T) {
	serial := fastOptions()
	serial.Workers = 1
	parallel := fastOptions()
	parallel.Workers = 8

	ts, err := Figure6(serial)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := Figure6(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ts, tp) {
		t.Fatal("parallel Figure6 tables differ from serial")
	}
	if !bytes.Equal(renderAll(t, ts), renderAll(t, tp)) {
		t.Fatal("parallel Figure6 rendering is not byte-identical to serial")
	}
}

// TestParallelDeterminismIsolation covers the isolation-job path
// (Table1) the same way.
func TestParallelDeterminismIsolation(t *testing.T) {
	serial := fastOptions()
	serial.Workers = 1
	parallel := fastOptions()
	parallel.Workers = 8

	ts, err := Table1(serial)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := Table1(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderAll(t, ts), renderAll(t, tp)) {
		t.Fatal("parallel Table1 rendering is not byte-identical to serial")
	}
}

// TestMatrixCancellation: a cancelled context aborts a figure promptly
// with a context error instead of running the whole population.
func TestMatrixCancellation(t *testing.T) {
	o := fastOptions()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o.Context = ctx
	if _, err := Figure6(o); err == nil || !strings.Contains(err.Error(), "cancel") {
		t.Fatalf("cancelled figure returned %v", err)
	}
}

// TestMatrixCollectsStats: the manifest collector sees one stat per
// (mix, spec) cell with the configured instruction budget.
func TestMatrixCollectsStats(t *testing.T) {
	o := fastOptions()
	o.Stats = runner.NewCollector()
	mixes := twoMixes()
	specs := []Spec{baseline(), nonInclusive()}
	start := time.Now()
	if _, err := runMatrix(o, 2, mixes, specs, nil); err != nil {
		t.Fatal(err)
	}
	stats := o.Stats.Jobs()
	if len(stats) != len(mixes)*len(specs) {
		t.Fatalf("collected %d stats, want %d", len(stats), len(mixes)*len(specs))
	}
	wantWork := 2 * (o.Warmup + o.Instructions)
	for _, s := range stats {
		if s.Instructions != wantWork {
			t.Errorf("job %s instructions = %d, want %d", s.Name, s.Instructions, wantWork)
		}
		if s.Error != "" {
			t.Errorf("job %s failed: %s", s.Name, s.Error)
		}
		if !strings.Contains(s.Name, "/") {
			t.Errorf("job name %q lacks mix/spec form", s.Name)
		}
	}
	m := o.Stats.Manifest("test", 2, time.Since(start))
	if m.JobCount != 4 || m.FailedJobs != 0 || m.TotalInstructions != 4*wantWork {
		t.Errorf("manifest totals wrong: %+v", m)
	}
}

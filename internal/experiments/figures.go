package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	"tlacache/internal/hierarchy"
	"tlacache/internal/metrics"
	"tlacache/internal/runner"
	"tlacache/internal/sim"
	"tlacache/internal/workload"
)

// isolationJobs builds one runner job per benchmark, each running the
// benchmark alone on cfg's machine.
func isolationJobs(cfg sim.Config, label string, bs []workload.Benchmark) []runner.Job[sim.AppResult] {
	jobs := make([]runner.Job[sim.AppResult], len(bs))
	var a cellArena
	a.reserve(len(bs), len(bs)*(len(label)+8))
	for i := range bs {
		a.path(label, bs[i].Name)
	}
	names := a.strings()
	for i := range bs {
		b := &bs[i]
		jobs[i] = runner.Job[sim.AppResult]{
			Name: names[i],
			Work: cfg.Warmup + cfg.Instructions,
			Run: func(context.Context) (sim.AppResult, error) {
				res, err := sim.RunIsolation(cfg, *b)
				if err != nil {
					return res, fmt.Errorf("%s in isolation: %w", b.Name, err)
				}
				return res, nil
			},
			Detail: isolationDetail,
		}
	}
	return jobs
}

// isolationDetail renders one job's progress decoration. A named
// function rather than a per-job literal: it captures nothing, so the
// jobs share one static func value instead of allocating a closure
// each.
func isolationDetail(r sim.AppResult) string {
	return fmt.Sprintf("IPC=%.3f L1=%.2f L2=%.2f LLC=%.2f",
		r.IPC, r.L1MPKI, r.L2MPKI, r.LLCMPKI)
}

// geoColumn computes the geometric mean of spec j's normalised
// throughput over all mixes of m.
func geoColumn(m *matrix, j int) float64 {
	vals := make([]float64, len(m.mixes))
	for i := range m.mixes {
		vals[i] = m.normThroughput(i, j)
	}
	g, err := metrics.Geomean(vals)
	if err != nil {
		return 0
	}
	return g
}

// throughputTable renders mixes x specs normalised throughput with a
// geomean row, skipping spec 0 (the baseline: always 1.0).
func throughputTable(id, title string, m *matrix) *Table {
	t := &Table{ID: id, Title: title, Columns: []string{"mix", "categories"}}
	for _, s := range m.specs[1:] {
		t.Columns = append(t.Columns, s.Name)
	}
	for i, mix := range m.mixes {
		row := []string{mix.Name, mix.Categories()}
		for j := 1; j < len(m.specs); j++ {
			row = append(row, pct(m.normThroughput(i, j)))
		}
		t.Rows = append(t.Rows, row)
	}
	geo := []string{fmt.Sprintf("GEOMEAN(%d)", len(m.mixes)), ""}
	for j := 1; j < len(m.specs); j++ {
		geo = append(geo, pct(geoColumn(m, j)))
	}
	t.Rows = append(t.Rows, geo)
	return t
}

// quantiles summarises the per-mix distribution of a metric for each
// spec — the textual rendering of the paper's s-curves.
func quantileTable(id, title string, m *matrix, metric func(i, j int) float64, unit string) *Table {
	t := &Table{
		ID: id, Title: title,
		Columns: []string{"policy", "min", "p10", "p25", "median", "p75", "p90", "max"},
		Notes:   []string{fmt.Sprintf("distribution over %d workloads; values are %s", len(m.mixes), unit)},
	}
	for j := 1; j < len(m.specs); j++ {
		vals := make([]float64, len(m.mixes))
		for i := range m.mixes {
			vals[i] = metric(i, j)
		}
		row := []string{m.specs[j].Name}
		for _, q := range []float64{0, 0.10, 0.25, 0.50, 0.75, 0.90, 1} {
			v, err := metrics.Quantile(vals, q)
			if err != nil {
				return t
			}
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// scurvePoints dumps the raw per-workload values behind an s-curve so
// they can be plotted directly: one row per workload, sorted by the
// last spec's value (the paper sorts its s-curves by the non-inclusive
// speedup).
func scurvePoints(id, title string, m *matrix, metric func(i, j int) float64) *Table {
	t := &Table{ID: id, Title: title, Columns: []string{"workload"}}
	for _, s := range m.specs[1:] {
		t.Columns = append(t.Columns, s.Name)
	}
	order := make([]int, len(m.mixes))
	for i := range order {
		order[i] = i
	}
	last := len(m.specs) - 1
	sort.SliceStable(order, func(a, b int) bool {
		return metric(order[a], last) < metric(order[b], last)
	})
	for _, i := range order {
		row := []string{m.mixes[i].Name}
		for j := 1; j < len(m.specs); j++ {
			row = append(row, fmt.Sprintf("%.4f", metric(i, j)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table1 reproduces the MPKI characterisation of the 15 surrogates in
// isolation without prefetching.
func Table1(o Options) ([]Table, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	cfg := o.simConfig(1)
	cfg.Hierarchy.EnablePrefetch = false
	t := Table{
		ID:    "table1",
		Title: "MPKI of representative SPEC CPU2006 surrogates (isolation, no prefetch)",
		Columns: []string{"bench", "category", "L1 MPKI", "paper", "L2 MPKI", "paper",
			"LLC MPKI", "paper", "IPC"},
		Notes: []string{"paper columns are Table I of Jaleel et al. (MICRO 2010); surrogates match categories, not exact values"},
	}
	bs := workload.All()
	results, err := runJobs(o, isolationJobs(cfg, "table1", bs))
	if err != nil {
		return nil, err
	}
	var a cellArena
	a.reserve(7*len(bs), 7*len(bs)*12)
	for i, b := range bs {
		res := results[i]
		a.float(res.L1MPKI, 2)
		a.float(b.Paper.L1, 2)
		a.float(res.L2MPKI, 2)
		a.float(b.Paper.L2, 2)
		a.float(res.LLCMPKI, 2)
		a.float(b.Paper.LLC, 2)
		a.float(res.IPC, 2)
	}
	cells := a.strings()
	flat := make([]string, len(bs)*len(t.Columns))
	t.Rows = make([][]string, len(bs))
	for i, b := range bs {
		row := flat[i*len(t.Columns) : (i+1)*len(t.Columns) : (i+1)*len(t.Columns)]
		row[0], row[1] = b.Name, b.Category.String()
		copy(row[2:], cells[i*7:i*7+7])
		t.Rows[i] = row
	}
	return []Table{t}, nil
}

// Table2 lists the showcase mixes.
func Table2(Options) ([]Table, error) {
	t := Table{
		ID:      "table2",
		Title:   "workload mixes",
		Columns: []string{"name", "apps", "categories"},
	}
	for _, m := range workload.TableIIMixes() {
		t.Rows = append(t.Rows, []string{m.Name, m.Apps[0] + "," + m.Apps[1], m.Categories()})
	}
	return []Table{t}, nil
}

// Figure2 compares non-inclusive and exclusive hierarchies to the
// inclusive baseline across core-cache:LLC size ratios.
func Figure2(o Options) ([]Table, error) {
	sizes := []struct {
		llc   int64
		ratio string
	}{
		{1 << 20, "1:2"}, {2 << 20, "1:4"}, {4 << 20, "1:8"}, {8 << 20, "1:16"},
	}
	t := Table{
		ID:      "figure2",
		Title:   "non-inclusive and exclusive LLC throughput relative to inclusive, by cache ratio (2 cores)",
		Columns: []string{"L2:LLC ratio", "LLC size", "Non-Inclusive", "Exclusive"},
		Notes: []string{"paper: inclusive is ~8% (up to 33%) worse at 1:4 and ~3% (max 12%) at 1:8;",
			"the gap should shrink as the LLC grows"},
	}
	specs := []Spec{baseline(), nonInclusive(), exclusive()}
	for _, sz := range sizes {
		sz := sz
		o.progressf("figure2: LLC %dMB\n", sz.llc>>20)
		m, err := runMatrix(o, 2, o.mixes(), specs, func(c *sim.Config) {
			c.Hierarchy.LLCSize = sz.llc
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			sz.ratio, fmt.Sprintf("%dMB", sz.llc>>20),
			pct(geoColumn(m, 1)), pct(geoColumn(m, 2)),
		})
	}
	return []Table{t}, nil
}

// Figure5 evaluates Temporal Locality Hints sent from each cache level.
func Figure5(o Options) ([]Table, error) {
	specs := []Spec{
		baseline(),
		tlh("TLH-IL1", hierarchy.IL1),
		tlh("TLH-DL1", hierarchy.DL1),
		tlh("TLH-L1", hierarchy.L1Caches),
		tlh("TLH-L2", hierarchy.L2C),
		tlh("TLH-L1-L2", hierarchy.AllCaches),
		nonInclusive(),
	}
	o.progressf("figure5: %d mixes x %d specs\n", len(o.mixes()), len(specs))
	m, err := runMatrix(o, 2, o.mixes(), specs, nil)
	if err != nil {
		return nil, err
	}
	main := throughputTable("figure5", "throughput of Temporal Locality Hints relative to the inclusive baseline", m)
	// Gap bridged: how much of the inclusive->non-inclusive gap TLH-L1
	// and TLH-L2 close (paper: 85% and 45%).
	nonIncIdx := len(specs) - 1
	gapL1 := metrics.GapBridged(1, geoColumn(m, 3), geoColumn(m, nonIncIdx))
	gapL2 := metrics.GapBridged(1, geoColumn(m, 4), geoColumn(m, nonIncIdx))
	main.Notes = append(main.Notes,
		fmt.Sprintf("TLH-L1 bridges %.0f%% of the inclusive/non-inclusive gap (paper: 85%%), TLH-L2 %.0f%% (paper: 45%%)",
			100*gapL1, 100*gapL2),
		"TLH traffic is unconstrained (limit study), exactly as in the paper")
	sc := quantileTable("figure5-scurve", "s-curve summary: normalised throughput across workloads",
		m, m.normThroughput, "throughput relative to inclusive")
	pts := scurvePoints("figure5-scurve-points", "per-workload normalised throughput (sorted by non-inclusive)",
		m, m.normThroughput)
	return []Table{*main, *sc, *pts}, nil
}

// Figure6 evaluates Early Core Invalidation.
func Figure6(o Options) ([]Table, error) {
	specs := []Spec{baseline(), eci(), nonInclusive()}
	o.progressf("figure6: %d mixes\n", len(o.mixes()))
	m, err := runMatrix(o, 2, o.mixes(), specs, nil)
	if err != nil {
		return nil, err
	}
	main := throughputTable("figure6", "throughput of Early Core Invalidation relative to the inclusive baseline", m)
	gap := metrics.GapBridged(1, geoColumn(m, 1), geoColumn(m, 2))
	main.Notes = append(main.Notes,
		fmt.Sprintf("ECI bridges %.0f%% of the inclusive/non-inclusive gap (paper: 55%%)", 100*gap))
	// The paper reports <50% extra invalidation traffic on average
	// (back-invalidates plus the new early-invalidate messages).
	var baseBI, eciBI, eciMsgs float64
	for i := range m.mixes {
		baseBI += float64(m.results[i][0].Traffic.BackInvalidates)
		eciBI += float64(m.results[i][1].Traffic.BackInvalidates)
		eciMsgs += float64(m.results[i][1].Traffic.ECISent)
	}
	if baseBI > 0 {
		main.Notes = append(main.Notes,
			fmt.Sprintf("invalidation messages: baseline %.0f -> ECI %.0f back-invalidates + %.0f early invalidates per mix "+
				"(paper: back-invalidate traffic grows <50%%; here ECI's presence-clearing removes most later back-invalidates)",
				baseBI/float64(len(m.mixes)), eciBI/float64(len(m.mixes)), eciMsgs/float64(len(m.mixes))))
	}
	sc := quantileTable("figure6-scurve", "s-curve summary: ECI normalised throughput across workloads",
		m, m.normThroughput, "throughput relative to inclusive")
	pts := scurvePoints("figure6-scurve-points", "per-workload normalised throughput (sorted by non-inclusive)",
		m, m.normThroughput)
	return []Table{*main, *sc, *pts}, nil
}

// Figure7 evaluates Query Based Selection variants and query limits.
func Figure7(o Options) ([]Table, error) {
	specs := []Spec{
		baseline(),
		qbs("QBS-IL1", hierarchy.IL1, 0),
		qbs("QBS-DL1", hierarchy.DL1, 0),
		qbs("QBS-L1", hierarchy.L1Caches, 0),
		qbs("QBS-L2", hierarchy.L2C, 0),
		qbs("QBS-L1-L2", hierarchy.AllCaches, 0),
		nonInclusive(),
	}
	o.progressf("figure7: %d mixes x %d specs\n", len(o.mixes()), len(specs))
	m, err := runMatrix(o, 2, o.mixes(), specs, nil)
	if err != nil {
		return nil, err
	}
	main := throughputTable("figure7", "throughput of Query Based Selection relative to the inclusive baseline", m)
	main.Notes = append(main.Notes,
		"paper: QBS-IL1 +2.7%, QBS-DL1 +1.6%, QBS-L1 +4.5%, QBS-L2 +1.2%, QBS-L1-L2 +6.5% vs non-inclusive +6.1%")

	// Query-limit sensitivity (paper: limits 1/2/4/8 give 6.2/6.5/6.6/6.6%).
	limits := []Spec{baseline()}
	for _, q := range []int{1, 2, 4, 8} {
		limits = append(limits, qbs(fmt.Sprintf("QBS(max %d)", q), hierarchy.AllCaches, q))
	}
	o.progressf("figure7: query-limit sweep\n")
	lm, err := runMatrix(o, 2, o.mixes(), limits, nil)
	if err != nil {
		return nil, err
	}
	lt := Table{
		ID:      "figure7-limits",
		Title:   "QBS query-limit sensitivity (geomean normalised throughput)",
		Columns: []string{"max queries", "throughput"},
		Notes:   []string{"paper: 1 -> +6.2%, 2 -> +6.5%, 4 -> +6.6%, 8 -> +6.6%"},
	}
	for j := 1; j < len(limits); j++ {
		lt.Rows = append(lt.Rows, []string{limits[j].Name, pct(geoColumn(lm, j))})
	}
	sc := quantileTable("figure7-scurve", "s-curve summary: QBS normalised throughput across workloads",
		m, m.normThroughput, "throughput relative to inclusive")
	pts := scurvePoints("figure7-scurve-points", "per-workload normalised throughput (sorted by non-inclusive)",
		m, m.normThroughput)
	return []Table{*main, lt, *sc, *pts}, nil
}

// Figure8 reports LLC miss reduction for every policy.
func Figure8(o Options) ([]Table, error) {
	specs := []Spec{
		baseline(),
		tlh("TLH-L1", hierarchy.L1Caches),
		tlh("TLH-L2", hierarchy.L2C),
		eci(),
		qbs("QBS", hierarchy.AllCaches, 0),
		nonInclusive(),
		exclusive(),
	}
	o.progressf("figure8: %d mixes x %d specs\n", len(o.mixes()), len(specs))
	m, err := runMatrix(o, 2, o.mixes(), specs, nil)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "figure8",
		Title:   "reduction in demand LLC misses relative to the inclusive baseline (%)",
		Columns: []string{"mix", "categories"},
		Notes: []string{"paper averages: TLH-L1 8.2%, TLH-L2 4.8%, ECI 6.5%, QBS 9.6%, non-inclusive 9.3%, exclusive 18.2%",
			"only exclusive caches exploit extra capacity; the rest remove inclusion victims"},
	}
	for _, s := range specs[1:] {
		t.Columns = append(t.Columns, s.Name)
	}
	for i, mix := range m.mixes {
		row := []string{mix.Name, mix.Categories()}
		for j := 1; j < len(specs); j++ {
			row = append(row, fmt.Sprintf("%.1f", m.missReduction(i, j)))
		}
		t.Rows = append(t.Rows, row)
	}
	avg := []string{fmt.Sprintf("MEAN(%d)", len(m.mixes)), ""}
	for j := 1; j < len(specs); j++ {
		vals := make([]float64, len(m.mixes))
		for i := range m.mixes {
			vals[i] = m.missReduction(i, j)
		}
		avg = append(avg, fmt.Sprintf("%.1f", metrics.Mean(vals)))
	}
	t.Rows = append(t.Rows, avg)
	sc := quantileTable("figure8-scurve", "s-curve summary: LLC miss reduction across workloads (%)",
		m, m.missReduction, "percent miss reduction vs inclusive")
	pts := scurvePoints("figure8-scurve-points", "per-workload LLC miss reduction (sorted by exclusive)",
		m, m.missReduction)
	return []Table{t, *sc, *pts}, nil
}

// Figure9 summarises the TLA policies on both inclusive and
// non-inclusive baselines. On the latter the gains must nearly vanish —
// the paper's proof that TLA benefits come from avoiding inclusion
// victims.
func Figure9(o Options) ([]Table, error) {
	specsA := []Spec{
		baseline(),
		tlh("TLH-L1", hierarchy.L1Caches),
		eci(),
		qbs("QBS", hierarchy.AllCaches, 0),
		nonInclusive(),
		exclusive(),
	}
	o.progressf("figure9a: inclusive baseline\n")
	ma, err := runMatrix(o, 2, o.mixes(), specsA, nil)
	if err != nil {
		return nil, err
	}
	ta := throughputTable("figure9a", "TLA policies on the inclusive baseline (normalised throughput)", ma)
	ta.Notes = append(ta.Notes, "paper geomeans: TLH-L1 +5.2%, ECI ~+4.5%, QBS +6.5%, non-inclusive +6.1%, exclusive ~+8.7%")

	// 9b: the same TLA mechanisms layered on a non-inclusive LLC,
	// normalised to plain non-inclusion.
	onNonInc := func(s Spec) Spec {
		inner := s.Apply
		return Spec{Name: s.Name, Apply: func(c *hierarchy.Config) {
			inner(c)
			c.Inclusion = hierarchy.NonInclusive
		}}
	}
	specsB := []Spec{
		nonInclusive(),
		onNonInc(tlh("TLH-L1", hierarchy.L1Caches)),
		onNonInc(eci()),
		onNonInc(qbs("QBS", hierarchy.AllCaches, 0)),
	}
	o.progressf("figure9b: non-inclusive baseline\n")
	mb, err := runMatrix(o, 2, o.mixes(), specsB, nil)
	if err != nil {
		return nil, err
	}
	tb := throughputTable("figure9b", "TLA policies on a NON-inclusive baseline (normalised to non-inclusive)", mb)
	tb.Notes = append(tb.Notes, "paper: only +0.4% to +1.2% — TLA's benefit is avoiding inclusion victims, not extra smarts")
	return []Table{*ta, *tb}, nil
}

// Figure10 sweeps the LLC size (cache ratio) for the main policies.
func Figure10(o Options) ([]Table, error) {
	specs := []Spec{
		baseline(),
		tlh("TLH-L1", hierarchy.L1Caches),
		eci(),
		qbs("QBS", hierarchy.AllCaches, 0),
		nonInclusive(),
		exclusive(),
	}
	t := Table{
		ID:      "figure10",
		Title:   "scalability to cache ratios: geomean normalised throughput (2 cores)",
		Columns: []string{"L2:LLC ratio", "LLC"},
		Notes: []string{"paper: QBS matches non-inclusion at every ratio; TLH-L1 falls short at 1:2",
			"(hot lines serviced by the L2 still suffer inclusion victims there)"},
	}
	for _, s := range specs[1:] {
		t.Columns = append(t.Columns, s.Name)
	}
	for _, sz := range []struct {
		llc   int64
		ratio string
	}{{1 << 20, "1:2"}, {2 << 20, "1:4"}, {4 << 20, "1:8"}, {8 << 20, "1:16"}} {
		sz := sz
		o.progressf("figure10: LLC %dMB\n", sz.llc>>20)
		m, err := runMatrix(o, 2, o.mixes(), specs, func(c *sim.Config) {
			c.Hierarchy.LLCSize = sz.llc
		})
		if err != nil {
			return nil, err
		}
		row := []string{sz.ratio, fmt.Sprintf("%dMB", sz.llc>>20)}
		for j := 1; j < len(specs); j++ {
			row = append(row, pct(geoColumn(m, j)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// Figure11 scales the core count, comparing QBS to non-inclusion. The
// paper uses 100 random 4-core and 8-core mixes; the default options
// use a smaller deterministic sample, and AllPairs selects the full
// population for 2 cores plus larger samples for 4 and 8.
func Figure11(o Options) ([]Table, error) {
	t := Table{
		ID:      "figure11",
		Title:   "scalability to core counts: geomean normalised throughput (1MB LLC per core)",
		Columns: []string{"cores", "workloads", "QBS", "Non-Inclusive"},
		Notes:   []string{"paper: QBS tracks or beats non-inclusion at 2, 4, and 8 cores, improving with core count"},
	}
	specs := []Spec{baseline(), qbs("QBS", hierarchy.AllCaches, 0), nonInclusive()}
	sample := 8
	if o.AllPairs {
		sample = 100
	}
	for _, cores := range []int{2, 4, 8} {
		var mixes []workload.Mix
		if cores == 2 {
			mixes = o.mixes()
		} else {
			var err error
			mixes, err = workload.RandomMixes(sample, cores, o.Seed+uint64(cores))
			if err != nil {
				return nil, err
			}
		}
		o.progressf("figure11: %d cores, %d mixes\n", cores, len(mixes))
		// The LLC grows with the core count (1MB per core), so the
		// warmup needed to fill it and reach replacement steady state
		// grows proportionally.
		m, err := runMatrix(o, cores, mixes, specs, func(c *sim.Config) {
			c.Warmup = o.Warmup * uint64(cores) / 2
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", cores), fmt.Sprintf("%d", len(mixes)),
			pct(geoColumn(m, 1)), pct(geoColumn(m, 2)),
		})
	}
	return []Table{t}, nil
}

// TLHFraction reproduces the hint-filtering sensitivity study of
// section V-A: what fraction of the inclusive/non-inclusive gap is
// bridged when only a sample of L1 hits send hints.
func TLHFraction(o Options) ([]Table, error) {
	frac := func(perMille int) Spec {
		return Spec{
			Name: fmt.Sprintf("TLH-L1 %g%%", float64(perMille)/10),
			Apply: func(c *hierarchy.Config) {
				c.TLA = hierarchy.TLATLH
				c.TLHSources = hierarchy.L1Caches
				c.TLHPerMille = perMille
			},
		}
	}
	specs := []Spec{baseline(), frac(10), frac(20), frac(100), frac(200), frac(1000), nonInclusive()}
	o.progressf("tlhfraction: %d mixes x %d specs\n", len(o.mixes()), len(specs))
	m, err := runMatrix(o, 2, o.mixes(), specs, nil)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "tlhfraction",
		Title:   "TLH hint-fraction sensitivity: gap to non-inclusive bridged",
		Columns: []string{"hint fraction", "throughput", "gap bridged"},
		Notes:   []string{"paper: 1%/2%/10%/20% of L1 hits bridge 50%/60%/75%/80% of the gap"},
	}
	nonIncIdx := len(specs) - 1
	target := geoColumn(m, nonIncIdx)
	for j := 1; j < nonIncIdx; j++ {
		g := geoColumn(m, j)
		t.Rows = append(t.Rows, []string{
			m.specs[j].Name, pct(g),
			fmt.Sprintf("%.0f%%", 100*metrics.GapBridged(1, g, target)),
		})
	}
	t.Rows = append(t.Rows, []string{"Non-Inclusive", pct(target), "100%"})
	return []Table{t}, nil
}

// VictimCache reproduces the section VI comparison: a 32-entry victim
// cache recovers far less than ECI or QBS.
func VictimCache(o Options) ([]Table, error) {
	vc := Spec{Name: "VictimCache-32", Apply: func(c *hierarchy.Config) {
		c.VictimCacheEntries = 32
	}}
	specs := []Spec{baseline(), vc, eci(), qbs("QBS", hierarchy.AllCaches, 0)}
	o.progressf("victimcache: %d mixes x %d specs\n", len(o.mixes()), len(specs))
	m, err := runMatrix(o, 2, o.mixes(), specs, nil)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "victimcache",
		Title:   "32-entry LLC victim cache vs ECI and QBS (geomean normalised throughput)",
		Columns: []string{"policy", "throughput"},
		Notes:   []string{"paper: victim cache +0.8%, ECI +4.5%, QBS +6.5%"},
	}
	for j := 1; j < len(specs); j++ {
		t.Rows = append(t.Rows, []string{m.specs[j].Name, pct(geoColumn(m, j))})
	}
	return []Table{t}, nil
}

// Fairness verifies footnote 5: QBS's gains show up in weighted
// speedup and hmean fairness as well as raw throughput.
func Fairness(o Options) ([]Table, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	cfg := o.simConfig(2)
	// Isolation IPCs for the unique apps of the Table II mixes, run in
	// parallel alongside nothing else (first-appearance order keeps the
	// job list deterministic).
	var unique []workload.Benchmark
	iso := map[string]float64{}
	for _, mix := range workload.TableIIMixes() {
		for _, app := range mix.Apps {
			if _, ok := iso[app]; ok {
				continue
			}
			b, err := workload.ByName(app)
			if err != nil {
				return nil, err
			}
			iso[app] = 0
			unique = append(unique, b)
		}
	}
	isoResults, err := runJobs(o, isolationJobs(cfg, "fairness-iso", unique))
	if err != nil {
		return nil, err
	}
	for i, b := range unique {
		iso[b.Name] = isoResults[i].IPC
	}
	t := Table{
		ID:      "fairness",
		Title:   "QBS on the weighted-speedup and hmean-fairness metrics (relative to inclusive)",
		Columns: []string{"mix", "throughput", "weighted speedup", "hmean fairness"},
		Notes:   []string{"paper footnote 5: QBS introduces no fairness issues; all three metrics agree"},
	}
	specs := []Spec{baseline(), qbs("QBS", hierarchy.AllCaches, 0)}
	m, err := runMatrix(o, 2, workload.TableIIMixes(), specs, nil)
	if err != nil {
		return nil, err
	}
	ratio := func(i, j int, f func(sim.MixResult) (float64, error)) (float64, error) {
		b, err := f(m.results[i][0])
		if err != nil {
			return 0, err
		}
		v, err := f(m.results[i][j])
		if err != nil {
			return 0, err
		}
		if math.Abs(b) < 1e-12 {
			return 0, fmt.Errorf("experiments: zero baseline metric")
		}
		return v / b, nil
	}
	for i, mix := range m.mixes {
		alone := make([]float64, len(mix.Apps))
		for k, app := range mix.Apps {
			alone[k] = iso[app]
		}
		ipcs := func(r sim.MixResult) []float64 {
			out := make([]float64, len(r.Apps))
			for k, a := range r.Apps {
				out[k] = a.IPC
			}
			return out
		}
		ws, err := ratio(i, 1, func(r sim.MixResult) (float64, error) {
			return metrics.WeightedSpeedup(ipcs(r), alone)
		})
		if err != nil {
			return nil, err
		}
		hf, err := ratio(i, 1, func(r sim.MixResult) (float64, error) {
			return metrics.HmeanFairness(ipcs(r), alone)
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{mix.Name, pct(m.normThroughput(i, 1)), pct(ws), pct(hf)})
	}
	return []Table{t}, nil
}

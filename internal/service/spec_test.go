package service

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"tlacache/internal/telemetry"
)

func u64(v uint64) *uint64 { return &v }

func TestNormalizeDefaults(t *testing.T) {
	n, err := JobSpec{Apps: []string{"sje", "lib"}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Policy != "baseline" || n.Seed != 1 ||
		n.Instructions != DefaultInstructions || n.Warmup == nil || *n.Warmup != DefaultWarmup {
		t.Errorf("defaults not applied: %+v", n)
	}
	// Normalisation is idempotent.
	again, err := n.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if _, k1, _ := SpecKey(n); true {
		if _, k2, _ := SpecKey(again); k1 != k2 {
			t.Errorf("normalize not idempotent: %s vs %s", k1, k2)
		}
	}
}

// A mix name and its explicit app list are the same request and must
// share one cache key.
func TestMixAndAppsShareKey(t *testing.T) {
	_, byMix, err := SpecKey(JobSpec{Mix: "MIX_00"})
	if err != nil {
		t.Fatal(err)
	}
	norm, err := JobSpec{Mix: "MIX_00"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	_, byApps, err := SpecKey(JobSpec{Apps: norm.Apps})
	if err != nil {
		t.Fatal(err)
	}
	if byMix != byApps {
		t.Errorf("MIX_00 and its app list hash differently: %s vs %s", byMix, byApps)
	}
}

func TestSpecValidation(t *testing.T) {
	for name, spec := range map[string]JobSpec{
		"empty":         {},
		"both":          {Mix: "MIX_00", Apps: []string{"sje"}},
		"unknown-app":   {Apps: []string{"nope"}},
		"unknown-mix":   {Mix: "MIX_99"},
		"bad-policy":    {Apps: []string{"sje", "lib"}, Policy: "wat"},
		"bad-llc":       {Apps: []string{"sje", "lib"}, LLC: "huge"},
		"zero-measured": {Apps: []string{"sje", "lib"}, Instructions: 0, Warmup: u64(0)},
	} {
		t.Run(name, func(t *testing.T) {
			if name == "zero-measured" {
				// Zero instructions normalises to the default, so this
				// particular spec is actually fine — it documents that
				// explicit warmup 0 is legal.
				if _, _, err := SpecKey(spec); err != nil {
					t.Fatalf("explicit zero warmup should be legal: %v", err)
				}
				return
			}
			if _, _, err := SpecKey(spec); err == nil {
				t.Fatalf("spec %+v unexpectedly valid", spec)
			}
		})
	}
}

// Execute must be a pure function of the spec: two runs produce
// byte-identical deterministic sections (spec, result, telemetry).
func TestExecuteDeterministic(t *testing.T) {
	spec := JobSpec{Apps: []string{"sje", "lib"}, Policy: "qbs", Seed: 3,
		Instructions: 60_000, Warmup: u64(20_000)}
	m1, err := Execute(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Execute(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	det := func(m Manifest) string {
		m.Env = m1.Env // normalise the annotation fields
		m.WallSeconds = 0
		b, err := EncodeManifest(m)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if d1, d2 := det(m1), det(m2); d1 != d2 {
		t.Errorf("Execute not deterministic:\n%s\nvs\n%s", d1, d2)
	}
	if m1.Key == "" || !strings.HasPrefix(m1.Key, KeyVersion+":") {
		t.Errorf("manifest key malformed: %q", m1.Key)
	}
	if m1.Result.Throughput <= 0 {
		t.Errorf("throughput %f not positive", m1.Result.Throughput)
	}
}

// The interval sink streams samples live and samples stay out of the
// manifest, so Interval must not perturb the key.
func TestExecuteIntervalSink(t *testing.T) {
	spec := JobSpec{Apps: []string{"sje", "lib"}, Seed: 2,
		Instructions: 40_000, Warmup: u64(0), Interval: 10_000}
	var got []telemetry.Sample
	m, err := Execute(spec, func(s telemetry.Sample) { got = append(got, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("sink received no samples")
	}
	plain := spec
	plain.Interval = 0
	_, kPlain, err := SpecKey(plain)
	if err != nil {
		t.Fatal(err)
	}
	if m.Key != kPlain {
		t.Errorf("interval perturbed the key: %s vs %s", m.Key, kPlain)
	}
	data, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "\"delta_instructions\"") {
		t.Error("interval samples leaked into the manifest")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	spec := JobSpec{Apps: []string{"sje", "lib"}, Instructions: 30_000, Warmup: u64(0)}
	m, err := Execute(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Error("manifest misses trailing newline")
	}
	back, err := DecodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Key != m.Key || back.Result.Throughput != m.Result.Throughput {
		t.Errorf("round trip lost data: %+v", back)
	}
	if !json.Valid(data) {
		t.Error("manifest is not valid JSON")
	}
}

func TestWork(t *testing.T) {
	s := JobSpec{Apps: []string{"a", "b"}, Instructions: 10, Warmup: u64(5)}
	if got := s.Work(); got != 30 {
		t.Errorf("Work = %d, want 30", got)
	}
}

func TestMixes(t *testing.T) {
	ms := Mixes()
	if len(ms) != 12 || ms[0] != "MIX_00" {
		t.Errorf("Mixes() = %v", ms)
	}
}

// Normalize must be idempotent: Execute re-normalizes defensively, so
// a normalized mix spec (which keeps both Mix and its resolved Apps)
// must re-validate cleanly. Regression: mix-name submissions to the
// daemon used to fail at execute time with "sets both mix and apps".
func TestNormalizeIdempotent(t *testing.T) {
	norm, err := JobSpec{Mix: "MIX_00"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	again, err := norm.Normalize()
	if err != nil {
		t.Fatalf("re-normalizing a normalized spec: %v", err)
	}
	if !reflect.DeepEqual(norm, again) {
		t.Errorf("normalization not idempotent:\n first %+v\nsecond %+v", norm, again)
	}
}

package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"tlacache/internal/sim"
)

// KeyVersion is the canonical-form schema version. It prefixes both
// the hashed byte string and the returned key, so any change to the
// canonical field set or encoding must bump it — which invalidates
// every existing cache entry loudly (keys stop matching) instead of
// silently serving results computed under a different schema.
const KeyVersion = "v1"

// Key returns the content-address of one simulation request: the
// KeyVersion prefix plus the hex SHA-256 of the canonical form of
// (machine config, workload, policy, seed). Two requests share a key
// iff the simulator's determinism contract guarantees them identical
// results, so a cached manifest may be served for either.
//
// cfg must be the fully resolved sim.Config (policy already applied to
// the hierarchy); apps is the resolved per-core benchmark list. The
// observer fields of sim.Config (Probe, Sampler, DecisionTracer,
// InvariantEvery, AuditEvery) are deliberately excluded: they never
// change simulation results, only what is recorded about them.
// TestKeyCoversConfig pins the field sets so a new config field cannot
// creep in unhashed.
func Key(cfg sim.Config, apps []string, policy string, seed uint64) string {
	sum := sha256.Sum256([]byte(canonical(cfg, apps, policy, seed)))
	return KeyVersion + ":" + hex.EncodeToString(sum[:])
}

// ValidKey reports whether key has the exact canonical form Key
// produces: the KeyVersion prefix, a colon, and 64 lowercase hex
// digits. The HTTP layer gates every client-supplied key on this
// before any cache access — Go's ServeMux unescapes path wildcards,
// so without the gate a segment like "..%2F..%2Fetc%2Fpasswd" would
// reach the disk tier as a relative path.
func ValidKey(key string) bool {
	const hexLen = sha256.Size * 2
	prefix := KeyVersion + ":"
	if len(key) != len(prefix)+hexLen || key[:len(prefix)] != prefix {
		return false
	}
	for i := len(prefix); i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// canonical renders the request in the fixed field order the key
// hashes. Every value is written explicitly — no struct marshalling —
// so field reordering in the config types cannot reorder the hash
// input, and enum values are written numerically so renaming a
// String() form cannot shift keys. tlavet's keycover check proves the
// field closure of sim.Config is either written here or explicitly
// exempted at its declaration; detflow proves no nondeterministic
// value or ordering reaches the hash input.
//
//tlavet:detsink
//tlavet:keycover sim.Config
func canonical(cfg sim.Config, apps []string, policy string, seed uint64) string {
	var b strings.Builder
	h := cfg.Hierarchy
	fmt.Fprintf(&b, "%s|apps=%s|policy=%s|seed=%d", KeyVersion, strings.Join(apps, ","), policy, seed)
	fmt.Fprintf(&b, "|instr=%d|warmup=%d", cfg.Instructions, cfg.Warmup)
	fmt.Fprintf(&b, "|cores=%d|line=%d", h.Cores, h.LineSize)
	fmt.Fprintf(&b, "|l1i=%d/%d|l1d=%d/%d|l2=%d/%d|llc=%d/%d",
		h.L1ISize, h.L1IAssoc, h.L1DSize, h.L1DAssoc, h.L2Size, h.L2Assoc, h.LLCSize, h.LLCAssoc)
	fmt.Fprintf(&b, "|pol=%d,%d,%d|incl=%d|tla=%d",
		h.L1Policy, h.L2Policy, h.LLCPolicy, h.Inclusion, h.TLA)
	fmt.Fprintf(&b, "|tlh=%d/%d|qbs=%d/%d/%t",
		h.TLHSources, h.TLHPerMille, h.QBSProbe, h.QBSMaxQueries, h.QBSEvictSaved)
	fmt.Fprintf(&b, "|l2incl=%t/%t", h.L2Inclusive, h.L2QBS)
	fmt.Fprintf(&b, "|pf=%t/%d/%d/%d/%d", h.EnablePrefetch,
		h.PrefetchConfig.Detectors, h.PrefetchConfig.Degree, h.PrefetchConfig.Window, h.PrefetchConfig.LineSize)
	fmt.Fprintf(&b, "|vc=%d|bcast=%t|banks=%d/%d",
		h.VictimCacheEntries, h.BroadcastInvalidate, h.LLCBanks, h.BankOccupancy)
	fmt.Fprintf(&b, "|lat=%d,%d,%d,%d",
		h.Latency.L1, h.Latency.L2, h.Latency.LLC, h.Latency.Memory)
	fmt.Fprintf(&b, "|cpu=%d/%d/%d", cfg.CPU.Width, cfg.CPU.ROB, cfg.CPU.MSHRs)
	return b.String()
}

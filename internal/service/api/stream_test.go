package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"tlacache/internal/service"
)

// testKey mints a syntactically valid content address for tests that
// register jobs directly in the server's registry.
func testKey(t *testing.T, seed uint64) string {
	t.Helper()
	_, key, err := service.SpecKey(smallSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// The drop contract on the publish side: a subscriber that stops
// draining receives exactly its buffer's worth of events, every
// further publish is dropped rather than blocking the simulation
// goroutine, and the delivered events carry the job's request ID.
func TestPublishDropsWhenSubscriberStalls(t *testing.T) {
	j := newJob("v1:k", "req-stall", service.JobSpec{})
	ch := j.subscribe()
	bufCap := cap(ch)

	// Publish far past the buffer. publish is non-blocking by
	// construction; if that regressed this loop would hang and the
	// test would time out, which is the failure we want visible.
	const published = 500
	start := time.Now()
	for i := 0; i < published; i++ {
		j.publish(Event{Type: "sample", Key: j.Key})
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("publishing %d events took %v; publish is blocking on a stalled subscriber", published, elapsed)
	}

	if got := len(ch); got != bufCap {
		t.Fatalf("stalled subscriber holds %d events, want exactly its buffer %d", got, bufCap)
	}
	// Completion must also go through (terminal publish dropped, done
	// closed regardless).
	j.complete([]byte("{}"))
	select {
	case <-j.done:
	default:
		t.Fatal("complete did not close done despite a stalled subscriber")
	}
	for i := 0; i < bufCap; i++ {
		ev := <-ch
		if ev.RequestID != "req-stall" {
			t.Fatalf("delivered event %d missing request ID: %+v", i, ev)
		}
	}
}

// After drops, a subscriber that reconnects must still see a
// well-formed finite stream: the current state first, then a terminal
// event — in both NDJSON and SSE framings. The dropped samples are
// gone (that is the contract), but the stream never wedges or ends
// without a terminal frame.
func TestEventsStreamFiniteAfterDrops(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	key := testKey(t, 91)
	j := newJob(key, "req-finite", service.JobSpec{})
	s.mu.Lock()
	s.jobs[key] = j
	s.mu.Unlock()
	t.Cleanup(func() { s.removeJob(j) })

	// Overflow every future subscriber's view of history, then finish.
	for i := 0; i < 300; i++ {
		j.publish(Event{Type: "sample", Key: key})
	}
	j.complete([]byte("{}"))

	// NDJSON framing: every line is a valid Event, the last is
	// terminal, and each carries the originating request ID.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + key + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	if first := events[0]; first.Type != "state" || first.State != StateDone {
		t.Errorf("stream opens with %+v, want current state", first)
	}
	if last := events[len(events)-1]; last.Type != "done" {
		t.Errorf("stream ends with %+v, want terminal done", last)
	}
	for i, ev := range events {
		if ev.RequestID != "req-finite" {
			t.Errorf("event %d missing request ID: %+v", i, ev)
		}
	}

	// SSE framing of the same finished job.
	req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+key+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	sr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var sse bytes.Buffer
	if _, err := sse.ReadFrom(sr.Body); err != nil {
		t.Fatal(err)
	}
	body := sse.String()
	if !strings.Contains(body, "event: done\ndata: ") {
		t.Errorf("SSE stream missing terminal frame: %q", body)
	}
	if !strings.Contains(body, `"request_id":"req-finite"`) {
		t.Errorf("SSE frames missing request ID: %q", body)
	}
}

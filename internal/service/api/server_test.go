package api

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"tlacache/internal/service"
	"tlacache/internal/service/cache"
	"tlacache/internal/service/queue"
)

func u64(v uint64) *uint64 { return &v }

// smallSpec is a fast-to-simulate job used throughout; seed varies
// the cache key so tests do not collide.
func smallSpec(seed uint64) service.JobSpec {
	return service.JobSpec{
		Apps: []string{"sje", "lib"}, Seed: seed,
		Instructions: 30_000, Warmup: u64(0),
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, spec service.JobSpec, wait bool) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// Submitting the same spec twice must simulate once: the first
// response is a miss, the second a byte-identical cache hit.
func TestSubmitMissThenHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	r1 := submit(t, ts, smallSpec(1), true)
	b1 := readBody(t, r1)
	if r1.StatusCode != http.StatusOK || r1.Header.Get(ResultHeader) != "miss" {
		t.Fatalf("first submit: status %d, %s=%q", r1.StatusCode, ResultHeader, r1.Header.Get(ResultHeader))
	}
	r2 := submit(t, ts, smallSpec(1), true)
	b2 := readBody(t, r2)
	if r2.StatusCode != http.StatusOK || r2.Header.Get(ResultHeader) != "hit" {
		t.Fatalf("second submit: status %d, %s=%q", r2.StatusCode, ResultHeader, r2.Header.Get(ResultHeader))
	}
	if !bytes.Equal(b1, b2) {
		t.Error("cache hit is not byte-identical to the original manifest")
	}
	m, err := service.DecodeManifest(b1)
	if err != nil {
		t.Fatalf("manifest does not decode: %v", err)
	}
	if m.Result.Throughput <= 0 {
		t.Errorf("throughput %f", m.Result.Throughput)
	}
}

// A manifest must survive a daemon restart via the disk tier.
func TestHitAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := cache.New(cache.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Config{Cache: c1})
	b1 := readBody(t, submit(t, ts1, smallSpec(2), true))

	c2, err := cache.New(cache.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{Cache: c2})
	r2 := submit(t, ts2, smallSpec(2), true)
	b2 := readBody(t, r2)
	if r2.Header.Get(ResultHeader) != "hit" {
		t.Fatalf("restarted daemon: %s=%q", ResultHeader, r2.Header.Get(ResultHeader))
	}
	if !bytes.Equal(b1, b2) {
		t.Error("restart hit differs from original manifest")
	}
}

// N concurrent identical submissions must run exactly one simulation;
// every caller gets the identical manifest.
func TestConcurrentSubmitCoalesces(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const n = 8
	spec := service.JobSpec{
		Apps: []string{"sje", "lib"}, Seed: 11,
		Instructions: 200_000, Warmup: u64(0),
	}
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	verdicts := make([]string, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(spec)
			resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			bodies[i], _ = io.ReadAll(resp.Body)
			verdicts[i] = resp.Header.Get(ResultHeader)
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	misses := 0
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("caller %d: status %d body %s", i, codes[i], bodies[i])
		}
		if verdicts[i] == "miss" {
			misses++
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("caller %d body differs", i)
		}
	}
	if misses > 1 {
		t.Errorf("%d callers started simulations, want at most 1", misses)
	}
	// The proof of coalescing: one admission, one cache fill.
	if st := s.adm.Stats(); st.Admitted != 1 {
		t.Errorf("admitted %d simulations, want 1", st.Admitted)
	}
	if st := s.cache.Stats(); st.Puts != 1 {
		t.Errorf("cache filled %d times, want 1", st.Puts)
	}
}

// An empty token bucket must answer 429 with a positive integer
// Retry-After, and a refilled bucket must admit again.
func TestRateLimit429(t *testing.T) {
	clk := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var clkMu sync.Mutex
	now := func() time.Time {
		clkMu.Lock()
		defer clkMu.Unlock()
		return clk
	}
	bucket := queue.NewTokenBucket(0.25, 1, now) // one token per 4s
	_, ts := newTestServer(t, Config{Admission: queue.NewAdmission(0, bucket)})

	r1 := submit(t, ts, smallSpec(21), true)
	readBody(t, r1)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first submit: %d", r1.StatusCode)
	}
	r2 := submit(t, ts, smallSpec(22), false)
	readBody(t, r2)
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: %d, want 429", r2.StatusCode)
	}
	secs, err := strconv.Atoi(r2.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Errorf("Retry-After %q, want positive integer seconds", r2.Header.Get("Retry-After"))
	}

	clkMu.Lock()
	clk = clk.Add(4 * time.Second)
	clkMu.Unlock()
	r3 := submit(t, ts, smallSpec(22), true)
	readBody(t, r3)
	if r3.StatusCode != http.StatusOK {
		t.Errorf("post-refill submit: %d", r3.StatusCode)
	}
}

// A full in-flight window must answer 429 without burning rate
// tokens, and a cache hit must bypass admission entirely.
func TestQueueFull429(t *testing.T) {
	_, ts := newTestServer(t, Config{Admission: queue.NewAdmission(1, nil), Workers: 1})
	// Occupy the single slot with a job big enough to still be
	// in flight when the next submit lands microseconds later.
	slow := service.JobSpec{
		Apps: []string{"sje", "lib"}, Seed: 31,
		Instructions: 3_000_000, Warmup: u64(0),
	}
	r1 := submit(t, ts, slow, false)
	readBody(t, r1)
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d, want 202", r1.StatusCode)
	}
	r2 := submit(t, ts, smallSpec(32), false)
	readBody(t, r2)
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", r2.StatusCode)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// A duplicate of the in-flight job coalesces instead of rejecting.
	r3 := submit(t, ts, slow, false)
	readBody(t, r3)
	if r3.StatusCode != http.StatusAccepted || r3.Header.Get(ResultHeader) != "coalesced" {
		t.Errorf("duplicate submit: %d %s=%q, want 202 coalesced",
			r3.StatusCode, ResultHeader, r3.Header.Get(ResultHeader))
	}
}

// Draining: new submissions get 503, health flips, in-flight work
// completes and is served from the cache afterwards.
func TestDrainRejectsNewWork(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	r1 := submit(t, ts, smallSpec(41), false)
	readBody(t, r1)
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", r1.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	r2 := submit(t, ts, smallSpec(42), false)
	readBody(t, r2)
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: %d, want 503", r2.StatusCode)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, hr)
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d", hr.StatusCode)
	}
	// The drained job's result is still served (hits bypass draining).
	r3 := submit(t, ts, smallSpec(41), false)
	b3 := readBody(t, r3)
	if r3.StatusCode != http.StatusOK || r3.Header.Get(ResultHeader) != "hit" {
		t.Errorf("drained result: %d %s=%q body %s",
			r3.StatusCode, ResultHeader, r3.Header.Get(ResultHeader), b3)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"not-json":      "{",
		"unknown-field": `{"apps":["sje","lib"],"wat":1}`,
		"no-workload":   `{}`,
		"unknown-app":   `{"apps":["nope"]}`,
		"bad-policy":    `{"apps":["sje","lib"],"policy":"wat"}`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				t.Fatal(err)
			}
			readBody(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status %d, want 400", resp.StatusCode)
			}
		})
	}
}

func TestStatusAndResultLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/jobs/v1:deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status: %d", resp.StatusCode)
	}

	r1 := submit(t, ts, smallSpec(51), true)
	readBody(t, r1)
	var key string
	{
		_, k, err := service.SpecKey(smallSpec(51))
		if err != nil {
			t.Fatal(err)
		}
		key = k
	}
	sr, err := http.Get(ts.URL + "/v1/jobs/" + key)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.Unmarshal(readBody(t, sr), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Key != key {
		t.Errorf("status after completion: %+v", st)
	}
	rr, err := http.Get(ts.URL + "/v1/jobs/" + key + "/result")
	if err != nil {
		t.Fatal(err)
	}
	data := readBody(t, rr)
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("result: %d", rr.StatusCode)
	}
	if m, err := service.DecodeManifest(data); err != nil || m.Key != key {
		t.Errorf("result manifest: %v, key %q", err, m.Key)
	}
}

// A {key} path segment that is not a canonical content address — in
// particular an escaped traversal like ..%2Fvictim, which ServeMux
// unescapes into a relative path — must be answered 404 before any
// cache or disk access: a file next to the cache directory is neither
// disclosed nor quarantine-renamed.
func TestTraversalKeyRejected(t *testing.T) {
	base := t.TempDir()
	c, err := cache.New(cache.Config{Dir: filepath.Join(base, "cache")})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: c})
	// cache.path("../victim") would resolve here if a traversal key got
	// through.
	victim := filepath.Join(base, "victim.entry")
	if err := os.WriteFile(victim, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{
		"/v1/jobs/..%2Fvictim",
		"/v1/jobs/..%2Fvictim/result",
		"/v1/jobs/..%2Fvictim/events",
		"/v1/jobs/..%2F..%2Fetc%2Fpasswd/result",
		"/v1/jobs/notakey",
		"/v1/jobs/v1:deadbeef/result", // well-formed prefix, not a full address
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, resp)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", path, resp.StatusCode)
		}
	}
	if got, err := os.ReadFile(victim); err != nil || string(got) != "precious" {
		t.Errorf("victim file touched: %q, %v", got, err)
	}
	if _, err := os.Stat(victim + ".corrupt"); !os.IsNotExist(err) {
		t.Error("victim file quarantined")
	}
}

func TestStatsAndWorkloads(t *testing.T) {
	_, ts := newTestServer(t, Config{Version: "test"})
	readBody(t, submit(t, ts, smallSpec(61), true))
	readBody(t, submit(t, ts, smallSpec(61), true))

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Version   string      `json:"version"`
		Cache     cache.Stats `json:"cache"`
		Admission queue.Stats `json:"admission"`
	}
	if err := json.Unmarshal(readBody(t, resp), &stats); err != nil {
		t.Fatal(err)
	}
	// Two mem hits: the first (waited) submit reads its own fill back,
	// the second is the genuine repeat hit. One put, one admission.
	if stats.Version != "test" || stats.Cache.Puts != 1 || stats.Cache.MemHits != 2 || stats.Admission.Admitted != 1 {
		t.Errorf("stats: %+v", stats)
	}

	wresp, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	var wl struct {
		Mixes    []string `json:"mixes"`
		Policies []string `json:"policies"`
	}
	if err := json.Unmarshal(readBody(t, wresp), &wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Mixes) != 12 || len(wl.Policies) == 0 {
		t.Errorf("workloads: %+v", wl)
	}
}

// Unit-level pub/sub on Job: events reach subscribers, slow
// subscribers are dropped rather than blocking, terminal events close
// the stream.
func TestJobPubSub(t *testing.T) {
	j := newJob("v1:k", "req-1", service.JobSpec{})
	ch := j.subscribe()
	j.setState(StateRunning)
	select {
	case ev := <-ch:
		if ev.Type != "state" || ev.State != StateRunning {
			t.Errorf("event: %+v", ev)
		}
	default:
		t.Fatal("no event delivered")
	}

	// A subscriber that never drains must not block publish: overflow
	// its buffer and confirm publish returns.
	for i := 0; i < 200; i++ {
		j.publish(Event{Type: "sample", Key: j.Key})
	}

	j.unsubscribe(ch)
	j.complete([]byte(`"r"`))
	select {
	case <-j.done:
	default:
		t.Fatal("done not closed")
	}
	if state, _ := j.snapshot(); state != StateDone {
		t.Errorf("state %q", state)
	}
}

func TestRetrySeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{0, "1"}, {200 * time.Millisecond, "1"}, {time.Second, "1"},
		{1100 * time.Millisecond, "2"}, {4 * time.Second, "4"},
	} {
		if got := retrySeconds(tc.d); got != tc.want {
			t.Errorf("retrySeconds(%v) = %s, want %s", tc.d, got, tc.want)
		}
	}
}

// The events endpoint: a finished job yields a finite stream ending
// in a terminal event; samples observed during a live run are framed
// as JSON lines.
func TestEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := service.JobSpec{
		Apps: []string{"sje", "lib"}, Seed: 71,
		Instructions: 100_000, Warmup: u64(0), Interval: 20_000,
	}
	_, key, err := service.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + key + "/events")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events for unknown job: %d", resp.StatusCode)
	}

	readBody(t, submit(t, ts, spec, false))
	er, err := http.Get(ts.URL + "/v1/jobs/" + key + "/events")
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(readBody(t, er)), []byte("\n"))
	if ct := er.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var last Event
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d %q: %v", i, line, err)
		}
		last = ev
	}
	if last.Type != "done" {
		t.Errorf("stream ended with %+v, want done", last)
	}

	// SSE framing when asked for.
	req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+key+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	sr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sse := readBody(t, sr)
	if ct := sr.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("SSE content type %q", ct)
	}
	if !bytes.Contains(sse, []byte("event: done\ndata: ")) {
		t.Errorf("SSE framing missing: %q", sse)
	}
}

// A failing simulation must answer the waiter with 500 and leave the
// key resubmittable (errors are never cached).
func TestFailedJobNotCached(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// No way to make a valid spec fail deterministically through the
	// HTTP layer, so drive the internals: a job whose compute errors.
	j, coalesced, _, err := s.submit("v1:boom", service.JobSpec{}, "req-boom", 0)
	if err != nil || coalesced {
		t.Fatalf("submit: %v coalesced=%v", err, coalesced)
	}
	<-j.done
	if state, errMsg := j.snapshot(); state != StateFailed || errMsg == "" {
		t.Errorf("state %q err %q", state, errMsg)
	}
	if _, ok := s.cache.Get("v1:boom"); ok {
		t.Error("failed job cached")
	}
	if s.lookupJob("v1:boom") != nil {
		t.Error("failed job still registered")
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/v1:boom")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("failed job status: %d (failed jobs leave the registry)", resp.StatusCode)
	}
}

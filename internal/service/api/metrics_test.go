package api

import (
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"tlacache/internal/service"
	"tlacache/internal/service/queue"
)

// metricSample is one parsed exposition line: name{labels} value.
type metricSample struct {
	name   string
	labels map[string]string
	value  float64
}

// labelKey renders a sample's labels canonically (sorted, optionally
// excluding some label names) so series can be grouped.
func (s metricSample) labelKey(exclude ...string) string {
	skip := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		skip[e] = true
	}
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		if !skip[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k + "=" + s.labels[k] + ",")
	}
	return b.String()
}

var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
var labelPair = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"$`)

// scrapeStrict fetches /metrics and parses it under the text
// exposition format's rules: every line is a comment, HELP, TYPE, or
// sample; every sample's family has a preceding TYPE; values parse as
// floats. It returns the samples and the TYPE per family.
func scrapeStrict(t *testing.T, url string) ([]metricSample, map[string]string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body := readBody(t, resp)

	types := make(map[string]string)
	var samples []metricSample
	for i, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		lineNo := i + 1
		switch {
		case line == "":
			t.Fatalf("line %d: blank line in exposition", lineNo)
		case strings.HasPrefix(line, "# HELP "):
			if len(strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)) != 2 {
				t.Fatalf("line %d: HELP without text: %q", lineNo, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown TYPE %q", lineNo, parts[1])
			}
			if _, dup := types[parts[0]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", lineNo, parts[0])
			}
			types[parts[0]] = parts[1]
		case strings.HasPrefix(line, "#"):
			// other comments permitted
		default:
			m := sampleLine.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: unparseable sample: %q", lineNo, line)
			}
			name := m[1]
			labels := make(map[string]string)
			if m[3] != "" {
				for _, pair := range strings.Split(m[3], ",") {
					lm := labelPair.FindStringSubmatch(pair)
					if lm == nil {
						t.Fatalf("line %d: bad label pair %q", lineNo, pair)
					}
					labels[lm[1]] = lm[2]
				}
			}
			var value float64
			switch m[4] {
			case "+Inf":
				value = math.Inf(1)
			case "-Inf":
				value = math.Inf(-1)
			default:
				v, err := strconv.ParseFloat(m[4], 64)
				if err != nil {
					t.Fatalf("line %d: bad value %q: %v", lineNo, m[4], err)
				}
				value = v
			}
			family := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if f := strings.TrimSuffix(name, suffix); f != name && types[f] == "histogram" {
					family = f
				}
			}
			if _, ok := types[family]; !ok {
				t.Fatalf("line %d: sample %s before its TYPE declaration", lineNo, name)
			}
			samples = append(samples, metricSample{name: name, labels: labels, value: value})
		}
	}
	return samples, types
}

// find returns the single sample with the given name whose labels
// include want.
func find(t *testing.T, samples []metricSample, name string, want map[string]string) metricSample {
	t.Helper()
	var hits []metricSample
	for _, s := range samples {
		if s.name != name {
			continue
		}
		ok := true
		for k, v := range want {
			if s.labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			hits = append(hits, s)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("%s%v: %d matches, want 1", name, want, len(hits))
	}
	return hits[0]
}

// checkHistogram verifies the family's invariants for every series:
// cumulative buckets are monotone, the +Inf bucket equals _count, and
// _sum is present and non-negative.
func checkHistogram(t *testing.T, samples []metricSample, family string) {
	t.Helper()
	type series struct {
		buckets []metricSample
		sum     *metricSample
		count   *metricSample
	}
	byLabels := make(map[string]*series)
	get := func(s metricSample) *series {
		k := s.labelKey("le")
		if byLabels[k] == nil {
			byLabels[k] = &series{}
		}
		return byLabels[k]
	}
	for _, s := range samples {
		s := s
		switch s.name {
		case family + "_bucket":
			get(s).buckets = append(get(s).buckets, s)
		case family + "_sum":
			get(s).sum = &s
		case family + "_count":
			get(s).count = &s
		}
	}
	if len(byLabels) == 0 {
		t.Fatalf("histogram %s has no series", family)
	}
	for k, se := range byLabels {
		if se.sum == nil || se.count == nil || len(se.buckets) == 0 {
			t.Fatalf("%s{%s}: incomplete series (buckets %d, sum %v, count %v)",
				family, k, len(se.buckets), se.sum != nil, se.count != nil)
		}
		sort.Slice(se.buckets, func(i, j int) bool {
			return parseLE(t, se.buckets[i]) < parseLE(t, se.buckets[j])
		})
		prev := -1.0
		for _, b := range se.buckets {
			if b.value < prev {
				t.Errorf("%s{%s}: bucket counts not monotone at le=%s", family, k, b.labels["le"])
			}
			prev = b.value
		}
		last := se.buckets[len(se.buckets)-1]
		if !math.IsInf(parseLE(t, last), 1) {
			t.Errorf("%s{%s}: missing +Inf bucket", family, k)
		}
		if last.value != se.count.value {
			t.Errorf("%s{%s}: +Inf bucket %v != count %v", family, k, last.value, se.count.value)
		}
		if se.sum.value < 0 {
			t.Errorf("%s{%s}: negative sum %v", family, k, se.sum.value)
		}
	}
}

func parseLE(t *testing.T, s metricSample) float64 {
	t.Helper()
	le := s.labels["le"]
	if le == "+Inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		t.Fatalf("bad le label %q: %v", le, err)
	}
	return v
}

// The metrics endpoint under a known workload: one miss, one hit, one
// coalesced duplicate. The exposition must parse strictly and the
// counters must reflect exactly that history.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// miss then hit on the same spec.
	r1 := submit(t, ts, smallSpec(71), true)
	readBody(t, r1)
	if v := r1.Header.Get(ResultHeader); v != "miss" {
		t.Fatalf("first submit verdict %q", v)
	}
	r2 := submit(t, ts, smallSpec(71), true)
	readBody(t, r2)
	if v := r2.Header.Get(ResultHeader); v != "hit" {
		t.Fatalf("second submit verdict %q", v)
	}
	// a slow job plus a waiting duplicate that coalesces onto it.
	slow := service.JobSpec{
		Apps: []string{"sje", "lib"}, Seed: 72,
		Instructions: 3_000_000, Warmup: u64(0),
	}
	r3 := submit(t, ts, slow, false)
	readBody(t, r3)
	if v := r3.Header.Get(ResultHeader); v != "miss" {
		t.Fatalf("slow submit verdict %q", v)
	}
	r4 := submit(t, ts, slow, true)
	readBody(t, r4)
	if v := r4.Header.Get(ResultHeader); v != "coalesced" {
		t.Fatalf("duplicate submit verdict %q", v)
	}

	samples, types := scrapeStrict(t, ts.URL)

	for family, wantType := range map[string]string{
		"tlacached_job_seconds":                "histogram",
		"tlacached_job_phase_seconds":          "histogram",
		"tlacached_cache_hits_total":           "counter",
		"tlacached_cache_misses_total":         "counter",
		"tlacached_cache_mem_evictions_total":  "counter",
		"tlacached_admission_admitted_total":   "counter",
		"tlacached_admission_rejections_total": "counter",
		"tlacached_queue_depth":                "gauge",
		"tlacached_jobs_active":                "gauge",
		"tlacached_draining":                   "gauge",
	} {
		if got := types[family]; got != wantType {
			t.Errorf("family %s has TYPE %q, want %q", family, got, wantType)
		}
	}
	checkHistogram(t, samples, "tlacached_job_seconds")
	checkHistogram(t, samples, "tlacached_job_phase_seconds")

	for outcome, want := range map[string]float64{"miss": 2, "hit": 1, "coalesced": 1} {
		got := find(t, samples, "tlacached_job_seconds_count", map[string]string{"outcome": outcome})
		if got.value != want {
			t.Errorf("job_seconds_count{outcome=%q} = %v, want %v", outcome, got.value, want)
		}
	}
	// Two jobs executed, so every phase was observed exactly twice.
	for _, phase := range []string{"admission_wait", "cache_lookup", "simulate", "encode"} {
		got := find(t, samples, "tlacached_job_phase_seconds_count", map[string]string{"phase": phase})
		if got.value != 2 {
			t.Errorf("phase_seconds_count{phase=%q} = %v, want 2", phase, got.value)
		}
	}
	if s := find(t, samples, "tlacached_queue_depth", nil); s.value != 0 {
		t.Errorf("queue_depth = %v after all jobs finished", s.value)
	}
	if s := find(t, samples, "tlacached_jobs_active", nil); s.value != 0 {
		t.Errorf("jobs_active = %v after all jobs finished", s.value)
	}
	if s := find(t, samples, "tlacached_admission_admitted_total", nil); s.value != 2 {
		t.Errorf("admitted_total = %v, want 2", s.value)
	}
	if s := find(t, samples, "tlacached_cache_hits_total", map[string]string{"tier": "mem"}); s.value < 1 {
		t.Errorf("mem hits %v, want >= 1", s.value)
	}

	// Scraping twice must be stable modulo values: same families, same
	// series set.
	again, _ := scrapeStrict(t, ts.URL)
	if len(again) != len(samples) {
		t.Errorf("second scrape has %d samples, first had %d", len(again), len(samples))
	}
}

// Request-ID middleware: a sane client ID is honoured and echoed, a
// hostile one is replaced, and responses always carry some ID.
func TestRequestIDMiddleware(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req, err := http.NewRequest("GET", ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "client-id_42.x")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if got := resp.Header.Get(RequestIDHeader); got != "client-id_42.x" {
		t.Errorf("sane client ID not echoed: %q", got)
	}

	req.Header.Set(RequestIDHeader, "evil\"id=with;junk"+strings.Repeat("x", 100))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp2)
	got := resp2.Header.Get(RequestIDHeader)
	if got == "" || strings.ContainsAny(got, "\"=;") {
		t.Errorf("hostile client ID not replaced: %q", got)
	}

	resp3, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp3)
	if resp3.Header.Get(RequestIDHeader) == "" {
		t.Error("response without request ID")
	}
}

// The manifest a miss produces carries the submitter's request ID and
// complete phase spans; the byte-identical cached copy serves the
// filler's annotations to later hits.
func TestManifestCarriesRequestIDAndPhases(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs?wait=1",
		strings.NewReader(`{"apps":["sje","lib"],"seed":73,"instructions":30000,"warmup":0}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "filler-req")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	m, err := service.DecodeManifest(body)
	if err != nil {
		t.Fatal(err)
	}
	if m.RequestID != "filler-req" {
		t.Errorf("manifest request ID %q, want filler-req", m.RequestID)
	}
	if m.Phases == nil {
		t.Fatal("manifest has no phase spans")
	}
	if m.Phases.SimulateSeconds <= 0 || m.Phases.EncodeSeconds <= 0 {
		t.Errorf("implausible phase spans: %+v", m.Phases)
	}
	if m.Phases.AdmissionWaitSeconds < 0 || m.Phases.CacheLookupSeconds < 0 {
		t.Errorf("implausible wait/lookup spans: %+v", m.Phases)
	}

	// The hit serves the filler's annotations verbatim.
	r2, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json",
		strings.NewReader(`{"apps":["sje","lib"],"seed":73,"instructions":30000,"warmup":0}`))
	if err != nil {
		t.Fatal(err)
	}
	b2 := readBody(t, r2)
	if r2.Header.Get(ResultHeader) != "hit" {
		t.Fatalf("second submit verdict %q", r2.Header.Get(ResultHeader))
	}
	m2, err := service.DecodeManifest(b2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.RequestID != "filler-req" {
		t.Errorf("cached manifest request ID %q, want the filler's", m2.RequestID)
	}
}

// Submissions rejected by admission must surface in the rejection
// counter, and a rate-gated daemon exposes its token state.
func TestMetricsRejectionCounter(t *testing.T) {
	// A near-empty rate gate: one token, refilling so slowly the test
	// never sees a second one.
	adm := queue.NewAdmission(4, queue.NewTokenBucket(0.001, 1, nil))
	_, ts := newTestServer(t, Config{Admission: adm, Workers: 1})

	r1 := submit(t, ts, smallSpec(74), false)
	readBody(t, r1)
	r2 := submit(t, ts, smallSpec(75), false)
	readBody(t, r2)
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: %d, want 429", r2.StatusCode)
	}
	// Wait for the admitted job to finish so counters settle.
	deadline := time.Now().Add(30 * time.Second)
	for {
		r := submit(t, ts, smallSpec(74), false)
		readBody(t, r)
		if r.Header.Get(ResultHeader) == "hit" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("admitted job never completed")
		}
		time.Sleep(50 * time.Millisecond)
	}

	samples, _ := scrapeStrict(t, ts.URL)
	if s := find(t, samples, "tlacached_admission_rejections_total", nil); s.value < 1 {
		t.Errorf("rejections_total = %v, want >= 1", s.value)
	}
	if s := find(t, samples, "tlacached_admission_burst", nil); s.value != 1 {
		t.Errorf("burst gauge = %v, want 1", s.value)
	}
}

package api

import (
	"encoding/json"
	"net/http"
	"strings"
)

// eventWriter renders a job's event stream in one of two framings:
// Server-Sent Events (`event:`/`data:` blocks) when the client asks
// for text/event-stream, newline-delimited JSON otherwise. Both frame
// one Event per message, flushed immediately — the point of the
// stream is watching a simulation live.
type eventWriter struct {
	w   http.ResponseWriter
	fl  http.Flusher
	sse bool
}

func newEventWriter(w http.ResponseWriter, r *http.Request) (*eventWriter, bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return nil, false
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	return &eventWriter{w: w, fl: fl, sse: sse}, true
}

func (ew *eventWriter) write(ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if ew.sse {
		if _, err := ew.w.Write([]byte("event: " + ev.Type + "\ndata: ")); err != nil {
			return err
		}
	}
	if _, err := ew.w.Write(data); err != nil {
		return err
	}
	suffix := "\n"
	if ew.sse {
		suffix = "\n\n"
	}
	if _, err := ew.w.Write([]byte(suffix)); err != nil {
		return err
	}
	ew.fl.Flush()
	return nil
}

// terminalEvent renders a finished job's final state as an event. The
// error/done split keys off the state machine, not the message: fail()
// is the only transition into StateFailed and always records the
// message the subscriber sees.
func terminalEvent(key string, state JobState, errMsg string) Event {
	switch state {
	case StateFailed:
		return Event{Type: "error", Key: key, State: state, Error: errMsg}
	case StateQueued, StateRunning, StateDone:
	}
	return Event{Type: "done", Key: key, State: state}
}

// handleEvents is GET /v1/jobs/{key}/events: subscribe to a job's
// live event stream. A key that already resolved (cache hit, no
// in-flight job) yields a single terminal "done" event so late
// subscribers see a well-formed, finite stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	key, ok := pathKey(w, r)
	if !ok {
		return
	}
	j := s.lookupJob(key)
	if j == nil {
		if _, ok := s.cache.Get(key); !ok {
			http.Error(w, "unknown job", http.StatusNotFound)
			return
		}
		ew, ok := newEventWriter(w, r)
		if !ok {
			return
		}
		ew.write(terminalEvent(key, StateDone, "")) //nolint:errcheck // client gone
		return
	}

	ch := j.subscribe()
	defer j.unsubscribe(ch)
	ew, ok := newEventWriter(w, r)
	if !ok {
		return
	}
	state, errMsg := j.snapshot()
	if err := ew.write(Event{Type: "state", Key: key, RequestID: j.RequestID, State: state, Error: errMsg}); err != nil {
		return
	}
	for {
		select {
		case ev := <-ch:
			if err := ew.write(ev); err != nil {
				return
			}
			if ev.Type == "done" || ev.Type == "error" {
				return
			}
		case <-j.done:
			// The terminal event may have been published before we
			// subscribed; drain anything buffered, then synthesise the
			// final frame from the job's settled state.
			for {
				select {
				case ev := <-ch:
					if err := ew.write(ev); err != nil {
						return
					}
					if ev.Type == "done" || ev.Type == "error" {
						return
					}
					continue
				default:
				}
				break
			}
			state, errMsg := j.snapshot()
			term := terminalEvent(key, state, errMsg)
			term.RequestID = j.RequestID
			ew.write(term) //nolint:errcheck // stream ends here
			return
		case <-r.Context().Done():
			return
		}
	}
}

// Request observability middleware: every request gets an ID (the
// client's X-Request-Id when it sends a sane one, a fresh random ID
// otherwise), echoed on the response, propagated through the context
// into job registration — and from there into manifests and event
// streams — and logged with method, path, status, size, duration, and
// the cache verdict when one was set.
package api

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"time"
)

// RequestIDHeader carries the request ID on requests and responses.
const RequestIDHeader = "X-Request-Id"

type ctxKey int

const requestIDKey ctxKey = iota

// requestIDFrom returns the request ID the middleware stored, or "".
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// newRequestID mints a 16-hex-char random ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is not worth failing a request over; a
		// fixed ID still correlates response headers with log lines.
		return "00000000c0ffee00"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID accepts a client-supplied ID only when it is
// short and plain (letters, digits, dot, dash, underscore), so hostile
// headers cannot inject log records or header tricks.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		switch c := id[i]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
		default:
			return ""
		}
	}
	return id
}

// statusWriter records the response status and size for the request
// log. It deliberately implements http.Flusher by delegation:
// newEventWriter type-asserts the ResponseWriter to http.Flusher, so
// a wrapper that hid Flush would silently break event streaming.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// withObservability wraps the route table with request-ID assignment
// and structured request logging (skipped when no logger is set).
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := sanitizeRequestID(r.Header.Get(RequestIDHeader))
		if rid == "" {
			rid = newRequestID()
		}
		w.Header().Set(RequestIDHeader, rid)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), requestIDKey, rid)))
		if s.log == nil {
			return
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		attrs := []any{
			slog.String("request_id", rid),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Int64("bytes", sw.bytes),
			slog.Float64("duration_ms", float64(time.Since(start).Microseconds())/1e3),
		}
		if v := sw.Header().Get(ResultHeader); v != "" {
			attrs = append(attrs, slog.String("result", v))
		}
		s.log.Info("request", attrs...)
	})
}

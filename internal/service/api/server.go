// Package api is tlacached's HTTP surface: it accepts simulation jobs
// as JSON, collapses identical requests onto one cached or in-flight
// result, applies admission control (token-bucket rate gate plus a
// bounded in-flight count answering 429 with Retry-After), and streams
// per-job progress and interval telemetry to event subscribers.
//
// A job's identifier IS its cache key — the canonical content address
// of the request (service.Key) — so request coalescing needs no
// separate job-ID bookkeeping: two clients submitting the same spec
// are, by construction, asking for the same job.
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"tlacache/internal/cli"
	"tlacache/internal/runner"
	"tlacache/internal/service"
	"tlacache/internal/service/cache"
	"tlacache/internal/service/queue"
	"tlacache/internal/telemetry"
)

// ResultHeader tells the client how its submission was satisfied:
// "hit" (served from the cache), "coalesced" (attached to an identical
// in-flight job), or "miss" (a new simulation was started).
const ResultHeader = "X-Tlacache-Result"

// JobState is a job's lifecycle phase. The wire encoding is the plain
// string, so typing it costs nothing over the JSON API; switches over
// it must name every state (tlavet's exhaustive check), so adding a
// lifecycle phase fails loudly in every dispatch instead of slipping
// through a default arm.
//
//tlavet:exhaustive
type JobState string

// Job states, in lifecycle order.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Sentinel errors for submission rejections.
var (
	// ErrDraining rejects new work while the daemon shuts down.
	ErrDraining = errors.New("api: daemon is draining")
	// ErrOverloaded rejects work that failed admission control.
	ErrOverloaded = errors.New("api: daemon is overloaded")
)

// Config parameterises a Server.
type Config struct {
	// Cache is the two-tier result store; nil builds a memory-only
	// cache.
	Cache *cache.Cache
	// Admission gates new simulations; nil admits everything.
	Admission *queue.Admission
	// Workers bounds concurrently executing simulations (default 2).
	Workers int
	// Version is reported by /v1/stats.
	Version string
	// Logger receives one structured record per request; nil disables
	// request logging (metrics and request IDs stay on).
	Logger *slog.Logger
}

// Server implements the daemon's HTTP API. Build with New.
type Server struct {
	cache   *cache.Cache
	adm     *queue.Admission
	flight  cache.Group
	sem     chan struct{}
	version string
	log     *slog.Logger
	metrics *metrics
	wg      sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	draining bool
}

// New builds a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Cache == nil {
		c, err := cache.New(cache.Config{})
		if err != nil {
			return nil, err
		}
		cfg.Cache = c
	}
	if cfg.Admission == nil {
		cfg.Admission = queue.NewAdmission(0, nil)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	return &Server{
		cache:   cfg.Cache,
		adm:     cfg.Admission,
		sem:     make(chan struct{}, cfg.Workers),
		version: cfg.Version,
		log:     cfg.Logger,
		metrics: newMetrics(),
		jobs:    make(map[string]*Job),
	}, nil
}

// Handler returns the daemon's route table, wrapped in the request-ID
// and logging middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{key}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{key}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{key}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return s.withObservability(mux)
}

// Event is one entry in a job's event stream. RequestID names the
// submission that created the job, so a subscriber can correlate the
// stream with daemon logs and the eventual manifest.
type Event struct {
	Type      string            `json:"type"` // "state", "sample", "done", "error"
	Key       string            `json:"key,omitempty"`
	RequestID string            `json:"request_id,omitempty"`
	State     JobState          `json:"state,omitempty"`
	Sample    *telemetry.Sample `json:"sample,omitempty"`
	Error     string            `json:"error,omitempty"`
}

// Job tracks one in-flight simulation. Its identity is the cache key
// of its spec; completed jobs leave the registry (their result lives
// in the cache, their failure was delivered to every waiter).
type Job struct {
	Key string
	// RequestID is the submission that created the job (coalesced
	// duplicates keep the originator's ID). Immutable after newJob.
	RequestID string
	Spec      service.JobSpec
	queuedAt  time.Time
	done      chan struct{}

	mu     sync.Mutex
	state  JobState
	err    string
	result []byte // set on success; lets waiters answer even if no cache tier retained it
	spans  service.PhaseSpans
	subs   map[chan Event]struct{}
}

func newJob(key, requestID string, spec service.JobSpec) *Job {
	return &Job{
		Key:       key,
		RequestID: requestID,
		Spec:      spec,
		queuedAt:  time.Now(),
		done:      make(chan struct{}),
		state:     StateQueued,
		subs:      make(map[chan Event]struct{}),
	}
}

// spansSnapshot reads the phase spans recorded so far.
func (j *Job) spansSnapshot() service.PhaseSpans {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.spans
}

// snapshot reads the job's current state and error message.
func (j *Job) snapshot() (state JobState, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.err
}

// setState transitions the job and notifies subscribers.
func (j *Job) setState(state JobState) {
	j.mu.Lock()
	j.state = state
	j.mu.Unlock()
	j.publish(Event{Type: "state", Key: j.Key, State: state})
}

// complete marks success, pins the result for waiters, and releases
// every waiter.
func (j *Job) complete(result []byte) {
	j.mu.Lock()
	j.state = StateDone
	j.result = result
	j.mu.Unlock()
	j.publish(Event{Type: "done", Key: j.Key, State: StateDone})
	close(j.done)
}

// resultSnapshot reads the pinned result; nil before completion or on
// failure.
func (j *Job) resultSnapshot() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// fail marks failure and releases every waiter.
func (j *Job) fail(msg string) {
	j.mu.Lock()
	j.state = StateFailed
	j.err = msg
	j.mu.Unlock()
	j.publish(Event{Type: "error", Key: j.Key, State: StateFailed, Error: msg})
	close(j.done)
}

// subscribe registers an event channel. The buffer absorbs bursts;
// publish drops events to a subscriber that stops draining rather
// than ever blocking the simulation goroutine.
func (j *Job) subscribe() chan Event {
	ch := make(chan Event, 64)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

func (j *Job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// publish fans an event out to subscribers. The subscriber list is
// copied under the lock and the (non-blocking) sends happen outside
// it — a send under a held mutex is the deadlock shape the
// lockdiscipline analyzer exists to reject.
func (j *Job) publish(ev Event) {
	if ev.RequestID == "" {
		ev.RequestID = j.RequestID
	}
	j.mu.Lock()
	chans := make([]chan Event, 0, len(j.subs))
	for ch := range j.subs {
		chans = append(chans, ch)
	}
	j.mu.Unlock()
	for _, ch := range chans {
		select {
		case ch <- ev:
		default: // slow subscriber: drop, never block the simulation
		}
	}
}

// submit attaches the request to an existing in-flight job (coalesced)
// or admits and starts a new one. The admission gates run only for
// genuinely new work — a coalesced duplicate costs no rate token.
// requestID and lookupSeconds (the submission's cache-lookup span)
// seed the new job's provenance; a coalesced request keeps the
// originator's.
func (s *Server) submit(key string, spec service.JobSpec, requestID string, lookupSeconds float64) (j *Job, coalesced bool, retry time.Duration, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, 0, ErrDraining
	}
	if j, ok := s.jobs[key]; ok {
		return j, true, 0, nil
	}
	release, retry, ok := s.adm.Admit()
	if !ok {
		return nil, false, retry, ErrOverloaded
	}
	j = newJob(key, requestID, spec)
	j.spans.CacheLookupSeconds = lookupSeconds
	s.jobs[key] = j
	s.wg.Add(1)
	go s.run(j, release)
	return j, false, 0, nil
}

// lookupJob returns the in-flight job for key, if any.
func (s *Server) lookupJob(key string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[key]
}

// removeJob drops a finished job from the registry; status queries
// for it fall through to the cache.
func (s *Server) removeJob(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jobs[j.Key] == j {
		delete(s.jobs, j.Key)
	}
}

// run executes one job: a worker slot, then the single-flight cache
// fill. The runner (Workers: 1) supplies panic recovery — a crashing
// simulation becomes this job's error, not a daemon crash.
func (s *Server) run(j *Job, release func()) {
	defer s.wg.Done()
	defer release()
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	j.mu.Lock()
	j.spans.AdmissionWaitSeconds = time.Since(j.queuedAt).Seconds()
	j.mu.Unlock()

	j.setState(StateRunning)
	data, _, err := s.cache.GetOrCompute(&s.flight, j.Key, func() ([]byte, error) {
		return s.executeJob(j)
	})
	s.removeJob(j)
	if err != nil {
		j.fail(err.Error())
		return
	}
	j.complete(data)
}

// executeJob runs the simulation and encodes its manifest, annotated
// with the request ID and the daemon's phase spans. Interval
// telemetry streams to the job's subscribers as it is observed.
func (s *Server) executeJob(j *Job) ([]byte, error) {
	sink := func(sm telemetry.Sample) {
		j.publish(Event{Type: "sample", Key: j.Key, Sample: &sm})
	}
	simStart := time.Now()
	res, err := runner.Run(context.Background(), runner.Config{Workers: 1},
		[]runner.Job[service.Manifest]{{
			Name: j.Key,
			Work: j.Spec.Work(),
			Run: func(context.Context) (service.Manifest, error) {
				return service.Execute(j.Spec, sink)
			},
		}})
	if err != nil {
		return nil, err
	}
	if res[0].Err != nil {
		return nil, res[0].Err
	}
	spans := j.spansSnapshot()
	spans.SimulateSeconds = time.Since(simStart).Seconds()

	// Measure a first encode of the full manifest, then encode again
	// with the spans embedded — the second pass differs only in the
	// phase numbers, so the measured cost is representative.
	m := res[0].Value
	m.RequestID = j.RequestID
	encStart := time.Now()
	if _, err := service.EncodeManifest(m); err != nil {
		return nil, err
	}
	spans.EncodeSeconds = time.Since(encStart).Seconds()
	m.Phases = &spans
	s.metrics.observePhases(spans)
	return service.EncodeManifest(m)
}

// Drain stops admitting work and waits for in-flight jobs to finish,
// up to ctx's deadline. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("api: drain: %w", ctx.Err())
	}
}

// JobStatus is the wire form of a job's state.
type JobStatus struct {
	Key    string   `json:"key"`
	State  JobState `json:"state"`
	Error  string   `json:"error,omitempty"`
	Result string   `json:"result,omitempty"`
}

func resultPath(key string) string { return "/v1/jobs/" + key + "/result" }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func serveManifest(w http.ResponseWriter, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data) //nolint:errcheck // client gone; nothing to do
}

// retrySeconds renders a Retry-After value: whole seconds, at least 1.
func retrySeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// handleSubmit is POST /v1/jobs: validate, content-address, serve a
// hit, else coalesce or admit. `?wait=1` blocks until the manifest is
// ready; the default returns 202 with the job's status.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var spec service.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, "invalid job spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	norm, key, err := service.SpecKey(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	lookupStart := time.Now()
	data, ok := s.cache.Get(key)
	lookupSeconds := time.Since(lookupStart).Seconds()
	if ok {
		w.Header().Set(ResultHeader, "hit")
		s.metrics.observeJob("hit", time.Since(start))
		serveManifest(w, data)
		return
	}

	//tlavet:allow detflow cache-lookup wall time is telemetry recorded in the manifest's spans, never simulated state
	j, coalesced, retry, err := s.submit(key, norm, requestIDFrom(r.Context()), lookupSeconds)
	switch {
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", retrySeconds(5*time.Second))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", retrySeconds(retry))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	verdict := "miss"
	if coalesced {
		verdict = "coalesced"
	}
	w.Header().Set(ResultHeader, verdict)
	defer func() { s.metrics.observeJob(verdict, time.Since(start)) }()

	if q := r.URL.Query().Get("wait"); q == "" || q == "0" {
		state, _ := j.snapshot()
		writeJSON(w, http.StatusAccepted, JobStatus{Key: key, State: state, Result: resultPath(key)})
		return
	}

	select {
	case <-j.done:
	case <-r.Context().Done():
		return
	}
	if _, errMsg := j.snapshot(); errMsg != "" {
		http.Error(w, "simulation failed: "+errMsg, http.StatusInternalServerError)
		return
	}
	data, ok = s.cache.Get(key)
	if !ok {
		// No cache tier retained the result (disk write failed, memory
		// entry evicted); the completed job still pins it.
		data = j.resultSnapshot()
	}
	if data == nil {
		http.Error(w, "result missing after completion", http.StatusInternalServerError)
		return
	}
	serveManifest(w, data)
}

// pathKey extracts and validates the {key} wildcard. ServeMux
// unescapes wildcard segments, so a raw r.PathValue can carry path
// separators ("..%2F..%2Fetc%2Fpasswd"); only exact canonical content
// addresses pass — anything else is answered 404 before it can reach
// a cache tier or the disk. The uniform 404 also keeps invalid keys
// from probing file existence.
func pathKey(w http.ResponseWriter, r *http.Request) (string, bool) {
	key := r.PathValue("key")
	if !service.ValidKey(key) {
		http.Error(w, "unknown job", http.StatusNotFound)
		return "", false
	}
	return key, true
}

// handleStatus is GET /v1/jobs/{key}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	key, ok := pathKey(w, r)
	if !ok {
		return
	}
	if j := s.lookupJob(key); j != nil {
		state, errMsg := j.snapshot()
		writeJSON(w, http.StatusOK, JobStatus{Key: key, State: state, Error: errMsg})
		return
	}
	if _, ok := s.cache.Get(key); ok {
		writeJSON(w, http.StatusOK, JobStatus{Key: key, State: StateDone, Result: resultPath(key)})
		return
	}
	http.Error(w, "unknown job", http.StatusNotFound)
}

// handleResult is GET /v1/jobs/{key}/result: the manifest when ready,
// 202 with status while the job runs, 404 otherwise.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key, ok := pathKey(w, r)
	if !ok {
		return
	}
	if data, ok := s.cache.Get(key); ok {
		w.Header().Set(ResultHeader, "hit")
		serveManifest(w, data)
		return
	}
	if j := s.lookupJob(key); j != nil {
		state, errMsg := j.snapshot()
		writeJSON(w, http.StatusAccepted, JobStatus{Key: key, State: state, Error: errMsg})
		return
	}
	http.Error(w, "unknown job", http.StatusNotFound)
}

// handleStats is GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// handleWorkloads is GET /v1/workloads: the submittable vocabulary.
func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Mixes    []string `json:"mixes"`
		Policies []string `json:"policies"`
	}{service.Mixes(), cli.PolicyNames()})
}

// handleHealth is GET /healthz: 200 while serving, 503 once draining.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n")) //nolint:errcheck
}

// Prometheus-style metrics for the daemon, stdlib only: a fixed set
// of histogram families updated on the request path, rendered on
// demand as text exposition format (version 0.0.4) alongside gauges
// and counters read from the cache/admission Stats snapshots at
// scrape time. Keeping the scrape-time families derived from the same
// snapshots /v1/stats serves means the two surfaces can never drift.
package api

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tlacache/internal/service"
	"tlacache/internal/service/cache"
	"tlacache/internal/service/queue"
)

// timeBuckets are the latency histogram bounds in seconds, spanning
// sub-millisecond cache hits to tens-of-seconds simulations. An array
// (not a slice) so len(timeBuckets) is a compile-time constant.
var timeBuckets = [...]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30}

// jobOutcomes and phaseNames fix the label vocabulary (and render
// order) of the two histogram families.
var (
	jobOutcomes = []string{"hit", "miss", "coalesced"}
	phaseNames  = []string{"admission_wait", "cache_lookup", "simulate", "encode"}
)

// histogram is a fixed-bucket latency histogram. Goroutine-safe.
// counts[i] holds observations in (timeBuckets[i-1], timeBuckets[i]];
// the final slot is the +Inf overflow.
type histogram struct {
	mu     sync.Mutex
	counts [len(timeBuckets) + 1]uint64
	sum    float64
	total  uint64
}

func (h *histogram) observe(seconds float64) {
	i := 0
	for i < len(timeBuckets) && seconds > timeBuckets[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.sum += seconds
	h.total++
	h.mu.Unlock()
}

func (h *histogram) snapshot() (counts [len(timeBuckets) + 1]uint64, sum float64, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.counts, h.sum, h.total
}

// metrics holds the server's histogram families. The label maps are
// fully populated at construction and never mutated after, so lookups
// need no lock (each histogram locks itself).
type metrics struct {
	job   map[string]*histogram // by submission outcome
	phase map[string]*histogram // by executed-job phase
}

func newMetrics() *metrics {
	m := &metrics{
		job:   make(map[string]*histogram, len(jobOutcomes)),
		phase: make(map[string]*histogram, len(phaseNames)),
	}
	for _, k := range jobOutcomes {
		m.job[k] = &histogram{}
	}
	for _, k := range phaseNames {
		m.phase[k] = &histogram{}
	}
	return m
}

func (m *metrics) observeJob(outcome string, d time.Duration) {
	if h := m.job[outcome]; h != nil {
		h.observe(d.Seconds())
	}
}

func (m *metrics) observePhases(p service.PhaseSpans) {
	m.phase["admission_wait"].observe(p.AdmissionWaitSeconds)
	m.phase["cache_lookup"].observe(p.CacheLookupSeconds)
	m.phase["simulate"].observe(p.SimulateSeconds)
	m.phase["encode"].observe(p.EncodeSeconds)
}

// formatFloat renders a metric value the way Prometheus clients
// expect: shortest exact decimal form.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeHistFamily renders one histogram family with its label keys in
// fixed order, so the exposition is deterministic.
func writeHistFamily(b *strings.Builder, name, help, label string, keys []string, hists map[string]*histogram) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, k := range keys {
		counts, sum, total := hists[k].snapshot()
		cum := uint64(0)
		for i, ub := range timeBuckets {
			cum += counts[i]
			fmt.Fprintf(b, "%s_bucket{%s=%q,le=%q} %d\n", name, label, k, formatFloat(ub), cum)
		}
		fmt.Fprintf(b, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, k, total)
		fmt.Fprintf(b, "%s_sum{%s=%q} %s\n", name, label, k, formatFloat(sum))
		fmt.Fprintf(b, "%s_count{%s=%q} %d\n", name, label, k, total)
	}
}

// StatsSnapshot is the daemon's aggregate state at one instant — the
// body of /v1/stats, the expvar value, and the source of /metrics'
// scrape-time gauges and counters.
type StatsSnapshot struct {
	Version    string      `json:"version,omitempty"`
	Cache      cache.Stats `json:"cache"`
	Admission  queue.Stats `json:"admission"`
	ActiveJobs int         `json:"active_jobs"`
	Draining   bool        `json:"draining"`
}

// statsSnapshot collects the live snapshot.
func (s *Server) statsSnapshot() StatsSnapshot {
	s.mu.Lock()
	active := len(s.jobs)
	draining := s.draining
	s.mu.Unlock()
	return StatsSnapshot{
		Version:    s.version,
		Cache:      s.cache.Stats(),
		Admission:  s.adm.Stats(),
		ActiveJobs: active,
		Draining:   draining,
	}
}

// handleMetrics is GET /metrics: Prometheus text exposition of the
// request-path histograms plus scrape-time gauges and counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.statsSnapshot()
	var b strings.Builder

	writeHistFamily(&b, "tlacached_job_seconds",
		"Time to answer a job submission, by outcome.",
		"outcome", jobOutcomes, s.metrics.job)
	writeHistFamily(&b, "tlacached_job_phase_seconds",
		"Wall time of each daemon phase of an executed job.",
		"phase", phaseNames, s.metrics.phase)

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatFloat(v))
	}

	fmt.Fprintf(&b, "# HELP tlacached_cache_hits_total Result-cache hits by tier.\n"+
		"# TYPE tlacached_cache_hits_total counter\n")
	fmt.Fprintf(&b, "tlacached_cache_hits_total{tier=\"mem\"} %d\n", snap.Cache.MemHits)
	fmt.Fprintf(&b, "tlacached_cache_hits_total{tier=\"disk\"} %d\n", snap.Cache.DiskHits)
	counter("tlacached_cache_misses_total", "Result-cache misses.", snap.Cache.Misses)
	counter("tlacached_cache_puts_total", "Result-cache fills.", snap.Cache.Puts)
	counter("tlacached_cache_put_errors_total", "Disk-tier write failures.", snap.Cache.PutErrors)
	counter("tlacached_cache_quarantined_total", "Corrupt disk entries quarantined.", snap.Cache.Quarantined)
	counter("tlacached_cache_mem_evictions_total", "Memory-tier LRU evictions.", snap.Cache.MemEvictions)
	gauge("tlacached_cache_mem_entries", "Memory-tier resident entries.", float64(snap.Cache.MemEntries))

	counter("tlacached_admission_admitted_total", "Submissions admitted as new jobs.", snap.Admission.Admitted)
	counter("tlacached_admission_rejections_total", "Submissions rejected by admission control.", snap.Admission.Rejected)
	gauge("tlacached_admission_tokens", "Rate-gate tokens currently available (0 when unlimited).", snap.Admission.Tokens)
	gauge("tlacached_admission_burst", "Rate-gate burst capacity (0 when unlimited).", snap.Admission.Burst)
	gauge("tlacached_queue_depth", "Jobs queued or running.", float64(snap.Admission.InFlight))
	gauge("tlacached_queue_limit", "Admission in-flight bound (0 = unbounded).", float64(snap.Admission.Limit))

	gauge("tlacached_jobs_active", "Jobs in the in-flight registry.", float64(snap.ActiveJobs))
	draining := 0.0
	if snap.Draining {
		draining = 1
	}
	gauge("tlacached_draining", "1 while the daemon drains for shutdown.", draining)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, b.String()) //nolint:errcheck // client gone; nothing to do
}

// expvar registration: Publish panics on a duplicate name, so the
// Func is registered exactly once per process and reads through an
// atomic pointer — repeated PublishExpvars calls (daemon restarts in
// tests) just swap which server the published Func reads.
var (
	expvarOnce   sync.Once
	expvarServer atomic.Pointer[Server]
)

// PublishExpvars exposes s's live StatsSnapshot under the expvar name
// "tlacached", so a -debug-addr introspection listener's /debug/vars
// shows daemon counters next to the runtime's memstats.
func PublishExpvars(s *Server) {
	expvarServer.Store(s)
	expvarOnce.Do(func() {
		expvar.Publish("tlacached", expvar.Func(func() any {
			srv := expvarServer.Load()
			if srv == nil {
				return nil
			}
			return srv.statsSnapshot()
		}))
	})
}

// Package cache is the daemon's two-tier content-addressed result
// store, the tiered-cache idiom of the ORAM `Cached` exemplar applied
// to simulation manifests: a small in-memory LRU front absorbs the hot
// repeated requests of an active sweep, and an on-disk tier of
// checksummed entries persists every result across restarts.
// Writes go through to disk immediately (a result costs seconds of
// simulation to recompute and bytes to store, so durability beats
// write-back batching); reads promote disk hits into the LRU front.
//
// Disk entries carry their own key and a SHA-256 of the payload, so a
// truncated or bit-flipped file is detected on read, quarantined to a
// .corrupt sibling for post-mortem, and treated as a miss — the entry
// is then recomputed and rewritten, never served corrupt.
package cache

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// DefaultMemEntries bounds the in-memory front when Config.MemEntries
// is zero.
const DefaultMemEntries = 256

// Config parameterises a cache.
type Config struct {
	// Dir is the on-disk tier's directory, created on first use. An
	// empty Dir disables the disk tier (memory-only cache).
	Dir string
	// MemEntries bounds the in-memory LRU front (default
	// DefaultMemEntries). Negative disables the memory tier.
	MemEntries int
}

// Stats counts cache outcomes since process start.
type Stats struct {
	MemHits      int64 `json:"mem_hits"`
	DiskHits     int64 `json:"disk_hits"`
	Misses       int64 `json:"misses"`
	Puts         int64 `json:"puts"`
	PutErrors    int64 `json:"put_errors"`
	Quarantined  int64 `json:"quarantined"`
	MemEvictions int64 `json:"mem_evictions"`
	MemEntries   int   `json:"mem_entries"`
}

// Cache is the two-tier store. It is goroutine-safe; the zero value is
// not usable — call New.
type Cache struct {
	dir        string
	memEntries int

	mu    sync.Mutex
	lru   *list.List // front = most recent; values are *memEntry
	index map[string]*list.Element
	stats Stats
}

type memEntry struct {
	key  string
	data []byte
}

// New builds a cache, creating the disk directory eagerly so
// misconfiguration (unwritable path) fails at startup, not mid-run.
func New(cfg Config) (*Cache, error) {
	if cfg.MemEntries == 0 {
		cfg.MemEntries = DefaultMemEntries
	}
	if cfg.Dir == "" && cfg.MemEntries < 0 {
		return nil, fmt.Errorf("cache: memory tier disabled and no disk directory; such a cache can never serve a result")
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: creating %s: %w", cfg.Dir, err)
		}
	}
	return &Cache{
		dir:        cfg.Dir,
		memEntries: cfg.MemEntries,
		lru:        list.New(),
		index:      make(map[string]*list.Element),
	}, nil
}

// header is the first line of an on-disk entry; the payload bytes
// follow it verbatim after a single newline. Embedding the payload
// raw — instead of inside a JSON envelope, which encoding/json would
// re-compact — keeps a cache hit byte-identical to the manifest
// originally stored.
type header struct {
	Key    string `json:"key"`
	SHA256 string `json:"sha256"`
}

// Get returns the stored payload for key. The boolean reports a hit;
// the returned slice must not be modified.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		c.lru.MoveToFront(el)
		data := el.Value.(*memEntry).data
		c.stats.MemHits++
		c.mu.Unlock()
		return data, true
	}
	c.mu.Unlock()

	data, ok := c.diskGet(key)
	if !ok {
		c.mu.Lock()
		c.stats.Misses++
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Lock()
	c.stats.DiskHits++
	c.mu.Unlock()
	c.memPut(key, data)
	return data, true
}

// Put stores the payload under key in both tiers. Storing is
// best-effort durable: a disk write failure is returned but the
// memory tier still holds the entry, so the daemon keeps serving.
func (c *Cache) Put(key string, data []byte) error {
	c.mu.Lock()
	c.stats.Puts++
	c.mu.Unlock()
	c.memPut(key, data)
	if err := c.diskPut(key, data); err != nil {
		c.mu.Lock()
		c.stats.PutErrors++
		c.mu.Unlock()
		return err
	}
	return nil
}

// memPut inserts into the LRU front, evicting the coldest entry past
// capacity.
func (c *Cache) memPut(key string, data []byte) {
	if c.memEntries < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*memEntry).data = data
		return
	}
	c.index[key] = c.lru.PushFront(&memEntry{key: key, data: data})
	for c.lru.Len() > c.memEntries {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.index, back.Value.(*memEntry).key)
		c.stats.MemEvictions++
	}
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.MemEntries = c.lru.Len()
	return s
}

// path maps a key to its disk file. Keys are "v1:<hex>"; the colon is
// replaced so names stay portable.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, strings.ReplaceAll(key, ":", "-")+".entry")
}

// filenameSafe reports whether key maps to a single file name inside
// the cache directory. Keys the daemon generates (service.Key) always
// pass; the check is defence in depth so a hostile key can never
// become a relative ("../x") or absolute path once joined — the HTTP
// layer's stricter ValidKey gate is the first line.
func filenameSafe(key string) bool {
	if key == "" {
		return false
	}
	for i := 0; i < len(key); i++ {
		switch c := key[i]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == ':', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// diskGet reads and validates a disk entry. Any defect — unreadable
// JSON, wrong key, checksum mismatch — quarantines the file and
// reports a miss, so a corrupt entry is re-simulated, never served.
// An unsafe key is a plain miss: it touches no file at all.
func (c *Cache) diskGet(key string) ([]byte, bool) {
	if c.dir == "" || !filenameSafe(key) {
		return nil, false
	}
	path := c.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		c.quarantine(path)
		return nil, false
	}
	var hdr header
	if err := json.Unmarshal(raw[:nl], &hdr); err != nil {
		c.quarantine(path)
		return nil, false
	}
	payload := raw[nl+1:]
	sum := sha256.Sum256(payload)
	if hdr.Key != key || hdr.SHA256 != hex.EncodeToString(sum[:]) {
		c.quarantine(path)
		return nil, false
	}
	return payload, true
}

// diskPut writes the checksummed entry atomically (temp file +
// rename) so a crash mid-write can only leave a quarantinable temp,
// never a half-written entry under the real name.
func (c *Cache) diskPut(key string, data []byte) error {
	if c.dir == "" {
		return nil
	}
	if !filenameSafe(key) {
		return fmt.Errorf("cache: key %q is not filename-safe", key)
	}
	sum := sha256.Sum256(data)
	hdrRaw, err := json.Marshal(header{Key: key, SHA256: hex.EncodeToString(sum[:])})
	if err != nil {
		return fmt.Errorf("cache: encoding entry %s: %w", key, err)
	}
	raw := append(append(hdrRaw, '\n'), data...)
	path := c.path(key)
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: closing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: installing %s: %w", path, err)
	}
	return nil
}

// quarantine moves a defective entry aside (overwriting any previous
// quarantine of the same entry) and counts it.
func (c *Cache) quarantine(path string) {
	os.Rename(path, path+".corrupt") //nolint:errcheck // best effort; next Put overwrites anyway
	c.mu.Lock()
	c.stats.Quarantined++
	c.mu.Unlock()
}

package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func newTest(t *testing.T, mem int) *Cache {
	t.Helper()
	c, err := New(Config{Dir: t.TempDir(), MemEntries: mem})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPutGetBothTiers(t *testing.T) {
	c := newTest(t, 4)
	payload := []byte("{\n  \"x\": 1\n}\n")
	if err := c.Put("v1:aa", payload); err != nil {
		t.Fatal(err)
	}

	got, ok := c.Get("v1:aa")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("memory get = %q, %v", got, ok)
	}

	// A second cache over the same directory must hit via disk and
	// return byte-identical payload.
	c2, err := New(Config{Dir: c.dir, MemEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, ok = c2.Get("v1:aa")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("disk get = %q, %v", got, ok)
	}
	s := c2.Stats()
	if s.DiskHits != 1 || s.MemHits != 0 {
		t.Errorf("stats after disk hit: %+v", s)
	}
	// The disk hit was promoted into the memory front.
	if _, ok := c2.Get("v1:aa"); !ok {
		t.Fatal("promoted entry missing")
	}
	if s := c2.Stats(); s.MemHits != 1 {
		t.Errorf("stats after promote: %+v", s)
	}
}

func TestMiss(t *testing.T) {
	c := newTest(t, 4)
	if _, ok := c.Get("v1:nope"); ok {
		t.Fatal("unexpected hit")
	}
	if s := c.Stats(); s.Misses != 1 {
		t.Errorf("stats: %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c, err := New(Config{MemEntries: 2}) // memory-only
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("v1:%d", i), []byte(fmt.Sprintf("%d", i))) //nolint:errcheck
	}
	if _, ok := c.Get("v1:0"); ok {
		t.Error("coldest entry not evicted")
	}
	for _, k := range []string{"v1:1", "v1:2"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted early", k)
		}
	}
	if s := c.Stats(); s.MemEntries != 2 {
		t.Errorf("mem entries %d, want 2", s.MemEntries)
	}
}

// Corrupt disk entries — truncated, garbage, wrong key, flipped
// payload bit — must read as misses, be quarantined, and be healed by
// the following Put.
func TestCorruptionQuarantine(t *testing.T) {
	corruptions := map[string]func(path string, raw []byte) []byte{
		"truncated": func(_ string, raw []byte) []byte { return raw[:len(raw)/2] },
		"garbage":   func(_ string, _ []byte) []byte { return []byte("not json at all") },
		"bitflip": func(_ string, raw []byte) []byte {
			flipped := bytes.Replace(raw, []byte("payload"), []byte("paYload"), 1)
			return flipped
		},
		"wrong-key": func(_ string, raw []byte) []byte {
			return bytes.Replace(raw, []byte("v1:aa"), []byte("v1:ab"), 1)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			c := newTest(t, -1) // disk-only: force every Get through the disk path
			payload := []byte(`{"v":"payload"}`)
			if err := c.Put("v1:aa", payload); err != nil {
				t.Fatal(err)
			}
			path := c.path("v1:aa")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(path, raw), 0o644); err != nil {
				t.Fatal(err)
			}

			if _, ok := c.Get("v1:aa"); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if s := c.Stats(); s.Quarantined != 1 {
				t.Errorf("stats: %+v", s)
			}
			if _, err := os.Stat(path + ".corrupt"); err != nil {
				t.Errorf("quarantine file missing: %v", err)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("corrupt entry still in place: %v", err)
			}

			// Healing: re-store and read back clean.
			if err := c.Put("v1:aa", payload); err != nil {
				t.Fatal(err)
			}
			got, ok := c.Get("v1:aa")
			if !ok || !bytes.Equal(got, payload) {
				t.Fatalf("healed get = %q, %v", got, ok)
			}
		})
	}
}

// A key carrying path separators must never touch a file outside the
// cache directory: Get is a plain miss (no quarantine rename of the
// target), Put refuses to write.
func TestUnsafeKeyIsolated(t *testing.T) {
	base := t.TempDir()
	c, err := New(Config{Dir: filepath.Join(base, "cache"), MemEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	// path("../victim") would resolve to base/victim.entry — plant a
	// file there and prove the cache never reads, renames, or writes it.
	victim := filepath.Join(base, "victim.entry")
	if err := os.WriteFile(victim, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"../victim", "..", "a/b", `a\b`, "/abs", ""} {
		if _, ok := c.Get(key); ok {
			t.Errorf("Get(%q) hit", key)
		}
		if err := c.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) succeeded", key)
		}
	}
	if got, err := os.ReadFile(victim); err != nil || string(got) != "precious" {
		t.Errorf("victim file touched: %q, %v", got, err)
	}
	if _, err := os.Stat(victim + ".corrupt"); !os.IsNotExist(err) {
		t.Error("victim file quarantined")
	}
	if s := c.Stats(); s.Quarantined != 0 {
		t.Errorf("stats: %+v", s)
	}
}

// A cache with the memory tier disabled and no disk directory can
// never serve anything; New must refuse to build it.
func TestNewRejectsNoTiers(t *testing.T) {
	if _, err := New(Config{MemEntries: -1}); err == nil {
		t.Fatal("New accepted a cache with no tiers")
	}
}

func TestDiskDisabled(t *testing.T) {
	c, err := New(Config{MemEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("v1:x", []byte(`"p"`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("v1:x"); !ok {
		t.Fatal("memory-only get failed")
	}
}

func TestPathIsPortable(t *testing.T) {
	c := newTest(t, 1)
	p := c.path("v1:abc")
	if strings.ContainsRune(filepath.Base(p), ':') {
		t.Errorf("path %q keeps the colon", p)
	}
}

// N concurrent GetOrCompute calls for one key must run compute exactly
// once and all receive the identical payload.
func TestSingleFlightCoalescing(t *testing.T) {
	c := newTest(t, 4)
	var g Group
	const n = 16
	var computes int32
	gate := make(chan struct{})

	var wg sync.WaitGroup
	results := make([][]byte, n)
	hits := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, hit, err := c.GetOrCompute(&g, "v1:k", func() ([]byte, error) {
				atomic.AddInt32(&computes, 1)
				<-gate // hold the leader so every waiter truly coalesces
				return []byte(`"result"`), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], hits[i] = data, hit
		}(i)
	}
	close(gate)
	wg.Wait()

	if got := atomic.LoadInt32(&computes); got != 1 {
		t.Errorf("compute ran %d times, want 1", got)
	}
	leaders := 0
	for i := range results {
		if !bytes.Equal(results[i], []byte(`"result"`)) {
			t.Errorf("caller %d got %q", i, results[i])
		}
		if !hits[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d callers computed, want exactly 1", leaders)
	}

	// The result was stored: a fresh call is a plain hit.
	data, hit, err := c.GetOrCompute(&g, "v1:k", func() ([]byte, error) {
		t.Error("compute ran on a cached key")
		return nil, nil
	})
	if err != nil || !hit || !bytes.Equal(data, []byte(`"result"`)) {
		t.Errorf("post-flight get = %q hit=%v err=%v", data, hit, err)
	}
}

// A disk-write failure after a successful computation must not fail
// the flight: the payload is still returned (and held by the memory
// tier), with the persistence failure counted in Stats.PutErrors.
func TestGetOrComputePutFailureStillServes(t *testing.T) {
	c := newTest(t, 4)
	// Break the disk tier: replace its directory with a plain file so
	// every CreateTemp under it fails.
	if err := os.RemoveAll(c.dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.dir, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	var g Group
	payload := []byte(`"computed"`)
	data, hit, err := c.GetOrCompute(&g, "v1:pf", func() ([]byte, error) { return payload, nil })
	if err != nil {
		t.Fatalf("compute failed on a disk-write error: %v", err)
	}
	if hit || !bytes.Equal(data, payload) {
		t.Errorf("got %q hit=%v", data, hit)
	}
	if s := c.Stats(); s.PutErrors != 1 {
		t.Errorf("stats: %+v", s)
	}
	// The memory tier still serves the result.
	data, hit, err = c.GetOrCompute(&g, "v1:pf", func() ([]byte, error) {
		t.Error("recomputed despite memory tier")
		return nil, nil
	})
	if err != nil || !hit || !bytes.Equal(data, payload) {
		t.Errorf("post-failure get = %q hit=%v err=%v", data, hit, err)
	}
}

func TestGetOrComputeError(t *testing.T) {
	c := newTest(t, 4)
	var g Group
	wantErr := fmt.Errorf("boom")
	_, _, err := c.GetOrCompute(&g, "v1:e", func() ([]byte, error) { return nil, wantErr })
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	// Errors are not cached: the next call recomputes.
	data, hit, err := c.GetOrCompute(&g, "v1:e", func() ([]byte, error) { return []byte(`"ok"`), nil })
	if err != nil || hit || !bytes.Equal(data, []byte(`"ok"`)) {
		t.Fatalf("retry = %q hit=%v err=%v", data, hit, err)
	}
}

package cache

import "sync"

// Group coalesces concurrent computations of the same key: the first
// caller (the leader) runs fn, every concurrent duplicate blocks until
// the leader finishes and then shares its result. Unlike a cache, a
// Group holds results only while a computation is in flight — pairing
// it with the Cache gives "compute each key at most once at a time"
// on top of "compute each key at most once ever".
type Group struct {
	mu    sync.Mutex
	calls map[string]*call
}

type call struct {
	done chan struct{}
	val  []byte
	err  error
}

// Do runs fn for key unless an identical computation is already in
// flight, in which case it waits for and shares that computation's
// result. The leader return value reports whether this caller ran fn.
func (g *Group) Do(key string, fn func() ([]byte, error)) (val []byte, leader bool, err error) {
	cl, leads := g.join(key)
	if !leads {
		<-cl.done
		return cl.val, false, cl.err
	}
	cl.val, cl.err = fn()
	close(cl.done)
	g.forget(key)
	return cl.val, true, cl.err
}

// join returns key's in-flight call, creating it — and electing the
// caller leader — when none exists.
func (g *Group) join(key string) (*call, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = make(map[string]*call)
	}
	if cl, ok := g.calls[key]; ok {
		return cl, false
	}
	cl := &call{done: make(chan struct{})}
	g.calls[key] = cl
	return cl, true
}

// forget retires a completed flight; the next Do for key starts fresh.
func (g *Group) forget(key string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.calls, key)
}

// GetOrCompute is the cache's single-flight front door: a Get that, on
// miss, computes the payload exactly once per key across concurrent
// callers and stores it in both tiers. hit reports whether the payload
// came without running compute in this call — from a cache tier or
// from a concurrent leader's in-flight computation (coalesced).
func (c *Cache) GetOrCompute(g *Group, key string, compute func() ([]byte, error)) (data []byte, hit bool, err error) {
	if data, ok := c.Get(key); ok {
		return data, true, nil
	}
	computed := false
	data, _, err = g.Do(key, func() ([]byte, error) {
		// Re-check under the flight: a previous leader may have filled
		// the cache between our miss and our turn as leader.
		if data, ok := c.Get(key); ok {
			return data, nil
		}
		computed = true
		data, err := compute()
		if err != nil {
			return nil, err
		}
		// Storing is best-effort durable: the computation succeeded and
		// this flight's waiters (plus the memory tier, when enabled)
		// already have the payload, so a disk-write failure is counted
		// in Stats.PutErrors rather than surfaced as a compute failure.
		c.Put(key, data) //nolint:errcheck
		return data, nil
	})
	if err != nil {
		return nil, false, err
	}
	return data, !computed, nil
}

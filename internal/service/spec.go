// Package service turns the simulator into a shared network service:
// it defines the wire-level job specification accepted by the
// tlacached daemon, the canonical content-address (Key) that makes
// identical requests collapse onto one cached result, and the job
// executor that produces the byte-stable result manifest the cache
// stores.
//
// The soundness of serving a cached manifest instead of re-simulating
// rests on the simulator's determinism contract: a run's MixResult and
// probe summary are pure functions of (machine config, workload,
// policy, seed, budgets) — the exact tuple Key hashes — regardless of
// GOMAXPROCS or scheduling (internal/sim's determinism regression pins
// this). Environment and wall-time fields in the manifest are
// annotations of the original execution, recorded once at fill time.
package service

import (
	"encoding/json"
	"fmt"
	"slices"
	"sort"
	"time"

	"tlacache/internal/cli"
	"tlacache/internal/runner"
	"tlacache/internal/sim"
	"tlacache/internal/telemetry"
	"tlacache/internal/workload"
)

// DefaultInstructions and DefaultWarmup are the per-core budgets a
// JobSpec gets when it leaves them unset, matching tlasim's defaults.
const (
	DefaultInstructions = 1_000_000
	DefaultWarmup       = 1_500_000
)

// JobSpec is one simulation request as submitted to the daemon:
// machine configuration overrides, workload, policy, seed, and
// instruction budgets. The zero value is not submittable — a workload
// (Mix or Apps) is required.
type JobSpec struct {
	// Mix names a Table II mix (MIX_00 … MIX_11). Mutually exclusive
	// with Apps; normalisation resolves it into Apps so both spellings
	// of the same workload share one cache key.
	Mix string `json:"mix,omitempty"`
	// Apps lists benchmark tags, one per core ("sje","lib").
	Apps []string `json:"apps,omitempty"`
	// Policy is an LLC management policy name (cli.PolicyNames);
	// empty means "baseline".
	Policy string `json:"policy,omitempty"`
	// Seed diversifies the synthetic streams; the default 0 is
	// normalised to 1 (the simulator's conventional seed).
	Seed uint64 `json:"seed,omitempty"`
	// Instructions is the per-core measured budget (default 1M).
	Instructions uint64 `json:"instructions,omitempty"`
	// Warmup is the per-core warmup budget; nil means the 1.5M
	// default, an explicit 0 disables warmup.
	Warmup *uint64 `json:"warmup,omitempty"`
	// LLC overrides the LLC size ("1MB", "512KB"); empty keeps the
	// paper's default of 1MB per core.
	LLC string `json:"llc,omitempty"`
	// NoPrefetch disables the stream prefetcher.
	NoPrefetch bool `json:"no_prefetch,omitempty"`
	// Interval, when positive, samples per-core interval telemetry
	// every Interval committed instructions and streams it to event
	// subscribers. It is transport-level observability: samples are
	// not part of the result manifest, so Interval does not enter the
	// cache key.
	Interval uint64 `json:"interval,omitempty"`
}

// Normalize fills defaults and resolves the workload so that every
// spelling of the same request yields the same normalized spec (and
// therefore the same Key): Mix names resolve to their app list, the
// empty policy becomes "baseline", zero budgets take defaults.
func (s JobSpec) Normalize() (JobSpec, error) {
	if s.Mix != "" {
		m, err := cli.ResolveMix(s.Mix)
		if err != nil {
			return s, fmt.Errorf("service: %w", err)
		}
		// Both set is an error unless Apps is exactly the mix's app
		// list — the shape normalisation itself produces, so Normalize
		// stays idempotent and an already-normalized spec re-validates.
		if len(s.Apps) > 0 && !slices.Equal(s.Apps, m.Apps) {
			return s, fmt.Errorf("service: spec sets both mix %q and apps %v", s.Mix, s.Apps)
		}
		s.Apps = m.Apps
		s.Mix = m.Name
	}
	if len(s.Apps) == 0 {
		return s, fmt.Errorf("service: spec names no workload (set mix or apps)")
	}
	for i, a := range s.Apps {
		if _, err := workload.ByName(a); err != nil {
			return s, fmt.Errorf("service: app %d: %w", i, err)
		}
	}
	if s.Policy == "" {
		s.Policy = "baseline"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Instructions == 0 {
		s.Instructions = DefaultInstructions
	}
	if s.Warmup == nil {
		w := uint64(DefaultWarmup)
		s.Warmup = &w
	}
	return s, nil
}

// Resolve builds the full simulator configuration a normalized spec
// describes. It errors on unknown policies or malformed size
// overrides; the returned config has passed sim.Config.Validate.
func (s JobSpec) Resolve() (sim.Config, error) {
	cfg := sim.DefaultConfig(len(s.Apps))
	cfg.Instructions = s.Instructions
	if s.Warmup != nil {
		cfg.Warmup = *s.Warmup
	}
	cfg.Seed = s.Seed
	cfg.Hierarchy.EnablePrefetch = !s.NoPrefetch
	if s.LLC != "" {
		size, err := cli.ParseSize(s.LLC)
		if err != nil {
			return cfg, fmt.Errorf("service: llc: %w", err)
		}
		cfg.Hierarchy.LLCSize = size
	}
	if err := cli.ApplyPolicy(&cfg.Hierarchy, s.Policy); err != nil {
		return cfg, fmt.Errorf("service: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("service: %w", err)
	}
	return cfg, nil
}

// SpecKey normalizes and resolves spec, returning the normalized spec
// and its canonical cache key.
func SpecKey(spec JobSpec) (JobSpec, string, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return spec, "", err
	}
	cfg, err := norm.Resolve()
	if err != nil {
		return norm, "", err
	}
	return norm, Key(cfg, norm.Apps, norm.Policy, norm.Seed), nil
}

// Manifest is the cached result artifact: the normalized request, the
// deterministic simulation result and probe summary, and annotations
// (environment, wall time) of the execution that filled the cache
// entry. Cache hits serve the stored bytes verbatim, so a manifest is
// byte-identical on every hit.
type Manifest struct {
	Key  string  `json:"key"`
	Spec JobSpec `json:"spec"`
	// Result and Telemetry are pure functions of Key (determinism
	// contract; see the package comment).
	Result    sim.MixResult      `json:"result"`
	Telemetry *telemetry.Summary `json:"telemetry,omitempty"`
	// Env and WallSeconds describe the original execution, not the
	// request; they are recorded once when the entry is filled.
	Env         runner.EnvInfo `json:"environment"`
	WallSeconds float64        `json:"wall_seconds"`
	// RequestID identifies the request that filled this entry (cache
	// hits serve the filler's ID — the manifest annotates the original
	// execution, and X-Request-Id on the response names the hit).
	RequestID string `json:"request_id,omitempty"`
	// Phases breaks the filling execution's wall time into daemon
	// phases; set by the daemon, absent when Execute runs standalone.
	Phases *PhaseSpans `json:"phases,omitempty"`
}

// PhaseSpans is the daemon-side decomposition of one executed job's
// wall time, in seconds: how long the job waited for a worker slot,
// how long the submission's cache lookup took, the simulation itself,
// and manifest encoding. Like Env and WallSeconds these annotate the
// execution that filled the cache entry, not the request being served.
type PhaseSpans struct {
	AdmissionWaitSeconds float64 `json:"admission_wait_seconds"`
	CacheLookupSeconds   float64 `json:"cache_lookup_seconds"`
	SimulateSeconds      float64 `json:"simulate_seconds"`
	EncodeSeconds        float64 `json:"encode_seconds"`
}

// EncodeManifest renders m in the canonical stored form: indented
// JSON with a trailing newline. The manifest bytes are part of the
// byte-determinism contract (identical runs re-verify against the
// cached manifest), so this is a detflow sink, and keycover proves
// every Manifest field is marshal-covered or exempted.
//
//tlavet:detsink
//tlavet:keycover Manifest
func EncodeManifest(m Manifest) ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("service: encoding manifest: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeManifest parses stored manifest bytes.
func DecodeManifest(data []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("service: decoding manifest: %w", err)
	}
	return m, nil
}

// Execute runs spec's simulation and returns its manifest. The spec
// must already be normalized (Execute normalizes again defensively —
// normalisation is idempotent). sink, when non-nil, receives interval
// telemetry samples live from the simulation goroutine when
// spec.Interval is positive.
func Execute(spec JobSpec, sink func(telemetry.Sample)) (Manifest, error) {
	norm, key, err := SpecKey(spec)
	if err != nil {
		return Manifest{}, err
	}
	cfg, err := norm.Resolve()
	if err != nil {
		return Manifest{}, err
	}
	rec := telemetry.NewRecorder()
	cfg.Probe = rec
	if norm.Interval > 0 {
		sampler := telemetry.NewSampler(norm.Interval)
		sampler.Sink = sink
		cfg.Sampler = sampler
	}
	mixName := norm.Mix
	if mixName == "" {
		mixName = "custom"
	}
	start := time.Now()
	res, err := sim.RunMix(cfg, workload.Mix{Name: mixName, Apps: norm.Apps})
	if err != nil {
		return Manifest{}, err
	}
	m := Manifest{
		Key:         key,
		Spec:        norm,
		Result:      res,
		Env:         runner.CollectEnv(),
		WallSeconds: time.Since(start).Seconds(),
	}
	if s := rec.Summary(); len(s.Events) > 0 || s.QBSQueryDepth != nil || s.ECIRescueDistance != nil {
		m.Telemetry = &s
	}
	return m, nil
}

// Work returns the spec's total simulated-instruction budget (warmup
// plus measurement across all cores), the quantity the runner's
// observability reports against.
func (s JobSpec) Work() uint64 {
	w := uint64(0)
	if s.Warmup != nil {
		w = *s.Warmup
	}
	return uint64(len(s.Apps)) * (w + s.Instructions)
}

// Mixes returns the names of the predefined Table II mixes, sorted —
// the daemon's /v1/workloads endpoint serves these so clients can
// discover submittable workloads.
func Mixes() []string {
	ms := workload.TableIIMixes()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name
	}
	sort.Strings(names)
	return names
}

package service

import (
	"reflect"
	"strings"
	"testing"

	"tlacache/internal/cpu"
	"tlacache/internal/hierarchy"
	"tlacache/internal/prefetch"
	"tlacache/internal/sim"
	"tlacache/internal/telemetry"
)

// goldenKeys pins the canonical hash of known requests. If this test
// fails without an intentional schema change, the Key function has
// drifted and would silently orphan (or worse, misattribute) every
// existing cache entry; if the change is intentional, bump KeyVersion
// and repin.
func TestKeyGolden(t *testing.T) {
	base := sim.DefaultConfig(2)
	qbs := base
	qbs.Hierarchy.TLA = hierarchy.TLAQBS
	qbs.Hierarchy.QBSProbe = hierarchy.AllCaches

	cases := []struct {
		name   string
		cfg    sim.Config
		apps   []string
		policy string
		seed   uint64
		want   string
	}{
		{"baseline", base, []string{"sje", "lib"}, "baseline", 1,
			"v1:a40d2a2800531413bdeb6d628cbec72b24cd27a7ce09f5a0fec48733297ad071"},
		{"qbs-seed7", qbs, []string{"sje", "lib"}, "qbs", 7,
			"v1:a00b9ef154ba559d540b19f453c579de8ba042f43ff1be36006fc679d608da23"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Key(tc.cfg, tc.apps, tc.policy, tc.seed)
			if got != tc.want {
				t.Errorf("Key drifted:\n got %s\nwant %s\ncanonical: %s",
					got, tc.want, canonical(tc.cfg, tc.apps, tc.policy, tc.seed))
			}
		})
	}
}

// TestKeyCanonicalGolden pins the pre-hash canonical string so a
// drifted hash is debuggable from the test failure alone.
func TestKeyCanonicalGolden(t *testing.T) {
	got := canonical(sim.DefaultConfig(2), []string{"sje", "lib"}, "baseline", 1)
	want := "v1|apps=sje,lib|policy=baseline|seed=1|instr=2000000|warmup=1000000" +
		"|cores=2|line=64|l1i=32768/4|l1d=32768/4|l2=262144/8|llc=2097152/16" +
		"|pol=0,0,1|incl=0|tla=0|tlh=3/1000|qbs=7/0/false|l2incl=false/false" +
		"|pf=false/0/0/0/0|vc=0|bcast=false|banks=0/0|lat=1,10,24,150|cpu=4/128/32"
	if got != want {
		t.Errorf("canonical form drifted:\n got %s\nwant %s", got, want)
	}
}

// TestKeyCoversConfig pins the field counts of every config struct the
// canonical form renders. Adding a field to any of them fails here
// loudly: decide whether the field affects simulation results (add it
// to canonical and bump KeyVersion) or is an observer (document it in
// the exclusion list below), then update the pinned count.
func TestKeyCoversConfig(t *testing.T) {
	// sim.Config exclusions: Probe, Sampler, DecisionTracer,
	// InvariantEvery, AuditEvery — observers that cannot change
	// results — and Epoch, the interleave burst length, which is
	// result-invariant by construction (TestEpochInvariance pins
	// Epoch=1 against the default byte-for-byte).
	for _, tc := range []struct {
		name   string
		typ    reflect.Type
		fields int
	}{
		{"sim.Config", reflect.TypeOf(sim.Config{}), 11},
		{"hierarchy.Config", reflect.TypeOf(hierarchy.Config{}), 29},
		{"hierarchy.Latencies", reflect.TypeOf(hierarchy.Latencies{}), 4},
		{"cpu.Config", reflect.TypeOf(cpu.Config{}), 3},
		{"prefetch.Config", reflect.TypeOf(prefetch.Config{}), 4},
	} {
		if got := tc.typ.NumField(); got != tc.fields {
			t.Errorf("%s now has %d fields (canonical form covers %d): "+
				"add the new field to service.canonical (bumping KeyVersion) "+
				"or record it as an observer exclusion, then repin",
				tc.name, got, tc.fields)
		}
	}
}

// Distinct requests must produce distinct keys: every axis the
// canonical form encodes has to perturb the hash.
func TestKeySensitivity(t *testing.T) {
	base := sim.DefaultConfig(2)
	apps := []string{"sje", "lib"}
	ref := Key(base, apps, "baseline", 1)

	perturb := map[string]string{}
	add := func(name, key string) {
		if key == ref {
			t.Errorf("%s did not change the key", name)
		}
		if prev, ok := perturb[key]; ok {
			t.Errorf("%s collides with %s", name, prev)
		}
		perturb[key] = name
	}

	add("seed", Key(base, apps, "baseline", 2))
	add("policy-name", Key(base, apps, "qbs", 1))
	add("apps", Key(base, []string{"lib", "sje"}, "baseline", 1))

	c := base
	c.Instructions++
	add("instructions", Key(c, apps, "baseline", 1))
	c = base
	c.Warmup++
	add("warmup", Key(c, apps, "baseline", 1))
	c = base
	c.Hierarchy.LLCSize *= 2
	add("llc-size", Key(c, apps, "baseline", 1))
	c = base
	c.Hierarchy.TLA = hierarchy.TLAECI
	add("tla", Key(c, apps, "baseline", 1))
	c = base
	c.Hierarchy.EnablePrefetch = !c.Hierarchy.EnablePrefetch
	add("prefetch", Key(c, apps, "baseline", 1))
	c = base
	c.CPU.ROB *= 2
	add("rob", Key(c, apps, "baseline", 1))
	c = base
	c.Hierarchy.Latency.Memory++
	add("latency", Key(c, apps, "baseline", 1))
}

// Observer fields must NOT perturb the key — they are excluded from
// the canonical form by design.
func TestKeyIgnoresObservers(t *testing.T) {
	base := sim.DefaultConfig(2)
	apps := []string{"sje", "lib"}
	ref := Key(base, apps, "baseline", 1)

	c := base
	c.AuditEvery = 1000
	c.InvariantEvery = 500
	c.DecisionTracer = &telemetry.DecisionLog{}
	if got := Key(c, apps, "baseline", 1); got != ref {
		t.Errorf("audit/invariant/tracer observers changed the key: %s != %s", got, ref)
	}
}

func TestKeyShape(t *testing.T) {
	k := Key(sim.DefaultConfig(2), []string{"sje", "lib"}, "baseline", 1)
	if !strings.HasPrefix(k, KeyVersion+":") {
		t.Errorf("key %q lacks the %s: version prefix", k, KeyVersion)
	}
	if len(k) != len(KeyVersion)+1+64 {
		t.Errorf("key %q is not a %s-prefixed hex SHA-256", k, KeyVersion)
	}
}

// ValidKey must accept exactly what Key produces and nothing that
// could name a file path — it is the HTTP layer's traversal gate.
func TestValidKey(t *testing.T) {
	if k := Key(sim.DefaultConfig(2), []string{"sje", "lib"}, "baseline", 1); !ValidKey(k) {
		t.Errorf("ValidKey rejects Key output %q", k)
	}
	hex64 := strings.Repeat("0f", 32)
	for _, bad := range []string{
		"",
		"v1:",
		"v1:deadbeef",                         // too short
		"v2:" + hex64,                         // wrong version
		hex64,                                 // no prefix
		"v1:" + strings.Repeat("0F", 32),      // uppercase hex
		"v1:" + strings.Repeat("0g", 32),      // non-hex
		"v1:" + hex64 + "0",                   // too long
		"../../etc/passwd",                    // traversal
		"v1:../" + hex64[:len(hex64)-3],       // traversal, right length
		"/etc/passwd",                         // absolute
		"v1:" + hex64[:len(hex64)-1] + "\x00", // NUL
	} {
		if ValidKey(bad) {
			t.Errorf("ValidKey accepts %q", bad)
		}
	}
}

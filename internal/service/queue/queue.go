// Package queue is the daemon's admission-control layer: a token
// bucket bounds the rate at which new simulations may be admitted
// (absorbing short bursts up to its capacity), and a bounded in-flight
// count caps how much work may be queued or running at once. A request
// that fails either gate is rejected immediately with a Retry-After
// estimate — the daemon answers 429 rather than queueing without
// bound, so overload degrades into client backpressure instead of
// memory growth and unbounded latency.
package queue

import (
	"sync"
	"time"
)

// TokenBucket is a classic rate limiter: capacity `burst` tokens,
// refilled continuously at `rate` tokens per second. It is
// goroutine-safe. The clock is injectable for tests.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 disables limiting
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewTokenBucket builds a bucket starting full. rate <= 0 disables
// rate limiting (Take always succeeds). now defaults to time.Now.
func NewTokenBucket(rate, burst float64, now func() time.Time) *TokenBucket {
	if now == nil {
		now = time.Now
	}
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: now(), now: now}
}

// Take consumes one token if available. When the bucket is empty it
// reports how long until the next token accrues — the Retry-After a
// rejected client should honour.
func (b *TokenBucket) Take() (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rate <= 0 {
		return true, 0
	}
	t := b.now()
	b.tokens += t.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = t
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	d := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	if d <= 0 {
		// At high refill rates the deficit repays in under a
		// nanosecond and the conversion truncates to zero — a
		// rejection whose Retry-After tells the client to hammer
		// immediately. Report the smallest positive wait instead; the
		// HTTP layer rounds whole seconds up from it (retrySeconds).
		d = time.Nanosecond
	}
	return false, d
}

// Burst reports the bucket's capacity; 0 for a nil bucket.
func (b *TokenBucket) Burst() float64 {
	if b == nil {
		return 0
	}
	return b.burst
}

// Tokens reports the current (refilled) token count, for stats.
func (b *TokenBucket) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rate <= 0 {
		return b.burst
	}
	t := b.now()
	b.tokens += t.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = t
	return b.tokens
}

// DefaultRetryAfter is the backoff suggested when admission fails on
// the in-flight bound (as opposed to the rate gate, which can compute
// its own): one in-flight slot usually frees within a simulation's
// runtime, a few seconds.
const DefaultRetryAfter = time.Second

// Stats counts admission outcomes. Tokens and Burst expose the rate
// gate's live state (both 0 when no bucket is configured): Burst-Tokens
// is the current token deficit, the headroom overload monitoring wants.
type Stats struct {
	Admitted  int64   `json:"admitted"`
	Rejected  int64   `json:"rejected"`
	InFlight  int     `json:"in_flight"`
	Limit     int     `json:"limit"`
	RateLimit bool    `json:"rate_limited_last,omitempty"`
	Tokens    float64 `json:"tokens"`
	Burst     float64 `json:"burst"`
}

// Admission combines the two gates. It is goroutine-safe.
type Admission struct {
	bucket *TokenBucket

	mu       sync.Mutex
	limit    int
	inFlight int
	admitted int64
	rejected int64
	lastRate bool
}

// NewAdmission bounds concurrent work (queued + running) to limit;
// limit <= 0 means unbounded. bucket may be nil for no rate gate.
func NewAdmission(limit int, bucket *TokenBucket) *Admission {
	return &Admission{limit: limit, bucket: bucket}
}

// Admit applies both gates: the in-flight bound first (a full queue
// must not burn rate tokens), then the token bucket. On success it
// returns an idempotent release function the caller must invoke when
// the admitted work finishes. On rejection it returns ok=false and
// the Retry-After clients should wait before resubmitting.
//
// The bucket is consulted while a.mu is held; the nesting is safe
// because TokenBucket never calls back into Admission.
func (a *Admission) Admit() (release func(), retryAfter time.Duration, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.limit > 0 && a.inFlight >= a.limit {
		a.rejected++
		a.lastRate = false
		return nil, DefaultRetryAfter, false
	}
	if took, retry := a.bucket.Take(); !took {
		a.rejected++
		a.lastRate = true
		return nil, retry, false
	}
	a.inFlight++
	a.admitted++
	return a.releaseFunc(), 0, true
}

// releaseFunc mints the idempotent in-flight decrement for one
// admitted unit of work.
func (a *Admission) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.inFlight--
			a.mu.Unlock()
		})
	}
}

// Stats snapshots the admission counters.
func (a *Admission) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{
		Admitted:  a.admitted,
		Rejected:  a.rejected,
		InFlight:  a.inFlight,
		Limit:     a.limit,
		RateLimit: a.lastRate,
		Tokens:    a.bucket.Tokens(),
		Burst:     a.bucket.Burst(),
	}
}

package queue

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for deterministic refill
// timing tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

func TestTokenBucketStartsFull(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(1, 3, clk.now)
	for i := 0; i < 3; i++ {
		if ok, _ := b.Take(); !ok {
			t.Fatalf("take %d failed on a full bucket", i)
		}
	}
	if ok, retry := b.Take(); ok || retry <= 0 {
		t.Fatalf("empty bucket: ok=%v retry=%v", ok, retry)
	}
}

// Tokens must accrue at exactly `rate` per second of (fake) wall time
// and never exceed burst.
func TestTokenBucketRefillTiming(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(2, 4, clk.now) // 2 tokens/s, burst 4
	for i := 0; i < 4; i++ {
		if ok, _ := b.Take(); !ok {
			t.Fatalf("draining take %d failed", i)
		}
	}
	if ok, _ := b.Take(); ok {
		t.Fatal("bucket should be empty")
	}

	// 250ms at 2/s refills half a token: still rejected, and the
	// Retry-After shrinks to the remaining quarter second.
	clk.advance(250 * time.Millisecond)
	if ok, retry := b.Take(); ok {
		t.Fatal("half a token should not admit")
	} else if retry != 250*time.Millisecond {
		t.Errorf("retry = %v, want 250ms", retry)
	}

	// The remaining 250ms completes one token.
	clk.advance(250 * time.Millisecond)
	if ok, _ := b.Take(); !ok {
		t.Fatal("one full second of refill should admit exactly once")
	}
	if ok, _ := b.Take(); ok {
		t.Fatal("second take should fail — only one token accrued")
	}

	// 3 seconds accrues 6 tokens but caps at burst (4).
	clk.advance(3 * time.Second)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := b.Take(); ok {
			admitted++
		}
	}
	if admitted != 4 {
		t.Errorf("after long idle admitted %d, want burst cap 4", admitted)
	}
}

func TestTokenBucketRetryAfter(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(0.5, 1, clk.now) // one token per 2s
	if ok, _ := b.Take(); !ok {
		t.Fatal("initial token missing")
	}
	_, retry := b.Take()
	if retry != 2*time.Second {
		t.Errorf("retry = %v, want 2s", retry)
	}
	clk.advance(1500 * time.Millisecond)
	_, retry = b.Take()
	if retry != 500*time.Millisecond {
		t.Errorf("retry after partial refill = %v, want 500ms", retry)
	}
}

func TestTokenBucketDisabled(t *testing.T) {
	b := NewTokenBucket(0, 1, newFakeClock().now)
	for i := 0; i < 100; i++ {
		if ok, _ := b.Take(); !ok {
			t.Fatal("rate<=0 must never limit")
		}
	}
	var nilBucket *TokenBucket
	if ok, _ := nilBucket.Take(); !ok {
		t.Fatal("nil bucket must admit")
	}
}

func TestTokensReporting(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(1, 2, clk.now)
	if got := b.Tokens(); got != 2 {
		t.Errorf("full bucket reports %f", got)
	}
	b.Take() //nolint:errcheck
	clk.advance(500 * time.Millisecond)
	if got := b.Tokens(); got != 1.5 {
		t.Errorf("tokens = %f, want 1.5", got)
	}
}

// The in-flight bound: limit admissions stay admitted until released,
// the limit+1st is rejected with DefaultRetryAfter, and releasing one
// slot re-opens admission.
func TestAdmissionQueueFull(t *testing.T) {
	a := NewAdmission(2, nil)
	rel1, _, ok := a.Admit()
	if !ok {
		t.Fatal("first admit rejected")
	}
	_, _, ok = a.Admit()
	if !ok {
		t.Fatal("second admit rejected")
	}
	_, retry, ok := a.Admit()
	if ok {
		t.Fatal("third admit should hit the bound")
	}
	if retry != DefaultRetryAfter {
		t.Errorf("retry = %v, want %v", retry, DefaultRetryAfter)
	}
	s := a.Stats()
	if s.InFlight != 2 || s.Admitted != 2 || s.Rejected != 1 {
		t.Errorf("stats: %+v", s)
	}

	rel1()
	rel1() // idempotent: must not double-decrement
	if s := a.Stats(); s.InFlight != 1 {
		t.Errorf("in-flight after release = %d, want 1", s.InFlight)
	}
	if _, _, ok := a.Admit(); !ok {
		t.Fatal("freed slot not re-admitted")
	}
}

// A full queue must reject before consuming rate tokens, so waiting
// clients are not double-penalised.
func TestAdmissionBoundBeforeRate(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(1, 1, clk.now)
	a := NewAdmission(1, b)
	if _, _, ok := a.Admit(); !ok {
		t.Fatal("first admit rejected")
	}
	if _, _, ok := a.Admit(); ok {
		t.Fatal("bound not enforced")
	}
	if got := b.Tokens(); got != 0 {
		t.Errorf("bound rejection burned a token: %f left, want 0", got)
	}
}

func TestAdmissionRateGate(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(1, 1, clk.now)
	a := NewAdmission(0, b) // unbounded in-flight; rate gate only
	if _, _, ok := a.Admit(); !ok {
		t.Fatal("token available but rejected")
	}
	_, retry, ok := a.Admit()
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry != time.Second {
		t.Errorf("retry = %v, want 1s", retry)
	}
	if s := a.Stats(); !s.RateLimit {
		t.Errorf("last rejection not attributed to the rate gate: %+v", s)
	}
	clk.advance(time.Second)
	if _, _, ok := a.Admit(); !ok {
		t.Fatal("refilled token rejected")
	}
}

func TestAdmissionUnlimited(t *testing.T) {
	a := NewAdmission(0, nil)
	for i := 0; i < 50; i++ {
		if _, _, ok := a.Admit(); !ok {
			t.Fatalf("unlimited admission rejected at %d", i)
		}
	}
	if s := a.Stats(); s.InFlight != 50 || s.Limit != 0 {
		t.Errorf("stats: %+v", s)
	}
}

func TestAdmissionConcurrent(t *testing.T) {
	a := NewAdmission(8, nil)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if rel, _, ok := a.Admit(); ok {
				rel()
			}
		}()
	}
	wg.Wait()
	if s := a.Stats(); s.InFlight != 0 {
		t.Errorf("in-flight after all released = %d", s.InFlight)
	}
}

// A rejection must never carry a zero Retry-After: at high refill
// rates the token deficit repays in under a nanosecond, and before the
// clamp the duration conversion truncated that to 0 — "rejected, retry
// with no delay", inviting a hot retry loop at exactly the moment the
// limiter is shedding load.
func TestTakeRetryAfterAlwaysPositive(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(1e10, 1, clk.now)
	if ok, _ := b.Take(); !ok {
		t.Fatal("full bucket rejected the first take")
	}
	// Same instant: no refill, deficit = 1 token = 100ps at this rate.
	ok, retry := b.Take()
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry <= 0 {
		t.Fatalf("rejection with retry = %v; Retry-After must be positive", retry)
	}
	// The gates compose: Admission must relay the clamped value too.
	a := NewAdmission(0, b)
	if rel, retry, ok := a.Admit(); ok {
		rel()
		t.Fatal("admission over an empty bucket succeeded")
	} else if retry <= 0 {
		t.Fatalf("admission rejection with retry = %v", retry)
	}
}

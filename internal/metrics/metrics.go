// Package metrics provides the performance metrics the paper reports:
// throughput (sum of IPCs), weighted speedup, harmonic-mean fairness,
// misses per kilo-instruction, geometric means over workload sets, and
// the sorted "s-curves" of Figures 5–8.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Throughput is the sum of per-core IPCs, the paper's primary metric
// (its footnote 5 notes weighted speedup and hmean-fairness track it).
func Throughput(ipcs []float64) float64 {
	sum := 0.0
	for _, v := range ipcs {
		sum += v
	}
	return sum
}

// WeightedSpeedup sums each application's IPC in the mix relative to
// its isolated IPC.
func WeightedSpeedup(mix, alone []float64) (float64, error) {
	if len(mix) != len(alone) {
		return 0, fmt.Errorf("metrics: weighted speedup needs equal lengths, got %d and %d", len(mix), len(alone))
	}
	sum := 0.0
	for i := range mix {
		if alone[i] <= 0 {
			return 0, fmt.Errorf("metrics: isolated IPC %d is %v", i, alone[i])
		}
		sum += mix[i] / alone[i]
	}
	return sum, nil
}

// HmeanFairness is the harmonic mean of per-application speedups, the
// balance-sensitive companion metric.
func HmeanFairness(mix, alone []float64) (float64, error) {
	if len(mix) != len(alone) {
		return 0, fmt.Errorf("metrics: hmean fairness needs equal lengths, got %d and %d", len(mix), len(alone))
	}
	sum := 0.0
	for i := range mix {
		if mix[i] <= 0 {
			return 0, fmt.Errorf("metrics: mix IPC %d is %v", i, mix[i])
		}
		sum += alone[i] / mix[i]
	}
	if sum <= 0 {
		return 0, fmt.Errorf("metrics: degenerate fairness denominator")
	}
	return float64(len(mix)) / sum, nil
}

// Geomean returns the geometric mean of xs; it errors on empty input or
// non-positive values (a zero would silence every other measurement).
func Geomean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("metrics: geomean of no values")
	}
	logSum := 0.0
	for i, v := range xs {
		// NaN compares false against everything, so it needs its own
		// check or it would sail through and poison the whole mean.
		if math.IsNaN(v) || v <= 0 {
			return 0, fmt.Errorf("metrics: geomean input %d is %v", i, v)
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// MPKI converts a miss count to misses per thousand instructions.
func MPKI(misses, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(misses) * 1000 / float64(instructions)
}

// SCurve returns vals sorted ascending (a copy), the presentation used
// by the paper's per-workload overview plots.
func SCurve(vals []float64) []float64 {
	out := append([]float64(nil), vals...)
	sort.Float64s(out)
	return out
}

// SCurveBy sorts a copy of vals by the parallel key slice (ascending),
// used when one policy's s-curve orders the x-axis for the others
// (Figure 5 sorts by the non-inclusive speedup).
func SCurveBy(vals, keys []float64) ([]float64, error) {
	if len(vals) != len(keys) {
		return nil, fmt.Errorf("metrics: SCurveBy needs equal lengths, got %d and %d", len(vals), len(keys))
	}
	for i, k := range keys {
		// A NaN key has no place in a total order: sort would produce
		// an arbitrary, run-dependent permutation.
		if math.IsNaN(k) {
			return nil, fmt.Errorf("metrics: SCurveBy key %d is NaN", i)
		}
	}
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([]float64, len(vals))
	for i, j := range idx {
		out[i] = vals[j]
	}
	return out, nil
}

// GapBridged reports what fraction of the gap between a baseline and a
// target a policy closes: (policy-base)/(target-base). The paper uses
// it for "TLH-L1 bridges 85% of the gap between inclusive and
// non-inclusive caches". Returns 0 when the gap is degenerate.
func GapBridged(base, policy, target float64) float64 {
	gap := target - base
	if math.Abs(gap) < 1e-12 {
		return 0
	}
	return (policy - base) / gap
}

// Quantile returns the q-quantile (0..1) of vals by linear
// interpolation over the sorted copy; it errors on empty input.
func Quantile(vals []float64, q float64) (float64, error) {
	if len(vals) == 0 {
		return 0, fmt.Errorf("metrics: quantile of no values")
	}
	if math.IsNaN(q) || q < 0 || q > 1 {
		return 0, fmt.Errorf("metrics: quantile %v out of [0,1]", q)
	}
	for i, v := range vals {
		if math.IsNaN(v) {
			return 0, fmt.Errorf("metrics: quantile input %d is NaN", i)
		}
	}
	s := SCurve(vals)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestThroughput(t *testing.T) {
	if got := Throughput([]float64{1.5, 2.5}); !almost(got, 4.0) {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(nil); got != 0 {
		t.Fatalf("Throughput(nil) = %v", got)
	}
}

func TestWeightedSpeedup(t *testing.T) {
	ws, err := WeightedSpeedup([]float64{1, 1}, []float64{2, 4})
	if err != nil || !almost(ws, 0.75) {
		t.Fatalf("WeightedSpeedup = %v, %v", ws, err)
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{0}); err == nil {
		t.Error("zero isolated IPC accepted")
	}
}

func TestHmeanFairness(t *testing.T) {
	// Equal speedups s: fairness = s.
	hf, err := HmeanFairness([]float64{1, 2}, []float64{2, 4})
	if err != nil || !almost(hf, 0.5) {
		t.Fatalf("HmeanFairness = %v, %v", hf, err)
	}
	if _, err := HmeanFairness([]float64{0}, []float64{1}); err == nil {
		t.Error("zero mix IPC accepted")
	}
	if _, err := HmeanFairness([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestGeomean(t *testing.T) {
	g, err := Geomean([]float64{1, 4})
	if err != nil || !almost(g, 2) {
		t.Fatalf("Geomean = %v, %v", g, err)
	}
	if _, err := Geomean(nil); err == nil {
		t.Error("empty geomean accepted")
	}
	if _, err := Geomean([]float64{1, 0}); err == nil {
		t.Error("zero value accepted")
	}
	if _, err := Geomean([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN value accepted")
	}
	// Single element: geomean is the element itself.
	if g, err := Geomean([]float64{7}); err != nil || !almost(g, 7) {
		t.Errorf("Geomean([7]) = %v, %v", g, err)
	}
	// Property: geomean lies between min and max.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
			lo, hi = math.Min(lo, xs[i]), math.Max(hi, xs[i])
		}
		g, err := Geomean(xs)
		return err == nil && g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almost(got, 2) {
		t.Fatalf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
}

func TestMPKI(t *testing.T) {
	if got := MPKI(50, 10000); !almost(got, 5) {
		t.Fatalf("MPKI = %v", got)
	}
	if got := MPKI(50, 0); got != 0 {
		t.Fatalf("MPKI with zero instructions = %v", got)
	}
}

func TestSCurve(t *testing.T) {
	in := []float64{3, 1, 2}
	out := SCurve(in)
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("SCurve = %v", out)
	}
	if in[0] != 3 {
		t.Fatal("SCurve mutated its input")
	}
}

func TestSCurveBy(t *testing.T) {
	vals := []float64{10, 20, 30}
	keys := []float64{3, 1, 2}
	out, err := SCurveBy(vals, keys)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 20 || out[1] != 30 || out[2] != 10 {
		t.Fatalf("SCurveBy = %v", out)
	}
	if _, err := SCurveBy(vals, keys[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SCurveBy(vals, []float64{1, math.NaN(), 2}); err == nil {
		t.Error("NaN key accepted")
	}
	// Empty and single-element inputs pass through unchanged.
	if out, err := SCurveBy(nil, nil); err != nil || len(out) != 0 {
		t.Errorf("SCurveBy(nil, nil) = %v, %v", out, err)
	}
	if out, err := SCurveBy([]float64{5}, []float64{9}); err != nil || out[0] != 5 {
		t.Errorf("SCurveBy single = %v, %v", out, err)
	}
	// NaN vals with orderable keys are allowed: keys define the order.
	out, err = SCurveBy([]float64{math.NaN(), 1}, []float64{2, 1})
	if err != nil || !math.IsNaN(out[1]) || out[0] != 1 {
		t.Errorf("SCurveBy NaN val = %v, %v", out, err)
	}
}

func TestGapBridged(t *testing.T) {
	if got := GapBridged(1.0, 1.085, 1.10); !almost(got, 0.85) {
		t.Fatalf("GapBridged = %v", got)
	}
	if got := GapBridged(1, 2, 1); got != 0 {
		t.Fatalf("degenerate gap = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1.0 / 3, 2},
	} {
		got, err := Quantile(vals, tc.q)
		if err != nil || !almost(got, tc.want) {
			t.Errorf("Quantile(%v) = %v, %v; want %v", tc.q, got, err, tc.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty quantile accepted")
	}
	if _, err := Quantile(vals, 1.5); err == nil {
		t.Error("out-of-range q accepted")
	}
	if _, err := Quantile(vals, math.NaN()); err == nil {
		t.Error("NaN q accepted")
	}
	if _, err := Quantile([]float64{1, math.NaN()}, 0.5); err == nil {
		t.Error("NaN value accepted")
	}
	// Single element: every quantile is that element.
	for _, q := range []float64{0, 0.5, 1} {
		if got, err := Quantile([]float64{42}, q); err != nil || got != 42 {
			t.Errorf("Quantile([42], %v) = %v, %v", q, got, err)
		}
	}
}

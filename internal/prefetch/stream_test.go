package prefetch

import "testing"

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{LineSize: 48}); err == nil {
		t.Error("accepted non-power-of-two line size")
	}
	if _, err := New(Config{Detectors: -1}); err == nil {
		t.Error("accepted negative detectors")
	}
	s := MustNew(Config{})
	if len(s.detectors) != 16 || s.degree != 2 {
		t.Errorf("defaults wrong: %d detectors, degree %d", len(s.detectors), s.degree)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{LineSize: 3})
}

func TestAscendingStreamDetected(t *testing.T) {
	s := MustNew(Config{})
	var buf []uint64
	// First miss allocates a trainer; no prefetches yet.
	buf = s.OnMiss(0x1000, buf[:0])
	if len(buf) != 0 {
		t.Fatalf("first miss issued %d prefetches", len(buf))
	}
	// Second sequential miss confirms direction and issues degree=2.
	buf = s.OnMiss(0x1040, buf[:0])
	if len(buf) != 2 || buf[0] != 0x1080 || buf[1] != 0x10c0 {
		t.Fatalf("prefetches = %#v, want [0x1080 0x10c0]", buf)
	}
	buf = s.OnMiss(0x1080, buf[:0])
	if len(buf) != 2 || buf[0] != 0x10c0 {
		t.Fatalf("third miss prefetches = %#v", buf)
	}
	if s.Stats.Activated != 1 || s.Stats.Issued != 4 {
		t.Fatalf("stats = %+v", s.Stats)
	}
}

func TestDescendingStreamDetected(t *testing.T) {
	s := MustNew(Config{})
	var buf []uint64
	s.OnMiss(0x2000, nil)
	buf = s.OnMiss(0x1fc0, buf[:0])
	if len(buf) != 2 || buf[0] != 0x1f80 || buf[1] != 0x1f40 {
		t.Fatalf("descending prefetches = %#v", buf)
	}
}

func TestDirectionFlipRetrains(t *testing.T) {
	s := MustNew(Config{})
	s.OnMiss(0x1000, nil)
	s.OnMiss(0x1040, nil) // ascending confirmed
	buf := s.OnMiss(0x1000, nil)
	if len(buf) != 0 {
		t.Fatalf("direction flip still issued %#v", buf)
	}
	// Continue descending: re-confirms with new direction.
	buf = s.OnMiss(0xfc0, nil)
	if len(buf) != 2 || buf[0] != 0xf80 {
		t.Fatalf("after retrain = %#v", buf)
	}
}

func TestRepeatedSameLineIsIgnored(t *testing.T) {
	s := MustNew(Config{})
	s.OnMiss(0x1000, nil)
	if buf := s.OnMiss(0x1000, nil); len(buf) != 0 {
		t.Fatalf("same-line miss issued %#v", buf)
	}
	if s.Stats.Allocs != 1 {
		t.Fatalf("same-line miss allocated another detector: %+v", s.Stats)
	}
}

func TestConcurrentStreams(t *testing.T) {
	s := MustNew(Config{})
	var buf []uint64
	// Interleave two far-apart streams; both must be tracked at once.
	bases := []uint64{0x10000, 0x900000}
	for step := 0; step < 8; step++ {
		for _, b := range bases {
			buf = s.OnMiss(b+uint64(step)*64, buf[:0])
			if step >= 1 && len(buf) != 2 {
				t.Fatalf("stream %#x step %d: %d prefetches", b, step, len(buf))
			}
		}
	}
	if s.Stats.Allocs != 2 || s.Stats.Activated != 2 {
		t.Fatalf("stats = %+v", s.Stats)
	}
}

func TestDetectorCapacityEvictsLRU(t *testing.T) {
	s := MustNew(Config{Detectors: 2})
	s.OnMiss(0x10000, nil)  // stream A
	s.OnMiss(0x500000, nil) // stream B
	s.OnMiss(0x900000, nil) // stream C replaces A (LRU)
	// Continuing A must not find its detector: reallocation, no issue.
	if buf := s.OnMiss(0x10040, nil); len(buf) != 0 {
		t.Fatalf("evicted stream still issued %#v", buf)
	}
	if s.Stats.Allocs != 4 {
		t.Fatalf("Allocs = %d, want 4", s.Stats.Allocs)
	}
}

func TestRandomMissesIssueNothing(t *testing.T) {
	s := MustNew(Config{})
	var buf []uint64
	seed := uint64(0x123456789)
	for i := 0; i < 1000; i++ {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		buf = s.OnMiss(seed&0xFFFFFFC0, buf[:0])
	}
	// A handful of accidental window matches is fine, but random traffic
	// must not look like streams.
	if s.Stats.Issued > 50 {
		t.Fatalf("random misses issued %d prefetches", s.Stats.Issued)
	}
}

func TestZeroDetectorStreamerIsInert(t *testing.T) {
	s, err := New(Config{Detectors: -0, Degree: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.detectors = nil // simulate a disabled prefetcher
	if buf := s.OnMiss(0x1000, nil); len(buf) != 0 {
		t.Fatal("disabled prefetcher issued prefetches")
	}
}

func TestNoNegativeLinePrefetch(t *testing.T) {
	s := MustNew(Config{})
	s.OnMiss(0x40, nil)
	buf := s.OnMiss(0x0, nil) // descending at address zero
	for _, a := range buf {
		if int64(a) < 0 {
			t.Fatalf("negative prefetch address %#x", a)
		}
	}
	if len(buf) != 0 {
		t.Fatalf("prefetched below address zero: %#v", buf)
	}
}

// TestNoWrappedPrefetchAtAddressTop drives an ascending stream into the
// last cache lines of the 64-bit address space. Without the top-edge
// clamp the emission shift wraps and prefetches bogus low addresses.
func TestNoWrappedPrefetchAtAddressTop(t *testing.T) {
	s := MustNew(Config{})
	top := ^uint64(0) &^ 63 // last 64-byte line
	s.OnMiss(top-2*64, nil)
	buf := s.OnMiss(top-64, nil) // confirmed ascending; degree 2 would pass top
	if len(buf) != 1 || buf[0] != top {
		t.Fatalf("prefetches at top edge = %#v, want [%#x]", buf, top)
	}
	buf = s.OnMiss(top, buf[:0]) // nothing representable beyond the last line
	for _, a := range buf {
		if a < top {
			t.Fatalf("wrapped prefetch address %#x", a)
		}
	}
	if len(buf) != 0 {
		t.Fatalf("prefetched past the top of the address space: %#v", buf)
	}
}

func TestReset(t *testing.T) {
	s := MustNew(Config{})
	s.OnMiss(0x1000, nil)
	s.OnMiss(0x1040, nil)
	s.Reset()
	if s.Stats != (Stats{}) {
		t.Fatalf("stats after Reset = %+v", s.Stats)
	}
	if buf := s.OnMiss(0x1080, nil); len(buf) != 0 {
		t.Fatal("detector state survived Reset")
	}
}

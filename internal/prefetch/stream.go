// Package prefetch implements the stream prefetcher of the paper's
// baseline system: it trains on L2 cache misses, tracks up to 16
// concurrent streams, and issues prefetches for the next lines of a
// detected stream into the L2 cache.
package prefetch

import (
	"fmt"
	"math/bits"
)

// Stats counts prefetcher activity.
type Stats struct {
	Misses    uint64 // training inputs observed
	Allocs    uint64 // detectors (re)allocated to new streams
	Activated uint64 // detectors that confirmed a direction
	Issued    uint64 // prefetch requests emitted
}

type detector struct {
	valid    bool
	active   bool  // direction confirmed
	lastLine int64 // line number (address >> log2(lineSize))
	dir      int64 // +1 or -1 once active
	lastUse  uint64
}

// Streamer is a multi-stream sequential prefetcher. It is driven with
// line-granularity miss addresses and yields line-granularity prefetch
// addresses; the hierarchy decides where to install them (the paper's
// configuration installs into the L2).
type Streamer struct {
	detectors []detector
	//tlavet:resetexempt configuration fixed at construction, identical for every reuse
	degree int
	//tlavet:resetexempt configuration fixed at construction, identical for every reuse
	window int64
	//tlavet:resetexempt configuration fixed at construction, identical for every reuse
	offBits uint
	tick    uint64

	Stats Stats
}

// Config parameterises a Streamer. Zero values select the paper's
// baseline: 16 detectors, degree 2, a ±4-line training window.
type Config struct {
	Detectors int   // concurrent streams tracked (default 16)
	Degree    int   // lines prefetched ahead per confirmed miss (default 2)
	Window    int64 // training match window in lines (default 4)
	LineSize  int64 // bytes per line (default 64)
}

// New builds a stream prefetcher. Invalid explicit values are reported
// as errors; zero fields take defaults.
func New(cfg Config) (*Streamer, error) {
	if cfg.Detectors == 0 {
		cfg.Detectors = 16
	}
	if cfg.Degree == 0 {
		cfg.Degree = 2
	}
	if cfg.Window == 0 {
		cfg.Window = 4
	}
	if cfg.LineSize == 0 {
		cfg.LineSize = 64
	}
	if cfg.Detectors < 0 || cfg.Degree < 0 || cfg.Window < 0 {
		return nil, fmt.Errorf("prefetch: negative config %+v", cfg)
	}
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		return nil, fmt.Errorf("prefetch: line size %d not a power of two", cfg.LineSize)
	}
	return &Streamer{
		detectors: make([]detector, cfg.Detectors),
		degree:    cfg.Degree,
		window:    cfg.Window,
		offBits:   uint(bits.TrailingZeros64(uint64(cfg.LineSize))),
	}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Streamer {
	s, err := New(cfg)
	if err != nil {
		panic(fmt.Sprintf("prefetch: MustNew: %v", err))
	}
	return s
}

// OnMiss trains the prefetcher with a demand miss at addr and appends
// the line addresses to prefetch to buf, returning the extended slice.
// Reusing buf across calls keeps the hot path allocation-free.
func (s *Streamer) OnMiss(addr uint64, buf []uint64) []uint64 {
	s.Stats.Misses++
	s.tick++
	if len(s.detectors) == 0 {
		return buf
	}
	line := int64(addr >> s.offBits)

	// Find the detector whose stream this miss continues.
	best := -1
	for i := range s.detectors {
		d := &s.detectors[i]
		if !d.valid {
			continue
		}
		delta := line - d.lastLine
		if delta == 0 {
			// Same line missing again (e.g. evicted): just refresh.
			d.lastUse = s.tick
			return buf
		}
		if delta < 0 {
			delta = -delta
		}
		if delta <= s.window {
			best = i
			break
		}
	}
	if best < 0 {
		// Allocate the LRU detector for a fresh stream in training state.
		victim := 0
		for i := range s.detectors {
			if !s.detectors[i].valid {
				victim = i
				break
			}
			if s.detectors[i].lastUse < s.detectors[victim].lastUse {
				victim = i
			}
		}
		s.detectors[victim] = detector{valid: true, lastLine: line, lastUse: s.tick}
		s.Stats.Allocs++
		return buf
	}

	d := &s.detectors[best]
	d.lastUse = s.tick
	dir := int64(1)
	if line < d.lastLine {
		dir = -1
	}
	if !d.active {
		d.active = true
		d.dir = dir
		s.Stats.Activated++
	} else if d.dir != dir {
		// Direction flip: retrain.
		d.active = false
		d.lastLine = line
		return buf
	}
	d.lastLine = line
	// Clamp emission at both edges of the address space: below line 0
	// and above the last representable line, where the shift back to a
	// byte address would wrap and prefetch a bogus low address.
	maxLine := ^uint64(0) >> s.offBits
	for i := 1; i <= s.degree; i++ {
		next := line + d.dir*int64(i)
		if next < 0 || uint64(next) > maxLine {
			break
		}
		//tlavet:allow hotpath appends into the caller's reused scratch buffer, bounded by degree
		buf = append(buf, uint64(next)<<s.offBits)
		s.Stats.Issued++
	}
	return buf
}

// Reset clears all detectors and statistics.
//
//tlavet:resetcover
func (s *Streamer) Reset() {
	for i := range s.detectors {
		s.detectors[i] = detector{}
	}
	s.tick = 0
	s.Stats = Stats{}
}

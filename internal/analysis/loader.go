package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	// Path is the package's import path (module-relative paths are
	// prefixed with the module path; a fixture loaded with LoadDir uses
	// the path the caller supplied).
	Path string
	// Dir is the directory the package's files live in.
	Dir string
	// Name is the package name from the package clauses.
	Name string
	// Fset positions the package's files (shared module-wide when the
	// package was loaded as part of a Module).
	Fset *token.FileSet
	// Files holds the parsed non-test source files, sorted by filename.
	Files []*ast.File
	// Types and Info hold the go/types results for the package. Info is
	// fully populated (Types, Defs, Uses, Selections) so analyzers can
	// resolve identifiers and selector expressions.
	Types *types.Package
	Info  *types.Info
}

// Module is a loaded Go module: every package under the module root,
// parsed and type-checked against a shared FileSet.
type Module struct {
	// Root is the absolute module root directory (where go.mod lives).
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset positions every file in every package.
	Fset *token.FileSet
	// Pkgs lists the loaded packages sorted by import path.
	Pkgs []*Package
}

// skipDir names directories the loader never descends into.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// LoadModule parses and type-checks every package of the module rooted
// at root (the directory containing go.mod). Test files (_test.go) are
// excluded: the analyzers guard production simulator code, and test
// files routinely do things (deliberate panics, counter corruption)
// the analyzers exist to forbid.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, fmt.Errorf("analysis: resolving module root: %w", err)
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{Root: root, Path: modPath, Fset: token.NewFileSet()}

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && includeFile(path, e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walking module: %w", err)
	}
	sort.Strings(dirs)

	ld := newLoaderState(m)
	for _, dir := range dirs {
		if _, err := ld.loadDir(dir, m.importPath(dir)); err != nil {
			return nil, err
		}
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return m, nil
}

// LoadDir parses and type-checks the single package in dir, giving it
// the supplied import path. It is how the golden-fixture tests load
// testdata packages: the path chooses which path-scoped analyzers
// apply, and imports are restricted to the standard library.
func LoadDir(dir, path string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: resolving %s: %w", dir, err)
	}
	m := &Module{Root: dir, Path: path, Fset: token.NewFileSet()}
	return newLoaderState(m).loadDir(dir, path)
}

// importPath maps a directory under the module root to its import path.
func (m *Module) importPath(dir string) string {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil || rel == "." {
		return m.Path
	}
	return m.Path + "/" + filepath.ToSlash(rel)
}

// isSourceFile reports whether name is a non-test Go source file.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// includeFile reports whether the loader should parse dir/name. Beyond
// the non-test .go check, it applies the go tool's own exclusion rules
// so that directories with ignored files load instead of failing:
// `_`- and `.`-prefixed files are invisible to builds, and files whose
// build constraints (//go:build tags or _GOOS/_GOARCH suffixes) exclude
// them from the default build context never reach the compiler, so the
// analyzers must not see them either.
func includeFile(dir, name string) bool {
	if !isSourceFile(name) {
		return false
	}
	if strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
		return false
	}
	ok, err := build.Default.MatchFile(dir, name)
	return err == nil && ok
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// loaderState type-checks packages on demand, caching results so each
// package is checked once. Module-internal imports recurse into the
// module's own directories; standard-library imports are satisfied by
// compiled export data from the go build cache when the go tool is
// available (fast), and otherwise by the go/importer source importer,
// which compiles stdlib packages from GOROOT sources (slower but fully
// in-process).
type loaderState struct {
	m       *Module
	std     types.Importer
	byPath  map[string]*Package
	loading map[string]bool
}

func newLoaderState(m *Module) *loaderState {
	return &loaderState{
		m:       m,
		std:     stdImporter(m.Fset),
		byPath:  make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// stdImporter picks the fastest available standard-library importer.
// Only non-module import paths reach it: module-internal imports are
// type-checked from source by the loader itself, so the standard
// library (the module's only external dependency surface) is all this
// importer ever serves.
func stdImporter(fset *token.FileSet) types.Importer {
	if exports, err := stdExports(); err == nil {
		return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			file, ok := exports[path]
			if !ok || file == "" {
				return nil, fmt.Errorf("analysis: no export data for %q", path)
			}
			return os.Open(file)
		})
	}
	return importer.ForCompiler(fset, "source", nil)
}

// stdExportsOnce caches the stdlib export-data map for the process:
// the closure is toolchain-wide, not module-specific, so every loaded
// module and fixture shares one `go list` invocation.
var stdExportsOnce = sync.OnceValues(runListStd)

func stdExports() (map[string]string, error) { return stdExportsOnce() }

// runListStd asks the go tool for the export-data files of the whole
// standard library, keyed by import path. One build-cache-backed `go
// list` invocation (~2s warm) replaces ~20s of type-checking the
// net/http dependency chain from GOROOT sources.
func runListStd() (map[string]string, error) {
	out, err := exec.Command("go", "list", "-export", "-json=ImportPath,Export", "std").Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list -export std: %w", err)
	}
	type entry struct {
		ImportPath string
		Export     string
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e entry
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				return exports, nil
			}
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
}

// Import implements types.Importer for the type-checker: module-local
// paths load recursively, everything else goes to the stdlib importer.
func (ld *loaderState) Import(path string) (*types.Package, error) {
	if path == ld.m.Path || strings.HasPrefix(path, ld.m.Path+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, ld.m.Path), "/")
		pkg, err := ld.loadDir(filepath.Join(ld.m.Root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

// loadDir parses and type-checks the package in dir under import path
// path, memoising the result on the module.
func (ld *loaderState) loadDir(dir, path string) (*Package, error) {
	if pkg, ok := ld.byPath[path]; ok {
		return pkg, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading %s: %w", dir, err)
	}
	var files []*ast.File
	name := ""
	for _, e := range ents {
		if e.IsDir() || !includeFile(dir, e.Name()) {
			continue
		}
		f, err := parser.ParseFile(ld.m.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if name == "" {
			name = f.Name.Name
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go source files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.m.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Name: name, Fset: ld.m.Fset, Files: files, Types: tpkg, Info: info}
	ld.byPath[path] = pkg
	ld.m.Pkgs = append(ld.m.Pkgs, pkg)
	return pkg, nil
}

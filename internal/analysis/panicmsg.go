package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// PanicMsgAnalyzer makes simulator failures attributable: a panic that
// escapes a multi-hour sweep must say which subsystem gave up and why,
// so panics in internal/ packages must carry a message prefixed with
// the package name ("cache: ...") and may never re-throw a bare error
// value (panic(err)) that loses that context.
var PanicMsgAnalyzer = &Analyzer{
	Name: "panicmsg",
	Doc:  "panics in internal/ must carry a package-prefixed message, never a bare panic(err)",
	Help: "A bare panic(err) loses the failing subsystem. Wrap the message with " +
		"the package prefix (panic(\"cache: ...\")) so failures attribute " +
		"themselves.",
	Default: true,
	Run:     runPanicMsg,
}

func runPanicMsg(pass *Pass) {
	if !strings.Contains(pass.Pkg.Path+"/", "internal/") {
		return
	}
	prefix := pass.Pkg.Name + ":"
	walkWithStack(pass.Pkg, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return
		}
		if obj, recorded := pass.Pkg.Info.Uses[id]; recorded && obj != types.Universe.Lookup("panic") {
			return // a shadowing local function named panic
		}
		arg := call.Args[0]
		if panicMsgOK(pass, arg, prefix) {
			return
		}
		if isErrorValue(pass, arg) {
			pass.Report(call.Pos(),
				"bare panic(err) loses the failing subsystem",
				`wrap it: panic(fmt.Sprintf("`+prefix+` <context>: %v", err)) or return the error`)
			return
		}
		pass.Report(call.Pos(),
			`panic message must carry the "`+prefix+`" package prefix`,
			`start the message with "`+prefix+` "`)
	})
}

// panicMsgOK reports whether the panic argument statically carries the
// package prefix: a string literal, a fmt.Sprintf/Errorf whose format
// starts with the prefix, or a concatenation whose leftmost operand is
// such a literal.
func panicMsgOK(pass *Pass, arg ast.Expr, prefix string) bool {
	switch arg := arg.(type) {
	case *ast.BasicLit:
		if s, err := strconv.Unquote(arg.Value); err == nil {
			return strings.HasPrefix(s, prefix)
		}
	case *ast.CallExpr:
		if sel, ok := arg.Fun.(*ast.SelectorExpr); ok && len(arg.Args) > 0 {
			if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "fmt" &&
				(sel.Sel.Name == "Sprintf" || sel.Sel.Name == "Errorf") {
				return panicMsgOK(pass, arg.Args[0], prefix)
			}
		}
	case *ast.BinaryExpr:
		return panicMsgOK(pass, arg.X, prefix)
	case *ast.ParenExpr:
		return panicMsgOK(pass, arg.X, prefix)
	}
	return false
}

// isErrorValue reports whether e's static type is the error interface.
func isErrorValue(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "err"
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

package analysis

import (
	"encoding/json"
	"path/filepath"
)

// SARIF 2.1.0 rendering of findings, the interchange format code
// scanning services ingest. The emitted log is minimal but valid: one
// run, one rule per registered analyzer (so rule metadata is stable
// even when a check is clean), and one result per diagnostic with the
// suggestion folded into the message text. Chains are already part of
// the interprocedural analyzers' messages, so a SARIF viewer shows the
// full source→sink path without codeFlow support.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string        `json:"id"`
	ShortDescription sarifMessage  `json:"shortDescription"`
	FullDescription  *sarifMessage `json:"fullDescription,omitempty"`
	Help             *sarifMessage `json:"help,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders diags as an indented SARIF 2.1.0 log. Every registered
// analyzer appears as a rule; diagnostics from unregistered analyzer
// names (none today) grow the rule table on the fly.
func SARIF(diags []Diagnostic) ([]byte, error) {
	ruleIndex := make(map[string]int)
	var rules []sarifRule
	addRule := func(id, doc, help string) {
		if _, ok := ruleIndex[id]; ok {
			return
		}
		ruleIndex[id] = len(rules)
		rule := sarifRule{ID: id, ShortDescription: sarifMessage{Text: doc}}
		if help != "" {
			rule.FullDescription = &sarifMessage{Text: help}
			rule.Help = &sarifMessage{Text: help}
		}
		rules = append(rules, rule)
	}
	for _, a := range Analyzers() {
		addRule(a.Name, a.Doc, a.Help)
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		addRule(d.Analyzer, d.Analyzer, "")
		text := d.Message
		if d.Suggestion != "" {
			text += " (" + d.Suggestion + ")"
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: text},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       filepath.ToSlash(d.File),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "tlavet", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LLCWriteAnalyzer is the containment proof behind the sharded LLC
// mode: during the capture phase, every mutation of LLC-owned state
// must happen inside a small annotated accessor set — the functions
// that announce the operation through hierarchy.LLCOpSink before
// touching the LLC. The replay phase reconstructs LLC contents purely
// from the captured operation stream, so a capture-phase write that
// bypasses the sink is state the replay can never see: a silent
// divergence between sharded and timed results. llcwrite turns that
// contract into a build failure.
//
// Three directives define the proof:
//
//	//tlavet:llcstate              on a field declaration: the field is
//	                               LLC-owned (hierarchy.Hierarchy's llc
//	                               and vc)
//	//tlavet:llccapture            on the capture-phase entry point
//	                               (sim.captureCore); reachability BFS
//	                               starts here
//	//tlavet:llcaccessor <reason>  on each function where mutation is
//	                               legal; the reason records how the
//	                               mutation is announced to the sink
//
// In every function reachable from a capture root and not in the
// accessor set, two shapes are findings, each carrying the root→site
// call chain: a direct write whose lvalue passes through an llcstate
// field, and a method call on an llcstate field whose callee mutates
// its receiver (classified by a module-wide fixpoint over receiver-
// rooted writes and calls; unresolvable callees count as mutating).
// Accessors that no longer touch LLC state are reported as stale, and
// a reasonless accessor directive exempts nothing.
var LLCWriteAnalyzer = &Analyzer{
	Name: "llcwrite",
	Doc:  "capture-phase code mutates //tlavet:llcstate fields only inside //tlavet:llcaccessor functions",
	Help: "The sharded replay reconstructs the LLC from the LLCOpSink stream, so a " +
		"capture-phase mutation outside the accessor set silently diverges the two " +
		"modes. Route the write through an existing accessor, or make the function " +
		"an accessor itself — fire the sink first, then annotate it " +
		"//tlavet:llcaccessor <reason>.",
	Default:   true,
	RunModule: runLLCWrite,
}

const (
	directiveLLCState    = "//tlavet:llcstate"
	directiveLLCCapture  = "//tlavet:llccapture"
	directiveLLCAccessor = "//tlavet:llcaccessor"
)

func runLLCWrite(mp *ModulePass) {
	m := mp.Module
	modulePkgs := modulePackageSet(m)

	owned := collectLLCStateFields(m)
	if len(owned) == 0 {
		return
	}
	g := buildCallGraph(m)
	accessors := collectLLCAccessors(mp, g)
	mutators := classifyMutators(g)

	// Stale-accessor pass: an accessor must still mutate LLC-owned
	// state somewhere in its body, or the annotation is dead weight.
	accessorFns := make([]*types.Func, 0, len(accessors))
	for fn := range accessors {
		accessorFns = append(accessorFns, fn)
	}
	sort.Slice(accessorFns, func(i, j int) bool {
		a, b := displayName(accessorFns[i]), displayName(accessorFns[j])
		if a != b {
			return a < b
		}
		return accessorFns[i].Pos() < accessorFns[j].Pos()
	})
	for _, fn := range accessorFns {
		n := g.nodes[fn]
		if n == nil {
			continue
		}
		if len(llcViolations(n, owned, mutators, modulePkgs, g)) == 0 {
			mp.Report(n.decl.Name.Pos(),
				"stale //tlavet:llcaccessor: "+displayName(fn)+" neither writes nor mutates LLC-owned state",
				"delete the directive; the accessor set may only shrink", nil)
		}
	}

	roots := g.annotatedRoots(directiveLLCCapture)
	if len(roots) == 0 {
		return
	}
	chains := g.reachableFrom(roots)
	nodes := make([]*cgNode, 0, len(chains))
	for n := range chains {
		nodes = append(nodes, n)
	}
	sortNodes(nodes)
	for _, n := range nodes {
		if accessors[n.fn] {
			continue
		}
		for _, v := range llcViolations(n, owned, mutators, modulePkgs, g) {
			mp.Report(v.pos, v.msg+" via "+strings.Join(chains[n], " → "),
				"route the mutation through a //tlavet:llcaccessor function that fires LLCOpSink, "+
					"or annotate this function //tlavet:llcaccessor <reason>",
				chains[n])
		}
	}
}

// collectLLCStateFields gathers the //tlavet:llcstate field
// declarations as a (type key → field name) set.
func collectLLCStateFields(m *Module) map[string]map[string]bool {
	owned := make(map[string]map[string]bool)
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					key := pkg.Path + "." + ts.Name.Name
					for _, field := range st.Fields.List {
						if !hasDirective(field.Doc, directiveLLCState) &&
							!hasDirective(field.Comment, directiveLLCState) {
							continue
						}
						if owned[key] == nil {
							owned[key] = make(map[string]bool)
						}
						for _, name := range field.Names {
							owned[key][name.Name] = true
						}
						if len(field.Names) == 0 {
							if name := embeddedFieldName(field.Type); name != "" {
								owned[key][name] = true
							}
						}
					}
				}
			}
		}
	}
	return owned
}

// collectLLCAccessors gathers the //tlavet:llcaccessor set. A
// directive without a reason is reported and exempts nothing.
func collectLLCAccessors(mp *ModulePass, g *callGraph) map[*types.Func]bool {
	accessors := make(map[*types.Func]bool)
	for _, pkg := range mp.Module.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					rest, ok := strings.CutPrefix(c.Text, directiveLLCAccessor)
					if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
						continue
					}
					if len(strings.Fields(rest)) == 0 {
						mp.Report(fd.Name.Pos(), "llcaccessor directive has no reason",
							"write //tlavet:llcaccessor <reason> recording how the mutation reaches LLCOpSink", nil)
						continue
					}
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						accessors[canonical(fn)] = true
					}
				}
			}
		}
	}
	return accessors
}

// classifyMutators computes, by fixpoint over the call graph, the set
// of module methods that mutate their receiver: a method mutates iff
// it writes through a receiver-rooted lvalue, or calls a mutating
// method on a receiver-rooted expression (interface calls fan out to
// every implementation, so one mutating implementation taints the
// call). Package-level functions are not classified — state can only
// reach them as arguments, which the llcstate field check catches at
// the call site's selector.
func classifyMutators(g *callGraph) map[*types.Func]bool {
	mutating := make(map[*types.Func]bool)
	// deps[callee] lists methods whose mutation status depends on
	// callee's (they call callee on a receiver-rooted expression).
	deps := make(map[*types.Func][]*types.Func)
	var work []*types.Func

	for fn, n := range g.nodes {
		recv := receiverObject(n)
		if recv == nil {
			continue
		}
		direct := false
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.AssignStmt:
				for _, lhs := range node.Lhs {
					if rootedAt(n.pkg, lhs, recv) {
						direct = true
					}
				}
			case *ast.IncDecStmt:
				if rootedAt(n.pkg, node.X, recv) {
					direct = true
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "clear" && len(node.Args) == 1 {
					if _, isBuiltin := n.pkg.Info.Uses[id].(*types.Builtin); isBuiltin && rootedAt(n.pkg, node.Args[0], recv) {
						direct = true
					}
					return true
				}
				sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr)
				if !ok || !rootedAt(n.pkg, sel.X, recv) {
					return true
				}
				for _, callee := range g.callees(n.pkg, node) {
					deps[callee] = append(deps[callee], fn)
				}
			}
			return true
		})
		if direct && !mutating[fn] {
			mutating[fn] = true
			work = append(work, fn)
		}
	}
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		for _, dep := range deps[fn] {
			if !mutating[dep] {
				mutating[dep] = true
				work = append(work, dep)
			}
		}
	}
	return mutating
}

// receiverObject returns the declared receiver variable of n, or nil
// for package functions and unnamed receivers.
func receiverObject(n *cgNode) *types.Var {
	if n.decl.Recv == nil || len(n.decl.Recv.List) == 0 {
		return nil
	}
	names := n.decl.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	v, _ := n.pkg.Info.Defs[names[0]].(*types.Var)
	return v
}

// rootedAt reports whether expr's base — after stripping selectors,
// indexing, dereferences, and parens — is a use of the given variable.
func rootedAt(pkg *Package, expr ast.Expr, v *types.Var) bool {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.Ident:
			return pkg.Info.Uses[e] == v
		default:
			return false
		}
	}
}

// llcViolation is one site where LLC-owned state is mutated.
type llcViolation struct {
	pos token.Pos
	msg string
}

// llcViolations scans one function body for mutations of llcstate
// fields: direct writes through an owned field, and mutating method
// calls whose receiver chain passes through one.
func llcViolations(n *cgNode, owned map[string]map[string]bool,
	mutators map[*types.Func]bool, modulePkgs map[string]bool, g *callGraph) []llcViolation {

	var out []llcViolation
	// ownedSelector returns the display of the first llcstate field on
	// expr's base chain, or "".
	ownedSelector := func(expr ast.Expr) (string, token.Pos) {
		for {
			switch e := expr.(type) {
			case *ast.ParenExpr:
				expr = e.X
			case *ast.IndexExpr:
				expr = e.X
			case *ast.StarExpr:
				expr = e.X
			case *ast.SelectorExpr:
				if t, ok := n.pkg.TypeOfExpr(e.X); ok {
					if key := structKeyOf(t, modulePkgs); key != "" && owned[key][e.Sel.Name] {
						short := key[strings.LastIndexByte(key, '/')+1:]
						return short + "." + e.Sel.Name, e.Sel.Pos()
					}
				}
				expr = e.X
			default:
				return "", token.NoPos
			}
		}
	}

	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if field, pos := ownedSelector(lhs); field != "" {
					out = append(out, llcViolation{pos,
						"write to LLC-owned state " + field + " outside the //tlavet:llcaccessor set"})
				}
			}
		case *ast.IncDecStmt:
			if field, pos := ownedSelector(node.X); field != "" {
				out = append(out, llcViolation{pos,
					"write to LLC-owned state " + field + " outside the //tlavet:llcaccessor set"})
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "clear" && len(node.Args) == 1 {
				if _, isBuiltin := n.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					if field, pos := ownedSelector(node.Args[0]); field != "" {
						out = append(out, llcViolation{pos,
							"write to LLC-owned state " + field + " outside the //tlavet:llcaccessor set"})
					}
					return true
				}
			}
			sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := n.pkg.Info.Selections[sel]
			if !ok || s.Kind() != types.MethodVal {
				return true
			}
			field, _ := ownedSelector(sel.X)
			if field == "" {
				return true
			}
			callees := g.callees(n.pkg, node)
			mutates := len(callees) == 0 // unresolvable: assume the worst
			for _, callee := range callees {
				if mutators[callee] {
					mutates = true
					break
				}
			}
			if mutates {
				out = append(out, llcViolation{node.Pos(),
					"call to " + sel.Sel.Name + " mutates LLC-owned state " + field +
						" outside the //tlavet:llcaccessor set"})
			}
		}
		return true
	})
	return out
}

// Package analysis is tlavet's engine: a standard-library-only static
// analyzer (go/parser, go/ast, go/types — no x/tools dependency) that
// loads the module and runs domain-specific checks over the simulator's
// source. The checks mechanically enforce properties the Go type system
// cannot see but the paper's results depend on: deterministic replays
// (nondeterminism), honest low-overhead instrumentation (probeguard),
// attributable failures (panicmsg), monotone conserved counters
// (counterdiscipline), and meaningful metric comparisons (floatcmp).
//
// The dynamic counterpart — verifying the same properties on a running
// hierarchy — is internal/hierarchy's audit mode (Auditor), wired to
// sim.Config.AuditEvery and `tlasim -audit N`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suggestion string `json:"suggestion,omitempty"`
}

// String renders the diagnostic in the conventional compiler format.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
	if d.Suggestion != "" {
		s += " (" + d.Suggestion + ")"
	}
	return s
}

// Analyzer is one named check. Run inspects a single package through
// its Pass and reports findings; it must not retain the Pass.
type Analyzer struct {
	// Name is the check's identifier, used in diagnostics and -checks.
	Name string
	// Doc is a one-line description for `tlavet -list`.
	Doc string
	// Run executes the check against pass.Pkg.
	Run func(pass *Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// Root, when non-empty, is the directory diagnostics' file paths are
	// made relative to.
	Root  string
	diags *[]Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, msg, suggestion string) {
	position := p.Fset.Position(pos)
	file := position.Filename
	if p.Root != "" {
		if rel, err := filepath.Rel(p.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		File:       file,
		Line:       position.Line,
		Col:        position.Column,
		Analyzer:   p.Analyzer.Name,
		Message:    msg,
		Suggestion: suggestion,
	})
}

// TypeOf returns the static type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Pkg.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Analyzers returns every registered check in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NondeterminismAnalyzer,
		ProbeGuardAnalyzer,
		PanicMsgAnalyzer,
		CounterDisciplineAnalyzer,
		FloatCmpAnalyzer,
	}
}

// Select resolves a comma-separated -checks list ("" or "all" selects
// everything) against the registry.
func Select(list string) ([]*Analyzer, error) {
	all := Analyzers()
	if list == "" || list == "all" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown check %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunPackage runs the given analyzers over one loaded package,
// returning findings sorted by position. root relativises file paths.
func RunPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer, root string) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg, Root: root, diags: &diags}
		a.Run(pass)
	}
	sortDiagnostics(diags)
	return diags
}

// RunModule runs the given analyzers over every package of m whose
// import path is accepted by filter (nil accepts all).
func RunModule(m *Module, analyzers []*Analyzer, filter func(pkgPath string) bool) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range m.Pkgs {
		if filter != nil && !filter(pkg.Path) {
			continue
		}
		diags = append(diags, RunPackage(m.Fset, pkg, analyzers, m.Root)...)
	}
	sortDiagnostics(diags)
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// pathInPackages reports whether pkgPath names one of the listed
// internal packages, e.g. pathInPackages(p, "cache", "sim") matches
// ".../internal/cache" and ".../internal/sim" (and their subpackages).
func pathInPackages(pkgPath string, names ...string) bool {
	for _, n := range names {
		seg := "internal/" + n
		if pkgPath == seg || strings.HasSuffix(pkgPath, "/"+seg) ||
			strings.Contains(pkgPath, "/"+seg+"/") {
			return true
		}
	}
	return false
}

// walkWithStack traverses every file of pkg keeping an ancestor stack;
// fn receives each node with stack holding its ancestors, outermost
// first (stack excludes n itself).
func walkWithStack(pkg *Package, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			fn(n, stack)
			stack = append(stack, n)
			return true
		})
	}
}

// enclosingFunc returns the innermost function declaration or literal
// in the ancestor stack, with its name ("" for a literal).
func enclosingFunc(stack []ast.Node) (node ast.Node, name string) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return fn, ""
		case *ast.FuncDecl:
			return fn, fn.Name.Name
		}
	}
	return nil, ""
}

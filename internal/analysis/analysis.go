// Package analysis is tlavet's engine: a standard-library-only static
// analyzer (go/parser, go/ast, go/types — no x/tools dependency) that
// loads the module and runs domain-specific checks over the simulator's
// source. The checks mechanically enforce properties the Go type system
// cannot see but the paper's results depend on: deterministic replays
// (nondeterminism), honest low-overhead instrumentation (probeguard),
// attributable failures (panicmsg), monotone conserved counters
// (counterdiscipline), and meaningful metric comparisons (floatcmp).
//
// The dynamic counterpart — verifying the same properties on a running
// hierarchy — is internal/hierarchy's audit mode (Auditor), wired to
// sim.Config.AuditEvery and `tlasim -audit N`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suggestion string `json:"suggestion,omitempty"`
	// Chain, set by interprocedural analyzers, is the call path from an
	// annotated root to the function containing the finding, root first.
	Chain []string `json:"chain,omitempty"`
}

// String renders the diagnostic in the conventional compiler format.
// Interprocedural findings append their root→site call chain.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
	if d.Suggestion != "" {
		s += " (" + d.Suggestion + ")"
	}
	if len(d.Chain) > 0 {
		s += "\n\tvia " + strings.Join(d.Chain, " → ")
	}
	return s
}

// Analyzer is one named check. Exactly one of Run and RunModule is set:
// per-package checks inspect one package through a Pass, interprocedural
// checks see the whole module at once through a ModulePass. Neither may
// retain its pass.
type Analyzer struct {
	// Name is the check's identifier, used in diagnostics and -checks.
	Name string
	// Doc is a one-line description for `tlavet -list`.
	Doc string
	// Help is the longer remediation guidance rendered into the SARIF
	// rule metadata (fullDescription and help). Every registered check
	// must set it — the rule-parity test enforces this.
	Help string
	// Default reports whether the check runs when -checks selects "all".
	// Every check can still be selected explicitly by name.
	Default bool
	// Run executes a per-package check against pass.Pkg.
	Run func(pass *Pass)
	// RunModule executes an interprocedural check against mp.Module.
	RunModule func(mp *ModulePass)
}

// Interprocedural reports whether the check needs the whole module
// (call-graph construction) rather than one package at a time.
func (a *Analyzer) Interprocedural() bool { return a.RunModule != nil }

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// Root, when non-empty, is the directory diagnostics' file paths are
	// made relative to.
	Root   string
	diags  *[]Diagnostic
	allows allowIndex
}

// Report records a finding at pos unless a `//tlavet:allow` directive
// suppresses it.
func (p *Pass) Report(pos token.Pos, msg, suggestion string) {
	if p.allows == nil {
		p.allows = buildAllowIndex(p.Fset, p.Pkg.Files)
	}
	report(p.Fset, p.Root, p.Analyzer.Name, p.allows, p.diags, pos, msg, suggestion, nil)
}

// ModulePass carries one (interprocedural analyzer, module) unit of
// work.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Module   *Module
	// Root, when non-empty, relativises diagnostics' file paths.
	Root   string
	diags  *[]Diagnostic
	allows allowIndex
}

// Report records a finding at pos, carrying the analyzer's root→site
// call chain, unless a `//tlavet:allow` directive suppresses it.
func (mp *ModulePass) Report(pos token.Pos, msg, suggestion string, chain []string) {
	if mp.allows == nil {
		var files []*ast.File
		for _, pkg := range mp.Module.Pkgs {
			files = append(files, pkg.Files...)
		}
		mp.allows = buildAllowIndex(mp.Fset, files)
	}
	report(mp.Fset, mp.Root, mp.Analyzer.Name, mp.allows, mp.diags, pos, msg, suggestion, chain)
}

// report is the shared diagnostic sink behind Pass and ModulePass.
func report(fset *token.FileSet, root, analyzer string, allows allowIndex,
	diags *[]Diagnostic, pos token.Pos, msg, suggestion string, chain []string) {
	position := fset.Position(pos)
	if allows.allowed(analyzer, position.Filename, position.Line) {
		return
	}
	file := position.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	*diags = append(*diags, Diagnostic{
		File:       file,
		Line:       position.Line,
		Col:        position.Column,
		Analyzer:   analyzer,
		Message:    msg,
		Suggestion: suggestion,
		Chain:      chain,
	})
}

// allowEntry is one well-formed `//tlavet:allow` directive. used is set
// when the directive actually suppresses a diagnostic, so unused
// directives can be reported as stale and the suppression set can only
// ever shrink.
type allowEntry struct {
	check string
	used  bool
}

// allowIndex maps file → line → the directives a `//tlavet:allow`
// comment places there. A directive written on its own line suppresses
// the line below it; a trailing directive suppresses its own line.
// Directives must carry a reason (`//tlavet:allow <check> <reason>`); a
// reasonless directive suppresses nothing, so suppressions stay
// auditable.
type allowIndex map[string]map[int][]*allowEntry

func (ai allowIndex) allowed(check, file string, line int) bool {
	byLine := ai[file]
	if byLine == nil {
		return false
	}
	for _, l := range [2]int{line, line - 1} {
		for _, e := range byLine[l] {
			if e.check == check {
				e.used = true
				return true
			}
		}
	}
	return false
}

// buildAllowIndex collects every well-formed allow directive in files.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	ai := make(allowIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//tlavet:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // no reason given: not a valid suppression
				}
				position := fset.Position(c.Pos())
				byLine := ai[position.Filename]
				if byLine == nil {
					byLine = make(map[int][]*allowEntry)
					ai[position.Filename] = byLine
				}
				byLine[position.Line] = append(byLine[position.Line], &allowEntry{check: fields[0]})
			}
		}
	}
	return ai
}

// stale returns a diagnostic for every directive that suppressed
// nothing during the run and names one of the selected checks (a
// directive for a check that did not run is not evidence of anything).
// root relativises file paths like report does.
func (ai allowIndex) stale(root string, selected map[string]bool) []Diagnostic {
	var out []Diagnostic
	for file, byLine := range ai {
		rel := file
		if root != "" {
			if r, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(r, "..") {
				rel = r
			}
		}
		for line, entries := range byLine {
			for _, e := range entries {
				if e.used || !selected[e.check] {
					continue
				}
				out = append(out, Diagnostic{
					File:       rel,
					Line:       line,
					Analyzer:   e.check,
					Message:    "stale //tlavet:allow " + e.check + ": no diagnostic is suppressed here",
					Suggestion: "delete the directive; suppressions may only shrink",
				})
			}
		}
	}
	sortDiagnostics(out)
	return out
}

// TypeOf returns the static type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Pkg.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Analyzers returns every registered check in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NondeterminismAnalyzer,
		ProbeGuardAnalyzer,
		PanicMsgAnalyzer,
		CounterDisciplineAnalyzer,
		FloatCmpAnalyzer,
		HotPathAnalyzer,
		LockDisciplineAnalyzer,
		DetflowAnalyzer,
		KeycoverAnalyzer,
		ExhaustiveAnalyzer,
		ResetcoverAnalyzer,
		GatecoverAnalyzer,
		LLCWriteAnalyzer,
	}
}

// Select resolves a comma-separated -checks list against the registry.
// "" or "all" selects every default-enabled check; default-off checks
// must be named explicitly.
func Select(list string) ([]*Analyzer, error) {
	all := Analyzers()
	if list == "" || list == "all" {
		var out []*Analyzer
		for _, a := range all {
			if a.Default {
				out = append(out, a)
			}
		}
		return out, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown check %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunPackage runs the given analyzers over one loaded package,
// returning findings sorted by position. root relativises file paths.
// Interprocedural analyzers see the package as a one-package module —
// this is how the golden fixtures exercise them.
func RunPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer, root string) []Diagnostic {
	var diags []Diagnostic
	var single *Module
	for _, a := range analyzers {
		if a.Interprocedural() {
			if single == nil {
				single = &Module{Root: root, Path: pkg.Path, Fset: fset, Pkgs: []*Package{pkg}}
			}
			a.RunModule(&ModulePass{Analyzer: a, Fset: fset, Module: single, Root: root, diags: &diags})
			continue
		}
		pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg, Root: root, diags: &diags}
		a.Run(pass)
	}
	sortDiagnostics(diags)
	return diags
}

// ModuleResult is the outcome of a full module run: the findings, and
// the `//tlavet:allow` directives that suppressed none of them.
type ModuleResult struct {
	Diagnostics []Diagnostic
	// StaleAllows lists directives for selected checks that suppressed
	// nothing. Only computed for unfiltered runs (a pattern-restricted
	// run does not evaluate every package, so an unused directive there
	// proves nothing).
	StaleAllows []Diagnostic
}

// RunModule runs the given analyzers over every package of m whose
// import path is accepted by filter (nil accepts all), returning just
// the findings. See RunModuleFull for stale-suppression tracking.
func RunModule(m *Module, analyzers []*Analyzer, filter func(pkgPath string) bool) []Diagnostic {
	return RunModuleFull(m, analyzers, filter).Diagnostics
}

// RunModuleFull runs the given analyzers over every package of m whose
// import path is accepted by filter (nil accepts all). Per-package
// analyzers run once per accepted package; interprocedural analyzers
// run once over the whole module — their call graphs must see every
// package regardless of the filter — when at least one package is
// accepted. All passes share one allow index so that, for unfiltered
// runs, directives that suppressed nothing can be reported as stale.
func RunModuleFull(m *Module, analyzers []*Analyzer, filter func(pkgPath string) bool) ModuleResult {
	var diags []Diagnostic
	var files []*ast.File
	for _, pkg := range m.Pkgs {
		files = append(files, pkg.Files...)
	}
	allows := buildAllowIndex(m.Fset, files)
	anyAccepted := false
	for _, pkg := range m.Pkgs {
		if filter != nil && !filter(pkg.Path) {
			continue
		}
		anyAccepted = true
		for _, a := range analyzers {
			if a.Interprocedural() {
				continue
			}
			pass := &Pass{Analyzer: a, Fset: m.Fset, Pkg: pkg, Root: m.Root, diags: &diags, allows: allows}
			a.Run(pass)
		}
	}
	if anyAccepted {
		for _, a := range analyzers {
			if a.Interprocedural() {
				a.RunModule(&ModulePass{Analyzer: a, Fset: m.Fset, Module: m, Root: m.Root, diags: &diags, allows: allows})
			}
		}
	}
	sortDiagnostics(diags)
	res := ModuleResult{Diagnostics: diags}
	if filter == nil {
		selected := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			selected[a.Name] = true
		}
		res.StaleAllows = allows.stale(m.Root, selected)
	}
	return res
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// pathInPackages reports whether pkgPath names one of the listed
// internal packages, e.g. pathInPackages(p, "cache", "sim") matches
// ".../internal/cache" and ".../internal/sim" (and their subpackages).
func pathInPackages(pkgPath string, names ...string) bool {
	for _, n := range names {
		seg := "internal/" + n
		if pkgPath == seg || strings.HasSuffix(pkgPath, "/"+seg) ||
			strings.Contains(pkgPath, "/"+seg+"/") {
			return true
		}
	}
	return false
}

// walkWithStack traverses every file of pkg keeping an ancestor stack;
// fn receives each node with stack holding its ancestors, outermost
// first (stack excludes n itself).
func walkWithStack(pkg *Package, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			fn(n, stack)
			stack = append(stack, n)
			return true
		})
	}
}

// enclosingFunc returns the innermost function declaration or literal
// in the ancestor stack, with its name ("" for a literal).
func enclosingFunc(stack []ast.Node) (node ast.Node, name string) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return fn, ""
		case *ast.FuncDecl:
			return fn, fn.Name.Name
		}
	}
	return nil, ""
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// KeycoverAnalyzer is the static coverage proof behind the cache key
// and the manifest: every field of a covered config struct must be
// written into the annotated encoder's output, or carry an explicit,
// justified exemption. The reflection field-count test
// (TestKeyCoversConfig) can only say "a field was added somewhere";
// keycover pinpoints WHICH field is missing, catches duplicated (dead
// or double-hashed) writes, and reports exemptions that have gone
// stale.
//
// An encoder declares what it covers in its doc comment:
//
//	//tlavet:keycover sim.Config
//
// The named struct and every module-local struct reachable through its
// non-exempt fields (through pointers, slices, arrays, and map values)
// become tracked. A field is covered when the encoder's body selects it
// (cfg.Hierarchy, h.Cores — aliasing through local variables works
// because matching is type-based), or when a whole value of its struct
// is passed to a call (marshal mode: json.Marshal(m) covers every
// exported field not tagged `json:"-"`). A field that must not enter
// the output is annotated at its declaration:
//
//	//tlavet:keyexempt <reason>
//
// Findings are reported at the field declaration and carry the call
// chain from the nearest exported function into the encoder, so the
// report shows how the incomplete encoding is reached.
var KeycoverAnalyzer = &Analyzer{
	Name: "keycover",
	Doc:  "every field of a //tlavet:keycover'd struct is encoded or //tlavet:keyexempt'd",
	Help: "The content-addressed result cache is only sound if the cache key " +
		"covers every result-affecting field. Encode the new field in the " +
		"annotated encoder (and bump the key version), or annotate it " +
		"//tlavet:keyexempt <reason> when it cannot affect results.",
	Default:   true,
	RunModule: runKeycover,
}

const (
	directiveKeycover  = "//tlavet:keycover"
	directiveKeyexempt = "//tlavet:keyexempt"
)

// kcField is one struct field as seen at its declaration.
type kcField struct {
	name      string
	pos       token.Pos
	exported  bool
	jsonSkip  bool // tagged `json:"-"`
	exempt    bool
	exemptPos token.Pos
	// structKey is the tracked-type key of the field's (unwrapped)
	// struct type when it is declared in this module, else "".
	structKey string
}

// kcType is one module-declared struct type, keyed by
// "<pkg path>.<type name>". String keys make matching robust across
// packages: the same type seen through different import instantiations
// compares equal.
type kcType struct {
	key     string
	display string // "pkg.Type" using the package name
	fields  []*kcField
}

func runKeycover(mp *ModulePass) {
	m := mp.Module
	structs := collectStructs(mp)
	g := buildCallGraph(m)

	// Gather annotated encoders in deterministic order.
	type target struct {
		pkg  *Package
		decl *ast.FuncDecl
		fn   *types.Func
		refs []string
		pos  token.Pos
	}
	var targets []target
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil || fd.Body == nil {
					continue
				}
				var refs []string
				var dirPos token.Pos
				for _, c := range fd.Doc.List {
					rest, ok := strings.CutPrefix(c.Text, directiveKeycover)
					if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
						continue
					}
					args := strings.Fields(rest)
					if len(args) == 0 {
						mp.Report(fd.Name.Pos(), "keycover directive names no type",
							"write //tlavet:keycover <Type> or <pkg>.<Type>", nil)
						continue
					}
					refs = append(refs, args...)
					dirPos = c.Pos()
				}
				if len(refs) == 0 {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				targets = append(targets, target{pkg: pkg, decl: fd, fn: canonical(fn), refs: refs, pos: dirPos})
			}
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].pos < targets[j].pos })

	for _, t := range targets {
		chain := entryChain(g, t.fn)
		// Resolve the directive's type references against the module.
		var roots []string
		for _, ref := range t.refs {
			key, err := resolveTypeRef(m, t.pkg, ref, "keycover")
			if err != "" {
				mp.Report(t.decl.Name.Pos(), err, "name a struct type declared in this module", chain)
				continue
			}
			if _, ok := structs[key]; !ok {
				mp.Report(t.decl.Name.Pos(), "keycover target "+ref+" is not a struct type",
					"name a struct type declared in this module", chain)
				continue
			}
			roots = append(roots, key)
		}
		if len(roots) == 0 {
			continue
		}
		checkCoverage(mp, structs, t.pkg, t.decl, displayName(t.fn), roots, chain)
	}
}

// entryChain returns the shortest call chain from an exported module
// function into fn (fn last), for attaching to coverage findings. When
// nothing exported reaches fn the chain is just fn itself.
func entryChain(g *callGraph, fn *types.Func) []string {
	chains := g.chainsToSinks([]*types.Func{fn})
	var best []string
	for n, c := range chains {
		if !n.fn.Exported() {
			continue
		}
		if best == nil || len(c) < len(best) ||
			(len(c) == len(best) && c[0] < best[0]) {
			best = c
		}
	}
	if best == nil {
		return []string{displayName(fn)}
	}
	return best
}

// resolveTypeRef resolves "[pkg.]Type" to a tracked-type key. The
// package part matches a module package NAME (not path); unqualified
// references resolve in the annotated function's own package. The
// second return is a non-empty error message (prefixed with the
// calling check's name) when resolution fails.
func resolveTypeRef(m *Module, pkg *Package, ref, check string) (string, string) {
	if pkgName, typeName, ok := strings.Cut(ref, "."); ok {
		var paths []string
		for _, p := range m.Pkgs {
			if p.Types.Name() == pkgName {
				paths = append(paths, p.Path)
			}
		}
		sort.Strings(paths)
		for _, path := range paths {
			return path + "." + typeName, ""
		}
		return "", check + ": no module package named " + pkgName + " (in " + ref + ")"
	}
	return pkg.Path + "." + ref, ""
}

// collectStructs indexes every struct type declared in the module,
// reading field exemption directives and json tags at the declaration.
// Reasonless keyexempt directives are reported: like //tlavet:allow, an
// exemption without a justification exempts nothing.
func collectStructs(mp *ModulePass) map[string]*kcType {
	m := mp.Module
	modulePkgs := make(map[string]bool, len(m.Pkgs))
	for _, p := range m.Pkgs {
		modulePkgs[p.Path] = true
	}
	structs := make(map[string]*kcType)
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					kt := &kcType{
						key:     pkg.Path + "." + ts.Name.Name,
						display: pkg.Types.Name() + "." + ts.Name.Name,
					}
					for _, field := range st.Fields.List {
						exempt, exemptPos := fieldExemption(mp, field)
						jsonSkip := fieldJSONSkip(field)
						for _, name := range field.Names {
							kf := &kcField{
								name:      name.Name,
								pos:       name.Pos(),
								exported:  ast.IsExported(name.Name),
								jsonSkip:  jsonSkip,
								exempt:    exempt,
								exemptPos: exemptPos,
							}
							if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
								kf.structKey = structKeyOf(v.Type(), modulePkgs)
							}
							kt.fields = append(kt.fields, kf)
						}
					}
					structs[kt.key] = kt
				}
			}
		}
	}
	return structs
}

// fieldExemption scans a field's doc and line comments for a
// `//tlavet:keyexempt <reason>` directive.
func fieldExemption(mp *ModulePass, field *ast.Field) (bool, token.Pos) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, directiveKeyexempt)
			if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
				continue
			}
			if len(strings.Fields(rest)) == 0 {
				mp.Report(field.Pos(), "keyexempt directive has no reason",
					"write //tlavet:keyexempt <reason> so exemptions stay auditable", nil)
				continue
			}
			return true, c.Pos()
		}
	}
	return false, token.NoPos
}

// fieldJSONSkip reports whether the field is tagged `json:"-"`.
func fieldJSONSkip(field *ast.Field) bool {
	if field.Tag == nil {
		return false
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return false
	}
	name, _, _ := strings.Cut(reflect.StructTag(raw).Get("json"), ",")
	return name == "-"
}

// structKeyOf unwraps pointers, slices, arrays, and map values and
// returns the tracked-type key when the result is a named type declared
// in this module, else "".
func structKeyOf(t types.Type, modulePkgs map[string]bool) string {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		case *types.Array:
			t = u.Elem()
			continue
		case *types.Map:
			t = u.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	if !modulePkgs[named.Obj().Pkg().Path()] {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// checkCoverage verifies one encoder against its tracked types.
func checkCoverage(mp *ModulePass, structs map[string]*kcType, pkg *Package,
	decl *ast.FuncDecl, encoder string, roots []string, chain []string) {
	modulePkgs := make(map[string]bool)
	for _, p := range mp.Module.Pkgs {
		modulePkgs[p.Path] = true
	}

	// Expand the tracked set through non-exempt struct fields.
	tracked := make(map[string]bool)
	work := append([]string(nil), roots...)
	for len(work) > 0 {
		key := work[0]
		work = work[1:]
		if tracked[key] {
			continue
		}
		kt, ok := structs[key]
		if !ok {
			continue
		}
		tracked[key] = true
		for _, f := range kt.fields {
			if f.exempt || f.structKey == "" {
				continue
			}
			if _, ok := structs[f.structKey]; ok {
				work = append(work, f.structKey)
			}
		}
	}

	// Scan the encoder body: selector coverage and marshal mode.
	selSites := make(map[string][]token.Pos) // field key → occurrences
	wholesale := make(map[string]bool)       // type key → whole value passed to a call
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			t, ok := pkg.TypeOfExpr(n.X)
			if !ok {
				return true
			}
			key := structKeyOf(t, modulePkgs)
			if key == "" || !tracked[key] {
				return true
			}
			fk := key + "." + n.Sel.Name
			selSites[fk] = append(selSites[fk], n.Sel.Pos())
		case *ast.CallExpr:
			for _, arg := range n.Args {
				t, ok := pkg.TypeOfExpr(arg)
				if !ok {
					continue
				}
				key := structKeyOf(t, modulePkgs)
				if key != "" && tracked[key] {
					markWholesale(structs, wholesale, key)
				}
			}
		}
		return true
	})

	// Report, in deterministic tracked-type order.
	keys := make([]string, 0, len(tracked))
	for k := range tracked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		kt := structs[key]
		for _, f := range kt.fields {
			fk := key + "." + f.name
			display := kt.display + "." + f.name
			sites := selSites[fk]
			wholesaleCovered := wholesale[key] && f.exported && !f.jsonSkip
			covered := len(sites) > 0 || wholesaleCovered
			if f.exempt {
				// Only an explicit selector write contradicts an exemption;
				// wholesale marshalling by a different encoder does not make
				// the canonical-form exemption stale.
				if len(sites) > 0 {
					mp.Report(f.pos,
						"stale //tlavet:keyexempt: field "+display+" IS written by "+encoder,
						"drop the exemption or stop encoding the field", chain)
				}
				continue
			}
			if !covered {
				mp.Report(f.pos,
					"field "+display+" is never written by "+encoder+
						" and has no //tlavet:keyexempt (via "+strings.Join(chain, " → ")+")",
					"encode the field (and bump the key/schema version) or annotate //tlavet:keyexempt <reason>",
					chain)
				continue
			}
			// Duplicate writes are only meaningful for leaves: a struct
			// field is legitimately selected once per nested field
			// (cfg.CPU.Width, cfg.CPU.ROB…).
			isStruct := f.structKey != "" && tracked[f.structKey]
			if !isStruct && len(sites) > 1 {
				mp.Report(sites[1],
					"field "+display+" is written "+strconv.Itoa(len(sites))+" times by "+encoder+
						": the extra write is dead or double-encodes the field",
					"encode each field exactly once", chain)
			}
		}
	}
}

// markWholesale marks key and, transitively, the struct types of its
// marshal-visible fields as wholly encoded: passing the value to an
// encoder covers every exported field not tagged `json:"-"`.
func markWholesale(structs map[string]*kcType, wholesale map[string]bool, key string) {
	if wholesale[key] {
		return
	}
	wholesale[key] = true
	kt, ok := structs[key]
	if !ok {
		return
	}
	for _, f := range kt.fields {
		if !f.exported || f.jsonSkip || f.exempt || f.structKey == "" {
			continue
		}
		if _, ok := structs[f.structKey]; ok {
			markWholesale(structs, wholesale, f.structKey)
		}
	}
}

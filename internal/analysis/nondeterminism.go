package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// NondeterminismAnalyzer guards the simulator's bit-reproducibility:
// trace-driven runs (CMP$im-style) must produce identical results for
// identical (config, seed) inputs, so the simulation packages may not
// consult wall clocks or global random sources, and may not mutate
// simulation state (or append to output) in map iteration order.
var NondeterminismAnalyzer = &Analyzer{
	Name: "nondeterminism",
	Doc:  "forbid time.Now, math/rand, and state-mutating map iteration in simulation packages",
	Help: "Simulation results must replay byte-identically. Replace time.Now " +
		"and math/rand with the seeded generators, and iterate maps through " +
		"sorted keys when the order can reach simulation state.",
	Default: true,
	Run:     runNondeterminism,
}

// nondetPackages lists the internal packages whose behaviour must be a
// pure function of (configuration, seed).
var nondetPackages = []string{"cache", "hierarchy", "sim", "replacement", "cpu", "trace"}

func runNondeterminism(pass *Pass) {
	if !pathInPackages(pass.Pkg.Path, nondetPackages...) {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Report(imp.Pos(),
					"import of "+path+" in a simulation package: global sources are unseeded and not reproducible",
					"use the repository's deterministic xorshift rng (internal/trace) seeded from the run config")
			}
		}
	}
	walkWithStack(pass.Pkg, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			for _, fn := range []string{"Now", "Since", "Until"} {
				if isPackageFunc(pass, n, "time", fn) {
					pass.Report(n.Pos(),
						"time."+fn+" in a simulation package makes runs irreproducible",
						"derive timing from the simulated clock, or accept a timestamp from the caller")
				}
			}
			// Use-site detection resolves the selector through the type
			// checker, so an aliased import (mrand "math/rand") is caught
			// even when the import line itself was suppressed.
			switch selPkgPath(pass, n) {
			case "math/rand", "math/rand/v2":
				pass.Report(n.Pos(),
					"math/rand use in a simulation package: global sources are unseeded and not reproducible",
					"use the repository's deterministic xorshift rng (internal/trace) seeded from the run config")
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Range" &&
				isSyncMapType(pass.TypeOf(sel.X)) {
				pass.Report(n.Pos(),
					"sync.Map iteration order is nondeterministic in a simulation package",
					"simulation state is single-threaded per run: use a plain map and iterate over sorted keys")
			}
		case *ast.RangeStmt:
			checkMapRange(pass, n)
		}
	})
}

// selPkgPath resolves sel.X to the path of an imported package (under
// any alias), or "" when sel.X is not a package name.
func selPkgPath(pass *Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// isPackageFunc reports whether sel is a use of pkgName.funcName where
// pkgName resolves to the package import (not a local variable).
func isPackageFunc(pass *Pass, sel *ast.SelectorExpr, pkgPath, funcName string) bool {
	if sel.Sel.Name != funcName {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if obj, ok := pass.Pkg.Info.Uses[id]; ok {
		pn, ok := obj.(*types.PkgName)
		return ok && pn.Imported().Path() == pkgPath
	}
	// Without type info, fall back to the conventional package name.
	return id.Name == pkgPath
}

// checkMapRange flags `for range m` over a map whose body mutates
// non-local state or appends to a slice: the iteration order is
// randomised by the runtime, so such loops produce run-to-run
// different simulation results.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	var why string
	var at ast.Node
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if isStateExpr(lhs) {
					why, at = "mutates shared state", n
					return false
				}
			}
		case *ast.IncDecStmt:
			if isStateExpr(n.X) {
				why, at = "mutates shared state", n
				return false
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				why, at = "appends to output", n
				return false
			}
		}
		return true
	})
	if why != "" {
		pass.Report(at.Pos(),
			"map iteration order is nondeterministic and this loop body "+why,
			"iterate over sorted keys, or restructure to an order-independent form")
	}
}

// isStateExpr reports whether e writes through a selector, index, or
// pointer dereference — i.e. to state that outlives the loop iteration.
func isStateExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return isStateExpr(e.X)
	}
	return false
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds tlavet's module-wide call graph, the substrate of
// the interprocedural checks. The graph is conservative in the
// direction the hot-path guarantee needs: an edge is added whenever a
// call MIGHT reach a function, so reachability over-approximates and a
// clean report really means clean.
//
// Resolution covers the three call shapes the simulator uses:
//
//   - direct calls to package-level functions and concrete methods
//     (including the devirtualized replacement-policy ladder, where
//     internal/cache calls *replacement.LRUStack methods directly);
//   - interface method calls, resolved by implements-matching: an edge
//     is added to every method of every named type in the module whose
//     (pointer) method set satisfies the interface — this is how a call
//     through replacement.Policy or telemetry.Probe fans out to the
//     concrete implementations;
//   - function literals, whose bodies are attributed to the enclosing
//     declared function (a closure runs at most where its creator could
//     run, so this keeps reachability conservative without modelling
//     function values).
//
// Calls through function-typed variables other than literals (stored
// callbacks) are not resolved; the simulator's hot path has none, and
// the escape scanner independently flags closure creation on hot paths
// so a callback cannot silently smuggle an allocation in. To keep that
// gap from hiding hand-offs, a REFERENCE edge is added whenever a
// function or method name is mentioned in non-call position (a method
// value stored in a variable, a function passed as an argument, a
// generic function instantiated for later use): if F references G, G is
// treated as callable wherever F runs. Reference-only targets are also
// recorded per node (cgNode.refs) so detflow can attribute dynamic
// calls inside nondeterministic regions to the functions the enclosing
// body actually took a reference to.

// callSite is one resolved call edge.
type callSite struct {
	callee *types.Func
	pos    token.Pos
}

// cgNode is one declared function in the call graph.
type cgNode struct {
	fn    *types.Func
	decl  *ast.FuncDecl
	pkg   *Package
	calls []callSite
	// refs lists module functions referenced in non-call position within
	// this body (method values, callback arguments, instantiations), in
	// source order. Each ref also appears in calls as a conservative
	// edge.
	refs []*types.Func
}

// callGraph is the module-wide call graph, keyed by the canonical
// (generic-origin) *types.Func of each declared function.
type callGraph struct {
	module *Module
	nodes  map[*types.Func]*cgNode
	// namedTypes lists every named (non-interface) type declared in the
	// module, for implements-matching.
	namedTypes []*types.Named
}

// buildCallGraph constructs the call graph of every non-test function
// declared in m.
func buildCallGraph(m *Module) *callGraph {
	g := &callGraph{module: m, nodes: make(map[*types.Func]*cgNode)}
	g.collectNamedTypes()

	// First pass: one node per declared function, so edge resolution can
	// recognise module-internal callees.
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					g.nodes[canonical(fn)] = &cgNode{fn: canonical(fn), decl: fd, pkg: pkg}
				}
			}
		}
	}
	// Second pass: resolve the calls in each body.
	for _, n := range g.nodes {
		g.resolveCalls(n)
	}
	return g
}

// canonical maps an instantiated generic function or method back to its
// declared origin, so each declaration is a single graph node.
func canonical(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// collectNamedTypes gathers the module's named non-interface types.
func (g *callGraph) collectNamedTypes() {
	for _, pkg := range g.module.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			g.namedTypes = append(g.namedTypes, named)
		}
	}
	sort.Slice(g.namedTypes, func(i, j int) bool {
		return g.namedTypes[i].Obj().Id() < g.namedTypes[j].Obj().Id()
	})
}

// resolveCalls walks n's body (function literals included) and records
// every call edge it can resolve, plus a reference edge for every
// function or method name used in non-call position.
func (g *callGraph) resolveCalls(n *cgNode) {
	// handled marks expressions already consumed as the Fun of a call or
	// as part of a processed selector, so the reference pass below does
	// not double-count them (a duplicate edge would be harmless, but the
	// refs list feeds diagnostics and should reflect true references).
	handled := make(map[ast.Node]bool)
	ast.Inspect(n.decl, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			for _, callee := range g.callees(n.pkg, node) {
				n.calls = append(n.calls, callSite{callee: callee, pos: node.Pos()})
			}
			fun := ast.Unparen(node.Fun)
			handled[fun] = true
			// An instantiation in call position (Map[int](x)) wraps the
			// name in an index expression; the name itself is handled.
			if ix, ok := fun.(*ast.IndexExpr); ok {
				handled[ast.Unparen(ix.X)] = true
			}
			if ix, ok := fun.(*ast.IndexListExpr); ok {
				handled[ast.Unparen(ix.X)] = true
			}
		case *ast.SelectorExpr:
			if handled[node] {
				handled[node.Sel] = true
				return true
			}
			handled[node.Sel] = true
			for _, fn := range g.refTargets(n.pkg, node) {
				n.calls = append(n.calls, callSite{callee: fn, pos: node.Pos()})
				n.refs = append(n.refs, fn)
			}
		case *ast.Ident:
			if handled[node] {
				return true
			}
			if fn, ok := n.pkg.Info.Uses[node].(*types.Func); ok {
				// Only module-declared functions matter; stdlib references
				// have no node and would be dropped by reachability anyway.
				c := canonical(fn)
				if _, declared := g.nodes[c]; declared {
					n.calls = append(n.calls, callSite{callee: c, pos: node.Pos()})
					n.refs = append(n.refs, c)
				}
			}
		}
		return true
	})
}

// refTargets resolves a non-call use of a method or package-qualified
// function name: a method value (w.Decision), a method expression
// (T.Method), or a function mentioned as a value (pkg.Fn). Interface
// method values fan out to every implementing module type, mirroring
// callees.
func (g *callGraph) refTargets(pkg *Package, sel *ast.SelectorExpr) []*types.Func {
	if s, ok := pkg.Info.Selections[sel]; ok {
		if s.Kind() != types.MethodVal && s.Kind() != types.MethodExpr {
			return nil
		}
		m := s.Obj().(*types.Func)
		if iface, ok := s.Recv().Underlying().(*types.Interface); ok {
			return g.implementers(iface, m.Name())
		}
		return []*types.Func{canonical(m)}
	}
	if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok {
		c := canonical(fn)
		if _, declared := g.nodes[c]; declared {
			return []*types.Func{c}
		}
	}
	return nil
}

// callees resolves one call expression to the module functions it may
// invoke (empty for builtins, conversions, stdlib calls, and dynamic
// calls through function values).
func (g *callGraph) callees(pkg *Package, call *ast.CallExpr) []*types.Func {
	fn := ast.Unparen(call.Fun)
	// An explicitly instantiated generic call (apply[int](x)) wraps the
	// function name in an index expression; resolve the name itself.
	switch ix := fn.(type) {
	case *ast.IndexExpr:
		fn = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fn = ast.Unparen(ix.X)
	}
	switch fun := fn.(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return []*types.Func{canonical(fn)}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			m := sel.Obj().(*types.Func)
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				return g.implementers(iface, m.Name())
			}
			return []*types.Func{canonical(m)}
		}
		// Package-qualified call (pkg.Fn): no Selection entry, but the
		// selector identifier resolves directly.
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return []*types.Func{canonical(fn)}
		}
	}
	return nil
}

// implementers returns, for an interface method call, the named method
// of every module type whose pointer method set satisfies the
// interface. Matching the whole interface (not just the one method)
// keeps the fan-out to types that can actually flow into the call.
func (g *callGraph) implementers(iface *types.Interface, method string) []*types.Func {
	var out []*types.Func
	for _, named := range g.namedTypes {
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		if m := methodByName(named, method); m != nil {
			out = append(out, canonical(m))
		}
	}
	return out
}

// methodByName finds a (possibly promoted) method in named's pointer
// method set.
func methodByName(named *types.Named, name string) *types.Func {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		if fn, ok := ms.At(i).Obj().(*types.Func); ok && fn.Name() == name {
			return fn
		}
	}
	return nil
}

// displayName renders fn for call chains and root lists:
// "pkg.Func" for package functions, "pkg.Recv.Method" for methods.
func displayName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// reachableFrom runs a multi-source BFS from roots and returns, for
// every reachable node, the shortest root→node call path (root first,
// node last, rendered with displayName). Iteration order is made
// deterministic by sorting each frontier.
func (g *callGraph) reachableFrom(roots []*types.Func) map[*cgNode][]string {
	chains := make(map[*cgNode][]string)
	frontier := make([]*cgNode, 0, len(roots))
	seen := make(map[*cgNode]bool)
	for _, r := range roots {
		if n := g.nodes[canonical(r)]; n != nil && !seen[n] {
			seen[n] = true
			chains[n] = []string{displayName(n.fn)}
			frontier = append(frontier, n)
		}
	}
	sortNodes(frontier)
	for len(frontier) > 0 {
		var next []*cgNode
		for _, n := range frontier {
			for _, cs := range n.calls {
				cn := g.nodes[cs.callee]
				if cn == nil || seen[cn] {
					continue
				}
				seen[cn] = true
				chain := make([]string, len(chains[n]), len(chains[n])+1)
				copy(chain, chains[n])
				chains[cn] = append(chain, displayName(cn.fn))
				next = append(next, cn)
			}
		}
		sortNodes(next)
		frontier = next
	}
	return chains
}

func sortNodes(ns []*cgNode) {
	sort.Slice(ns, func(i, j int) bool {
		a, b := displayName(ns[i].fn), displayName(ns[j].fn)
		if a != b {
			return a < b
		}
		return ns[i].fn.Pos() < ns[j].fn.Pos()
	})
}

// directiveHotPath is the annotation marking a zero-allocation root;
// directiveDetSink marks a deterministic-output sink (a function whose
// output bytes are part of the byte-determinism contract).
const (
	directiveHotPath = "//tlavet:hotpath"
	directiveDetSink = "//tlavet:detsink"
)

// hasDirective reports whether a comment group carries the given
// bare annotation on a line of its own.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// annotatedRoots collects the module's functions annotated with the
// given directive: function declarations whose doc comment contains it,
// plus — for annotated interface methods — every module method that
// implements the annotated interface (the paper-facing case: annotating
// replacement.Policy's Touch ropes in every concrete policy's Touch).
func (g *callGraph) annotatedRoots(directive string) []*types.Func {
	var roots []*types.Func
	for _, pkg := range g.module.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					if !hasDirective(d.Doc, directive) {
						continue
					}
					if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
						roots = append(roots, canonical(fn))
					}
				case *ast.GenDecl:
					roots = append(roots, g.interfaceRoots(pkg, d, directive)...)
				}
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		a, b := displayName(roots[i]), displayName(roots[j])
		if a != b {
			return a < b
		}
		return roots[i].Pos() < roots[j].Pos()
	})
	return roots
}

// hotPathRoots collects the module's `//tlavet:hotpath` roots.
func (g *callGraph) hotPathRoots() []*types.Func {
	return g.annotatedRoots(directiveHotPath)
}

// interfaceRoots expands directive annotations on interface method
// declarations into the concrete implementing methods.
func (g *callGraph) interfaceRoots(pkg *Package, d *ast.GenDecl, directive string) []*types.Func {
	var roots []*types.Func
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		it, ok := ts.Type.(*ast.InterfaceType)
		if !ok {
			continue
		}
		ifaceType, ok := pkg.TypeOfExpr(ts.Type)
		if !ok {
			continue
		}
		iface, ok := ifaceType.Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for _, field := range it.Methods.List {
			if !hasDirective(field.Doc, directive) || len(field.Names) == 0 {
				continue
			}
			roots = append(roots, g.implementers(iface, field.Names[0].Name)...)
		}
	}
	return roots
}

// chainsToSinks runs a reverse multi-source BFS from sinks and returns,
// for every function that can reach one, the shortest function→sink
// call path (function first, sink last, rendered with displayName).
// This is reachableFrom run against the transposed graph: where the
// hot-path check asks "what can a root reach", the taint check asks
// "what can reach a sink".
func (g *callGraph) chainsToSinks(sinks []*types.Func) map[*cgNode][]string {
	// Transpose: callee → callers, caller lists sorted for determinism.
	callers := make(map[*cgNode][]*cgNode)
	nodes := make([]*cgNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		nodes = append(nodes, n)
	}
	sortNodes(nodes)
	for _, n := range nodes {
		seenCallee := make(map[*cgNode]bool)
		for _, cs := range n.calls {
			cn := g.nodes[cs.callee]
			if cn == nil || seenCallee[cn] {
				continue
			}
			seenCallee[cn] = true
			callers[cn] = append(callers[cn], n)
		}
	}
	chains := make(map[*cgNode][]string)
	frontier := make([]*cgNode, 0, len(sinks))
	seen := make(map[*cgNode]bool)
	for _, s := range sinks {
		if n := g.nodes[canonical(s)]; n != nil && !seen[n] {
			seen[n] = true
			chains[n] = []string{displayName(n.fn)}
			frontier = append(frontier, n)
		}
	}
	sortNodes(frontier)
	for len(frontier) > 0 {
		var next []*cgNode
		for _, n := range frontier {
			for _, c := range callers[n] {
				if seen[c] {
					continue
				}
				seen[c] = true
				chain := make([]string, 0, len(chains[n])+1)
				chain = append(chain, displayName(c.fn))
				chain = append(chain, chains[n]...)
				chains[c] = chain
				next = append(next, c)
			}
		}
		sortNodes(next)
		frontier = next
	}
	return chains
}

// TypeOfExpr resolves the static type of e, reporting success.
func (p *Package) TypeOfExpr(e ast.Expr) (types.Type, bool) {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type, true
	}
	return nil, false
}

package analysis

import (
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"testing"
)

// TestHotPathRootsMatchBenchmarkEntryPoints is the static/dynamic
// cross-check: alloc_test.go proves zero allocs per instruction at
// runtime by driving the trace generator, the hierarchy access, and the
// core timing model; the hotpath analyzer proves the same property
// statically from its `//tlavet:hotpath` roots. This test pins the two
// to each other — every function the benchmark stepper drives must be
// an annotated root, so neither guard can silently drift away from the
// other.
func TestHotPathRootsMatchBenchmarkEntryPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full-module load in -short mode")
	}
	m, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	roots := HotPathRoots(m)
	rootSet := make(map[string]bool, len(roots))
	for _, r := range roots {
		rootSet[r] = true
	}

	// The functions the alloc benchmark's stepper calls directly.
	stepperEntryPoints := []string{
		"trace.Synthetic.Next",
		"hierarchy.Hierarchy.AccessAt",
		"cpu.Core.Instr",
	}
	for _, want := range stepperEntryPoints {
		if !rootSet[want] {
			t.Errorf("benchmark entry point %s is not an annotated hot-path root; roots = %v", want, roots)
		}
	}
	// Access (the unbanked variant) and the policy ladder's Touch/Victim
	// — annotated on the replacement.Policy interface — must be present
	// too: every concrete policy a mode can configure is reachable.
	if !rootSet["hierarchy.Hierarchy.Access"] {
		t.Errorf("hierarchy.Hierarchy.Access missing from roots %v", roots)
	}
	for _, policy := range []string{"LRUStack", "NRUBits", "SRRIPTable", "random"} {
		for _, method := range []string{"Touch", "Victim"} {
			if name := "replacement." + policy + "." + method; !rootSet[name] {
				t.Errorf("policy root %s missing; roots = %v", name, roots)
			}
		}
	}
}

// TestAllocTestModeList pins the benchmark's machine-mode list. The
// hotpath analyzer's root set guards every one of these configurations
// (they all route through the same annotated entry points); if a mode
// is added or renamed, this test fails to force re-checking that its
// code paths are covered by the static gate.
func TestAllocTestModeList(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "alloc_test.go"))
	if err != nil {
		t.Fatalf("reading alloc_test.go: %v", err)
	}
	re := regexp.MustCompile(`\{"([a-z0-9-]+)",\s*(?:nil|func\()`)
	var modes []string
	for _, m := range re.FindAllStringSubmatch(string(data), -1) {
		modes = append(modes, m[1])
	}
	sort.Strings(modes)
	want := []string{
		"baseline-inclusive", "eci", "exclusive", "non-inclusive",
		"prefetch", "qbs", "tlh", "victim-cache",
	}
	if !reflect.DeepEqual(modes, want) {
		t.Fatalf("alloc_test.go machine modes = %v, want %v\n(new mode? verify its hot path is reachable from the //tlavet:hotpath roots, then update this list)", modes, want)
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmpAnalyzer protects the metric pipeline from floating-point
// equality: IPC, throughput, and speedup values are products of long
// accumulation chains, so == / != on them either never fires or fires
// by accident of rounding — both silently skew the figures the paper
// comparison is built from. The check covers internal/metrics and
// internal/experiments, where every float is a result value.
var FloatCmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "no == or != on float expressions in internal/metrics and internal/experiments",
	Help: "Exact float equality makes metric comparisons depend on summation " +
		"order. Compare with an explicit epsilon, or restructure to integer " +
		"counters.",
	Default: true,
	Run:     runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	if !pathInPackages(pass.Pkg.Path, "metrics", "experiments") {
		return
	}
	walkWithStack(pass.Pkg, func(n ast.Node, stack []ast.Node) {
		cmp, ok := n.(*ast.BinaryExpr)
		if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
			return
		}
		if isFloatExpr(pass, cmp.X) || isFloatExpr(pass, cmp.Y) {
			pass.Report(cmp.Pos(),
				"floating-point "+cmp.Op.String()+" comparison",
				"compare against an epsilon (math.Abs(a-b) < eps) or restructure with </<=")
		}
	})
}

// isFloatExpr reports whether e's static type is a floating-point kind
// (including untyped float constants).
func isFloatExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

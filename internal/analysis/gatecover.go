package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// GatecoverAnalyzer is the static coverage proof behind mode gates:
// a validator that decides whether a restricted execution mode can
// faithfully simulate a configuration must examine every field of that
// configuration, or exempt it with a reason. The motivating gate is
// sim.validateSharded: the sharded LLC mode only supports a slice of
// the config space, and a new knob added to sim.Config or
// hierarchy.Config must be explicitly accepted (read and compared) or
// rejected by the gate before it can silently change what a "faithful"
// sharded run means.
//
// A gate declares what it covers in its doc comment:
//
//	//tlavet:gatecover sim.Config
//
// The named struct and every module-local struct reachable through its
// non-exempt fields become tracked. A field is examined when the gate's
// body selects it (aliasing through locals works — matching is
// type-based), or when a whole value of its struct type is passed to
// another gate annotated for that type. Fields the gate need not look
// at carry, at their declaration:
//
//	//tlavet:gateexempt <reason>
//
// An exemption whose field IS examined is reported as stale, so the
// justified-ignorance set can only shrink.
var GatecoverAnalyzer = &Analyzer{
	Name: "gatecover",
	Doc:  "every field of a //tlavet:gatecover'd config is examined by the gate or //tlavet:gateexempt'd",
	Help: "A mode gate must accept or reject every configuration knob. Read and " +
		"compare the new field in the annotated validator (or pass the value to a " +
		"gate annotated for its type), or annotate the field //tlavet:gateexempt " +
		"<reason> when any value is faithful in the gated mode.",
	Default:   true,
	RunModule: runGatecover,
}

const (
	directiveGatecover  = "//tlavet:gatecover"
	directiveGateexempt = "//tlavet:gateexempt"
)

func runGatecover(mp *ModulePass) {
	m := mp.Module
	structs := collectCoverIndex(mp, directiveGateexempt)
	g := buildCallGraph(m)

	// Gather annotated gates in deterministic order.
	type target struct {
		pkg  *Package
		decl *ast.FuncDecl
		fn   *types.Func
		refs []string
		pos  token.Pos
	}
	var targets []target
	gateFor := make(map[*types.Func]map[string]bool) // gate → covered type keys
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil || fd.Body == nil {
					continue
				}
				var refs []string
				var dirPos token.Pos
				for _, c := range fd.Doc.List {
					rest, ok := strings.CutPrefix(c.Text, directiveGatecover)
					if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
						continue
					}
					args := strings.Fields(rest)
					if len(args) == 0 {
						mp.Report(fd.Name.Pos(), "gatecover directive names no type",
							"write //tlavet:gatecover <Type> or <pkg>.<Type>", nil)
						continue
					}
					refs = append(refs, args...)
					dirPos = c.Pos()
				}
				if len(refs) == 0 {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				t := target{pkg: pkg, decl: fd, fn: canonical(fn), refs: refs, pos: dirPos}
				targets = append(targets, t)
				keys := make(map[string]bool)
				for _, ref := range t.refs {
					if key, errMsg := resolveTypeRef(m, pkg, ref, "gatecover"); errMsg == "" {
						keys[key] = true
					}
				}
				gateFor[t.fn] = keys
			}
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].pos < targets[j].pos })

	for _, t := range targets {
		chain := entryChain(g, t.fn)
		var roots []string
		for _, ref := range t.refs {
			key, errMsg := resolveTypeRef(m, t.pkg, ref, "gatecover")
			if errMsg != "" {
				mp.Report(t.decl.Name.Pos(), errMsg, "name a struct type declared in this module", chain)
				continue
			}
			if _, ok := structs[key]; !ok {
				mp.Report(t.decl.Name.Pos(), "gatecover target "+ref+" is not a struct type",
					"name a struct type declared in this module", chain)
				continue
			}
			roots = append(roots, key)
		}
		if len(roots) == 0 {
			continue
		}
		checkGateCoverage(mp, g, structs, gateFor, t.pkg, t.decl, displayName(t.fn), roots, chain)
	}
}

// checkGateCoverage verifies one gate against its tracked types.
func checkGateCoverage(mp *ModulePass, g *callGraph, structs map[string]*scType,
	gateFor map[*types.Func]map[string]bool, pkg *Package, decl *ast.FuncDecl,
	gate string, roots []string, chain []string) {

	modulePkgs := modulePackageSet(mp.Module)

	// Expand the tracked set through non-exempt struct fields.
	tracked := make(map[string]bool)
	work := append([]string(nil), roots...)
	for len(work) > 0 {
		key := work[0]
		work = work[1:]
		if tracked[key] {
			continue
		}
		kt, ok := structs[key]
		if !ok {
			continue
		}
		tracked[key] = true
		for _, f := range kt.fields {
			if f.exempt || f.structKey == "" || f.indirect {
				continue
			}
			if _, ok := structs[f.structKey]; ok {
				work = append(work, f.structKey)
			}
		}
	}

	// Scan the gate body: selector reads and whole-value delegation to
	// another annotated gate.
	selSites := make(map[string][]token.Pos)
	wholesale := make(map[string]bool)
	var markWholesale func(key string)
	markWholesale = func(key string) {
		if key == "" || wholesale[key] {
			return
		}
		wholesale[key] = true
		kt, ok := structs[key]
		if !ok {
			return
		}
		for _, f := range kt.fields {
			if f.exempt || f.structKey == "" {
				continue
			}
			markWholesale(f.structKey)
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			t, ok := pkg.TypeOfExpr(n.X)
			if !ok {
				return true
			}
			key := structKeyOf(t, modulePkgs)
			if key == "" || !tracked[key] {
				return true
			}
			fk := key + "." + n.Sel.Name
			selSites[fk] = append(selSites[fk], n.Sel.Pos())
		case *ast.CallExpr:
			var covered map[string]bool
			for _, callee := range g.callees(pkg, n) {
				if keys := gateFor[callee]; len(keys) > 0 {
					if covered == nil {
						covered = make(map[string]bool)
					}
					for k := range keys {
						covered[k] = true
					}
				}
			}
			if covered == nil {
				return true
			}
			for _, arg := range n.Args {
				t, ok := pkg.TypeOfExpr(arg)
				if !ok {
					continue
				}
				key := structKeyOf(t, modulePkgs)
				if key != "" && tracked[key] && covered[key] {
					markWholesale(key)
				}
			}
		}
		return true
	})

	// Report in deterministic tracked-type order.
	keys := make([]string, 0, len(tracked))
	for k := range tracked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		kt := structs[key]
		for _, f := range kt.fields {
			fk := key + "." + f.name
			display := kt.display + "." + f.name
			sites := selSites[fk]
			if f.exempt {
				if len(sites) > 0 {
					mp.Report(f.pos,
						"stale //tlavet:gateexempt: field "+display+" IS examined by "+gate,
						"drop the exemption or stop examining the field", chain)
				}
				continue
			}
			if len(sites) > 0 || wholesale[key] {
				continue
			}
			mp.Report(f.pos,
				"field "+display+" is never examined by "+gate+
					" and has no //tlavet:gateexempt (via "+strings.Join(chain, " → ")+")",
				"accept or reject the field in "+gate+", or annotate //tlavet:gateexempt <reason>",
				chain)
		}
	}
}

package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadPlanted writes one throwaway package to disk and runs a single
// analyzer over it — the harness for the planted-regression tests,
// which simulate exactly the change each prover exists to catch.
func loadPlanted(t *testing.T, a *Analyzer, src string) []Diagnostic {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "planted.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "tlacache/internal/planted")
	if err != nil {
		t.Fatalf("loading planted package: %v", err)
	}
	return RunPackage(pkg.Fset, pkg, []*Analyzer{a}, "")
}

// TestResetcoverPlantedRegression adds a field to a pooled type
// without touching its reset method: the exact regression resetcover
// exists for must fire.
func TestResetcoverPlantedRegression(t *testing.T) {
	diags := loadPlanted(t, ResetcoverAnalyzer, `package planted

type Pool struct {
	a int
	b int // the newly-added field nobody told Reset about
}

// Reset restores a — and silently forgets b.
//
//tlavet:resetcover
func (p *Pool) Reset() {
	p.a = 0
}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "planted.Pool.b is never reset") {
		t.Fatalf("planted never-reset field: got %v, want one finding naming planted.Pool.b", diags)
	}
}

// TestGatecoverPlantedRegression adds a config knob the mode gate
// never examines.
func TestGatecoverPlantedRegression(t *testing.T) {
	diags := loadPlanted(t, GatecoverAnalyzer, `package planted

type Config struct {
	A int
	B int // the new knob the gate never heard of
}

// validate gates Config for the restricted mode.
//
//tlavet:gatecover Config
func validate(cfg Config) bool {
	return cfg.A == 0
}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "planted.Config.B is never examined") {
		t.Fatalf("planted unexamined knob: got %v, want one finding naming planted.Config.B", diags)
	}
}

// TestLLCWritePlantedRegression writes LLC-owned state from
// capture-reachable code without going through an accessor, and
// requires the finding to carry the root→site chain.
func TestLLCWritePlantedRegression(t *testing.T) {
	diags := loadPlanted(t, LLCWriteAnalyzer, `package planted

type cache struct{ tags []uint64 }

type hier struct {
	//tlavet:llcstate
	llc *cache
}

func (h *hier) fastFill(la uint64) {
	h.llc.tags[0] = la // bypasses the sink
}

// capture is the capture-phase entry point.
//
//tlavet:llccapture
func capture(h *hier) {
	h.fastFill(1)
}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "write to LLC-owned state planted.hier.llc") {
		t.Fatalf("planted rogue LLC write: got %v, want one finding naming planted.hier.llc", diags)
	}
	if len(diags[0].Chain) < 2 || diags[0].Chain[0] != "planted.capture" {
		t.Fatalf("finding chain = %v, want root→site chain starting at planted.capture", diags[0].Chain)
	}
}

// dynamicResetProofs maps every type that must carry a
// //tlavet:resetcover method to the dynamic test that proves the reset
// restores freshly-constructed state byte-for-byte. The static prover
// (field coverage) and the dynamic proof (value equivalence) are
// complementary; this table is the contract that neither side silently
// loses a type.
var dynamicResetProofs = map[string]string{
	"hierarchy.Hierarchy":    "sim.TestResetEquivalence (pooled machine reuse across all machine modes)",
	"hierarchy.victimCache":  "sim.TestResetEquivalence (victim-cache machine modes exercise vc.reset)",
	"cache.Cache":            "sim.TestResetEquivalence (hierarchy.Reset resets every level's Cache)",
	"prefetch.Streamer":      "sim.TestResetEquivalence (prefetch machine modes reset the streamers)",
	"cpu.Core":               "sim.TestResetEquivalence (cores are reset on every pooled acquire)",
	"trace.Synthetic":        "sim pooled-generator tests (acquireSynthetic reinitialises via Reinit)",
	"replacement.LRUStack":   "replacement.TestResetStateEquivalence (StateResetter audit)",
	"replacement.NRUBits":    "replacement.TestResetStateEquivalence (StateResetter audit)",
	"replacement.SRRIPTable": "replacement.TestResetStateEquivalence (StateResetter audit)",
	"replacement.random":     "replacement.TestResetStateEquivalence (StateResetter audit)",
	"replacement.bip":        "replacement.TestResetStateEquivalence (StateResetter audit)",
	"replacement.dip":        "replacement.TestResetStateEquivalence (StateResetter audit)",
	"replacement.brrip":      "replacement.TestResetStateEquivalence (StateResetter audit)",
	"replacement.drrip":      "replacement.TestResetStateEquivalence (StateResetter audit)",
}

// TestResetcoverMatchesDynamicResetProofs cross-checks the static and
// dynamic reset proofs: the set of resetcover-annotated receiver types
// must equal the set of types the dynamic equivalence tests exercise.
// An annotation dropped from a type fails here before the dynamic test
// can rot; a new annotated type fails here until a dynamic proof is
// named for it.
func TestResetcoverMatchesDynamicResetProofs(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full-module load in -short mode")
	}
	m, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	got := ResetcoverTargets(m)
	seen := make(map[string]bool, len(got))
	for _, name := range got {
		seen[name] = true
		if _, ok := dynamicResetProofs[name]; !ok {
			t.Errorf("%s carries //tlavet:resetcover but no dynamic proof is on record; "+
				"add it to dynamicResetProofs with the test that exercises its reset", name)
		}
	}
	for name, proof := range dynamicResetProofs {
		if !seen[name] {
			t.Errorf("%s is exercised dynamically (%s) but carries no //tlavet:resetcover; "+
				"the static completeness proof lost it", name, proof)
		}
	}
}

// TestRuleParitySARIF is the analysis-side half of the rule-parity
// check: every registered analyzer must render a SARIF rule whose
// short description and help text are non-empty, so a future check
// cannot ship without remediation guidance.
func TestRuleParitySARIF(t *testing.T) {
	out, err := SARIF(nil)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
						Help struct {
							Text string `json:"text"`
						} `json:"help"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatal(err)
	}
	rules := make(map[string]struct{ short, help string })
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		rules[r.ID] = struct{ short, help string }{r.ShortDescription.Text, r.Help.Text}
	}
	for _, a := range Analyzers() {
		r, ok := rules[a.Name]
		if !ok {
			t.Errorf("%s: registered analyzer has no SARIF rule", a.Name)
			continue
		}
		if r.short == "" {
			t.Errorf("%s: SARIF rule has an empty short description", a.Name)
		}
		if r.help == "" {
			t.Errorf("%s: SARIF rule has an empty help text (set Analyzer.Help)", a.Name)
		}
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file classifies heap-allocation constructs for the hotpath
// analyzer. The classification is syntactic-plus-types, not a real
// escape analysis: it flags every construct that MAY allocate, which is
// the right polarity for a gate — gc's escape analysis can only remove
// allocations the source admits, so a body with zero flagged constructs
// is zero-alloc under any compiler. Constructs the compiler provably
// keeps on the stack (non-capturing literals, value struct literals)
// are not flagged; everything borderline is, and intentional sites are
// suppressed with `//tlavet:allow hotpath <reason>`.

// allocFinding is one may-allocate construct in a function body.
type allocFinding struct {
	pos        token.Pos
	msg        string
	suggestion string
}

// scanAllocs returns every may-allocate construct in decl's body, in
// source order. Constructs inside panic(...) arguments are exempt:
// panics are cold by definition, and the panicmsg check already forces
// their messages through fmt.Sprintf.
func scanAllocs(pkg *Package, decl *ast.FuncDecl) []allocFinding {
	s := &allocScanner{pkg: pkg, decl: decl}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && s.isBuiltin(call.Fun, "panic") {
			return false
		}
		s.classify(n)
		return true
	})
	return s.found
}

type allocScanner struct {
	pkg   *Package
	decl  *ast.FuncDecl
	found []allocFinding
}

func (s *allocScanner) add(pos token.Pos, msg, suggestion string) {
	s.found = append(s.found, allocFinding{pos: pos, msg: msg, suggestion: suggestion})
}

func (s *allocScanner) typeOf(e ast.Expr) types.Type {
	if tv, ok := s.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isBuiltin reports whether fun names the predeclared builtin `name`.
func (s *allocScanner) isBuiltin(fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	if obj, ok := s.pkg.Info.Uses[id]; ok {
		_, isBuiltin := obj.(*types.Builtin)
		return isBuiltin
	}
	return true
}

func (s *allocScanner) classify(n ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		s.classifyCall(n)
	case *ast.BinaryExpr:
		if n.Op == token.ADD && isStringType(s.typeOf(n)) {
			s.add(n.Pos(), "string concatenation allocates",
				"build into a reused []byte, or move formatting off the hot path")
		}
	case *ast.AssignStmt:
		s.classifyAssign(n)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				s.add(n.Pos(), "address of composite literal escapes to the heap",
					"reuse a preallocated value, or hoist the literal out of the hot path")
			}
		}
	case *ast.CompositeLit:
		s.classifyCompositeLit(n)
	case *ast.FuncLit:
		if capturesVariables(s.pkg, s.decl, n) {
			s.add(n.Pos(), "function literal captures variables and allocates a closure",
				"hoist the literal to a package-level function or pass state explicitly")
		}
	case *ast.GoStmt:
		s.add(n.Pos(), "go statement allocates a goroutine stack",
			"hot paths must not spawn goroutines; hand work to a pre-started worker")
	}
}

func (s *allocScanner) classifyCall(call *ast.CallExpr) {
	switch {
	case s.isBuiltin(call.Fun, "make"):
		s.add(call.Pos(), "make allocates", "preallocate in the constructor and reuse")
		return
	case s.isBuiltin(call.Fun, "new"):
		s.add(call.Pos(), "new allocates", "preallocate in the constructor and reuse")
		return
	case s.isBuiltin(call.Fun, "append"):
		s.add(call.Pos(), "append may grow its backing array",
			"preallocate capacity in the constructor, or truncate-and-reuse")
		return
	}
	// Type conversions that copy: string <-> []byte/[]rune.
	if tv, ok := s.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		s.classifyConversion(call, tv.Type)
		return
	}
	// Ordinary call: boxing of arguments into interface parameters, and
	// the argument slice of a variadic ...interface{} call (fmt.*).
	sig, ok := s.typeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	s.classifyCallArgs(call, sig)
}

func (s *allocScanner) classifyConversion(call *ast.CallExpr, to types.Type) {
	from := s.typeOf(call.Args[0])
	if from == nil {
		return
	}
	switch {
	case isStringType(to) && isByteOrRuneSlice(from):
		s.add(call.Pos(), "slice-to-string conversion copies and allocates",
			"keep the value as []byte, or intern off the hot path")
	case isByteOrRuneSlice(to) && isStringType(from):
		s.add(call.Pos(), "string-to-slice conversion copies and allocates",
			"keep the value as []byte, or convert once at construction")
	}
}

func (s *allocScanner) classifyCallArgs(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	n := params.Len()
	if sig.Variadic() && !call.Ellipsis.IsValid() {
		variadic := params.At(n - 1)
		elem := variadic.Type().(*types.Slice).Elem()
		if len(call.Args) >= n {
			if types.IsInterface(elem.Underlying()) {
				s.add(call.Pos(), "variadic ...interface{} call allocates its argument slice",
					"move formatting off the hot path, or pass preformatted values")
			} else {
				s.add(call.Pos(), "variadic call allocates its argument slice",
					"pass an existing slice with ..., or use a fixed-arity helper")
			}
		}
		// Fixed parameters may still box.
		for i := 0; i < n-1 && i < len(call.Args); i++ {
			s.checkBoxing(params.At(i).Type(), call.Args[i])
		}
		// Variadic arguments boxing into a concrete elem never happens
		// (elem non-interface ⇒ no boxing; elem interface ⇒ flagged above).
		return
	}
	for i := 0; i < n && i < len(call.Args); i++ {
		pt := params.At(i).Type()
		if sig.Variadic() && i == n-1 {
			break // f(s...) forwards the existing slice
		}
		s.checkBoxing(pt, call.Args[i])
	}
}

func (s *allocScanner) classifyAssign(n *ast.AssignStmt) {
	if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(s.typeOf(n.Lhs[0])) {
		s.add(n.Pos(), "string concatenation allocates",
			"build into a reused []byte, or move formatting off the hot path")
	}
	for _, lhs := range n.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if t := s.typeOf(idx.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					s.add(lhs.Pos(), "map assignment may allocate (bucket growth, key/value copy)",
						"replace the map with a fixed-size array or preallocated slice keyed by index")
				}
			}
		}
	}
	// Boxing through assignment: iface = concreteValue.
	if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
		for i, lhs := range n.Lhs {
			if i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
				s.checkBoxing(s.typeOf(lhs), n.Rhs[i])
			}
		}
	}
}

func (s *allocScanner) classifyCompositeLit(lit *ast.CompositeLit) {
	t := s.typeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		s.add(lit.Pos(), "map literal allocates", "preallocate in the constructor and reuse")
	case *types.Slice:
		s.add(lit.Pos(), "slice literal allocates its backing array",
			"preallocate in the constructor, or use a fixed-size array")
	}
}

// checkBoxing reports src when storing it into dst converts a concrete
// non-pointer-shaped value to an interface, which heap-allocates the
// value's copy.
func (s *allocScanner) checkBoxing(dst types.Type, src ast.Expr) {
	if dst == nil {
		return
	}
	if !types.IsInterface(dst.Underlying()) {
		return
	}
	st := s.typeOf(src)
	if st == nil || types.IsInterface(st.Underlying()) {
		return
	}
	if basic, ok := st.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return
	}
	if isPointerShaped(st) {
		return
	}
	s.add(src.Pos(), "value-to-interface conversion boxes "+st.String()+" on the heap",
		"pass a pointer, or keep the call monomorphic")
}

// isPointerShaped reports whether values of t fit in an interface word
// without boxing: pointers, channels, maps, funcs, unsafe.Pointer.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (basic.Kind() == types.Byte || basic.Kind() == types.Rune ||
		basic.Kind() == types.Uint8 || basic.Kind() == types.Int32)
}

// capturesVariables reports whether lit references a variable declared
// in decl but outside lit — the condition under which the literal
// compiles to a heap-allocated closure rather than a static function.
func capturesVariables(pkg *Package, decl *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Pos() >= decl.Pos() && obj.Pos() < lit.Pos() {
			captured = true
			return false
		}
		return true
	})
	return captured
}

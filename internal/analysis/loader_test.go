package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// writeModule lays files out under a temp dir, creating parents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoaderSkipsUnderscoreFiles checks that `_`- and `.`-prefixed
// files — invisible to go build — are invisible to the loader too,
// even when they do not parse or belong to a different package.
func TestLoaderSkipsUnderscoreFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module skipmod\n\ngo 1.22\n",
		"lib.go": "package skipmod\n\n// V is fine.\nvar V = 1\n",
		// Both ignored files would break the load if parsed: one is not
		// even Go, the other declares a clashing package.
		"_scratch.go": "this is not go source {{{\n",
		".hidden.go":  "package different\nvar Clash = unresolved\n",
	})
	m, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(m.Pkgs) != 1 || len(m.Pkgs[0].Files) != 1 {
		t.Fatalf("loaded %d packages (files %d), want 1 package with 1 file", len(m.Pkgs), len(m.Pkgs[0].Files))
	}
}

// TestLoaderSkipsBuildTagExcludedFiles checks that files excluded from
// the default build context — by //go:build constraints or by _GOOS
// filename suffixes — are skipped instead of failing the load. The
// excluded files here reference undefined symbols, so accidentally
// parsing them turns into a type-check error the test would catch.
func TestLoaderSkipsBuildTagExcludedFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tagmod\n\ngo 1.22\n",
		"lib.go": "package tagmod\n\n// V is fine.\nvar V = 1\n",
		"tools.go": `//go:build never_enabled_tag

package tagmod

var Broken = definedNowhere
`,
		// Excluded on every platform this test suite runs on: the suite
		// itself would not build under Plan 9.
		"dial_plan9.go": "package tagmod\n\nvar AlsoBroken = definedNowhere\n",
	})
	m, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(m.Pkgs) != 1 || len(m.Pkgs[0].Files) != 1 {
		t.Fatalf("loaded %d packages (files %d), want 1 package with 1 file", len(m.Pkgs), len(m.Pkgs[0].Files))
	}
}

// TestLoaderSkipsDirOfOnlyExcludedFiles checks the directory-discovery
// walk applies the same rules: a directory whose every file is
// excluded must not be reported as a package (the old loader failed
// with "no Go source files" here).
func TestLoaderSkipsDirOfOnlyExcludedFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":                 "module onlymod\n\ngo 1.22\n",
		"lib.go":                 "package onlymod\n\n// V is fine.\nvar V = 1\n",
		"internal/gen/_gen.go":   "template junk, not go\n",
		"internal/exp/future.go": "//go:build never_enabled_tag\n\npackage exp\n\nvar X = definedNowhere\n",
		"internal/real/real.go":  "package real\n\n// W is fine.\nvar W = 2\n",
	})
	m, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(m.Pkgs) != 2 {
		paths := make([]string, 0, len(m.Pkgs))
		for _, p := range m.Pkgs {
			paths = append(paths, p.Path)
		}
		t.Fatalf("loaded packages %v, want exactly the root package and internal/real", paths)
	}
}

package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseOnly builds a Package with parsed files and no type information
// — walkWithStack and enclosingFunc are purely syntactic, so the tests
// exercise them without a type-check.
func parseOnly(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "walk.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing: %v", err)
	}
	return &Package{Path: "walkmod", Fset: fset, Files: []*ast.File{f}}
}

const walkSrc = `package walkmod

type T struct{ n int }

func (t *T) Method() func() int {
	outer := func() int {
		inner := func() int {
			return markInner
		}
		_ = inner
		return markOuter
	}
	_ = outer
	return markMethod
}

func free() {
	h := t.Method // a method value, inside a plain function
	_ = h
	_ = markFree
}

var markInner, markOuter, markMethod, markFree int
var t *T
`

// TestEnclosingFuncNestedLiterals drives enclosingFunc through every
// nesting level of walkSrc: identifiers inside nested function
// literals must resolve to the innermost literal (name ""), not the
// method that lexically contains them, and identifiers in declaration
// or method-value position must resolve to their declared function.
func TestEnclosingFuncNestedLiterals(t *testing.T) {
	pkg := parseOnly(t, walkSrc)
	// marker identifier → (want node type, want name)
	type expectation struct {
		wantLit  bool
		wantName string
	}
	expects := map[string]expectation{
		"markInner":  {wantLit: true, wantName: ""},
		"markOuter":  {wantLit: true, wantName: ""},
		"markMethod": {wantLit: false, wantName: "Method"},
		"markFree":   {wantLit: false, wantName: "free"},
	}
	seen := make(map[string]bool)
	walkWithStack(pkg, func(n ast.Node, stack []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		exp, tracked := expects[id.Name]
		if !tracked || seen[id.Name] {
			return
		}
		node, name := enclosingFunc(stack)
		if node == nil {
			// The marker's own var declaration sits outside any function;
			// only record the in-function occurrence.
			return
		}
		seen[id.Name] = true
		_, isLit := node.(*ast.FuncLit)
		if isLit != exp.wantLit || name != exp.wantName {
			t.Errorf("%s: enclosingFunc = (%T, %q), want (lit=%v, %q)",
				id.Name, node, name, exp.wantLit, exp.wantName)
		}
	})
	for marker := range expects {
		if !seen[marker] {
			t.Errorf("marker %s never visited inside a function", marker)
		}
	}
}

// TestEnclosingFuncMethodValue pins the stack shape at a method-value
// expression: `t.Method` used as a value (not called) still reports the
// plain function that contains it.
func TestEnclosingFuncMethodValue(t *testing.T) {
	pkg := parseOnly(t, walkSrc)
	found := false
	walkWithStack(pkg, func(n ast.Node, stack []ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Method" {
			return
		}
		// Skip the declaration itself; we want the value use in free().
		if _, name := enclosingFunc(stack); name == "free" {
			found = true
		}
	})
	if !found {
		t.Error("method value t.Method in free() not attributed to free")
	}
}

// TestWalkWithStackAncestry checks the stack really is the ancestor
// path: for every visited node, the last stack element must be its
// direct syntactic parent (verified by position containment), and the
// stack must grow and shrink consistently across the whole walk.
func TestWalkWithStackAncestry(t *testing.T) {
	pkg := parseOnly(t, walkSrc)
	nodes := 0
	walkWithStack(pkg, func(n ast.Node, stack []ast.Node) {
		nodes++
		for i, anc := range stack {
			if anc.Pos() > n.Pos() || anc.End() < n.End() {
				t.Fatalf("stack[%d] %T [%v,%v] does not contain node %T [%v,%v]",
					i, anc, anc.Pos(), anc.End(), n, n.Pos(), n.End())
			}
		}
	})
	if nodes == 0 {
		t.Fatal("walk visited no nodes")
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetflowAnalyzer is the interprocedural half of the byte-determinism
// contract: identical (config, seed) inputs must yield byte-identical
// manifests, decision traces, and cache keys. The per-package
// nondeterminism check forbids nondeterministic constructs inside the
// simulation packages; detflow instead tracks nondeterministic VALUES
// and ORDERINGS anywhere in the module and reports when they flow into
// a deterministic-output sink — a function annotated `//tlavet:detsink`
// (the manifest encoder, the canonical cache-key renderer, the decision
// and telemetry writers, the report formatters).
//
// Sources are the four ways Go programs pick up run-to-run variation:
//
//   - map and sync.Map iteration order (randomised by the runtime);
//   - wall-clock reads (time.Now / time.Since / time.Until);
//   - math/rand values (globally seeded, not replayable);
//   - scheduling order: multi-case select arbitration and the
//     completion order of goroutines spawned in a loop.
//
// A diagnostic fires when a sink-reaching call happens inside a
// nondeterministically-ordered region, or a tainted value is passed to
// a sink-reaching call. Every finding carries the function→sink call
// chain so the report explains WHERE the bytes end up, and suggests the
// canonical fix: collect, sort, then emit.
//
// The taint engine is function-local by design: values escaping through
// struct fields or returns are not followed (service.Execute recording
// WallSeconds into the manifest is the intended example — wall time is
// an annotation of the execution, not simulated output). Taint cleared
// by an explicit sort (sort.* / slices.Sort*) is considered laundered.
var DetflowAnalyzer = &Analyzer{
	Name: "detflow",
	Doc:  "no nondeterministic value or ordering may flow into a //tlavet:detsink function",
	Help: "A //tlavet:detsink function's output bytes are part of the " +
		"determinism contract. Remove the tainted source (map iteration " +
		"order, channel select, time) from the dataflow, or sort/serialise " +
		"the value before it reaches the sink.",
	Default:   true,
	RunModule: runDetflow,
}

func runDetflow(mp *ModulePass) {
	g := buildCallGraph(mp.Module)
	sinks := g.annotatedRoots(directiveDetSink)
	if len(sinks) == 0 {
		return
	}
	chains := g.chainsToSinks(sinks)
	nodes := make([]*cgNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		nodes = append(nodes, n)
	}
	sortNodes(nodes)
	for _, n := range nodes {
		scanDetflow(mp, g, n, chains)
	}
}

const detflowSuggestion = "collect into a slice, sort, then emit; or derive the value deterministically from the simulated state"

// detCall is one call expression recorded with the nondeterministic
// region (if any) lexically enclosing it.
type detCall struct {
	call   *ast.CallExpr
	region string // "" outside any region
}

// detScan is the per-function state of one detflow scan.
type detScan struct {
	mp     *ModulePass
	g      *callGraph
	n      *cgNode
	chains map[*cgNode][]string

	tainted  map[types.Object]string // object → source description
	sorted   map[types.Object]bool   // explicitly sorted → taint laundered
	assigns  []*ast.AssignStmt
	specs    []*ast.ValueSpec
	calls    []detCall
	goStmts  []goSite
	reported map[token.Pos]bool
}

// goSite is one `go` statement with its loop-nesting context: only
// goroutines spawned in a loop can race each other's completion.
type goSite struct {
	stmt   *ast.GoStmt
	inLoop bool
}

func scanDetflow(mp *ModulePass, g *callGraph, n *cgNode, chains map[*cgNode][]string) {
	s := &detScan{
		mp: mp, g: g, n: n, chains: chains,
		tainted:  make(map[types.Object]string),
		sorted:   make(map[types.Object]bool),
		reported: make(map[token.Pos]bool),
	}
	s.walk(n.decl.Body, "", false)
	s.propagate()
	s.report()
}

// walk records regions, taint seeds, assignments, calls, and go
// statements. region is the innermost nondeterministic-order region
// ("" for none); inLoop tracks for/range nesting for the goroutine
// rule.
func (s *detScan) walk(node ast.Node, region string, inLoop bool) {
	if node == nil {
		return
	}
	switch node := node.(type) {
	case *ast.RangeStmt:
		s.walkExpr(node.X, region, inLoop)
		inner := region
		if t := s.typeOf(node.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				inner = "map iteration order"
				s.seedIdent(node.Key, inner)
				s.seedIdent(node.Value, inner)
			}
		}
		s.walk(node.Body, inner, true)
		return
	case *ast.ForStmt:
		s.walk(node.Init, region, inLoop)
		s.walkExpr(node.Cond, region, inLoop)
		s.walk(node.Post, region, inLoop)
		s.walk(node.Body, region, true)
		return
	case *ast.SelectStmt:
		comms := 0
		for _, c := range node.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				comms++
			}
		}
		inner := region
		if comms >= 2 {
			inner = "select arbitration order"
		}
		for _, c := range node.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if inner != region {
				if as, ok := cc.Comm.(*ast.AssignStmt); ok {
					for _, lhs := range as.Lhs {
						s.seedIdent(lhs, inner)
					}
				}
			}
			s.walk(cc.Comm, inner, inLoop)
			for _, stmt := range cc.Body {
				s.walk(stmt, inner, inLoop)
			}
		}
		return
	case *ast.GoStmt:
		s.goStmts = append(s.goStmts, goSite{stmt: node, inLoop: inLoop})
		s.walkExpr(node.Call, region, inLoop)
		return
	case *ast.AssignStmt:
		s.assigns = append(s.assigns, node)
	case *ast.ValueSpec:
		s.specs = append(s.specs, node)
	case *ast.CallExpr:
		s.calls = append(s.calls, detCall{call: node, region: region})
		// sync.Map.Range: the callback observes pairs in random order —
		// its body is a map-iteration region and its parameters are
		// order-tainted.
		if s.isSyncMapRange(node) && len(node.Args) == 1 {
			if lit, ok := ast.Unparen(node.Args[0]).(*ast.FuncLit); ok {
				for _, f := range lit.Type.Params.List {
					for _, name := range f.Names {
						s.seedIdent(name, "sync.Map iteration order")
					}
				}
				s.walkExpr(node.Fun, region, inLoop)
				s.walk(lit.Body, "sync.Map iteration order", inLoop)
				return
			}
		}
	}
	// Generic traversal for everything not handled structurally above.
	children(node, func(c ast.Node) { s.walk(c, region, inLoop) })
}

// walkExpr walks an expression subtree in the given context.
func (s *detScan) walkExpr(e ast.Node, region string, inLoop bool) {
	if e == nil {
		return
	}
	s.walk(e, region, inLoop)
}

// children invokes fn once per direct child of node.
func children(node ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(node, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if first {
			first = false
			return true
		}
		fn(n)
		return false
	})
}

// seedIdent marks the object an identifier defines or uses as tainted.
func (s *detScan) seedIdent(e ast.Expr, desc string) {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if obj := s.n.pkg.Info.Defs[id]; obj != nil {
		s.tainted[obj] = desc
		return
	}
	if obj := s.n.pkg.Info.Uses[id]; obj != nil {
		s.tainted[obj] = desc
	}
}

// propagate runs assignment-based taint propagation to a fixpoint, then
// launders objects passed to an explicit sort.
func (s *detScan) propagate() {
	for iter := 0; iter < 100; iter++ {
		changed := false
		for _, as := range s.assigns {
			desc := ""
			for _, rhs := range as.Rhs {
				if d, ok := s.taintOf(rhs); ok {
					desc = d
					break
				}
			}
			if desc == "" {
				continue
			}
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
					obj := s.n.pkg.Info.Defs[id]
					if obj == nil {
						obj = s.n.pkg.Info.Uses[id]
					}
					if obj != nil {
						if _, seen := s.tainted[obj]; !seen {
							s.tainted[obj] = desc
							changed = true
						}
					}
				}
			}
		}
		for _, vs := range s.specs {
			desc := ""
			for _, rhs := range vs.Values {
				if d, ok := s.taintOf(rhs); ok {
					desc = d
					break
				}
			}
			if desc == "" {
				continue
			}
			for _, name := range vs.Names {
				if obj := s.n.pkg.Info.Defs[name]; obj != nil {
					if _, seen := s.tainted[obj]; !seen {
						s.tainted[obj] = desc
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	// Sorting fixes an order: sort.X(keys) / slices.SortX(keys) launders
	// the order-taint on its argument, which is exactly the fix the
	// diagnostics suggest.
	for _, dc := range s.calls {
		if !isSortCall(s.n.pkg, dc.call) {
			continue
		}
		for _, arg := range dc.call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := s.n.pkg.Info.Uses[id]; obj != nil {
					s.sorted[obj] = true
				}
			}
		}
	}
}

// taintOf reports whether e is or contains a nondeterministic value: an
// identifier whose object is tainted, or a direct source call.
func (s *detScan) taintOf(e ast.Expr) (string, bool) {
	desc := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := s.n.pkg.Info.Uses[n]; obj != nil && !s.sorted[obj] {
				if d, ok := s.tainted[obj]; ok {
					desc = d
					return false
				}
			}
		case *ast.CallExpr:
			if d, ok := sourceCall(s.n.pkg, n); ok {
				desc = d
				return false
			}
		case *ast.FuncLit:
			return false // a literal's body runs later, not in this expression
		}
		return true
	})
	return desc, desc != ""
}

// sourceCall recognises the direct nondeterministic-value sources.
func sourceCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	switch pn.Imported().Path() {
	case "time":
		switch sel.Sel.Name {
		case "Now", "Since", "Until":
			return "wall-clock time (time." + sel.Sel.Name + ")", true
		}
	case "math/rand", "math/rand/v2":
		return "math/rand value (rand." + sel.Sel.Name + ")", true
	}
	return "", false
}

// isSortCall recognises sort.* and slices.Sort* calls.
func isSortCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	switch pn.Imported().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(sel.Sel.Name, "Sort")
	}
	return false
}

// isSyncMapRange reports whether call is (*sync.Map).Range.
func (s *detScan) isSyncMapRange(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Range" {
		return false
	}
	return isSyncMapType(s.typeOf(sel.X))
}

// isSyncMapType reports whether t is sync.Map or *sync.Map.
func isSyncMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Map"
}

func (s *detScan) typeOf(e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	if tv, ok := s.n.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := s.n.pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// report emits the diagnostics from the recorded facts.
func (s *detScan) report() {
	for _, dc := range s.calls {
		call := dc.call
		targets := s.g.callees(s.n.pkg, call)
		chain := s.bestChain(targets)

		// Rule 1: a sink-reaching call inside a nondeterministically
		// ordered region — the emission order itself is the leak.
		if dc.region != "" && chain != nil {
			s.emit(call.Pos(), dc.region, chain)
			continue
		}

		// Rule 2: inside a region, a dynamic call (stored callback,
		// method value) in a body that took a reference to a
		// sink-reaching function — the hand-off is the leak. (A closure
		// argument that calls a sink needs no extra rule: its body is
		// lexically inside the region, so rule 1 fires on the inner
		// call.)
		if dc.region != "" && chain == nil && len(targets) == 0 && isDynamicCall(s.n.pkg, call) {
			if refChain := s.bestChain(s.n.refs); refChain != nil {
				s.emit(call.Pos(), dc.region, refChain)
				continue
			}
		}

		// Rule 3: a tainted value passed to a sink-reaching call.
		if chain != nil {
			for _, arg := range call.Args {
				if desc, ok := s.taintOf(arg); ok {
					s.emit(call.Pos(), desc, chain)
					break
				}
			}
		}
	}

	// Rule 4: goroutines spawned in a loop whose bodies reach a sink
	// race each other's completion, so the sink observes an arbitrary
	// interleaving.
	for _, gs := range s.goStmts {
		if !gs.inLoop {
			continue
		}
		var chain []string
		if lit, ok := ast.Unparen(gs.stmt.Call.Fun).(*ast.FuncLit); ok {
			chain = s.funcLitChain(lit)
		} else {
			chain = s.bestChain(s.g.callees(s.n.pkg, gs.stmt.Call))
		}
		if chain != nil {
			s.emit(gs.stmt.Pos(), "goroutine completion order", chain)
		}
	}
}

// bestChain returns the shortest this-function→…→sink chain through
// any of the candidate callees, nil when none reaches a sink.
func (s *detScan) bestChain(targets []*types.Func) []string {
	var best []string
	for _, t := range targets {
		tn := s.g.nodes[canonical(t)]
		if tn == nil {
			continue
		}
		tail := s.chains[tn]
		if tail == nil {
			continue
		}
		if best == nil || len(tail)+1 < len(best) {
			best = append([]string{displayName(s.n.fn)}, tail...)
		}
	}
	// A sink calling helpers of its own: the chain starts at this
	// function even when it is itself the sink.
	if best != nil && len(best) >= 2 && best[0] == best[1] {
		best = best[1:]
	}
	return best
}

// funcLitChain returns the chain through the first sink-reaching call
// inside a function literal's body, nil when there is none.
func (s *detScan) funcLitChain(lit *ast.FuncLit) []string {
	var chain []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if chain != nil {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok {
			chain = s.bestChain(s.g.callees(s.n.pkg, c))
		}
		return chain == nil
	})
	return chain
}

// emit reports one finding, at most once per position.
func (s *detScan) emit(pos token.Pos, source string, chain []string) {
	if s.reported[pos] {
		return
	}
	s.reported[pos] = true
	msg := source + " flows into deterministic-output sink via " + strings.Join(chain, " → ")
	s.mp.Report(pos, msg, detflowSuggestion, chain)
}

// isDynamicCall reports whether call goes through a function-typed
// VALUE (a stored callback, a parameter, a func-typed field) rather
// than a named function, builtin, or conversion. Only dynamic calls
// can hide a sink behind a reference edge.
func isDynamicCall(pkg *Package, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		_, isVar := pkg.Info.Uses[fun].(*types.Var)
		return isVar
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			_, isVar := sel.Obj().(*types.Var)
			return isVar // func-typed struct field
		}
		_, isVar := pkg.Info.Uses[fun.Sel].(*types.Var)
		return isVar
	case *ast.FuncLit:
		return false // immediately-invoked literal: edges already attributed
	}
	return false
}

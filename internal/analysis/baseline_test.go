package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"reflect"
	"testing"
)

// TestBaselineFilterCounts checks the count semantics of the
// line-independent baseline key: a baselined (analyzer, file, message)
// class absorbs up to Count findings wherever they move in the file,
// the surplus stays fresh, and unused capacity comes back as stale.
func TestBaselineFilterCounts(t *testing.T) {
	mk := func(line int, msg string) Diagnostic {
		return Diagnostic{File: "a.go", Line: line, Analyzer: "hotpath", Message: msg}
	}
	diags := []Diagnostic{mk(3, "make allocates"), mk(90, "make allocates"), mk(7, "new allocates")}
	b := NewBaseline([]Diagnostic{mk(10, "make allocates"), mk(11, "make allocates")})

	fresh, stale := b.Filter(diags)
	if len(fresh) != 1 || fresh[0].Message != "new allocates" {
		t.Fatalf("fresh = %v, want only the new-allocates finding", fresh)
	}
	if len(stale) != 0 {
		t.Fatalf("stale = %v, want none (both baseline slots used)", stale)
	}

	// With the findings gone, the whole entry is stale at full count.
	fresh, stale = b.Filter(nil)
	if len(fresh) != 0 || len(stale) != 1 || stale[0].Count != 2 {
		t.Fatalf("Filter(nil) = fresh %v stale %v, want one stale entry of count 2", fresh, stale)
	}
}

// TestBaselineRoundTripFile checks WriteFile/LoadBaseline are inverses
// and serialisation is deterministic.
func TestBaselineRoundTripFile(t *testing.T) {
	b := NewBaseline([]Diagnostic{
		{File: "b.go", Analyzer: "lockdiscipline", Message: "m2"},
		{File: "a.go", Analyzer: "hotpath", Message: "m1"},
		{File: "a.go", Analyzer: "hotpath", Message: "m1"},
	})
	path := filepath.Join(t.TempDir(), "base.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("round trip = %+v, want %+v", got, b)
	}
	if b.Entries[0].Analyzer != "hotpath" || b.Entries[0].Count != 2 {
		t.Fatalf("entries not sorted/merged: %+v", b.Entries)
	}
}

// TestAllowDirectiveRequiresReason checks the suppression contract: a
// directive suppresses its own line and the line below, only for the
// named check, and only when a reason is given.
func TestAllowDirectiveRequiresReason(t *testing.T) {
	src := `package p

//tlavet:allow hotpath bounded by construction
var a = 1

//tlavet:allow hotpath
var b = 2

var c = 3 //tlavet:allow lockdiscipline fixture says so
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ai := buildAllowIndex(fset, []*ast.File{f})
	cases := []struct {
		check string
		line  int
		want  bool
	}{
		{"hotpath", 4, true},         // line below a reasoned directive
		{"hotpath", 3, true},         // the directive's own line
		{"hotpath", 7, false},        // reasonless directive suppresses nothing
		{"lockdiscipline", 9, true},  // trailing directive, same line
		{"hotpath", 9, false},        // wrong check name
		{"lockdiscipline", 10, true}, // line below a trailing directive is also covered
	}
	for _, c := range cases {
		if got := ai.allowed(c.check, "allow.go", c.line); got != c.want {
			t.Errorf("allowed(%s, line %d) = %v, want %v", c.check, c.line, got, c.want)
		}
	}
}

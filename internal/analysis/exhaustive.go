package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ExhaustiveAnalyzer guards the enum dispatch ladders: a switch over a
// type annotated `//tlavet:exhaustive` must name every package-level
// constant of that type in its cases. A default arm is still permitted
// (out-of-range robustness), but it does NOT satisfy the check —
// the point is that adding a tenth replacement policy, a new inclusion
// mode, or a new job state fails loudly at analysis time in every
// switch that has not considered it, instead of silently falling
// through to a default arm at run time.
//
// The annotation sits on the type declaration:
//
//	// Kind selects a replacement policy implementation.
//	//
//	//tlavet:exhaustive
//	type Kind int
//
// Constants are matched by name and declaring package, so a case arm
// naming a literal value instead of the constant does not count — the
// ladder must dispatch on the declared identifiers it claims to cover.
// A deliberately partial switch is suppressed in place with
// `//tlavet:allow exhaustive <reason>`.
var ExhaustiveAnalyzer = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over //tlavet:exhaustive enum types name every declared constant",
	Help: "A switch over a //tlavet:exhaustive enum that misses a constant " +
		"silently ignores new variants. Add the missing case, or an explicit " +
		"default that panics with a package-prefixed message.",
	Default:   true,
	RunModule: runExhaustive,
}

const directiveExhaustive = "//tlavet:exhaustive"

// enumConst is one declared constant of an annotated enum type. The
// key is "<pkg path>.<name>", so cross-package case arms match
// regardless of type-checker object identity.
type enumConst struct {
	name string
	key  string
}

// enumInfo is one annotated enum type with its declared constants.
type enumInfo struct {
	display string      // "pkg.Type"
	consts  []enumConst // in declaration order
}

func runExhaustive(mp *ModulePass) {
	m := mp.Module
	enums := collectEnums(mp)
	if len(enums) == 0 {
		return
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				t, ok := pkg.TypeOfExpr(sw.Tag)
				if !ok {
					return true
				}
				key := enumKeyOf(t)
				info, tracked := enums[key]
				if !tracked {
					return true
				}
				checkSwitch(mp, pkg, sw, info)
				return true
			})
		}
	}
}

// enumKeyOf returns the "<pkg path>.<type name>" key of a named type,
// "" for anything else.
func enumKeyOf(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// collectEnums finds //tlavet:exhaustive type declarations and their
// package-level constants.
func collectEnums(mp *ModulePass) map[string]*enumInfo {
	enums := make(map[string]*enumInfo)
	for _, pkg := range mp.Module.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if !hasDirective(gd.Doc, directiveExhaustive) && !hasDirective(ts.Doc, directiveExhaustive) {
						continue
					}
					if _, isStruct := ts.Type.(*ast.StructType); isStruct {
						mp.Report(ts.Pos(), "exhaustive annotation on struct type "+ts.Name.Name,
							"annotate enum-like constant types only", nil)
						continue
					}
					key := pkg.Path + "." + ts.Name.Name
					enums[key] = &enumInfo{
						display: pkg.Types.Name() + "." + ts.Name.Name,
					}
				}
			}
		}
	}
	// Second pass: collect every package-level constant whose type is an
	// annotated enum, in declaration order within each package.
	for _, pkg := range mp.Module.Pkgs {
		type namedConst struct {
			name string
			pos  token.Pos
			key  string
		}
		var found []namedConst
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok {
				continue
			}
			key := enumKeyOf(c.Type())
			if _, tracked := enums[key]; !tracked {
				continue
			}
			found = append(found, namedConst{name: name, pos: c.Pos(), key: key})
		}
		sort.Slice(found, func(i, j int) bool { return found[i].pos < found[j].pos })
		for _, c := range found {
			enums[c.key].consts = append(enums[c.key].consts,
				enumConst{name: c.name, key: pkg.Path + "." + c.name})
		}
	}
	return enums
}

// checkSwitch verifies one switch statement against its enum.
func checkSwitch(mp *ModulePass, pkg *Package, sw *ast.SwitchStmt, info *enumInfo) {
	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			var id *ast.Ident
			switch e := ast.Unparen(e).(type) {
			case *ast.Ident:
				id = e
			case *ast.SelectorExpr:
				id = e.Sel
			default:
				continue
			}
			c, ok := pkg.Info.Uses[id].(*types.Const)
			if !ok || c.Pkg() == nil {
				continue
			}
			covered[c.Pkg().Path()+"."+c.Name()] = true
		}
	}
	var missing []string
	for _, c := range info.consts {
		if !covered[c.key] {
			missing = append(missing, c.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	mp.Report(sw.Pos(),
		"switch over "+info.display+" is not exhaustive: missing "+strings.Join(missing, ", ")+
			" (a default arm does not satisfy exhaustiveness)",
		"add explicit case arms for the missing constants", nil)
}

package analysis

import (
	"go/ast"
	"go/types"
)

// LockDisciplineAnalyzer polices the packages that run concurrent
// code — internal/runner (the parallel job engine), internal/telemetry
// (live introspection), internal/service (the tlacached daemon's
// job registry, result cache, and admission control), internal/sim
// (the machine/generator free lists and the sharded fan-out), and
// internal/decision (trace readers shared by tlatrace workers) — for
// the mistakes that race detectors only catch when the schedule
// cooperates:
//
//   - writes to fields of a mutex-owning struct (one with a sync.Mutex
//     or sync.RWMutex field) from a method that has not lexically
//     acquired that mutex first;
//   - channel sends performed while the mutex is held (a send can block
//     indefinitely, turning a held lock into a deadlock);
//   - sync.Mutex values copied — by-value receivers or parameters of
//     mutex-containing structs, dereference copies (*p), and ranging
//     over a slice of mutex-containing values — which silently forks
//     the lock.
//
// The held-lock tracking is a lexical approximation, not a dataflow
// analysis: a `recv.mu.Lock()` call marks the mutex held from that
// point in source order, an explicit `recv.mu.Unlock()` statement
// clears it, and a deferred unlock leaves it held to the end of the
// method (matching the lock-at-top idiom runner and telemetry use).
// Function literals are skipped — they run on other goroutines'
// schedules, so the enclosing method's lock state says nothing about
// theirs.
var LockDisciplineAnalyzer = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "runner/telemetry/service/sim/decision: field writes need the owning mutex, no sends under lock, no mutex copies",
	Help: "In the concurrent packages, a field owned by a mutex may only be " +
		"touched with the mutex held, channel sends must not happen under a " +
		"lock, and mutex-bearing structs must not be copied. Move the access " +
		"inside the Lock/Unlock window or hand the value off outside it.",
	Default: true,
	Run:     runLockDiscipline,
}

func runLockDiscipline(pass *Pass) {
	if !pathInPackages(pass.Pkg.Path, "runner", "telemetry", "service", "sim", "decision") {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMutexByValue(pass, fd)
			if owner, recv, mu := methodOnMutexOwner(pass, fd); owner != "" {
				checkMethodLocking(pass, fd, owner, recv, mu)
			}
		}
	}
}

// mutexFieldName returns the name of the first sync.Mutex/sync.RWMutex
// field of t's underlying struct, or "".
func mutexFieldName(t types.Type) string {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if isSyncMutex(st.Field(i).Type()) {
			return st.Field(i).Name()
		}
	}
	return ""
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// containsMutex reports whether a value of type t embeds a sync mutex
// anywhere in its (non-pointer) field tree, so copying t copies a lock.
func containsMutex(t types.Type) bool {
	return containsMutexRec(t, make(map[types.Type]bool))
}

func containsMutexRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isSyncMutex(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutexRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutexRec(u.Elem(), seen)
	}
	return false
}

// methodOnMutexOwner classifies fd: when it is a method whose receiver's
// named type owns a mutex field, it returns the owner type name, the
// receiver identifier ("" when anonymous), and the mutex field name.
func methodOnMutexOwner(pass *Pass, fd *ast.FuncDecl) (owner, recv, mu string) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return "", "", ""
	}
	field := fd.Recv.List[0]
	t := pass.TypeOf(field.Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", "", ""
	}
	mu = mutexFieldName(named)
	if mu == "" {
		return "", "", ""
	}
	if len(field.Names) == 1 {
		recv = field.Names[0].Name
	}
	return named.Obj().Name(), recv, mu
}

// checkMethodLocking walks fd's body in source order tracking whether
// recv.mu is (lexically) held, and reports unguarded field writes and
// sends-under-lock.
func checkMethodLocking(pass *Pass, fd *ast.FuncDecl, owner, recv, mu string) {
	if recv == "" || recv == "_" {
		return // a method that cannot name its fields cannot write them
	}
	held := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false // deferred unlocks run at return; lock stays held here
		case *ast.CallExpr:
			switch mutexMethodCall(n, recv, mu) {
			case "Lock":
				held = true
			case "Unlock":
				held = false
			}
		case *ast.SendStmt:
			if held {
				pass.Report(n.Pos(),
					"channel send while "+recv+"."+mu+" is held can block with the lock taken",
					"move the send outside the critical section, or use a buffered/non-blocking send")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkFieldWrite(pass, lhs, recv, owner, mu, held)
			}
		case *ast.IncDecStmt:
			checkFieldWrite(pass, n.X, recv, owner, mu, held)
		}
		return true
	})
}

// mutexMethodCall returns "Lock"/"Unlock" when call is
// recv.mu.Lock()/recv.mu.Unlock(), else "". RLock is deliberately not
// recognised: a read lock does not license the field writes this check
// guards.
func mutexMethodCall(call *ast.CallExpr, recv, mu string) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock") {
		return ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != mu {
		return ""
	}
	id, ok := inner.X.(*ast.Ident)
	if !ok || id.Name != recv {
		return ""
	}
	return sel.Sel.Name
}

// checkFieldWrite reports lhs when it writes a non-mutex field of the
// receiver while the mutex is not held. Index and dereference layers
// are unwrapped so `r.jobs[i] = x` attributes to field jobs.
func checkFieldWrite(pass *Pass, lhs ast.Expr, recv, owner, mu string, held bool) {
	if held {
		return
	}
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
			continue
		case *ast.StarExpr:
			lhs = e.X
			continue
		case *ast.ParenExpr:
			lhs = e.X
			continue
		}
		break
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name == mu {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != recv {
		return
	}
	pass.Report(lhs.Pos(),
		"write to "+owner+"."+sel.Sel.Name+" without holding "+recv+"."+mu,
		"acquire "+recv+"."+mu+".Lock() before the write, or use an atomic")
}

// checkMutexByValue reports mutex-containing values copied through fd's
// signature or body: by-value receivers and parameters, dereference
// copies, and range over mutex-containing elements.
func checkMutexByValue(pass *Pass, fd *ast.FuncDecl) {
	reportField := func(f *ast.Field, kind string) {
		t := pass.TypeOf(f.Type)
		if t == nil {
			return
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			return
		}
		if containsMutex(t) {
			pass.Report(f.Pos(),
				kind+" of type "+t.String()+" copies its sync.Mutex by value",
				"take a pointer instead; a copied mutex guards nothing")
		}
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			reportField(f, "by-value receiver")
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			reportField(f, "by-value parameter")
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if star, ok := ast.Unparen(rhs).(*ast.StarExpr); ok {
					if t := pass.TypeOf(star); t != nil && containsMutex(t) {
						pass.Report(rhs.Pos(),
							"dereference copies "+t.String()+" and its sync.Mutex by value",
							"keep the pointer; a copied mutex guards nothing")
					}
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			if t := pass.TypeOf(n.Value); t != nil && containsMutex(t) {
				pass.Report(n.Value.Pos(),
					"range copies "+t.String()+" elements and their sync.Mutex by value",
					"range over indices (or a slice of pointers) instead")
			}
		}
		return true
	})
}

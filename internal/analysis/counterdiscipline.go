package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CounterDisciplineAnalyzer keeps the evaluation's counters honest:
// the paper's figures are computed from Traffic and Recorder counters,
// which are only trustworthy if they are monotone — event counts can
// only grow during a run. Counter fields (uint64 fields, and arrays of
// them) may therefore only be incremented (++/+=); plain assignment or
// decrement outside a Reset method is a bug that silently corrupts
// results. Whole-struct resets (h.Traffic = Traffic{}) stay legal
// because they name the struct, not a counter.
var CounterDisciplineAnalyzer = &Analyzer{
	Name: "counterdiscipline",
	Doc:  "Traffic/Recorder counter fields may only be incremented (++/+=) outside Reset",
	Help: "Conserved event counters are append-only evidence: decrementing or " +
		"overwriting one outside a Reset method silently unbalances the " +
		"traffic invariants the auditor checks. Use ++/+= for event counts " +
		"and confine wholesale zeroing to Reset.",
	Default: true,
	Run:     runCounterDiscipline,
}

// counterOwners names the types whose uint64 fields are event counters.
var counterOwners = map[string]bool{"Traffic": true, "Recorder": true}

func runCounterDiscipline(pass *Pass) {
	walkWithStack(pass.Pkg, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.DEFINE {
				return
			}
			for _, lhs := range n.Lhs {
				checkCounterWrite(pass, lhs, n.Tok.String(), stack)
			}
		case *ast.IncDecStmt:
			if n.Tok == token.DEC {
				checkCounterWrite(pass, n.X, "--", stack)
			}
		}
	})
}

// checkCounterWrite reports lhs when it names a counter field of a
// Traffic/Recorder value and the write is not inside a Reset method.
func checkCounterWrite(pass *Pass, lhs ast.Expr, op string, stack []ast.Node) {
	field, owner := counterField(pass, lhs)
	if field == "" {
		return
	}
	if _, fname := enclosingFunc(stack); fname == "Reset" {
		return
	}
	pass.Report(lhs.Pos(),
		"counter "+owner+"."+field+" modified with "+op+" outside Reset; counters must stay monotone",
		"use ++ or +=, or move the reset into a Reset method")
}

// counterField resolves lhs to (fieldName, ownerTypeName) when lhs
// writes a counter field — a uint64 (or array-of-uint64) field of a
// type named in counterOwners — either directly (x.Field) or through
// an index (x.Field[i]).
func counterField(pass *Pass, lhs ast.Expr) (field, owner string) {
	switch lhs := lhs.(type) {
	case *ast.IndexExpr:
		return counterField(pass, lhs.X)
	case *ast.ParenExpr:
		return counterField(pass, lhs.X)
	case *ast.SelectorExpr:
		ownerName := namedTypeName(pass.TypeOf(lhs.X))
		if !counterOwners[ownerName] {
			return "", ""
		}
		if !isCounterType(pass.TypeOf(lhs)) {
			return "", ""
		}
		return lhs.Sel.Name, ownerName
	}
	return "", ""
}

// namedTypeName returns the name of t after stripping pointers, or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isCounterType reports whether t is uint64 or an array of uint64 —
// the shapes event counters take.
func isCounterType(t types.Type) bool {
	if t == nil {
		return false
	}
	if arr, ok := t.Underlying().(*types.Array); ok {
		t = arr.Elem()
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint64
}

package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureCases maps each analyzer to its golden-fixture directory and
// the import path that places the fixture inside the analyzer's scope.
var fixtureCases = []struct {
	analyzer *Analyzer
	dir      string
	path     string
}{
	{NondeterminismAnalyzer, "nondeterminism", "tlacache/internal/sim"},
	{ProbeGuardAnalyzer, "probeguard", "tlacache/internal/telemetry"},
	{PanicMsgAnalyzer, "panicmsg", "tlacache/internal/widget"},
	{CounterDisciplineAnalyzer, "counterdiscipline", "tlacache/internal/flux"},
	{FloatCmpAnalyzer, "floatcmp", "tlacache/internal/metrics"},
	{HotPathAnalyzer, "hotpath", "tlacache/internal/hotpath"},
	{LockDisciplineAnalyzer, "lockdiscipline", "tlacache/internal/runner"},
	{DetflowAnalyzer, "detflow", "tlacache/internal/detflow"},
	{KeycoverAnalyzer, "keycover", "tlacache/internal/keycover"},
	{ExhaustiveAnalyzer, "exhaustive", "tlacache/internal/exhaustive"},
	{ResetcoverAnalyzer, "resetcover", "tlacache/internal/resetcover"},
	{GatecoverAnalyzer, "gatecover", "tlacache/internal/gatecover"},
	{LLCWriteAnalyzer, "llcwrite", "tlacache/internal/llcwrite"},
}

// TestGoldenFixtures checks every analyzer against its fixture: each
// `// want` comment must be matched by a diagnostic on that exact
// file:line, and no diagnostic may appear without a matching want.
func TestGoldenFixtures(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			pkg, err := LoadDir(filepath.Join("testdata", tc.dir), tc.path)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			diags := RunPackage(pkg.Fset, pkg, []*Analyzer{tc.analyzer}, "")
			if len(diags) == 0 {
				t.Fatal("fixture produced no diagnostics")
			}
			checkWants(t, pkg, diags)
		})
	}
}

// TestLockDisciplineScope pins the analyzer's package scope: the
// daemon's service packages are polled like runner/telemetry, while a
// package outside the concurrent set loads the same fixture silently.
func TestLockDisciplineScope(t *testing.T) {
	for path, inScope := range map[string]bool{
		"tlacache/internal/service":       true,
		"tlacache/internal/service/api":   true,
		"tlacache/internal/service/cache": true,
		"tlacache/internal/sim":           true,
		"tlacache/internal/decision":      true,
		"tlacache/internal/metrics":       false,
	} {
		pkg, err := LoadDir(filepath.Join("testdata", "lockdiscipline"), path)
		if err != nil {
			t.Fatalf("loading fixture as %s: %v", path, err)
		}
		diags := RunPackage(pkg.Fset, pkg, []*Analyzer{LockDisciplineAnalyzer}, "")
		if inScope && len(diags) == 0 {
			t.Errorf("%s: in scope but produced no diagnostics", path)
		}
		if !inScope && len(diags) != 0 {
			t.Errorf("%s: out of scope but produced %d diagnostics", path, len(diags))
		}
	}
}

type wantKey struct {
	file string
	line int
}

// wantPattern extracts the backtick-quoted regexps of one want comment.
var wantPattern = regexp.MustCompile("`([^`]+)`")

// collectWants parses the fixture's `// want `regexp“ comments into
// per-line expectations.
func collectWants(t *testing.T, pkg *Package) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantPattern.FindAllStringSubmatch(text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					key := wantKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("fixture has no want comments")
	}
	return wants
}

// checkWants matches diagnostics against expectations both ways:
// every diagnostic needs a want on its line, every want needs a
// diagnostic matching its pattern.
func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		key := wantKey{d.File, d.Line}
		matched := false
		for i, re := range wants[key] {
			if re != nil && re.MatchString(d.Message) {
				wants[key][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: no diagnostic matching `%s`", key.file, key.line, re)
			}
		}
	}
}

// TestDetflowCallGraphEdges proves sink-reachability survives the
// indirection shapes the simulator uses: generic instantiations,
// method values, and closures passed as arguments. The wants pin the
// exact function→sink chains, and every finding must carry a non-empty
// chain ending at an annotated sink.
func TestDetflowCallGraphEdges(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "detflowgraph"), "tlacache/internal/detflowgraph")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := RunPackage(pkg.Fset, pkg, []*Analyzer{DetflowAnalyzer}, "")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	checkWants(t, pkg, diags)
	for _, d := range diags {
		if len(d.Chain) < 2 {
			t.Errorf("%s: chain %v does not cross a call edge", d, d.Chain)
			continue
		}
		last := d.Chain[len(d.Chain)-1]
		if last != "detflowgraph.sink" && last != "detflowgraph.writer.write" {
			t.Errorf("%s: chain %v does not end at an annotated sink", d, d.Chain)
		}
	}
}

// TestRepoIsClean is the self-hosting check: the analyzers must accept
// the repository they guard, so the in-tree sources carry zero
// findings. Skipped in -short mode (a full module load costs seconds).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full-module load in -short mode")
	}
	m, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(m.Pkgs) < 10 {
		t.Fatalf("loaded only %d packages; module walk looks broken", len(m.Pkgs))
	}
	for _, d := range RunModule(m, Analyzers(), nil) {
		t.Errorf("in-tree finding: %s", d)
	}
}

// TestSelect exercises the -checks resolver.
func TestSelect(t *testing.T) {
	all, err := Select("all")
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("Select(all) = %d analyzers, err %v", len(all), err)
	}
	two, err := Select("panicmsg, floatcmp")
	if err != nil || len(two) != 2 || two[0].Name != "panicmsg" || two[1].Name != "floatcmp" {
		t.Fatalf("Select(panicmsg, floatcmp) = %v, err %v", two, err)
	}
	if _, err := Select("nosuchcheck"); err == nil {
		t.Fatal("Select(nosuchcheck) did not error")
	}
}

// TestDiagnosticString pins the compiler-style rendering.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "a/b.go", Line: 3, Col: 7, Analyzer: "panicmsg", Message: "m", Suggestion: "s"}
	if got, want := d.String(), "a/b.go:3:7: panicmsg: m (s)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ProbeGuardAnalyzer enforces the telemetry layer's cost contract:
// observer methods (the event probe and the decision tracer) fire on
// hot simulation paths, so every call must be dominated by a nil check
// of the observer — the single-branch guard that makes the disabled
// (nil-observer) configuration effectively free. An unguarded call
// both panics when telemetry is off and signals that a new fire site
// skipped the guard convention.
var ProbeGuardAnalyzer = &Analyzer{
	Name: "probeguard",
	Doc:  "telemetry observer calls (Probe, DecisionTracer) must be dominated by a nil check",
	Help: "Probes and tracers are optional observers; calling one unguarded " +
		"turns \"observability off\" into a nil-pointer crash. Dominate every " +
		"observer call with an explicit nil check.",
	Default: true,
	Run:     runProbeGuard,
}

// probeInterfaces names the telemetry observer interfaces the guard
// protects; probeFields is the field-name fallback when type
// information is unavailable.
var (
	probeInterfaces = map[string]bool{"Probe": true, "DecisionTracer": true}
	probeFields     = map[string]bool{"probe": true, "Probe": true, "tracer": true, "Tracer": true}
)

func runProbeGuard(pass *Pass) {
	walkWithStack(pass.Pkg, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		recv := sel.X
		if !isProbeExpr(pass, recv) {
			return
		}
		if guardedByNilCheck(pass, recv, call, stack) {
			return
		}
		pass.Report(call.Pos(),
			"probe method "+types.ExprString(recv)+"."+sel.Sel.Name+" called without a dominating nil check",
			"guard the call: if "+types.ExprString(recv)+" != nil { ... }")
	})
}

// isProbeExpr reports whether e denotes a telemetry observer: its
// static type is a named interface from a telemetry package in
// probeInterfaces, or (fallback when types are unavailable) it selects
// a field in probeFields.
func isProbeExpr(pass *Pass, e ast.Expr) bool {
	if t := pass.TypeOf(e); t != nil {
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if probeInterfaces[obj.Name()] && obj.Pkg() != nil &&
				strings.HasSuffix(obj.Pkg().Path(), "telemetry") {
				_, isIface := named.Underlying().(*types.Interface)
				return isIface
			}
		}
		return false
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		return probeFields[sel.Sel.Name]
	}
	return false
}

// guardedByNilCheck reports whether the call at the top of stack is
// dominated by a nil check of recv. Two shapes count:
//
//	if recv != nil { ...call... }          // possibly && more conditions
//	if recv == nil { return }; ...call...  // early return in the same block
func guardedByNilCheck(pass *Pass, recv ast.Expr, call *ast.CallExpr, stack []ast.Node) bool {
	want := types.ExprString(recv)
	var child ast.Node = call
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			// The guard only dominates the then-branch.
			if n.Body == child && condHasNilCheck(n.Cond, want, token.NEQ) {
				return true
			}
		case *ast.BlockStmt:
			if earlyReturnGuard(n, child, want) {
				return true
			}
		case *ast.FuncLit, *ast.FuncDecl:
			// Guards established outside the enclosing function do not
			// dominate calls inside it (the literal may run later).
			return false
		}
		child = stack[i]
	}
	return false
}

// condHasNilCheck reports whether cond contains the conjunct
// `want <op> nil` (either operand order) reachable through &&.
func condHasNilCheck(cond ast.Expr, want string, op token.Token) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condHasNilCheck(c.X, want, op)
	case *ast.BinaryExpr:
		if c.Op == token.LAND {
			return condHasNilCheck(c.X, want, op) || condHasNilCheck(c.Y, want, op)
		}
		if c.Op != op {
			return false
		}
		return (types.ExprString(c.X) == want && isNilIdent(c.Y)) ||
			(types.ExprString(c.Y) == want && isNilIdent(c.X))
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// earlyReturnGuard reports whether block contains, before the
// statement leading to the call, an `if want == nil { return/panic }`
// early exit.
func earlyReturnGuard(block *ast.BlockStmt, child ast.Node, want string) bool {
	idx := -1
	for i, stmt := range block.List {
		if stmt == child {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	for _, stmt := range block.List[:idx] {
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok || ifs.Else != nil || len(ifs.Body.List) == 0 {
			continue
		}
		if !condHasNilCheck(ifs.Cond, want, token.EQL) {
			continue
		}
		switch last := ifs.Body.List[len(ifs.Body.List)-1].(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.ExprStmt:
			if c, ok := last.X.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		}
	}
	return false
}

package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baselines let tlavet gate a codebase that is not yet clean: a
// committed tlavet.baseline.json records the accepted findings, the CI
// gate suppresses exactly those, and anything new fails the build. The
// committed file only ever shrinks (the ratchet): stale entries —
// baselined findings that no longer occur — are reported so the
// baseline can be regenerated smaller, and the CI ratchet job fails
// when regeneration would delete entries that are still in the file.
//
// Entries are keyed by (analyzer, file, message) with an occurrence
// count, deliberately omitting line numbers: unrelated edits move
// findings around a file without changing what was accepted, and a
// count-keyed entry still catches the same mistake being made a second
// time in that file.

// BaselineEntry is one accepted finding class.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// Baseline is the committed set of accepted findings.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

type baselineKey struct {
	analyzer, file, message string
}

// NewBaseline condenses diags into a baseline, merging findings that
// share (analyzer, file, message) into counted entries sorted for
// stable serialisation.
func NewBaseline(diags []Diagnostic) *Baseline {
	counts := make(map[baselineKey]int)
	for _, d := range diags {
		counts[baselineKey{d.Analyzer, d.File, d.Message}]++
	}
	b := &Baseline{Entries: make([]BaselineEntry, 0, len(counts))}
	for k, n := range counts {
		b.Entries = append(b.Entries, BaselineEntry{
			Analyzer: k.analyzer, File: k.file, Message: k.message, Count: n,
		})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		if a.File != c.File {
			return a.File < c.File
		}
		return a.Message < c.Message
	})
	return b
}

// LoadBaseline reads a baseline file written by WriteFile.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteFile serialises the baseline deterministically (sorted entries,
// indented JSON, trailing newline) so regeneration diffs cleanly.
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits diags into the findings not covered by the baseline
// (new — these should fail the build) and returns alongside them the
// stale entries: baseline capacity no current finding used, meaning the
// baseline can and should shrink.
func (b *Baseline) Filter(diags []Diagnostic) (fresh []Diagnostic, stale []BaselineEntry) {
	remaining := make(map[baselineKey]int, len(b.Entries))
	for _, e := range b.Entries {
		remaining[baselineKey{e.Analyzer, e.File, e.Message}] += e.Count
	}
	for _, d := range diags {
		k := baselineKey{d.Analyzer, d.File, d.Message}
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range b.Entries {
		k := baselineKey{e.Analyzer, e.File, e.Message}
		if remaining[k] > 0 {
			e.Count = remaining[k]
			remaining[k] = 0
			stale = append(stale, e)
		}
	}
	return fresh, stale
}

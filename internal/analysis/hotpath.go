package analysis

import (
	"sort"
	"strings"
)

// HotPathAnalyzer is the static side of the repository's zero-allocation
// guarantee. The benchmarks in alloc_test.go prove 0 allocs/op at
// runtime for the configurations they run; this check proves the same
// property for every path the compiler can see, by computing
// reachability from `//tlavet:hotpath` annotated roots over the module
// call graph and reporting each may-allocate construct (escape.go) in a
// reachable function. Every finding carries the root→site call chain so
// the report explains WHY a function is hot, not just that it is.
//
// Intentional, bounded allocation sites on hot paths — e.g. the victim
// cache's capacity-limited appends — are suppressed in place with
// `//tlavet:allow hotpath <reason>`.
var HotPathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "no heap-allocating construct reachable from //tlavet:hotpath roots",
	Help: "The steady-state access path is benchmarked at 0 allocs/op; any " +
		"construct that may allocate on a path reachable from a " +
		"//tlavet:hotpath root regresses that budget. Hoist the allocation to " +
		"setup, reuse a scratch buffer, or suppress a provably bounded site " +
		"with //tlavet:allow hotpath <reason>.",
	Default:   true,
	RunModule: runHotPath,
}

func runHotPath(mp *ModulePass) {
	g := buildCallGraph(mp.Module)
	roots := g.hotPathRoots()
	if len(roots) == 0 {
		return
	}
	chains := g.reachableFrom(roots)
	nodes := make([]*cgNode, 0, len(chains))
	for n := range chains {
		nodes = append(nodes, n)
	}
	sortNodes(nodes)
	for _, n := range nodes {
		chain := chains[n]
		for _, f := range scanAllocs(n.pkg, n.decl) {
			msg := f.msg + " on hot path via " + strings.Join(chain, " → ")
			mp.Report(f.pos, msg, f.suggestion, chain)
		}
	}
}

// HotPathRoots exposes the resolved root set of a loaded module — the
// functions reachability starts from — for the root/benchmark
// cross-check test. Names are displayName-rendered ("pkg.Recv.Method"),
// sorted and deduplicated.
func HotPathRoots(m *Module) []string {
	g := buildCallGraph(m)
	var names []string
	seen := make(map[string]bool)
	for _, r := range g.hotPathRoots() {
		name := displayName(r)
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

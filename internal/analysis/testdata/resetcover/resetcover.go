package resetcover

// Stats is a plain counter block, reset wholesale by its owners.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// Inner is reached member-wise from Widget: its own fields are judged
// individually because Widget.Reset writes into it field by field.
type Inner struct {
	vals []uint64
	tick uint64 // want `field resetcover.Inner.tick is never reset by resetcover.Widget.Reset`
}

// Resetter is the interface expansion path: annotating the interface
// method ropes in every implementation (Table.ResetState below).
type Resetter interface {
	//tlavet:resetcover
	ResetState()
}

// Table implements Resetter; the interface annotation makes ResetState
// a checked reset method and a valid delegation target.
type Table struct {
	assoc int //tlavet:resetexempt geometry fixed at construction, never varies across reuse
	rows  []uint8
}

// ResetState restores the fresh table.
func (t *Table) ResetState() {
	for i := range t.rows {
		t.rows[i] = 0
	}
}

// Widget is the pooled type under proof.
type Widget struct {
	cfg    int //tlavet:resetexempt immutable configuration, identical for every pool user
	count  uint64
	stats  Stats
	inner  Inner
	table  *Table
	orphan *Table // want `field resetcover.Widget.orphan has reset method resetcover.Table.ResetState that resetcover.Widget.Reset never invokes on it`
	ghost  uint64 // want `field resetcover.Widget.ghost is never reset by resetcover.Widget.Reset`
	//tlavet:resetexempt the run loop rewrites this before reading
	dead uint64 // want `stale //tlavet:resetexempt: field resetcover.Widget.dead IS reset by resetcover.Widget.Reset`
	//tlavet:resetexempt
	noWhy int // want `resetexempt directive has no reason` `field resetcover.Widget.noWhy is never reset`
}

// Reset restores Widget to its freshly-constructed state — almost.
//
//tlavet:resetcover
func (w *Widget) Reset() {
	w.count = 0
	w.stats = Stats{}
	w.resetInner()
	w.table.ResetState()
	w.dead = 0
}

// resetInner is chased as a same-receiver helper: its writes count as
// Reset's own.
func (w *Widget) resetInner() {
	w.inner.vals = w.inner.vals[:0]
}

// Flat shows the wholesale path: *f = Flat{} covers every field.
type Flat struct {
	a, b int
	s    Stats
}

// Reset overwrites the whole value.
//
//tlavet:resetcover
func (f *Flat) Reset() {
	*f = Flat{}
}

// Standalone is not a method, so the directive cannot name a receiver.
//
//tlavet:resetcover
func Standalone() {} // want `resetcover on resetcover.Standalone, which is not a method on a module struct`

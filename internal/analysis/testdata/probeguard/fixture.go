// Package telemetry is a golden fixture for the probeguard analyzer.
// Its import path ends in "telemetry", so the local Probe interface
// counts as the telemetry probe type the analyzer protects.
package telemetry

// Probe is the fixture's stand-in for the event-probe interface.
type Probe interface {
	Hit(addr uint64)
	Miss(addr uint64)
}

// Hierarchy owns an optional probe, nil when telemetry is off.
type Hierarchy struct {
	probe Probe
	hot   bool
}

// Guarded shows the canonical accepted shapes: a plain nil check and a
// compound condition reached through &&.
func (h *Hierarchy) Guarded(addr uint64) {
	if h.probe != nil {
		h.probe.Hit(addr)
	}
	if h.probe != nil && h.hot {
		h.probe.Miss(addr)
	}
}

// EarlyReturn is accepted: the nil case exits the block first.
func (h *Hierarchy) EarlyReturn(addr uint64) {
	if h.probe == nil {
		return
	}
	h.probe.Hit(addr)
}

// Unguarded fires the probe with no dominating nil check.
func (h *Hierarchy) Unguarded(addr uint64) {
	h.probe.Hit(addr) // want `h\.probe\.Hit called without a dominating nil check`
}

// WrongBranch checks the probe but calls it outside the guarded body.
func (h *Hierarchy) WrongBranch(addr uint64) {
	if h.probe != nil {
		h.hot = true
	}
	h.probe.Miss(addr) // want `h\.probe\.Miss called without a dominating nil check`
}

// Closure is flagged: a guard outside a function literal does not
// dominate calls inside it (the literal may run after the probe is
// cleared).
func (h *Hierarchy) Closure(addr uint64) func() {
	if h.probe == nil {
		return nil
	}
	return func() {
		h.probe.Hit(addr) // want `h\.probe\.Hit called without a dominating nil check`
	}
}

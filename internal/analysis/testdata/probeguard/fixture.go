// Package telemetry is a golden fixture for the probeguard analyzer.
// Its import path ends in "telemetry", so the local Probe interface
// counts as the telemetry probe type the analyzer protects.
package telemetry

// Probe is the fixture's stand-in for the event-probe interface.
type Probe interface {
	Hit(addr uint64)
	Miss(addr uint64)
}

// Hierarchy owns an optional probe, nil when telemetry is off.
type Hierarchy struct {
	probe Probe
	hot   bool
}

// Guarded shows the canonical accepted shapes: a plain nil check and a
// compound condition reached through &&.
func (h *Hierarchy) Guarded(addr uint64) {
	if h.probe != nil {
		h.probe.Hit(addr)
	}
	if h.probe != nil && h.hot {
		h.probe.Miss(addr)
	}
}

// EarlyReturn is accepted: the nil case exits the block first.
func (h *Hierarchy) EarlyReturn(addr uint64) {
	if h.probe == nil {
		return
	}
	h.probe.Hit(addr)
}

// Unguarded fires the probe with no dominating nil check.
func (h *Hierarchy) Unguarded(addr uint64) {
	h.probe.Hit(addr) // want `h\.probe\.Hit called without a dominating nil check`
}

// WrongBranch checks the probe but calls it outside the guarded body.
func (h *Hierarchy) WrongBranch(addr uint64) {
	if h.probe != nil {
		h.hot = true
	}
	h.probe.Miss(addr) // want `h\.probe\.Miss called without a dominating nil check`
}

// Closure is flagged: a guard outside a function literal does not
// dominate calls inside it (the literal may run after the probe is
// cleared).
func (h *Hierarchy) Closure(addr uint64) func() {
	if h.probe == nil {
		return nil
	}
	return func() {
		h.probe.Hit(addr) // want `h\.probe\.Hit called without a dominating nil check`
	}
}

// DecisionTracer is the fixture's stand-in for the LLC victim-decision
// tracer interface; as a named telemetry interface it gets the same
// guard treatment as Probe.
type DecisionTracer interface {
	Decision(seq uint64)
}

// Machine owns an optional decision tracer, nil when tracing is off.
type Machine struct {
	tracer DecisionTracer
}

// TracedEviction shows the accepted shapes for tracer fire sites.
func (m *Machine) TracedEviction(seq uint64) {
	if m.tracer != nil {
		m.tracer.Decision(seq)
	}
	if m.tracer == nil {
		return
	}
	m.tracer.Decision(seq)
}

// UnguardedEviction fires the tracer with no dominating nil check.
func (m *Machine) UnguardedEviction(seq uint64) {
	m.tracer.Decision(seq) // want `m\.tracer\.Decision called without a dominating nil check`
}

// GuardWrongObserver checks the probe but fires the tracer.
func (m *Machine) GuardWrongObserver(h *Hierarchy, seq uint64) {
	if h.probe != nil {
		m.tracer.Decision(seq) // want `m\.tracer\.Decision called without a dominating nil check`
	}
}

// Package widget is a golden fixture for the panicmsg analyzer. Its
// import path contains "internal/", so every panic must carry the
// "widget:" package prefix and bare panic(err) is forbidden.
package widget

import (
	"errors"
	"fmt"
)

// ErrBad is a reusable failure value for the bare-panic cases.
var ErrBad = errors.New("widget: bad")

// Prefixed panics are accepted in every static shape the analyzer
// recognises: literal, Sprintf, concatenation, and Errorf.
func Prefixed(n int, err error) {
	switch n {
	case 1:
		panic("widget: literal message")
	case 2:
		panic(fmt.Sprintf("widget: n=%d", n))
	case 3:
		panic("widget: wrapped: " + err.Error())
	default:
		panic(fmt.Errorf("widget: %w", err))
	}
}

// Unprefixed panics lose the subsystem name.
func Unprefixed(n int) {
	if n == 1 {
		panic("boom") // want `panic message must carry the .widget:. package prefix`
	}
	panic(fmt.Sprintf("n=%d", n)) // want `panic message must carry the .widget:. package prefix`
}

// Bare re-throws an error value with no context at all.
func Bare(err error) {
	if err != nil {
		panic(err) // want `bare panic\(err\) loses the failing subsystem`
	}
}

// Package hotpath is a golden fixture for the interprocedural hotpath
// analyzer. Step is the annotated root; level1 and level2 sit below it
// so the wants prove that allocation constructs introduced two calls
// deep are reported with the full root→site chain. The Policy
// interface carries an annotated Touch method, proving that interface
// annotations expand to every implementing concrete method.
package hotpath

import "fmt"

type entry struct{ addr uint64 }

// Engine is the fixture's stand-in for the simulator hierarchy.
type Engine struct {
	log     []uint64
	sink    any
	fn      func() uint64
	name    string
	blob    []byte
	extra   *uint64
	pairs   map[uint64]uint64
	ptr     *entry
	out     string
	scratch []uint64
}

// Step is the annotated hot-path root.
//
//tlavet:hotpath
func (e *Engine) Step(addr uint64) {
	e.level1(addr)
}

func (e *Engine) level1(addr uint64) {
	//tlavet:allow hotpath fixture demonstrates in-source suppression
	e.scratch = make([]uint64, 4)
	e.level2(addr)
}

func (e *Engine) level2(addr uint64) {
	if addr == 0 {
		panic(fmt.Sprintf("hotpath: bad addr %d", addr)) // exempt: panic args are cold
	}
	e.log = append(e.log, addr)        // want `append may grow its backing array on hot path via hotpath\.Engine\.Step → hotpath\.Engine\.level1 → hotpath\.Engine\.level2`
	e.sink = addr                      // want `value-to-interface conversion boxes uint64 on the heap on hot path via hotpath\.Engine\.Step → hotpath\.Engine\.level1 → hotpath\.Engine\.level2`
	c := func() uint64 { return addr } // want `function literal captures variables and allocates a closure on hot path via hotpath\.Engine\.Step → hotpath\.Engine\.level1 → hotpath\.Engine\.level2`
	e.fn = c
	e.name += "x"              // want `string concatenation allocates on hot path via hotpath\.Engine\.Step`
	e.blob = []byte(e.name)    // want `string-to-slice conversion copies and allocates on hot path via hotpath\.Engine\.Step`
	e.extra = new(uint64)      // want `new allocates on hot path via hotpath\.Engine\.Step`
	e.pairs[addr] = addr       // want `map assignment may allocate \(bucket growth, key/value copy\) on hot path via hotpath\.Engine\.Step`
	e.ptr = &entry{addr: addr} // want `address of composite literal escapes to the heap on hot path via hotpath\.Engine\.Step`
	e.describe(addr)
}

func (e *Engine) describe(addr uint64) {
	e.out = fmt.Sprint("addr ", addr) // want `variadic \.\.\.interface\{\} call allocates its argument slice on hot path via hotpath\.Engine\.Step → hotpath\.Engine\.level1 → hotpath\.Engine\.level2 → hotpath\.Engine\.describe`
}

// Policy mirrors the simulator's replacement-policy interface: the
// annotation on Touch makes every implementing method a root.
type Policy interface {
	//tlavet:hotpath
	Touch(set int)
	Reset()
}

type lruPolicy struct{ heat map[int]int }

func (p *lruPolicy) Touch(set int) {
	p.heat[set] = p.heat[set] + 1 // want `map assignment may allocate \(bucket growth, key/value copy\) on hot path via hotpath\.lruPolicy\.Touch`
}

// Reset is not annotated, so its allocation is not on any hot path.
func (p *lruPolicy) Reset() {
	p.heat = make(map[int]int)
}

type nruPolicy struct{ bits []bool }

func (p *nruPolicy) Touch(set int) {
	p.bits = append(p.bits, true) // want `append may grow its backing array on hot path via hotpath\.nruPolicy\.Touch`
}

func (p *nruPolicy) Reset() {
	p.bits = p.bits[:0]
}

// buildTables is cold — unreachable from any root — so its allocations
// are not findings.
func buildTables() []uint64 {
	return make([]uint64, 1024)
}

// Package exhaustive is the golden fixture for the enum dispatch
// check. Kind is the annotated enum (the stand-in for the replacement
// policy selector): Name covers every constant and stays silent, Apply
// drops one arm behind a default and is reported, and allowPartial
// shows the in-source suppression for a deliberately partial switch.
// Mode is unannotated, so partial switches over it are fine.
package exhaustive

// Kind selects a replacement-policy implementation; every switch over
// it must name every declared policy.
//
//tlavet:exhaustive
type Kind int

const (
	LRU Kind = iota
	NRU
	SRRIP
	Random
)

// Name names every constant (grouped arms count) — clean.
func Name(k Kind) string {
	switch k {
	case LRU:
		return "lru"
	case NRU:
		return "nru"
	case SRRIP, Random:
		return "rrip-family"
	default:
		panic("exhaustive: unknown kind")
	}
}

// Apply dropped the Random arm; the default does not excuse it.
func Apply(k Kind) int {
	switch k { // want `switch over exhaustive\.Kind is not exhaustive: missing Random \(a default arm does not satisfy exhaustiveness\)`
	case LRU:
		return 0
	case NRU:
		return 1
	case SRRIP:
		return 2
	default:
		return -1
	}
}

// allowPartial deliberately special-cases one constant; the allow
// directive suppresses the finding with an auditable reason.
func allowPartial(k Kind) bool {
	//tlavet:allow exhaustive only the RRIP family needs special handling here
	switch k {
	case SRRIP:
		return true
	}
	return false
}

// Mode is not annotated, so partial switches over it are unchecked.
type Mode int

const (
	ModeA Mode = iota
	ModeB
)

func pick(m Mode) int {
	switch m {
	case ModeA:
		return 1
	}
	return 0
}

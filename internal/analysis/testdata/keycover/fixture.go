// Package keycover is the golden fixture for the cache-key coverage
// proof. canonical is the annotated key renderer over Config (with the
// nested Latencies reached through an alias, a justified exemption, a
// planted un-hashed field, a stale exemption, and a duplicated write);
// Encode is the marshal-mode encoder over Manifest, where passing the
// whole value covers every exported field not tagged json:"-".
package keycover

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Latencies is nested configuration, reached via Config.Lat.
type Latencies struct {
	L1  int
	Mem int
}

// Config is the cache-key closure.
type Config struct {
	Size int
	Ways int
	Lat  Latencies

	// Scratch is derived state, rebuilt from Size/Ways at load time.
	//tlavet:keyexempt derived scratch state, rebuilt from Size and Ways
	Scratch []int

	// Fresh is the planted un-hashed field the acceptance criteria
	// require: added to the struct, never encoded, never exempted.
	Fresh int // want `field keycover\.Config\.Fresh is never written by keycover\.canonical and has no //tlavet:keyexempt \(via keycover\.Key → keycover\.canonical\)`

	// Dup is hashed twice below; the second write is dead weight.
	Dup int

	// Phase claims to be an observer field, but canonical writes it.
	//tlavet:keyexempt observer-only phase marker
	Phase int // want `stale //tlavet:keyexempt: field keycover\.Config\.Phase IS written by keycover\.canonical`

	// Cold carries a reasonless exemption, which exempts nothing.
	//tlavet:keyexempt
	Cold int // want `keyexempt directive has no reason` `field keycover\.Config\.Cold is never written by keycover\.canonical and has no //tlavet:keyexempt \(via keycover\.Key → keycover\.canonical\)`
}

// Key is the exported entry point; findings carry the Key → canonical
// chain.
func Key(c Config) string { return canonical(c) }

// canonical renders the fixed-order canonical form of the key.
//
//tlavet:keycover Config
func canonical(c Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d", c.Size, c.Ways)
	l := c.Lat
	fmt.Fprintf(&b, "|%d/%d", l.L1, l.Mem)
	fmt.Fprintf(&b, "|%d|%d", c.Dup, c.Phase)
	fmt.Fprintf(&b, "|%d", c.Dup) // want `field keycover\.Config\.Dup is written 2 times by keycover\.canonical: the extra write is dead or double-encodes the field`
	return b.String()
}

// Manifest is persisted as marshalled JSON.
type Manifest struct {
	Key  string `json:"key"`
	Spec Config `json:"spec"`

	// scratch is invisible to the marshaller, so marshal mode cannot
	// cover it and it needs an exemption it does not have.
	scratch int // want `field keycover\.Manifest\.scratch is never written by keycover\.Encode and has no //tlavet:keyexempt \(via keycover\.Encode\)`

	// Wall is execution metadata, excluded from the stored form.
	//tlavet:keyexempt execution metadata, not part of the result identity
	Wall float64 `json:"-"`
}

// Encode marshals the whole manifest: marshal mode covers every
// exported field not tagged json:"-", recursively through Spec.
//
//tlavet:keycover Manifest
func Encode(m Manifest) ([]byte, error) {
	return json.Marshal(m)
}

// badTarget points at a package this module does not contain.
//
//tlavet:keycover missing.Type
func badTarget() {} // want `keycover: no module package named missing \(in missing\.Type\)`

// emptyTarget forgets to say what it covers.
//
//tlavet:keycover
func emptyTarget() {} // want `keycover directive names no type`

// Package flux is a golden fixture for the counterdiscipline analyzer:
// uint64 (and array-of-uint64) fields of types named Traffic or
// Recorder are event counters and may only grow outside Reset.
package flux

// Traffic mirrors the simulator's event-counter struct shape.
type Traffic struct {
	Hits   uint64
	Misses uint64
	Label  string
}

// Recorder mirrors the telemetry recorder: an array of counters plus
// non-counter bookkeeping.
type Recorder struct {
	counts [4]uint64
	open   int
}

// Hierarchy embeds a Traffic block the way the simulator does.
type Hierarchy struct {
	Traffic Traffic
}

// Observe shows the allowed writes: increments, add-assigns, and
// assignments to non-counter fields.
func Observe(t *Traffic, r *Recorder) {
	t.Hits++
	t.Misses += 2
	r.counts[1]++
	r.open = 3
	t.Label = "warm"
}

// Corrupt shows every forbidden shape.
func Corrupt(t *Traffic, r *Recorder) {
	t.Hits = 0      // want `counter Traffic\.Hits modified with = outside Reset`
	t.Misses--      // want `counter Traffic\.Misses modified with -- outside Reset`
	t.Hits -= 1     // want `counter Traffic\.Hits modified with -= outside Reset`
	r.counts[2] = 9 // want `counter Recorder\.counts modified with = outside Reset`
}

// Reset may zero counters: it is the sanctioned reset point.
func (t *Traffic) Reset() {
	t.Hits = 0
	t.Misses = 0
}

// Swap replaces the whole block, which stays legal: the assignment
// names the struct, not a counter field.
func (h *Hierarchy) Swap() {
	h.Traffic = Traffic{}
}

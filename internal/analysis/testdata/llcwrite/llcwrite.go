package llcwrite

// Cache is the modelled LLC: Lookup and Fill mutate (the lookup memo
// and the tag array), SetIndex and Peek are pure.
type Cache struct {
	tags []uint64
	last uint64
}

// Lookup probes for la, recording it in the lookup memo.
func (c *Cache) Lookup(la uint64) bool {
	c.last = la
	for _, t := range c.tags {
		if t == la {
			return true
		}
	}
	return false
}

// Fill installs la.
func (c *Cache) Fill(la uint64) { c.tags[0] = la }

// SetIndex maps an address to its set; read-only.
func (c *Cache) SetIndex(la uint64) int { return int(la) % len(c.tags) }

// Peek reads a tag; read-only.
func (c *Cache) Peek(i int) uint64 { return c.tags[i] }

// Sink observes LLC operations.
type Sink interface{ Op(la uint64) }

// Hier owns one LLC-owned cache and one private cache.
type Hier struct {
	// llc is LLC-owned: capture-phase mutations must go through the
	// accessor set.
	//
	//tlavet:llcstate
	llc  *Cache
	l1   *Cache
	sink Sink
}

// lookup is the legal accessor: it announces the operation before
// touching the LLC.
//
//tlavet:llcaccessor fires Sink.Op before every LLC mutation
func (h *Hier) lookup(la uint64) bool {
	if h.sink != nil {
		h.sink.Op(la)
	}
	if h.llc.Lookup(la) {
		return true
	}
	h.llc.Fill(la)
	return false
}

// idle is annotated but no longer touches LLC state.
//
//tlavet:llcaccessor left over from an earlier refactor
func (h *Hier) idle() {} // want `stale //tlavet:llcaccessor: llcwrite.Hier.idle neither writes nor mutates LLC-owned state`

// why has a reasonless directive, which exempts nothing.
//
//tlavet:llcaccessor
func (h *Hier) why(la uint64) {} // want `llcaccessor directive has no reason`

// access is capture-reachable and must route mutations through the
// accessor set.
func (h *Hier) access(la uint64) {
	if h.l1.Lookup(la) { // private state: mutating, but not LLC-owned
		return
	}
	_ = h.llc.SetIndex(la) // pure read of LLC state: fine
	_ = h.llc.Peek(0)      // pure read: fine
	if !h.lookup(la) {
		h.llc.Fill(la) // want `call to Fill mutates LLC-owned state llcwrite.Hier.llc outside the //tlavet:llcaccessor set`
	}
	h.llc.last = 0 // want `write to LLC-owned state llcwrite.Hier.llc outside the //tlavet:llcaccessor set`
}

// Capture is the capture-phase entry point.
//
//tlavet:llccapture
func Capture(h *Hier, n int) {
	for i := 0; i < n; i++ {
		h.access(uint64(i))
	}
}

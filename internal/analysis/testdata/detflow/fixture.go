// Package detflow is a golden fixture for the determinism-taint
// analyzer. emit is the annotated sink (the stand-in for the manifest
// encoder); encode sits between callers and the sink so the wants
// prove taint is tracked through the call graph, with the full
// function→sink chain in every finding. The allowed functions at the
// bottom pin the analyzer's precision: slice iteration, sorted
// emission, and single goroutines must stay silent.
package detflow

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// emit is the deterministic-output sink: its output bytes are part of
// the byte-determinism contract.
//
//tlavet:detsink
func emit(s string) {}

// encode forwards to emit, so sink-reachability must cross one call.
func encode(s string) { emit(s) }

// leakMapOrder emits in map iteration order — the planted manifest
// leak the acceptance criteria require.
func leakMapOrder(m map[string]int) {
	for k := range m {
		encode(k) // want `map iteration order flows into deterministic-output sink via detflow\.leakMapOrder → detflow\.encode → detflow\.emit`
	}
}

// leakCollected launders nothing: the slice is built in map order and
// emitted unsorted.
func leakCollected(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	encode(strings.Join(keys, ",")) // want `map iteration order flows into deterministic-output sink via detflow\.leakCollected → detflow\.encode → detflow\.emit`
}

// leakTime stamps the output with the wall clock.
func leakTime() {
	encode(time.Now().Format(time.RFC3339)) // want `wall-clock time \(time\.Now\) flows into deterministic-output sink via detflow\.leakTime → detflow\.encode → detflow\.emit`
}

// leakElapsed carries the clock through a local variable.
func leakElapsed(start time.Time) {
	elapsed := time.Since(start)
	encode(elapsed.String()) // want `wall-clock time \(time\.Since\) flows into deterministic-output sink via detflow\.leakElapsed → detflow\.encode → detflow\.emit`
}

// leakRand emits an unseeded random value.
func leakRand() {
	encode(strconv.Itoa(rand.Int())) // want `math/rand value \(rand\.Int\) flows into deterministic-output sink via detflow\.leakRand → detflow\.encode → detflow\.emit`
}

// leakSyncMap emits in sync.Map iteration order.
func leakSyncMap(m *sync.Map) {
	m.Range(func(k, v any) bool {
		encode(k.(string)) // want `sync\.Map iteration order flows into deterministic-output sink via detflow\.leakSyncMap → detflow\.encode → detflow\.emit`
		return true
	})
}

// leakSelect emits in whichever order the channels happen to be ready.
func leakSelect(a, b chan string) {
	for i := 0; i < 2; i++ {
		select {
		case s := <-a:
			encode(s) // want `select arbitration order flows into deterministic-output sink via detflow\.leakSelect → detflow\.encode → detflow\.emit`
		case s := <-b:
			encode(s) // want `select arbitration order flows into deterministic-output sink via detflow\.leakSelect → detflow\.encode → detflow\.emit`
		}
	}
}

// leakGoroutines fans emission out across goroutines spawned in a
// loop; their completion order interleaves the sink's output.
func leakGoroutines(parts []string) {
	for _, p := range parts {
		go func(s string) { // want `goroutine completion order flows into deterministic-output sink via detflow\.leakGoroutines → detflow\.encode → detflow\.emit`
			encode(s)
		}(p)
	}
}

// sortedKeys is allowed: the sort fixes the order before emission —
// exactly the fix the diagnostics suggest.
func sortedKeys(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	encode(strings.Join(keys, ","))
}

// emitRows is allowed: slice iteration is index-ordered.
func emitRows(rows []string) {
	for _, r := range rows {
		encode(r)
	}
}

// spawnOnce is allowed: a single goroutine cannot race itself.
func spawnOnce(s string) {
	go encode(s)
}

// tally is allowed: map iteration feeding an order-independent
// reduction never reaches a sink.
func tally(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

// Package runner is a golden fixture for the lockdiscipline analyzer.
// Its import path ends in "runner", placing it inside the analyzer's
// scope. Reporter mirrors the real runner's mutex-owning progress
// reporter.
package runner

import (
	"sync"
	"sync/atomic"
)

// Reporter owns mu, which guards done and ch.
type Reporter struct {
	mu   sync.Mutex
	done int
	n    uint64
	ch   chan int
}

// Good shows the accepted shape: lock, write, unlock.
func (r *Reporter) Good() {
	r.mu.Lock()
	r.done++
	r.mu.Unlock()
}

// DeferGood holds the lock to the end of the method.
func (r *Reporter) DeferGood() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done++
}

// AtomicGood needs no lock: the write goes through sync/atomic.
func (r *Reporter) AtomicGood() {
	atomic.AddUint64(&r.n, 1)
}

// Bad writes a guarded field without taking the lock.
func (r *Reporter) Bad() {
	r.done = 7 // want `write to Reporter\.done without holding r\.mu`
}

// Incr increments without the lock.
func (r *Reporter) Incr() {
	r.done++ // want `write to Reporter\.done without holding r\.mu`
}

// UnlockThenWrite releases the lock before the second write.
func (r *Reporter) UnlockThenWrite() {
	r.mu.Lock()
	r.done++
	r.mu.Unlock()
	r.done++ // want `write to Reporter\.done without holding r\.mu`
}

// SendUnderLock performs a channel send inside the critical section.
func (r *Reporter) SendUnderLock(v int) {
	r.mu.Lock()
	r.ch <- v // want `channel send while r\.mu is held`
	r.mu.Unlock()
}

// Snapshot copies the mutex through its by-value receiver.
func (r Reporter) Snapshot() int { // want `by-value receiver of type .*Reporter copies its sync\.Mutex by value`
	return r.done
}

// merge copies the mutex through a by-value parameter.
func merge(a Reporter) int { // want `by-value parameter of type .*Reporter copies its sync\.Mutex by value`
	return a.done
}

// clone copies the mutex by dereferencing the pointer.
func clone(p *Reporter) {
	c := *p // want `dereference copies .*Reporter and its sync\.Mutex by value`
	_ = c
}

// scan copies the mutex once per element while ranging.
func scan(rs []Reporter) int {
	total := 0
	for _, r := range rs { // want `range copies .*Reporter elements and their sync\.Mutex by value`
		total += r.done
	}
	return total
}

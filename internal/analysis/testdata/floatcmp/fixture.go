// Package metrics is a golden fixture for the floatcmp analyzer. Its
// import path places it in the metric-pipeline scope, where == and !=
// on floats are forbidden.
package metrics

// GapClosed compares accumulated IPC results the forbidden way.
func GapClosed(base, policy float64) bool {
	if base == policy { // want `floating-point == comparison`
		return false
	}
	return policy != 0 // want `floating-point != comparison`
}

// Allowed comparisons: ordering on floats and equality on integers.
func Allowed(a, b float64, hits, misses uint64) bool {
	return a < b || hits == misses
}

// Package sim is a golden fixture for the nondeterminism analyzer. Its
// import path ("tlacache/internal/sim") places it inside the
// simulation-package scope, so every reproducibility hazard below must
// be reported at the marked line: imports of math/rand (under any
// alias), use sites of rand values, wall-clock reads (Now, Since,
// Until), order-dependent map iteration, and sync.Map iteration.
package sim

import (
	"math/rand" // want `import of math/rand in a simulation package`
	"sync"
	"time"

	mrand "math/rand/v2" // want `import of math/rand/v2 in a simulation package`
)

// State stands in for simulator state that outlives a loop iteration.
type State struct {
	Total  uint64
	ByAddr map[uint64]uint64
}

// Stamp consults the wall clock, which a trace replay must never do.
func Stamp(s *State) int64 {
	s.Total += uint64(rand.Intn(8)) // want `math/rand use in a simulation package`
	return time.Now().UnixNano()    // want `time\.Now in a simulation package`
}

// Jitter hides the random source behind an import alias; use-site
// resolution through the type checker still finds it.
func Jitter(s *State) {
	s.Total += mrand.Uint64() // want `math/rand use in a simulation package`
}

// Elapsed reads the wall clock through the Since/Until helpers.
func Elapsed(t0 time.Time) (time.Duration, time.Duration) {
	return time.Since(t0), // want `time\.Since in a simulation package`
		time.Until(t0) // want `time\.Until in a simulation package`
}

// Merge writes state that outlives the loop in map iteration order.
func (s *State) Merge(m map[uint64]uint64) {
	for _, v := range m {
		s.Total += v // want `map iteration order is nondeterministic and this loop body mutates shared state`
	}
}

// Keys builds output in map iteration order.
func Keys(m map[uint64]uint64) []uint64 {
	var out []uint64
	for k := range m {
		out = append(out, k) // want `map iteration order is nondeterministic and this loop body appends to output`
	}
	return out
}

// Drain iterates a sync.Map, whose Range order is as randomised as a
// plain map's and whose presence implies cross-goroutine sharing.
func Drain(m *sync.Map, s *State) {
	m.Range(func(k, v any) bool { // want `sync\.Map iteration order is nondeterministic in a simulation package`
		s.Total += v.(uint64)
		return true
	})
}

// Count is allowed: the loop only advances an iteration-local scalar,
// so the result is independent of iteration order.
func Count(m map[uint64]uint64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// SumSlice is allowed: slices iterate in index order.
func SumSlice(vs []uint64, s *State) {
	for _, v := range vs {
		s.Total += v
	}
}

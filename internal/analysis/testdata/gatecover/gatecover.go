package gatecover

import "errors"

// Tuning is tracked through Config.Tuning: the gate reads Depth but
// never looks at Width.
type Tuning struct {
	Depth int
	Width int // want `field gatecover.Tuning.Width is never examined by gatecover.validate`
}

// Config is the gated configuration.
type Config struct {
	Mode   int
	Shards int
	Tuning Tuning
	Debug  bool //tlavet:gateexempt observability only; never changes simulated results
	//tlavet:gateexempt output formatting knob
	Trace   bool // want `stale //tlavet:gateexempt: field gatecover.Config.Trace IS examined by gatecover.validate`
	Unknown int  //  want `field gatecover.Config.Unknown is never examined by gatecover.validate`
	//tlavet:gateexempt
	NoWhy int // want `gateexempt directive has no reason` `field gatecover.Config.NoWhy is never examined`
	Aux   *Extra
}

// Extra is reached from Config only through a pointer: rejecting the
// reference (the nil check in validate) is the whole obligation, so
// Pad is never tracked and draws no diagnostic.
type Extra struct {
	Pad int
}

// validate gates a Config for the restricted mode.
//
//tlavet:gatecover Config
func validate(cfg Config) error {
	if cfg.Mode != 0 {
		return errors.New("mode")
	}
	if cfg.Aux != nil {
		return errors.New("aux")
	}
	if cfg.Shards < 1 {
		return errors.New("shards")
	}
	if cfg.Tuning.Depth > 4 {
		return errors.New("depth")
	}
	if cfg.Trace {
		return errors.New("trace")
	}
	return nil
}

// Outer/Inner exercise whole-value delegation: passing o.Inner to a
// gate annotated for Inner covers Inner's fields from gateOuter's
// point of view, and gateInner independently proves them examined.
type Outer struct {
	Inner Inner
	Flag  bool
}

// Inner is gated by gateInner.
type Inner struct {
	A int
	B int
}

// gateOuter delegates the nested struct to its own gate.
//
//tlavet:gatecover Outer
func gateOuter(o Outer) error {
	if o.Flag {
		return errors.New("flag")
	}
	return gateInner(o.Inner)
}

// gateInner examines every field of Inner.
//
//tlavet:gatecover Inner
func gateInner(in Inner) error {
	if in.A+in.B > 0 {
		return errors.New("ab")
	}
	return nil
}

// badRef names a type that does not exist.
//
//tlavet:gatecover Nope
func badRef() error { return nil } // want `gatecover target Nope is not a struct type`

// Package detflowgraph is the call-graph-edge fixture for detflow: it
// proves sink-reachability survives the indirection shapes the
// simulator actually uses — generic instantiation (the policy tables),
// method values (writer callbacks handed to loops), and closures
// passed as arguments (tracer hooks). Each leak's want pins the exact
// function→sink chain, so an edge silently dropped from the call graph
// fails the golden test rather than just weakening the analyzer.
package detflowgraph

// sink is the deterministic-output sink.
//
//tlavet:detsink
func sink(s string) {}

// emitAll is generic; call-graph edges into it must resolve the
// instantiation back to this declaration.
func emitAll[T ~string](vs []T) {
	for _, v := range vs {
		sink(string(v))
	}
}

type tag string

// leakGeneric reaches the sink through an inferred generic
// instantiation.
func leakGeneric(m map[tag]int) {
	for k := range m {
		emitAll([]tag{k}) // want `map iteration order flows into deterministic-output sink via detflowgraph\.leakGeneric → detflowgraph\.emitAll → detflowgraph\.sink`
	}
}

// leakInstantiated binds an explicit instantiation to a variable; the
// call through the variable is dynamic, so the finding rides on the
// reference edge taken at the bind site.
func leakInstantiated(m map[tag]int) {
	f := emitAll[tag]
	for k := range m {
		f([]tag{k}) // want `map iteration order flows into deterministic-output sink via detflowgraph\.leakInstantiated → detflowgraph\.emitAll → detflowgraph\.sink`
	}
}

type writer struct{ out []string }

// write is an annotated method sink, reached below as a method value.
//
//tlavet:detsink
func (w *writer) write(s string) { w.out = append(w.out, s) }

// leakMethodValue emits through a bound method value inside a
// map-iteration region.
func leakMethodValue(m map[string]int, w *writer) {
	f := w.write
	for k := range m {
		f(k) // want `map iteration order flows into deterministic-output sink via detflowgraph\.leakMethodValue → detflowgraph\.writer\.write`
	}
}

// apply is a neutral higher-order helper; it reaches no sink itself.
func apply(vs []string, f func(string)) {
	for _, v := range vs {
		f(v)
	}
}

// leakClosure passes a sink-calling closure as an argument inside a
// map-iteration region; the closure body inherits the region, so the
// inner call is the finding.
func leakClosure(m map[string]int) {
	for k := range m {
		apply([]string{k}, func(s string) { sink(s) }) // want `map iteration order flows into deterministic-output sink via detflowgraph\.leakClosure → detflowgraph\.sink`
	}
}

// emitFixed is allowed: the same shapes outside any nondeterministic
// region stay silent.
func emitFixed(rows []string, w *writer) {
	f := w.write
	for _, r := range rows {
		f(r)
	}
	emitAll(rows)
	apply(rows, func(s string) { sink(s) })
}

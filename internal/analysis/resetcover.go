package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ResetcoverAnalyzer is the static completeness proof behind state
// pooling: every field of a reset method's receiver must be restored by
// the method, or carry an explicit, justified exemption. The dynamic
// counterpart (TestResetEquivalence, TestResetStateEquivalence) proves
// the reset methods restore freshly-constructed state byte-for-byte for
// the configurations they run; resetcover proves no field can be
// FORGOTTEN — a new field added to a pooled type fails the build until
// the reset method handles it or its author justifies why reuse cannot
// observe it.
//
// A reset method declares itself in its doc comment:
//
//	//tlavet:resetcover
//
// The directive is also valid on an interface method declaration
// (replacement.StateResetter's ResetState), roping in every module
// implementation. Each annotated method's receiver struct — and every
// module-local struct reached through its non-exempt, non-delegated
// fields, through pointers, slices, arrays, maps, and embedded types —
// must have each field covered by one of:
//
//   - a wholesale overwrite (`*s = T{}`),
//   - a direct write (assignment, clear(), slice truncation — on the
//     method or a transitively-called helper with the same receiver
//     type; matching is type-based, so aliasing works),
//   - a delegated reset: calling another //tlavet:resetcover method on
//     the field (h.llc.Reset(), p.LRUStack.ResetState()),
//   - a `//tlavet:resetexempt <reason>` at the field declaration.
//
// Distinct findings separate a field that is never reset, an exemption
// gone stale (the field IS reset), and an unreachable reset helper (the
// field's type has an annotated reset method the parent never invokes).
var ResetcoverAnalyzer = &Analyzer{
	Name: "resetcover",
	Doc:  "every field of a //tlavet:resetcover'd receiver is restored or //tlavet:resetexempt'd",
	Help: "Pooled state is only reusable if its reset method restores every field. " +
		"Reset the new field in the annotated method (directly, via *s = T{}, or by " +
		"delegating to a //tlavet:resetcover method of the field's type), or annotate " +
		"the field //tlavet:resetexempt <reason> when reuse cannot observe it.",
	Default:   true,
	RunModule: runResetcover,
}

const (
	directiveResetcover  = "//tlavet:resetcover"
	directiveResetexempt = "//tlavet:resetexempt"
)

// scField is one struct field as seen at its declaration, for the
// state-coverage provers (resetcover, gatecover). Embedded fields are
// included under their implicit name.
type scField struct {
	name      string
	pos       token.Pos
	exempt    bool
	exemptPos token.Pos
	// structKey is the tracked-type key of the field's (unwrapped)
	// struct type when it is declared in this module, else "".
	structKey string
	// indirect marks a field whose declared type reaches its struct
	// through a pointer. Gatecover stops tracked expansion at indirect
	// fields: a gate examines such a field as a reference (typically a
	// nil check) and never owes anything to the pointed-to contents.
	// Resetcover still chases them — pointed-to state must be restored.
	indirect bool
}

// scType is one module-declared struct type, keyed like kcType by
// "<pkg path>.<type name>".
type scType struct {
	key     string
	display string
	fields  []*scField
}

// collectCoverIndex indexes every struct type declared in the module,
// reading the given field-exemption directive at each declaration.
// Reasonless exemptions are reported and exempt nothing.
func collectCoverIndex(mp *ModulePass, exemptDirective string) map[string]*scType {
	m := mp.Module
	modulePkgs := modulePackageSet(m)
	structs := make(map[string]*scType)
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					kt := &scType{
						key:     pkg.Path + "." + ts.Name.Name,
						display: pkg.Types.Name() + "." + ts.Name.Name,
					}
					for _, field := range st.Fields.List {
						exempt, exemptPos := scFieldExemption(mp, field, exemptDirective)
						var structKey string
						var indirect bool
						if t, ok := pkg.TypeOfExpr(field.Type); ok {
							structKey = structKeyOf(t, modulePkgs)
							_, indirect = t.Underlying().(*types.Pointer)
						}
						if len(field.Names) == 0 {
							// Embedded field: named after its (unwrapped) type.
							name := embeddedFieldName(field.Type)
							if name == "" {
								continue
							}
							kt.fields = append(kt.fields, &scField{
								name: name, pos: field.Type.Pos(),
								exempt: exempt, exemptPos: exemptPos,
								structKey: structKey, indirect: indirect,
							})
							continue
						}
						for _, name := range field.Names {
							kt.fields = append(kt.fields, &scField{
								name: name.Name, pos: name.Pos(),
								exempt: exempt, exemptPos: exemptPos,
								structKey: structKey, indirect: indirect,
							})
						}
					}
					structs[kt.key] = kt
				}
			}
		}
	}
	return structs
}

// scFieldExemption scans a field's doc and line comments for the given
// `//tlavet:<check>exempt <reason>` directive.
func scFieldExemption(mp *ModulePass, field *ast.Field, directive string) (bool, token.Pos) {
	short := strings.TrimPrefix(directive, "//tlavet:")
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, directive)
			if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
				continue
			}
			if len(strings.Fields(rest)) == 0 {
				mp.Report(field.Pos(), short+" directive has no reason",
					"write "+directive+" <reason> so exemptions stay auditable", nil)
				continue
			}
			return true, c.Pos()
		}
	}
	return false, token.NoPos
}

// embeddedFieldName derives the implicit field name of an embedded
// type: the final identifier of the (possibly pointered, possibly
// package-qualified) type expression.
func embeddedFieldName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.StarExpr:
		return embeddedFieldName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return embeddedFieldName(e.X)
	case *ast.IndexListExpr:
		return embeddedFieldName(e.X)
	}
	return ""
}

// modulePackageSet returns the module's package paths as a set, the
// form structKeyOf consumes.
func modulePackageSet(m *Module) map[string]bool {
	pkgs := make(map[string]bool, len(m.Pkgs))
	for _, p := range m.Pkgs {
		pkgs[p.Path] = true
	}
	return pkgs
}

// recvStructKey returns the tracked-type key of fn's receiver struct,
// or "" when fn is not a method on a module-local named struct.
func recvStructKey(fn *types.Func, modulePkgs map[string]bool) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return structKeyOf(sig.Recv().Type(), modulePkgs)
}

// rcWrites aggregates what one reset method (plus its same-receiver
// helpers) does, keyed by tracked-type key then field name.
type rcWrites struct {
	full      map[string]map[string]token.Pos // complete overwrite of the field (or its elements)
	partial   map[string]map[string]bool      // write through the field into deeper state
	delegated map[string]map[string]bool      // annotated reset method called on the field
	wholesale map[string]bool                 // whole value of the type overwritten
}

func newRCWrites() *rcWrites {
	return &rcWrites{
		full:      make(map[string]map[string]token.Pos),
		partial:   make(map[string]map[string]bool),
		delegated: make(map[string]map[string]bool),
		wholesale: make(map[string]bool),
	}
}

func (w *rcWrites) markFull(key, field string, pos token.Pos) {
	if w.full[key] == nil {
		w.full[key] = make(map[string]token.Pos)
	}
	if _, ok := w.full[key][field]; !ok {
		w.full[key][field] = pos
	}
}

func (w *rcWrites) markPartial(key, field string) {
	if w.partial[key] == nil {
		w.partial[key] = make(map[string]bool)
	}
	w.partial[key][field] = true
}

func (w *rcWrites) markDelegated(key, field string) {
	if w.delegated[key] == nil {
		w.delegated[key] = make(map[string]bool)
	}
	w.delegated[key][field] = true
}

// markWholesaleType marks key and, transitively, the struct types of
// its fields as wholly overwritten: assigning a complete value resets
// every field, including nested structs.
func (w *rcWrites) markWholesaleType(structs map[string]*scType, key string) {
	if key == "" || w.wholesale[key] {
		return
	}
	w.wholesale[key] = true
	kt, ok := structs[key]
	if !ok {
		return
	}
	for _, f := range kt.fields {
		if f.structKey != "" {
			w.markWholesaleType(structs, f.structKey)
		}
	}
}

func runResetcover(mp *ModulePass) {
	m := mp.Module
	modulePkgs := modulePackageSet(m)
	structs := collectCoverIndex(mp, directiveResetexempt)
	g := buildCallGraph(m)

	roots := g.annotatedRoots(directiveResetcover)
	if len(roots) == 0 {
		return
	}
	// Dedupe (a method can be annotated directly and via an interface)
	// and index the annotated set for delegation matching.
	annotated := make(map[*types.Func]bool)
	var methods []*types.Func
	resetOf := make(map[string][]*types.Func) // receiver type key → annotated resets
	for _, fn := range roots {
		if annotated[fn] {
			continue
		}
		annotated[fn] = true
		key := recvStructKey(fn, modulePkgs)
		if key == "" || structs[key] == nil {
			pos := fn.Pos()
			if n := g.nodes[fn]; n != nil {
				pos = n.decl.Name.Pos()
			}
			mp.Report(pos, "resetcover on "+displayName(fn)+", which is not a method on a module struct",
				"annotate a method whose receiver is a struct declared in this module", nil)
			continue
		}
		methods = append(methods, fn)
		resetOf[key] = append(resetOf[key], fn)
	}
	sort.Slice(methods, func(i, j int) bool {
		a, b := displayName(methods[i]), displayName(methods[j])
		if a != b {
			return a < b
		}
		return methods[i].Pos() < methods[j].Pos()
	})

	for _, fn := range methods {
		node := g.nodes[fn]
		if node == nil {
			continue // declared without a body (external linkname etc.)
		}
		checkResetCoverage(mp, g, structs, modulePkgs, annotated, resetOf, node,
			recvStructKey(fn, modulePkgs))
	}
}

// checkResetCoverage verifies one annotated reset method against its
// receiver struct and everything tracked through it.
func checkResetCoverage(mp *ModulePass, g *callGraph, structs map[string]*scType,
	modulePkgs map[string]bool, annotated map[*types.Func]bool,
	resetOf map[string][]*types.Func, root *cgNode, rootKey string) {

	resetName := displayName(root.fn)

	// The body set: the annotated method plus every transitively-called
	// helper method on the same receiver type (h.clearIFetchMemos(),
	// c.setPolicy(), g.Reset()); their writes count as the reset's own.
	body := []*cgNode{root}
	seen := map[*cgNode]bool{root: true}
	for i := 0; i < len(body); i++ {
		for _, cs := range body[i].calls {
			cn := g.nodes[cs.callee]
			if cn == nil || seen[cn] {
				continue
			}
			if recvStructKey(cn.fn, modulePkgs) != rootKey {
				continue
			}
			seen[cn] = true
			body = append(body, cn)
		}
	}

	w := newRCWrites()
	for _, n := range body {
		scanResetBody(n.pkg, n.decl, modulePkgs, annotated, w, structs, g)
	}

	// Expand the tracked set and judge each field. trackedVia carries
	// the declaration chain from the receiver down to each tracked type.
	type item struct {
		key string
		via []string
	}
	tracked := map[string]bool{}
	queue := []item{{key: rootKey, via: []string{structs[rootKey].display}}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if tracked[it.key] {
			continue
		}
		tracked[it.key] = true
		kt := structs[it.key]
		for _, f := range kt.fields {
			display := kt.display + "." + f.name
			declChain := append(append([]string(nil), it.via...), display)
			_, hasFull := w.full[it.key][f.name]
			anyWrite := hasFull || w.partial[it.key][f.name] || w.delegated[it.key][f.name]
			if f.exempt {
				if anyWrite {
					mp.Report(f.pos,
						"stale //tlavet:resetexempt: field "+display+" IS reset by "+resetName,
						"drop the exemption or stop resetting the field", declChain)
				}
				continue
			}
			if w.wholesale[it.key] || w.delegated[it.key][f.name] || hasFull {
				continue
			}
			if f.structKey != "" && structs[f.structKey] != nil {
				if helpers := resetOf[f.structKey]; len(helpers) > 0 {
					mp.Report(f.pos,
						"field "+display+" has reset method "+displayName(helpers[0])+
							" that "+resetName+" never invokes on it",
						"call "+displayName(helpers[0])+" on the field or annotate //tlavet:resetexempt <reason>",
						declChain)
					continue
				}
				// Member-wise reset: track the field's struct type; its own
				// fields are judged individually below.
				queue = append(queue, item{key: f.structKey, via: declChain})
				continue
			}
			mp.Report(f.pos,
				"field "+display+" is never reset by "+resetName+" and has no //tlavet:resetexempt",
				"reset the field in "+resetName+" or annotate //tlavet:resetexempt <reason>",
				declChain)
		}
	}
}

// scanResetBody records every write, wholesale overwrite, and delegated
// reset call in one body of the reset set. Matching is type-based: any
// lvalue whose base chain selects a field of a module struct counts for
// that (type, field) pair regardless of how the value was reached.
func scanResetBody(pkg *Package, decl *ast.FuncDecl, modulePkgs map[string]bool,
	annotated map[*types.Func]bool, w *rcWrites, structs map[string]*scType, g *callGraph) {

	recordLValue := func(expr ast.Expr) {
		orig := expr
		full := true
		for {
			switch e := expr.(type) {
			case *ast.ParenExpr:
				expr = e.X
			case *ast.IndexExpr:
				expr = e.X
			case *ast.StarExpr:
				expr = e.X
			case *ast.SelectorExpr:
				if t, ok := pkg.TypeOfExpr(e.X); ok {
					if key := structKeyOf(t, modulePkgs); key != "" {
						if full {
							w.markFull(key, e.Sel.Name, e.Sel.Pos())
							// A complete overwrite of a struct-typed field
							// resets everything beneath it.
							if vt, ok := pkg.TypeOfExpr(e); ok {
								w.markWholesaleType(structs, structKeyOf(vt, modulePkgs))
							}
						} else {
							w.markPartial(key, e.Sel.Name)
						}
					}
				}
				full = false
				expr = e.X
			default:
				// `*s = T{}`: a dereferencing overwrite of the whole value.
				if _, deref := orig.(*ast.StarExpr); deref && full {
					if t, ok := pkg.TypeOfExpr(orig); ok {
						w.markWholesaleType(structs, structKeyOf(t, modulePkgs))
					}
				}
				return
			}
		}
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				recordLValue(lhs)
			}
		case *ast.IncDecStmt:
			recordLValue(n.X)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "clear" && len(n.Args) == 1 {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					recordLValue(n.Args[0])
					return true
				}
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			delegates := false
			for _, callee := range g.callees(pkg, n) {
				if annotated[callee] {
					delegates = true
					break
				}
			}
			if !delegates {
				return true
			}
			// The call resets its receiver: find the field it was reached
			// through (h.llc.Reset() resets field llc; indexing and
			// dereferencing do not change which field is reset).
			recv := ast.Unparen(sel.X)
			for {
				switch e := recv.(type) {
				case *ast.ParenExpr:
					recv = e.X
					continue
				case *ast.IndexExpr:
					recv = e.X
					continue
				case *ast.StarExpr:
					recv = e.X
					continue
				case *ast.SelectorExpr:
					if t, ok := pkg.TypeOfExpr(e.X); ok {
						if key := structKeyOf(t, modulePkgs); key != "" {
							w.markDelegated(key, e.Sel.Name)
						}
					}
				}
				break
			}
		}
		return true
	})
}

// ResetcoverTargets exposes the receiver types of the module's
// //tlavet:resetcover methods, display-rendered ("pkg.Type"), sorted
// and deduplicated — for the static/dynamic reset-proof cross-check.
func ResetcoverTargets(m *Module) []string {
	g := buildCallGraph(m)
	modulePkgs := modulePackageSet(m)
	seen := make(map[string]bool)
	var names []string
	for _, fn := range g.annotatedRoots(directiveResetcover) {
		key := recvStructKey(fn, modulePkgs)
		if key == "" {
			continue
		}
		sig := fn.Type().(*types.Signature)
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		name := named.Obj().Pkg().Name() + "." + named.Obj().Name()
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

package decision

import (
	"fmt"
	"io"
	"strings"

	"tlacache/internal/cli"
	"tlacache/internal/hierarchy"
	"tlacache/internal/sim"
	"tlacache/internal/telemetry"
	"tlacache/internal/workload"
)

// CounterfactualConfig names one counterfactual experiment: a base
// machine (policy not yet applied), the workload mix, and the two
// policies to contrast. Sim must have the observer fields unset — the
// engine owns the tracer it attaches.
type CounterfactualConfig struct {
	Sim        sim.Config
	Mix        workload.Mix
	BasePolicy string // cli policy name the trace is captured under
	AltPolicy  string // cli policy name simulated directly as ground truth
}

// Counterfactual is the engine's result: the base run's decision-level
// report (including the per-eviction QBS counterfactual prediction) and
// the direct simulation of the alternative policy as ground truth. Both
// simulations share seed, workload, and machine, so the comparison is
// the policy delta and nothing else.
type Counterfactual struct {
	BasePolicy string        `json:"base_policy"`
	AltPolicy  string        `json:"alt_policy"`
	Report     *Report       `json:"report"`
	Base       sim.MixResult `json:"base"`
	Alt        sim.MixResult `json:"alt"`
}

// RunCounterfactual executes the engine: the base policy runs once with
// an in-memory decision tracer attached, the alternative policy runs
// once without one. Runs are sequential and single-goroutine inside the
// simulator, so results are deterministic and independent of GOMAXPROCS;
// the attached tracer cannot perturb the base run (it only observes —
// see TestCounterfactualTracerInvisible).
func RunCounterfactual(cc CounterfactualConfig) (*Counterfactual, error) {
	if cc.Sim.DecisionTracer != nil || cc.Sim.Probe != nil || cc.Sim.Sampler != nil {
		return nil, fmt.Errorf("decision: counterfactual config must not carry observers")
	}
	baseCfg := cc.Sim
	if err := cli.ApplyPolicy(&baseCfg.Hierarchy, cc.BasePolicy); err != nil {
		return nil, err
	}
	altCfg := cc.Sim
	if err := cli.ApplyPolicy(&altCfg.Hierarchy, cc.AltPolicy); err != nil {
		return nil, err
	}

	log := &telemetry.DecisionLog{}
	baseCfg.DecisionTracer = log
	base, err := sim.RunMix(baseCfg, cc.Mix)
	if err != nil {
		return nil, fmt.Errorf("decision: base policy %s: %w", cc.BasePolicy, err)
	}
	rep, err := AnalyzeRecords(hierarchy.DecisionMetaFor(baseCfg.Hierarchy), log.Records)
	if err != nil {
		return nil, err
	}
	alt, err := sim.RunMix(altCfg, cc.Mix)
	if err != nil {
		return nil, fmt.Errorf("decision: alt policy %s: %w", cc.AltPolicy, err)
	}
	return &Counterfactual{
		BasePolicy: cc.BasePolicy,
		AltPolicy:  cc.AltPolicy,
		Report:     rep,
		Base:       base,
		Alt:        alt,
	}, nil
}

// delta renders alt relative to base as a signed percentage.
func delta(base, alt float64) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.2f%%", 100*(alt/base-1))
}

// Render writes the fixed-format counterfactual report: the trace-level
// prediction followed by the direct-simulation ground truth. Output is
// byte-deterministic for identical inputs — enforced statically as a
// detflow sink.
//
//tlavet:detsink
func (c *Counterfactual) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "counterfactual: %s vs %s on mix %s (%s)\n\n",
		c.BasePolicy, c.AltPolicy, c.Base.Mix.Name, strings.Join(c.Base.Mix.Apps, ","))
	fmt.Fprintf(&b, "-- trace-level prediction (base run: %s) --\n", c.BasePolicy)
	if err := c.Report.Render(&b); err != nil {
		return err
	}
	fmt.Fprintf(&b, "\n-- direct simulation (ground truth: %s) --\n", c.AltPolicy)
	fmt.Fprintf(&b, "%-22s %14s %14s %10s\n", "metric", c.BasePolicy, c.AltPolicy, "delta")
	fmt.Fprintf(&b, "%-22s %14.3f %14.3f %10s\n", "throughput",
		c.Base.Throughput, c.Alt.Throughput, delta(c.Base.Throughput, c.Alt.Throughput))
	row := func(name string, base, alt uint64) {
		fmt.Fprintf(&b, "%-22s %14d %14d %10s\n", name, base, alt, delta(float64(base), float64(alt)))
	}
	row("LLC misses", c.Base.LLCMisses, c.Alt.LLCMisses)
	row("inclusion victims", c.Base.InclusionVictims, c.Alt.InclusionVictims)
	row("back-invalidates", c.Base.Traffic.BackInvalidates, c.Alt.Traffic.BackInvalidates)
	row("memory reads", c.Base.Traffic.MemoryReads, c.Alt.Traffic.MemoryReads)
	row("memory writebacks", c.Base.Traffic.WritebacksToMem, c.Alt.Traffic.WritebacksToMem)
	if c.Alt.Traffic.QBSQueries > 0 || c.Base.Traffic.QBSQueries > 0 {
		row("QBS queries", c.Base.Traffic.QBSQueries, c.Alt.Traffic.QBSQueries)
		row("QBS saves", c.Base.Traffic.QBSSaves, c.Alt.Traffic.QBSSaves)
	}
	fmt.Fprintf(&b, "\nprediction vs truth: trace flags %s of evictions for a different victim; "+
		"direct %s run changes inclusion victims by %s\n",
		pctOf(c.Report.QBSChanged, c.Report.Evictions), c.AltPolicy,
		delta(float64(c.Base.InclusionVictims), float64(c.Alt.InclusionVictims)))
	_, err := io.WriteString(w, b.String())
	return err
}

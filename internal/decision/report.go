// Package decision analyzes LLC eviction decision traces (the records a
// telemetry.DecisionTracer captures) offline: per-policy decision
// quality reports and the QBS counterfactual — what would have happened
// had the LLC evicted the way a temporal-locality-aware policy suggests
// instead of the way the replacement policy picked. It is the analysis
// engine behind cmd/tlatrace.
package decision

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"tlacache/internal/telemetry"
)

// RankCount is one bucket of the rank-of-chosen-way histogram.
type RankCount struct {
	Rank  uint8  `json:"rank"`
	Count uint64 `json:"count"`
}

// CoreStats attributes decisions to the core whose demand (or L2
// eviction, in exclusive mode) triggered them.
type CoreStats struct {
	Decisions        uint64 `json:"decisions"`
	InclusionVictims uint64 `json:"inclusion_victims"`
}

// Report summarizes one decision trace. All counts are exact; the
// derived rates come from Render so the struct stays JSON-stable.
type Report struct {
	Meta      telemetry.DecisionMeta `json:"meta"`
	Decisions uint64                 `json:"decisions"`
	// ColdFills chose an invalid way (no eviction); Evictions displaced
	// a valid line, DirtyEvictions one that required a writeback.
	ColdFills      uint64 `json:"cold_fills"`
	Evictions      uint64 `json:"evictions"`
	DirtyEvictions uint64 `json:"dirty_evictions"`
	// InclusionVictims counts core-cache lines lost to back-invalidation
	// across all decisions; EvictionsWithVictims counts the decisions
	// responsible. TrackedVictims counts evictions whose victim the
	// directory still attributed to at least one core.
	InclusionVictims     uint64 `json:"inclusion_victims"`
	EvictionsWithVictims uint64 `json:"evictions_with_victims"`
	TrackedVictims       uint64 `json:"tracked_victims"`
	// The QBS counterfactual over evictions: Agree — the emulation
	// endorses the chosen way; Changed — it would have evicted another
	// (recorded) way; NoAlternative — every candidate was core-resident,
	// so real QBS would have exhausted its query budget.
	QBSAgree         uint64 `json:"qbs_agree"`
	QBSChanged       uint64 `json:"qbs_changed"`
	QBSNoAlternative uint64 `json:"qbs_no_alternative"`
	// PredictedVictimsAvoided sums the inclusion victims of Changed
	// decisions — the back-invalidations a QBS choice would have dodged.
	// PredictedDirtyAvoided counts Changed decisions that traded a dirty
	// victim for a clean suggested one.
	PredictedVictimsAvoided uint64 `json:"predicted_victims_avoided"`
	PredictedDirtyAvoided   uint64 `json:"predicted_dirty_avoided"`
	// RankChosen histograms the replacement-policy rank of the chosen
	// way (larger = closer to eviction; telemetry.RankUnknown when the
	// policy exposes none). A healthy policy evicts from high ranks.
	RankChosen []RankCount `json:"rank_chosen"`
	// PerCore is indexed by core ID (length Meta.Cores).
	PerCore []CoreStats `json:"per_core"`

	ranks [256]uint64
}

// NewReport returns an empty report for a trace with the given header.
func NewReport(meta telemetry.DecisionMeta) *Report {
	return &Report{Meta: meta, PerCore: make([]CoreStats, meta.Cores)}
}

// Add accumulates one decision record.
func (r *Report) Add(d *telemetry.Decision) error {
	if d.ChosenWay < 0 || d.ChosenWay >= len(d.Candidates) {
		return fmt.Errorf("decision: record %d chose way %d of %d candidates",
			d.Seq, d.ChosenWay, len(d.Candidates))
	}
	if d.Core < 0 || d.Core >= len(r.PerCore) {
		return fmt.Errorf("decision: record %d from core %d of %d", d.Seq, d.Core, len(r.PerCore))
	}
	r.Decisions++
	r.PerCore[d.Core].Decisions++
	r.PerCore[d.Core].InclusionVictims += uint64(d.InclusionVictims)
	r.InclusionVictims += uint64(d.InclusionVictims)
	c := &d.Candidates[d.ChosenWay]
	r.ranks[c.Rank]++
	if !c.Valid {
		r.ColdFills++
		return nil
	}
	r.Evictions++
	if c.Dirty {
		r.DirtyEvictions++
	}
	if c.Presence != 0 {
		r.TrackedVictims++
	}
	if d.InclusionVictims > 0 {
		r.EvictionsWithVictims++
	}
	switch {
	case d.QBSWay == d.ChosenWay:
		r.QBSAgree++
	case d.QBSWay == telemetry.NoWay:
		r.QBSNoAlternative++
	default:
		if d.QBSWay < 0 || d.QBSWay >= len(d.Candidates) {
			return fmt.Errorf("decision: record %d suggests way %d of %d candidates",
				d.Seq, d.QBSWay, len(d.Candidates))
		}
		r.QBSChanged++
		r.PredictedVictimsAvoided += uint64(d.InclusionVictims)
		if c.Dirty && !d.Candidates[d.QBSWay].Dirty {
			r.PredictedDirtyAvoided++
		}
	}
	return nil
}

// Finish freezes the accumulated histogram into the exported form.
// Call it once, after the last Add.
func (r *Report) Finish() {
	r.RankChosen = r.RankChosen[:0]
	for rank := 0; rank < 256; rank++ {
		if n := r.ranks[rank]; n > 0 {
			r.RankChosen = append(r.RankChosen, RankCount{Rank: uint8(rank), Count: n})
		}
	}
}

// AnalyzeRecords builds a report from in-memory records (e.g. a
// telemetry.DecisionLog captured by the counterfactual engine).
func AnalyzeRecords(meta telemetry.DecisionMeta, recs []telemetry.Decision) (*Report, error) {
	r := NewReport(meta)
	for i := range recs {
		if err := r.Add(&recs[i]); err != nil {
			return nil, err
		}
	}
	r.Finish()
	return r, nil
}

// Analyze streams a trace from r, which may be either the binary TLAD1
// format or its JSONL sibling (sniffed from the first bytes).
func Analyze(rd io.Reader) (*Report, error) {
	br := bufio.NewReader(rd)
	head, err := br.Peek(6)
	if err != nil {
		return nil, fmt.Errorf("decision: trace too short: %w", err)
	}
	if bytes.Equal(head, []byte("TLAD1\n")) {
		return analyzeBinary(br)
	}
	return analyzeJSONL(br)
}

// AnalyzeFile opens and analyzes one trace file of either format.
func AnalyzeFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := Analyze(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func analyzeBinary(br *bufio.Reader) (*Report, error) {
	dr, err := telemetry.NewDecisionReader(br)
	if err != nil {
		return nil, err
	}
	rep := NewReport(dr.Meta())
	var d telemetry.Decision
	for {
		err := dr.Read(&d)
		if err == io.EOF {
			rep.Finish()
			return rep, nil
		}
		if err != nil {
			return nil, err
		}
		if err := rep.Add(&d); err != nil {
			return nil, err
		}
	}
}

func analyzeJSONL(br *bufio.Reader) (*Report, error) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("decision: empty JSONL trace")
	}
	var hdr struct {
		Meta bool `json:"meta"`
		telemetry.DecisionMeta
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || !hdr.Meta {
		return nil, fmt.Errorf("decision: JSONL trace lacks the meta header line (err=%v)", err)
	}
	rep := NewReport(hdr.DecisionMeta)
	line := 1
	for sc.Scan() {
		line++
		var d telemetry.Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			return nil, fmt.Errorf("decision: JSONL line %d: %w", line, err)
		}
		if err := rep.Add(&d); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	rep.Finish()
	return rep, nil
}

// pctOf renders a/b as a fixed-width percentage, "-" when b is zero —
// every Render output is byte-deterministic for identical reports.
func pctOf(a, b uint64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(a)/float64(b))
}

// Render writes the fixed-format text report. Output carries no
// timestamps or environment detail: identical traces render to
// identical bytes — enforced statically as a detflow sink.
//
//tlavet:detsink
func (r *Report) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d sets x %d ways, policy %s, %d cores\n",
		r.Meta.Sets, r.Meta.Assoc, r.Meta.Policy, r.Meta.Cores)
	fmt.Fprintf(&b, "decisions               %d\n", r.Decisions)
	fmt.Fprintf(&b, "  cold fills            %d (%s)\n", r.ColdFills, pctOf(r.ColdFills, r.Decisions))
	fmt.Fprintf(&b, "  evictions             %d (%s)\n", r.Evictions, pctOf(r.Evictions, r.Decisions))
	fmt.Fprintf(&b, "  dirty evictions       %d (%s of evictions)\n", r.DirtyEvictions, pctOf(r.DirtyEvictions, r.Evictions))
	fmt.Fprintf(&b, "  directory-tracked     %d (%s of evictions)\n", r.TrackedVictims, pctOf(r.TrackedVictims, r.Evictions))
	fmt.Fprintf(&b, "inclusion victims       %d (from %d evictions, %s)\n",
		r.InclusionVictims, r.EvictionsWithVictims, pctOf(r.EvictionsWithVictims, r.Evictions))
	fmt.Fprintf(&b, "QBS counterfactual (per eviction)\n")
	fmt.Fprintf(&b, "  agree                 %d (%s)\n", r.QBSAgree, pctOf(r.QBSAgree, r.Evictions))
	fmt.Fprintf(&b, "  would change          %d (%s)\n", r.QBSChanged, pctOf(r.QBSChanged, r.Evictions))
	fmt.Fprintf(&b, "  no alternative        %d (%s)\n", r.QBSNoAlternative, pctOf(r.QBSNoAlternative, r.Evictions))
	fmt.Fprintf(&b, "  victims avoided       %d (%s of inclusion victims)\n",
		r.PredictedVictimsAvoided, pctOf(r.PredictedVictimsAvoided, r.InclusionVictims))
	fmt.Fprintf(&b, "  dirty swaps avoided   %d\n", r.PredictedDirtyAvoided)
	fmt.Fprintf(&b, "rank of chosen way (larger = closer to eviction)\n")
	for _, rc := range r.RankChosen {
		label := fmt.Sprintf("%d", rc.Rank)
		if rc.Rank == telemetry.RankUnknown {
			label = "unknown"
		}
		fmt.Fprintf(&b, "  rank %-7s %10d (%s)\n", label, rc.Count, pctOf(rc.Count, r.Decisions))
	}
	fmt.Fprintf(&b, "per core\n")
	for core, cs := range r.PerCore {
		fmt.Fprintf(&b, "  core %-2d  decisions %10d  inclusion victims %10d\n",
			core, cs.Decisions, cs.InclusionVictims)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

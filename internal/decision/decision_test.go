package decision

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"tlacache/internal/cli"
	"tlacache/internal/hierarchy"
	"tlacache/internal/sim"
	"tlacache/internal/telemetry"
	"tlacache/internal/workload"
)

// smallConfig is a machine under real LLC pressure in a fast run: a
// 256 KiB LLC under two cores of default-size private caches.
func smallConfig(t *testing.T) (sim.Config, workload.Mix) {
	t.Helper()
	mix, err := cli.ResolveMix("sje,lib")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(len(mix.Apps))
	cfg.Instructions = 60_000
	cfg.Warmup = 120_000
	cfg.Hierarchy.LLCSize = 256 << 10
	return cfg, mix
}

// teeTracer fans records out to two tracers, so one run can feed the
// in-memory log and a binary writer at once.
type teeTracer struct{ a, b telemetry.DecisionTracer }

func (t teeTracer) Decision(d *telemetry.Decision) {
	t.a.Decision(d)
	t.b.Decision(d)
}

// One run, three views: the streaming binary analysis, the streaming
// JSONL analysis, and the in-memory record analysis must produce the
// same report.
func TestAnalyzeViewsAgree(t *testing.T) {
	cfg, mix := smallConfig(t)
	if err := cli.ApplyPolicy(&cfg.Hierarchy, "baseline"); err != nil {
		t.Fatal(err)
	}
	meta := hierarchy.DecisionMetaFor(cfg.Hierarchy)
	var bin, jsonl bytes.Buffer
	bw, err := telemetry.NewDecisionWriter(&bin, meta)
	if err != nil {
		t.Fatal(err)
	}
	jw, err := telemetry.NewDecisionJSONLWriter(&jsonl, meta)
	if err != nil {
		t.Fatal(err)
	}
	log := &telemetry.DecisionLog{}
	cfg.DecisionTracer = teeTracer{a: log, b: teeTracer{a: bw, b: jw}}
	if _, err := sim.RunMix(cfg, mix); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(log.Records) == 0 {
		t.Fatal("no decisions captured; shrink the LLC or lengthen the run")
	}

	fromLog, err := AnalyzeRecords(meta, log.Records)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := Analyze(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fromJSONL, err := Analyze(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromLog, fromBin) {
		t.Errorf("binary analysis diverges from in-memory records:\n bin %+v\n log %+v", fromBin, fromLog)
	}
	if !reflect.DeepEqual(fromLog, fromJSONL) {
		t.Errorf("JSONL analysis diverges from in-memory records:\n jsonl %+v\n log %+v", fromJSONL, fromLog)
	}
	if fromLog.Decisions != uint64(len(log.Records)) {
		t.Errorf("report counts %d decisions, log holds %d", fromLog.Decisions, len(log.Records))
	}
	// Rendering the same report twice is byte-identical.
	var r1, r2 bytes.Buffer
	if err := fromLog.Render(&r1); err != nil {
		t.Fatal(err)
	}
	if err := fromLog.Render(&r2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.Bytes(), r2.Bytes()) {
		t.Error("Render is not deterministic")
	}
}

// The counterfactual engine must be byte-deterministic across runs and
// independent of GOMAXPROCS — the acceptance bar for trusting its
// reports.
func TestCounterfactualDeterministic(t *testing.T) {
	cfg, mix := smallConfig(t)
	cc := CounterfactualConfig{Sim: cfg, Mix: mix, BasePolicy: "baseline", AltPolicy: "qbs"}

	renderAt := func(procs int) []byte {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		res, err := RunCounterfactual(cc)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := res.Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	first := renderAt(1)
	second := renderAt(8)
	if !bytes.Equal(first, second) {
		t.Errorf("counterfactual output differs across runs/GOMAXPROCS:\n--- procs=1\n%s\n--- procs=8\n%s",
			first, second)
	}
	if len(first) == 0 {
		t.Fatal("empty render")
	}
}

// The counterfactual's ground-truth leg must agree with an independent
// direct simulation of the alternative policy, and the attached tracer
// must not perturb the base leg.
func TestCounterfactualAgreesWithDirectSim(t *testing.T) {
	cfg, mix := smallConfig(t)
	res, err := RunCounterfactual(CounterfactualConfig{
		Sim: cfg, Mix: mix, BasePolicy: "baseline", AltPolicy: "qbs",
	})
	if err != nil {
		t.Fatal(err)
	}

	baseCfg := cfg
	if err := cli.ApplyPolicy(&baseCfg.Hierarchy, "baseline"); err != nil {
		t.Fatal(err)
	}
	baseDirect, err := sim.RunMix(baseCfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Base, baseDirect) {
		t.Errorf("tracer-attached base run diverges from a plain run:\nengine %+v\ndirect %+v",
			res.Base, baseDirect)
	}

	altCfg := cfg
	if err := cli.ApplyPolicy(&altCfg.Hierarchy, "qbs"); err != nil {
		t.Fatal(err)
	}
	altDirect, err := sim.RunMix(altCfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Alt, altDirect) {
		t.Errorf("counterfactual alt leg diverges from a direct simulation:\nengine %+v\ndirect %+v",
			res.Alt, altDirect)
	}

	// The engine must have observed real evictions for the comparison to
	// mean anything.
	if res.Report.Evictions == 0 {
		t.Error("no evictions in the base trace; the counterfactual is vacuous")
	}
}

func TestCounterfactualRejectsObservers(t *testing.T) {
	cfg, mix := smallConfig(t)
	cfg.DecisionTracer = &telemetry.DecisionLog{}
	_, err := RunCounterfactual(CounterfactualConfig{
		Sim: cfg, Mix: mix, BasePolicy: "baseline", AltPolicy: "qbs",
	})
	if err == nil {
		t.Fatal("config carrying a tracer was accepted; the engine owns its observers")
	}
}

func TestReportAddValidates(t *testing.T) {
	rep := NewReport(telemetry.DecisionMeta{Sets: 4, Assoc: 2, Policy: "LRU", Cores: 1})
	bad := telemetry.Decision{ChosenWay: 5, Candidates: []telemetry.DecisionCandidate{{Way: 0}, {Way: 1}}}
	if err := rep.Add(&bad); err == nil {
		t.Error("out-of-range ChosenWay accepted")
	}
	bad = telemetry.Decision{Core: 3, ChosenWay: 0, Candidates: []telemetry.DecisionCandidate{{Way: 0}, {Way: 1}}}
	if err := rep.Add(&bad); err == nil {
		t.Error("out-of-range Core accepted")
	}
	bad = telemetry.Decision{ChosenWay: 0, QBSWay: 9,
		Candidates: []telemetry.DecisionCandidate{{Way: 0, Valid: true}, {Way: 1}}}
	if err := rep.Add(&bad); err == nil {
		t.Error("out-of-range QBSWay accepted")
	}
}

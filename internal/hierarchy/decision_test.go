package hierarchy

import (
	"testing"

	"tlacache/internal/telemetry"
)

// smallDecisionConfig is a 1-core machine with an LLC much smaller than
// the core caches, so LLC evictions (and inclusion victims) are
// plentiful in a short drive.
func smallDecisionConfig() Config {
	cfg := DefaultConfig(1)
	cfg.LLCSize = 16 << 10 // 16 sets x 16 ways = 256 lines
	return cfg
}

// driveDecisions streams n distinct-then-recycled load lines through
// core 0.
func driveDecisions(h *Hierarchy, n int) {
	for i := 0; i < n; i++ {
		h.Access(0, Load, uint64(i%2048)*64)
	}
}

func TestDecisionTracerRecords(t *testing.T) {
	cfg := smallDecisionConfig()
	h := MustNew(cfg)
	log := &telemetry.DecisionLog{}
	h.SetDecisionTracer(log)
	driveDecisions(h, 8192)

	if len(log.Records) == 0 {
		t.Fatal("no decisions recorded despite LLC pressure")
	}
	meta := h.DecisionMeta()
	if meta != DecisionMetaFor(cfg) {
		t.Errorf("DecisionMetaFor(cfg) = %+v, hierarchy says %+v", DecisionMetaFor(cfg), meta)
	}
	if meta.Sets != h.LLC().NumSets() || meta.Assoc != cfg.LLCAssoc {
		t.Errorf("meta geometry %+v does not match the built LLC", meta)
	}
	victims := 0
	for i := range log.Records {
		d := &log.Records[i]
		if d.Seq != uint64(i+1) {
			t.Fatalf("record %d has Seq %d; sequence must be dense from 1", i, d.Seq)
		}
		if d.ChosenWay < 0 || d.ChosenWay >= cfg.LLCAssoc {
			t.Fatalf("record %d chose way %d outside assoc %d", i, d.ChosenWay, cfg.LLCAssoc)
		}
		if len(d.Candidates) != cfg.LLCAssoc {
			t.Fatalf("record %d has %d candidates, want %d", i, len(d.Candidates), cfg.LLCAssoc)
		}
		if got := h.LLC().SetIndex(d.NewAddr); got != d.Set {
			t.Fatalf("record %d: NewAddr %#x maps to set %d, record says %d", i, d.NewAddr, got, d.Set)
		}
		for w, c := range d.Candidates {
			if c.Way != w {
				t.Fatalf("record %d candidate %d labeled way %d", i, w, c.Way)
			}
			if !c.Valid && (c.Dirty || c.Presence != 0) {
				t.Fatalf("record %d: invalid candidate %d carries state %+v", i, w, c)
			}
		}
		// Cold fills (invalid chosen way) are trivially QBS-agreed and
		// cannot produce inclusion victims.
		if !d.Candidates[d.ChosenWay].Valid {
			if d.QBSWay != d.ChosenWay {
				t.Fatalf("record %d: cold fill disagrees with QBS emulation (%d vs %d)",
					i, d.QBSWay, d.ChosenWay)
			}
			if d.InclusionVictims != 0 {
				t.Fatalf("record %d: cold fill claims %d inclusion victims", i, d.InclusionVictims)
			}
		}
		// A chosen way the directory proves empty is QBS-agreed by
		// construction.
		if c := d.Candidates[d.ChosenWay]; c.Valid && c.Presence == 0 && d.QBSWay != d.ChosenWay {
			t.Fatalf("record %d: presence-empty victim disagrees with QBS emulation", i)
		}
		victims += d.InclusionVictims
	}

	// Conservation: every inclusion victim comes from a traced eviction
	// (fillLLC or insertLLCFromL2), so the per-record counts must sum to
	// the aggregate counter exactly.
	if agg := int(h.Cores[0].InclusionVictims); victims != agg {
		t.Errorf("traced inclusion victims %d != aggregate counter %d", victims, agg)
	}
	if victims == 0 {
		t.Error("expected inclusion victims with an LLC smaller than the core caches")
	}
}

// Attaching a tracer must not change simulation behaviour: the tracer
// observes decisions, it does not participate in them.
func TestDecisionTracerDoesNotPerturb(t *testing.T) {
	for _, tla := range []TLAPolicy{TLANone, TLAQBS, TLAECI} {
		cfg := smallDecisionConfig()
		cfg.TLA = tla
		plain := MustNew(cfg)
		driveDecisions(plain, 8192)

		traced := MustNew(cfg)
		traced.SetDecisionTracer(&telemetry.DecisionLog{})
		driveDecisions(traced, 8192)

		if plain.Cores[0] != traced.Cores[0] {
			t.Errorf("%v: core stats diverge with tracer attached:\nplain  %+v\ntraced %+v",
				tla, plain.Cores[0], traced.Cores[0])
		}
		if plain.Traffic != traced.Traffic {
			t.Errorf("%v: traffic diverges with tracer attached:\nplain  %+v\ntraced %+v",
				tla, plain.Traffic, traced.Traffic)
		}
	}
}

// Under the real QBS policy the emulation must agree with the actual
// choice whenever QBS itself settled on a core-non-resident victim. The
// config makes the LLC larger than the L2 so its eviction candidates
// have genuinely aged out of the core caches — the regime where QBS
// terminates normally instead of exhausting its query budget.
func TestDecisionTracerQBSAgreement(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.LLCSize = 512 << 10 // 8192 lines, vs 4096 in the 256 KiB L2
	cfg.TLA = TLAQBS
	cfg.QBSProbe = AllCaches
	h := MustNew(cfg)
	log := &telemetry.DecisionLog{}
	h.SetDecisionTracer(log)
	for i := 0; i < 49152; i++ {
		h.Access(0, Load, uint64(i%16384)*64)
	}

	if len(log.Records) == 0 {
		t.Fatal("no decisions recorded")
	}
	agree, exhausted := 0, 0
	for i := range log.Records {
		d := &log.Records[i]
		switch {
		case d.QBSWay == d.ChosenWay:
			agree++
		case d.QBSWay == telemetry.NoWay:
			// Every candidate resident: real QBS hit its query limit.
			// The record must prove the regime — a chosen way that is
			// valid and directory-tracked.
			c := d.Candidates[d.ChosenWay]
			if !c.Valid || c.Presence == 0 {
				t.Fatalf("record %d: emulation says all-resident but chose %+v", i, c)
			}
			exhausted++
		}
	}
	// The emulation mirrors the live policy's probes, so disagreement is
	// confined to query-limit corner cases; demand a strong majority of
	// exact agreement in this non-resident-victim regime.
	if frac := float64(agree) / float64(len(log.Records)); frac < 0.9 {
		t.Errorf("QBS emulation agrees on only %.1f%% of %d decisions (%d budget-exhausted)",
			frac*100, len(log.Records), exhausted)
	}
}

// The exclusive-mode fill path (L2 eviction inserting into the LLC)
// must fire the tracer too.
func TestDecisionTracerExclusiveMode(t *testing.T) {
	cfg := smallDecisionConfig()
	cfg.Inclusion = Exclusive
	h := MustNew(cfg)
	log := &telemetry.DecisionLog{}
	h.SetDecisionTracer(log)
	// Cycle more lines than the L2 holds: exclusive-mode LLC fills only
	// happen when the L2 evicts.
	for i := 0; i < 32768; i++ {
		h.Access(0, Load, uint64(i%8192)*64)
	}

	if len(log.Records) == 0 {
		t.Fatal("exclusive mode recorded no decisions (insertLLCFromL2 not traced?)")
	}
	for i := range log.Records {
		if v := log.Records[i].InclusionVictims; v != 0 {
			t.Fatalf("record %d: exclusive mode cannot back-invalidate, yet %d victims", i, v)
		}
	}
}

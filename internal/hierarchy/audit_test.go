package hierarchy

import (
	"strings"
	"testing"

	"tlacache/internal/telemetry"
)

// driveAudited runs a deterministic access stream against h, auditing
// every `every` accesses, and returns the first audit error.
func driveAudited(h *Hierarchy, a *Auditor, accesses, every int) error {
	x := uint64(0x2545F4914F6CDD1D)
	for i := 0; i < accesses; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		h.Access(int(x%2), AccessKind(x>>8)%3, (x>>16)%(64<<10))
		if (i+1)%every == 0 {
			if err := a.Audit(); err != nil {
				return err
			}
		}
	}
	return a.Audit()
}

// TestAuditorCleanAcrossPolicies runs the full audit (structural
// invariants, cache consistency, monotonicity, conservation, probe
// cross-check) throughout stressed runs of every policy and inclusion
// mode: a correct hierarchy must never trip it.
func TestAuditorCleanAcrossPolicies(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"baseline", func(*Config) {}},
		{"tlh", func(c *Config) { c.TLA = TLATLH }},
		{"eci", func(c *Config) { c.TLA = TLAECI }},
		{"qbs", func(c *Config) { c.TLA = TLAQBS }},
		{"non-inclusive", func(c *Config) { c.Inclusion = NonInclusive }},
		{"exclusive", func(c *Config) { c.Inclusion = Exclusive }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig(2)
			cfg.EnablePrefetch = true
			tc.mut(&cfg)
			h := MustNew(cfg)
			rec := telemetry.NewRecorder()
			h.SetProbe(rec)
			a := NewAuditor(h)
			if err := driveAudited(h, a, 20_000, 500); err != nil {
				t.Fatal(err)
			}
			if a.Audits == 0 {
				t.Fatal("no audits completed")
			}
		})
	}
}

// corruption cases: each injects one specific fault into a healthy
// hierarchy and expects the auditor to name it.
func auditError(t *testing.T, err error, want string) {
	t.Helper()
	if err == nil {
		t.Fatalf("audit accepted corrupted hierarchy, want error mentioning %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("audit error %q does not mention %q", err, want)
	}
}

// TestAuditorDetectsInclusionBreach plants a core-cache line the LLC
// does not hold — the exact corruption a back-invalidation bug would
// produce.
func TestAuditorDetectsInclusionBreach(t *testing.T) {
	h := MustNew(smallConfig(2))
	a := NewAuditor(h)
	h.L1D(0).Fill(0x4_0000, 0)
	auditError(t, a.Audit(), "inclusion violated")
}

// TestAuditorDetectsDuplicateLine plants the same address in two ways
// of one LLC set.
func TestAuditorDetectsDuplicateLine(t *testing.T) {
	h := MustNew(smallConfig(2))
	h.Access(0, Load, 0)
	llc := h.LLC()
	set := llc.SetIndex(0)
	way, ok := llc.Probe(0)
	if !ok {
		t.Fatal("accessed line missing from LLC")
	}
	llc.FillWay(set, (way+1)%llc.Config().Assoc, 0, llc.Presence(0))
	a := NewAuditor(h)
	auditError(t, a.Audit(), "duplicated")
}

// TestAuditorDetectsCounterRollback decrements a traffic counter
// between audits.
func TestAuditorDetectsCounterRollback(t *testing.T) {
	h := MustNew(smallConfig(2))
	for addr := uint64(0); addr < 64<<10; addr += 64 {
		h.Access(0, Load, addr)
	}
	if h.Traffic.MemoryReads == 0 {
		t.Fatal("stream produced no memory reads")
	}
	a := NewAuditor(h)
	h.Traffic.MemoryReads--
	auditError(t, a.Audit(), "went backwards")
}

// TestAuditorDetectsConservationViolation fabricates a QBS save with
// no corresponding query.
func TestAuditorDetectsConservationViolation(t *testing.T) {
	h := MustNew(smallConfig(2))
	a := NewAuditor(h)
	h.Traffic.QBSSaves++
	auditError(t, a.Audit(), "conservation violated")
}

// TestAuditorDetectsProbeDivergence fires a probe event the hierarchy
// never generated, then checks the cross-check is skipped once the
// recorder is detached (the windows no longer align).
func TestAuditorDetectsProbeDivergence(t *testing.T) {
	h := MustNew(smallConfig(2))
	rec := telemetry.NewRecorder()
	h.SetProbe(rec)
	a := NewAuditor(h)
	rec.TLHHint(0)
	auditError(t, a.Audit(), "probe/traffic divergence")

	h.SetProbe(nil)
	if err := a.Audit(); err != nil {
		t.Fatalf("audit with detached recorder should skip the cross-check, got %v", err)
	}
}

package hierarchy

// Tests for the paper's footnote studies: modified QBS (footnote 6)
// and the inclusive-L2 design point with TLA applied at the L2
// (footnote 3).

import (
	"testing"
	"testing/quick"
)

func TestConfigValidateFootnoteFeatures(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.QBSEvictSaved = true /* TLA is not QBS */ },
		func(c *Config) { c.L2QBS = true /* L2 not inclusive */ },
		func(c *Config) { c.L2Inclusive = true; c.Inclusion = Exclusive },
	}
	for i, mut := range muts {
		cfg := DefaultConfig(2)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	ok := DefaultConfig(2)
	ok.TLA = TLAQBS
	ok.QBSEvictSaved = true
	ok.L2Inclusive = true
	ok.L2QBS = true
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid footnote config rejected: %v", err)
	}
}

// TestModifiedQBS: on the Figure 3 pattern, modified QBS saves 'a' in
// the LLC but — unlike plain QBS — invalidates it from the core caches,
// so the re-reference is an LLC hit instead of an L1 hit. Memory
// traffic is avoided either way (the footnote's point).
func TestModifiedQBS(t *testing.T) {
	cfg := tinyConfig()
	cfg.TLA = TLAQBS
	cfg.QBSEvictSaved = true
	h := MustNew(cfg)
	figure3Prefix(h)
	h.Access(0, Load, lineE) // QBS saves 'a', then invalidates core copies
	if !h.LLC().Contains(lineA) {
		t.Fatal("modified QBS failed to keep 'a' in the LLC")
	}
	if h.L1D(0).Contains(lineA) || h.L2(0).Contains(lineA) {
		t.Fatal("modified QBS left 'a' in the core caches")
	}
	if res := h.Access(0, Load, lineA); res.Level != LevelLLC {
		t.Fatalf("'a' satisfied at level %d, want LLC", res.Level)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// l2IncConfig: 2-entry L1s over a 4-entry inclusive L2 and a large LLC,
// so L2 evictions (not LLC evictions) drive the inclusion victims.
func l2IncConfig() Config {
	cfg := DefaultConfig(1)
	cfg.L1ISize, cfg.L1IAssoc = 128, 2
	cfg.L1DSize, cfg.L1DAssoc = 128, 2
	cfg.L2Size, cfg.L2Assoc = 256, 4
	cfg.LLCSize, cfg.LLCAssoc = 1024, 16
	cfg.L2Inclusive = true
	return cfg
}

func TestL2InclusiveBackInvalidates(t *testing.T) {
	h := MustNew(l2IncConfig())
	// Keep 'a' hot in the L1 while filling the L2; its L2 replacement
	// state decays (L1 hits are invisible to the L2) and the fill of
	// 'e' evicts it — an L2-level inclusion victim.
	for _, l := range []uint64{lineA, lineB, lineA, lineC, lineA, lineD, lineA} {
		h.Access(0, Load, l)
	}
	if !h.L1D(0).Contains(lineA) || !h.L2(0).Contains(lineA) {
		t.Fatal("precondition: 'a' hot in L1 and resident in L2")
	}
	h.Access(0, Load, lineE)
	if h.L1D(0).Contains(lineA) {
		t.Fatal("inclusive L2 did not back-invalidate 'a' from the L1")
	}
	if h.Cores[0].L2InclusionVictims != 1 {
		t.Fatalf("L2InclusionVictims = %d, want 1", h.Cores[0].L2InclusionVictims)
	}
	if h.Traffic.L2BackInvalidates == 0 {
		t.Fatal("no L2 back-invalidate traffic recorded")
	}
	// The re-reference lands in the LLC (the line survived there).
	if res := h.Access(0, Load, lineA); res.Level != LevelLLC {
		t.Fatalf("'a' satisfied at level %d, want LLC", res.Level)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestL2QBSSavesL1ResidentLines(t *testing.T) {
	cfg := l2IncConfig()
	cfg.L2QBS = true
	h := MustNew(cfg)
	for _, l := range []uint64{lineA, lineB, lineA, lineC, lineA, lineD, lineA} {
		h.Access(0, Load, l)
	}
	h.Access(0, Load, lineE)
	if !h.L1D(0).Contains(lineA) {
		t.Fatal("L2 QBS failed to protect the L1-resident line")
	}
	if h.Cores[0].L2InclusionVictims != 0 {
		t.Fatalf("L2InclusionVictims = %d, want 0 under L2 QBS", h.Cores[0].L2InclusionVictims)
	}
	if h.Traffic.L2QBSQueries == 0 || h.Traffic.L2QBSSaves == 0 {
		t.Fatalf("L2 QBS traffic not recorded: %+v", h.Traffic)
	}
	if res := h.Access(0, Load, lineA); res.Level != LevelL1 {
		t.Fatalf("'a' satisfied at level %d, want L1", res.Level)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestL2InclusionInvariantHolds: under random streams, every valid L1
// line is in its core's L2 when L2Inclusive is set, with and without
// L2 QBS and the LLC-level TLA policies.
func TestL2InclusionInvariantHolds(t *testing.T) {
	for _, l2qbs := range []bool{false, true} {
		for _, tla := range []TLAPolicy{TLANone, TLAQBS} {
			l2qbs, tla := l2qbs, tla
			f := func(ops []uint32) bool {
				cfg := smallConfig(2)
				cfg.L2Inclusive = true
				cfg.L2QBS = l2qbs
				cfg.TLA = tla
				h := MustNew(cfg)
				replayOps(h, ops, 2)
				return h.CheckInvariants() == nil
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Errorf("l2qbs=%v tla=%v: %v", l2qbs, tla, err)
			}
		}
	}
}

// TestModifiedQBSMatchesQBSOnMisses: the footnote's claim in miniature —
// both QBS variants avoid the memory re-fetch; they differ only in
// where the rescued access hits.
func TestModifiedQBSMatchesQBSOnMisses(t *testing.T) {
	run := func(evictSaved bool) (memAccesses int) {
		cfg := tinyConfig()
		cfg.TLA = TLAQBS
		cfg.QBSEvictSaved = evictSaved
		h := MustNew(cfg)
		pattern := []uint64{lineA, lineB, lineA, lineC, lineA, lineD, lineA,
			lineE, lineA, lineF, lineA}
		for _, l := range pattern {
			if res := h.Access(0, Load, l); res.Level == LevelMemory {
				memAccesses++
			}
		}
		return memAccesses
	}
	plain, modified := run(false), run(true)
	if plain != modified {
		t.Fatalf("memory accesses: plain QBS %d, modified QBS %d — footnote 6 expects parity",
			plain, modified)
	}
}

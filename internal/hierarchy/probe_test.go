package hierarchy

import (
	"testing"

	"tlacache/internal/replacement"
	"tlacache/internal/telemetry"
)

// miniProbeConfig is a deliberately tiny machine (4KB LLC) so a few
// thousand accesses produce evictions, back-invalidations, and every
// TLA event.
func miniProbeConfig(tla TLAPolicy) Config {
	return Config{
		Cores: 2, LineSize: 64,
		L1ISize: 1 << 10, L1IAssoc: 2,
		L1DSize: 1 << 10, L1DAssoc: 2,
		L2Size: 2 << 10, L2Assoc: 2,
		LLCSize: 4 << 10, LLCAssoc: 4,
		L1Policy: replacement.LRU, L2Policy: replacement.LRU, LLCPolicy: replacement.NRU,
		Inclusion:  Inclusive,
		TLA:        tla,
		TLHSources: L1Caches, TLHPerMille: 1000,
		QBSProbe: AllCaches,
		Latency:  DefaultLatencies(),
	}
}

// driveProbes runs a reuse-heavy access pattern whose working set
// exceeds the LLC, from both cores.
func driveProbes(h *Hierarchy) {
	for i := 0; i < 6000; i++ {
		core := i & 1
		h.Access(core, IFetch, uint64(i%61)*64)
		h.Access(core, Load, uint64(i%striding)*64)
		if i%7 == 0 {
			h.Access(core, Store, uint64(i%striding)*64)
		}
	}
}

const striding = 257 // lines in the data working set: 257*64B ≈ 4x the LLC

// TestProbeMatchesTrafficCounters asserts, for each policy, that the
// recorder's event counts agree exactly with the hierarchy's own
// aggregate counters — the property the interval time series and
// manifest summaries rely on.
func TestProbeMatchesTrafficCounters(t *testing.T) {
	for _, tla := range []TLAPolicy{TLANone, TLATLH, TLAECI, TLAQBS} {
		t.Run(tla.String(), func(t *testing.T) {
			h := MustNew(miniProbeConfig(tla))
			rec := telemetry.NewRecorder()
			h.SetProbe(rec)
			driveProbes(h)

			if got, want := rec.Count(telemetry.EvBackInvalidate), h.Traffic.BackInvalidates; got != want {
				t.Errorf("back-invalidate events = %d, counter = %d", got, want)
			}
			var victims uint64
			for _, cs := range h.Cores {
				victims += cs.InclusionVictims
			}
			if got := rec.Count(telemetry.EvInclusionVictim); got != victims {
				t.Errorf("inclusion-victim events = %d, counters = %d", got, victims)
			}
			if got, want := rec.Count(telemetry.EvTLHHint), h.Traffic.TLHSent; got != want {
				t.Errorf("TLH events = %d, counter = %d", got, want)
			}
			if got, want := rec.Count(telemetry.EvQBSQuery), h.Traffic.QBSQueries; got != want {
				t.Errorf("QBS query events = %d, counter = %d", got, want)
			}
			if got, want := rec.Count(telemetry.EvQBSSave), h.Traffic.QBSSaves; got != want {
				t.Errorf("QBS save events = %d, counter = %d", got, want)
			}
			if got, want := rec.Count(telemetry.EvECIInvalidate), h.Traffic.ECISent; got != want {
				t.Errorf("ECI events = %d, counter = %d", got, want)
			}

			switch tla {
			case TLANone:
				if victims == 0 {
					t.Error("tiny inclusive LLC produced no inclusion victims")
				}
			case TLATLH:
				if rec.Count(telemetry.EvTLHHint) == 0 {
					t.Error("no TLH hints observed")
				}
			case TLAQBS:
				if rec.Count(telemetry.EvQBSQuery) == 0 {
					t.Error("no QBS queries observed")
				}
			case TLAECI:
				if rec.Count(telemetry.EvECIInvalidate) == 0 {
					t.Error("no ECI invalidations observed")
				}
				// The reuse pattern re-references early-invalidated lines
				// while they are still LLC-resident: rescues must occur.
				if rec.Count(telemetry.EvECIRescue) == 0 {
					t.Error("no ECI rescues observed")
				}
			}
		})
	}
}

// TestProbeL2InclusionVictims exercises the inclusive-L2 event.
func TestProbeL2InclusionVictims(t *testing.T) {
	cfg := miniProbeConfig(TLANone)
	cfg.L2Inclusive = true
	h := MustNew(cfg)
	rec := telemetry.NewRecorder()
	h.SetProbe(rec)
	driveProbes(h)
	var want uint64
	for _, cs := range h.Cores {
		want += cs.L2InclusionVictims
	}
	if want == 0 {
		t.Fatal("no L2 inclusion victims produced")
	}
	if got := rec.Count(telemetry.EvL2InclusionVictim); got != want {
		t.Errorf("L2 inclusion-victim events = %d, counters = %d", got, want)
	}
}

// TestProbeDetach asserts SetProbe(nil) restores the probe-free path.
func TestProbeDetach(t *testing.T) {
	h := MustNew(miniProbeConfig(TLANone))
	rec := telemetry.NewRecorder()
	h.SetProbe(rec)
	h.SetProbe(nil)
	driveProbes(h)
	if got := rec.Count(telemetry.EvBackInvalidate); got != 0 {
		t.Errorf("detached probe still received %d events", got)
	}
}

package hierarchy

import (
	"testing"
	"testing/quick"

	"tlacache/internal/cache"
	"tlacache/internal/replacement"
)

// smallConfig is a multi-core configuration small enough that random
// access streams exercise every eviction path quickly.
func smallConfig(cores int) Config {
	cfg := DefaultConfig(cores)
	cfg.L1ISize, cfg.L1IAssoc = 512, 2
	cfg.L1DSize, cfg.L1DAssoc = 512, 2
	cfg.L2Size, cfg.L2Assoc = 1024, 4
	cfg.LLCSize, cfg.LLCAssoc = 4096, 4
	return cfg
}

// replayOps drives h with a pseudo-random but fully determined stream
// derived from ops.
func replayOps(h *Hierarchy, ops []uint32, cores int) {
	for _, op := range ops {
		core := int(op) % cores
		kind := AccessKind(op>>2) % 3
		addr := uint64(op>>4) % (64 << 10) // 64KB footprint, > LLC
		h.Access(core, kind, addr)
	}
}

// TestInclusionInvariantHolds: in inclusive mode, after any access
// stream, every valid core-cache line is in the LLC with a correct
// presence bit — for all TLA policies, with and without prefetching.
func TestInclusionInvariantHolds(t *testing.T) {
	for _, tla := range []TLAPolicy{TLANone, TLATLH, TLAECI, TLAQBS} {
		for _, pf := range []bool{false, true} {
			tla, pf := tla, pf
			f := func(ops []uint32) bool {
				cfg := smallConfig(2)
				cfg.TLA = tla
				cfg.EnablePrefetch = pf
				h := MustNew(cfg)
				replayOps(h, ops, 2)
				return h.CheckInvariants() == nil
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Errorf("TLA=%v prefetch=%v: %v", tla, pf, err)
			}
		}
	}
}

// TestInclusionInvariantAllLLCPolicies repeats the inclusion check for
// each LLC replacement policy (the paper's footnote 4: the inclusion
// machinery is independent of the replacement policy).
func TestInclusionInvariantAllLLCPolicies(t *testing.T) {
	for _, pol := range []replacement.Kind{replacement.LRU, replacement.NRU, replacement.SRRIP, replacement.Random} {
		pol := pol
		f := func(ops []uint32) bool {
			cfg := smallConfig(2)
			cfg.LLCPolicy = pol
			cfg.TLA = TLAQBS
			h := MustNew(cfg)
			replayOps(h, ops, 2)
			return h.CheckInvariants() == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("LLC policy %v: %v", pol, err)
		}
	}
}

// TestExclusiveInvariantHolds: in exclusive mode no line sits in both
// an L2 and the LLC.
func TestExclusiveInvariantHolds(t *testing.T) {
	f := func(ops []uint32) bool {
		cfg := smallConfig(2)
		cfg.Inclusion = Exclusive
		h := MustNew(cfg)
		replayOps(h, ops, 2)
		return h.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestNonInclusiveNeverBackInvalidates: non-inclusion must produce zero
// back-invalidates and zero inclusion victims under any stream.
func TestNonInclusiveNeverBackInvalidates(t *testing.T) {
	f := func(ops []uint32) bool {
		cfg := smallConfig(2)
		cfg.Inclusion = NonInclusive
		h := MustNew(cfg)
		replayOps(h, ops, 2)
		return h.Traffic.BackInvalidates == 0 && h.TotalInclusionVictims() == 0 &&
			h.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQBSNeverEvictsResidentWithinBudget: with an unlimited query
// budget and full probe, QBS must never produce an inclusion victim
// unless every way of a set is core-resident (which the accounting
// below excludes by requiring saves >= victims in every run).
func TestQBSNeverEvictsResidentUnlessSaturated(t *testing.T) {
	f := func(ops []uint32) bool {
		cfg := smallConfig(2)
		cfg.TLA = TLAQBS
		cfg.QBSProbe = AllCaches
		cfg.QBSMaxQueries = 0 // = LLC associativity
		h := MustNew(cfg)
		// Track victims: inclusion victims can only occur when QBS hit
		// its query limit, i.e. at least LLCAssoc saves happened in
		// that selection. Globally: victims <= saves/assoc is too
		// strict per-event, so check the strong local invariant
		// instead: re-run and verify victims only grow when the whole
		// candidate set was resident. Cheap proxy checked here: if no
		// query ever hit the limit, victims must be zero. Detect limit
		// hits by replaying with an invariant probe each access.
		for _, op := range ops {
			core := int(op) % 2
			kind := AccessKind(op>>2) % 3
			addr := uint64(op>>4) % (64 << 10)
			before := h.TotalInclusionVictims()
			h.Access(core, kind, addr)
			if h.TotalInclusionVictims() > before {
				// An inclusion victim under unlimited QBS means the
				// query loop saturated: every candidate it saw was
				// resident. That takes at least LLCAssoc saves.
				if h.Traffic.QBSSaves < uint64(cfg.LLCAssoc) {
					return false
				}
			}
		}
		return h.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestTLAPoliciesPreserveContents: TLH must never change which lines
// the core caches hold versus the baseline for a single-threaded,
// miss-free-at-L1 pattern (hints only reorder the LLC). This is a
// regression guard against hints accidentally allocating or evicting.
func TestTLHOnlyReordersLLC(t *testing.T) {
	cfg := smallConfig(1)
	base := MustNew(cfg)
	cfgTLH := cfg
	cfgTLH.TLA = TLATLH
	cfgTLH.TLHSources = AllCaches
	tlh := MustNew(cfgTLH)
	// A stream that stays within the L1: after the first touch,
	// everything hits, so TLH sends hints but nothing changes
	// structurally anywhere.
	addrs := []uint64{0, 64, 128, 192}
	for _, a := range addrs {
		base.Access(0, Load, a)
		tlh.Access(0, Load, a)
	}
	for i := 0; i < 100; i++ {
		a := addrs[i%len(addrs)]
		base.Access(0, Load, a)
		tlh.Access(0, Load, a)
	}
	if tlh.Traffic.TLHSent == 0 {
		t.Fatal("no hints sent")
	}
	for _, a := range addrs {
		if !tlh.L1D(0).Contains(a) || !tlh.LLC().Contains(a) {
			t.Fatalf("TLH changed cache contents for %#x", a)
		}
	}
	if base.Cores[0].L1D != tlh.Cores[0].L1D {
		t.Fatalf("TLH changed demand stats: %+v vs %+v", base.Cores[0].L1D, tlh.Cores[0].L1D)
	}
}

// TestStatsConservation: at every level, misses <= accesses, and the
// L2 access count equals the L1 miss count (demand flow conservation).
func TestStatsConservation(t *testing.T) {
	f := func(ops []uint32) bool {
		cfg := smallConfig(2)
		cfg.TLA = TLAECI
		h := MustNew(cfg)
		replayOps(h, ops, 2)
		for c := range h.Cores {
			cs := &h.Cores[c]
			for _, ls := range []LevelStats{cs.L1I, cs.L1D, cs.L2, cs.LLC} {
				if ls.Misses > ls.Accesses {
					return false
				}
			}
			if cs.L2.Accesses != cs.L1I.Misses+cs.L1D.Misses {
				return false
			}
			if cs.LLC.Accesses != cs.L2.Misses {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDeterministicReplay: identical configurations and access streams
// produce identical statistics, for every policy combination.
func TestDeterministicReplay(t *testing.T) {
	combos := []Config{}
	for _, tla := range []TLAPolicy{TLANone, TLATLH, TLAECI, TLAQBS} {
		cfg := smallConfig(2)
		cfg.TLA = tla
		cfg.EnablePrefetch = true
		combos = append(combos, cfg)
	}
	f := func(ops []uint32) bool {
		for _, cfg := range combos {
			a, b := MustNew(cfg), MustNew(cfg)
			replayOps(a, ops, 2)
			replayOps(b, ops, 2)
			if a.Traffic != b.Traffic {
				return false
			}
			for c := range a.Cores {
				if a.Cores[c] != b.Cores[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestDirectoryIsConservative: every core-cache line's presence bit is
// set in the LLC (inclusive mode) — i.e. the directory never
// under-approximates, which back-invalidation correctness depends on.
func TestDirectoryIsConservative(t *testing.T) {
	f := func(ops []uint32) bool {
		cfg := smallConfig(3)
		cfg.TLA = TLAQBS
		h := MustNew(cfg)
		replayOps(h, ops, 3)
		ok := true
		for c := 0; c < 3; c++ {
			for _, cc := range []*cache.Cache{h.L1I(c), h.L1D(c), h.L2(c)} {
				bit := uint64(1) << uint(c)
				cc.ForEachValid(func(l cache.Line) {
					if h.LLC().Presence(l.Addr)&bit == 0 {
						ok = false
					}
				})
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestInclusiveCapacityBounded: the number of distinct lines resident
// anywhere in an inclusive hierarchy never exceeds the LLC capacity
// (plus nothing) — the paper's "capacity = LLC size" statement.
func TestInclusiveCapacityBounded(t *testing.T) {
	f := func(ops []uint32) bool {
		cfg := smallConfig(2)
		h := MustNew(cfg)
		replayOps(h, ops, 2)
		distinct := map[uint64]bool{}
		collect := func(l cache.Line) { distinct[l.Addr] = true }
		for c := 0; c < 2; c++ {
			h.L1I(c).ForEachValid(collect)
			h.L1D(c).ForEachValid(collect)
			h.L2(c).ForEachValid(collect)
		}
		h.LLC().ForEachValid(collect)
		return len(distinct) <= int(cfg.LLCSize/cfg.LineSize)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

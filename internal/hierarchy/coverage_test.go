package hierarchy

// Targeted tests for the less-travelled paths: prefetching in exclusive
// and non-inclusive modes, the victim cache under exclusion, accessor
// methods, and invariant detection of planted corruption.

import (
	"testing"

	"tlacache/internal/prefetch"
)

func TestAccessors(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.EnablePrefetch = true
	h := MustNew(cfg)
	if got := h.Config().Cores; got != 2 {
		t.Fatalf("Config().Cores = %d", got)
	}
	if h.Prefetcher(0) == nil || h.Prefetcher(1) == nil {
		t.Fatal("Prefetcher() nil with prefetch enabled")
	}
	noPf := MustNew(DefaultConfig(1))
	if noPf.Prefetcher(0) != nil {
		t.Fatal("Prefetcher() non-nil with prefetch disabled")
	}
}

func TestLatencyMapping(t *testing.T) {
	h := MustNew(DefaultConfig(1))
	lat := h.cfg.Latency
	cases := map[Level]uint64{
		LevelL1:          lat.L1,
		LevelL2:          lat.L2,
		LevelLLC:         lat.LLC,
		LevelVictimCache: lat.LLC + 2,
		LevelMemory:      lat.Memory,
	}
	for lv, want := range cases {
		if got := h.latency(lv); got != want {
			t.Errorf("latency(%d) = %d, want %d", lv, got, want)
		}
	}
}

func TestMustNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestNewRejectsBadSubConfigs(t *testing.T) {
	bad := DefaultConfig(1)
	bad.L2Size = 100 // invalid geometry
	if _, err := New(bad); err == nil {
		t.Error("bad L2 geometry accepted")
	}
	bad = DefaultConfig(1)
	bad.LLCSize = 100
	if _, err := New(bad); err == nil {
		t.Error("bad LLC geometry accepted")
	}
	bad = DefaultConfig(1)
	bad.EnablePrefetch = true
	bad.PrefetchConfig = prefetch.Config{Degree: -1}
	if _, err := New(bad); err == nil {
		t.Error("bad prefetch config accepted")
	}
}

func TestPrefetchInExclusiveMode(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Inclusion = Exclusive
	cfg.EnablePrefetch = true
	h := MustNew(cfg)
	for i := 0; i < 64; i++ {
		h.Access(0, Load, uint64(i)*64)
	}
	if h.Traffic.PrefetchFills == 0 {
		t.Fatal("no prefetch fills in exclusive mode")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Prefetch of a line resident in the exclusive LLC must move it up
	// (LLC invalidation path). Construct: evict a stream line from L2
	// into the LLC, then re-stream near it so the prefetcher wants it.
	cfg2 := tinyConfig()
	cfg2.Inclusion = Exclusive
	cfg2.EnablePrefetch = true
	h2 := MustNew(cfg2)
	for i := 0; i < 32; i++ {
		h2.Access(0, Load, uint64(i)*64)
	}
	if err := h2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchHitsLLCPromotes(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.EnablePrefetch = true
	h := MustNew(cfg)
	// Prime lines into the LLC only: stream far enough that early lines
	// leave the L2 but stay in the LLC, then restart the stream so
	// prefetches target LLC-resident lines.
	const lines = 8192 // 512KB: beyond the 256KB L2, within the 1MB LLC
	for i := 0; i < lines; i++ {
		h.Access(0, Load, uint64(i)*64)
	}
	for i := 0; i < 64; i++ {
		h.Access(0, Load, uint64(i)*64)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.Traffic.PrefetchFills == 0 {
		t.Fatal("prefetcher idle")
	}
}

func TestVictimCacheWithExclusiveLLC(t *testing.T) {
	cfg := tinyConfig()
	cfg.Inclusion = Exclusive
	cfg.VictimCacheEntries = 8
	h := MustNew(cfg)
	// Stream enough distinct lines that the exclusive LLC evicts into
	// the victim cache, then revisit an old line.
	for i := 0; i < 12; i++ {
		h.Access(0, Load, uint64(i)*64)
	}
	if h.Traffic.VictimCacheFills == 0 {
		t.Fatal("exclusive LLC evictions bypassed the victim cache")
	}
	// Find a line currently in the victim cache and access it.
	if h.vc.len() == 0 {
		t.Fatal("victim cache empty")
	}
	target := h.vc.addrs[0]
	res := h.Access(0, Load, target)
	if res.Level != LevelVictimCache {
		t.Fatalf("victim-cache line served from level %d", res.Level)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyVictimCacheHitPreservesDirtyData(t *testing.T) {
	cfg := tinyConfig()
	cfg.VictimCacheEntries = 8
	h := MustNew(cfg)
	h.Access(0, Store, lineA)
	// Push the dirty line out of L1, L2, and LLC into the victim cache.
	for _, l := range []uint64{lineB, lineC, lineD, lineE} {
		h.Access(0, Load, l)
	}
	if h.LLC().Contains(lineA) {
		t.Fatal("setup: lineA still in LLC")
	}
	res := h.Access(0, Load, lineA)
	if res.Level != LevelVictimCache {
		t.Fatalf("lineA from level %d, want victim cache", res.Level)
	}
	// The refilled LLC line must carry the dirty bit so the data is not
	// lost on its next eviction.
	way, ok := h.LLC().Probe(lineA)
	if !ok {
		t.Fatal("lineA not refilled into LLC")
	}
	if !h.LLC().Line(h.LLC().SetIndex(lineA), way).Dirty {
		t.Fatal("dirty bit lost through the victim cache")
	}
}

func TestCheckInvariantsDetectsPlantedViolations(t *testing.T) {
	// Inclusion violation: plant a line in the L1 that the LLC lacks.
	h := MustNew(tinyConfig())
	h.Access(0, Load, lineA)
	h.LLC().Invalidate(lineA) // bypass back-invalidation
	if err := h.CheckInvariants(); err == nil {
		t.Error("planted inclusion violation not detected")
	}

	// Directory hole: presence bit cleared while the core holds it.
	h2 := MustNew(tinyConfig())
	h2.Access(0, Load, lineA)
	h2.LLC().ClearPresence(lineA)
	if err := h2.CheckInvariants(); err == nil {
		t.Error("planted directory hole not detected")
	}

	// Exclusion violation: plant the same line in L2 and LLC.
	cfg := tinyConfig()
	cfg.Inclusion = Exclusive
	h3 := MustNew(cfg)
	h3.Access(0, Load, lineA) // L1+L2 only
	h3.LLC().Fill(lineA, 0)   // plant the duplicate
	if err := h3.CheckInvariants(); err == nil {
		t.Error("planted exclusion violation not detected")
	}

	// L2-inclusion violation.
	cfg4 := l2IncConfig()
	h4 := MustNew(cfg4)
	h4.Access(0, Load, lineA)
	h4.L2(0).Invalidate(lineA)
	if err := h4.CheckInvariants(); err == nil {
		t.Error("planted L2-inclusion violation not detected")
	}

	// Bogus presence mask naming a nonexistent core.
	h5 := MustNew(tinyConfig())
	h5.Access(0, Load, lineA)
	h5.LLC().AddPresence(lineA, 7)
	if err := h5.CheckInvariants(); err == nil {
		t.Error("planted bogus presence mask not detected")
	}
}

func TestExclusiveLLCInsertSkipsSharedL2Lines(t *testing.T) {
	// Two cores read the same line (shared code); when one core's L2
	// evicts it, the exclusive LLC must not take a copy while the other
	// core's L2 still holds it.
	cfg := smallConfig(2)
	cfg.Inclusion = Exclusive
	h := MustNew(cfg)
	shared := uint64(0x40)
	h.Access(0, Load, shared)
	h.Access(1, Load, shared)
	// Push it out of core 0's tiny L2.
	for i := 1; i <= 8; i++ {
		h.Access(0, Load, shared+uint64(i)*1024)
	}
	if !h.L2(1).Contains(shared) {
		t.Skip("line left core 1's L2 too; scenario not constructed")
	}
	if h.LLC().Contains(shared) {
		t.Fatal("exclusive LLC duplicated a line still held by another L2")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBankedLLCQueueing(t *testing.T) {
	cfg := tinyConfig()
	cfg.LLCBanks = 1 // every access hits the same bank
	cfg.BankOccupancy = 4
	h := MustNew(cfg)
	// Two LLC-reaching accesses at the same instant: the second must be
	// charged the first's occupancy.
	r1 := h.AccessAt(0, Load, lineA, 100)
	r2 := h.AccessAt(0, Load, lineB, 100)
	if r2.Latency != r1.Latency+4 {
		t.Fatalf("second access latency %d, want %d (+occupancy)", r2.Latency, r1.Latency+4)
	}
	if h.Traffic.BankConflictCycles != 4 {
		t.Fatalf("BankConflictCycles = %d, want 4", h.Traffic.BankConflictCycles)
	}
	// A later access finds the bank free again.
	r3 := h.AccessAt(0, Load, lineC, 1000)
	if r3.Latency != r1.Latency {
		t.Fatalf("idle-bank access latency %d, want %d", r3.Latency, r1.Latency)
	}
	// L1 hits never touch a bank.
	before := h.Traffic.BankConflictCycles
	h.AccessAt(0, Load, lineC, 1000)
	h.AccessAt(0, Load, lineC, 1000)
	if h.Traffic.BankConflictCycles != before {
		t.Fatal("L1 hits charged bank conflicts")
	}
	// Reset clears bank state.
	h.Reset()
	r4 := h.AccessAt(0, Load, lineA, 0)
	if r4.Latency != r1.Latency {
		t.Fatalf("post-Reset latency %d, want %d", r4.Latency, r1.Latency)
	}

	bad := tinyConfig()
	bad.LLCBanks = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative LLCBanks accepted")
	}
}

func TestBankedLLCDistinctBanksNoConflict(t *testing.T) {
	cfg := tinyConfig()
	cfg.LLCSize, cfg.LLCAssoc = 512, 4 // 2 sets -> 2 banks
	cfg.LLCBanks = 2
	h := MustNew(cfg)
	// lineA maps to set 0, lineB to set 1: different banks, no queueing.
	h.AccessAt(0, Load, lineA, 50)
	h.AccessAt(0, Load, lineB, 50)
	if h.Traffic.BankConflictCycles != 0 {
		t.Fatalf("distinct banks conflicted: %d cycles", h.Traffic.BankConflictCycles)
	}
}

func TestCoherenceSnoopAccounting(t *testing.T) {
	// Inclusive: LLC misses need no snoops (the snoop-filter benefit).
	inc := MustNew(smallConfig(2))
	replayOps(inc, []uint32{1, 5, 9, 77, 1234, 999}, 2)
	if inc.Traffic.CoherenceSnoops != 0 {
		t.Fatalf("inclusive hierarchy sent %d snoops", inc.Traffic.CoherenceSnoops)
	}
	// Non-inclusive 2-core: one snoop (cores-1) per demand+prefetch LLC
	// miss.
	cfg := smallConfig(3)
	cfg.Inclusion = NonInclusive
	non := MustNew(cfg)
	non.Access(0, Load, 0x40) // cold LLC miss
	if non.Traffic.CoherenceSnoops != 2 {
		t.Fatalf("snoops = %d, want 2 (3 cores - 1)", non.Traffic.CoherenceSnoops)
	}
	// Single core: nobody to snoop even without inclusion.
	cfg1 := smallConfig(1)
	cfg1.Inclusion = Exclusive
	solo := MustNew(cfg1)
	solo.Access(0, Load, 0x40)
	if solo.Traffic.CoherenceSnoops != 0 {
		t.Fatalf("single-core snoops = %d", solo.Traffic.CoherenceSnoops)
	}
}

func TestBroadcastInvalidateMultipliesMessages(t *testing.T) {
	run := func(broadcast bool) *Hierarchy {
		cfg := smallConfig(4)
		cfg.BroadcastInvalidate = broadcast
		h := MustNew(cfg)
		replayOps(h, []uint32{3, 77, 1234, 98765, 4444, 313131, 8191, 99999,
			123, 456, 789, 1011, 555555, 777777}, 4)
		for i := 0; i < 4000; i++ {
			h.Access(i%4, Load, uint64(i*977)%(64<<10))
		}
		return h
	}
	filtered, broadcast := run(false), run(true)
	if err := broadcast.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if broadcast.Traffic.BackInvalidates <= filtered.Traffic.BackInvalidates {
		t.Fatalf("broadcast back-invalidates %d not above filtered %d",
			broadcast.Traffic.BackInvalidates, filtered.Traffic.BackInvalidates)
	}
	// Same demand behaviour: the directory only filters messages.
	for c := range filtered.Cores {
		if filtered.Cores[c].LLC != broadcast.Cores[c].LLC {
			t.Fatalf("core %d demand stats diverged: %+v vs %+v",
				c, filtered.Cores[c].LLC, broadcast.Cores[c].LLC)
		}
	}
}

func TestNonInclusivePrefetchKeepsStats(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Inclusion = NonInclusive
	cfg.EnablePrefetch = true
	h := MustNew(cfg)
	for i := 0; i < 64; i++ {
		h.Access(0, Load, uint64(i)*64)
	}
	if h.Traffic.PrefetchFills == 0 {
		t.Fatal("no prefetch fills in non-inclusive mode")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

package hierarchy

import (
	"encoding/binary"
	"testing"

	"tlacache/internal/telemetry"
)

// FuzzHierarchyAccess drives a hierarchy with an arbitrary access
// stream under a fuzzer-chosen machine mode and audits continuously:
// no input sequence may ever corrupt inclusion, cache structure, or
// counter accounting.
func FuzzHierarchyAccess(f *testing.F) {
	seed := make([]byte, 64)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	for mode := byte(0); mode < 6; mode++ {
		f.Add(seed, mode)
	}
	// Seeds whose every access mirrors to the top of the address space
	// (bit 1 of each op word), with the prefetcher enabled: the overflow
	// clamps in prefetch emission and address rounding start covered.
	topSeed := make([]byte, 64)
	for i := range topSeed {
		topSeed[i] = byte(i*37) | 2
	}
	for _, mode := range []byte{0x40, 0x44, 0x45} {
		f.Add(topSeed, mode)
	}

	f.Fuzz(func(t *testing.T, data []byte, mode byte) {
		cfg := smallConfig(2)
		switch mode % 6 {
		case 1:
			cfg.TLA = TLATLH
		case 2:
			cfg.TLA = TLAECI
		case 3:
			cfg.TLA = TLAQBS
		case 4:
			cfg.Inclusion = NonInclusive
		case 5:
			cfg.Inclusion = Exclusive
		}
		cfg.EnablePrefetch = mode&0x40 != 0
		h := MustNew(cfg)
		rec := telemetry.NewRecorder()
		h.SetProbe(rec)
		a := NewAuditor(h)

		for i := 0; i+4 <= len(data); i += 4 {
			op := binary.LittleEndian.Uint32(data[i:])
			addr := uint64(op>>4) % (64 << 10)
			if op&2 != 0 {
				// Mirror the access into the top of the 64-bit address
				// space so prefetch emission, line rounding, and set
				// indexing get exercised at the overflow boundary.
				addr = ^uint64(0) - addr
			}
			h.Access(int(op%2), AccessKind(op>>2)%3, addr)
			if i%256 == 252 {
				if err := a.Audit(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := a.Audit(); err != nil {
			t.Fatal(err)
		}
	})
}

package hierarchy

import (
	"strings"
	"testing"

	"tlacache/internal/replacement"
)

// tinyConfig reproduces Figure 3's toy machine: one core, a
// fully-associative 2-entry L1 (I and D), a 2-entry L2 mirror, and a
// fully-associative 4-entry LLC, all LRU.
func tinyConfig() Config {
	cfg := DefaultConfig(1)
	cfg.L1ISize, cfg.L1IAssoc = 128, 2
	cfg.L1DSize, cfg.L1DAssoc = 128, 2
	cfg.L2Size, cfg.L2Assoc = 128, 2
	cfg.LLCSize, cfg.LLCAssoc = 256, 4
	cfg.LLCPolicy = replacement.LRU
	return cfg
}

// Line addresses for the worked example's references a..f.
const (
	lineA = uint64(0x000)
	lineB = uint64(0x040)
	lineC = uint64(0x080)
	lineD = uint64(0x0c0)
	lineE = uint64(0x100)
	lineF = uint64(0x140)
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(2)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	muts := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Cores = 65 },
		func(c *Config) { c.TLHPerMille = -1 },
		func(c *Config) { c.TLHPerMille = 1001 },
		func(c *Config) { c.QBSMaxQueries = -1 },
		func(c *Config) { c.VictimCacheEntries = -1 },
		func(c *Config) { c.TLA = TLATLH; c.TLHSources = 0 },
		func(c *Config) { c.TLA = TLAQBS; c.QBSProbe = 0 },
		func(c *Config) { c.Latency.Memory = 0 },
	}
	for i, mut := range muts {
		cfg := DefaultConfig(2)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New accepted mutation %d", i)
		}
	}
	bad := DefaultConfig(2)
	bad.L1ISize = 100 // not a valid cache geometry
	if _, err := New(bad); err == nil {
		t.Error("New accepted invalid L1I geometry")
	}
}

// TestConfigCoreLimit pins the core-count boundary: presence masks are
// single uint64 bitmaps, so exactly 64 cores must work — including the
// directory bit of the highest core — and 65 must be rejected with a
// diagnosis that names the reason.
func TestConfigCoreLimit(t *testing.T) {
	cfg := Config{
		Cores: 64, LineSize: 64,
		L1ISize: 1 << 10, L1IAssoc: 2,
		L1DSize: 1 << 10, L1DAssoc: 2,
		L2Size: 2 << 10, L2Assoc: 2,
		LLCSize: 64 << 10, LLCAssoc: 4,
		Latency: DefaultConfig(2).Latency,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("64 cores rejected: %v", err)
	}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A miss by the top core must set directory bit 63, not lose it to
	// an out-of-range shift.
	h.Access(63, Load, lineA)
	if p := h.LLC().Presence(lineA); p != 1<<63 {
		t.Fatalf("presence after core 63 access = %#x, want %#x", p, uint64(1)<<63)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	for _, cores := range []int{0, -1, 65} {
		cfg.Cores = cores
		err := cfg.Validate()
		if err == nil {
			t.Fatalf("%d cores accepted", cores)
		}
		if cores == 65 && !strings.Contains(err.Error(), "presence") {
			t.Fatalf("65-core rejection %q does not explain the presence-mask bound", err)
		}
	}
}

func TestStringers(t *testing.T) {
	cases := map[string]string{
		Inclusive.String():        "inclusive",
		NonInclusive.String():     "non-inclusive",
		Exclusive.String():        "exclusive",
		InclusionMode(9).String(): "InclusionMode(9)",
		TLANone.String():          "none",
		TLATLH.String():           "TLH",
		TLAECI.String():           "ECI",
		TLAQBS.String():           "QBS",
		TLAPolicy(9).String():     "TLAPolicy(9)",
		CacheSet(0).String():      "none",
		IL1.String():              "IL1",
		(IL1 | DL1).String():      "IL1+DL1",
		AllCaches.String():        "IL1+DL1+L2",
		L2C.String():              "L2",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

// figure3Prefix replays the reference pattern ...c, a, d, a... that
// leads up to the decisive 'e' reference of Figure 3.
func figure3Prefix(h *Hierarchy) {
	for _, a := range []uint64{lineA, lineB, lineA, lineC, lineA, lineD, lineA} {
		h.Access(0, Load, a)
	}
}

// TestFigure3BaselineInclusionVictim reproduces Figure 3a: under the
// unmanaged inclusive baseline, the reference to 'e' evicts hot line
// 'a' from the LLC and — by inclusion — from the L1, so the next
// reference to 'a' goes to memory.
func TestFigure3BaselineInclusionVictim(t *testing.T) {
	h := MustNew(tinyConfig())
	figure3Prefix(h)
	if !h.L1D(0).Contains(lineA) {
		t.Fatal("precondition: 'a' must be hot in L1D")
	}
	h.Access(0, Load, lineE)
	if h.L1D(0).Contains(lineA) {
		t.Fatal("'a' survived in L1D; expected an inclusion victim")
	}
	if h.LLC().Contains(lineA) {
		t.Fatal("'a' survived in LLC")
	}
	if got := h.Cores[0].InclusionVictims; got != 1 {
		t.Fatalf("InclusionVictims = %d, want 1", got)
	}
	if res := h.Access(0, Load, lineA); res.Level != LevelMemory {
		t.Fatalf("re-reference to 'a' satisfied at level %d, want memory", res.Level)
	}
}

// TestFigure3TLH reproduces Figure 3b: with temporal locality hints
// from the L1, the LLC knows 'a' is hot and evicts 'b' instead.
func TestFigure3TLH(t *testing.T) {
	cfg := tinyConfig()
	cfg.TLA = TLATLH
	cfg.TLHSources = L1Caches
	h := MustNew(cfg)
	figure3Prefix(h)
	h.Access(0, Load, lineE)
	if !h.L1D(0).Contains(lineA) || !h.LLC().Contains(lineA) {
		t.Fatal("TLH failed to protect hot line 'a'")
	}
	if h.LLC().Contains(lineB) {
		t.Fatal("expected 'b' to be the victim under TLH")
	}
	if h.TotalInclusionVictims() != 0 {
		t.Fatalf("inclusion victims under TLH = %d", h.TotalInclusionVictims())
	}
	if h.Traffic.TLHSent == 0 {
		t.Fatal("no hints recorded")
	}
	if res := h.Access(0, Load, lineA); res.Level != LevelL1 {
		t.Fatalf("'a' satisfied at level %d, want L1", res.Level)
	}
}

// TestFigure3ECI reproduces Figure 3c: the miss on 'd' early-invalidates
// 'a' from the core caches (keeping it in the LLC); the prompt
// re-reference to 'a' hits the LLC, refreshing its replacement state,
// so the later miss on 'e' evicts 'b' instead.
func TestFigure3ECI(t *testing.T) {
	cfg := tinyConfig()
	cfg.TLA = TLAECI
	h := MustNew(cfg)
	for _, a := range []uint64{lineA, lineB, lineA, lineC, lineA} {
		h.Access(0, Load, a)
	}
	h.Access(0, Load, lineD) // miss: ECI early-invalidates next victim 'a'
	if h.L1D(0).Contains(lineA) {
		t.Fatal("ECI did not invalidate 'a' from the L1")
	}
	if !h.LLC().Contains(lineA) {
		t.Fatal("ECI must retain 'a' in the LLC")
	}
	if h.Traffic.ECISent == 0 || h.Traffic.ECIInvalidated == 0 {
		t.Fatalf("ECI traffic not recorded: %+v", h.Traffic)
	}
	// The rescue: re-referencing 'a' hits the LLC, not memory.
	if res := h.Access(0, Load, lineA); res.Level != LevelLLC {
		t.Fatalf("'a' rescued at level %d, want LLC", res.Level)
	}
	// Now 'e' must evict 'b', and 'a' stays hot.
	h.Access(0, Load, lineE)
	if !h.LLC().Contains(lineA) || !h.L1D(0).Contains(lineA) {
		t.Fatal("'a' lost after rescue")
	}
	if res := h.Access(0, Load, lineA); res.Level != LevelL1 {
		t.Fatalf("'a' satisfied at level %d, want L1", res.Level)
	}
}

// TestFigure3QBS reproduces Figure 3d: the miss on 'e' queries the core
// caches about victim candidate 'a', finds it resident, promotes it,
// and evicts 'b' instead.
func TestFigure3QBS(t *testing.T) {
	cfg := tinyConfig()
	cfg.TLA = TLAQBS
	cfg.QBSProbe = AllCaches
	h := MustNew(cfg)
	figure3Prefix(h)
	h.Access(0, Load, lineE)
	if !h.L1D(0).Contains(lineA) || !h.LLC().Contains(lineA) {
		t.Fatal("QBS failed to protect hot line 'a'")
	}
	if h.LLC().Contains(lineB) {
		t.Fatal("expected 'b' to be the QBS victim")
	}
	if h.Traffic.QBSQueries == 0 || h.Traffic.QBSSaves == 0 {
		t.Fatalf("QBS traffic not recorded: %+v", h.Traffic)
	}
	if h.TotalInclusionVictims() != 0 {
		t.Fatalf("inclusion victims under QBS = %d", h.TotalInclusionVictims())
	}
	if res := h.Access(0, Load, lineA); res.Level != LevelL1 {
		t.Fatalf("'a' satisfied at level %d, want L1", res.Level)
	}
}

// TestFigure3NonInclusive: the same pattern under non-inclusion never
// back-invalidates 'a', so it stays in the L1 even after the LLC
// replaces it.
func TestFigure3NonInclusive(t *testing.T) {
	cfg := tinyConfig()
	cfg.Inclusion = NonInclusive
	h := MustNew(cfg)
	figure3Prefix(h)
	h.Access(0, Load, lineE)
	if !h.L1D(0).Contains(lineA) {
		t.Fatal("non-inclusive LLC back-invalidated 'a'")
	}
	if h.Traffic.BackInvalidates != 0 || h.TotalInclusionVictims() != 0 {
		t.Fatalf("non-inclusive mode produced back-invalidates: %+v", h.Traffic)
	}
	if res := h.Access(0, Load, lineA); res.Level != LevelL1 {
		t.Fatalf("'a' satisfied at level %d, want L1", res.Level)
	}
}

func TestResultLatencies(t *testing.T) {
	h := MustNew(tinyConfig())
	if res := h.Access(0, Load, lineA); res.Level != LevelMemory || res.Latency != 150 {
		t.Fatalf("cold access = %+v", res)
	}
	if res := h.Access(0, Load, lineA); res.Level != LevelL1 || res.Latency != 1 {
		t.Fatalf("L1 hit = %+v", res)
	}
	// Evict from L1/L2 (capacity 2) but not the 4-entry LLC.
	h.Access(0, Load, lineB)
	h.Access(0, Load, lineC)
	if res := h.Access(0, Load, lineA); res.Level != LevelLLC || res.Latency != 24 {
		t.Fatalf("LLC hit = %+v", res)
	}
	// Now it is in L1 and L2 again; push it out of L1 only.
	// With the 2-entry L1 and 2-entry L2 mirror this needs a single
	// conflicting access pair that stays in L2.
	h2 := MustNew(DefaultConfig(1))
	h2.Access(0, Load, 0)
	var conflict uint64 = 32 << 10 // same L1 set (32KB 4-way), different L2 set likely
	for i := 0; i < 8; i++ {
		h2.Access(0, Load, conflict+uint64(i)*(8<<10))
	}
	if res := h2.Access(0, Load, 0); res.Level != LevelL2 || res.Latency != 10 {
		t.Fatalf("L2 hit = %+v", res)
	}
}

func TestStoreMarksDirtyAndWritesBack(t *testing.T) {
	h := MustNew(tinyConfig())
	h.Access(0, Store, lineA)
	if l, ok := h.L1D(0).Probe(lineA); !ok || !h.L1D(0).Line(h.L1D(0).SetIndex(lineA), l).Dirty {
		t.Fatal("store did not dirty the L1 line")
	}
	// Push 'a' out of L1 (dirty writeback to L2), then out of L2
	// (writeback to LLC), then out of the LLC (writeback to memory).
	h.Access(0, Load, lineB)
	h.Access(0, Load, lineC) // L1/L2 evict a -> L2 then LLC dirty
	h.Access(0, Load, lineD)
	h.Access(0, Load, lineE) // LLC evicts a
	if h.LLC().Contains(lineA) {
		t.Fatal("setup failed: 'a' still in LLC")
	}
	if h.Traffic.WritebacksToMem == 0 {
		t.Fatal("dirty eviction of 'a' did not reach memory")
	}
}

func TestIFetchUsesInstructionCache(t *testing.T) {
	h := MustNew(DefaultConfig(1))
	h.Access(0, IFetch, 0x1000)
	if !h.L1I(0).Contains(0x1000) {
		t.Fatal("ifetch did not fill L1I")
	}
	if h.L1D(0).Contains(0x1000) {
		t.Fatal("ifetch filled L1D")
	}
	if h.Cores[0].L1I.Accesses != 1 || h.Cores[0].L1D.Accesses != 0 {
		t.Fatalf("stats wrong: %+v", h.Cores[0])
	}
	h.Access(0, Load, 0x1000)
	if !h.L1D(0).Contains(0x1000) {
		t.Fatal("load did not fill L1D")
	}
}

func TestBackInvalidateMergesDirtyData(t *testing.T) {
	h := MustNew(tinyConfig())
	h.Access(0, Store, lineA) // dirty in L1 only
	// Fill the LLC and evict 'a' while its only dirty copy is in L1.
	h.Access(0, Load, lineB)
	h.Access(0, Load, lineC)
	h.Access(0, Load, lineD)
	before := h.Traffic.WritebacksToMem
	h.Access(0, Load, lineE) // LLC victim is 'a' (LRU), back-invalidate
	if h.LLC().Contains(lineA) {
		t.Fatal("'a' still in LLC")
	}
	if h.Traffic.WritebacksToMem != before+1 {
		t.Fatalf("dirty L1 data lost on back-invalidation: writebacks %d -> %d",
			before, h.Traffic.WritebacksToMem)
	}
}

func TestQBSQueryLimitForcesEviction(t *testing.T) {
	cfg := tinyConfig()
	cfg.TLA = TLAQBS
	cfg.QBSMaxQueries = 1
	h := MustNew(cfg)
	// Make both L1-resident lines a and b the two LRU LLC candidates.
	h.Access(0, Load, lineA)
	h.Access(0, Load, lineB) // L1: [b,a]; LLC LRU order: a,b
	h.Access(0, Load, lineC)
	h.Access(0, Load, lineD)
	h.Access(0, Load, lineA)
	h.Access(0, Load, lineB) // L1: [b,a] again; LLC order now a,b MRU-side
	// Force an LLC miss; victim candidate chain under QBS: the two LRU
	// lines are c and d (not L1-resident), so this doesn't exercise the
	// limit. Rebuild precisely:
	h2 := MustNew(cfg)
	h2.Access(0, Load, lineA)
	h2.Access(0, Load, lineB)
	h2.Access(0, Load, lineA) // keep a,b hottest in L1: [a,b]
	h2.Access(0, Load, lineC) // evicts b from L1 -> L1 [c,a]
	h2.Access(0, Load, lineD) // L1 [d,c]
	h2.Access(0, Load, lineA) // LLC hit, L1 [a,d]
	// LLC LRU order now: b, c, d?, a... Victim chain: b (not in L1),
	// evicted without exhausting limit. The limit path needs every
	// candidate resident; easiest with an LLC as small as the L1s:
	cfg3 := tinyConfig()
	cfg3.LLCSize, cfg3.LLCAssoc = 128, 2 // 2-entry LLC == L1 capacity
	cfg3.TLA = TLAQBS
	cfg3.QBSMaxQueries = 1
	h3 := MustNew(cfg3)
	h3.Access(0, Load, lineA)
	h3.Access(0, Load, lineB) // both LLC lines resident in L1
	before := h3.TotalInclusionVictims()
	h3.Access(0, Load, lineC) // QBS: query a -> resident -> promote; limit hit -> evict b
	if got := h3.TotalInclusionVictims(); got != before+1 {
		t.Fatalf("expected a forced inclusion victim at the query limit, got %d", got-before)
	}
	if !h3.LLC().Contains(lineA) {
		t.Fatal("first candidate should have been saved before the limit")
	}
	if h3.Traffic.QBSQueries != 1 {
		t.Fatalf("QBSQueries = %d, want exactly the limit 1", h3.Traffic.QBSQueries)
	}
}

func TestQBSProbeLevelRespected(t *testing.T) {
	// Line 'a' resident only in the L2 (not the L1s): QBS-L1 must not
	// save it, QBS-L1-L2 must. Geometry: 2-entry L1s, 4-entry L2,
	// 4-entry LLC, all LRU.
	build := func(probe CacheSet) *Hierarchy {
		cfg := DefaultConfig(1)
		cfg.L1ISize, cfg.L1IAssoc = 128, 2
		cfg.L1DSize, cfg.L1DAssoc = 128, 2
		cfg.L2Size, cfg.L2Assoc = 256, 4
		cfg.LLCSize, cfg.LLCAssoc = 256, 4
		cfg.LLCPolicy = replacement.LRU
		cfg.TLA = TLAQBS
		cfg.QBSProbe = probe
		cfg.QBSMaxQueries = 1
		h := MustNew(cfg)
		// After a,b,c,d: L1D [d,c]; L2 [d,c,b,a]; LLC LRU order a,b,c,d.
		for _, l := range []uint64{lineA, lineB, lineC, lineD} {
			h.Access(0, Load, l)
		}
		if h.L1D(0).Contains(lineA) || !h.L2(0).Contains(lineA) {
			t.Fatal("setup: 'a' must be resident in L2 only")
		}
		h.Access(0, Load, lineE) // LLC miss; victim candidate is 'a'
		return h
	}

	l1Only := build(L1Caches)
	if l1Only.LLC().Contains(lineA) {
		t.Fatal("QBS-L1 saved an L2-only line")
	}
	if l1Only.TotalInclusionVictims() != 1 {
		t.Fatalf("QBS-L1 inclusion victims = %d, want 1 ('a' from L2)", l1Only.TotalInclusionVictims())
	}

	all := build(AllCaches)
	if !all.LLC().Contains(lineA) {
		t.Fatal("QBS-L1-L2 failed to save an L2-resident line")
	}
	if all.LLC().Contains(lineB) {
		t.Fatal("QBS-L1-L2 should have evicted 'b' after the query limit")
	}
}

func TestECICountsOneOrTwoInvalidates(t *testing.T) {
	// Paper: each ECI miss invalidates one or two lines in the core
	// caches — the normal victim (when present there) plus the early
	// one. After an un-rescued ECI line is evicted, its back-invalidate
	// must find nothing (presence cleared).
	cfg := tinyConfig()
	cfg.TLA = TLAECI
	h := MustNew(cfg)
	for _, a := range []uint64{lineA, lineB, lineC, lineD} {
		h.Access(0, Load, a)
	}
	// LLC full; LRU candidate is 'a'. Miss on e: evict a... wait, the
	// fill of d already ECI'd the then-victim. Just assert global
	// consistency: every ECI eviction of an un-rescued line sends no
	// back-invalidates.
	biBefore := h.Traffic.BackInvalidates
	h.Access(0, Load, lineE)
	h.Access(0, Load, lineF)
	if h.Traffic.BackInvalidates != biBefore {
		t.Fatalf("evicting ECI'd (un-rescued) lines sent %d back-invalidates",
			h.Traffic.BackInvalidates-biBefore)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVictimCacheRescuesEvictions(t *testing.T) {
	cfg := tinyConfig()
	cfg.VictimCacheEntries = 32
	h := MustNew(cfg)
	for _, a := range []uint64{lineA, lineB, lineC, lineD, lineE} {
		h.Access(0, Load, a)
	}
	// 'a' was evicted from the LLC into the victim cache.
	if h.Traffic.VictimCacheFills == 0 {
		t.Fatal("no victim cache fills recorded")
	}
	res := h.Access(0, Load, lineA)
	if res.Level != LevelVictimCache {
		t.Fatalf("'a' satisfied at level %d, want victim cache", res.Level)
	}
	if h.Traffic.VictimCacheHits != 1 {
		t.Fatalf("VictimCacheHits = %d", h.Traffic.VictimCacheHits)
	}
	if !h.LLC().Contains(lineA) {
		t.Fatal("victim cache hit did not refill the LLC")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVictimCacheEvictionWritesBackDirty(t *testing.T) {
	v := newVictimCache(2)
	v.insert(0x40, true)
	v.insert(0x80, false)
	if v.len() != 2 {
		t.Fatalf("len = %d", v.len())
	}
	evAddr, evDirty, evicted := v.insert(0xc0, false)
	if !evicted || evAddr != 0x40 || !evDirty {
		t.Fatalf("eviction = (%#x, %v, %v), want (0x40, true, true)", evAddr, evDirty, evicted)
	}
	// Re-inserting an existing address merges dirtiness and promotes.
	v.insert(0x80, true)
	if d, ok := v.remove(0x80); !ok || !d {
		t.Fatalf("remove(0x80) = (%v, %v)", d, ok)
	}
	if _, ok := v.remove(0x999); ok {
		t.Fatal("removed a nonexistent entry")
	}
}

func TestExclusiveHitInvalidatesLLC(t *testing.T) {
	cfg := tinyConfig()
	cfg.Inclusion = Exclusive
	h := MustNew(cfg)
	h.Access(0, Load, lineA) // memory -> L1+L2 only
	if h.LLC().Contains(lineA) {
		t.Fatal("exclusive fill went into the LLC")
	}
	// Evict 'a' from L2: it must appear in the LLC (clean insertion).
	h.Access(0, Load, lineB)
	h.Access(0, Load, lineC)
	if !h.LLC().Contains(lineA) {
		t.Fatal("L2 victim not inserted into exclusive LLC")
	}
	// Re-access 'a': LLC hit must invalidate the LLC copy.
	res := h.Access(0, Load, lineA)
	if res.Level != LevelLLC {
		t.Fatalf("'a' at level %d, want LLC", res.Level)
	}
	if h.LLC().Contains(lineA) {
		t.Fatal("exclusive LLC kept the line after a hit")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveCapacityExceedsInclusive(t *testing.T) {
	// With W distinct lines where L2 < W <= L2+LLC, the exclusive
	// hierarchy holds them all while the inclusive one (capacity = LLC)
	// cannot. Toy sizes: L1=2, L2=2, LLC=4 lines -> exclusive capacity 6.
	lines := []uint64{lineA, lineB, lineC, lineD, lineE, lineF}
	run := func(mode InclusionMode) (memMisses uint64) {
		cfg := tinyConfig()
		cfg.Inclusion = mode
		h := MustNew(cfg)
		for round := 0; round < 30; round++ {
			for _, a := range lines {
				if res := h.Access(0, Load, a); res.Level == LevelMemory {
					memMisses++
				}
			}
		}
		return memMisses
	}
	inc, exc := run(Inclusive), run(Exclusive)
	if exc >= inc {
		t.Fatalf("exclusive misses (%d) not below inclusive (%d)", exc, inc)
	}
}

func TestTLHSourceFiltering(t *testing.T) {
	cfg := tinyConfig()
	cfg.TLA = TLATLH
	cfg.TLHSources = IL1
	h := MustNew(cfg)
	h.Access(0, Load, lineA)
	h.Access(0, Load, lineA) // DL1 hit: no hint (source is IL1 only)
	if h.Traffic.TLHSent != 0 {
		t.Fatalf("DL1 hit sent hint with IL1-only sources: %d", h.Traffic.TLHSent)
	}
	h.Access(0, IFetch, lineB)
	h.Access(0, IFetch, lineB) // IL1 hit: hint
	if h.Traffic.TLHSent != 1 {
		t.Fatalf("TLHSent = %d, want 1", h.Traffic.TLHSent)
	}
}

func TestTLHFractionSampling(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.TLA = TLATLH
	cfg.TLHSources = L1Caches
	cfg.TLHPerMille = 100 // 10% of hits send hints
	h := MustNew(cfg)
	h.Access(0, Load, lineA)
	const hits = 10000
	for i := 0; i < hits; i++ {
		h.Access(0, Load, lineA)
	}
	got := float64(h.Traffic.TLHSent) / hits
	if got < 0.08 || got > 0.12 {
		t.Fatalf("hint fraction = %.3f, want ~0.10", got)
	}
}

func TestPrefetcherFillsL2(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.EnablePrefetch = true
	h := MustNew(cfg)
	// A sequential miss stream trains the prefetcher.
	for i := 0; i < 8; i++ {
		h.Access(0, Load, uint64(i)*64)
	}
	if h.Traffic.PrefetchIssued == 0 || h.Traffic.PrefetchFills == 0 {
		t.Fatalf("prefetcher inactive: %+v", h.Traffic)
	}
	// The next line ahead must already be in the L2 (prefetch hit).
	if !h.L2(0).Contains(8 * 64) {
		t.Fatal("prefetch did not fill the next stream line into L2")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("prefetch broke inclusion: %v", err)
	}
	// Demand stats must not count prefetches.
	if h.Cores[0].LLC.Accesses > 8 {
		t.Fatalf("prefetches leaked into demand stats: %+v", h.Cores[0])
	}
}

func TestResetClearsEverything(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.EnablePrefetch = true
	cfg.VictimCacheEntries = 8
	h := MustNew(cfg)
	for i := 0; i < 1000; i++ {
		h.Access(i%2, Load, uint64(i)*64)
	}
	h.Reset()
	if h.LLC().CountValid() != 0 || h.L1D(0).CountValid() != 0 {
		t.Fatal("caches not cleared")
	}
	if h.Traffic != (Traffic{}) {
		t.Fatalf("traffic not cleared: %+v", h.Traffic)
	}
	for c := range h.Cores {
		if h.Cores[c] != (CoreStats{}) {
			t.Fatalf("core %d stats not cleared", c)
		}
	}
}

func TestLevelStatsHits(t *testing.T) {
	s := LevelStats{Accesses: 10, Misses: 3}
	if s.Hits() != 7 {
		t.Fatalf("Hits = %d", s.Hits())
	}
}

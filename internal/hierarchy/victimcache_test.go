package hierarchy

import (
	"testing"

	"tlacache/internal/telemetry"
)

// vcOrder returns the victim cache's addresses MRU-first.
func vcOrder(v *victimCache) []uint64 {
	out := make([]uint64, len(v.addrs))
	copy(out, v.addrs)
	return out
}

func sameOrder(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestVictimCacheMRUOrder pins the recency discipline: inserts land at
// MRU, re-inserts promote, and the LRU entry is the one evicted.
func TestVictimCacheMRUOrder(t *testing.T) {
	v := newVictimCache(4)
	for _, a := range []uint64{0x40, 0x80, 0xc0, 0x100} {
		if _, _, ev := v.insert(a, false); ev {
			t.Fatalf("insert %#x evicted before capacity", a)
		}
	}
	if got := vcOrder(v); !sameOrder(got, []uint64{0x100, 0xc0, 0x80, 0x40}) {
		t.Fatalf("order after fills = %#v", got)
	}

	// Touching the LRU entry promotes it to MRU without changing length.
	v.insert(0x40, false)
	if got := vcOrder(v); !sameOrder(got, []uint64{0x40, 0x100, 0xc0, 0x80}) {
		t.Fatalf("order after promote = %#v", got)
	}
	if v.len() != 4 {
		t.Fatalf("promotion changed len to %d", v.len())
	}

	// A fresh insert at capacity evicts the current LRU (0x80).
	evAddr, _, evicted := v.insert(0x140, false)
	if !evicted || evAddr != 0x80 {
		t.Fatalf("eviction = (%#x, %v), want (0x80, true)", evAddr, evicted)
	}
	if got := vcOrder(v); !sameOrder(got, []uint64{0x140, 0x40, 0x100, 0xc0}) {
		t.Fatalf("order after eviction = %#v", got)
	}
}

// TestVictimCacheDirtyMerge verifies dirty state is sticky across
// re-insertion in both directions (dirty-then-clean, clean-then-dirty).
func TestVictimCacheDirtyMerge(t *testing.T) {
	v := newVictimCache(4)
	v.insert(0x40, true)
	v.insert(0x40, false) // clean re-insert must not launder the dirty bit
	if d, ok := v.remove(0x40); !ok || !d {
		t.Fatalf("dirty-then-clean remove = (%v, %v), want (true, true)", d, ok)
	}
	v.insert(0x80, false)
	v.insert(0x80, true)
	if d, ok := v.remove(0x80); !ok || !d {
		t.Fatalf("clean-then-dirty remove = (%v, %v), want (true, true)", d, ok)
	}
	if v.len() != 0 {
		t.Fatalf("len after removes = %d", v.len())
	}
}

// TestVictimCacheRemoveMiddle removes an entry from the middle of the
// recency list and checks the order of the survivors is preserved.
func TestVictimCacheRemoveMiddle(t *testing.T) {
	v := newVictimCache(4)
	for _, a := range []uint64{0x40, 0x80, 0xc0} {
		v.insert(a, false)
	}
	if _, ok := v.remove(0x80); !ok {
		t.Fatal("middle entry not found")
	}
	if got := vcOrder(v); !sameOrder(got, []uint64{0xc0, 0x40}) {
		t.Fatalf("order after middle remove = %#v", got)
	}
	// The removed entry is really gone.
	if _, ok := v.remove(0x80); ok {
		t.Fatal("removed entry still present")
	}
}

// TestVictimCacheCapacityOne exercises the degenerate single-entry
// buffer: every insert of a new address evicts the previous one.
func TestVictimCacheCapacityOne(t *testing.T) {
	v := newVictimCache(1)
	v.insert(0x40, true)
	evAddr, evDirty, evicted := v.insert(0x80, false)
	if !evicted || evAddr != 0x40 || !evDirty {
		t.Fatalf("eviction = (%#x, %v, %v), want (0x40, true, true)", evAddr, evDirty, evicted)
	}
	if v.len() != 1 || v.addrs[0] != 0x80 {
		t.Fatalf("state after eviction: len %d, addrs %#v", v.len(), v.addrs)
	}
	// Re-inserting the sole entry must not evict it.
	if _, _, ev := v.insert(0x80, false); ev {
		t.Fatal("self-replacement evicted")
	}
}

// TestVictimCacheUnderAuditor drives a hierarchy with an attached
// victim cache through enough conflict traffic to fill, hit, and spill
// it, auditing structural and counter invariants throughout. The victim
// cache sits outside the inclusion property (its lines are by
// definition no longer in the LLC), so the auditor must stay green
// while lines migrate LLC -> victim cache -> LLC.
func TestVictimCacheUnderAuditor(t *testing.T) {
	cfg := smallConfig(2)
	cfg.VictimCacheEntries = 32 // the paper's §VI configuration
	h := MustNew(cfg)
	rec := telemetry.NewRecorder()
	h.SetProbe(rec)
	a := NewAuditor(h)

	// Cyclically walk more lines than the 64-line LLC holds. Each access
	// past capacity evicts a line into the victim cache; with an 80-line
	// working set a line wraps back around while still among the 32 most
	// recent evictions, so the rewalk both fills and hits the buffer.
	const lines = 80
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			h.Access(i%2, Load, uint64(i)*64)
			if i%16 == 15 {
				if err := a.Audit(); err != nil {
					t.Fatalf("pass %d line %d: %v", pass, i, err)
				}
			}
		}
	}
	if h.Traffic.VictimCacheFills == 0 {
		t.Fatal("conflict traffic never filled the victim cache")
	}
	if h.Traffic.VictimCacheHits == 0 {
		t.Fatal("rewalks never hit the victim cache")
	}
	if err := a.Audit(); err != nil {
		t.Fatal(err)
	}

	// Reset must empty the victim cache along with everything else.
	h.Reset()
	if h.vc.len() != 0 {
		t.Fatalf("victim cache holds %d entries after Reset", h.vc.len())
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

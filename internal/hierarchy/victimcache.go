package hierarchy

// victimCache is a small fully-associative LRU buffer of lines recently
// evicted from the LLC, used for the paper's §VI related-work
// comparison against Fletcher et al.'s victim-cache remedy (the paper
// uses 32 entries and finds it recovers only ~0.8% vs 4.5–6.5% for
// ECI/QBS). Entries are ordered MRU-first.
type victimCache struct {
	//tlavet:resetexempt capacity fixed at construction, identical for every reuse
	capacity int
	addrs    []uint64
	dirty    []bool
}

func newVictimCache(capacity int) *victimCache {
	return &victimCache{
		capacity: capacity,
		addrs:    make([]uint64, 0, capacity),
		dirty:    make([]bool, 0, capacity),
	}
}

// insert adds a line, evicting the LRU entry when full. It returns the
// evicted entry so dirty data can be written back.
func (v *victimCache) insert(addr uint64, dirty bool) (evAddr uint64, evDirty, evicted bool) {
	// Replacing an existing copy keeps the newest dirty state.
	for i, a := range v.addrs {
		if a == addr {
			v.promote(i)
			v.dirty[0] = v.dirty[0] || dirty
			return 0, false, false
		}
	}
	if len(v.addrs) == v.capacity {
		last := len(v.addrs) - 1
		evAddr, evDirty, evicted = v.addrs[last], v.dirty[last], true
		v.addrs, v.dirty = v.addrs[:last], v.dirty[:last]
	}
	//tlavet:allow hotpath capacity-bounded: the append above never exceeds v.capacity after the truncate
	v.addrs = append(v.addrs, 0)
	//tlavet:allow hotpath capacity-bounded: same backing array reused once warm
	v.dirty = append(v.dirty, false)
	copy(v.addrs[1:], v.addrs)
	copy(v.dirty[1:], v.dirty)
	v.addrs[0], v.dirty[0] = addr, dirty
	return evAddr, evDirty, evicted
}

// remove extracts addr's entry, reporting its dirty bit and presence.
func (v *victimCache) remove(addr uint64) (dirty, ok bool) {
	for i, a := range v.addrs {
		if a == addr {
			dirty = v.dirty[i]
			//tlavet:allow hotpath in-place deletion: appending a sub-slice to its own prefix cannot grow
			v.addrs = append(v.addrs[:i], v.addrs[i+1:]...)
			//tlavet:allow hotpath in-place deletion: appending a sub-slice to its own prefix cannot grow
			v.dirty = append(v.dirty[:i], v.dirty[i+1:]...)
			return dirty, true
		}
	}
	return false, false
}

// promote moves entry i to the MRU position.
func (v *victimCache) promote(i int) {
	a, d := v.addrs[i], v.dirty[i]
	copy(v.addrs[1:i+1], v.addrs[:i])
	copy(v.dirty[1:i+1], v.dirty[:i])
	v.addrs[0], v.dirty[0] = a, d
}

func (v *victimCache) len() int { return len(v.addrs) }

// reset empties the victim cache in place, keeping the backing arrays
// so a reused hierarchy does not reallocate them.
// reset empties the victim cache in place.
//
//tlavet:resetcover
func (v *victimCache) reset() {
	v.addrs = v.addrs[:0]
	v.dirty = v.dirty[:0]
}

// Package hierarchy implements the paper's primary contribution: a
// multi-level CMP cache hierarchy whose shared last-level cache (LLC)
// can run as inclusive, non-inclusive, or exclusive, and — when
// inclusive — can be managed with the three Temporal Locality Aware
// (TLA) policies the paper proposes:
//
//   - Temporal Locality Hints (TLH): core-cache hits send a non-data
//     hint that promotes the line's LLC replacement state.
//   - Early Core Invalidation (ECI): on an LLC miss, the next potential
//     victim is invalidated early from the core caches while staying in
//     the LLC; a prompt re-reference hits the LLC and refreshes its
//     replacement state.
//   - Query Based Selection (QBS): before evicting, the LLC queries the
//     core caches; victims resident in a core cache are promoted to MRU
//     instead of evicted, and the next candidate is tried.
//
// The hierarchy models the paper's baseline: per-core L1I/L1D and a
// private unified non-inclusive L2, a shared LLC, a stream prefetcher
// that trains on L2 misses, and a directory (presence bits) on LLC
// lines that filters back-invalidate traffic as in the Intel Core i7.
package hierarchy

import (
	"fmt"

	"tlacache/internal/cache"
	"tlacache/internal/prefetch"
	"tlacache/internal/replacement"
	"tlacache/internal/telemetry"
)

// InclusionMode selects the LLC's relationship to the core caches.
// Switches over it must name every mode (tlavet's exhaustive check):
// the inclusive/non-inclusive/exclusive split is the paper's central
// axis, and a mode silently absorbed by a default arm is exactly the
// bug class the check exists for.
//
//tlavet:exhaustive
type InclusionMode uint8

const (
	// Inclusive enforces that core-cache contents are a subset of the
	// LLC: every LLC eviction back-invalidates the core caches.
	Inclusive InclusionMode = iota
	// NonInclusive drops the subset requirement: LLC evictions send no
	// back-invalidates (exactly how the paper models non-inclusion).
	NonInclusive
	// Exclusive keeps LLC contents disjoint from the core caches:
	// fills go to the core caches first, LLC hits invalidate the LLC
	// copy, and L2 evictions (clean or dirty) insert into the LLC.
	Exclusive
)

// String names the inclusion mode.
func (m InclusionMode) String() string {
	switch m {
	case Inclusive:
		return "inclusive"
	case NonInclusive:
		return "non-inclusive"
	case Exclusive:
		return "exclusive"
	default:
		return fmt.Sprintf("InclusionMode(%d)", uint8(m))
	}
}

// TLAPolicy selects the temporal-locality-aware management policy.
// Switches over it must name every policy (tlavet's exhaustive check).
//
//tlavet:exhaustive
type TLAPolicy uint8

const (
	// TLANone is the unmanaged baseline.
	TLANone TLAPolicy = iota
	// TLATLH sends temporal locality hints from core-cache hits.
	TLATLH
	// TLAECI performs early core invalidation of the next LLC victim.
	TLAECI
	// TLAQBS performs query based victim selection.
	TLAQBS
)

// String names the TLA policy.
func (p TLAPolicy) String() string {
	switch p {
	case TLANone:
		return "none"
	case TLATLH:
		return "TLH"
	case TLAECI:
		return "ECI"
	case TLAQBS:
		return "QBS"
	default:
		return fmt.Sprintf("TLAPolicy(%d)", uint8(p))
	}
}

// CacheSet is a bitmask naming core-cache levels. TLH uses it to choose
// which caches send hints; QBS uses it to choose which caches a query
// consults.
type CacheSet uint8

const (
	// IL1 is the per-core instruction cache.
	IL1 CacheSet = 1 << iota
	// DL1 is the per-core data cache.
	DL1
	// L2C is the per-core unified second-level cache.
	L2C
)

// Convenience sets matching the paper's policy variants.
const (
	L1Caches  = IL1 | DL1
	AllCaches = IL1 | DL1 | L2C
)

// String renders the set as e.g. "IL1+DL1".
func (s CacheSet) String() string {
	if s == 0 {
		return "none"
	}
	out := ""
	add := func(name string) {
		if out != "" {
			out += "+"
		}
		out += name
	}
	if s&IL1 != 0 {
		add("IL1")
	}
	if s&DL1 != 0 {
		add("DL1")
	}
	if s&L2C != 0 {
		add("L2")
	}
	return out
}

// AccessKind classifies a demand access.
type AccessKind uint8

const (
	// IFetch is an instruction fetch.
	IFetch AccessKind = iota
	// Load is a data read.
	Load
	// Store is a data write (write-allocate).
	Store
)

// Level identifies where in the hierarchy an access was satisfied.
// Switches over it must name every level (tlavet's exhaustive check).
//
//tlavet:exhaustive
type Level uint8

const (
	// LevelL1 means the access hit in the L1 (I or D).
	LevelL1 Level = iota + 1
	// LevelL2 means the access hit in the private L2.
	LevelL2
	// LevelLLC means the access hit in the shared LLC.
	LevelLLC
	// LevelVictimCache means the access hit the optional LLC victim cache.
	LevelVictimCache
	// LevelMemory means the access went to main memory.
	LevelMemory
)

// Latencies holds load-to-use latencies in cycles.
type Latencies struct {
	L1     uint64
	L2     uint64
	LLC    uint64
	Memory uint64
}

// DefaultLatencies mirrors the paper's Core i7-based baseline:
// 1 / 10 / 24 cycle load-to-use and a 150-cycle memory penalty.
func DefaultLatencies() Latencies { return Latencies{L1: 1, L2: 10, LLC: 24, Memory: 150} }

// Config describes a complete hierarchy. DefaultConfig supplies the
// paper's baseline; tests and experiments tweak single fields.
type Config struct {
	//tlavet:gateexempt every core count shards faithfully; the capture phase runs each core independently
	Cores int
	//tlavet:gateexempt any geometry shards faithfully; shard boundaries are set-aligned for every line size
	LineSize int64

	//tlavet:gateexempt private-cache geometry is reproduced exactly by the capture phase
	L1ISize int64
	//tlavet:gateexempt private-cache geometry is reproduced exactly by the capture phase
	L1IAssoc int
	//tlavet:gateexempt private-cache geometry is reproduced exactly by the capture phase
	L1DSize int64
	//tlavet:gateexempt private-cache geometry is reproduced exactly by the capture phase
	L1DAssoc int
	//tlavet:gateexempt private-cache geometry is reproduced exactly by the capture phase
	L2Size int64
	//tlavet:gateexempt private-cache geometry is reproduced exactly by the capture phase
	L2Assoc int
	//tlavet:gateexempt any LLC size shards faithfully; replay partitions the same set space
	LLCSize int64
	//tlavet:gateexempt any LLC associativity shards faithfully; sets stay whole within a shard
	LLCAssoc int

	//tlavet:gateexempt private-cache policies run inside the capture phase, untouched by LLC partitioning
	L1Policy replacement.Kind // LRU in the paper
	//tlavet:gateexempt private-cache policies run inside the capture phase, untouched by LLC partitioning
	L2Policy  replacement.Kind // LRU in the paper
	LLCPolicy replacement.Kind // NRU in the paper

	Inclusion InclusionMode
	TLA       TLAPolicy

	// TLHSources selects which caches send hints under TLATLH.
	// TLHPerMille sends hints for only that fraction of hits (1000 =
	// every hit), implementing the paper's hint-filtering sensitivity
	// study; sampling is a deterministic counter, not randomness.
	//tlavet:gateexempt only read under TLATLH, which the gate rejects
	TLHSources CacheSet
	//tlavet:gateexempt only read under TLATLH, which the gate rejects
	TLHPerMille int

	// QBSProbe selects which caches a QBS query consults; QBSMaxQueries
	// bounds queries per miss (0 means the LLC associativity, which is
	// effectively unlimited — the paper shows saturation by 2–4).
	//tlavet:gateexempt only read under TLAQBS, which the gate rejects
	QBSProbe CacheSet
	//tlavet:gateexempt only read under TLAQBS, which the gate rejects
	QBSMaxQueries int
	// QBSEvictSaved selects the paper's "modified QBS" (footnote 6):
	// a query that finds the candidate resident still promotes it in
	// the LLC but also invalidates it from the core caches, like ECI.
	// The paper finds it performs like plain QBS, proving QBS's benefit
	// is avoiding memory latency rather than core-cache hit latency.
	//tlavet:gateexempt only read under TLAQBS, which the gate rejects
	QBSEvictSaved bool

	// L2Inclusive makes each private L2 inclusive of its core's L1s
	// (the paper's footnote 3 discusses this design point): L2
	// evictions back-invalidate the L1s. L2QBS additionally applies
	// query based selection at the L2 — L2 victim candidates resident
	// in an L1 are promoted instead of evicted — which is the footnote's
	// "TLA policies can be applied at the L2 cache" remedy.
	//tlavet:gateexempt an inclusive private L2 couples only L1s to the L2, never private caches to the LLC
	L2Inclusive bool
	//tlavet:gateexempt an inclusive private L2 couples only L1s to the L2, never private caches to the LLC
	L2QBS bool

	// EnablePrefetch turns on the per-core stream prefetcher (trains on
	// L2 demand misses, fills the L2). Prefetcher geometry follows
	// prefetch.Config defaults unless PrefetchConfig is set.
	//tlavet:gateexempt prefetch trains and fills on the private side; its LLC fills are captured as LLCOpPrefetch
	EnablePrefetch bool
	//tlavet:gateexempt prefetch trains and fills on the private side; its LLC fills are captured as LLCOpPrefetch
	PrefetchConfig prefetch.Config

	// VictimCacheEntries, when positive, attaches a fully-associative
	// victim cache of that many lines to the LLC (the related-work
	// comparison in the paper's §VI uses 32 entries).
	VictimCacheEntries int

	// BroadcastInvalidate disables the LLC's per-line presence
	// (directory) filter: back-invalidations, ECI invalidations, and
	// QBS queries are sent to every core instead of only the cores the
	// directory names. Functionally identical on private workloads but
	// multiplies message traffic — the ablation for the Core i7-style
	// directory the paper's footnote 1 assumes.
	//tlavet:gateexempt only read on inclusive or TLA invalidation paths, which the gate rejects
	BroadcastInvalidate bool

	// LLCBanks, when positive, models a banked LLC: demand accesses to
	// a busy bank queue behind it (BankOccupancy cycles per access,
	// default 2). The paper assumes "a banked LLC with as many banks as
	// there are cores" behind a fixed average latency; the default here
	// (0, unbanked) matches that fixed-latency model, and enabling
	// banks refines it. Callers must then use AccessAt with real clock
	// values for the queueing to be meaningful (internal/sim does).
	LLCBanks int
	//tlavet:gateexempt only meaningful with LLCBanks > 0, which the gate rejects
	BankOccupancy uint64

	//tlavet:gateexempt fixed latencies apply identically in sharded replay; no state couples through them
	Latency Latencies
}

// DefaultConfig returns the paper's baseline 2-core configuration
// scaled to the requested core count: 32KB 4-way L1I and L1D, 256KB
// 8-way L2 (LRU), and a shared 16-way inclusive NRU LLC of 1MB per core
// (2MB for the 2-core baseline).
func DefaultConfig(cores int) Config {
	return Config{
		Cores:    cores,
		LineSize: 64,
		L1ISize:  32 << 10, L1IAssoc: 4,
		L1DSize: 32 << 10, L1DAssoc: 4,
		L2Size: 256 << 10, L2Assoc: 8,
		LLCSize: int64(cores) << 20, LLCAssoc: 16,
		L1Policy:   replacement.LRU,
		L2Policy:   replacement.LRU,
		LLCPolicy:  replacement.NRU,
		Inclusion:  Inclusive,
		TLA:        TLANone,
		TLHSources: L1Caches, TLHPerMille: 1000,
		QBSProbe: AllCaches,
		Latency:  DefaultLatencies(),
	}
}

// Validate reports the first configuration problem.
func (c *Config) Validate() error {
	if c.Cores <= 0 || c.Cores > 64 {
		// The hard upper bound is structural: LLC directory presence
		// masks are single uint64 bitmaps (one bit per core), and a 65th
		// core's presence bit would silently shift out of range.
		return fmt.Errorf("hierarchy: %d cores out of range [1,64] (presence masks are 64-bit bitmaps)", c.Cores)
	}
	if c.TLHPerMille < 0 || c.TLHPerMille > 1000 {
		return fmt.Errorf("hierarchy: TLHPerMille %d out of range", c.TLHPerMille)
	}
	if c.QBSMaxQueries < 0 {
		return fmt.Errorf("hierarchy: QBSMaxQueries %d negative", c.QBSMaxQueries)
	}
	if c.VictimCacheEntries < 0 {
		return fmt.Errorf("hierarchy: VictimCacheEntries %d negative", c.VictimCacheEntries)
	}
	if c.TLA == TLATLH && c.TLHSources == 0 {
		return fmt.Errorf("hierarchy: TLH enabled with no source caches")
	}
	if c.TLA == TLAQBS && c.QBSProbe == 0 {
		return fmt.Errorf("hierarchy: QBS enabled with no probe caches")
	}
	if c.QBSEvictSaved && c.TLA != TLAQBS {
		return fmt.Errorf("hierarchy: QBSEvictSaved requires the QBS policy")
	}
	if c.L2QBS && !c.L2Inclusive {
		return fmt.Errorf("hierarchy: L2QBS requires an inclusive L2")
	}
	if c.L2Inclusive && c.Inclusion == Exclusive {
		return fmt.Errorf("hierarchy: inclusive L2 with an exclusive LLC is not modeled")
	}
	if c.Latency.Memory == 0 {
		return fmt.Errorf("hierarchy: zero memory latency")
	}
	if c.LLCBanks < 0 {
		return fmt.Errorf("hierarchy: LLCBanks %d negative", c.LLCBanks)
	}
	return nil
}

// LevelStats counts demand traffic at one cache level for one core.
// Prefetch, hint, and invalidation traffic is accounted separately in
// Traffic; these are the counters MPKI is computed from, matching the
// paper's Table I.
type LevelStats struct {
	Accesses uint64
	Misses   uint64
}

// Hits returns Accesses - Misses.
func (s LevelStats) Hits() uint64 { return s.Accesses - s.Misses }

// CoreStats aggregates one core's demand behaviour.
type CoreStats struct {
	L1I LevelStats
	L1D LevelStats
	L2  LevelStats
	LLC LevelStats
	// InclusionVictims counts valid lines removed from this core's
	// caches by LLC back-invalidations (the harmful events the paper
	// studies). ECI's deliberate early invalidations are counted in
	// Traffic.ECIInvalidated instead.
	InclusionVictims uint64
	// L2InclusionVictims counts valid L1 lines removed because the
	// core's inclusive L2 (Config.L2Inclusive) evicted their line.
	L2InclusionVictims uint64
}

// Traffic counts hierarchy-global message and bandwidth events.
type Traffic struct {
	TLHSent          uint64 // temporal locality hints delivered to the LLC
	ECISent          uint64 // early-invalidate operations initiated
	ECIInvalidated   uint64 // valid core-cache lines removed by ECI
	QBSQueries       uint64 // queries sent to core caches
	QBSSaves         uint64 // queries that found the line resident (promoted)
	BackInvalidates  uint64 // back-invalidate messages (directory-filtered)
	WritebacksToMem  uint64 // dirty lines written to memory
	MemoryReads      uint64 // demand + prefetch line fetches from memory
	PrefetchIssued   uint64 // prefetch requests generated
	PrefetchFills    uint64 // prefetch lines installed in the L2
	VictimCacheHits  uint64 // LLC misses satisfied by the victim cache
	VictimCacheFills uint64 // lines inserted into the victim cache

	L2BackInvalidates uint64 // L1 back-invalidate messages from inclusive L2s
	L2QBSQueries      uint64 // L1 queries issued by QBS at the L2
	L2QBSSaves        uint64 // L2 victim candidates saved by an L1 query

	// BankConflictCycles accumulates the queueing delay charged by the
	// banked-LLC model (Config.LLCBanks).
	BankConflictCycles uint64

	// CoherenceSnoops counts the cross-core snoop messages an LLC miss
	// must broadcast when the LLC is NOT a guaranteed superset of the
	// core caches (non-inclusive and exclusive modes): the line might
	// be in another core's cache, so every other core is probed. An
	// inclusive LLC's miss proves the line is nowhere on chip — the
	// "natural snoop filter" benefit the paper's TLA policies preserve
	// and non-inclusion gives up.
	CoherenceSnoops uint64
}

// Hierarchy is a complete simulated cache hierarchy. Not safe for
// concurrent use: the simulator is single-goroutine for determinism.
type Hierarchy struct {
	//tlavet:resetexempt immutable configuration, identical for every reuse
	cfg Config

	l1i []*cache.Cache
	l1d []*cache.Cache
	l2  []*cache.Cache
	// llc is the shared last-level cache. In capture-phase-reachable
	// code (the sharded runner's phase 1) every mutation must go
	// through a //tlavet:llcaccessor function so the LLCOpSink stream
	// stays complete — the llcwrite prover enforces it.
	//
	//tlavet:llcstate
	llc *cache.Cache

	pf []*prefetch.Streamer
	// vc extends the LLC and is owned state for the same reason.
	//
	//tlavet:llcstate
	vc  *victimCache
	buf []uint64 // scratch for prefetch addresses

	hintClock uint64 // deterministic TLH sampling counter
	//tlavet:resetexempt derived from cfg.TLA at construction, never varies
	tlhOn bool // cfg.TLA == TLATLH, hoisted out of the L1-hit path

	// lastILine memoizes, per core, the L1I line of the most recent
	// instruction fetch when that fetch hit. Sequential code re-fetches
	// the same line many times in a row, and a memo hit is a repeat of
	// an access whose side effects (replacement touch) have already been
	// applied and are idempotent, so the whole L1I path can be skipped.
	// Entries hold noILine when no memo is armed; the TLH configuration
	// never arms one because L1 hits must still deliver hints.
	lastILine []uint64

	bankFree []uint64 // per-bank next-free cycle (LLCBanks > 0)
	//tlavet:resetexempt derived from cfg at construction, never varies
	bankOccupancy uint64

	// probe receives typed telemetry events when non-nil. Every fire
	// site is on a miss or invalidation path and guarded by a single
	// nil-interface branch, so the disabled (nil) cost is negligible.
	probe telemetry.Probe

	// tracer receives one record per LLC victim choice when non-nil,
	// guarded like probe by a single nil-interface branch at each fire
	// site (fillLLC, insertLLCFromL2). dec is the reusable scratch
	// record; its Candidates buffer is preallocated by SetDecisionTracer
	// so traced decisions allocate nothing on the hot path.
	tracer telemetry.DecisionTracer
	dec    telemetry.Decision

	// llcSink receives every LLC-bound operation when non-nil, guarded
	// by a single nil-interface branch like probe and tracer. The
	// sharded-by-set parallel mode uses it to capture a core's LLC
	// message stream from a private phase-1 run and replay it against
	// partitioned LLC shards.
	llcSink LLCOpSink

	Cores   []CoreStats
	Traffic Traffic
}

// New builds a hierarchy from cfg, validating the configuration and
// every cache geometry.
//
//tlavet:llcaccessor pre-capture construction; no sink can be attached before New returns
func New(cfg Config) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg, Cores: make([]CoreStats, cfg.Cores), tlhOn: cfg.TLA == TLATLH}
	h.lastILine = make([]uint64, cfg.Cores)
	h.clearIFetchMemos()
	mk := func(name string, size int64, assoc int, pol replacement.Kind) (*cache.Cache, error) {
		return cache.New(cache.Config{Name: name, Size: size, Assoc: assoc, LineSize: cfg.LineSize, Policy: pol})
	}
	for c := 0; c < cfg.Cores; c++ {
		i1, err := mk(fmt.Sprintf("L1I[%d]", c), cfg.L1ISize, cfg.L1IAssoc, cfg.L1Policy)
		if err != nil {
			return nil, err
		}
		d1, err := mk(fmt.Sprintf("L1D[%d]", c), cfg.L1DSize, cfg.L1DAssoc, cfg.L1Policy)
		if err != nil {
			return nil, err
		}
		l2, err := mk(fmt.Sprintf("L2[%d]", c), cfg.L2Size, cfg.L2Assoc, cfg.L2Policy)
		if err != nil {
			return nil, err
		}
		h.l1i = append(h.l1i, i1)
		h.l1d = append(h.l1d, d1)
		h.l2 = append(h.l2, l2)
		if cfg.EnablePrefetch {
			pfc := cfg.PrefetchConfig
			if pfc.LineSize == 0 {
				pfc.LineSize = cfg.LineSize
			}
			pf, err := prefetch.New(pfc)
			if err != nil {
				return nil, err
			}
			h.pf = append(h.pf, pf)
		}
	}
	llc, err := mk("LLC", cfg.LLCSize, cfg.LLCAssoc, cfg.LLCPolicy)
	if err != nil {
		return nil, err
	}
	h.llc = llc
	if cfg.VictimCacheEntries > 0 {
		h.vc = newVictimCache(cfg.VictimCacheEntries)
	}
	if cfg.LLCBanks > 0 {
		h.bankFree = make([]uint64, cfg.LLCBanks)
		h.bankOccupancy = cfg.BankOccupancy
		if h.bankOccupancy == 0 {
			h.bankOccupancy = 2
		}
	}
	return h, nil
}

// Reset returns the hierarchy to its freshly constructed state in
// place, preserving the configuration and every allocation: caches
// (contents, replacement state, lookup memos), prefetchers, the victim
// cache, the TLH sampling clock, the per-core ifetch memos, bank
// clocks, the decision-record scratch (its sequence number restarts at
// zero, like a fresh hierarchy's), and all statistics.
//
// Observers (probe, decision tracer) are detached: they belong to one
// run's measurement window, and a pooled hierarchy reused for a new
// run must not report events to the previous run's instruments. The
// simulator re-attaches its own observers at the warmup boundary.
//
// Reset-then-rerun must be indistinguishable from fresh-build-then-run;
// the reset-equivalence regression tests pin that byte-for-byte; the
// resetcover prover enforces the field inventory statically.
//
//tlavet:resetcover
//tlavet:llcaccessor pre-capture pool reinitialisation; runs before a sink attaches
func (h *Hierarchy) Reset() {
	for c := 0; c < h.cfg.Cores; c++ {
		h.l1i[c].Reset()
		h.l1d[c].Reset()
		h.l2[c].Reset()
		if h.pf != nil {
			h.pf[c].Reset()
		}
	}
	h.llc.Reset()
	if h.vc != nil {
		h.vc.reset()
	}
	h.buf = h.buf[:0]
	h.hintClock = 0
	h.clearIFetchMemos()
	for i := range h.bankFree {
		h.bankFree[i] = 0
	}
	h.probe = nil
	h.tracer = nil
	h.llcSink = nil
	// Keep the candidate scratch buffer (SetDecisionTracer would just
	// reallocate it) but restart the record — Seq must count from zero
	// again or a reused hierarchy's first trace record would expose the
	// previous run's decision count.
	cands := h.dec.Candidates
	h.dec = telemetry.Decision{Candidates: cands}
	for i := range h.Cores {
		h.Cores[i] = CoreStats{}
	}
	h.Traffic = Traffic{}
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Hierarchy {
	h, err := New(cfg)
	if err != nil {
		panic(fmt.Sprintf("hierarchy: MustNew: %v", err))
	}
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// SetProbe attaches (or, with nil, detaches) a telemetry probe. The
// simulator attaches it after the warmup counter reset so probes
// observe exactly the measurement window.
func (h *Hierarchy) SetProbe(p telemetry.Probe) { h.probe = p }

// SetDecisionTracer attaches (or, with nil, detaches) an LLC
// victim-decision tracer. Like SetProbe it is attached after the warmup
// reset so traces cover exactly the measurement window. The candidate
// scratch buffer is (re)allocated here, off the hot path, so traced
// decisions reuse it without allocating.
func (h *Hierarchy) SetDecisionTracer(t telemetry.DecisionTracer) {
	h.tracer = t
	if t != nil && cap(h.dec.Candidates) < h.cfg.LLCAssoc {
		h.dec.Candidates = make([]telemetry.DecisionCandidate, h.cfg.LLCAssoc)
	}
}

// LLCOpKind classifies one message a core's private cache hierarchy
// sends to the shared LLC. Switches over it must name every kind
// (tlavet's exhaustive check): a silently unhandled kind would drop a
// whole message class from a sharded replay.
//
//tlavet:exhaustive
type LLCOpKind uint8

const (
	// LLCOpDemand is a demand access that missed the core caches
	// (the lookupLLC entry point).
	LLCOpDemand LLCOpKind = iota
	// LLCOpWriteback is a dirty L2 victim writing back to the LLC
	// copy when one exists, and to memory otherwise.
	LLCOpWriteback
	// LLCOpPrefetch is a prefetched line being installed (the
	// prefetchFill path, after its private L2 residency gate).
	LLCOpPrefetch
)

// LLCOpSink observes every LLC-bound operation of a run. Like Probe
// and DecisionTracer it is called synchronously from the single
// simulation goroutine, guarded by one nil-interface branch per fire
// site, and must not be shared between concurrent runs.
//
// In the non-inclusive, TLA-none machine (no victim cache, no banks)
// the emitted stream is a pure function of the private core caches:
// the LLC answers every demand miss and prefetch fill identically from
// the private side's point of view (allocate L2, fill L1), sends no
// back-invalidations, and never changes which instruction runs next.
// That independence is what makes the sharded-by-set parallel mode
// sound — see internal/sim's sharded runner.
type LLCOpSink interface {
	//tlavet:hotpath
	LLCOp(kind LLCOpKind, la uint64)
}

// SetLLCOpSink attaches (or, with nil, detaches) an LLC operation
// sink.
func (h *Hierarchy) SetLLCOpSink(s LLCOpSink) { h.llcSink = s }

// DecisionMeta describes the LLC geometry and policy for decision-trace
// headers (telemetry.DecisionMeta).
func (h *Hierarchy) DecisionMeta() telemetry.DecisionMeta {
	return DecisionMetaFor(h.cfg)
}

// DecisionMetaFor computes the decision-trace header a run of cfg would
// produce, without building the hierarchy — callers that open trace
// files before the simulator constructs its machine need it.
func DecisionMetaFor(cfg Config) telemetry.DecisionMeta {
	return telemetry.DecisionMeta{
		Sets:   int(cfg.LLCSize / (cfg.LineSize * int64(cfg.LLCAssoc))),
		Assoc:  cfg.LLCAssoc,
		Policy: cfg.LLCPolicy.String(),
		Cores:  cfg.Cores,
	}
}

// LLC exposes the shared last-level cache (read-only use intended:
// invariant checks, worked examples, tests).
func (h *Hierarchy) LLC() *cache.Cache { return h.llc }

// L1I, L1D, and L2 expose core c's private caches.
func (h *Hierarchy) L1I(c int) *cache.Cache { return h.l1i[c] }

// L1D returns core c's data cache.
func (h *Hierarchy) L1D(c int) *cache.Cache { return h.l1d[c] }

// L2 returns core c's unified second-level cache.
func (h *Hierarchy) L2(c int) *cache.Cache { return h.l2[c] }

// Prefetcher returns core c's stream prefetcher, or nil when disabled.
func (h *Hierarchy) Prefetcher(c int) *prefetch.Streamer {
	if h.pf == nil {
		return nil
	}
	return h.pf[c]
}

// latency maps a fill level to its access latency.
func (h *Hierarchy) latency(lv Level) uint64 {
	switch lv {
	case LevelL1:
		return h.cfg.Latency.L1
	case LevelL2:
		return h.cfg.Latency.L2
	case LevelLLC:
		return h.cfg.Latency.LLC
	case LevelVictimCache:
		// A victim-cache hit pays the LLC lookup plus a swap.
		return h.cfg.Latency.LLC + 2
	case LevelMemory:
		return h.cfg.Latency.Memory
	default:
		// Defensive: a zero (unset) Level pays the full memory penalty.
		return h.cfg.Latency.Memory
	}
}

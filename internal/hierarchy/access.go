package hierarchy

import (
	"math/bits"

	"tlacache/internal/cache"
	"tlacache/internal/telemetry"
)

// Result reports where a demand access was satisfied and its
// load-to-use latency in cycles.
type Result struct {
	Level   Level
	Latency uint64
}

// noILine is the unarmed value of a per-core ifetch memo. Line
// addresses are always even (the line size is at least two bytes), so
// an odd sentinel can never match one.
const noILine uint64 = 1

// clearIFetchMemos disarms every core's ifetch memo.
func (h *Hierarchy) clearIFetchMemos() {
	for i := range h.lastILine {
		h.lastILine[i] = noILine
	}
}

// dropIFetchMemo disarms core's ifetch memo when it names addr. Every
// path that removes a line from an L1I other than the owning core's own
// fetch stream must call this, or the memo would keep reporting hits
// for a line that is gone.
func (h *Hierarchy) dropIFetchMemo(core int, addr uint64) {
	if h.lastILine[core] == addr {
		h.lastILine[core] = noILine
	}
}

// Access performs one demand access for core. addr is a byte address;
// kind selects the instruction or data path and write-allocation. The
// returned Result feeds the core timing model. With a banked LLC
// configured, use AccessAt so queueing delays are computed against real
// time; Access itself treats every access as arriving at cycle 0.
//
//tlavet:hotpath
func (h *Hierarchy) Access(core int, kind AccessKind, addr uint64) Result {
	return h.AccessAt(core, kind, addr, 0)
}

// IFetchMemoHit attempts core's instruction-fetch memo without the
// full access path: when addr falls on the memoized line it counts the
// L1I hit and returns true, exactly like AccessAt's memo branch (whose
// Result is then LevelL1 at the configured L1 latency). AccessAt is far
// beyond the inliner's budget, so the simulator's per-instruction loop
// uses this (inlinable) check to skip the call on the large majority of
// fetches that repeat the previous fetch's line; a false return means
// the fetch must take the full AccessAt path. Configurations that never
// arm the memo (TLH) simply always return false.
//
//tlavet:hotpath
func (h *Hierarchy) IFetchMemoHit(core int, addr uint64) bool {
	if h.llc.LineAddr(addr) == h.lastILine[core] {
		h.Cores[core].L1I.Accesses++
		return true
	}
	return false
}

// AccessAt is Access with the requesting core's current cycle, which
// the banked-LLC model (Config.LLCBanks) uses to charge bank queueing
// delays. The simulator's min-cycle core interleaving delivers accesses
// in approximately global time order, which keeps the per-bank
// next-free-cycle bookkeeping meaningful.
//
//tlavet:hotpath
func (h *Hierarchy) AccessAt(core int, kind AccessKind, addr uint64, now uint64) Result {
	la := h.llc.LineAddr(addr)
	cs := &h.Cores[core]

	l1 := h.l1d[core]
	l1Stats := &cs.L1D
	src := DL1
	if kind == IFetch {
		// Ifetch memo: a repeat of the previous fetch's line, which hit.
		// The line is still resident (every removal clears the memo) and
		// its replacement state already reflects a hit touch — a second
		// touch is idempotent for every policy — so the access reduces
		// to the hit counter and latency. TLH configurations never arm
		// the memo (a hit must still deliver its hint).
		if la == h.lastILine[core] {
			cs.L1I.Accesses++
			return Result{LevelL1, h.cfg.Latency.L1}
		}
		l1, l1Stats, src = h.l1i[core], &cs.L1I, IL1
	}

	// L1 lookup. Lookup resolves the set/way once; the hit path then
	// operates on those coordinates instead of re-probing by address.
	l1Stats.Accesses++
	if set, way, ok := l1.Lookup(la); ok {
		l1.PromoteWay(set, way)
		if kind == Store {
			l1.SetDirtyAt(set, way)
		}
		if h.tlhOn {
			h.maybeHint(src, la)
		} else if kind == IFetch {
			h.lastILine[core] = la
		}
		return Result{LevelL1, h.cfg.Latency.L1}
	}
	l1Stats.Misses++
	if kind == IFetch {
		// The fill below installs la at insertion (not hit) priority and
		// may evict the memoized line, so the memo must not survive an
		// ifetch miss.
		h.lastILine[core] = noILine
	}

	// L2 lookup.
	cs.L2.Accesses++
	if l2 := h.l2[core]; l2.Touch(la) {
		if h.tlhOn {
			h.maybeHint(L2C, la)
		}
		set, way := h.fillL1(core, kind, la)
		if kind == Store {
			l1.SetDirtyAt(set, way)
		}
		return Result{LevelL2, h.cfg.Latency.L2}
	}
	cs.L2.Misses++

	res := h.accessLLC(core, kind, la, now)
	if kind == Store {
		l1.SetDirty(la)
	}

	// The stream prefetcher trains on L2 demand misses and fills the
	// L2 (paper §IV-A). Prefetch fills happen after the demand fill so
	// the demand line is already installed.
	if h.pf != nil {
		h.buf = h.pf[core].OnMiss(la, h.buf[:0])
		h.Traffic.PrefetchIssued += uint64(len(h.buf))
		for _, pa := range h.buf {
			h.prefetchFill(core, pa)
		}
	}
	return res
}

// accessLLC handles an access that missed the core caches: bank
// queueing (when configured), LLC lookup, optional victim-cache lookup,
// memory fetch, and the fills back down the hierarchy.
func (h *Hierarchy) accessLLC(core int, kind AccessKind, la uint64, now uint64) Result {
	var bankDelay uint64
	if h.bankFree != nil {
		bank := h.llc.SetIndex(la) % len(h.bankFree)
		if h.bankFree[bank] > now {
			bankDelay = h.bankFree[bank] - now
			h.Traffic.BankConflictCycles += bankDelay
		}
		h.bankFree[bank] = now + bankDelay + h.bankOccupancy
	}
	res := h.lookupLLC(core, kind, la)
	res.Latency += bankDelay
	return res
}

// lookupLLC performs the functional LLC access.
//
//tlavet:llcaccessor fires LLCOpSink (LLCOpDemand) before touching LLC state
func (h *Hierarchy) lookupLLC(core int, kind AccessKind, la uint64) Result {
	if h.llcSink != nil {
		h.llcSink.LLCOp(LLCOpDemand, la)
	}
	cs := &h.Cores[core]
	cs.LLC.Accesses++

	if set, way, ok := h.llc.Lookup(la); ok {
		if h.cfg.Inclusion == Exclusive {
			// Exclusive hit path: the line moves up and the LLC copy
			// is invalidated (paper §IV-A).
			line := h.llc.InvalidateAt(set, way)
			h.fillL2(core, la)
			if line.Dirty {
				h.l2[core].SetDirty(la)
			}
		} else {
			// An LLC hit on a line with an empty presence mask under ECI
			// is a rescue: the line was early-invalidated from the core
			// caches and the prompt re-reference ECI bet on has arrived.
			// The TLA check leads so non-ECI runs skip the presence read.
			if h.cfg.TLA == TLAECI && h.probe != nil && h.llc.PresenceAt(set, way) == 0 {
				h.probe.ECIRescue(la)
			}
			h.llc.PromoteWay(set, way)
			h.llc.AddPresenceAt(set, way, core)
			// fillL2 would re-probe the LLC to record presence; the hit
			// path already did, so allocate the L2 line directly.
			h.allocL2(core, la)
		}
		h.fillL1(core, kind, la)
		return Result{LevelLLC, h.cfg.Latency.LLC}
	}
	cs.LLC.Misses++

	// Without inclusion, an LLC miss cannot rule out copies in other
	// cores' caches: coherence must snoop them (the per-core address
	// spaces here mean the snoops always miss, but the messages — the
	// cost the paper's introduction weighs — are real).
	if h.cfg.Inclusion != Inclusive && h.cfg.Cores > 1 {
		h.Traffic.CoherenceSnoops += uint64(h.cfg.Cores - 1)
	}

	// Optional victim cache (paper §VI related-work comparison).
	if h.vc != nil {
		if dirty, ok := h.vc.remove(la); ok {
			h.Traffic.VictimCacheHits++
			if h.cfg.Inclusion == Exclusive {
				h.fillL2(core, la)
				if dirty {
					h.l2[core].SetDirty(la)
				}
			} else {
				h.fillLLC(core, la, dirty)
				// fillLLC installed the line with this core's presence
				// bit; allocate the L2 line without re-probing the LLC.
				h.allocL2(core, la)
			}
			h.fillL1(core, kind, la)
			return Result{LevelVictimCache, h.latency(LevelVictimCache)}
		}
	}

	// Memory fetch.
	h.Traffic.MemoryReads++
	if h.cfg.Inclusion != Exclusive {
		h.fillLLC(core, la, false)
		// fillLLC installed the line with this core's presence bit;
		// allocate the L2 line without re-probing the LLC.
		h.allocL2(core, la)
	} else {
		h.fillL2(core, la)
	}
	h.fillL1(core, kind, la)
	return Result{LevelMemory, h.cfg.Latency.Memory}
}

// fillL1 installs la into core's L1 (I or D side), writing a dirty
// victim back to the L2. It returns the set and way the line landed in
// so store handling can mark it dirty without another probe.
func (h *Hierarchy) fillL1(core int, kind AccessKind, la uint64) (set, way int) {
	l1 := h.l1d[core]
	if kind == IFetch {
		l1 = h.l1i[core]
	}
	set = l1.SetIndex(la)
	way = l1.VictimWay(set)
	victim, evicted := l1.FillWay(set, way, la, 0)
	if evicted && victim.Dirty {
		h.writebackToL2(core, victim.Addr)
	}
	return set, way
}

// writebackToL2 merges a dirty L1 victim into the L2, allocating when
// the L2 no longer holds the line (possible because the L2 is
// non-inclusive of the L1s and may have silently evicted it).
//
//tlavet:llcaccessor exclusive-mode hit invalidation reached only from lookupLLC, downstream of its sink fire
func (h *Hierarchy) writebackToL2(core int, addr uint64) {
	l2 := h.l2[core]
	if l2.SetDirty(addr) {
		return
	}
	// In exclusive mode an allocation here can race a copy that already
	// moved into the LLC (the L2 evicted the line while the L1 kept
	// it); the newer L1 data wins and the stale LLC copy is dropped.
	if h.cfg.Inclusion == Exclusive {
		h.llc.Invalidate(addr)
	}
	h.allocL2(core, addr)
	l2.SetDirty(addr)
}

// fillL2 installs la into core's L2 and records the core in the LLC
// directory (inclusive/non-inclusive modes keep the LLC copy; the
// exclusive mode has none).
//
//tlavet:llcaccessor directory presence update on the demand path, downstream of lookupLLC's sink fire
func (h *Hierarchy) fillL2(core int, la uint64) {
	h.allocL2(core, la)
	if h.cfg.Inclusion != Exclusive {
		h.llc.AddPresence(la, core)
	}
}

// allocL2 allocates la in core's L2: victim selection (QBS-at-L2 when
// configured, the footnote 3 remedy), L2-inclusion enforcement, and
// disposal of the displaced line. The new line is inserted clean.
func (h *Hierarchy) allocL2(core int, la uint64) {
	l2 := h.l2[core]
	set := l2.SetIndex(la)
	way := l2.VictimWay(set)
	if h.cfg.L2QBS {
		for q := 0; q < h.cfg.L2Assoc; q++ {
			line := l2.Line(set, way)
			if !line.Valid {
				break
			}
			h.Traffic.L2QBSQueries++
			if !h.l1i[core].Contains(line.Addr) && !h.l1d[core].Contains(line.Addr) {
				break
			}
			h.Traffic.L2QBSSaves++
			l2.PromoteWay(set, way)
			next := l2.VictimWay(set)
			if next == way {
				break
			}
			way = next
		}
	}
	victim := l2.Line(set, way)
	if victim.Valid && h.cfg.L2Inclusive {
		// The inclusive L2 back-invalidates its L1s; dirty L1 data
		// merges into the departing L2 line.
		h.Traffic.L2BackInvalidates++
		removed := false
		if l, ok := h.l1i[core].Invalidate(victim.Addr); ok {
			removed = true
			victim.Dirty = victim.Dirty || l.Dirty
			h.dropIFetchMemo(core, victim.Addr)
		}
		if l, ok := h.l1d[core].Invalidate(victim.Addr); ok {
			removed = true
			victim.Dirty = victim.Dirty || l.Dirty
		}
		if removed {
			h.Cores[core].L2InclusionVictims++
			if h.probe != nil {
				h.probe.L2InclusionVictim(core, victim.Addr)
			}
		}
	}
	l2.FillWay(set, way, la, 0)
	if victim.Valid {
		h.handleL2Victim(core, victim)
	}
}

// handleL2Victim disposes of a line evicted from core's L2. In exclusive
// mode every L2 victim — clean or dirty — inserts into the LLC (this is
// the exclusive fill path and the source of its bandwidth cost). In the
// other modes dirty victims write back to the LLC copy when it exists
// and to memory otherwise; clean victims are dropped silently, which is
// why LLC presence bits are a conservative superset.
//
//tlavet:llcaccessor fires LLCOpSink (LLCOpWriteback) before touching LLC state
func (h *Hierarchy) handleL2Victim(core int, victim cache.Line) {
	if h.cfg.Inclusion == Exclusive {
		h.insertLLCFromL2(core, victim)
		return
	}
	if !victim.Dirty {
		return
	}
	if h.llcSink != nil {
		h.llcSink.LLCOp(LLCOpWriteback, victim.Addr)
	}
	if !h.llc.SetDirty(victim.Addr) {
		h.Traffic.WritebacksToMem++
	}
}

// insertLLCFromL2 implements the exclusive LLC's fill-on-L2-eviction
// path. core identifies the L2 whose eviction is being disposed of
// (decision traces attribute the choice to it).
//
//tlavet:llcaccessor exclusive-mode insertion reached only from handleL2Victim, downstream of its sink fire
func (h *Hierarchy) insertLLCFromL2(core int, victim cache.Line) {
	// Guard against the rare duplicate: an L1 writeback can reallocate
	// a line into the L2 while the LLC already holds a copy.
	if h.llc.Contains(victim.Addr) {
		if victim.Dirty {
			h.llc.SetDirty(victim.Addr)
		}
		return
	}
	// A line still resident in another core's L2 (a shared line) stays
	// out of the exclusive LLC; dirty data that has no LLC home goes
	// straight to memory. Same-core L1 copies may coexist with the LLC
	// transiently (see CheckInvariants).
	if h.residentInCores(victim.Addr, uint64(1)<<uint(h.cfg.Cores)-1, L2C) {
		if victim.Dirty {
			h.Traffic.WritebacksToMem++
		}
		return
	}
	set := h.llc.SetIndex(victim.Addr)
	way := h.llc.VictimWay(set)
	if h.tracer != nil {
		h.beginDecision(core, set, way, victim.Addr)
	}
	victims := 0
	if old := h.llc.Line(set, way); old.Valid {
		victims = h.evictLLCLine(old)
	}
	if h.tracer != nil {
		h.dec.InclusionVictims = victims
		h.tracer.Decision(&h.dec)
	}
	h.llc.FillWay(set, way, victim.Addr, 0)
	if victim.Dirty {
		h.llc.SetDirty(victim.Addr)
	}
}

// fillLLC allocates la in the LLC on a miss: victim selection (QBS when
// configured), eviction with inclusion enforcement, the fill itself,
// and ECI's early invalidation of the next candidate.
//
//tlavet:llcaccessor demand-miss fill reached only from lookupLLC, downstream of its sink fire
func (h *Hierarchy) fillLLC(core int, la uint64, dirty bool) {
	set := h.llc.SetIndex(la)
	way := h.selectLLCVictim(set)
	if h.tracer != nil {
		h.beginDecision(core, set, way, la)
	}
	victims := 0
	if old := h.llc.Line(set, way); old.Valid {
		victims = h.evictLLCLine(old)
	}
	if h.tracer != nil {
		h.dec.InclusionVictims = victims
		h.tracer.Decision(&h.dec)
	}
	h.llc.FillWay(set, way, la, 1<<uint(core))
	if dirty {
		h.llc.SetDirty(la)
	}
	if h.cfg.TLA == TLAECI {
		h.earlyCoreInvalidate(set, la)
	}
}

// beginDecision snapshots one LLC victim choice into the reusable
// scratch record — every candidate way pre-eviction, the chosen way,
// and the way a read-only QBS emulation would suggest. Called only
// under the tracer nil-guard; the fire itself happens after eviction so
// the record can carry the inclusion-victim count.
//
//tlavet:hotpath
func (h *Hierarchy) beginDecision(core, set, way int, la uint64) {
	d := &h.dec
	d.Seq++
	d.Core = core
	d.Set = set
	d.NewAddr = la
	d.ChosenWay = way
	d.InclusionVictims = 0
	cands := d.Candidates[:h.cfg.LLCAssoc]
	for w := range cands {
		line := h.llc.Line(set, w)
		cands[w] = telemetry.DecisionCandidate{
			Way:      w,
			Addr:     line.Addr,
			Valid:    line.Valid,
			Dirty:    line.Dirty,
			Presence: line.Presence,
			Rank:     h.llc.WayRank(set, w),
		}
	}
	d.Candidates = cands
	d.QBSWay = h.qbsSuggestedWay(way)
}

// qbsSuggestedWay emulates, read-only, the victim QBS would suggest for
// the decision currently in the scratch record: the chosen way itself
// when it is empty or core-non-resident (QBS agrees), otherwise the
// highest-ranked candidate no core cache holds (ties to the lower way,
// matching the deterministic scan order of real victim selection), or
// telemetry.NoWay when every candidate is resident — the case where
// real QBS would exhaust its query budget. The emulation probes the
// same cache set QBS is configured for (defaulting to all caches when
// the run's policy is not QBS).
func (h *Hierarchy) qbsSuggestedWay(chosen int) int {
	cands := h.dec.Candidates
	probe := h.cfg.QBSProbe
	if probe == 0 {
		probe = AllCaches
	}
	c := &cands[chosen]
	if !c.Valid {
		return chosen
	}
	if pres := h.effectivePresence(c.Presence); pres == 0 || !h.residentInCores(c.Addr, pres, probe) {
		return chosen
	}
	best, bestRank := telemetry.NoWay, -1
	for w := range cands {
		if w == chosen {
			continue
		}
		cc := &cands[w]
		if !cc.Valid || int(cc.Rank) <= bestRank {
			continue
		}
		if pres := h.effectivePresence(cc.Presence); pres != 0 && h.residentInCores(cc.Addr, pres, probe) {
			continue
		}
		best, bestRank = w, int(cc.Rank)
	}
	return best
}

// selectLLCVictim picks the way fillLLC will displace. Under QBS it
// implements the paper's query loop: while the candidate is resident in
// a core cache (per the configured probe set), promote it to MRU and
// try the next candidate, up to the query limit. Candidates whose
// directory presence mask is empty are evicted without spending a
// query — the directory already proves no core holds them.
//
//tlavet:llcaccessor QBS victim walk, unreachable in capture (the sharded gate pins TLA=none)
func (h *Hierarchy) selectLLCVictim(set int) int {
	way := h.llc.VictimWay(set)
	if h.cfg.TLA != TLAQBS {
		return way
	}
	limit := h.cfg.QBSMaxQueries
	if limit == 0 {
		limit = h.cfg.LLCAssoc
	}
	for q := 0; q < limit; {
		line := h.llc.Line(set, way)
		presence := h.effectivePresence(line.Presence)
		if !line.Valid || presence == 0 {
			return way
		}
		h.Traffic.QBSQueries++
		q++
		resident := h.residentInCores(line.Addr, presence, h.cfg.QBSProbe)
		if h.probe != nil {
			h.probe.QBSQuery(line.Addr, q, resident)
		}
		if !resident {
			return way
		}
		h.Traffic.QBSSaves++
		h.llc.PromoteWay(set, way)
		if h.cfg.QBSEvictSaved {
			// Modified QBS (footnote 6): the saved line keeps its
			// refreshed LLC state but is invalidated from the core
			// caches, so the next reference becomes an LLC hit.
			h.invalidateInCores(line.Addr, line.Presence)
			h.llc.ClearPresence(line.Addr)
		}
		next := h.llc.VictimWay(set)
		if next == way {
			// Fixed point (possible under SRRIP when a whole set is
			// near-immediate): promoting changed nothing, so further
			// queries would repeat verbatim. Accept the candidate.
			return way
		}
		way = next
	}
	return way
}

// effectivePresence widens a directory mask to all cores when the
// broadcast-invalidate ablation is enabled.
func (h *Hierarchy) effectivePresence(presence uint64) uint64 {
	if h.cfg.BroadcastInvalidate {
		return uint64(1)<<uint(h.cfg.Cores) - 1
	}
	return presence
}

// residentInCores reports whether any core named in the presence mask
// holds addr in one of the caches selected by probe.
func (h *Hierarchy) residentInCores(addr uint64, presence uint64, probe CacheSet) bool {
	for presence != 0 {
		c := bits.TrailingZeros64(presence)
		presence &^= 1 << uint(c)
		if probe&IL1 != 0 && h.l1i[c].Contains(addr) {
			return true
		}
		if probe&DL1 != 0 && h.l1d[c].Contains(addr) {
			return true
		}
		if probe&L2C != 0 && h.l2[c].Contains(addr) {
			return true
		}
	}
	return false
}

// evictLLCLine retires a valid line leaving the LLC: inclusive mode
// back-invalidates the core caches, the victim cache absorbs the line
// when configured, and dirty data reaches memory. It returns the number
// of cores that lost a valid copy to the back-invalidation (always 0
// outside the inclusive mode), which decision tracing records.
//
//tlavet:llcaccessor victim-cache insertion downstream of the fill accessors, unreachable in capture (gate rejects victim caches)
func (h *Hierarchy) evictLLCLine(victim cache.Line) int {
	dirty := victim.Dirty
	victims := 0
	if h.cfg.Inclusion == Inclusive {
		var d bool
		d, victims = h.backInvalidate(victim.Addr, h.effectivePresence(victim.Presence))
		if d {
			dirty = true
		}
	}
	if h.vc != nil {
		h.Traffic.VictimCacheFills++
		if evAddr, evDirty, evicted := h.vc.insert(victim.Addr, dirty); evicted && evDirty {
			_ = evAddr
			h.Traffic.WritebacksToMem++
		}
		return victims
	}
	if dirty {
		h.Traffic.WritebacksToMem++
	}
	return victims
}

// backInvalidate removes addr from every core cache of the cores in the
// presence mask, enforcing inclusion. It returns whether any removed
// copy was dirty (the data merges into the departing LLC line) and how
// many cores lost a valid copy — each such core suffers one inclusion
// victim.
func (h *Hierarchy) backInvalidate(addr uint64, presence uint64) (dirty bool, victims int) {
	for presence != 0 {
		c := bits.TrailingZeros64(presence)
		presence &^= 1 << uint(c)
		h.Traffic.BackInvalidates++
		if h.probe != nil {
			h.probe.BackInvalidate(addr)
		}
		removed := false
		if line, ok := h.l1i[c].Invalidate(addr); ok {
			removed = true
			dirty = dirty || line.Dirty
			h.dropIFetchMemo(c, addr)
		}
		if line, ok := h.l1d[c].Invalidate(addr); ok {
			removed = true
			dirty = dirty || line.Dirty
		}
		if line, ok := h.l2[c].Invalidate(addr); ok {
			removed = true
			dirty = dirty || line.Dirty
		}
		if removed {
			h.Cores[c].InclusionVictims++
			victims++
			if h.probe != nil {
				h.probe.InclusionVictim(c, addr)
			}
		}
	}
	return dirty, victims
}

// earlyCoreInvalidate implements ECI: after the regular victim flow of
// an LLC miss, the next potential victim is invalidated from the core
// caches but retained in the LLC, so a prompt re-reference hits the LLC
// and refreshes the line's replacement state (the "rescue"). justFilled
// guards the degenerate direct-mapped case where the next victim is the
// line just installed.
//
//tlavet:llcaccessor ECI path, unreachable in capture (the sharded gate pins TLA=none)
func (h *Hierarchy) earlyCoreInvalidate(set int, justFilled uint64) {
	way := h.llc.VictimWay(set)
	line := h.llc.Line(set, way)
	presence := h.effectivePresence(line.Presence)
	if !line.Valid || line.Addr == justFilled || presence == 0 {
		return
	}
	h.Traffic.ECISent++
	if h.probe != nil {
		h.probe.ECIInvalidate(line.Addr)
	}
	h.Traffic.ECIInvalidated += uint64(h.invalidateInCores(line.Addr, presence))
	h.llc.ClearPresence(line.Addr)
}

// invalidateInCores removes addr from the caches of every core in the
// presence mask, merging dirty copies into the LLC line (which the
// callers retain). It returns the number of cores that lost a valid
// copy. Used by ECI and by the modified-QBS variant.
//
//tlavet:llcaccessor dirty-merge on invalidation paths, downstream of the annotated sinks
func (h *Hierarchy) invalidateInCores(addr uint64, presence uint64) int {
	removed := 0
	for presence != 0 {
		c := bits.TrailingZeros64(presence)
		presence &^= 1 << uint(c)
		// Unrolled over the three core caches: a slice literal here
		// would allocate on every ECI/modified-QBS invalidation, which
		// sits on the steady-state path.
		any := false
		if l, ok := h.l1i[c].Invalidate(addr); ok {
			any = true
			if l.Dirty {
				h.llc.SetDirty(addr)
			}
			h.dropIFetchMemo(c, addr)
		}
		if l, ok := h.l1d[c].Invalidate(addr); ok {
			any = true
			if l.Dirty {
				h.llc.SetDirty(addr)
			}
		}
		if l, ok := h.l2[c].Invalidate(addr); ok {
			any = true
			if l.Dirty {
				h.llc.SetDirty(addr)
			}
		}
		if any {
			removed++
		}
	}
	return removed
}

// maybeHint delivers a temporal locality hint to the LLC for a hit in a
// configured source cache. Sampling (TLHPerMille) uses a deterministic
// counter so runs stay reproducible.
//
//tlavet:llcaccessor TLH promotion path, unreachable in capture (the sharded gate pins TLA=none)
func (h *Hierarchy) maybeHint(src CacheSet, la uint64) {
	if h.cfg.TLA != TLATLH || h.cfg.TLHSources&src == 0 {
		return
	}
	if per := h.cfg.TLHPerMille; per < 1000 {
		h.hintClock++
		if int(h.hintClock%1000) >= per {
			return
		}
	}
	h.Traffic.TLHSent++
	if h.probe != nil {
		h.probe.TLHHint(la)
	}
	h.llc.Touch(la)
}

// prefetchFill installs a prefetched line into the L2 (and, outside the
// exclusive mode, into the LLC when absent, preserving inclusion).
// Prefetches never perturb the demand statistics; only Traffic counters
// move.
//
//tlavet:llcaccessor fires LLCOpSink (LLCOpPrefetch) after the private L2 residency gate
func (h *Hierarchy) prefetchFill(core int, pa uint64) {
	la := h.llc.LineAddr(pa)
	if h.l2[core].Contains(la) {
		return
	}
	if h.llcSink != nil {
		h.llcSink.LLCOp(LLCOpPrefetch, la)
	}
	h.Traffic.PrefetchFills++
	switch h.cfg.Inclusion {
	case Exclusive:
		if set, way, ok := h.llc.Lookup(la); ok {
			line := h.llc.InvalidateAt(set, way)
			h.fillL2(core, la)
			if line.Dirty {
				h.l2[core].SetDirty(la)
			}
			return
		}
		h.Traffic.MemoryReads++
		h.fillL2(core, la)
	case Inclusive, NonInclusive:
		if set, way, ok := h.llc.Lookup(la); ok {
			h.llc.PromoteWay(set, way)
			h.llc.AddPresenceAt(set, way, core)
			h.allocL2(core, la)
		} else {
			h.Traffic.MemoryReads++
			h.fillLLC(core, la, false)
			h.allocL2(core, la)
		}
	}
}

package hierarchy

import (
	"fmt"

	"tlacache/internal/cache"
)

// CheckInvariants verifies the structural properties the configured
// inclusion mode guarantees. It is used by the property-based tests and
// is cheap enough to call from long-running simulations in debug runs.
//
//   - Inclusive: every valid line in any core cache is present in the
//     LLC, and is covered by that core's LLC presence bit.
//   - Exclusive: no line is present in both a core's L2 and the LLC
//     (L1 copies may transiently coexist with an LLC copy, as in the
//     paper's simplified exclusive model — see DESIGN.md).
//   - All modes: presence bits name only existing cores.
func (h *Hierarchy) CheckInvariants() error {
	switch h.cfg.Inclusion {
	case Inclusive:
		for c := 0; c < h.cfg.Cores; c++ {
			for _, cc := range []*cache.Cache{h.l1i[c], h.l1d[c], h.l2[c]} {
				var err error
				cc.ForEachValid(func(l cache.Line) {
					if err != nil {
						return
					}
					if !h.llc.Contains(l.Addr) {
						err = fmt.Errorf("inclusion violated: %s line %#x not in LLC", cc.Config().Name, l.Addr)
						return
					}
					if h.llc.Presence(l.Addr)&(1<<uint(c)) == 0 {
						err = fmt.Errorf("directory hole: %s line %#x lacks presence bit %d", cc.Config().Name, l.Addr, c)
					}
				})
				if err != nil {
					return err
				}
			}
		}
	case Exclusive:
		for c := 0; c < h.cfg.Cores; c++ {
			var err error
			h.l2[c].ForEachValid(func(l cache.Line) {
				if err == nil && h.llc.Contains(l.Addr) {
					err = fmt.Errorf("exclusion violated: line %#x in both L2[%d] and LLC", l.Addr, c)
				}
			})
			if err != nil {
				return err
			}
		}
	}
	if h.cfg.L2Inclusive {
		for c := 0; c < h.cfg.Cores; c++ {
			for _, cc := range []*cache.Cache{h.l1i[c], h.l1d[c]} {
				var err error
				cc.ForEachValid(func(l cache.Line) {
					if err == nil && !h.l2[c].Contains(l.Addr) {
						err = fmt.Errorf("L2 inclusion violated: %s line %#x not in L2[%d]",
							cc.Config().Name, l.Addr, c)
					}
				})
				if err != nil {
					return err
				}
			}
		}
	}
	var err error
	coreMask := uint64(1)<<uint(h.cfg.Cores) - 1
	h.llc.ForEachValid(func(l cache.Line) {
		if err == nil && l.Presence&^coreMask != 0 {
			err = fmt.Errorf("presence mask %#x of line %#x names nonexistent cores", l.Presence, l.Addr)
		}
	})
	return err
}

// TotalInclusionVictims sums inclusion victims across cores.
func (h *Hierarchy) TotalInclusionVictims() uint64 {
	var n uint64
	for i := range h.Cores {
		n += h.Cores[i].InclusionVictims
	}
	return n
}

// Reset clears every cache, the prefetchers, the victim cache, and all
// statistics, preserving the configuration.
func (h *Hierarchy) Reset() {
	for c := 0; c < h.cfg.Cores; c++ {
		h.l1i[c].Reset()
		h.l1d[c].Reset()
		h.l2[c].Reset()
		if h.pf != nil {
			h.pf[c].Reset()
		}
	}
	h.llc.Reset()
	if h.vc != nil {
		h.vc.addrs = h.vc.addrs[:0]
		h.vc.dirty = h.vc.dirty[:0]
	}
	h.hintClock = 0
	for i := range h.bankFree {
		h.bankFree[i] = 0
	}
	for i := range h.Cores {
		h.Cores[i] = CoreStats{}
	}
	h.Traffic = Traffic{}
}

package hierarchy

import (
	"fmt"
	"reflect"

	"tlacache/internal/cache"
	"tlacache/internal/telemetry"
)

// CheckInvariants verifies the structural properties the configured
// inclusion mode guarantees. It is used by the property-based tests and
// is cheap enough to call from long-running simulations in debug runs.
//
//   - Inclusive: every valid line in any core cache is present in the
//     LLC, and is covered by that core's LLC presence bit.
//   - Exclusive: no line is present in both a core's L2 and the LLC
//     (L1 copies may transiently coexist with an LLC copy, as in the
//     paper's simplified exclusive model — see DESIGN.md).
//   - All modes: presence bits name only existing cores.
func (h *Hierarchy) CheckInvariants() error {
	switch h.cfg.Inclusion {
	case Inclusive:
		for c := 0; c < h.cfg.Cores; c++ {
			for _, cc := range []*cache.Cache{h.l1i[c], h.l1d[c], h.l2[c]} {
				var err error
				cc.ForEachValid(func(l cache.Line) {
					if err != nil {
						return
					}
					if !h.llc.Contains(l.Addr) {
						err = fmt.Errorf("inclusion violated: %s line %#x not in LLC", cc.Config().Name, l.Addr)
						return
					}
					if h.llc.Presence(l.Addr)&(1<<uint(c)) == 0 {
						err = fmt.Errorf("directory hole: %s line %#x lacks presence bit %d", cc.Config().Name, l.Addr, c)
					}
				})
				if err != nil {
					return err
				}
			}
		}
	case Exclusive:
		for c := 0; c < h.cfg.Cores; c++ {
			var err error
			h.l2[c].ForEachValid(func(l cache.Line) {
				if err == nil && h.llc.Contains(l.Addr) {
					err = fmt.Errorf("exclusion violated: line %#x in both L2[%d] and LLC", l.Addr, c)
				}
			})
			if err != nil {
				return err
			}
		}
	case NonInclusive:
		// Non-inclusion imposes no cross-level containment invariant:
		// the LLC neither guarantees nor forbids core-cache residency.
	}
	if h.cfg.L2Inclusive {
		for c := 0; c < h.cfg.Cores; c++ {
			for _, cc := range []*cache.Cache{h.l1i[c], h.l1d[c]} {
				var err error
				cc.ForEachValid(func(l cache.Line) {
					if err == nil && !h.l2[c].Contains(l.Addr) {
						err = fmt.Errorf("L2 inclusion violated: %s line %#x not in L2[%d]",
							cc.Config().Name, l.Addr, c)
					}
				})
				if err != nil {
					return err
				}
			}
		}
	}
	// An armed ifetch memo asserts its line is resident in the owning
	// core's L1I; a stale memo would fabricate hits.
	for c := 0; c < h.cfg.Cores; c++ {
		if la := h.lastILine[c]; la != noILine && !h.l1i[c].Contains(la) {
			return fmt.Errorf("ifetch memo stale: core %d line %#x not in L1I", c, la)
		}
	}
	var err error
	coreMask := uint64(1)<<uint(h.cfg.Cores) - 1
	h.llc.ForEachValid(func(l cache.Line) {
		if err == nil && l.Presence&^coreMask != 0 {
			err = fmt.Errorf("presence mask %#x of line %#x names nonexistent cores", l.Presence, l.Addr)
		}
	})
	return err
}

// Auditor performs deep periodic audits of a running hierarchy: the
// structural invariants of CheckInvariants, per-cache self-consistency
// (duplicate lines, set mapping, replacement metadata), counter
// monotonicity between audits, conservation relations among the
// traffic counters, and — when the attached probe is a
// telemetry.Recorder — an exact cross-check of probe event counts
// against the Traffic counters they mirror. It is the dynamic
// counterpart of the cmd/tlavet static checks, wired to
// sim.Config.AuditEvery and `tlasim -audit N`.
//
// Create the Auditor at the point the counters' measurement window
// begins (sim does so right after the warmup reset and probe attach):
// the baseline snapshot taken then is what conservation deltas are
// measured against. An Auditor must not be shared between hierarchies.
type Auditor struct {
	h    *Hierarchy
	rec  *telemetry.Recorder // non-nil when the probe is a Recorder
	base auditSnapshot       // window start, for conservation deltas
	prev auditSnapshot       // last audit, for monotonicity

	// Audits counts completed Audit calls.
	Audits uint64
}

// auditSnapshot freezes every counter the auditor reasons about.
type auditSnapshot struct {
	traffic Traffic
	cores   []CoreStats
	events  []uint64 // Recorder counts, indexed as telemetry.Events()
}

// NewAuditor captures h's current counters as the audit baseline.
func NewAuditor(h *Hierarchy) *Auditor {
	a := &Auditor{h: h}
	a.rec, _ = h.probe.(*telemetry.Recorder)
	a.base = a.snap()
	a.prev = a.base
	return a
}

func (a *Auditor) snap() auditSnapshot {
	s := auditSnapshot{
		traffic: a.h.Traffic,
		cores:   append([]CoreStats(nil), a.h.Cores...),
	}
	if a.rec != nil {
		for _, e := range telemetry.Events() {
			s.events = append(s.events, a.rec.Count(e))
		}
	}
	return s
}

// Audit runs every check and, on success, advances the monotonicity
// snapshot. The first error is returned; the hierarchy is not
// modified either way.
func (a *Auditor) Audit() error {
	if err := a.h.CheckInvariants(); err != nil {
		return err
	}
	if err := a.checkCaches(); err != nil {
		return err
	}
	cur := a.snap()
	if err := a.checkMonotone(cur); err != nil {
		return err
	}
	if err := a.checkConservation(cur); err != nil {
		return err
	}
	if err := a.checkRecorder(cur); err != nil {
		return err
	}
	a.prev = cur
	a.Audits++
	return nil
}

// checkCaches verifies every cache's structural self-consistency.
func (a *Auditor) checkCaches() error {
	h := a.h
	for c := 0; c < h.cfg.Cores; c++ {
		for _, cc := range []*cache.Cache{h.l1i[c], h.l1d[c], h.l2[c]} {
			if err := cc.CheckConsistency(); err != nil {
				return fmt.Errorf("audit: %w", err)
			}
		}
	}
	if err := h.llc.CheckConsistency(); err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	return nil
}

// checkMonotone verifies no counter moved backwards since the last
// audit: Traffic, per-core stats, and Recorder event counts are all
// cumulative within a measurement window.
func (a *Auditor) checkMonotone(cur auditSnapshot) error {
	if err := monotoneFields("Traffic", reflect.ValueOf(a.prev.traffic), reflect.ValueOf(cur.traffic)); err != nil {
		return err
	}
	for i := range cur.cores {
		name := fmt.Sprintf("Cores[%d]", i)
		if err := monotoneFields(name, reflect.ValueOf(a.prev.cores[i]), reflect.ValueOf(cur.cores[i])); err != nil {
			return err
		}
	}
	for i, e := range telemetry.Events() {
		if i < len(cur.events) && cur.events[i] < a.prev.events[i] {
			return fmt.Errorf("audit: probe count %s went backwards: %d -> %d",
				e, a.prev.events[i], cur.events[i])
		}
	}
	return nil
}

// monotoneFields recursively compares every uint64 field of two values
// of the same struct type, erroring when one decreased.
func monotoneFields(name string, prev, cur reflect.Value) error {
	switch cur.Kind() {
	case reflect.Struct:
		for i := 0; i < cur.NumField(); i++ {
			field := name + "." + cur.Type().Field(i).Name
			if err := monotoneFields(field, prev.Field(i), cur.Field(i)); err != nil {
				return err
			}
		}
	case reflect.Uint64:
		if cur.Uint() < prev.Uint() {
			return fmt.Errorf("audit: counter %s went backwards: %d -> %d", name, prev.Uint(), cur.Uint())
		}
	}
	return nil
}

// checkConservation verifies the arithmetic relations the traffic
// counters must satisfy over the window since the baseline: an event
// that is a subset of another cannot outnumber it.
func (a *Auditor) checkConservation(cur auditSnapshot) error {
	t, base := cur.traffic, a.base.traffic
	type relation struct {
		name     string
		sub, sup uint64
	}
	victims := sumInclusionVictims(cur.cores) - sumInclusionVictims(a.base.cores)
	rels := []relation{
		// Every core that loses lines to a back-invalidation received
		// at least one back-invalidate message.
		{"inclusion victims vs back-invalidates", victims, t.BackInvalidates - base.BackInvalidates},
		{"QBS saves vs queries", t.QBSSaves - base.QBSSaves, t.QBSQueries - base.QBSQueries},
		{"L2 QBS saves vs queries", t.L2QBSSaves - base.L2QBSSaves, t.L2QBSQueries - base.L2QBSQueries},
		// One ECI operation can invalidate at most one copy per core.
		{"ECI invalidations vs sent", t.ECIInvalidated - base.ECIInvalidated,
			(t.ECISent - base.ECISent) * uint64(a.h.cfg.Cores)},
		{"prefetch fills vs issued", t.PrefetchFills - base.PrefetchFills,
			t.PrefetchIssued - base.PrefetchIssued},
	}
	for _, r := range rels {
		if r.sub > r.sup {
			return fmt.Errorf("audit: conservation violated: %s: %d > %d", r.name, r.sub, r.sup)
		}
	}
	return nil
}

// checkRecorder cross-checks probe event counts against the Traffic
// counters incremented at the same fire sites. The check only runs
// while the recorder the auditor was created with is still attached:
// the two countings must cover the same window to be comparable.
func (a *Auditor) checkRecorder(cur auditSnapshot) error {
	if a.rec == nil || a.h.probe != telemetry.Probe(a.rec) {
		return nil
	}
	t, base := cur.traffic, a.base.traffic
	delta := func(e telemetry.Event) uint64 {
		return cur.events[e] - a.base.events[e]
	}
	pairs := []struct {
		name    string
		traffic uint64
		event   telemetry.Event
	}{
		{"back-invalidates", t.BackInvalidates - base.BackInvalidates, telemetry.EvBackInvalidate},
		{"inclusion victims", sumInclusionVictims(cur.cores) - sumInclusionVictims(a.base.cores), telemetry.EvInclusionVictim},
		{"L2 inclusion victims", sumL2InclusionVictims(cur.cores) - sumL2InclusionVictims(a.base.cores), telemetry.EvL2InclusionVictim},
		{"ECI operations", t.ECISent - base.ECISent, telemetry.EvECIInvalidate},
		{"TLH hints", t.TLHSent - base.TLHSent, telemetry.EvTLHHint},
		{"QBS queries", t.QBSQueries - base.QBSQueries, telemetry.EvQBSQuery},
		{"QBS saves", t.QBSSaves - base.QBSSaves, telemetry.EvQBSSave},
	}
	for _, p := range pairs {
		if p.traffic != delta(p.event) {
			return fmt.Errorf("audit: probe/traffic divergence: %s: traffic counted %d, probe observed %d",
				p.name, p.traffic, delta(p.event))
		}
	}
	return nil
}

func sumInclusionVictims(cores []CoreStats) uint64 {
	var n uint64
	for i := range cores {
		n += cores[i].InclusionVictims
	}
	return n
}

func sumL2InclusionVictims(cores []CoreStats) uint64 {
	var n uint64
	for i := range cores {
		n += cores[i].L2InclusionVictims
	}
	return n
}

// TotalInclusionVictims sums inclusion victims across cores.
func (h *Hierarchy) TotalInclusionVictims() uint64 {
	var n uint64
	for i := range h.Cores {
		n += h.Cores[i].InclusionVictims
	}
	return n
}

package cpu

import "testing"

// TestMSHRForcedPop covers the defensive branch where the oldest miss's
// completion time does not free a slot because equal completion times
// were already drained: with a single MSHR and zero-latency... the
// branch needs the queue still full after the first advance+drain. We
// construct it with two misses completing at the same cycle through a
// ROB large enough that only the MSHR limit binds.
func TestMSHRForcedPop(t *testing.T) {
	c := MustNew(Config{Width: 4, ROB: 1024, MSHRs: 1})
	// First miss occupies the single MSHR.
	c.Instr(1, 100, 1)
	// Second miss must wait for the first.
	c.Instr(1, 100, 1)
	// Third likewise; the forced-pop path triggers if draining after
	// the advance leaves the queue full (completion == current cycle
	// boundary cases).
	c.Instr(1, 100, 1)
	total := c.Finish()
	if total < 290 {
		t.Fatalf("three serialised misses took %d cycles, want >= 290", total)
	}
	if c.Stats.WindowStalls == 0 {
		t.Fatal("no window stalls recorded")
	}
}

// TestFetchMissDrainsPending: a fetch stall long enough for pending
// loads to complete must drain them (the drain after advance).
func TestFetchMissDrainsPending(t *testing.T) {
	c := MustNew(Config{Width: 4, ROB: 8, MSHRs: 4})
	c.Instr(1, 50, 1)  // load miss outstanding
	c.Instr(200, 0, 1) // huge fetch stall: load completes during it
	if c.count != 0 {
		t.Fatalf("pending queue not drained during fetch stall: %d", c.count)
	}
	// No window stall should be charged for the already-complete load.
	before := c.Stats.WindowStalls
	for i := 0; i < 16; i++ {
		c.Instr(1, 1, 1)
	}
	if c.Stats.WindowStalls != before {
		t.Fatal("drained load still caused window stalls")
	}
}

// TestZeroMemLatency: instructions without data accesses (memLatency 0)
// never enter the pending queue.
func TestZeroMemLatency(t *testing.T) {
	c := MustNew(Config{Width: 1, ROB: 2, MSHRs: 1})
	for i := 0; i < 100; i++ {
		c.Instr(1, 0, 1)
	}
	if c.count != 0 || c.Finish() != 100 {
		t.Fatalf("no-memory instructions perturbed the queue: count=%d cycles=%d",
			c.count, c.Cycle())
	}
}

package cpu

import (
	"testing"
	"testing/quick"
)

const hitLat = 1

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{{0, 128, 32}, {4, 0, 32}, {4, 128, 0}}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted", cfg)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestIdealIPCEqualsWidth(t *testing.T) {
	c := MustNew(Default())
	for i := 0; i < 4000; i++ {
		c.Instr(hitLat, 0, hitLat)
	}
	c.Finish()
	if ipc := c.IPC(); ipc < 3.9 || ipc > 4.0 {
		t.Fatalf("all-hit IPC = %.3f, want ~4", ipc)
	}
}

func TestFetchMissStallsFully(t *testing.T) {
	c := MustNew(Default())
	c.Instr(151, 0, hitLat) // memory-latency instruction fetch
	if c.Cycle() < 150 {
		t.Fatalf("cycle after fetch miss = %d, want >= 150", c.Cycle())
	}
	if c.Stats.FetchStalls == 0 {
		t.Fatal("fetch stall not recorded")
	}
}

func TestLoadMissesOverlap(t *testing.T) {
	// Two independent memory-latency loads inside the ROB window must
	// overlap: total time far below 2x the latency.
	c := MustNew(Default())
	c.Instr(hitLat, 151, hitLat)
	c.Instr(hitLat, 151, hitLat)
	total := c.Finish()
	if total > 200 {
		t.Fatalf("two overlapping misses took %d cycles; MLP not modelled", total)
	}
	if total < 150 {
		t.Fatalf("misses completed in %d cycles, faster than memory latency", total)
	}
}

func TestROBWindowLimitsOverlap(t *testing.T) {
	// With a tiny ROB, back-to-back misses serialise.
	c := MustNew(Config{Width: 4, ROB: 2, MSHRs: 32})
	for i := 0; i < 10; i++ {
		c.Instr(hitLat, 101, hitLat)
	}
	total := c.Finish()
	// 10 misses, at most 2 in flight: at least 5 serialised latencies.
	if total < 450 {
		t.Fatalf("ROB=2 total = %d cycles, want >= 450 (serialisation)", total)
	}
	if c.Stats.WindowStalls == 0 {
		t.Fatal("window stalls not recorded")
	}
}

func TestMSHRLimitSerialises(t *testing.T) {
	few := MustNew(Config{Width: 4, ROB: 1024, MSHRs: 2})
	many := MustNew(Config{Width: 4, ROB: 1024, MSHRs: 64})
	for i := 0; i < 64; i++ {
		few.Instr(hitLat, 101, hitLat)
		many.Instr(hitLat, 101, hitLat)
	}
	if f, m := few.Finish(), many.Finish(); f <= m {
		t.Fatalf("MSHRs=2 (%d cycles) not slower than MSHRs=64 (%d cycles)", f, m)
	}
}

func TestL1HitsDoNotOccupyMSHRs(t *testing.T) {
	c := MustNew(Config{Width: 1, ROB: 8, MSHRs: 1})
	for i := 0; i < 1000; i++ {
		c.Instr(hitLat, hitLat, hitLat)
	}
	total := c.Finish()
	if total != 1000 {
		t.Fatalf("1000 single-issue L1 hits took %d cycles, want 1000", total)
	}
	if c.Stats.WindowStalls != 0 {
		t.Fatalf("L1 hits caused window stalls: %+v", c.Stats)
	}
}

func TestMoreMissesMeansMoreCycles(t *testing.T) {
	missy := MustNew(Default())
	clean := MustNew(Default())
	for i := 0; i < 10000; i++ {
		lat := uint64(hitLat)
		if i%10 == 0 {
			lat = 151
		}
		missy.Instr(hitLat, lat, hitLat)
		clean.Instr(hitLat, hitLat, hitLat)
	}
	if missy.Finish() <= clean.Finish() {
		t.Fatal("misses did not slow the core down")
	}
}

// TestCycleMonotonic: the clock never runs backwards, for arbitrary
// latency sequences, and Finish resolves everything.
func TestCycleMonotonic(t *testing.T) {
	f := func(lats []uint16) bool {
		c := MustNew(Config{Width: 4, ROB: 16, MSHRs: 4})
		prev := uint64(0)
		for _, l := range lats {
			fetch := uint64(l%7) + 1
			mem := uint64(l % 300)
			c.Instr(fetch, mem, hitLat)
			if c.Cycle() < prev {
				return false
			}
			prev = c.Cycle()
		}
		end := c.Finish()
		return end >= prev && c.count == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDeterminism: identical inputs give identical cycle counts.
func TestDeterminism(t *testing.T) {
	f := func(lats []uint16) bool {
		a := MustNew(Default())
		b := MustNew(Default())
		for _, l := range lats {
			a.Instr(hitLat, uint64(l%200), hitLat)
			b.Instr(hitLat, uint64(l%200), hitLat)
		}
		return a.Finish() == b.Finish()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIPCZeroCycles(t *testing.T) {
	c := MustNew(Default())
	if got := c.IPC(); got != 0 {
		t.Fatalf("IPC with no cycles = %v", got)
	}
}

func TestReset(t *testing.T) {
	c := MustNew(Default())
	for i := 0; i < 100; i++ {
		c.Instr(hitLat, 151, hitLat)
	}
	c.Reset()
	if c.Cycle() != 0 || c.Stats != (Stats{}) || c.count != 0 {
		t.Fatal("Reset incomplete")
	}
	c.Instr(hitLat, 0, hitLat)
	if c.Stats.Instructions != 1 {
		t.Fatal("core unusable after Reset")
	}
}

// Package cpu provides the analytic out-of-order core timing model the
// simulator uses in place of the paper's detailed 4-wide, 128-entry-ROB
// x86 cores. The model is deterministic and intentionally simple:
//
//   - Instructions issue at Width per cycle.
//   - Instruction-fetch misses stall the front end for their full
//     latency (the pipeline has nothing to execute).
//   - Loads and stores that miss the L1 enter an in-order pending queue
//     (the reorder buffer's view of outstanding memory operations) and
//     complete after their access latency; younger instructions keep
//     issuing — memory-level parallelism — until either the ROB window
//     (ROB instructions) or the MSHR count (MSHRs outstanding misses)
//     is exhausted, at which point time jumps to the oldest completion.
//
// The paper notes its policies "perform well for different latencies
// including pure functional cache simulation", so this level of timing
// fidelity is sufficient to rank policies and expose effects such as
// instruction-fetch misses hurting more than data misses (QBS-IL1 vs
// QBS-DL1 in Figure 7).
package cpu

import "fmt"

// Config sizes the core model. The zero value is invalid; use Default
// for the paper's baseline core.
type Config struct {
	Width int // issue/retire width, instructions per cycle
	ROB   int // reorder-buffer window, instructions
	MSHRs int // maximum outstanding misses
}

// Default returns the paper's baseline core: 4-wide, 128-entry ROB,
// 32 outstanding misses.
func Default() Config { return Config{Width: 4, ROB: 128, MSHRs: 32} }

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if c.Width <= 0 {
		return fmt.Errorf("cpu: width %d must be positive", c.Width)
	}
	if c.ROB <= 0 {
		return fmt.Errorf("cpu: ROB %d must be positive", c.ROB)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("cpu: MSHRs %d must be positive", c.MSHRs)
	}
	return nil
}

// Stats summarises a core's execution.
type Stats struct {
	Instructions uint64
	FetchStalls  uint64 // cycles lost to instruction-fetch misses
	WindowStalls uint64 // cycles lost waiting on ROB/MSHR-limited misses
}

type pending struct {
	seq      uint64 // instruction sequence number of the access
	complete uint64 // cycle at which the miss resolves
}

// Core models one processor core's timing. Not safe for concurrent use.
type Core struct {
	//tlavet:resetexempt immutable configuration, identical for every reuse
	cfg   Config
	cycle uint64
	sub   int // instructions issued in the current cycle
	seq   uint64

	// queue is a FIFO ring of outstanding memory operations, oldest
	// first (program order == allocation order, as in a ROB).
	//tlavet:resetexempt ring contents are dead once head/count are zeroed; slots are overwritten before use
	queue []pending
	head  int
	count int

	Stats Stats
}

// New builds a core. Configuration errors are returned, not deferred.
func New(cfg Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Core{cfg: cfg, queue: make([]pending, cfg.MSHRs)}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Core {
	c, err := New(cfg)
	if err != nil {
		panic(fmt.Sprintf("cpu: MustNew: %v", err))
	}
	return c
}

// Cycle returns the core's current cycle.
func (c *Core) Cycle() uint64 { return c.cycle }

// advance moves the core's clock forward to at least cycle, crediting
// the jump to the given stall counter.
func (c *Core) advance(to uint64, stall *uint64) {
	if to > c.cycle {
		*stall += to - c.cycle
		c.cycle = to
		c.sub = 0
	}
}

// drain retires every pending access that has completed.
func (c *Core) drain() {
	for c.count > 0 && c.queue[c.head].complete <= c.cycle {
		c.pop()
	}
}

func (c *Core) pop() {
	c.head++
	if c.head == len(c.queue) {
		c.head = 0
	}
	c.count--
}

func (c *Core) push(p pending) {
	i := c.head + c.count
	if i >= len(c.queue) {
		i -= len(c.queue)
	}
	c.queue[i] = p
	c.count++
}

// Instr commits one instruction. fetchLatency is the instruction-fetch
// access latency in cycles; a value above hitLatency (the L1I load-to-use
// latency) stalls the front end for the excess. When the instruction
// carries a data access, memLatency is its latency (0 for none); data
// accesses with latency above hitLatency become outstanding misses.
//
//tlavet:hotpath
func (c *Core) Instr(fetchLatency, memLatency, hitLatency uint64) {
	c.seq++
	c.Stats.Instructions++

	// Issue-slot accounting: Width instructions per cycle.
	c.sub++
	if c.sub >= c.cfg.Width {
		c.cycle++
		c.sub = 0
	}
	c.drain()

	// Front-end: an instruction-fetch miss starves the pipeline.
	if fetchLatency > hitLatency {
		c.advance(c.cycle+(fetchLatency-hitLatency), &c.Stats.FetchStalls)
		c.drain()
	}

	if memLatency <= hitLatency {
		return // L1 data hit (or no access): fully pipelined
	}

	// ROB window limit: if the oldest outstanding miss left the window,
	// issue cannot proceed until it completes.
	for c.count > 0 && c.seq-c.queue[c.head].seq >= uint64(c.cfg.ROB) {
		c.advance(c.queue[c.head].complete, &c.Stats.WindowStalls)
		c.drain()
	}
	// MSHR limit: no free miss slot means waiting for the oldest.
	if c.count == len(c.queue) {
		c.advance(c.queue[c.head].complete, &c.Stats.WindowStalls)
		c.drain()
		if c.count == len(c.queue) {
			// The oldest completion did not free a slot (identical
			// completion times were already drained); force one out.
			c.advance(c.queue[c.head].complete, &c.Stats.WindowStalls)
			c.pop()
		}
	}
	c.push(pending{seq: c.seq, complete: c.cycle + memLatency})
}

// Finish drains all outstanding misses and returns the final cycle
// count. Call once, after the last Instr.
func (c *Core) Finish() uint64 {
	for c.count > 0 {
		c.advance(c.queue[c.head].complete, &c.Stats.WindowStalls)
		c.drain()
	}
	return c.cycle
}

// IPC returns instructions per cycle so far (0 when no cycles elapsed).
func (c *Core) IPC() float64 {
	if c.cycle == 0 {
		return 0
	}
	return float64(c.Stats.Instructions) / float64(c.cycle)
}

// Reset returns the core to its initial state.
//
//tlavet:resetcover
func (c *Core) Reset() {
	c.cycle, c.sub, c.seq = 0, 0, 0
	c.head, c.count = 0, 0
	c.Stats = Stats{}
}

// Package telemetry is the simulator's low-overhead instrumentation
// layer: typed event probes fired by internal/hierarchy at the
// temporal-locality moments the paper's evaluation revolves around
// (inclusion victims, back-invalidations, ECI early-invalidates and
// rescue hits, QBS queries), counter and histogram primitives that
// summarise those events for run manifests, an interval sampler that
// turns a run into per-core time series (internal/sim feeds it), and a
// live pprof/expvar debug endpoint for profiling long parallel sweeps.
//
// The layer is strictly opt-in: a hierarchy with no probe attached pays
// one nil-interface branch per already-rare event site (all sites are
// on miss or invalidation paths, never on the L1 hit path), and a sim
// with no sampler pays one nil check per committed instruction.
package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Probe receives typed events from the cache hierarchy. Implementations
// are called synchronously from the single simulation goroutine of one
// run and therefore need no locking of their own, but two concurrent
// runs must not share one Probe.
//
// addr arguments are line-aligned physical addresses; core arguments
// index hierarchy cores.
type Probe interface {
	// InclusionVictim fires when an LLC back-invalidation removes at
	// least one valid line from core's caches — the harmful event the
	// paper studies.
	InclusionVictim(core int, addr uint64)
	// L2InclusionVictim fires when an inclusive private L2's eviction
	// removes a valid line from its core's L1s (footnote 3 designs).
	L2InclusionVictim(core int, addr uint64)
	// BackInvalidate fires once per back-invalidate message the LLC
	// sends (directory-filtered, so one per targeted core).
	BackInvalidate(addr uint64)
	// ECIInvalidate fires when ECI early-invalidates the next LLC
	// victim from the core caches while retaining it in the LLC.
	ECIInvalidate(addr uint64)
	// ECIRescue fires when a demand access hits an LLC line that ECI
	// had early-invalidated — the prompt re-reference ECI bets on.
	ECIRescue(addr uint64)
	// QBSQuery fires once per QBS victim query. depth is the 1-based
	// position in the query chain for this eviction; saved reports
	// whether the query found the candidate resident (promoted).
	QBSQuery(addr uint64, depth int, saved bool)
	// TLHHint fires when a core-cache hit delivers a temporal locality
	// hint to the LLC.
	TLHHint(addr uint64)
}

// Event names one probe event kind, used as the key of count summaries.
type Event uint8

// The probe event kinds, in Probe method order.
const (
	EvInclusionVictim Event = iota
	EvL2InclusionVictim
	EvBackInvalidate
	EvECIInvalidate
	EvECIRescue
	EvQBSQuery
	EvQBSSave
	EvTLHHint
	numEvents
)

// Events lists every probe event kind in declaration order, for code
// that snapshots or iterates Recorder counters (e.g. the audit mode's
// counter cross-check).
func Events() []Event {
	evs := make([]Event, numEvents)
	for i := range evs {
		evs[i] = Event(i)
	}
	return evs
}

// String names the event as it appears in summaries and manifests.
func (e Event) String() string {
	switch e {
	case EvInclusionVictim:
		return "inclusion_victim"
	case EvL2InclusionVictim:
		return "l2_inclusion_victim"
	case EvBackInvalidate:
		return "back_invalidate"
	case EvECIInvalidate:
		return "eci_invalidate"
	case EvECIRescue:
		return "eci_rescue"
	case EvQBSQuery:
		return "qbs_query"
	case EvQBSSave:
		return "qbs_save"
	case EvTLHHint:
		return "tlh_hint"
	default:
		return fmt.Sprintf("event(%d)", uint8(e))
	}
}

// maxPendingRescues bounds the Recorder's map of ECI'd lines awaiting a
// rescue hit so a run that early-invalidates millions of distinct
// never-rescued lines cannot grow memory without limit.
const maxPendingRescues = 1 << 16

// Recorder is the standard Probe: per-event counters, a histogram of
// QBS query-chain depths (one observation per completed victim
// selection), and a histogram of ECI rescue distances (the number of
// ECI early-invalidations that happened between a line's invalidation
// and its rescuing LLC hit — a proxy for how promptly the paper's
// "prompt re-reference" arrives).
type Recorder struct {
	counts   [numEvents]uint64
	qbsDepth Histogram
	rescue   Histogram

	eciSeq  uint64            // ECI invalidations seen so far
	pending map[uint64]uint64 // ECI'd line -> eciSeq at invalidation

	openChain int // depth of a QBS query chain that ended on a save
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{pending: make(map[uint64]uint64)}
}

func (r *Recorder) count(e Event) {
	r.counts[e]++
	probeEvents.Add(1)
}

// Count returns how many times event e fired.
func (r *Recorder) Count(e Event) uint64 { return r.counts[e] }

// InclusionVictim implements Probe.
func (r *Recorder) InclusionVictim(core int, addr uint64) { r.count(EvInclusionVictim) }

// L2InclusionVictim implements Probe.
func (r *Recorder) L2InclusionVictim(core int, addr uint64) { r.count(EvL2InclusionVictim) }

// BackInvalidate implements Probe.
func (r *Recorder) BackInvalidate(addr uint64) { r.count(EvBackInvalidate) }

// ECIInvalidate implements Probe.
func (r *Recorder) ECIInvalidate(addr uint64) {
	r.count(EvECIInvalidate)
	r.eciSeq++
	if len(r.pending) < maxPendingRescues {
		//tlavet:allow hotpath size-capped rescue-tracking map; Recorder-attached runs opt out of the zero-alloc contract
		r.pending[addr] = r.eciSeq
	}
}

// ECIRescue implements Probe.
func (r *Recorder) ECIRescue(addr uint64) {
	r.count(EvECIRescue)
	if at, ok := r.pending[addr]; ok {
		r.rescue.Observe(r.eciSeq - at)
		delete(r.pending, addr)
	}
}

// QBSQuery implements Probe. The depth histogram records one
// observation per victim-selection chain — the number of queries that
// eviction spent. An unsaved query ends its chain immediately; a chain
// that ends on a save (query limit or replacement fixed point) is
// closed when the next chain starts, or by Summary.
func (r *Recorder) QBSQuery(addr uint64, depth int, saved bool) {
	r.count(EvQBSQuery)
	if depth == 1 && r.openChain > 0 {
		r.qbsDepth.Observe(uint64(r.openChain))
		r.openChain = 0
	}
	if saved {
		r.count(EvQBSSave)
		r.openChain = depth
		return
	}
	r.qbsDepth.Observe(uint64(depth))
	r.openChain = 0
}

// TLHHint implements Probe.
func (r *Recorder) TLHHint(addr uint64) { r.count(EvTLHHint) }

// Summary is the JSON-ready digest of one recorder, embedded into run
// manifests by internal/runner.
type Summary struct {
	// Name identifies the run the recorder observed, e.g. "MIX_04/QBS".
	Name string `json:"name,omitempty"`
	// Events maps event names to fire counts; zero-count events are
	// omitted.
	Events map[string]uint64 `json:"events"`
	// QBSQueryDepth summarises the queries-per-eviction distribution.
	QBSQueryDepth *HistogramSummary `json:"qbs_query_depth,omitempty"`
	// ECIRescueDistance summarises how many ECI invalidations separated
	// each early-invalidation from its rescuing LLC hit.
	ECIRescueDistance *HistogramSummary `json:"eci_rescue_distance,omitempty"`
}

// Summary digests the recorder's counters and histograms. It closes
// any QBS query chain still open, so it is intended to be called once,
// after the run the recorder observed has finished.
func (r *Recorder) Summary() Summary {
	if r.openChain > 0 {
		r.qbsDepth.Observe(uint64(r.openChain))
		r.openChain = 0
	}
	s := Summary{Events: make(map[string]uint64)}
	for e := Event(0); e < numEvents; e++ {
		if r.counts[e] > 0 {
			s.Events[e.String()] = r.counts[e]
		}
	}
	if h := r.qbsDepth.Summary(); h.Count > 0 {
		s.QBSQueryDepth = &h
	}
	if h := r.rescue.Summary(); h.Count > 0 {
		s.ECIRescueDistance = &h
	}
	return s
}

// Live introspection counters, published under /debug/vars by
// ServeDebug. They aggregate across every run in the process; the
// events-per-second gauge is the process-lifetime average.
var (
	jobsCompleted  = expvar.NewInt("tla_jobs_completed")
	instructionsUp = expvar.NewInt("tla_instructions_simulated")
	probeEvents    = expvar.NewInt("tla_probe_events")
	processStart   = time.Now()
)

func init() {
	expvar.Publish("tla_events_per_second", expvar.Func(func() interface{} {
		secs := time.Since(processStart).Seconds()
		if secs <= 0 {
			return 0.0
		}
		return float64(probeEvents.Value()) / secs
	}))
}

// JobDone records one completed simulation job and its simulated
// instruction count for live introspection; internal/runner calls it as
// each job finishes.
func JobDone(instructions uint64) {
	jobsCompleted.Add(1)
	instructionsUp.Add(int64(instructions))
}

// JobsCompleted returns the process-wide completed-job count.
func JobsCompleted() int64 { return jobsCompleted.Value() }

// InstructionsSimulated returns the process-wide simulated-instruction
// count across completed jobs.
func InstructionsSimulated() int64 { return instructionsUp.Value() }

// ProbeEvents returns the process-wide probe event count.
func ProbeEvents() int64 { return probeEvents.Value() }

// ServeDebug starts an HTTP server on addr exposing net/http/pprof
// under /debug/pprof/ and the process expvars (including the tla_*
// counters above) under /debug/vars. It returns the bound address —
// pass ":0" to pick a free port — and the serving *http.Server so the
// caller owns its lifetime: CLIs may let it run until process exit,
// while daemons and tests must Close (or Shutdown) it instead of
// leaking the listener.
func ServeDebug(addr string) (string, *http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: debug server: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // ends via the caller's Close/Shutdown
	return ln.Addr().String(), srv, nil
}

package telemetry

import "math/bits"

// histBuckets is one bucket per possible bit length of a uint64 value:
// bucket 0 holds the value 0, bucket i>0 holds values in
// [2^(i-1), 2^i - 1]. Power-of-two buckets keep Observe to a handful of
// instructions while preserving the order of magnitude, which is all
// the query-depth and rescue-distance distributions need.
const histBuckets = 65

// Histogram is a fixed-cost exponential-bucket histogram for
// non-negative integer observations. The zero value is ready to use; it
// is not goroutine-safe (probes run on the single simulation
// goroutine).
type Histogram struct {
	count, sum uint64
	min, max   uint64
	buckets    [histBuckets]uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// HistogramBucket is one non-empty bucket of a summary: Count values
// were observed in [Lo, Hi].
type HistogramBucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// HistogramSummary is the JSON-ready digest of a histogram.
type HistogramSummary struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	// P50/P90/P99 are quantile estimates interpolated within the
	// exponential buckets (exact when a bucket spans a single value).
	P50     float64           `json:"p50"`
	P90     float64           `json:"p90"`
	P99     float64           `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// bucketBounds returns the value range bucket i covers.
func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	return uint64(1) << (i - 1), uint64(1)<<i - 1
}

// Quantile estimates the q-quantile (0..1) of the observed values by
// linear interpolation within the containing bucket. It returns 0 when
// the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(h.min)
	}
	if q >= 1 {
		return float64(h.max)
	}
	rank := q * float64(h.count)
	cum := 0.0
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= rank {
			lo, hi := bucketBounds(i)
			if lo < h.min {
				lo = h.min
			}
			if hi > h.max {
				hi = h.max
			}
			frac := (rank - cum) / float64(c)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += float64(c)
	}
	return float64(h.max)
}

// Summary digests the histogram. Only non-empty buckets are emitted.
func (h *Histogram) Summary() HistogramSummary {
	s := HistogramSummary{
		Count: h.count,
		Sum:   h.sum,
		Min:   h.min,
		Max:   h.max,
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	if h.count > 0 {
		s.Mean = float64(h.sum) / float64(h.count)
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		s.Buckets = append(s.Buckets, HistogramBucket{Lo: lo, Hi: hi, Count: c})
	}
	return s
}

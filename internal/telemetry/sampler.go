package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Sample is one per-core interval snapshot of a run's measurement
// window. Rates (IPC, MPKI, victims-per-Minst) are computed over the
// interval's deltas, not cumulatively, so plotting the column directly
// shows phase behaviour; Instructions is cumulative so rows order
// naturally. The InclusionVictims column is a delta: summed over every
// row of a run it equals the run's aggregate windowed inclusion-victim
// count, because sampling stops for a core exactly when its measurement
// window freezes.
type Sample struct {
	Core              int     `json:"core"`
	Interval          int     `json:"interval"`
	Instructions      uint64  `json:"instructions"`
	DeltaInstructions uint64  `json:"delta_instructions"`
	DeltaCycles       uint64  `json:"delta_cycles"`
	IPC               float64 `json:"ipc"`
	LLCMPKI           float64 `json:"llc_mpki"`
	InclusionVictims  uint64  `json:"inclusion_victims"`
	VictimsPerMinst   float64 `json:"victims_per_minst"`
	LLCOccupancy      float64 `json:"llc_occupancy"`
}

// samplerCursor holds one core's cumulative counters at its previous
// sample, for delta computation.
type samplerCursor struct {
	interval                       int
	instr, cycles, misses, victims uint64
}

// Sampler collects per-core interval snapshots. The simulator calls
// Observe with cumulative counters every Every() instructions a core
// commits (and once more when the core's measurement window freezes);
// the sampler turns them into delta-based Samples. Not goroutine-safe:
// one sampler belongs to one run.
type Sampler struct {
	every   uint64
	samples []Sample
	cursors []samplerCursor

	// Sink, when non-nil, receives each Sample synchronously from the
	// simulation goroutine the moment it is observed, before the run
	// finishes — the live-streaming hook the tlacached daemon forwards
	// to event subscribers. A sink must not block: it runs on the
	// simulation's critical path, so forwarders should hand off to a
	// buffered channel and drop on overflow. Set it before the run
	// starts; the sampler never calls it concurrently with itself.
	Sink func(Sample)
}

// NewSampler returns a sampler snapshotting every `every` committed
// instructions per core. It returns nil for a zero interval, and a nil
// sampler is never fed by the simulator, so callers may pass the flag
// value straight through.
func NewSampler(every uint64) *Sampler {
	if every == 0 {
		return nil
	}
	return &Sampler{every: every}
}

// Every returns the per-core sampling interval in instructions.
func (s *Sampler) Every() uint64 { return s.every }

// Observe records one snapshot of a core's cumulative measurement
// counters. A repeated call with an unchanged instruction count (the
// final flush landing on an interval boundary) is ignored, so callers
// need not deduplicate.
func (s *Sampler) Observe(core int, instr, cycles, llcMisses, victims uint64, occupancy float64) {
	for len(s.cursors) <= core {
		s.cursors = append(s.cursors, samplerCursor{})
	}
	cur := &s.cursors[core]
	if instr == cur.instr {
		return
	}
	dI := instr - cur.instr
	dC := cycles - cur.cycles
	dM := llcMisses - cur.misses
	dV := victims - cur.victims
	sm := Sample{
		Core:              core,
		Interval:          cur.interval,
		Instructions:      instr,
		DeltaInstructions: dI,
		DeltaCycles:       dC,
		InclusionVictims:  dV,
		LLCOccupancy:      occupancy,
	}
	if dC > 0 {
		sm.IPC = float64(dI) / float64(dC)
	}
	sm.LLCMPKI = float64(dM) * 1000 / float64(dI)
	sm.VictimsPerMinst = float64(dV) * 1e6 / float64(dI)
	s.samples = append(s.samples, sm)
	*cur = samplerCursor{interval: cur.interval + 1, instr: instr, cycles: cycles, misses: llcMisses, victims: victims}
	if s.Sink != nil {
		s.Sink(sm)
	}
}

// Samples returns the collected samples in observation order (global
// simulated-time order, cores interleaved).
func (s *Sampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	return s.samples
}

// TotalInclusionVictims sums the inclusion-victim deltas over every
// sample — by construction the run's aggregate windowed count.
func (s *Sampler) TotalInclusionVictims() uint64 {
	var sum uint64
	for _, sm := range s.Samples() {
		sum += sm.InclusionVictims
	}
	return sum
}

// csvHeader matches the field order WriteCSV emits.
const csvHeader = "interval,core,instructions,delta_instructions,delta_cycles,ipc,llc_mpki,inclusion_victims,victims_per_minst,llc_occupancy"

// WriteCSV writes the samples as CSV with a header row. The bytes are
// replay artifacts compared across runs, so this is a detflow sink.
//
//tlavet:detsink
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, csvHeader); err != nil {
		return err
	}
	for _, sm := range s.Samples() {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%.4f,%.4f,%d,%.2f,%.4f\n",
			sm.Interval, sm.Core, sm.Instructions, sm.DeltaInstructions, sm.DeltaCycles,
			sm.IPC, sm.LLCMPKI, sm.InclusionVictims, sm.VictimsPerMinst, sm.LLCOccupancy); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL writes the samples as JSON Lines, one Sample per line.
// Like WriteCSV, the output must be byte-identical across replays.
//
//tlavet:detsink
func (s *Sampler) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, sm := range s.Samples() {
		if err := enc.Encode(sm); err != nil {
			return err
		}
	}
	return nil
}

// WritePair writes prefix.csv and prefix.jsonl (creating parent
// directories), the time-series artifacts that land next to a run's
// experiment CSVs.
func (s *Sampler) WritePair(prefix string) error {
	if dir := filepath.Dir(prefix); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	// A fixed-order pair list, not a map: the files are written (and any
	// error surfaces) in the same order every run.
	pairs := []struct {
		ext   string
		write func(io.Writer) error
	}{
		{".csv", s.WriteCSV},
		{".jsonl", s.WriteJSONL},
	}
	for _, p := range pairs {
		f, err := os.Create(prefix + p.ext)
		if err != nil {
			return err
		}
		if err := p.write(f); err != nil {
			f.Close()
			return fmt.Errorf("telemetry: writing %s: %w", prefix+p.ext, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

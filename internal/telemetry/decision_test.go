package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"testing"
)

func sampleDecisions() []Decision {
	return []Decision{
		{
			Seq: 1, Core: 0, Set: 3, NewAddr: 0x1000, ChosenWay: 2, QBSWay: 2,
			InclusionVictims: 0,
			Candidates: []DecisionCandidate{
				{Way: 0, Addr: 0x2000, Valid: true, Dirty: false, Rank: 1, Presence: 1},
				{Way: 1, Valid: false, Rank: 3},
				{Way: 2, Addr: 0x8000_0000_0000_1000, Valid: true, Dirty: true, Rank: 3, Presence: 3},
			},
		},
		{
			Seq: 2, Core: 1, Set: 0, NewAddr: 0x0940, ChosenWay: 0, QBSWay: NoWay,
			InclusionVictims: 2,
			Candidates: []DecisionCandidate{
				{Way: 0, Addr: 0x0040, Valid: true, Rank: 0, Presence: 2},
				{Way: 1, Addr: 0x4040, Valid: true, Rank: 2, Presence: 0},
				{Way: 2, Valid: false, Rank: RankUnknown},
			},
		},
	}
}

// The binary format must round-trip every field, including negative
// address deltas, the NoWay sentinel, and invalid candidates.
func TestDecisionBinaryRoundTrip(t *testing.T) {
	meta := DecisionMeta{Sets: 16, Assoc: 3, Policy: "NRU", Cores: 2}
	var buf bytes.Buffer
	w, err := NewDecisionWriter(&buf, meta)
	if err != nil {
		t.Fatalf("NewDecisionWriter: %v", err)
	}
	in := sampleDecisions()
	for i := range in {
		w.Decision(&in[i])
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.Count() != uint64(len(in)) {
		t.Errorf("Count = %d, want %d", w.Count(), len(in))
	}

	r, err := NewDecisionReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewDecisionReader: %v", err)
	}
	if r.Meta() != meta {
		t.Errorf("meta = %+v, want %+v", r.Meta(), meta)
	}
	out, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", out, in)
	}
}

func TestDecisionReaderRejectsCorruption(t *testing.T) {
	meta := DecisionMeta{Sets: 4, Assoc: 2, Policy: "LRU", Cores: 1}
	for name, mangle := range map[string]func([]byte) []byte{
		"bad-magic":    func(b []byte) []byte { b[0] = 'X'; return b },
		"truncated":    func(b []byte) []byte { return b[:len(b)-2] },
		"bad-meta":     func(b []byte) []byte { return append([]byte("TLAD1\nnot json\n"), b[20:]...) },
		"set-range":    nil, // constructed below
		"cand-exceeds": nil,
	} {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			w, err := NewDecisionWriter(&buf, meta)
			if err != nil {
				t.Fatal(err)
			}
			d := Decision{Set: 1, ChosenWay: 0, QBSWay: 0, NewAddr: 0x40,
				Candidates: []DecisionCandidate{{Way: 0, Valid: true, Addr: 0x80, Rank: 1}, {Way: 1}}}
			switch name {
			case "set-range":
				d.Set = 7 // >= meta.Sets
			case "cand-exceeds":
				d.Candidates = append(d.Candidates, DecisionCandidate{Way: 2})
			}
			w.Decision(&d)
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			raw := buf.Bytes()
			if mangle != nil {
				raw = mangle(raw)
			}
			r, err := NewDecisionReader(bytes.NewReader(raw))
			if err != nil {
				return // header-level rejection is fine
			}
			if _, err := r.ReadAll(); err == nil {
				t.Errorf("%s: corrupted stream decoded cleanly", name)
			}
		})
	}
}

// A latched write error must surface from Flush, not vanish.
func TestDecisionWriterLatchesError(t *testing.T) {
	meta := DecisionMeta{Sets: 4, Assoc: 1, Policy: "LRU", Cores: 1}
	fw := &failAfterWriter{limit: len(decisionMagic) + 64}
	w, err := NewDecisionWriter(fw, meta)
	if err != nil {
		t.Fatal(err)
	}
	d := Decision{Candidates: []DecisionCandidate{{Way: 0}}}
	for i := 0; i < 10_000; i++ {
		w.Decision(&d)
	}
	if err := w.Flush(); err == nil {
		t.Error("Flush returned nil after the underlying writer failed")
	}
}

type failAfterWriter struct {
	n, limit int
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	f.n += len(p)
	if f.n > f.limit {
		return 0, io.ErrClosedPipe
	}
	return len(p), nil
}

// The JSONL form carries a meta header line and one decision per line.
func TestDecisionJSONL(t *testing.T) {
	meta := DecisionMeta{Sets: 16, Assoc: 3, Policy: "SRRIP", Cores: 2}
	var buf bytes.Buffer
	w, err := NewDecisionJSONLWriter(&buf, meta)
	if err != nil {
		t.Fatal(err)
	}
	in := sampleDecisions()
	for i := range in {
		w.Decision(&in[i])
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	if !sc.Scan() {
		t.Fatal("missing meta line")
	}
	var hdr struct {
		Meta bool `json:"meta"`
		DecisionMeta
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || !hdr.Meta || hdr.DecisionMeta != meta {
		t.Fatalf("meta line %q: err=%v parsed=%+v", sc.Text(), err, hdr)
	}
	var got []Decision
	for sc.Scan() {
		var d Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("record line %q: %v", sc.Text(), err)
		}
		got = append(got, d)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("JSONL round trip mismatch:\n got %+v\nwant %+v", got, in)
	}
	if !strings.Contains(buf.String(), `"qbs_way":-1`) {
		t.Error("JSONL does not spell out the NoWay sentinel")
	}
}

// DecisionLog must deep-copy records: the hierarchy reuses the scratch
// Decision (and its Candidates backing array) across calls.
func TestDecisionLogDeepCopies(t *testing.T) {
	var l DecisionLog
	scratch := Decision{Seq: 1, Set: 2, ChosenWay: 1,
		Candidates: []DecisionCandidate{{Way: 0, Addr: 0x40, Valid: true}}}
	l.Decision(&scratch)
	scratch.Seq, scratch.Set = 2, 9
	scratch.Candidates[0].Addr = 0xdead
	l.Decision(&scratch)
	if len(l.Records) != 2 {
		t.Fatalf("logged %d records, want 2", len(l.Records))
	}
	if l.Records[0].Set != 2 || l.Records[0].Candidates[0].Addr != 0x40 {
		t.Errorf("first record mutated by scratch reuse: %+v", l.Records[0])
	}
	if l.Records[1].Set != 9 || l.Records[1].Candidates[0].Addr != 0xdead {
		t.Errorf("second record wrong: %+v", l.Records[1])
	}
}

package telemetry

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// This file is the decision-level half of the telemetry layer: where the
// Probe interface reports *that* temporal-locality events happened, the
// DecisionTracer reports *why* — the full candidate set the LLC weighed
// at each victim choice, the way it picked, and what the eviction cost
// (inclusion victims). The offline analyzer (cmd/tlatrace) replays these
// records to score a policy's decisions and to ask counterfactuals such
// as "what would QBS have evicted here instead?".

// RankUnknown is the candidate rank recorded when the cache's
// replacement policy does not expose a per-way eviction-preference rank
// (see replacement.Ranker).
const RankUnknown uint8 = 0xFF

// NoWay is the way index recorded when a decision has no alternative
// way to report (e.g. QBSWay when every candidate was core-resident).
const NoWay = -1

// DecisionCandidate is one way of the set at the moment of an LLC
// victim choice. Rank is the replacement policy's eviction preference
// for the way (larger = closer to eviction: LRU stack distance from
// MRU, NRU reference-bit complement, SRRIP RRPV), or RankUnknown when
// the policy exposes none. Presence is the LLC directory mask.
type DecisionCandidate struct {
	Way      int    `json:"way"`
	Addr     uint64 `json:"addr,omitempty"`
	Valid    bool   `json:"valid,omitempty"`
	Dirty    bool   `json:"dirty,omitempty"`
	Rank     uint8  `json:"rank"`
	Presence uint64 `json:"presence,omitempty"`
}

// Decision is one LLC victim choice: the incoming line, every candidate
// way as the policy saw them (pre-eviction), the way actually chosen,
// the way a read-only QBS emulation would have suggested (ChosenWay
// when they agree, NoWay when QBS found every candidate core-resident),
// and the number of cores that lost lines to the eviction's
// back-invalidation (0 for cold fills and non-inclusive modes).
type Decision struct {
	Seq              uint64              `json:"seq"`
	Core             int                 `json:"core"`
	Set              int                 `json:"set"`
	NewAddr          uint64              `json:"new_addr"`
	ChosenWay        int                 `json:"chosen_way"`
	QBSWay           int                 `json:"qbs_way"`
	InclusionVictims int                 `json:"inclusion_victims"`
	Candidates       []DecisionCandidate `json:"candidates"`
}

// DecisionTracer receives one record per LLC victim choice. Like Probe,
// implementations are called synchronously from the single simulation
// goroutine of one run; a tracer must not be shared between concurrent
// runs. The pointed-to Decision and its Candidates slice are scratch
// storage the hierarchy reuses across calls — implementations that
// retain records must deep-copy them.
type DecisionTracer interface {
	//tlavet:hotpath
	Decision(d *Decision)
}

// DecisionMeta is the trace-level header of a decision trace: the LLC
// geometry and policy the records were captured under, which the
// analyzer needs to interpret set indices and ranks.
type DecisionMeta struct {
	Sets   int    `json:"sets"`
	Assoc  int    `json:"assoc"`
	Policy string `json:"policy"`
	Cores  int    `json:"cores"`
}

// The binary decision-trace format mirrors the TLAT1 instruction-trace
// container: magic, one JSON meta line, then varint-packed records
// until EOF. Addresses are delta-encoded (the record's NewAddr against
// the previous record's, each candidate's against the record's), which
// keeps the dominant same-set same-region traffic to a few bytes per
// candidate. Layout:
//
//	magic   "TLAD1\n"
//	meta    one JSON line (DecisionMeta)
//	records repeated until EOF:
//	    core     1 byte
//	    set      unsigned varint
//	    chosen   1 byte
//	    qbs      1 byte (0xFF encodes NoWay)
//	    victims  unsigned varint
//	    newΔ     signed varint, NewAddr delta from the previous record
//	    ncand    1 byte
//	    candidates repeated ncand times (way = position):
//	        flags    1 byte (bit0 valid, bit1 dirty)
//	        rank     1 byte
//	        addrΔ    signed varint vs NewAddr — valid candidates only
//	        presence unsigned varint      — valid candidates only
const decisionMagic = "TLAD1\n"

const (
	decFlagValid uint8 = 1 << iota
	decFlagDirty
)

const noWayByte = 0xFF

// DecisionWriter streams decisions to the binary TLAD1 format. It
// implements DecisionTracer directly; because the interface returns no
// error, write failures latch and surface from Flush.
type DecisionWriter struct {
	w        *bufio.Writer
	lastAddr uint64
	count    uint64
	err      error
	buf      []byte
}

// NewDecisionWriter writes the header and returns a streaming writer.
// Call Flush when the run is done to surface any latched write error.
func NewDecisionWriter(w io.Writer, meta DecisionMeta) (*DecisionWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(decisionMagic); err != nil {
		return nil, fmt.Errorf("telemetry: decision trace header: %w", err)
	}
	mj, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("telemetry: decision trace meta: %w", err)
	}
	if _, err := bw.Write(append(mj, '\n')); err != nil {
		return nil, fmt.Errorf("telemetry: decision trace meta: %w", err)
	}
	// Scratch sized for the worst case of a 16-way record so steady-state
	// appends never grow it.
	return &DecisionWriter{w: bw, buf: make([]byte, 0, 512)}, nil
}

// Decision implements DecisionTracer. The scratch buffer is sized for
// the worst-case record at construction, so the appends below reuse it
// in the steady state; tracer-attached runs opt out of the zero-alloc
// contract regardless (like Recorder-attached ones). TLAD1 bytes are
// replay-compared across runs, so this is a detflow sink.
//
//tlavet:detsink
func (dw *DecisionWriter) Decision(d *Decision) {
	if dw.err != nil {
		return
	}
	b := dw.buf[:0]
	//tlavet:allow hotpath append into preallocated scratch; tracer-attached runs opt out of the zero-alloc contract
	b = append(b, byte(d.Core))
	b = binary.AppendUvarint(b, uint64(d.Set))
	q := byte(noWayByte)
	if d.QBSWay != NoWay {
		q = byte(d.QBSWay)
	}
	//tlavet:allow hotpath append into preallocated scratch; tracer-attached runs opt out of the zero-alloc contract
	b = append(b, byte(d.ChosenWay), q)
	b = binary.AppendUvarint(b, uint64(d.InclusionVictims))
	b = binary.AppendVarint(b, int64(d.NewAddr)-int64(dw.lastAddr))
	//tlavet:allow hotpath append into preallocated scratch; tracer-attached runs opt out of the zero-alloc contract
	b = append(b, byte(len(d.Candidates)))
	for i := range d.Candidates {
		c := &d.Candidates[i]
		var flags uint8
		if c.Valid {
			flags |= decFlagValid
		}
		if c.Dirty {
			flags |= decFlagDirty
		}
		//tlavet:allow hotpath append into preallocated scratch; tracer-attached runs opt out of the zero-alloc contract
		b = append(b, flags, c.Rank)
		if c.Valid {
			b = binary.AppendVarint(b, int64(c.Addr)-int64(d.NewAddr))
			b = binary.AppendUvarint(b, c.Presence)
		}
	}
	if _, err := dw.w.Write(b); err != nil {
		//tlavet:allow hotpath error formatting on the latched failure path, taken at most once per writer
		dw.err = fmt.Errorf("telemetry: decision trace write: %w", err)
	}
	dw.buf = b[:0]
	dw.lastAddr = d.NewAddr
	dw.count++
}

// Count returns the number of records written.
func (dw *DecisionWriter) Count() uint64 { return dw.count }

// Flush flushes buffered records and returns the first error the stream
// hit, if any.
func (dw *DecisionWriter) Flush() error {
	if dw.err != nil {
		return dw.err
	}
	if err := dw.w.Flush(); err != nil {
		return fmt.Errorf("telemetry: decision trace flush: %w", err)
	}
	return nil
}

// DecisionJSONLWriter streams decisions as one JSON object per line —
// the human-greppable sibling of the binary format. The first line is
// the DecisionMeta header object, tagged "meta":true.
type DecisionJSONLWriter struct {
	w     *bufio.Writer
	count uint64
	err   error
}

// NewDecisionJSONLWriter writes the meta header line and returns the
// writer. Call Flush when done.
func NewDecisionJSONLWriter(w io.Writer, meta DecisionMeta) (*DecisionJSONLWriter, error) {
	bw := bufio.NewWriter(w)
	hdr := struct {
		Meta bool `json:"meta"`
		DecisionMeta
	}{Meta: true, DecisionMeta: meta}
	hj, err := json.Marshal(hdr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: decision jsonl meta: %w", err)
	}
	if _, err := bw.Write(append(hj, '\n')); err != nil {
		return nil, fmt.Errorf("telemetry: decision jsonl meta: %w", err)
	}
	return &DecisionJSONLWriter{w: bw}, nil
}

// Decision implements DecisionTracer. The JSONL stream must be
// byte-identical across replays, so this is a detflow sink.
//
//tlavet:detsink
func (jw *DecisionJSONLWriter) Decision(d *Decision) {
	if jw.err != nil {
		return
	}
	data, err := json.Marshal(d)
	if err != nil {
		//tlavet:allow hotpath error formatting on the latched failure path; JSONL tracing opts out of the zero-alloc contract
		jw.err = fmt.Errorf("telemetry: decision jsonl encode: %w", err)
		return
	}
	//tlavet:allow hotpath JSON line assembly; JSONL tracing opts out of the zero-alloc contract
	if _, err := jw.w.Write(append(data, '\n')); err != nil {
		//tlavet:allow hotpath error formatting on the latched failure path; JSONL tracing opts out of the zero-alloc contract
		jw.err = fmt.Errorf("telemetry: decision jsonl write: %w", err)
		return
	}
	jw.count++
}

// Count returns the number of records written.
func (jw *DecisionJSONLWriter) Count() uint64 { return jw.count }

// Flush flushes buffered lines and returns any latched error.
func (jw *DecisionJSONLWriter) Flush() error {
	if jw.err != nil {
		return jw.err
	}
	if err := jw.w.Flush(); err != nil {
		return fmt.Errorf("telemetry: decision jsonl flush: %w", err)
	}
	return nil
}

// DecisionLog is an in-memory DecisionTracer that deep-copies every
// record, for tests and the in-process counterfactual engine.
type DecisionLog struct {
	Records []Decision
}

// Decision implements DecisionTracer.
func (l *DecisionLog) Decision(d *Decision) {
	cp := *d
	//tlavet:allow hotpath in-memory record capture; log-attached runs opt out of the zero-alloc contract
	cp.Candidates = append([]DecisionCandidate(nil), d.Candidates...)
	//tlavet:allow hotpath in-memory record capture; log-attached runs opt out of the zero-alloc contract
	l.Records = append(l.Records, cp)
}

// DecisionReader decodes a binary TLAD1 decision trace.
type DecisionReader struct {
	r        *bufio.Reader
	meta     DecisionMeta
	lastAddr uint64
}

// NewDecisionReader validates the header, decodes the meta line, and
// returns a streaming reader.
func NewDecisionReader(r io.Reader) (*DecisionReader, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(decisionMagic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("telemetry: decision trace header: %w", err)
	}
	if string(hdr) != decisionMagic {
		return nil, errors.New("telemetry: bad magic (not a TLAD1 decision trace)")
	}
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("telemetry: decision trace meta: %w", err)
	}
	var meta DecisionMeta
	if err := json.Unmarshal(line, &meta); err != nil {
		return nil, fmt.Errorf("telemetry: decision trace meta: %w", err)
	}
	if meta.Assoc <= 0 || meta.Assoc > 256 || meta.Sets <= 0 {
		return nil, fmt.Errorf("telemetry: decision trace meta geometry %d sets x %d ways out of range", meta.Sets, meta.Assoc)
	}
	return &DecisionReader{r: br, meta: meta}, nil
}

// Meta returns the trace header.
func (dr *DecisionReader) Meta() DecisionMeta { return dr.meta }

// Read decodes the next record into d, reusing d.Candidates when its
// capacity allows. It returns io.EOF at a clean end of stream and a
// wrapped error on corruption.
func (dr *DecisionReader) Read(d *Decision) error {
	core, err := dr.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("telemetry: decision trace core: %w", err)
	}
	set, err := binary.ReadUvarint(dr.r)
	if err != nil {
		return fmt.Errorf("telemetry: decision trace set: %w", err)
	}
	if int(set) >= dr.meta.Sets {
		return fmt.Errorf("telemetry: decision trace set %d out of range (%d sets)", set, dr.meta.Sets)
	}
	chosen, err := dr.r.ReadByte()
	if err != nil {
		return fmt.Errorf("telemetry: decision trace chosen way: %w", err)
	}
	qbs, err := dr.r.ReadByte()
	if err != nil {
		return fmt.Errorf("telemetry: decision trace qbs way: %w", err)
	}
	victims, err := binary.ReadUvarint(dr.r)
	if err != nil {
		return fmt.Errorf("telemetry: decision trace victims: %w", err)
	}
	delta, err := binary.ReadVarint(dr.r)
	if err != nil {
		return fmt.Errorf("telemetry: decision trace addr delta: %w", err)
	}
	ncand, err := dr.r.ReadByte()
	if err != nil {
		return fmt.Errorf("telemetry: decision trace candidate count: %w", err)
	}
	if int(ncand) > dr.meta.Assoc {
		return fmt.Errorf("telemetry: decision trace %d candidates exceed assoc %d", ncand, dr.meta.Assoc)
	}
	dr.lastAddr = uint64(int64(dr.lastAddr) + delta)
	d.Seq++
	d.Core = int(core)
	d.Set = int(set)
	d.NewAddr = dr.lastAddr
	d.ChosenWay = int(chosen)
	d.QBSWay = NoWay
	if qbs != noWayByte {
		d.QBSWay = int(qbs)
	}
	d.InclusionVictims = int(victims)
	if cap(d.Candidates) < int(ncand) {
		d.Candidates = make([]DecisionCandidate, ncand)
	}
	d.Candidates = d.Candidates[:ncand]
	for i := range d.Candidates {
		flags, err := dr.r.ReadByte()
		if err != nil {
			return fmt.Errorf("telemetry: decision trace candidate flags: %w", err)
		}
		rank, err := dr.r.ReadByte()
		if err != nil {
			return fmt.Errorf("telemetry: decision trace candidate rank: %w", err)
		}
		c := &d.Candidates[i]
		*c = DecisionCandidate{Way: i, Valid: flags&decFlagValid != 0, Dirty: flags&decFlagDirty != 0, Rank: rank}
		if c.Valid {
			ad, err := binary.ReadVarint(dr.r)
			if err != nil {
				return fmt.Errorf("telemetry: decision trace candidate addr: %w", err)
			}
			c.Addr = uint64(int64(d.NewAddr) + ad)
			if c.Presence, err = binary.ReadUvarint(dr.r); err != nil {
				return fmt.Errorf("telemetry: decision trace candidate presence: %w", err)
			}
		}
	}
	return nil
}

// ReadAll decodes every remaining record, assigning sequence numbers in
// stream order starting from 1.
func (dr *DecisionReader) ReadAll() ([]Decision, error) {
	var out []Decision
	var d Decision
	for {
		// Fresh candidate storage per record: Read reuses the slice.
		d.Candidates = nil
		err := dr.Read(&d)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, d)
	}
}

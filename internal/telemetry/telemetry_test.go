package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if s := h.Summary(); s.Count != 0 || s.Buckets != nil {
		t.Fatalf("empty summary = %+v", s)
	}
	for _, v := range []uint64{0, 1, 1, 2, 5, 100} {
		h.Observe(v)
	}
	s := h.Summary()
	if s.Count != 6 || s.Sum != 109 || s.Min != 0 || s.Max != 100 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 109.0/6 {
		t.Errorf("mean = %v", s.Mean)
	}
	var bucketTotal uint64
	for _, b := range s.Buckets {
		if b.Lo > b.Hi {
			t.Errorf("bucket %+v inverted", b)
		}
		bucketTotal += b.Count
	}
	if bucketTotal != s.Count {
		t.Errorf("buckets sum to %d, want %d", bucketTotal, s.Count)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1) // single-value buckets make quantiles exact
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 1 {
			t.Errorf("Quantile(%v) = %v, want 1", q, got)
		}
	}
	h.Observe(1000)
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("median = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("max quantile = %v, want 1000", got)
	}
	// Quantiles must be monotone in q.
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.1 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v", q, v, prev)
		}
		prev = v
	}
}

func TestRecorderCountsAndSummary(t *testing.T) {
	r := NewRecorder()
	r.InclusionVictim(0, 0x100)
	r.InclusionVictim(1, 0x140)
	r.L2InclusionVictim(0, 0x180)
	r.BackInvalidate(0x100)
	r.TLHHint(0x200)
	if r.Count(EvInclusionVictim) != 2 || r.Count(EvBackInvalidate) != 1 {
		t.Fatalf("counts = %d, %d", r.Count(EvInclusionVictim), r.Count(EvBackInvalidate))
	}
	s := r.Summary()
	if s.Events["inclusion_victim"] != 2 || s.Events["tlh_hint"] != 1 {
		t.Fatalf("summary events = %v", s.Events)
	}
	if _, ok := s.Events["qbs_query"]; ok {
		t.Error("zero-count event present in summary")
	}
	if s.QBSQueryDepth != nil || s.ECIRescueDistance != nil {
		t.Error("empty histograms present in summary")
	}
}

func TestRecorderECIRescueDistance(t *testing.T) {
	r := NewRecorder()
	r.ECIInvalidate(0xA00) // seq 1
	r.ECIInvalidate(0xB00) // seq 2
	r.ECIInvalidate(0xC00) // seq 3
	r.ECIRescue(0xA00)     // distance 3-1 = 2
	r.ECIRescue(0xC00)     // distance 0
	r.ECIRescue(0xD00)     // never invalidated: counted, not histogrammed
	s := r.Summary()
	if s.Events["eci_invalidate"] != 3 || s.Events["eci_rescue"] != 3 {
		t.Fatalf("events = %v", s.Events)
	}
	h := s.ECIRescueDistance
	if h == nil || h.Count != 2 || h.Sum != 2 || h.Max != 2 {
		t.Fatalf("rescue distance = %+v", h)
	}
}

func TestRecorderQBSChains(t *testing.T) {
	r := NewRecorder()
	// Chain 1: save at depth 1, save at depth 2, unsaved at depth 3.
	r.QBSQuery(0x1, 1, true)
	r.QBSQuery(0x2, 2, true)
	r.QBSQuery(0x3, 3, false)
	// Chain 2: single unsaved query.
	r.QBSQuery(0x4, 1, false)
	// Chain 3: ends on a save (query limit); closed by the next chain.
	r.QBSQuery(0x5, 1, true)
	r.QBSQuery(0x6, 2, true)
	// Chain 4: open at Summary time; Summary closes it.
	r.QBSQuery(0x7, 1, true)
	s := r.Summary()
	if s.Events["qbs_query"] != 7 || s.Events["qbs_save"] != 5 {
		t.Fatalf("events = %v", s.Events)
	}
	h := s.QBSQueryDepth
	if h == nil || h.Count != 4 {
		t.Fatalf("depth histogram = %+v", h)
	}
	if h.Sum != 3+1+2+1 {
		t.Errorf("depth sum = %d, want 7", h.Sum)
	}
}

func TestSamplerDeltas(t *testing.T) {
	s := NewSampler(1000)
	if s.Every() != 1000 {
		t.Fatalf("every = %d", s.Every())
	}
	s.Observe(0, 1000, 2000, 10, 3, 0.5)
	s.Observe(1, 1000, 4000, 50, 0, 0.5)
	s.Observe(0, 2000, 3000, 15, 7, 0.8)
	s.Observe(0, 2000, 3000, 15, 7, 0.8) // duplicate flush: ignored
	got := s.Samples()
	if len(got) != 3 {
		t.Fatalf("%d samples", len(got))
	}
	first, third := got[0], got[2]
	if first.Core != 0 || first.Interval != 0 || first.IPC != 0.5 || first.InclusionVictims != 3 {
		t.Fatalf("first sample = %+v", first)
	}
	if third.Interval != 1 || third.DeltaInstructions != 1000 || third.DeltaCycles != 1000 {
		t.Fatalf("third sample = %+v", third)
	}
	if third.IPC != 1.0 || third.InclusionVictims != 4 || third.LLCMPKI != 5 {
		t.Fatalf("third sample rates = %+v", third)
	}
	if third.VictimsPerMinst != 4000 {
		t.Errorf("victims/Minst = %v", third.VictimsPerMinst)
	}
	if s.TotalInclusionVictims() != 7 {
		t.Errorf("total victims = %d", s.TotalInclusionVictims())
	}
}

func TestNewSamplerZeroIsNil(t *testing.T) {
	if s := NewSampler(0); s != nil {
		t.Fatal("zero interval did not yield nil sampler")
	}
	var s *Sampler
	if s.Samples() != nil || s.TotalInclusionVictims() != 0 {
		t.Fatal("nil sampler accessors not safe")
	}
}

func TestSamplerWriters(t *testing.T) {
	s := NewSampler(100)
	s.Observe(0, 100, 200, 5, 1, 0.25)
	s.Observe(0, 200, 400, 9, 2, 0.5)

	var csv strings.Builder
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "interval,core,instructions") {
		t.Fatalf("csv = %q", csv.String())
	}

	var jsonl strings.Builder
	if err := s.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	var back Sample
	if err := json.Unmarshal([]byte(strings.Split(jsonl.String(), "\n")[0]), &back); err != nil {
		t.Fatal(err)
	}
	if back.Instructions != 100 || back.InclusionVictims != 1 {
		t.Fatalf("jsonl round-trip = %+v", back)
	}

	prefix := filepath.Join(t.TempDir(), "sub", "run-intervals")
	if err := s.WritePair(prefix); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{".csv", ".jsonl"} {
		if b, err := os.ReadFile(prefix + ext); err != nil || len(b) == 0 {
			t.Errorf("%s: %v (%d bytes)", ext, err, len(b))
		}
	}
}

func TestJobDoneAndServeDebug(t *testing.T) {
	beforeJobs, beforeInstr := JobsCompleted(), InstructionsSimulated()
	JobDone(12345)
	if JobsCompleted() != beforeJobs+1 || InstructionsSimulated() != beforeInstr+12345 {
		t.Fatalf("JobDone counters: jobs %d->%d instr %d->%d",
			beforeJobs, JobsCompleted(), beforeInstr, InstructionsSimulated())
	}

	addr, srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	vars := get("/debug/vars")
	for _, want := range []string{"tla_jobs_completed", "tla_instructions_simulated", "tla_probe_events", "tla_events_per_second"} {
		if !strings.Contains(vars, want) {
			t.Errorf("/debug/vars missing %s", want)
		}
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ index unexpected: %.80s", body)
	}
}

func TestEventString(t *testing.T) {
	seen := map[string]bool{}
	for e := Event(0); e < numEvents; e++ {
		name := e.String()
		if name == "" || strings.HasPrefix(name, "event(") || seen[name] {
			t.Fatalf("event %d name %q", e, name)
		}
		seen[name] = true
	}
	if got := Event(200).String(); got != fmt.Sprintf("event(%d)", 200) {
		t.Errorf("unknown event = %q", got)
	}
}

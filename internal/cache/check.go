package cache

import (
	"fmt"

	"tlacache/internal/replacement"
)

// CheckConsistency verifies the cache's structural self-consistency:
// every valid line is aligned and stored in its home set, no set holds
// the same line twice, and — when the replacement policy implements
// replacement.Checker — the per-set replacement metadata is
// well-formed. The audit mode (internal/hierarchy's Auditor) calls
// this for every cache in the hierarchy; it is O(lines x assoc).
func (c *Cache) CheckConsistency() error {
	checker, _ := c.policy.(replacement.Checker)
	for s := range c.sets {
		ways := c.sets[s]
		for w := range ways {
			l := ways[w]
			if !l.Valid {
				continue
			}
			if l.Addr != c.LineAddr(l.Addr) {
				return fmt.Errorf("cache %s: set %d way %d holds unaligned address %#x",
					c.cfg.Name, s, w, l.Addr)
			}
			if home := c.SetIndex(l.Addr); home != s {
				return fmt.Errorf("cache %s: line %#x stored in set %d but maps to set %d",
					c.cfg.Name, l.Addr, s, home)
			}
			for v := 0; v < w; v++ {
				if ways[v].Valid && ways[v].Addr == l.Addr {
					return fmt.Errorf("cache %s: line %#x duplicated in set %d (ways %d and %d)",
						c.cfg.Name, l.Addr, s, v, w)
				}
			}
		}
		if checker != nil {
			if err := checker.CheckSet(s); err != nil {
				return fmt.Errorf("cache %s: %w", c.cfg.Name, err)
			}
		}
	}
	return nil
}

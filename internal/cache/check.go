package cache

import (
	"fmt"

	"tlacache/internal/replacement"
)

// CheckConsistency verifies the cache's structural self-consistency:
// every valid line is aligned and stored in its home set, no set holds
// the same line twice, and — when the replacement policy implements
// replacement.Checker — the per-set replacement metadata is
// well-formed. The audit mode (internal/hierarchy's Auditor) calls
// this for every cache in the hierarchy; it is O(lines x assoc).
func (c *Cache) CheckConsistency() error {
	checker, _ := c.policy.(replacement.Checker)
	for s := 0; s < c.numSets; s++ {
		base := s * c.assoc
		for w := 0; w < c.assoc; w++ {
			if c.tags[base+w] == invalidTag {
				// An empty way must carry no leftover line state: the
				// lookup scan trusts the tag word alone, so a stale
				// dirty bit or presence mask here would silently
				// resurface with the next fill.
				if c.flags[base+w] != 0 {
					return fmt.Errorf("cache %s: set %d way %d is empty but has flags %#x",
						c.cfg.Name, s, w, c.flags[base+w])
				}
				if c.presenceAtIndex(base+w) != 0 {
					return fmt.Errorf("cache %s: set %d way %d is empty but has presence %#x",
						c.cfg.Name, s, w, c.presenceAtIndex(base+w))
				}
				continue
			}
			addr := c.tags[base+w]
			if addr != c.LineAddr(addr) {
				return fmt.Errorf("cache %s: set %d way %d holds unaligned address %#x",
					c.cfg.Name, s, w, addr)
			}
			if home := c.SetIndex(addr); home != s {
				return fmt.Errorf("cache %s: line %#x stored in set %d but maps to set %d",
					c.cfg.Name, addr, s, home)
			}
			for v := 0; v < w; v++ {
				if c.tags[base+v] == addr {
					return fmt.Errorf("cache %s: line %#x duplicated in set %d (ways %d and %d)",
						c.cfg.Name, addr, s, v, w)
				}
			}
		}
		if checker != nil {
			if err := checker.CheckSet(s); err != nil {
				return fmt.Errorf("cache %s: %w", c.cfg.Name, err)
			}
		}
	}
	return nil
}

package cache

import "testing"

func benchCache(b *testing.B) *Cache {
	b.Helper()
	c, err := New(Config{Name: "bench", Size: 32 << 10, Assoc: 8, LineSize: 64, Policy: 0})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkLookupSameLine models the instruction-fetch pattern: many
// consecutive references to one line (the lookup filter's best case).
func BenchmarkLookupSameLine(b *testing.B) {
	c := benchCache(b)
	c.Fill(0x1000, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := c.Lookup(0x1000 + uint64(i)%64); !ok {
			b.Fatal("expected hit")
		}
	}
}

// BenchmarkLookupStride models a data stream touching a new line each
// access (the filter's worst case: every lookup falls through to the
// set scan).
func BenchmarkLookupStride(b *testing.B) {
	c := benchCache(b)
	const lines = 512
	for i := 0; i < lines; i++ {
		c.Fill(uint64(i)*64, 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i%lines) * 64)
	}
}

// BenchmarkFillEvict exercises the fill/evict path with a footprint
// twice the cache capacity.
func BenchmarkFillEvict(b *testing.B) {
	c := benchCache(b)
	lines := 2 * c.NumSets() * c.Config().Assoc
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Fill(uint64(i%lines)*64, 0)
	}
}

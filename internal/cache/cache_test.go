package cache

import (
	"testing"
	"testing/quick"

	"tlacache/internal/replacement"
)

func tiny(t *testing.T, size int64, assoc int, pol replacement.Kind) *Cache {
	t.Helper()
	c, err := New(Config{Name: "T", Size: size, Assoc: assoc, LineSize: 64, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadGeometry(t *testing.T) {
	cases := []Config{
		{Name: "odd-line", Size: 1024, Assoc: 4, LineSize: 48, Policy: replacement.LRU},
		{Name: "zero-line", Size: 1024, Assoc: 4, LineSize: 0, Policy: replacement.LRU},
		{Name: "zero-assoc", Size: 1024, Assoc: 0, LineSize: 64, Policy: replacement.LRU},
		{Name: "indivisible", Size: 1000, Assoc: 4, LineSize: 64, Policy: replacement.LRU},
		{Name: "non-pow2-sets", Size: 3 * 64 * 4, Assoc: 4, LineSize: 64, Policy: replacement.LRU},
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted invalid geometry %+v", cfg.Name, cfg)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid config")
		}
	}()
	MustNew(Config{Size: 7})
}

func TestAddressMapping(t *testing.T) {
	c := tiny(t, 4096, 4, replacement.LRU) // 16 sets x 4 ways x 64B
	if c.NumSets() != 16 {
		t.Fatalf("NumSets = %d, want 16", c.NumSets())
	}
	if got := c.LineAddr(0x12345); got != 0x12340 {
		t.Errorf("LineAddr(0x12345) = %#x, want 0x12340", got)
	}
	if got := c.SetIndex(0x12345); got != int(0x12345>>6&15) {
		t.Errorf("SetIndex = %d", got)
	}
	// Two addresses on the same line map to the same set/way.
	c.Fill(0x1000, 0)
	if !c.Contains(0x103f) {
		t.Error("address on same line not found after fill")
	}
	if c.Contains(0x1040) {
		t.Error("next line reported present")
	}
}

// TestAddressMappingBoundaries pins LineAddr and SetIndex at the edges
// of the 64-bit address space: both are pure bit arithmetic and must be
// total — no overflow, no out-of-range set — and a line at the very top
// must be fillable, findable, and invalidatable like any other.
func TestAddressMappingBoundaries(t *testing.T) {
	c := tiny(t, 4096, 4, replacement.LRU) // 16 sets x 4 ways x 64B
	top := ^uint64(0)
	if got := c.LineAddr(top); got != top&^63 {
		t.Errorf("LineAddr(max) = %#x, want %#x", got, top&^63)
	}
	if got := c.LineAddr(0); got != 0 {
		t.Errorf("LineAddr(0) = %#x, want 0", got)
	}
	for _, addr := range []uint64{0, 63, 64, top, top &^ 63, top - 64} {
		if s := c.SetIndex(addr); s < 0 || s >= c.NumSets() {
			t.Fatalf("SetIndex(%#x) = %d, outside [0,%d)", addr, s, c.NumSets())
		}
	}
	c.Fill(top, 0)
	if !c.Contains(top &^ 63) {
		t.Fatal("line at top of address space not found after fill")
	}
	if c.Contains(top&^63 - 64) {
		t.Fatal("neighbouring line reported present")
	}
	if _, ok := c.Invalidate(top); !ok {
		t.Fatal("line at top of address space not invalidatable")
	}
	if c.CountValid() != 0 {
		t.Fatalf("CountValid = %d after invalidate", c.CountValid())
	}
}

func TestFillEvictsLRUVictim(t *testing.T) {
	c := tiny(t, 64*2, 2, replacement.LRU) // 1 set x 2 ways
	c.Fill(0x0, 0)
	c.Fill(0x40, 0)
	c.Touch(0x0) // make 0x40 the LRU line
	victim, evicted := c.Fill(0x80, 0)
	if !evicted || victim.Addr != 0x40 {
		t.Fatalf("victim = %+v evicted=%v, want line 0x40", victim, evicted)
	}
	if !c.Contains(0x0) || !c.Contains(0x80) || c.Contains(0x40) {
		t.Fatal("cache contents wrong after eviction")
	}
	if c.Stats.Fills != 3 || c.Stats.Evictions != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestFillPrefersInvalidWays(t *testing.T) {
	c := tiny(t, 64*4, 4, replacement.LRU)
	for i := 0; i < 4; i++ {
		if _, evicted := c.Fill(uint64(i)*0x40, 0); evicted {
			t.Fatalf("fill %d evicted despite invalid ways remaining", i)
		}
	}
	if _, evicted := c.Fill(0x100, 0); !evicted {
		t.Fatal("fill into full set did not evict")
	}
}

func TestInvalidateFreesWayForReuse(t *testing.T) {
	c := tiny(t, 64*2, 2, replacement.LRU)
	c.Fill(0x0, 0)
	c.Fill(0x40, 0)
	line, ok := c.Invalidate(0x0)
	if !ok || line.Addr != 0x0 {
		t.Fatalf("Invalidate returned %+v, %v", line, ok)
	}
	if c.Stats.Invalidations != 1 {
		t.Fatalf("Invalidations = %d", c.Stats.Invalidations)
	}
	// Next fill must reuse the hole rather than evicting 0x40.
	if _, evicted := c.Fill(0x80, 0); evicted {
		t.Fatal("fill evicted a valid line while an invalid way existed")
	}
	if !c.Contains(0x40) {
		t.Fatal("line 0x40 lost")
	}
	if _, ok := c.Invalidate(0x999); ok {
		t.Fatal("Invalidate of absent line reported success")
	}
}

func TestDirtyTracking(t *testing.T) {
	c := tiny(t, 64*2, 2, replacement.LRU)
	c.Fill(0x0, 0)
	if !c.SetDirty(0x0) {
		t.Fatal("SetDirty on present line failed")
	}
	if c.SetDirty(0x40) {
		t.Fatal("SetDirty on absent line succeeded")
	}
	c.Fill(0x40, 0)
	c.Touch(0x40) // victim is 0x0 (dirty)
	victim, evicted := c.Fill(0x80, 0)
	if !evicted || !victim.Dirty {
		t.Fatalf("dirty victim not reported: %+v", victim)
	}
	if c.Stats.DirtyEvicts != 1 {
		t.Fatalf("DirtyEvicts = %d", c.Stats.DirtyEvicts)
	}
}

func TestPresenceBits(t *testing.T) {
	c := tiny(t, 64*4, 4, replacement.NRU)
	c.Fill(0x0, 1<<2)
	if got := c.Presence(0x0); got != 1<<2 {
		t.Fatalf("Presence = %b, want 100", got)
	}
	c.AddPresence(0x0, 0)
	if got := c.Presence(0x0); got != 1<<2|1 {
		t.Fatalf("Presence = %b, want 101", got)
	}
	if !c.ClearPresence(0x0) {
		t.Fatal("ClearPresence failed on present line")
	}
	if got := c.Presence(0x0); got != 0 {
		t.Fatalf("Presence after clear = %b", got)
	}
	if c.AddPresence(0xF00, 1) || c.ClearPresence(0xF00) {
		t.Fatal("presence ops on absent line reported success")
	}
	if got := c.Presence(0xF00); got != 0 {
		t.Fatalf("Presence of absent line = %b", got)
	}
}

func TestProbeDoesNotPerturbReplacement(t *testing.T) {
	c := tiny(t, 64*2, 2, replacement.LRU)
	c.Fill(0x0, 0)
	c.Fill(0x40, 0) // LRU order: 0x40 MRU, 0x0 LRU
	c.Probe(0x0)    // must NOT promote
	victim, _ := c.Fill(0x80, 0)
	if victim.Addr != 0x0 {
		t.Fatalf("Probe perturbed replacement state; victim = %#x", victim.Addr)
	}
}

func TestPeekAndPromote(t *testing.T) {
	c := tiny(t, 64*2, 2, replacement.LRU)
	c.Fill(0x0, 0)
	c.Fill(0x40, 0)
	set := c.SetIndex(0x0)
	if v := c.PeekVictim(set); v.Addr != 0x0 {
		t.Fatalf("PeekVictim = %#x, want 0x0", v.Addr)
	}
	// Promote the victim (the QBS "line is resident" path); the other
	// line becomes the victim.
	c.PromoteWay(set, c.VictimWay(set))
	if v := c.PeekVictim(set); v.Addr != 0x40 {
		t.Fatalf("PeekVictim after promote = %#x, want 0x40", v.Addr)
	}
	c.DemoteWay(set, 0)
	if v := c.VictimWay(set); c.Line(set, v).Addr != 0x0 {
		t.Fatalf("DemoteWay did not take effect")
	}
}

func TestForEachValidAndReset(t *testing.T) {
	c := tiny(t, 4096, 4, replacement.LRU)
	for i := 0; i < 10; i++ {
		c.Fill(uint64(i)*64, 0)
	}
	if got := c.CountValid(); got != 10 {
		t.Fatalf("CountValid = %d, want 10", got)
	}
	sum := uint64(0)
	c.ForEachValid(func(l Line) { sum += l.Addr })
	if want := uint64(64 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9)); sum != want {
		t.Fatalf("sum of valid addrs = %d, want %d", sum, want)
	}
	c.Reset()
	if c.CountValid() != 0 || c.Stats.Fills != 0 {
		t.Fatal("Reset did not clear contents and stats")
	}
}

// refCache is a reference model: a map from line address to dirty bit
// plus an exact LRU list per set, capped at assoc lines per set.
type refCache struct {
	lineSize uint64
	numSets  uint64
	assoc    int
	sets     map[uint64][]uint64 // set -> line addrs, MRU first
	dirty    map[uint64]bool
}

func newRefCache(numSets uint64, assoc int) *refCache {
	return &refCache{
		lineSize: 64, numSets: numSets, assoc: assoc,
		sets:  make(map[uint64][]uint64),
		dirty: make(map[uint64]bool),
	}
}

func (r *refCache) set(addr uint64) uint64  { return addr / r.lineSize % r.numSets }
func (r *refCache) line(addr uint64) uint64 { return addr / r.lineSize * r.lineSize }

func (r *refCache) contains(addr uint64) bool {
	la := r.line(addr)
	for _, a := range r.sets[r.set(addr)] {
		if a == la {
			return true
		}
	}
	return false
}

func (r *refCache) touch(addr uint64) {
	la, s := r.line(addr), r.set(addr)
	lst := r.sets[s]
	for i, a := range lst {
		if a == la {
			copy(lst[1:i+1], lst[:i])
			lst[0] = la
			return
		}
	}
}

func (r *refCache) fill(addr uint64) (victim uint64, evicted bool) {
	la, s := r.line(addr), r.set(addr)
	lst := r.sets[s]
	if len(lst) == r.assoc {
		victim, evicted = lst[len(lst)-1], true
		delete(r.dirty, victim)
		lst = lst[:len(lst)-1]
	}
	r.sets[s] = append([]uint64{la}, lst...)
	return victim, evicted
}

func (r *refCache) invalidate(addr uint64) bool {
	la, s := r.line(addr), r.set(addr)
	lst := r.sets[s]
	for i, a := range lst {
		if a == la {
			r.sets[s] = append(lst[:i], lst[i+1:]...)
			delete(r.dirty, la)
			return true
		}
	}
	return false
}

// TestCacheMatchesReferenceModel drives an LRU cache and the map-based
// reference with identical random access streams; containment, victims,
// and dirty bits must agree at every step.
func TestCacheMatchesReferenceModel(t *testing.T) {
	f := func(ops []uint32) bool {
		c := MustNew(Config{Name: "dut", Size: 64 * 4 * 8, Assoc: 4, LineSize: 64, Policy: replacement.LRU})
		ref := newRefCache(8, 4)
		for _, op := range ops {
			addr := uint64(op % 4096)
			switch op % 5 {
			case 0, 1: // access: touch on hit, fill on miss
				if c.Contains(addr) != ref.contains(addr) {
					return false
				}
				if c.Contains(addr) {
					c.Touch(addr)
					ref.touch(addr)
				} else {
					v, ev := c.Fill(addr, 0)
					rv, rev := ref.fill(addr)
					if ev != rev || (ev && v.Addr != rv) {
						return false
					}
				}
			case 2: // store
				got := c.SetDirty(addr)
				want := ref.contains(addr)
				if got != want {
					return false
				}
				if want {
					ref.dirty[ref.line(addr)] = true
					c.Touch(addr)
					ref.touch(addr)
				}
			case 3: // invalidate
				_, got := c.Invalidate(addr)
				if got != ref.invalidate(addr) {
					return false
				}
			case 4: // probe
				if c.Contains(addr) != ref.contains(addr) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestNoDuplicateLines: a line address never occupies two ways at once,
// under any access pattern and policy.
func TestNoDuplicateLines(t *testing.T) {
	for _, pol := range []replacement.Kind{replacement.LRU, replacement.NRU, replacement.SRRIP, replacement.Random} {
		pol := pol
		f := func(ops []uint16) bool {
			c := MustNew(Config{Name: "dut", Size: 64 * 4 * 4, Assoc: 4, LineSize: 64, Policy: pol})
			for _, op := range ops {
				addr := uint64(op % 2048)
				if !c.Touch(addr) {
					c.Fill(addr, 0)
				}
				seen := map[uint64]bool{}
				dup := false
				c.ForEachValid(func(l Line) {
					if seen[l.Addr] {
						dup = true
					}
					seen[l.Addr] = true
				})
				if dup {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
			t.Errorf("%v: %v", pol, err)
		}
	}
}

package cache

import (
	"strings"
	"testing"

	"tlacache/internal/replacement"
)

// TestCheckConsistencyClean fills a cache through the public API and
// expects no findings: legitimate operation cannot trip the checker.
func TestCheckConsistencyClean(t *testing.T) {
	for _, pol := range []replacement.Kind{replacement.LRU, replacement.NRU, replacement.SRRIP} {
		c := tiny(t, 1024, 4, pol)
		for addr := uint64(0); addr < 4096; addr += 64 {
			c.Fill(addr, 0)
			c.Touch(addr / 2 * 2)
		}
		if err := c.CheckConsistency(); err != nil {
			t.Errorf("%v: %v", pol, err)
		}
	}
}

// TestCheckConsistencyDuplicate plants one address in two ways of the
// same set via FillWay, the low-level entry a buggy caller could
// misuse.
func TestCheckConsistencyDuplicate(t *testing.T) {
	c := tiny(t, 512, 2, replacement.LRU)
	c.FillWay(0, 0, 0, 0)
	c.FillWay(0, 1, 0, 0)
	err := c.CheckConsistency()
	if err == nil || !strings.Contains(err.Error(), "duplicated") {
		t.Fatalf("duplicate line not reported: %v", err)
	}
}

// TestCheckConsistencyMisplaced plants a line in a set its address
// does not map to.
func TestCheckConsistencyMisplaced(t *testing.T) {
	c := tiny(t, 512, 2, replacement.LRU)
	if c.SetIndex(64) == 0 {
		t.Fatal("test needs address 64 to map outside set 0")
	}
	c.FillWay(0, 0, 64, 0)
	err := c.CheckConsistency()
	if err == nil || !strings.Contains(err.Error(), "maps to set") {
		t.Fatalf("misplaced line not reported: %v", err)
	}
}

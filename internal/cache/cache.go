// Package cache implements the set-associative cache structure shared by
// every level of the simulated hierarchy. It is a pure mechanism: tags,
// validity, dirty bits, per-line presence (directory) bits, and pluggable
// replacement state. Policy decisions — inclusion, back-invalidation,
// temporal-locality hints, query based selection — live in
// internal/hierarchy, which drives caches through the low-level
// operations exposed here.
//
// Line state is held struct-of-arrays style in flat backing slices
// indexed set*assoc+way: Probe scans one contiguous row of line
// addresses, which is the single hottest loop in the simulator. The
// replacement policy is devirtualized for the three policies every
// paper configuration uses (LRU, NRU, SRRIP): when the cache's policy
// is exactly one of those concrete types, hot-path calls go straight to
// the concrete methods instead of through the Policy interface. Other
// policies (DIP/DRRIP/Random/...) still work through the interface.
package cache

import (
	"fmt"
	"math/bits"

	"tlacache/internal/replacement"
)

// Line is one cache line's bookkeeping state. Addr is the line-aligned
// physical address (we store the full address rather than a tag so that
// victims and back-invalidations can be expressed in terms of addresses
// without reconstructing them from set/tag pairs). Line is the
// copy-out view the cache returns; internally the same state lives in
// flat per-field arrays.
type Line struct {
	Addr     uint64
	Valid    bool
	Dirty    bool
	Presence uint64 // LLC directory: bit c set => core c may hold the line
}

// flags bits for the per-line metadata byte. Validity is not a flag:
// an invalid way holds invalidTag in the tag array (see below), so the
// lookup scan needs only the tag word.
const (
	flagDirty uint8 = 1 << iota
)

// invalidTag marks an empty way directly in the tag array. Real tags
// are line-aligned addresses and the line size is at least two bytes,
// so an odd value can never match a lookup; this lets the hot lookup
// scan compare tags alone instead of also loading and testing a
// validity bit per way.
const invalidTag uint64 = 1

// Config describes a cache's geometry and replacement policy.
type Config struct {
	Name     string // for error messages and stats dumps, e.g. "L1D"
	Size     int64  // total capacity in bytes
	Assoc    int    // ways per set
	LineSize int64  // bytes per line; must match across a hierarchy
	Policy   replacement.Kind
}

// Stats counts the structural events a cache observes. Access-level
// hit/miss accounting lives in the hierarchy, which knows about demand
// vs. prefetch vs. hint traffic; these counters cover what only the
// cache itself can see.
type Stats struct {
	Fills         uint64 // lines allocated
	Evictions     uint64 // valid lines displaced by fills
	DirtyEvicts   uint64 // evictions that required a writeback
	Invalidations uint64 // valid lines removed by Invalidate
}

// Cache is a set-associative cache. It is not safe for concurrent use;
// the simulator is single-goroutine by design (determinism).
type Cache struct {
	//tlavet:resetexempt immutable configuration, identical for every reuse
	cfg Config
	//tlavet:resetexempt geometry derived from cfg at construction
	numSets int
	//tlavet:resetexempt geometry derived from cfg at construction
	assoc int
	//tlavet:resetexempt geometry derived from cfg at construction
	offBits uint
	//tlavet:resetexempt geometry derived from cfg at construction
	setMask uint64

	// Struct-of-arrays line state, indexed set*assoc+way. tags holds
	// the line-aligned address of a resident line or invalidTag for an
	// empty way; flags carries the dirty bit and is zero for empty ways.
	tags     []uint64
	flags    []uint8
	presence []uint64 // nil until the first non-zero presence write

	policy replacement.Policy
	// Devirtualized fast paths: exactly one is non-nil when the policy's
	// concrete type is the matching one; all nil otherwise (interface
	// dispatch fallback).
	lru   *replacement.LRUStack
	nru   *replacement.NRUBits
	srrip *replacement.SRRIPTable

	//tlavet:resetexempt geometry derived from cfg at construction
	numLines int

	// One-entry lookup filter: the line address, set, and way of the
	// most recent Lookup hit. Sequential instruction fetch and strided
	// data streams reference the same line many times in a row, and the
	// filter turns those repeats into one tag compare instead of a set
	// scan. Entries are re-verified against the tag array on use, so
	// the filter never needs invalidating: a displaced or invalidated
	// line fails verification and falls through to the scan.
	lastLA  uint64
	lastSet int32
	lastWay int32

	Stats Stats
}

// New builds a cache from cfg. It returns an error when the geometry is
// inconsistent (sizes not powers of two, capacity not divisible into
// sets, and so on) so that configuration mistakes surface immediately.
func New(cfg Config) (*Cache, error) {
	if cfg.LineSize < 2 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		return nil, fmt.Errorf("cache %s: line size %d is not a power of two >= 2", cfg.Name, cfg.LineSize)
	}
	if cfg.Assoc <= 0 {
		return nil, fmt.Errorf("cache %s: associativity %d must be positive", cfg.Name, cfg.Assoc)
	}
	if cfg.Size <= 0 || cfg.Size%(cfg.LineSize*int64(cfg.Assoc)) != 0 {
		return nil, fmt.Errorf("cache %s: size %d is not a multiple of assoc %d x line %d",
			cfg.Name, cfg.Size, cfg.Assoc, cfg.LineSize)
	}
	numSets := int(cfg.Size / (cfg.LineSize * int64(cfg.Assoc)))
	if numSets&(numSets-1) != 0 {
		return nil, fmt.Errorf("cache %s: %d sets is not a power of two", cfg.Name, numSets)
	}
	c := &Cache{
		cfg:      cfg,
		numSets:  numSets,
		assoc:    cfg.Assoc,
		offBits:  uint(bits.TrailingZeros64(uint64(cfg.LineSize))),
		setMask:  uint64(numSets - 1),
		numLines: numSets * cfg.Assoc,
	}
	c.tags = make([]uint64, c.numLines)
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	c.flags = make([]uint8, c.numLines)
	// presence is allocated lazily on the first non-zero mask: only the
	// LLC maintains directory bits, so the L1/L2 instances of a
	// hierarchy never pay for the array.
	c.setPolicy(replacement.New(cfg.Policy, numSets, cfg.Assoc))
	return c, nil
}

// setPolicy installs p and re-derives the devirtualization pointers.
func (c *Cache) setPolicy(p replacement.Policy) {
	c.policy = p
	c.lru, c.nru, c.srrip = nil, nil, nil
	switch cp := p.(type) {
	case *replacement.LRUStack:
		c.lru = cp
	case *replacement.NRUBits:
		c.nru = cp
	case *replacement.SRRIPTable:
		c.srrip = cp
	}
}

// MustNew is New for static configurations known to be valid; it panics
// on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(fmt.Sprintf("cache: MustNew: %v", err))
	}
	return c
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// LineAddr returns addr rounded down to its line boundary. It is a pure
// mask, so it is well defined for every addr including the top of the
// 64-bit address space.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.offBits << c.offBits }

// SetIndex returns the set addr maps to. Like LineAddr it is pure bit
// arithmetic and total over the full address space.
func (c *Cache) SetIndex(addr uint64) int { return int(addr >> c.offBits & c.setMask) }

// policyTouch promotes (set, way) in the replacement order via the
// devirtualized fast path when available.
func (c *Cache) policyTouch(set, way int) {
	if c.lru != nil {
		c.lru.Touch(set, way)
		return
	}
	if c.nru != nil {
		c.nru.Touch(set, way)
		return
	}
	if c.srrip != nil {
		c.srrip.Touch(set, way)
		return
	}
	c.policy.Touch(set, way)
}

func (c *Cache) policyInsert(set, way int) {
	if c.lru != nil {
		c.lru.Insert(set, way)
		return
	}
	if c.nru != nil {
		c.nru.Insert(set, way)
		return
	}
	if c.srrip != nil {
		c.srrip.Insert(set, way)
		return
	}
	c.policy.Insert(set, way)
}

func (c *Cache) policyDemote(set, way int) {
	if c.lru != nil {
		c.lru.Demote(set, way)
		return
	}
	if c.nru != nil {
		c.nru.Demote(set, way)
		return
	}
	if c.srrip != nil {
		c.srrip.Demote(set, way)
		return
	}
	c.policy.Demote(set, way)
}

func (c *Cache) policyVictim(set int) int {
	if c.lru != nil {
		return c.lru.Victim(set)
	}
	if c.nru != nil {
		return c.nru.Victim(set)
	}
	if c.srrip != nil {
		return c.srrip.Victim(set)
	}
	return c.policy.Victim(set)
}

// Lookup resolves addr to its home set and, when the line is resident,
// its way. It performs the line-addr/set computation exactly once, so
// the hierarchy can probe a cache a single time per access and then use
// the ...At methods with the returned coordinates. It never modifies
// state.
func (c *Cache) Lookup(addr uint64) (set, way int, ok bool) {
	la := addr >> c.offBits << c.offBits
	if la == c.lastLA {
		// Filter hit candidate: verify against the tag array. A valid
		// matching tag can only live in la's home set (fills store a
		// line in its home set and lines never move between ways), so a
		// verified entry is correct even if the filter is stale. This
		// path is small enough to inline at every call site; the set
		// scan is outlined.
		if c.tags[int(c.lastSet)*c.assoc+int(c.lastWay)] == la {
			return int(c.lastSet), int(c.lastWay), true
		}
	}
	return c.scan(la)
}

// scan is the filter-miss half of Lookup: a linear probe of la's home
// set that records a hit in the lookup filter. Empty ways hold
// invalidTag, which never equals a line address, so the tag compare
// alone decides residency.
func (c *Cache) scan(la uint64) (set, way int, ok bool) {
	set = int(la >> c.offBits & c.setMask)
	base := set * c.assoc
	tags := c.tags[base : base+c.assoc]
	for w := range tags {
		if tags[w] == la {
			c.lastLA, c.lastSet, c.lastWay = la, int32(set), int32(w)
			return set, w, true
		}
	}
	return set, 0, false
}

// Probe looks addr up without touching replacement state or statistics.
// It returns the way holding the line and true, or false when absent.
func (c *Cache) Probe(addr uint64) (way int, ok bool) {
	_, way, ok = c.Lookup(addr)
	return way, ok
}

// Contains reports whether addr's line is present and valid.
func (c *Cache) Contains(addr uint64) bool {
	_, _, ok := c.Lookup(addr)
	return ok
}

// Touch promotes the line holding addr in the replacement order, as on
// a hit or a temporal-locality hint. It reports whether the line was
// present.
func (c *Cache) Touch(addr uint64) bool {
	set, way, ok := c.Lookup(addr)
	if !ok {
		return false
	}
	c.policyTouch(set, way)
	return true
}

// Line returns a copy of the line at (set, way).
func (c *Cache) Line(set, way int) Line {
	i := set*c.assoc + way
	if c.tags[i] == invalidTag {
		return Line{}
	}
	return Line{
		Addr:     c.tags[i],
		Valid:    true,
		Dirty:    c.flags[i]&flagDirty != 0,
		Presence: c.presenceAtIndex(i),
	}
}

// presenceAtIndex reads a presence mask, tolerating the lazily
// unallocated state.
func (c *Cache) presenceAtIndex(i int) uint64 {
	if c.presence == nil {
		return 0
	}
	return c.presence[i]
}

// ensurePresence allocates the presence array on first use.
func (c *Cache) ensurePresence() {
	if c.presence == nil {
		//tlavet:allow hotpath one-time lazy allocation, amortised to zero over a run
		c.presence = make([]uint64, c.numLines)
	}
}

// SetDirty marks addr's line dirty (a store hit). It reports whether the
// line was present.
func (c *Cache) SetDirty(addr uint64) bool {
	set, way, ok := c.Lookup(addr)
	if !ok {
		return false
	}
	c.flags[set*c.assoc+way] |= flagDirty
	return true
}

// SetDirtyAt marks the line at (set, way) dirty. The coordinates must
// come from a successful Lookup.
func (c *Cache) SetDirtyAt(set, way int) { c.flags[set*c.assoc+way] |= flagDirty }

// VictimWay returns the way that would be evicted next from set:
// an invalid way when one exists (lowest index first), otherwise the
// replacement policy's choice. It does not modify any state.
func (c *Cache) VictimWay(set int) int {
	base := set * c.assoc
	tags := c.tags[base : base+c.assoc]
	for w := range tags {
		if tags[w] == invalidTag {
			return w
		}
	}
	return c.policyVictim(set)
}

// PeekVictim returns a copy of the line VictimWay would displace.
func (c *Cache) PeekVictim(set int) Line { return c.Line(set, c.VictimWay(set)) }

// WayRank returns the replacement policy's eviction-preference rank for
// (set, way) — 0 most protected, larger closer to eviction (see
// replacement.Ranker) — or telemetry.RankUnknown (0xFF) when the policy
// exposes no per-way rank. Read-only; used by decision tracing to
// snapshot candidate state.
func (c *Cache) WayRank(set, way int) uint8 {
	if c.lru != nil {
		return c.lru.WayRank(set, way)
	}
	if c.nru != nil {
		return c.nru.WayRank(set, way)
	}
	if c.srrip != nil {
		return c.srrip.WayRank(set, way)
	}
	if r, ok := c.policy.(replacement.Ranker); ok {
		return r.WayRank(set, way)
	}
	return rankUnknown
}

// rankUnknown mirrors telemetry.RankUnknown; duplicated here because
// the cache package sits below telemetry in the dependency order.
const rankUnknown uint8 = 0xFF

// PromoteWay moves (set, way) to the most-protected replacement
// position. Used by QBS when a query finds the candidate resident in a
// core cache, and by hit handling when the line's set/way is already
// known from Lookup.
func (c *Cache) PromoteWay(set, way int) { c.policyTouch(set, way) }

// DemoteWay marks (set, way) as the next victim candidate.
func (c *Cache) DemoteWay(set, way int) { c.policyDemote(set, way) }

// Fill allocates addr's line into the cache, evicting the current
// victim if the set is full. It returns the displaced line (evicted
// reports whether it was valid). The new line is inserted clean with
// the given presence mask; callers mark it dirty separately when the
// triggering access is a store.
func (c *Cache) Fill(addr uint64, presence uint64) (victim Line, evicted bool) {
	set := c.SetIndex(addr)
	way := c.VictimWay(set)
	return c.FillWay(set, way, addr, presence)
}

// FillWay allocates addr's line into a specific way of set, returning
// the displaced line. The hierarchy uses this when victim selection has
// already been performed (e.g. after a QBS query chain).
func (c *Cache) FillWay(set, way int, addr uint64, presence uint64) (victim Line, evicted bool) {
	i := set*c.assoc + way
	if c.tags[i] != invalidTag {
		evicted = true
		victim = Line{Addr: c.tags[i], Valid: true, Dirty: c.flags[i]&flagDirty != 0, Presence: c.presenceAtIndex(i)}
		c.Stats.Evictions++
		if victim.Dirty {
			c.Stats.DirtyEvicts++
		}
	}
	c.tags[i] = addr >> c.offBits << c.offBits
	c.flags[i] = 0
	if c.presence != nil {
		c.presence[i] = presence
	} else if presence != 0 {
		c.ensurePresence()
		c.presence[i] = presence
	}
	c.policyInsert(set, way)
	c.Stats.Fills++
	return victim, evicted
}

// Invalidate removes addr's line if present and returns a copy of it.
// Replacement state for the way is demoted so the hole is reused first.
func (c *Cache) Invalidate(addr uint64) (line Line, ok bool) {
	set, way, found := c.Lookup(addr)
	if !found {
		return Line{}, false
	}
	return c.InvalidateAt(set, way), true
}

// InvalidateAt removes the valid line at (set, way) — coordinates from
// a successful Lookup — and returns a copy of it.
func (c *Cache) InvalidateAt(set, way int) Line {
	i := set*c.assoc + way
	line := Line{Addr: c.tags[i], Valid: true, Dirty: c.flags[i]&flagDirty != 0, Presence: c.presenceAtIndex(i)}
	c.tags[i], c.flags[i] = invalidTag, 0
	if c.presence != nil {
		c.presence[i] = 0
	}
	c.policyDemote(set, way)
	c.Stats.Invalidations++
	return line
}

// Presence returns the presence mask of addr's line (0 when absent).
func (c *Cache) Presence(addr uint64) uint64 {
	set, way, ok := c.Lookup(addr)
	if !ok {
		return 0
	}
	return c.presenceAtIndex(set*c.assoc + way)
}

// PresenceAt returns the presence mask of the line at (set, way).
func (c *Cache) PresenceAt(set, way int) uint64 { return c.presenceAtIndex(set*c.assoc + way) }

// AddPresence ORs bit core into addr's presence mask. It reports whether
// the line was present.
func (c *Cache) AddPresence(addr uint64, core int) bool {
	set, way, ok := c.Lookup(addr)
	if !ok {
		return false
	}
	c.ensurePresence()
	c.presence[set*c.assoc+way] |= 1 << uint(core)
	return true
}

// AddPresenceAt ORs bit core into the presence mask at (set, way).
func (c *Cache) AddPresenceAt(set, way, core int) {
	c.ensurePresence()
	c.presence[set*c.assoc+way] |= 1 << uint(core)
}

// ClearPresence zeroes addr's presence mask (used by ECI after early
// invalidating a line from the core caches while retaining it in the
// LLC). It reports whether the line was present.
func (c *Cache) ClearPresence(addr uint64) bool {
	set, way, ok := c.Lookup(addr)
	if !ok {
		return false
	}
	if c.presence != nil {
		c.presence[set*c.assoc+way] = 0
	}
	return true
}

// ForEachValid calls fn for every valid line. Iteration order is
// set-major, way-minor and deterministic.
func (c *Cache) ForEachValid(fn func(Line)) {
	for i := 0; i < c.numLines; i++ {
		if c.tags[i] != invalidTag {
			fn(Line{Addr: c.tags[i], Valid: true, Dirty: c.flags[i]&flagDirty != 0, Presence: c.presenceAtIndex(i)})
		}
	}
}

// CountValid returns the number of valid lines.
func (c *Cache) CountValid() int {
	n := 0
	for _, t := range c.tags {
		if t != invalidTag {
			n++
		}
	}
	return n
}

// Reset invalidates every line and zeroes statistics, preserving the
// geometry and replacement policy kind.
//
//tlavet:resetcover
func (c *Cache) Reset() {
	for i := range c.flags {
		c.tags[i], c.flags[i] = invalidTag, 0
	}
	for i := range c.presence {
		c.presence[i] = 0
	}
	c.lastLA, c.lastSet, c.lastWay = 0, 0, 0
	// Reuse the existing replacement state when the policy can reinit
	// in place; reconstructing policies on every warmup reset was a
	// measurable share of a run's allocations.
	if r, ok := c.policy.(replacement.StateResetter); ok {
		r.ResetState()
	} else {
		c.setPolicy(replacement.New(c.cfg.Policy, c.numSets, c.cfg.Assoc))
	}
	c.Stats = Stats{}
}

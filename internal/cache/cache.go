// Package cache implements the set-associative cache structure shared by
// every level of the simulated hierarchy. It is a pure mechanism: tags,
// validity, dirty bits, per-line presence (directory) bits, and pluggable
// replacement state. Policy decisions — inclusion, back-invalidation,
// temporal-locality hints, query based selection — live in
// internal/hierarchy, which drives caches through the low-level
// operations exposed here.
package cache

import (
	"fmt"
	"math/bits"

	"tlacache/internal/replacement"
)

// Line is one cache line's bookkeeping state. Addr is the line-aligned
// physical address (we store the full address rather than a tag so that
// victims and back-invalidations can be expressed in terms of addresses
// without reconstructing them from set/tag pairs).
type Line struct {
	Addr     uint64
	Valid    bool
	Dirty    bool
	Presence uint64 // LLC directory: bit c set => core c may hold the line
}

// Config describes a cache's geometry and replacement policy.
type Config struct {
	Name     string // for error messages and stats dumps, e.g. "L1D"
	Size     int64  // total capacity in bytes
	Assoc    int    // ways per set
	LineSize int64  // bytes per line; must match across a hierarchy
	Policy   replacement.Kind
}

// Stats counts the structural events a cache observes. Access-level
// hit/miss accounting lives in the hierarchy, which knows about demand
// vs. prefetch vs. hint traffic; these counters cover what only the
// cache itself can see.
type Stats struct {
	Fills         uint64 // lines allocated
	Evictions     uint64 // valid lines displaced by fills
	DirtyEvicts   uint64 // evictions that required a writeback
	Invalidations uint64 // valid lines removed by Invalidate
}

// Cache is a set-associative cache. It is not safe for concurrent use;
// the simulator is single-goroutine by design (determinism).
type Cache struct {
	cfg      Config
	numSets  int
	offBits  uint
	setMask  uint64
	sets     [][]Line
	policy   replacement.Policy
	numLines int

	Stats Stats
}

// New builds a cache from cfg. It returns an error when the geometry is
// inconsistent (sizes not powers of two, capacity not divisible into
// sets, and so on) so that configuration mistakes surface immediately.
func New(cfg Config) (*Cache, error) {
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		return nil, fmt.Errorf("cache %s: line size %d is not a positive power of two", cfg.Name, cfg.LineSize)
	}
	if cfg.Assoc <= 0 {
		return nil, fmt.Errorf("cache %s: associativity %d must be positive", cfg.Name, cfg.Assoc)
	}
	if cfg.Size <= 0 || cfg.Size%(cfg.LineSize*int64(cfg.Assoc)) != 0 {
		return nil, fmt.Errorf("cache %s: size %d is not a multiple of assoc %d x line %d",
			cfg.Name, cfg.Size, cfg.Assoc, cfg.LineSize)
	}
	numSets := int(cfg.Size / (cfg.LineSize * int64(cfg.Assoc)))
	if numSets&(numSets-1) != 0 {
		return nil, fmt.Errorf("cache %s: %d sets is not a power of two", cfg.Name, numSets)
	}
	c := &Cache{
		cfg:      cfg,
		numSets:  numSets,
		offBits:  uint(bits.TrailingZeros64(uint64(cfg.LineSize))),
		setMask:  uint64(numSets - 1),
		sets:     make([][]Line, numSets),
		policy:   replacement.New(cfg.Policy, numSets, cfg.Assoc),
		numLines: numSets * cfg.Assoc,
	}
	lines := make([]Line, c.numLines)
	for s := range c.sets {
		c.sets[s], lines = lines[:cfg.Assoc:cfg.Assoc], lines[cfg.Assoc:]
	}
	return c, nil
}

// MustNew is New for static configurations known to be valid; it panics
// on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(fmt.Sprintf("cache: MustNew: %v", err))
	}
	return c
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// LineAddr returns addr rounded down to its line boundary.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.offBits << c.offBits }

// SetIndex returns the set addr maps to.
func (c *Cache) SetIndex(addr uint64) int { return int(addr >> c.offBits & c.setMask) }

// Probe looks addr up without touching replacement state or statistics.
// It returns the way holding the line and true, or false when absent.
func (c *Cache) Probe(addr uint64) (way int, ok bool) {
	la := c.LineAddr(addr)
	set := c.sets[c.SetIndex(addr)]
	for w := range set {
		if set[w].Valid && set[w].Addr == la {
			return w, true
		}
	}
	return 0, false
}

// Contains reports whether addr's line is present and valid.
func (c *Cache) Contains(addr uint64) bool {
	_, ok := c.Probe(addr)
	return ok
}

// Touch promotes the line holding addr in the replacement order, as on
// a hit or a temporal-locality hint. It reports whether the line was
// present.
func (c *Cache) Touch(addr uint64) bool {
	way, ok := c.Probe(addr)
	if !ok {
		return false
	}
	c.policy.Touch(c.SetIndex(addr), way)
	return true
}

// Line returns a copy of the line at (set, way).
func (c *Cache) Line(set, way int) Line { return c.sets[set][way] }

// SetDirty marks addr's line dirty (a store hit). It reports whether the
// line was present.
func (c *Cache) SetDirty(addr uint64) bool {
	way, ok := c.Probe(addr)
	if !ok {
		return false
	}
	c.sets[c.SetIndex(addr)][way].Dirty = true
	return true
}

// VictimWay returns the way that would be evicted next from set:
// an invalid way when one exists (lowest index first), otherwise the
// replacement policy's choice. It does not modify any state.
func (c *Cache) VictimWay(set int) int {
	ways := c.sets[set]
	for w := range ways {
		if !ways[w].Valid {
			return w
		}
	}
	return c.policy.Victim(set)
}

// PeekVictim returns a copy of the line VictimWay would displace.
func (c *Cache) PeekVictim(set int) Line { return c.sets[set][c.VictimWay(set)] }

// PromoteWay moves (set, way) to the most-protected replacement
// position. Used by QBS when a query finds the candidate resident in a
// core cache, and by hint processing when the line's set/way is already
// known.
func (c *Cache) PromoteWay(set, way int) { c.policy.Touch(set, way) }

// DemoteWay marks (set, way) as the next victim candidate.
func (c *Cache) DemoteWay(set, way int) { c.policy.Demote(set, way) }

// Fill allocates addr's line into the cache, evicting the current
// victim if the set is full. It returns the displaced line (evicted
// reports whether it was valid). The new line is inserted clean with
// the given presence mask; callers mark it dirty separately when the
// triggering access is a store.
func (c *Cache) Fill(addr uint64, presence uint64) (victim Line, evicted bool) {
	set := c.SetIndex(addr)
	way := c.VictimWay(set)
	return c.FillWay(set, way, addr, presence)
}

// FillWay allocates addr's line into a specific way of set, returning
// the displaced line. The hierarchy uses this when victim selection has
// already been performed (e.g. after a QBS query chain).
func (c *Cache) FillWay(set, way int, addr uint64, presence uint64) (victim Line, evicted bool) {
	l := &c.sets[set][way]
	victim, evicted = *l, l.Valid
	if evicted {
		c.Stats.Evictions++
		if victim.Dirty {
			c.Stats.DirtyEvicts++
		}
	}
	*l = Line{Addr: c.LineAddr(addr), Valid: true, Presence: presence}
	c.policy.Insert(set, way)
	c.Stats.Fills++
	return victim, evicted
}

// Invalidate removes addr's line if present and returns a copy of it.
// Replacement state for the way is demoted so the hole is reused first.
func (c *Cache) Invalidate(addr uint64) (line Line, ok bool) {
	way, found := c.Probe(addr)
	if !found {
		return Line{}, false
	}
	set := c.SetIndex(addr)
	line = c.sets[set][way]
	c.sets[set][way] = Line{}
	c.policy.Demote(set, way)
	c.Stats.Invalidations++
	return line, true
}

// Presence returns the presence mask of addr's line (0 when absent).
func (c *Cache) Presence(addr uint64) uint64 {
	way, ok := c.Probe(addr)
	if !ok {
		return 0
	}
	return c.sets[c.SetIndex(addr)][way].Presence
}

// AddPresence ORs bit core into addr's presence mask. It reports whether
// the line was present.
func (c *Cache) AddPresence(addr uint64, core int) bool {
	way, ok := c.Probe(addr)
	if !ok {
		return false
	}
	c.sets[c.SetIndex(addr)][way].Presence |= 1 << uint(core)
	return true
}

// ClearPresence zeroes addr's presence mask (used by ECI after early
// invalidating a line from the core caches while retaining it in the
// LLC). It reports whether the line was present.
func (c *Cache) ClearPresence(addr uint64) bool {
	way, ok := c.Probe(addr)
	if !ok {
		return false
	}
	c.sets[c.SetIndex(addr)][way].Presence = 0
	return true
}

// ForEachValid calls fn for every valid line. Iteration order is
// set-major, way-minor and deterministic.
func (c *Cache) ForEachValid(fn func(Line)) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].Valid {
				fn(c.sets[s][w])
			}
		}
	}
}

// CountValid returns the number of valid lines.
func (c *Cache) CountValid() int {
	n := 0
	c.ForEachValid(func(Line) { n++ })
	return n
}

// Reset invalidates every line and zeroes statistics, preserving the
// geometry and replacement policy kind.
func (c *Cache) Reset() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w] = Line{}
		}
	}
	c.policy = replacement.New(c.cfg.Policy, c.numSets, c.cfg.Assoc)
	c.Stats = Stats{}
}

package cli

import (
	"runtime"
	"strings"
	"testing"

	"tlacache/internal/hierarchy"
)

func TestApplyPolicyAllNames(t *testing.T) {
	for _, name := range PolicyNames() {
		cfg := hierarchy.DefaultConfig(2)
		if err := ApplyPolicy(&cfg, name); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: produced invalid config: %v", name, err)
		}
	}
}

func TestApplyPolicyEffects(t *testing.T) {
	cfg := hierarchy.DefaultConfig(2)
	if err := ApplyPolicy(&cfg, "qbs-modified"); err != nil {
		t.Fatal(err)
	}
	if cfg.TLA != hierarchy.TLAQBS || !cfg.QBSEvictSaved {
		t.Fatalf("qbs-modified misconfigured: %+v", cfg)
	}
	cfg = hierarchy.DefaultConfig(2)
	if err := ApplyPolicy(&cfg, "exclusive"); err != nil {
		t.Fatal(err)
	}
	if cfg.Inclusion != hierarchy.Exclusive {
		t.Fatal("exclusive not applied")
	}
	cfg = hierarchy.DefaultConfig(2)
	if err := ApplyPolicy(&cfg, ""); err != nil {
		t.Fatal("empty policy must mean baseline")
	}
	if err := ApplyPolicy(&cfg, "bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestResolveMix(t *testing.T) {
	m, err := ResolveMix("MIX_10")
	if err != nil || m.Apps[0] != "lib" || m.Apps[1] != "sje" {
		t.Fatalf("MIX_10 = %+v, %v", m, err)
	}
	if _, err := ResolveMix("MIX_99"); err == nil {
		t.Error("unknown mix accepted")
	}
	m, err = ResolveMix("dea, mcf")
	if err != nil || len(m.Apps) != 2 || m.Apps[1] != "mcf" {
		t.Fatalf("list mix = %+v, %v", m, err)
	}
	if _, err := ResolveMix("dea,nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestVersion(t *testing.T) {
	v := Version()
	// Test binaries carry no VCS stamp, but the toolchain and platform
	// must always be present.
	if !strings.HasPrefix(v, "tlacache ") {
		t.Errorf("Version() = %q, want tlacache prefix", v)
	}
	if !strings.Contains(v, runtime.Version()) ||
		!strings.Contains(v, runtime.GOOS+"/"+runtime.GOARCH) {
		t.Errorf("Version() = %q lacks toolchain/platform", v)
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"1MB":   1 << 20,
		"512KB": 512 << 10,
		"4096":  4096,
		"2mb":   2 << 20,
		" 8KB ": 8 << 10,
		"64B":   64,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "MB", "-1MB", "0", "x4KB"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) accepted", bad)
		}
	}
}

// Package cli holds the argument-parsing helpers shared by the command
// line tools, kept out of the main packages so they are unit-testable.
package cli

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"

	"tlacache/internal/hierarchy"
	"tlacache/internal/workload"
)

// PolicyNames lists the -policy values accepted by ApplyPolicy.
func PolicyNames() []string {
	return []string{"baseline", "tlh", "tlh-l2", "eci", "qbs", "qbs-l1",
		"qbs-modified", "non-inclusive", "exclusive"}
}

// ApplyPolicy mutates cfg to implement the named LLC management policy.
func ApplyPolicy(cfg *hierarchy.Config, p string) error {
	switch p {
	case "baseline", "":
	case "tlh":
		cfg.TLA = hierarchy.TLATLH
		cfg.TLHSources = hierarchy.L1Caches
	case "tlh-l2":
		cfg.TLA = hierarchy.TLATLH
		cfg.TLHSources = hierarchy.L2C
	case "eci":
		cfg.TLA = hierarchy.TLAECI
	case "qbs":
		cfg.TLA = hierarchy.TLAQBS
		cfg.QBSProbe = hierarchy.AllCaches
	case "qbs-l1":
		cfg.TLA = hierarchy.TLAQBS
		cfg.QBSProbe = hierarchy.L1Caches
	case "qbs-modified":
		cfg.TLA = hierarchy.TLAQBS
		cfg.QBSProbe = hierarchy.AllCaches
		cfg.QBSEvictSaved = true
	case "non-inclusive":
		cfg.Inclusion = hierarchy.NonInclusive
	case "exclusive":
		cfg.Inclusion = hierarchy.Exclusive
	default:
		return fmt.Errorf("unknown policy %q (valid: %s)", p, strings.Join(PolicyNames(), ", "))
	}
	return nil
}

// ResolveMix turns a -mix argument — a Table II mix name (MIX_07) or a
// comma-separated benchmark list — into a workload.Mix.
func ResolveMix(arg string) (workload.Mix, error) {
	if strings.HasPrefix(arg, "MIX_") {
		for _, m := range workload.TableIIMixes() {
			if m.Name == arg {
				return m, nil
			}
		}
		return workload.Mix{}, fmt.Errorf("unknown mix %q", arg)
	}
	apps := strings.Split(arg, ",")
	for i := range apps {
		apps[i] = strings.TrimSpace(apps[i])
		if _, err := workload.ByName(apps[i]); err != nil {
			return workload.Mix{}, err
		}
	}
	return workload.Mix{Name: "CLI", Apps: apps}, nil
}

// Version renders the binary's build identity for -version flags: Go
// toolchain, and — when the binary was built with VCS stamping — the
// revision, commit time, and a dirty marker. Built from
// debug.ReadBuildInfo so it needs no ldflags plumbing.
func Version() string {
	rev, at, dirty := "unknown", "", ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
				if len(rev) > 12 {
					rev = rev[:12]
				}
			case "vcs.time":
				at = " (" + s.Value + ")"
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
	}
	return fmt.Sprintf("tlacache %s%s%s, %s %s/%s",
		rev, dirty, at, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

// ParseSize parses a byte size with an optional KB/MB suffix ("1MB",
// "512KB", "4096").
func ParseSize(s string) (int64, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "MB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KB")
	case strings.HasSuffix(s, "B"):
		s = strings.TrimSuffix(s, "B")
	}
	var v int64
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil || v <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

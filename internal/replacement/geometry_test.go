package replacement

import (
	"fmt"
	"strings"
	"testing"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one mentioning %q", want)
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not mention %q", msg, want)
		}
	}()
	fn()
}

// TestNewRejectsInvalidGeometry: every kind must refuse non-positive
// set counts and associativities with an attributable panic.
func TestNewRejectsInvalidGeometry(t *testing.T) {
	for _, k := range []Kind{LRU, NRU, SRRIP, Random, LIP, BIP, DIP, BRRIP, DRRIP} {
		mustPanic(t, "invalid geometry", func() { New(k, 0, 4) })
		mustPanic(t, "invalid geometry", func() { New(k, 16, 0) })
		mustPanic(t, "invalid geometry", func() { New(k, -1, 4) })
	}
	mustPanic(t, "unknown kind", func() { New(Kind(99), 4, 4) })
}

// TestLRUWayLimit: the uint8 recency representation caps LRU at 256
// ways; 256 must work, 257 must panic.
func TestLRUWayLimit(t *testing.T) {
	mustPanic(t, "at most 256 ways", func() { New(LRU, 2, 257) })

	p := New(LRU, 2, 256)
	if v := p.Victim(0); v != 255 {
		t.Fatalf("initial victim = %d, want 255", v)
	}
	p.Touch(0, 255)
	if v := p.Victim(0); v != 254 {
		t.Fatalf("victim after touching 255 = %d, want 254", v)
	}
	if err := p.(Checker).CheckSet(0); err != nil {
		t.Fatal(err)
	}
}

// TestLRUCheckSetDetectsCorruption verifies the audit hook actually
// distinguishes a healthy stack from a corrupted one.
func TestLRUCheckSetDetectsCorruption(t *testing.T) {
	p := newLRU(2, 4)
	p.Touch(0, 2)
	p.Demote(0, 1)
	for s := 0; s < 2; s++ {
		if err := p.CheckSet(s); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate the MRU way into position 1 of set 0's packed stack.
	p.packed[0] = p.packed[0]&^0xF0 | p.packed[0]&0xF<<4
	if err := p.CheckSet(0); err == nil {
		t.Fatal("duplicated way in stack accepted")
	}

	// The wide (assoc > 16) representation must catch the same thing.
	w := newLRU(2, 20)
	w.Touch(0, 13)
	if err := w.CheckSet(0); err != nil {
		t.Fatal(err)
	}
	w.stack[0] = w.stack[1]
	if err := w.CheckSet(0); err == nil {
		t.Fatal("duplicated way in wide stack accepted")
	}
}

// TestNRUCheckSetDetectsCorruption covers both NRU invariants: the
// live count must match the reference bits, and a set must never be
// fully referenced.
func TestNRUCheckSetDetectsCorruption(t *testing.T) {
	p := newNRU(2, 4)
	p.Touch(0, 1)
	p.Touch(0, 2)
	if err := p.CheckSet(0); err != nil {
		t.Fatal(err)
	}
	p.live[0] = 3
	if err := p.CheckSet(0); err == nil {
		t.Fatal("stale live count accepted")
	}
	p.live[0] = 2

	for w := 0; w < p.assoc; w++ {
		p.ref[w] = true
	}
	p.live[0] = 4
	if err := p.CheckSet(0); err == nil {
		t.Fatal("fully referenced set accepted")
	}
}

package replacement

// This file adds the thrash-resistant insertion policies of Qureshi et
// al. ("Adaptive Insertion Policies for High Performance Caching",
// ISCA 2007), which the paper cites among the "intelligent cache
// management policies [14, 15]" that it verified the inclusion problem
// against:
//
//   - LIP inserts new lines at the LRU position, so a no-reuse stream
//     evicts itself instead of the resident working set.
//   - BIP is LIP that inserts at MRU once every bipEpsilonInverse
//     fills, letting it adapt slowly to genuine working-set changes.
//   - DIP set-duels LRU against BIP with a saturating PSEL counter:
//     dedicated leader sets always use one policy; follower sets use
//     whichever leader currently misses less.
//
// All three reuse the exact LRU recency stack, so hits, demotions, and
// the QBS promote-and-reselect contract behave identically to LRU.

const (
	// One in bipEpsilonInverse BIP insertions goes to MRU.
	bipEpsilonInverse = 32
	// dipLeaderPeriod spaces the leader sets: within each period the
	// first set leads for LRU and the second for BIP (a simple static
	// variant of the paper's set sampling).
	dipLeaderPeriod = 32
	// dipPselMax saturates the policy-selection counter.
	dipPselMax = 1024
)

// Additional policy kinds (extending the base set in policy.go).
const (
	// LIP is LRU-Insertion-Policy: fills go to the LRU position.
	LIP Kind = iota + 100
	// BIP is Bimodal Insertion: LIP with occasional MRU insertion.
	BIP
	// DIP set-duels LRU against BIP (dynamic insertion).
	DIP
)

type lip struct{ *LRUStack }

func newLIP(numSets, assoc int) lip { return lip{newLRU(numSets, assoc)} }

func (p lip) Name() string { return "LIP" }

func (p lip) Insert(set, way int) { p.moveTo(set, way, p.assoc-1) }

type bip struct {
	*LRUStack
	fills uint64
}

func newBIP(numSets, assoc int) *bip { return &bip{LRUStack: newLRU(numSets, assoc)} }

func (p *bip) Name() string { return "BIP" }

// ResetState clears the recency stacks and the fill counter.
func (p *bip) ResetState() {
	p.LRUStack.ResetState()
	p.fills = 0
}

func (p *bip) Insert(set, way int) {
	p.fills++
	if p.fills%bipEpsilonInverse == 0 {
		p.moveTo(set, way, 0)
		return
	}
	p.moveTo(set, way, p.assoc-1)
}

type dip struct {
	*LRUStack
	fills uint64
	psel  int // > half: BIP is winning; <= half: LRU is winning
}

func newDIP(numSets, assoc int) *dip {
	return &dip{LRUStack: newLRU(numSets, assoc), psel: dipPselMax / 2}
}

func (p *dip) Name() string { return "DIP" }

// ResetState clears the recency stacks, fill counter, and selector.
func (p *dip) ResetState() {
	p.LRUStack.ResetState()
	p.fills = 0
	p.psel = dipPselMax / 2
}

// leader classifies a set: 0 = LRU leader, 1 = BIP leader, -1 follower.
func dipLeader(set int) int {
	switch set % dipLeaderPeriod {
	case 0:
		return 0
	case 1:
		return 1
	default:
		return -1
	}
}

func (p *dip) Insert(set, way int) {
	// Insert is only called on fills, i.e. after a miss: leader-set
	// misses are exactly the PSEL training events.
	useBIP := false
	switch dipLeader(set) {
	case 0: // LRU leader missed: a vote for BIP
		if p.psel < dipPselMax {
			p.psel++
		}
	case 1: // BIP leader missed: a vote for LRU
		if p.psel > 0 {
			p.psel--
		}
		useBIP = true
	default:
		useBIP = p.psel > dipPselMax/2
	}
	if dipLeader(set) == 0 {
		p.moveTo(set, way, 0) // LRU leaders always insert at MRU (plain LRU)
		return
	}
	if useBIP {
		p.fills++
		if p.fills%bipEpsilonInverse == 0 {
			p.moveTo(set, way, 0)
		} else {
			p.moveTo(set, way, p.assoc-1)
		}
		return
	}
	p.moveTo(set, way, 0)
}

// PSEL exposes the current selector value for tests.
func (p *dip) PSEL() int { return p.psel }

package replacement

import (
	"testing"
	"testing/quick"
)

func allKinds() []Kind { return []Kind{LRU, NRU, SRRIP, Random, LIP, BIP, DIP, BRRIP, DRRIP} }

func TestNewPanicsOnBadGeometry(t *testing.T) {
	for _, tc := range []struct{ sets, assoc int }{{0, 4}, {4, 0}, {-1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(LRU, %d, %d) did not panic", tc.sets, tc.assoc)
				}
			}()
			New(LRU, tc.sets, tc.assoc)
		}()
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{LRU: "LRU", NRU: "NRU", SRRIP: "SRRIP", Random: "Random"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
		p := New(k, 2, 4)
		if p.Name() != s {
			t.Errorf("New(%s).Name() = %q, want %q", s, p.Name(), s)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}

// TestVictimInRange: for every policy, under arbitrary operation
// sequences, Victim stays within [0, assoc) and is stable between
// state changes.
func TestVictimInRange(t *testing.T) {
	const assoc = 16
	for _, kind := range allKinds() {
		kind := kind
		f := func(ops []uint16) bool {
			p := New(kind, 2, assoc)
			for _, op := range ops {
				set := int(op) % 2
				way := (int(op) / 2) % assoc
				switch (int(op) / (2 * assoc)) % 3 {
				case 0:
					p.Touch(set, way)
				case 1:
					p.Insert(set, way)
				case 2:
					p.Demote(set, way)
				}
				v := p.Victim(set)
				if v < 0 || v >= assoc {
					return false
				}
				if p.Victim(set) != v {
					return false // not stable
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

// TestTouchEvictsDifferentWay verifies the QBS progress guarantee:
// after Touch(victim), the next victim differs (assoc >= 2). SRRIP is
// exempt — see TestSRRIPMayRepeatVictimWhenSaturated — and the
// hierarchy's QBS loop handles its fixed point explicitly.
func TestTouchEvictsDifferentWay(t *testing.T) {
	const assoc = 4
	for _, kind := range []Kind{LRU, NRU, Random, LIP, BIP, DIP} {
		kind := kind
		f := func(ops []uint8, probes []bool) bool {
			p := New(kind, 1, assoc)
			for _, op := range ops {
				way := int(op) % assoc
				if int(op)/assoc%2 == 0 {
					p.Touch(0, way)
				} else {
					p.Insert(0, way)
				}
			}
			// Simulate a QBS promote-and-reselect chain.
			for range probes {
				v := p.Victim(0)
				p.Touch(0, v)
				if p.Victim(0) == v {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

// TestSRRIPMayRepeatVictimWhenSaturated documents SRRIP's known
// exception to the promote-and-reselect guarantee: when the touched way
// was the only distant line and every other line is near-immediate,
// aging saturates all RRPVs together and the scan returns the touched
// way again.
func TestSRRIPMayRepeatVictimWhenSaturated(t *testing.T) {
	p := newSRRIP(1, 4)
	p.Insert(0, 1)
	p.Touch(0, 1)
	p.Touch(0, 2)
	p.Touch(0, 3) // state: [3,0,0,0]
	v := p.Victim(0)
	if v != 0 {
		t.Fatalf("victim = %d, want 0", v)
	}
	p.Touch(0, v) // all ways now RRPV 0
	if got := p.Victim(0); got != v {
		t.Fatalf("expected the documented fixed point, got way %d", got)
	}
}

func TestNRUVictimPrefersUnreferenced(t *testing.T) {
	p := newNRU(1, 4)
	p.Insert(0, 0)
	p.Insert(0, 1)
	// Ways 2 and 3 are unreferenced; way 2 has the lower index.
	if got := p.Victim(0); got != 2 {
		t.Fatalf("victim = %d, want 2", got)
	}
}

func TestNRUGenerationRollover(t *testing.T) {
	p := newNRU(1, 4)
	for w := 0; w < 4; w++ {
		p.Insert(0, w)
	}
	// The last insert (way 3) triggered a new generation: only way 3
	// keeps its bit, so way 0 is the victim.
	if got := p.Victim(0); got != 0 {
		t.Fatalf("victim after rollover = %d, want 0", got)
	}
	if p.live[0] != 1 {
		t.Fatalf("live count after rollover = %d, want 1", p.live[0])
	}
}

func TestNRUDemote(t *testing.T) {
	p := newNRU(1, 4)
	p.Insert(0, 0)
	p.Insert(0, 1)
	p.Demote(0, 0)
	if got := p.Victim(0); got != 0 {
		t.Fatalf("victim = %d, want demoted way 0", got)
	}
	// Demoting an already-clear bit must not corrupt the live count.
	p.Demote(0, 0)
	if p.live[0] != 1 {
		t.Fatalf("live = %d, want 1", p.live[0])
	}
}

func TestSRRIPInsertHasLongReference(t *testing.T) {
	p := newSRRIP(1, 4)
	p.Insert(0, 1)
	// Way 1 was inserted at RRPV max-1; the others sit at max, so the
	// victim must be the first distant way, way 0.
	if got := p.Victim(0); got != 0 {
		t.Fatalf("victim = %d, want 0", got)
	}
	if p.rrpv[0*p.assoc+1] != p.max-1 {
		t.Fatalf("inserted RRPV = %d, want %d", p.rrpv[0*p.assoc+1], p.max-1)
	}
}

func TestSRRIPAgingFindsVictim(t *testing.T) {
	p := newSRRIP(1, 2)
	p.Insert(0, 0)
	p.Insert(0, 1)
	p.Touch(0, 0)
	p.Touch(0, 1)
	// No way is distant; Victim must age everyone until one is, and
	// terminate.
	v := p.Victim(0)
	if v != 0 {
		t.Fatalf("victim = %d, want 0 (lowest index after aging)", v)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := New(Random, 4, 8)
	b := New(Random, 4, 8)
	for i := 0; i < 100; i++ {
		set := i % 4
		if a.Victim(set) != b.Victim(set) {
			t.Fatal("two Random policies with identical histories diverged")
		}
		a.Insert(set, a.Victim(set))
		b.Insert(set, b.Victim(set))
	}
}

func TestRandomSingleWay(t *testing.T) {
	p := New(Random, 1, 1)
	p.Touch(0, 0) // must not panic or loop
	if got := p.Victim(0); got != 0 {
		t.Fatalf("victim = %d, want 0", got)
	}
}

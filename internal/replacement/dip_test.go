package replacement

import "testing"

func TestLIPInsertsAtLRU(t *testing.T) {
	p := New(LIP, 1, 4)
	if p.Name() != "LIP" {
		t.Fatalf("Name = %q", p.Name())
	}
	// Fill all four ways; untouched LIP insertions stay at LRU, so the
	// most recent fill is the next victim.
	for w := 0; w < 4; w++ {
		p.Insert(0, w)
	}
	if got := p.Victim(0); got != 3 {
		t.Fatalf("victim = %d, want the last-inserted way 3", got)
	}
	// A touch rescues a line to MRU.
	p.Touch(0, 3)
	if got := p.Victim(0); got == 3 {
		t.Fatal("touched LIP line still the victim")
	}
}

func TestLIPStreamProtectsResidents(t *testing.T) {
	// The defining LIP property: a no-reuse stream keeps evicting the
	// same way while touched residents survive. Simulate: ways 0..2
	// are residents (touched), way 3 receives the stream.
	p := New(LIP, 1, 4)
	for w := 0; w < 4; w++ {
		p.Insert(0, w)
	}
	for i := 0; i < 100; i++ {
		for w := 0; w < 3; w++ {
			p.Touch(0, w)
		}
		v := p.Victim(0)
		if v != 3 {
			t.Fatalf("iteration %d: victim = %d, want streaming way 3", i, v)
		}
		p.Insert(0, v)
	}
}

func TestBIPOccasionallyInsertsAtMRU(t *testing.T) {
	p := newBIP(1, 4)
	if p.Name() != "BIP" {
		t.Fatalf("Name = %q", p.Name())
	}
	mru := 0
	for i := 0; i < 32*10; i++ {
		p.Insert(0, 1)
		if p.StackPosition(0, 1) == 0 {
			mru++
		}
	}
	if mru != 10 {
		t.Fatalf("MRU insertions = %d out of 320, want exactly 10 (1/32)", mru)
	}
}

func TestDIPLeaderAssignment(t *testing.T) {
	if dipLeader(0) != 0 || dipLeader(32) != 0 {
		t.Error("sets 0 and 32 must lead for LRU")
	}
	if dipLeader(1) != 1 || dipLeader(33) != 1 {
		t.Error("sets 1 and 33 must lead for BIP")
	}
	if dipLeader(2) != -1 || dipLeader(31) != -1 {
		t.Error("other sets must be followers")
	}
}

func TestDIPPselMovesWithLeaderMisses(t *testing.T) {
	p := newDIP(64, 4)
	start := p.PSEL()
	// Misses in the LRU leader set vote for BIP.
	for i := 0; i < 10; i++ {
		p.Insert(0, i%4)
	}
	if p.PSEL() != start+10 {
		t.Fatalf("PSEL after LRU-leader misses = %d, want %d", p.PSEL(), start+10)
	}
	// Misses in the BIP leader set vote for LRU.
	for i := 0; i < 4; i++ {
		p.Insert(1, i%4)
	}
	if p.PSEL() != start+6 {
		t.Fatalf("PSEL after BIP-leader misses = %d, want %d", p.PSEL(), start+6)
	}
}

func TestDIPPselSaturates(t *testing.T) {
	p := newDIP(64, 4)
	for i := 0; i < dipPselMax*2; i++ {
		p.Insert(0, i%4)
	}
	if p.PSEL() != dipPselMax {
		t.Fatalf("PSEL = %d, want saturation at %d", p.PSEL(), dipPselMax)
	}
	for i := 0; i < dipPselMax*3; i++ {
		p.Insert(1, i%4)
	}
	if p.PSEL() != 0 {
		t.Fatalf("PSEL = %d, want saturation at 0", p.PSEL())
	}
}

func TestDIPFollowersObeyWinner(t *testing.T) {
	p := newDIP(64, 4)
	// Drive PSEL high: BIP wins; follower inserts go (mostly) to LRU.
	for i := 0; i < dipPselMax; i++ {
		p.Insert(0, i%4)
	}
	lruInserts := 0
	for i := 0; i < 31; i++ { // 31 fills: below the 1/32 MRU break
		p.Insert(5, 2)
		if p.StackPosition(5, 2) == 3 {
			lruInserts++
		}
	}
	if lruInserts < 29 {
		t.Fatalf("with BIP winning, only %d/31 follower inserts went to LRU", lruInserts)
	}
	// Drive PSEL low: LRU wins; follower inserts go to MRU.
	for i := 0; i < 2*dipPselMax; i++ {
		p.Insert(1, i%4)
	}
	p.Insert(6, 1)
	if p.StackPosition(6, 1) != 0 {
		t.Fatal("with LRU winning, follower insert not at MRU")
	}
}

func TestNewKindsRegistered(t *testing.T) {
	for _, k := range []Kind{LIP, BIP, DIP} {
		p := New(k, 4, 4)
		if p.Name() != k.String() {
			t.Errorf("kind %v: Name %q != String %q", k, p.Name(), k.String())
		}
	}
}

// TestInsertionPoliciesKeepQBSContract extends the promote-and-reselect
// guarantee to the insertion-policy family.
func TestInsertionPoliciesKeepQBSContract(t *testing.T) {
	for _, k := range []Kind{LIP, BIP, DIP} {
		p := New(k, 4, 4)
		for i := 0; i < 50; i++ {
			set := i % 4
			p.Insert(set, i%4)
			v := p.Victim(set)
			p.Touch(set, v)
			if p.Victim(set) == v {
				t.Fatalf("%v: victim unchanged after Touch", k)
			}
		}
	}
}
